package iobehind_test

import (
	"fmt"

	"iobehind"
)

// The basic workflow: run a traced workload and read the paper's metrics
// from the report.
func Example() {
	report, err := iobehind.RunPhased(iobehind.Options{
		Ranks:    16,
		Strategy: iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: 1.1},
		Tracer:   iobehind.TracerConfig{DisableOverhead: true},
	}, iobehind.PhasedConfig{
		Phases:        10,
		BytesPerPhase: 64 << 20,
		Compute:       iobehind.Second,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("required bandwidth: %.0f MB/s\n", report.RequiredBandwidth/1e6)
	fmt.Printf("limit first applied at %.0f s\n", report.FirstLimitAt.Seconds())
	d := report.Distribution()
	fmt.Printf("hidden I/O: %.0f%%, waiting: %.0f%%\n",
		d.AsyncWriteExploit, d.AsyncWriteLost)
	// Output:
	// required bandwidth: 1074 MB/s
	// limit first applied at 2 s
	// hidden I/O: 67%, waiting: 8%
}

// Custom applications are plain Go functions over the MPI-IO API; the
// tracer observes them without any changes, like TMIO's LD_PRELOAD.
func ExampleNewSim() {
	sim := iobehind.NewSim(iobehind.Options{
		Ranks:    4,
		Strategy: iobehind.StrategyConfig{Strategy: iobehind.UpOnly, Tol: 1.1},
		Tracer:   iobehind.TracerConfig{DisableOverhead: true},
	})
	report, err := sim.Run(func(r *iobehind.Rank) {
		f := sim.IO.Open(r, "out.dat")
		var req interface{ Wait() }
		for j := 0; j < 5; j++ {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(0, 32<<20) // asynchronous checkpoint
			r.Compute(iobehind.Second)  // the write hides behind this
		}
		req.Wait()
		r.Finalize()
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d async ops, %.0f MB/s required\n",
		report.AsyncOps, report.RequiredBandwidth/1e6)
	// Output:
	// 20 async ops, 134 MB/s required
}

// YoungInterval gives the classical optimal checkpoint period; with
// asynchronous, throttled checkpoints the visible cost (and thus the
// optimal interval) collapses.
func ExampleYoungInterval() {
	mtbf := iobehind.Duration(3600) * iobehind.Second
	cost := iobehind.Duration(50) * iobehind.Second
	fmt.Printf("optimal interval: %.0f s\n", iobehind.YoungInterval(mtbf, cost).Seconds())
	// Output:
	// optimal interval: 600 s
}

// The cluster scenario of the paper's Fig. 1: limiting the async job to
// its requirement during contention shortens the synchronous jobs.
func ExampleRunCluster() {
	fs := iobehind.FSConfig{WriteCapacity: 10e9, ReadCapacity: 10e9}
	cfg := iobehind.ClusterConfig{
		Nodes: 16,
		FS:    &fs,
		Jobs: []iobehind.JobSpec{
			{Nodes: 8, Loops: 3, BytesPerNode: 2 << 30, Compute: 4 * iobehind.Second},
			{Nodes: 8, Async: true, Loops: 3, BytesPerNode: 1 << 29,
				Compute: 6 * iobehind.Second},
		},
		Policy: iobehind.LimitDuringContention,
	}
	res, err := iobehind.RunCluster(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("jobs finished: %d; async job capped %d time(s)\n",
		len(res.Jobs), res.LimitToggles)
	// Output:
	// jobs finished: 2; async job capped 3 time(s)
}
