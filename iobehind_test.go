package iobehind_test

import (
	"math"
	"testing"

	"iobehind"
)

func TestRunPhasedFacade(t *testing.T) {
	rep, err := iobehind.RunPhased(iobehind.Options{
		Ranks:    4,
		Strategy: iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: 1.1},
	}, iobehind.PhasedConfig{
		Phases:        5,
		BytesPerPhase: 8 << 20,
		Compute:       200 * iobehind.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 4 || rep.AsyncOps != 20 {
		t.Fatalf("ranks=%d asyncOps=%d", rep.Ranks, rep.AsyncOps)
	}
	if rep.RequiredBandwidth <= 0 {
		t.Fatal("no required bandwidth")
	}
	if rep.FirstLimitAt == 0 {
		t.Fatal("limit never applied")
	}
}

func TestRunHaccAndWacommFacades(t *testing.T) {
	hacc, err := iobehind.RunHacc(iobehind.Options{Ranks: 2},
		iobehind.HaccConfig{Loops: 2, ParticlesPerRank: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if hacc.AsyncOps != 2*2*2 {
		t.Fatalf("hacc asyncOps = %d", hacc.AsyncOps)
	}
	wacomm, err := iobehind.RunWacomm(iobehind.Options{Ranks: 2},
		iobehind.WacommConfig{Particles: 10_000, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if wacomm.AsyncOps != 2*3 {
		t.Fatalf("wacomm asyncOps = %d", wacomm.AsyncOps)
	}
}

func TestNewSimExposesStack(t *testing.T) {
	sim := iobehind.NewSim(iobehind.Options{Ranks: 2, Seed: 42})
	if sim.Engine == nil || sim.World == nil || sim.FS == nil || sim.IO == nil || sim.Tracer == nil {
		t.Fatal("stack incomplete")
	}
	if sim.World.Size() != 2 {
		t.Fatalf("size = %d", sim.World.Size())
	}
	// Default file system is the Lichtenberg configuration.
	if sim.FS.Capacity(0) != 106e9 {
		t.Fatalf("write capacity = %v", sim.FS.Capacity(0))
	}
	rep, err := sim.Run(func(r *iobehind.Rank) { r.Compute(iobehind.Second) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AppTime.Seconds()-1) > 0.01 {
		t.Fatalf("app time = %v", rep.AppTime)
	}
}

func TestNoTracerRuns(t *testing.T) {
	sim := iobehind.NewSim(iobehind.Options{Ranks: 2, NoTracer: true})
	if sim.Tracer != nil {
		t.Fatal("tracer attached despite NoTracer")
	}
	rep, err := sim.Run(func(r *iobehind.Rank) { r.Compute(iobehind.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatal("report without tracer")
	}
}

func TestRunClusterFacade(t *testing.T) {
	fs := iobehind.FSConfig{WriteCapacity: 1e9, ReadCapacity: 1e9}
	res, err := iobehind.RunCluster(iobehind.ClusterConfig{
		Nodes: 8,
		FS:    &fs,
		Jobs: []iobehind.JobSpec{
			{Nodes: 2, Loops: 2, BytesPerNode: 1 << 28, Compute: iobehind.Second},
			{Nodes: 2, Async: true, Loops: 2, BytesPerNode: 1 << 27,
				Compute: 2 * iobehind.Second},
		},
		Policy: iobehind.LimitDuringContention,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	scenario := iobehind.DefaultClusterScenario(iobehind.NoLimit)
	if len(scenario.Jobs) != 8 {
		t.Fatalf("default scenario jobs = %d", len(scenario.Jobs))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *iobehind.Report {
		rep, err := iobehind.RunHacc(iobehind.Options{Ranks: 4, Seed: 99},
			iobehind.HaccConfig{Loops: 3, ParticlesPerRank: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Runtime != b.Runtime || a.RequiredBandwidth != b.RequiredBandwidth {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v",
			a.Runtime, a.RequiredBandwidth, b.Runtime, b.RequiredBandwidth)
	}
	if a.AppTime != b.AppTime || a.PeriOverhead != b.PeriOverhead {
		t.Fatal("non-deterministic overheads")
	}
}
