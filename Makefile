# Standard entry points. Everything is pure Go (stdlib only), so the
# toolchain is the only dependency.

GO ?= go

.PHONY: all build vet lint test race bench sweep gateway-smoke faults-smoke ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# iolint enforces the determinism and cache-key invariants the sweep
# cache and online/offline equality rest on: no wall-clock reads or
# global randomness in simulation packages, json:"-" on unhashable
# cache-key fields, no float ==/!= in the interval arithmetic. See
# docs/ARCHITECTURE.md ("Determinism & cache-key invariants").
lint:
	$(GO) run ./cmd/iolint ./...

test:
	$(GO) test ./...

# The race-detector sweep: real Fig. 1 + Fig. 5 experiment points run
# concurrently through the worker pool (internal/runner/sweep_race_test.go),
# asserting byte-identical rendered output vs. the serial path, the
# telemetry gateway's concurrent ingest/query/shutdown paths, and the
# TCPSink's reconnect/drop paths (internal/tmio stream tests).
race:
	$(GO) test -race ./internal/runner/... ./internal/gateway/... ./internal/tmio/... ./internal/faults/...

# End-to-end gateway check on ephemeral ports: gateway up, one traced
# simulation streamed in over TCP, HTTP surface probed for series and a
# next-burst forecast.
gateway-smoke:
	$(GO) run ./cmd/iogateway -smoke

# Deterministic seeded fault scenario: runs the 'faults' figure and fails
# unless its invariants hold (nonzero transient-error retries, limiter
# recovered after the windows closed).
faults-smoke:
	$(GO) run ./cmd/iosweep -figs faults -check-faults

# Figure benchmarks with the paper's headline metrics, plus the
# serial-vs-parallel-vs-warm-cache sweep comparison.
bench:
	$(GO) test -bench=Fig -benchtime=1x .
	$(GO) test -run xxx -bench=BenchmarkSweep -benchtime=1x .

# Regenerate all figures as one parallel sweep with a warm disk cache.
sweep:
	$(GO) run ./cmd/iosweep -figs all -scale quick -j 0 -cache .iosweep-cache

ci: vet build lint test race

clean:
	rm -rf .iosweep-cache
