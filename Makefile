# Standard entry points. Everything is pure Go (stdlib only), so the
# toolchain is the only dependency.

GO ?= go

# Hot-path benchmark settings shared by bench, bench-json and
# bench-check: the DES/PFS kernels, the ingest edge (the binary frame
# codec in tmio and the gateway's two protocol read loops), the
# incremental sweep engine in region, and the gateway query path. Fixed
# -benchtime with -count repetitions replaces the old noisy
# -benchtime=1x: iobenchdiff collapses the repetitions to the per-metric
# minimum, so one slow run cannot fake a regression.
BENCH_PKGS      = ./internal/des ./internal/pfs ./internal/tmio ./internal/region ./internal/gateway
BENCH_TIME     ?= 200ms
BENCH_COUNT    ?= 5
# The allocs/op comparison is the strict, deterministic half of the
# bench gate: single-threaded benchmarks allocate identically on every
# run, so any growth there is a real regression. ns/op is wall-clock
# and on a small shared-host VM it swings tens of percent with CPU
# steal, so its threshold is a coarse backstop against order-of-
# magnitude regressions (an O(1) query path degrading to a linear scan
# shows up as 10-100x, far past any steal noise), not a precision
# gate. The committed baseline is an envelope — the elementwise max
# over several runs — not a single lucky capture.
NS_THRESHOLD   ?= 0.50
# Relative allocs/op tolerance for the concurrent benchmarks
# (pfs.BenchmarkConcurrentFlows and friends) whose allocation counts
# depend on scheduler interleaving and flap a few percent run to run.
# floor(old*slack) means benchmarks pinned at 0 allocs/op stay exact.
ALLOCS_SLACK   ?= 0.05
# -p 1 serializes the package test binaries: by default go test runs up
# to GOMAXPROCS packages concurrently, which lets one package's
# benchmark loop steal cycles from another's and shows up as tens of
# percent of pure noise in ns/op — more than the regression threshold.
BENCH_FLAGS     = -run xxx -bench=. -benchmem -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) -p 1

.PHONY: all build vet lint lint-self test race bench bench-json bench-check docs-check sweep gateway-smoke faults-smoke fabric-smoke ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# iolint enforces the determinism and cache-key invariants the sweep
# cache and online/offline equality rest on. It is a whole-program
# analysis: a module-wide call graph marks everything reachable from the
# simulation packages, and the taint rules (walltime, globalrand,
# maporder, goroutine) follow those chains into any non-exempt package;
# errdrop, cachekey, and floateq police their own scopes. See
# docs/ARCHITECTURE.md ("Determinism & cache-key invariants"). The ./...
# pattern keeps every command — iobenchdiff included — on the analysis
# and build surface. iolint prints its timing to stderr after every run;
# the whole-module analysis is budgeted to stay under 10 seconds — treat
# growth past that as a regression in the loader or graph builder.
lint:
	$(GO) run ./cmd/iolint ./...

# The analyzer analyzes itself (and its command): internal/lint and
# cmd/iolint hold no simulation code, but the errdrop/cachekey scopes
# and the suppression parser still apply, and a clean self-run is a
# cheap end-to-end smoke of the loader on a package with heavy go/types
# use.
lint-self:
	$(GO) run ./cmd/iolint ./internal/lint ./cmd/iolint

test:
	$(GO) test ./...

# The race-detector sweep: real Fig. 1 + Fig. 5 experiment points run
# concurrently through the worker pool (internal/runner/sweep_race_test.go),
# asserting byte-identical rendered output vs. the serial path, the
# telemetry gateway's concurrent ingest/query/shutdown paths, and the
# TCPSink's reconnect/drop paths (internal/tmio stream tests). The
# simulation kernel (des, pfs) rides along so the AllocsPerRun guards
# and the event-pool recycling hold under the race detector too, and
# internal/trace exercises the emit → replay round trip (including the
# 4-rank replay) under the detector. internal/fabric runs its whole
# coordinator/worker suite here — lease expiry re-dispatch, duplicate
# completions, kill/restart resume, and the distributed-vs-serial
# integration test all race real goroutines over real sockets.
race:
	$(GO) test -race ./internal/runner/... ./internal/gateway/... ./internal/tmio/... ./internal/faults/... ./internal/des/... ./internal/pfs/... ./internal/region/... ./internal/trace/... ./internal/fabric/...

# Fail when a figure experiment in internal/experiments has no row in
# EXPERIMENTS.md's figure↔code table (see cmd/iodocscheck).
docs-check:
	$(GO) run ./cmd/iodocscheck

# End-to-end gateway check on ephemeral ports: gateway up, one traced
# simulation streamed in over TCP, HTTP surface probed for series and a
# next-burst forecast.
gateway-smoke:
	$(GO) run ./cmd/iogateway -smoke

# Deterministic seeded fault scenario: runs the 'faults' figure and fails
# unless its invariants hold (nonzero transient-error retries, limiter
# recovered after the windows closed).
faults-smoke:
	$(GO) run ./cmd/iosweep -figs faults -check-faults

# End-to-end distributed-sweep check on loopback: a coordinator, two
# workers (one killed after the first accepted result so its leases
# re-dispatch), a shared HTTP cache server, and a submission of every
# figure at quick scale whose rendered output must be byte-identical to
# the serial runner's.
fabric-smoke:
	$(GO) run ./cmd/iofabric -smoke -q

# Kernel hot-path benchmarks (des, pfs) plus the figure benchmarks with
# the paper's headline metrics and the serial-vs-parallel-vs-warm-cache
# sweep comparison. The figure benchmarks are whole-simulation runs, so
# they get a small fixed iteration count with one repetition for noise.
bench:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS)
	$(GO) test -run xxx -bench='Fig|BenchmarkSweep' -benchmem -benchtime=2x -count=2 .

# Snapshot the kernel benchmarks into BENCH_<git-short-sha>.json via
# cmd/iobenchdiff (schema documented there and in docs/ARCHITECTURE.md).
bench-json:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) \
		| $(GO) run ./cmd/iobenchdiff parse -label "$$(git rev-parse --short HEAD)" -o "BENCH_$$(git rev-parse --short HEAD).json"

# Fail on a >$(NS_THRESHOLD) ns/op or any allocs/op regression against
# the committed pre-optimization baseline. -fail-missing also fails when
# a benchmark guarded by the baseline disappears from the run, so
# coverage cannot be dropped by deleting the bench; retiring one
# deliberately means regenerating BENCH_baseline.json.
bench-check:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) \
		| $(GO) run ./cmd/iobenchdiff parse -label check -o BENCH_check.json
	$(GO) run ./cmd/iobenchdiff diff -ns-threshold $(NS_THRESHOLD) -allocs-slack $(ALLOCS_SLACK) -fail-missing BENCH_baseline.json BENCH_check.json

# Regenerate all figures as one parallel sweep with a warm disk cache.
sweep:
	$(GO) run ./cmd/iosweep -figs all -scale quick -j 0 -cache .iosweep-cache

ci: vet build lint lint-self test race docs-check bench-check fabric-smoke

clean:
	rm -rf .iosweep-cache
	rm -f BENCH_check.json
