# Standard entry points. Everything is pure Go (stdlib only), so the
# toolchain is the only dependency.

GO ?= go

.PHONY: all build vet test race bench sweep ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race-detector sweep: real Fig. 1 + Fig. 5 experiment points run
# concurrently through the worker pool (internal/runner/sweep_race_test.go),
# asserting byte-identical rendered output vs. the serial path.
race:
	$(GO) test -race ./internal/runner/...

# Figure benchmarks with the paper's headline metrics, plus the
# serial-vs-parallel-vs-warm-cache sweep comparison.
bench:
	$(GO) test -bench=Fig -benchtime=1x .
	$(GO) test -run xxx -bench=BenchmarkSweep -benchtime=1x .

# Regenerate all figures as one parallel sweep with a warm disk cache.
sweep:
	$(GO) run ./cmd/iosweep -figs all -scale quick -j 0 -cache .iosweep-cache

ci: vet build test race

clean:
	rm -rf .iosweep-cache
