// Integration tests exercising several subsystems together, end to end.
package iobehind_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"iobehind"
	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/ftio"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// TestEndToEndKitchenSink runs one application with nearly every feature
// enabled at once: per-class limits with the frequent strategy, online
// aggregation, storm latencies, hiccups, injection caps, overhead model,
// streaming sink — and checks they compose.
func TestEndToEndKitchenSink(t *testing.T) {
	e := des.NewEngine(4)
	w := mpi.NewWorld(e, mpi.Config{Size: 16, RanksPerNode: 8})
	fs := pfs.New(e, pfs.Config{
		WriteCapacity: 10e9,
		ReadCapacity:  10e9,
		InjectionCap:  4e9,
	})
	sys := mpiio.NewSystem(w, fs, adio.Config{
		HiccupProb:           1e-3,
		HiccupMean:           50 * des.Millisecond,
		QueueLatencyPerFlow:  20 * des.Microsecond,
		SubmitLatencyPerFlow: 20 * des.Microsecond,
	})
	tr := tmio.Attach(sys, tmio.Config{
		Strategy:          tmio.StrategyConfig{Strategy: tmio.Frequent, Tol: 1.2},
		PerClassLimits:    true,
		OnlineAggregation: true,
	})
	sink := &tmio.CollectSink{}
	tr.SetSink(sink)

	if err := w.Run(workloads.HaccMain(sys, workloads.HaccConfig{
		Loops:            4,
		ParticlesPerRank: 1_000_000,
		FixedPhase:       300 * des.Millisecond,
	})); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()

	if rep.RequiredBandwidth <= 0 {
		t.Fatal("no required bandwidth")
	}
	if tr.OnlineB() <= 0 {
		t.Fatal("online aggregation dead")
	}
	if math.Abs(tr.OnlineB()-rep.RequiredBandwidth)/rep.RequiredBandwidth > 0.01 {
		t.Fatalf("online %v vs offline %v", tr.OnlineB(), rep.RequiredBandwidth)
	}
	if sink.Len() == 0 {
		t.Fatal("sink empty")
	}
	if rep.FirstLimitAt == 0 {
		t.Fatal("frequent strategy never limited")
	}
	// Per-class limits in force on both classes.
	a := sys.Agent(0)
	if math.IsInf(a.ClassLimit(pfs.Write), 1) || math.IsInf(a.ClassLimit(pfs.Read), 1) {
		t.Fatal("class limits missing")
	}
	// JSON round-trip works with everything on.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"phases"`) {
		t.Fatal("phases missing from JSON")
	}
	// The overhead model ran (default enabled here).
	if rep.PostOverhead <= 0 {
		t.Fatal("no post overhead recorded")
	}
	// Engine statistics are plausible.
	st := e.Stats()
	if st.EventsRun == 0 || st.Procs < 16 {
		t.Fatalf("engine stats: %+v", st)
	}
}

// TestFtioOnTracedRun detects the checkpoint period of a traced periodic
// application from its report.
func TestFtioOnTracedRun(t *testing.T) {
	rep, err := iobehind.RunPhased(iobehind.Options{
		Ranks:    8,
		Strategy: iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: 1.1},
	}, iobehind.PhasedConfig{
		Phases:        12,
		BytesPerPhase: 32 << 20,
		Compute:       2 * iobehind.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftio.DetectPhases(rep.TPhases, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Period.Seconds(); math.Abs(got-2) > 0.4 {
		t.Fatalf("detected period %v, want ≈2s", got)
	}
}

// TestBurstBufferWithTracer: a synchronous workload behind a burst buffer
// traced end to end; visible I/O nearly vanishes while the drain carries
// the bytes.
func TestBurstBufferWithTracer(t *testing.T) {
	fs := iobehind.FSConfig{WriteCapacity: 2e9, ReadCapacity: 2e9}
	run := func(bb *iobehind.BurstBufferConfig) iobehind.Distribution {
		sim := iobehind.NewSim(iobehind.Options{
			Ranks: 4,
			FS:    &fs,
			Agent: iobehind.AgentConfig{BurstBuffer: bb},
		})
		rep, err := sim.Run(func(r *iobehind.Rank) {
			f := sim.IO.Open(r, "ckpt")
			for j := 0; j < 4; j++ {
				f.WriteAt(0, 256<<20)
				r.Compute(2 * iobehind.Second)
			}
			r.Finalize()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Distribution()
	}
	direct := run(nil)
	buffered := run(&iobehind.BurstBufferConfig{
		Capacity:  1 << 30,
		WriteRate: 8e9,
		DrainRate: 200e6,
	})
	if buffered.VisibleIO() >= direct.VisibleIO()/3 {
		t.Fatalf("burst buffer did not hide sync I/O: %v%% vs %v%%",
			buffered.VisibleIO(), direct.VisibleIO())
	}
}

// TestReplayAgreesWithRerun: replaying the direct strategy over a traced
// unlimited run predicts roughly the exploit share an actual direct run
// achieves.
func TestReplayAgreesWithRerun(t *testing.T) {
	cfg := iobehind.PhasedConfig{
		Phases:        10,
		BytesPerPhase: 64 << 20,
		Compute:       iobehind.Second,
	}
	traced, err := iobehind.RunPhased(iobehind.Options{Ranks: 8, Seed: 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	projected := tmio.Replay(traced.BPhases,
		tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1})

	actual, err := iobehind.RunPhased(iobehind.Options{
		Ranks: 8, Seed: 5,
		Strategy: iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: 1.1},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := actual.Distribution().ExploitTotal() / 100
	want := projected.ExploitShare()
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("replay projected exploit %v, actual run %v", want, got)
	}
}

// TestDeterminismAcrossFeatures: the kitchen-sink configuration is still
// bit-for-bit reproducible.
func TestDeterminismAcrossFeatures(t *testing.T) {
	run := func() (des.Duration, float64) {
		e := des.NewEngine(11)
		w := mpi.NewWorld(e, mpi.Config{Size: 8})
		fs := pfs.New(e, pfs.Config{
			WriteCapacity: 5e9, ReadCapacity: 5e9, InjectionCap: 2e9,
			Noise: &pfs.NoiseConfig{Interval: des.Second, Amplitude: 0.4},
		})
		sys := mpiio.NewSystem(w, fs, adio.Config{
			HiccupProb: 0.01, QueueLatencyPerFlow: 10 * des.Microsecond,
		})
		tr := tmio.Attach(sys, tmio.Config{
			Strategy: tmio.StrategyConfig{Strategy: tmio.Adaptive, Tol: 1.1},
		})
		if err := w.Run(workloads.WacommMain(sys, workloads.WacommConfig{
			Particles: 200_000, Iterations: 6,
		})); err != nil {
			t.Fatal(err)
		}
		rep := tr.Report()
		return rep.Runtime, rep.RequiredBandwidth
	}
	r1, b1 := run()
	r2, b2 := run()
	if r1 != r2 || b1 != b2 {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", r1, b1, r2, b2)
	}
}

// TestSoakLargeMixed is a heavier end-to-end soak (skipped with -short):
// 512 ranks, hierarchical WaComM++, storm models, injection caps, noise,
// per-class frequent-strategy limiting — the whole stack at once.
func TestSoakLargeMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	e := des.NewEngine(99)
	w := mpi.NewWorld(e, mpi.Config{Size: 512, RanksPerNode: 64})
	fs := pfs.New(e, pfs.Config{
		WriteCapacity: 50e9, ReadCapacity: 50e9,
		InjectionCap: 20e9,
		Noise:        &pfs.NoiseConfig{Interval: des.Second, Amplitude: 0.2},
	})
	sys := mpiio.NewSystem(w, fs, adio.Config{
		HiccupProb:          1e-4,
		QueueLatencyPerFlow: 5 * des.Microsecond,
	})
	tr := tmio.Attach(sys, tmio.Config{
		Strategy:          tmio.StrategyConfig{Strategy: tmio.Frequent, Tol: 1.2},
		PerClassLimits:    true,
		OnlineAggregation: true,
	})
	if err := w.Run(workloads.WacommMain(sys, workloads.WacommConfig{
		Particles:    1_000_000,
		Iterations:   25,
		Hierarchical: true,
	})); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	if rep.AsyncOps != 512*25 {
		t.Fatalf("ops = %d", rep.AsyncOps)
	}
	d := rep.Distribution()
	if d.AsyncWriteLost > 5 {
		t.Fatalf("soak lost = %v%%", d.AsyncWriteLost)
	}
	if rep.RequiredBandwidth <= 0 || tr.OnlineB() <= 0 {
		t.Fatal("metrics missing")
	}
	if stalled := e.Stalled(); len(stalled) != 0 {
		t.Fatalf("stalled procs: %d", len(stalled))
	}
	st := e.Stats()
	t.Logf("soak: %d events, heap peak %d, %d procs, virtual %.1fs",
		st.EventsRun, st.MaxHeap, st.Procs, st.Now.Seconds())
}
