package metrics

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"iobehind/internal/des"
)

func iv(a, b int) Interval { return Interval{Start: des.Time(a), End: des.Time(b)} }

// coverOracle is the offline form: sort every span, merge overlapping or
// touching neighbours — the behaviour the gateway used to pay for on
// every query via mergeSpans.
func coverOracle(spans []Interval) []Interval {
	if len(spans) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	var out []Interval
	for _, s := range sorted {
		if s.End <= s.Start {
			continue
		}
		if n := len(out); n > 0 && s.Start <= out[n-1].End {
			if s.End > out[n-1].End {
				out[n-1].End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

func TestInsertIntervalCases(t *testing.T) {
	cases := []struct {
		name string
		in   []Interval
		want []Interval
	}{
		{"empty input", nil, nil},
		{"single", []Interval{iv(1, 3)}, []Interval{iv(1, 3)}},
		{"degenerate dropped", []Interval{iv(5, 5), iv(7, 2)}, nil},
		{"disjoint out of order", []Interval{iv(10, 12), iv(0, 2), iv(5, 6)},
			[]Interval{iv(0, 2), iv(5, 6), iv(10, 12)}},
		{"touching merge", []Interval{iv(0, 5), iv(5, 9)}, []Interval{iv(0, 9)}},
		{"overlap merge", []Interval{iv(0, 5), iv(3, 9)}, []Interval{iv(0, 9)}},
		{"contained", []Interval{iv(0, 10), iv(3, 4)}, []Interval{iv(0, 10)}},
		{"bridge many", []Interval{iv(0, 2), iv(4, 6), iv(8, 10), iv(1, 9)},
			[]Interval{iv(0, 10)}},
		{"extend left", []Interval{iv(4, 8), iv(1, 5)}, []Interval{iv(1, 8)}},
		{"insert between", []Interval{iv(0, 2), iv(10, 12), iv(5, 6)},
			[]Interval{iv(0, 2), iv(5, 6), iv(10, 12)}},
	}
	for _, tc := range cases {
		var cover []Interval
		for _, s := range tc.in {
			cover = InsertInterval(cover, s)
		}
		if !reflect.DeepEqual(cover, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, cover, tc.want)
		}
	}
}

// TestInsertIntervalMatchesOracle drives random span streams through the
// incremental insert and requires the running cover to equal the offline
// sort-merge of everything seen so far, at every step.
func TestInsertIntervalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var cover []Interval
		var seen []Interval
		for i := 0; i < 40; i++ {
			a := rng.Intn(100)
			s := iv(a, a+rng.Intn(12)) // sometimes empty
			seen = append(seen, s)
			cover = InsertInterval(cover, s)
			if want := coverOracle(seen); !reflect.DeepEqual(cover, want) {
				t.Fatalf("trial %d step %d: after %v\n got %v\nwant %v", trial, i, s, cover, want)
			}
		}
		// Disjointness and order, belt and braces.
		for i := 1; i < len(cover); i++ {
			if cover[i].Start <= cover[i-1].End {
				t.Fatalf("cover not disjoint/sorted: %v", cover)
			}
		}
	}
}
