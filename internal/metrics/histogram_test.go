package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Mode() != 0 {
		t.Fatal("empty histogram state")
	}
	for _, v := range []float64{1, 1.5, 3, 3.5, 3.9, 100} {
		h.Observe(v)
	}
	h.Observe(-1)          // dropped
	h.Observe(0)           // dropped
	h.Observe(math.NaN())  // dropped
	h.Observe(math.Inf(1)) // dropped
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantMean := (1 + 1.5 + 3 + 3.5 + 3.9 + 100) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Buckets: [1,2):2, [2,4):3, [64,128):1.
	buckets := h.Buckets()
	if len(buckets) != 3 {
		t.Fatalf("buckets = %+v", buckets)
	}
	if buckets[0].Lo != 1 || buckets[0].Count != 2 {
		t.Fatalf("bucket 0 = %+v", buckets[0])
	}
	if buckets[1].Lo != 2 || buckets[1].Count != 3 {
		t.Fatalf("bucket 1 = %+v", buckets[1])
	}
	// Mode: midpoint of [2,4) = 3.
	if h.Mode() != 3 {
		t.Fatalf("mode = %v", h.Mode())
	}
}

func TestHistogramBinaryRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 1.5, 3, 3.5, 3.9, 100} {
		h.Observe(v)
	}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() || got.Mean() != h.Mean() ||
		got.Min() != h.Min() || got.Max() != h.Max() || got.Mode() != h.Mode() {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
	if len(got.Buckets()) != len(h.Buckets()) {
		t.Fatalf("buckets: %+v vs %+v", got.Buckets(), h.Buckets())
	}

	// An empty histogram round-trips to an empty histogram.
	var empty Histogram
	data, err = empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var gotEmpty Histogram
	if err := gotEmpty.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if gotEmpty.Count() != 0 {
		t.Fatalf("empty round trip: %+v", gotEmpty)
	}
	gotEmpty.Observe(2) // still usable after decoding
	if gotEmpty.Count() != 1 {
		t.Fatal("observe after decode")
	}
}

func TestHistogramRender(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	h.Observe(100)
	out := h.Render("sizes", "%.0f B", 20)
	if !strings.Contains(out, "== sizes (n=11") {
		t.Fatalf("title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines:\n%s", out)
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 20)) {
		t.Fatalf("dominant bucket bar:\n%s", out)
	}
}

// TestHistogramBinaryDeterministic asserts repeated encodes of the same
// histogram produce identical bytes. Results embedding histograms are
// content-addressed (and duplicate completions byte-compared) by the
// sweep fabric, so the wire form must not inherit map iteration order.
func TestHistogramBinaryDeterministic(t *testing.T) {
	var h Histogram
	for i := 1; i < 400; i++ {
		h.Observe(float64(i) * 1.37)
	}
	first, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		again, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encode %d differs from the first encode", i)
		}
	}
}
