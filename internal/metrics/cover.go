package metrics

// InsertInterval folds one interval into a sorted, disjoint cover,
// merging overlapping or touching neighbours — the incremental form of
// collecting every span and sort-merging the whole set per query.
// It returns the updated slice (append semantics: callers must keep the
// result). Empty and inverted intervals are dropped. Unlike
// Intervals.Add, arrival order is arbitrary: spans from different ranks
// interleave on the wire.
func InsertInterval(cover []Interval, iv Interval) []Interval {
	if iv.End <= iv.Start {
		return cover
	}
	// First existing interval that can merge with iv: End >= iv.Start
	// (touching counts, matching the offline sort-merge rule).
	lo, hi := 0, len(cover)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cover[mid].End < iv.Start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	// One past the last interval that can merge: Start <= iv.End. The
	// merge run is usually tiny (0 or 1), so a linear scan suffices.
	j := i
	for j < len(cover) && cover[j].Start <= iv.End {
		j++
	}
	if i == j {
		// No neighbour merges: splice iv in at i.
		cover = append(cover, Interval{})
		copy(cover[i+1:], cover[i:])
		cover[i] = iv
		return cover
	}
	if cover[i].Start < iv.Start {
		iv.Start = cover[i].Start
	}
	if cover[j-1].End > iv.End {
		iv.End = cover[j-1].End
	}
	cover[i] = iv
	return append(cover[:i+1], cover[j:]...)
}
