package metrics

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a logarithmic histogram (base-2 buckets) for positive
// values spanning many orders of magnitude: request sizes, phase lengths,
// bandwidths.
type Histogram struct {
	counts map[int]int
	total  int
	sum    float64
	min    float64
	max    float64
}

// Observe records a value; non-positive values are dropped.
func (h *Histogram) Observe(v float64) {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int)
		h.min = v
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[int(math.Floor(math.Log2(v)))]++
	h.total++
	h.sum += v
}

// Count returns the number of observed values.
func (h *Histogram) Count() int { return h.total }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// Bucket is one populated histogram bucket: values in [Lo, Hi).
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Buckets returns the populated buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	keys := make([]int, 0, len(h.counts))
	//iolint:ignore maporder keys are collected then sort.Ints'd before any use, so the returned bucket order is independent of map iteration order
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		out = append(out, Bucket{
			Lo:    math.Pow(2, float64(k)),
			Hi:    math.Pow(2, float64(k+1)),
			Count: h.counts[k],
		})
	}
	return out
}

// Mode returns the midpoint of the most populated bucket (0 when empty);
// ties break toward the larger bucket.
func (h *Histogram) Mode() float64 {
	best, bestCount := math.MinInt32, 0
	for k, n := range h.counts {
		if n > bestCount || (n == bestCount && k > best) {
			best, bestCount = k, n
		}
	}
	if bestCount == 0 {
		return 0
	}
	return math.Pow(2, float64(best)) * 1.5
}

// histogramWire mirrors Histogram with exported fields for serialization.
// Buckets and BucketCounts are parallel slices sorted by bucket exponent
// instead of a map: gob encodes maps in iteration order, which would make
// the bytes of two encodes of the same histogram differ. Results embedding
// a histogram (e.g. tmio.Report) are content-addressed and byte-compared
// by the sweep fabric, so the wire form must be deterministic.
type histogramWire struct {
	Buckets      []int
	BucketCounts []int
	Total        int
	Sum          float64
	Min          float64
	Max          float64
}

// MarshalBinary encodes the histogram for gob/binary transport. Histogram
// fields are unexported, so results embedding one (e.g. tmio.Report) need
// this to survive a cache round-trip. The encoding is deterministic: the
// same histogram always yields the same bytes.
func (h Histogram) MarshalBinary() ([]byte, error) {
	w := histogramWire{Total: h.total, Sum: h.sum, Min: h.min, Max: h.max}
	w.Buckets = make([]int, 0, len(h.counts))
	//iolint:ignore maporder bucket keys are sort.Ints'd before encoding, so the wire bytes are a pure function of the histogram contents
	for k := range h.counts {
		w.Buckets = append(w.Buckets, k)
	}
	sort.Ints(w.Buckets)
	w.BucketCounts = make([]int, len(w.Buckets))
	for i, k := range w.Buckets {
		w.BucketCounts[i] = h.counts[k]
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// UnmarshalBinary restores a histogram encoded by MarshalBinary.
func (h *Histogram) UnmarshalBinary(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.Buckets) != len(w.BucketCounts) {
		return fmt.Errorf("metrics: histogram wire form has %d buckets but %d counts",
			len(w.Buckets), len(w.BucketCounts))
	}
	var counts map[int]int
	if w.Buckets != nil {
		counts = make(map[int]int, len(w.Buckets))
		for i, k := range w.Buckets {
			counts[k] = w.BucketCounts[i]
		}
	}
	h.counts, h.total, h.sum, h.min, h.max = counts, w.Total, w.Sum, w.Min, w.Max
	return nil
}

// Render draws the histogram as rows of #-bars, with unit applied to the
// bucket bounds via format (e.g. "%.0f B").
func (h *Histogram) Render(title, format string, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s (n=%d, mean %s) ==\n", title, h.total,
			fmt.Sprintf(format, h.Mean()))
	}
	buckets := h.Buckets()
	maxCount := 0
	for _, bk := range buckets {
		if bk.Count > maxCount {
			maxCount = bk.Count
		}
	}
	for _, bk := range buckets {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", bk.Count*width/maxCount)
		}
		fmt.Fprintf(&b, "[%12s, %12s)  %6d %s\n",
			fmt.Sprintf(format, bk.Lo), fmt.Sprintf(format, bk.Hi), bk.Count, bar)
	}
	return b.String()
}
