package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iobehind/internal/des"
)

func TestSeriesAppendAndAt(t *testing.T) {
	var s Series
	s.Append(10, 1)
	s.Append(20, 2)
	s.Append(20, 3) // same-time overwrite
	s.Append(30, 3) // duplicate value coalesced
	s.Append(40, 0)
	if len(s.Points) != 3 {
		t.Fatalf("points = %v", s.Points)
	}
	cases := map[des.Time]float64{5: 0, 10: 1, 15: 1, 20: 3, 35: 3, 40: 0, 100: 0}
	for at, want := range cases {
		if got := s.At(at); got != want {
			t.Errorf("At(%d) = %v, want %v", at, got, want)
		}
	}
	if s.Max() != 3 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.End() != 40 {
		t.Fatalf("End = %v", s.End())
	}
}

func TestSeriesBackwardsPanics(t *testing.T) {
	var s Series
	s.Append(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards append did not panic")
		}
	}()
	s.Append(5, 2)
}

func TestSeriesIntegral(t *testing.T) {
	var s Series
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }
	s.Append(sec(0), 10)
	s.Append(sec(2), 0)
	s.Append(sec(3), 5)
	s.Append(sec(5), 0)
	// ∫ = 10*2 + 0*1 + 5*2 = 30
	if got := s.Integral(sec(0), sec(5)); math.Abs(got-30) > 1e-9 {
		t.Fatalf("Integral = %v, want 30", got)
	}
	// Partial window [1, 4): 10*1 + 0*1 + 5*1 = 15.
	if got := s.Integral(sec(1), sec(4)); math.Abs(got-15) > 1e-9 {
		t.Fatalf("partial Integral = %v, want 15", got)
	}
	if got := s.Integral(sec(4), sec(4)); got != 0 {
		t.Fatalf("empty Integral = %v", got)
	}
}

func TestSeriesTimeAbove(t *testing.T) {
	var s Series
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }
	s.Append(sec(0), 10)
	s.Append(sec(2), 1)
	s.Append(sec(4), 20)
	s.Append(sec(6), 0)
	if got := s.TimeAbove(5, sec(0), sec(6)); got != 4*des.Second {
		t.Fatalf("TimeAbove = %v, want 4s", got)
	}
	if got := s.TimeAbove(100, sec(0), sec(6)); got != 0 {
		t.Fatalf("TimeAbove(100) = %v", got)
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{Start: 10, End: 20}
	cases := []struct {
		b    Interval
		want des.Duration
	}{
		{Interval{0, 5}, 0},
		{Interval{0, 15}, 5},
		{Interval{12, 18}, 6},
		{Interval{15, 30}, 5},
		{Interval{20, 30}, 0},
		{Interval{10, 20}, 10},
	}
	for _, c := range cases {
		if got := a.Overlap(c.b); got != c.want {
			t.Errorf("Overlap(%v) = %v, want %v", c.b, got, c.want)
		}
	}
	if (Interval{5, 5}).Duration() != 0 || (Interval{9, 5}).Duration() != 0 {
		t.Fatal("degenerate durations")
	}
}

func TestIntervalsAddMergeAndOverlap(t *testing.T) {
	var set Intervals
	set.Add(Interval{0, 10})
	set.Add(Interval{10, 15}) // adjoining: merged
	set.Add(Interval{20, 30})
	set.Add(Interval{40, 40}) // empty: dropped
	if set.Len() != 2 {
		t.Fatalf("len = %d, want 2", set.Len())
	}
	if set.Total() != 25 {
		t.Fatalf("total = %v", set.Total())
	}
	if got := set.OverlapWith(Interval{5, 25}); got != 15 {
		t.Fatalf("overlap = %v, want 15", got)
	}
	if got := set.OverlapWith(Interval{16, 19}); got != 0 {
		t.Fatalf("overlap in gap = %v", got)
	}
}

func TestIntervalsOutOfOrderPanics(t *testing.T) {
	var set Intervals
	set.Add(Interval{10, 20})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order add did not panic")
		}
	}()
	set.Add(Interval{5, 8})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-9 || math.Abs(s.Std-2) > 1e-9 {
		t.Fatalf("mean/std = %v/%v", s.Mean, s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := map[float64]float64{0: 1, 50: 5, 90: 9, 100: 10, 150: 10, -5: 1}
	for p, want := range cases {
		if got := Percentile(vals, p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

// TestIntervalsOverlapProperty compares OverlapWith against brute force on
// random disjoint interval sets.
func TestIntervalsOverlapProperty(t *testing.T) {
	f := func(gaps []uint8, q0, ql uint16) bool {
		var set Intervals
		var list []Interval
		cur := des.Time(0)
		for i := 0; i+1 < len(gaps) && i < 40; i += 2 {
			cur += des.Time(gaps[i]) + 1
			iv := Interval{Start: cur, End: cur + des.Time(gaps[i+1]) + 1}
			set.Add(iv)
			list = append(list, iv)
			cur = iv.End + 1
		}
		q := Interval{Start: des.Time(q0), End: des.Time(q0) + des.Time(ql)}
		var want des.Duration
		for _, iv := range list {
			want += iv.Overlap(q)
		}
		return set.OverlapWith(q) == want
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestIntegralNonNegativeProperty: integrals of non-negative series are
// non-negative and additive over adjacent windows.
func TestIntegralNonNegativeProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		var s Series
		tm := des.Time(0)
		for _, v := range vals {
			s.Append(tm, float64(v%100))
			tm += des.Time(des.Second)
		}
		end := tm + des.Time(des.Second)
		mid := end / 2
		whole := s.Integral(0, end)
		split := s.Integral(0, mid) + s.Integral(mid, end)
		return whole >= 0 && math.Abs(whole-split) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
