// Package metrics provides the small time-series and statistics toolkit
// shared by the tracer, the aggregators, and the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"iobehind/internal/des"
)

// Point is one sample of a step series: the series holds value V from time
// T until the next point.
type Point struct {
	T des.Time
	V float64
}

// Series is a step function over virtual time. Points must be appended in
// non-decreasing time order.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample; equal-time updates overwrite the previous value and
// consecutive duplicates are coalesced.
func (s *Series) Append(t des.Time, v float64) {
	n := len(s.Points)
	if n > 0 {
		last := &s.Points[n-1]
		if t < last.T {
			panic(fmt.Sprintf("metrics: series %q time went backwards: %v < %v", s.Name, t, last.T))
		}
		if t == last.T {
			last.V = v
			return
		}
		//iolint:ignore floateq exact bit-equality is the intent: it only coalesces perfectly duplicate step points, and a missed match merely stores a redundant point
		if last.V == v {
			return
		}
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// At returns the series value at time t (0 before the first point).
func (s *Series) At(t des.Time) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Max returns the largest value in the series (0 if empty).
func (s *Series) Max() float64 {
	var max float64
	for _, p := range s.Points {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Integral returns ∫ s dt over [from, to), in value·seconds.
func (s *Series) Integral(from, to des.Time) float64 {
	if to <= from || len(s.Points) == 0 {
		return 0
	}
	total := 0.0
	cur := from
	for cur < to {
		v := s.At(cur)
		next := to
		i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > cur })
		if i < len(s.Points) && s.Points[i].T < to {
			next = s.Points[i].T
		}
		total += v * next.Sub(cur).Seconds()
		cur = next
	}
	return total
}

// TimeAbove returns the total time the series is strictly above threshold
// within [from, to).
func (s *Series) TimeAbove(threshold float64, from, to des.Time) des.Duration {
	if to <= from {
		return 0
	}
	var total des.Duration
	cur := from
	for cur < to {
		v := s.At(cur)
		next := to
		i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > cur })
		if i < len(s.Points) && s.Points[i].T < to {
			next = s.Points[i].T
		}
		if v > threshold {
			total += next.Sub(cur)
		}
		cur = next
	}
	return total
}

// End returns the time of the last point (0 if empty).
func (s *Series) End() des.Time {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].T
}

// Interval is a half-open span [Start, End) of virtual time.
type Interval struct {
	Start, End des.Time
}

// Duration returns End−Start (0 for inverted intervals).
func (iv Interval) Duration() des.Duration {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// Overlap returns the length of the intersection of two intervals.
func (iv Interval) Overlap(other Interval) des.Duration {
	start := iv.Start
	if other.Start > start {
		start = other.Start
	}
	end := iv.End
	if other.End < end {
		end = other.End
	}
	if end <= start {
		return 0
	}
	return end.Sub(start)
}

// Intervals is an ordered list of disjoint intervals (e.g. the spans a
// rank spent blocked in MPI_Wait). Add must be called in time order.
type Intervals struct {
	list []Interval
}

// Add appends an interval; empty ones are dropped, and an interval
// adjoining the previous end is merged.
func (s *Intervals) Add(iv Interval) {
	if iv.Duration() == 0 {
		return
	}
	if n := len(s.list); n > 0 {
		if iv.Start < s.list[n-1].End {
			panic("metrics: intervals added out of order")
		}
		if iv.Start == s.list[n-1].End {
			s.list[n-1].End = iv.End
			return
		}
	}
	s.list = append(s.list, iv)
}

// Total returns the summed duration of all intervals.
func (s *Intervals) Total() des.Duration {
	var d des.Duration
	for _, iv := range s.list {
		d += iv.Duration()
	}
	return d
}

// Len returns the number of stored intervals.
func (s *Intervals) Len() int { return len(s.list) }

// OverlapWith returns how much of iv intersects the stored intervals.
func (s *Intervals) OverlapWith(iv Interval) des.Duration {
	// Binary search for the first stored interval that might intersect.
	i := sort.Search(len(s.list), func(i int) bool { return s.list[i].End > iv.Start })
	var d des.Duration
	for ; i < len(s.list) && s.list[i].Start < iv.End; i++ {
		d += s.list[i].Overlap(iv)
	}
	return d
}

// Summary holds the basic statistics of a sample set.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Std float64
}

// Summarize computes the summary of values.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	sum := 0.0
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, v := range values {
		d := v - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(s.N))
	return s
}

// Percentile returns the p-th percentile (0..100) of values using
// nearest-rank on a sorted copy. An empty input yields 0.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// List returns the stored intervals in time order (a copy).
func (s *Intervals) List() []Interval {
	return append([]Interval(nil), s.list...)
}
