package tmio

import (
	"bytes"
	"encoding/json"
	"math"
	"net"
	"strings"
	"testing"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
)

// harness bundles one traced world.
type harness struct {
	e   *des.Engine
	w   *mpi.World
	fs  *pfs.PFS
	sys *mpiio.System
	tr  *Tracer
}

func newHarness(size int, cfg Config) *harness {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: size})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	sys := mpiio.NewSystem(w, fs, adio.Config{SubRequestSize: 1e6})
	tr := Attach(sys, cfg)
	return &harness{e: e, w: w, fs: fs, sys: sys, tr: tr}
}

func (h *harness) run(t *testing.T, main func(r *mpi.Rank, f *mpiio.File)) *Report {
	t.Helper()
	if err := h.w.Run(func(r *mpi.Rank) {
		f := h.sys.Open(r, "test.dat")
		main(r, f)
		r.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
	return h.tr.Report()
}

// phasedWriter is the canonical pattern of Fig. 3: compute, iwrite, compute,
// wait, iwrite, ... with per-phase constants.
func phasedWriter(phases int, bytes int64, compute des.Duration) func(*mpi.Rank, *mpiio.File) {
	return func(r *mpi.Rank, f *mpiio.File) {
		var req *mpiio.Request
		for j := 0; j < phases; j++ {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(0, bytes)
			r.Compute(compute)
		}
		req.Wait()
	}
}

func TestRequiredBandwidthMatchesComputePhase(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true})
	rep := h.run(t, phasedWriter(5, 10e6, des.Second))
	// Each phase: 10 MB available window ≈ 1 s ⇒ B ≈ 10 MB/s.
	if rep.Ranks != 1 || len(rep.BPhases) != 5 {
		t.Fatalf("ranks=%d phases=%d", rep.Ranks, len(rep.BPhases))
	}
	for _, ph := range rep.BPhases {
		if math.Abs(ph.Value-10e6)/10e6 > 0.01 {
			t.Fatalf("B = %v, want ~10e6", ph.Value)
		}
	}
	if math.Abs(rep.RequiredBandwidth-10e6)/10e6 > 0.01 {
		t.Fatalf("required = %v", rep.RequiredBandwidth)
	}
	if rep.AsyncOps != 5 {
		t.Fatalf("asyncOps = %d", rep.AsyncOps)
	}
}

func TestNoLimitLeavesAgentUnlimited(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true})
	h.run(t, phasedWriter(3, 1e6, des.Second))
	if !math.IsInf(h.tr.Limit(0), 1) {
		t.Fatalf("limit = %v, want unlimited", h.tr.Limit(0))
	}
}

func TestDirectStrategyAppliesLimit(t *testing.T) {
	h := newHarness(1, Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 2},
		DisableOverhead: true,
	})
	rep := h.run(t, phasedWriter(4, 10e6, des.Second))
	// After the first phase closes, limit ≈ 2 × 10 MB/s.
	if got := h.tr.Limit(0); math.Abs(got-20e6)/20e6 > 0.05 {
		t.Fatalf("limit = %v, want ~20e6", got)
	}
	if rep.FirstLimitAt == 0 {
		t.Fatal("first-limit time not recorded")
	}
	if len(rep.BLPhases) == 0 {
		t.Fatal("no B_L phases recorded")
	}
	for _, ph := range rep.BLPhases {
		if math.Abs(ph.Value-2*10e6)/(2*10e6) > 0.05 {
			t.Fatalf("B_L = %v, want ~2*B", ph.Value)
		}
	}
}

func TestUpOnlyNeverLowersLimit(t *testing.T) {
	h := newHarness(1, Config{
		Strategy:        StrategyConfig{Strategy: UpOnly, Tol: 1.1},
		DisableOverhead: true,
	})
	// Shrinking I/O sizes would lower a direct limit; up-only must hold.
	h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		sizes := []int64{40e6, 20e6, 10e6, 5e6}
		var req *mpiio.Request
		for _, s := range sizes {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(0, s)
			r.Compute(des.Second)
		}
		req.Wait()
	})
	want := 1.1 * 40e6 // from the largest (first) phase
	if got := h.tr.Limit(0); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("limit = %v, want ~%v", got, want)
	}
}

func TestThroughputFollowsPreviousPhaseLimit(t *testing.T) {
	h := newHarness(1, Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.0},
		DisableOverhead: true,
	})
	rep := h.run(t, phasedWriter(5, 10e6, des.Second))
	// Phases after the first are throttled to ~10 MB/s, so the measured
	// throughput of those phases must be ~10 MB/s instead of the 100 MB/s
	// the FS could deliver.
	if len(rep.TPhases) != 5 {
		t.Fatalf("T phases = %d", len(rep.TPhases))
	}
	unlimited := rep.TPhases[0].Value
	if unlimited < 90e6 {
		t.Fatalf("first phase throughput = %v, want ~100e6 (unthrottled)", unlimited)
	}
	for _, ph := range rep.TPhases[1:] {
		if math.Abs(ph.Value-10e6)/10e6 > 0.05 {
			t.Fatalf("throttled throughput = %v, want ~10e6", ph.Value)
		}
	}
}

func TestAdaptiveTracksTrend(t *testing.T) {
	cfg := StrategyConfig{Strategy: Adaptive, Tol: 1, TolD: 1}
	// Level 10, rising to 20: limit = 20 + (20-10) = 30.
	if got := cfg.NextLimit(10, 20, 10, true); got != 30 {
		t.Fatalf("adaptive = %v, want 30", got)
	}
	// Falling: 10 + (10−20) would be 0, but the limit is clamped at the
	// measured B — anything lower guarantees waiting and starts the
	// downward feedback spiral.
	if got := cfg.NextLimit(20, 10, 20, true); got != 10 {
		t.Fatalf("adaptive falling = %v, want 10 (clamped at B)", got)
	}
	// No previous phase: pure level.
	if got := cfg.NextLimit(0, 10, 0, false); got != 10 {
		t.Fatalf("adaptive first = %v, want 10", got)
	}
}

func TestStrategyStringsAndLabels(t *testing.T) {
	if None.String() != "none" || Direct.String() != "direct" ||
		UpOnly.String() != "up-only" || Adaptive.String() != "adaptive" {
		t.Fatal("strategy names")
	}
	if Strategy(42).String() != "strategy(42)" {
		t.Fatal("unknown strategy name")
	}
	if got := (StrategyConfig{Strategy: Direct, Tol: 2}).Label(); got != "direct(tol=2)" {
		t.Fatalf("label = %q", got)
	}
	if got := (StrategyConfig{Strategy: Adaptive}).Label(); got != "adaptive(tol=1.1,tolD=0.5)" {
		t.Fatalf("label = %q", got)
	}
	if got := (StrategyConfig{}).Label(); got != "none" {
		t.Fatalf("label = %q", got)
	}
	if (StrategyConfig{Strategy: UpOnly}).Limits() != true ||
		(StrategyConfig{}).Limits() != false {
		t.Fatal("Limits()")
	}
}

func TestExploitAccountsHiddenIO(t *testing.T) {
	h := newHarness(1, Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 1},
		DisableOverhead: true,
	})
	rep := h.run(t, phasedWriter(10, 10e6, des.Second))
	d := rep.Distribution()
	// Throttled phases stretch the operation across the whole compute
	// phase: exploit must dominate.
	if d.AsyncWriteExploit < 60 {
		t.Fatalf("exploit = %v%%, want > 60%%", d.AsyncWriteExploit)
	}
	if d.AsyncWriteLost > 5 {
		t.Fatalf("lost = %v%%, want small", d.AsyncWriteLost)
	}
	total := d.SyncWrite + d.SyncRead + d.AsyncWriteLost + d.AsyncReadLost +
		d.AsyncWriteExploit + d.AsyncReadExploit + d.OverheadPeri +
		d.OverheadPost + d.ComputeFree
	if math.Abs(total-100) > 0.5 {
		t.Fatalf("distribution sums to %v%%", total)
	}
}

func TestUnthrottledBurstHasLowExploit(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true})
	rep := h.run(t, phasedWriter(10, 1e6, des.Second))
	d := rep.Distribution()
	// 1 MB at 100 MB/s = 10 ms inside a 1 s phase: ~1% exploit.
	if d.AsyncWriteExploit > 5 {
		t.Fatalf("exploit = %v%%, want tiny for bursts", d.AsyncWriteExploit)
	}
	if d.ComputeFree < 90 {
		t.Fatalf("compute = %v%%", d.ComputeFree)
	}
}

func TestLostWhenComputeTooShort(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true})
	rep := h.run(t, phasedWriter(5, 100e6, 100*des.Millisecond))
	d := rep.Distribution()
	// 1 s of I/O against 0.1 s compute phases: most time is blocked waits.
	if d.AsyncWriteLost < 70 {
		t.Fatalf("lost = %v%%, want dominant", d.AsyncWriteLost)
	}
}

func TestSyncIOVisible(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true})
	rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		f.WriteAt(0, 50e6) // 0.5 s
		r.Compute(500 * des.Millisecond)
		f.ReadAt(0, 25e6) // 0.25 s
	})
	d := rep.Distribution()
	if math.Abs(d.SyncWrite-40) > 2 || math.Abs(d.SyncRead-20) > 2 {
		t.Fatalf("sync write/read = %v/%v, want ~40/20", d.SyncWrite, d.SyncRead)
	}
	if got := d.VisibleIO(); math.Abs(got-60) > 3 {
		t.Fatalf("visible = %v", got)
	}
	if rep.SyncOps != 2 {
		t.Fatalf("syncOps = %d", rep.SyncOps)
	}
}

func TestMultiRequestPhaseFirstVsLastWait(t *testing.T) {
	run := func(rule PhaseEndRule) *Report {
		h := newHarness(1, Config{PhaseEnd: rule, DisableOverhead: true})
		return h.run(t, func(r *mpi.Rank, f *mpiio.File) {
			// Two requests in one phase; the second wait comes later.
			q1 := f.IwriteAt(0, 10e6)
			q2 := f.IwriteAt(0, 10e6)
			r.Compute(des.Second)
			q1.Wait()
			r.Compute(des.Second)
			q2.Wait()
		})
	}
	first := run(FirstWait)
	last := run(LastWait)
	if len(first.BPhases) != 1 || len(last.BPhases) != 1 {
		t.Fatalf("phases: first=%d last=%d", len(first.BPhases), len(last.BPhases))
	}
	// FirstWait: window 1 s for 20 MB ⇒ B ≈ 20+20 MB/s (sum of two
	// requests over the same window). LastWait: window 2 s ⇒ about half.
	if first.BPhases[0].Value <= last.BPhases[0].Value {
		t.Fatalf("FirstWait B (%v) should exceed LastWait B (%v)",
			first.BPhases[0].Value, last.BPhases[0].Value)
	}
}

func TestSumVsAverageAggregation(t *testing.T) {
	run := func(agg Aggregation) float64 {
		h := newHarness(1, Config{Aggregation: agg, DisableOverhead: true})
		rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
			q1 := f.IwriteAt(0, 10e6)
			q2 := f.IwriteAt(0, 10e6)
			r.Compute(des.Second)
			q1.Wait()
			q2.Wait()
		})
		return rep.BPhases[0].Value
	}
	sum, avg := run(Sum), run(Average)
	if math.Abs(sum-2*avg)/sum > 0.01 {
		t.Fatalf("sum=%v avg=%v, want sum ≈ 2·avg", sum, avg)
	}
}

func TestOverheadPeriSmallAndPostGrows(t *testing.T) {
	runWith := func(size int) *Report {
		h := newHarness(size, Config{})
		return h.run(t, phasedWriter(5, 1e6, 100*des.Millisecond))
	}
	small := runWith(2)
	big := runWith(16)
	if small.Distribution().OverheadPeri > 0.1 {
		t.Fatalf("peri overhead = %v%%, want < 0.1%%", small.Distribution().OverheadPeri)
	}
	if big.PostOverhead <= small.PostOverhead {
		t.Fatalf("post overhead did not grow: %v vs %v",
			big.PostOverhead, small.PostOverhead)
	}
	if small.OverheadShare() > 9 || big.OverheadShare() > 9 {
		t.Fatalf("overhead share exceeds the paper's 9%% bound: %v / %v",
			small.OverheadShare(), big.OverheadShare())
	}
}

func TestAppTimeExcludesPostOverhead(t *testing.T) {
	h := newHarness(4, Config{})
	rep := h.run(t, phasedWriter(3, 1e6, 100*des.Millisecond))
	if rep.AppTime >= rep.Runtime {
		t.Fatalf("AppTime %v not below Runtime %v", rep.AppTime, rep.Runtime)
	}
}

func TestReportJSON(t *testing.T) {
	h := newHarness(2, Config{Strategy: StrategyConfig{Strategy: Direct}})
	rep := h.run(t, phasedWriter(3, 5e6, des.Second))
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"required_bandwidth", "b_series", "distribution", "async_exploit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out[:min(len(out), 400)])
		}
	}
}

func TestSinkReceivesPhases(t *testing.T) {
	h := newHarness(2, Config{DisableOverhead: true})
	sink := &CollectSink{}
	h.tr.SetSink(sink)
	h.run(t, phasedWriter(4, 1e6, 100*des.Millisecond))
	if sink.Len() != 2*4 {
		t.Fatalf("sink records = %d, want 8", sink.Len())
	}
	if err := h.tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	rec := sink.Records[0]
	if rec.B <= 0 || rec.TeSec <= rec.TsSec {
		t.Fatalf("bad record: %+v", rec)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSinkRoundTrip(t *testing.T) {
	// A real TCP connection: listener collects JSON lines.
	ln, err := newLocalListener()
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	defer ln.Close()
	got := make(chan string, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- ""
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		n, _ := conn.Read(buf)
		got <- string(buf[:n])
	}()
	sink, err := DialSink(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(StreamRecord{Rank: 3, Phase: 1, B: 42}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	line := <-got
	if !strings.Contains(line, `"rank":3`) || !strings.Contains(line, `"b":42`) {
		t.Fatalf("streamed line = %q", line)
	}
}

func TestTracerString(t *testing.T) {
	h := newHarness(2, Config{Strategy: StrategyConfig{Strategy: UpOnly}})
	if got := h.tr.String(); !strings.Contains(got, "up-only") {
		t.Fatalf("String = %q", got)
	}
	if h.tr.Config().Strategy.Tol != 1.1 {
		t.Fatal("defaults not applied")
	}
}

func TestPhasesCount(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true})
	h.run(t, phasedWriter(7, 1e6, 10*des.Millisecond))
	if got := h.tr.Phases(0); got != 7 {
		t.Fatalf("phases = %d, want 7", got)
	}
}

func TestSpeedup(t *testing.T) {
	a := &Report{AppTime: 90 * des.Second}
	b := &Report{AppTime: 100 * des.Second}
	if got := a.Speedup(b); math.Abs(got-10) > 1e-9 {
		t.Fatalf("speedup = %v, want 10", got)
	}
	if (&Report{}).Speedup(b) != 0 {
		t.Fatal("zero AppTime speedup")
	}
}

// newLocalListener returns a loopback TCP listener for the sink test.
func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestFrequencyTable(t *testing.T) {
	var ft FrequencyTable
	if !math.IsInf(ft.Limit(1.1), 1) {
		t.Fatal("empty table must be unlimited")
	}
	// Mode around ~100 MB/s with one huge outlier.
	for i := 0; i < 5; i++ {
		ft.Observe(100e6 + float64(i)*1e6)
	}
	ft.Observe(5e9) // outlier
	ft.Observe(-1)  // ignored
	if ft.Observations() != 6 {
		t.Fatalf("observations = %d", ft.Observations())
	}
	limit := ft.Limit(1.1)
	want := 104e6 * 1.1
	if math.Abs(limit-want)/want > 0.01 {
		t.Fatalf("limit = %v, want ~%v (mode bucket peak × tol)", limit, want)
	}
}

func TestFrequentStrategyIgnoresOutliers(t *testing.T) {
	h := newHarness(1, Config{
		Strategy:        StrategyConfig{Strategy: Frequent, Tol: 1.1},
		DisableOverhead: true,
	})
	h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		var req *mpiio.Request
		sizes := []int64{10e6, 10e6, 10e6, 200e6, 10e6, 10e6}
		for _, s := range sizes {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(0, s)
			r.Compute(des.Second)
		}
		req.Wait()
	})
	// Direct would have latched onto the 200 MB outlier phase; frequent
	// stays at the 10 MB/s mode (×1.1).
	if got := h.tr.Limit(0); math.Abs(got-11e6)/11e6 > 0.1 {
		t.Fatalf("limit = %v, want ~11e6 (the mode)", got)
	}
}

func TestFrequentStrategyLabel(t *testing.T) {
	if Frequent.String() != "frequent" {
		t.Fatal("name")
	}
	if got := (StrategyConfig{Strategy: Frequent, Tol: 1.2}).Label(); got != "frequent(tol=1.2)" {
		t.Fatalf("label = %q", got)
	}
}

func TestOnlineAggregationDuringRun(t *testing.T) {
	h := newHarness(2, Config{DisableOverhead: true, OnlineAggregation: true})
	var midRun float64
	h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		var req *mpiio.Request
		for j := 0; j < 6; j++ {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(0, 10e6)
			r.Compute(des.Second)
			if j == 4 && r.ID() == 0 {
				midRun = h.tr.OnlineB() // queried while the app still runs
			}
		}
		req.Wait()
	})
	if midRun <= 0 {
		t.Fatal("online B unavailable mid-run")
	}
	// The mid-run value is already the right magnitude: 2 ranks × 10 MB/s.
	if midRun < 10e6 || midRun > 25e6 {
		t.Fatalf("online B = %v, want ≈2×10e6", midRun)
	}
	// Offline report agrees with the final online value.
	rep := h.tr.Report()
	if math.Abs(h.tr.OnlineB()-rep.RequiredBandwidth)/rep.RequiredBandwidth > 0.01 {
		t.Fatalf("online %v vs offline %v", h.tr.OnlineB(), rep.RequiredBandwidth)
	}
}

func TestOnlineBWithoutFlag(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true})
	if h.tr.OnlineB() != 0 {
		t.Fatal("OnlineB without the flag should be 0")
	}
}

func TestPerClassLimitsIndependent(t *testing.T) {
	h := newHarness(1, Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.1},
		PerClassLimits:  true,
		DisableOverhead: true,
	})
	h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		// Alternating classes with very different requirements: writes
		// need ~100 MB/s, reads ~20 MB/s.
		var wq, rq *mpiio.Request
		for j := 0; j < 4; j++ {
			if rq != nil {
				rq.Wait()
			}
			wq = f.IwriteAt(0, 100e6)
			r.Compute(des.Second)
			wq.Wait()
			rq = f.IreadAt(0, 20e6)
			r.Compute(des.Second)
		}
		rq.Wait()
	})
	agent := h.sys.Agent(0)
	wLimit, rLimit := agent.ClassLimit(pfs.Write), agent.ClassLimit(pfs.Read)
	if math.Abs(wLimit-110e6)/110e6 > 0.05 {
		t.Fatalf("write limit = %v, want ~110e6", wLimit)
	}
	if math.Abs(rLimit-22e6)/22e6 > 0.05 {
		t.Fatalf("read limit = %v, want ~22e6", rLimit)
	}
}

func TestSharedLimitOscillatesAcrossClasses(t *testing.T) {
	// The ablation motivating PerClassLimits: with one shared limit, the
	// write phases inherit the (much lower) read-derived limit and must
	// wait; with per-class limits they do not.
	run := func(perClass bool) Distribution {
		h := newHarness(1, Config{
			Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.1},
			PerClassLimits:  perClass,
			DisableOverhead: true,
		})
		rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
			var wq, rq *mpiio.Request
			for j := 0; j < 6; j++ {
				if rq != nil {
					rq.Wait()
				}
				wq = f.IwriteAt(0, 80e6) // needs 80 MB/s over 1 s
				r.Compute(des.Second)
				wq.Wait()
				rq = f.IreadAt(0, 10e6) // needs 10 MB/s over 1 s
				r.Compute(des.Second)
			}
			rq.Wait()
		})
		return rep.Distribution()
	}
	shared := run(false)
	perClass := run(true)
	if shared.AsyncWriteLost <= perClass.AsyncWriteLost {
		t.Fatalf("shared limit should cause write waits: shared=%v perClass=%v",
			shared.AsyncWriteLost, perClass.AsyncWriteLost)
	}
	if perClass.AsyncWriteLost > 1 {
		t.Fatalf("per-class limits still waiting: %v%%", perClass.AsyncWriteLost)
	}
}

func TestReportHistograms(t *testing.T) {
	h := newHarness(2, Config{DisableOverhead: true})
	rep := h.run(t, phasedWriter(5, 16e6, des.Second))
	// 2 ranks × 5 requests.
	if rep.SizeHist.Count() != 10 {
		t.Fatalf("size hist count = %d", rep.SizeHist.Count())
	}
	if got := rep.SizeHist.Mean(); math.Abs(got-16e6) > 1 {
		t.Fatalf("size mean = %v", got)
	}
	if rep.WindowHist.Count() != 10 {
		t.Fatalf("window hist count = %d", rep.WindowHist.Count())
	}
	// Windows ≈ 1 s compute phases.
	if got := rep.WindowHist.Mean(); got < 0.9 || got > 1.3 {
		t.Fatalf("window mean = %v", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	h := newHarness(2, Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.1},
		DisableOverhead: true,
	})
	h.run(t, phasedWriter(4, 100e6, 200*des.Millisecond)) // I/O outlasts compute: waits exist
	var buf bytes.Buffer
	if err := h.tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var meta, spans, waits, instants int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			if ev["cat"] == "wait" {
				waits++
			} else {
				spans++
			}
		case "i":
			instants++
		}
	}
	if meta != 2 {
		t.Fatalf("thread metadata = %d, want 2", meta)
	}
	if spans != 2*4 {
		t.Fatalf("io spans = %d, want 8", spans)
	}
	if waits == 0 || instants == 0 {
		t.Fatalf("waits=%d instants=%d, want both > 0", waits, instants)
	}
}

func TestUniformLimitStarvesImbalancedRanks(t *testing.T) {
	// Rank 0 writes 4x more than rank 1. Per-rank limits fit each; the
	// uniform application-level limit caps both at the mean and makes the
	// heavy rank wait — the reason the paper keeps limits per rank.
	run := func(uniform bool) Distribution {
		h := newHarness(2, Config{
			Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.1},
			UniformLimit:    uniform,
			DisableOverhead: true,
		})
		rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
			bytes := int64(80e6)
			if r.ID() == 1 {
				bytes = 20e6
			}
			var req *mpiio.Request
			for j := 0; j < 6; j++ {
				if req != nil {
					req.Wait()
				}
				req = f.IwriteAt(0, bytes)
				r.Compute(des.Second)
			}
			req.Wait()
		})
		return rep.Distribution()
	}
	perRank := run(false)
	uniform := run(true)
	if uniform.AsyncWriteLost <= perRank.AsyncWriteLost {
		t.Fatalf("uniform limit should cause waits under imbalance: uniform=%v perRank=%v",
			uniform.AsyncWriteLost, perRank.AsyncWriteLost)
	}
	if perRank.AsyncWriteLost > 1 {
		t.Fatalf("per-rank limits waiting: %v%%", perRank.AsyncWriteLost)
	}
}

func TestRankBreakdown(t *testing.T) {
	h := newHarness(3, Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.1},
		DisableOverhead: true,
	})
	h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		bytes := int64((r.ID() + 1)) * 10e6 // imbalanced
		var req *mpiio.Request
		for j := 0; j < 3; j++ {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(0, bytes)
			r.Compute(des.Second)
		}
		req.Wait()
	})
	stats := h.tr.RankBreakdown()
	if len(stats) != 3 {
		t.Fatalf("ranks = %d", len(stats))
	}
	for i, st := range stats {
		if st.Rank != i || st.Phases != 3 {
			t.Fatalf("rank %d stats: %+v", i, st)
		}
		wantBytes := int64(i+1) * 10e6 * 3
		if st.AsyncBytes != wantBytes {
			t.Fatalf("rank %d bytes = %d, want %d", i, st.AsyncBytes, wantBytes)
		}
	}
	// The imbalance shows in the per-rank limits: rank 2's is ~3× rank 0's.
	if stats[2].Limit < 2.5*stats[0].Limit {
		t.Fatalf("limits do not reflect imbalance: %v vs %v",
			stats[2].Limit, stats[0].Limit)
	}
}

func TestOutOfOrderWaitsFirstWaitRule(t *testing.T) {
	// Waiting the second request before the first: under FirstWait the
	// phase stays open until the *head* is waited.
	h := newHarness(1, Config{DisableOverhead: true})
	rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		q1 := f.IwriteAt(0, 10e6)
		q2 := f.IwriteAt(0, 10e6)
		r.Compute(des.Second)
		q2.Wait() // out of order: does not close the phase
		r.Compute(des.Second)
		q1.Wait() // head: closes with a 2 s window
	})
	if len(rep.BPhases) != 1 {
		t.Fatalf("phases = %d", len(rep.BPhases))
	}
	// Window = 2 s (until the head's wait): B = 10e6/2 + 10e6/2 = 10e6.
	if got := rep.BPhases[0].Value; math.Abs(got-10e6)/10e6 > 0.01 {
		t.Fatalf("B = %v, want ~10e6", got)
	}
}

func TestOutOfOrderWaitsLastWaitRule(t *testing.T) {
	// Under LastWait the same pattern closes at the head's wait too,
	// because by then *all* queue members have been waited.
	h := newHarness(1, Config{PhaseEnd: LastWait, DisableOverhead: true})
	rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		q1 := f.IwriteAt(0, 10e6)
		q2 := f.IwriteAt(0, 10e6)
		r.Compute(des.Second)
		q2.Wait()
		r.Compute(des.Second)
		q1.Wait()
	})
	if len(rep.BPhases) != 1 {
		t.Fatalf("phases = %d", len(rep.BPhases))
	}
	if got := rep.BPhases[0].Value; math.Abs(got-10e6)/10e6 > 0.01 {
		t.Fatalf("B = %v, want ~10e6", got)
	}
}

func TestWaitForClosedPhaseRequestIgnored(t *testing.T) {
	// A request left over from a closed phase: its wait is tracked as
	// blocking time but opens no new phase bookkeeping.
	h := newHarness(1, Config{DisableOverhead: true})
	rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		q1 := f.IwriteAt(0, 10e6)
		q2 := f.IwriteAt(0, 10e6)
		r.Compute(des.Second)
		q1.Wait() // closes the phase containing q1 AND q2
		r.Compute(des.Second)
		q2.Wait() // wait for a request of an already-closed phase
	})
	if len(rep.BPhases) != 1 {
		t.Fatalf("phases = %d", len(rep.BPhases))
	}
	if rep.AsyncOps != 2 {
		t.Fatalf("ops = %d", rep.AsyncOps)
	}
}

func TestPollingThroughputAccuracy(t *testing.T) {
	st := &adio.RequestStats{
		Bytes: 100e6,
		Start: 0,
		End:   des.Time(des.Second), // exact: 100 MB/s
	}
	exact := PollingThroughput(st, 0)
	if math.Abs(exact-100e6) > 1 {
		t.Fatalf("exact = %v", exact)
	}
	// Polling every 300 ms: completion observed at 1.2 s → 83.3 MB/s.
	coarse := PollingThroughput(st, 300*des.Millisecond)
	if math.Abs(coarse-100e6/1.2) > 1 {
		t.Fatalf("coarse = %v", coarse)
	}
	// The error grows with the polling interval.
	prev := 0.0
	for _, iv := range []des.Duration{des.Millisecond, 100 * des.Millisecond,
		400 * des.Millisecond, 900 * des.Millisecond} {
		e := ThroughputError(st, iv)
		if e < prev-1e-9 {
			t.Fatalf("error not monotone at %v: %v < %v", iv, e, prev)
		}
		prev = e
	}
	if prev < 0.4 {
		t.Fatalf("900 ms polling should underestimate badly, got %v", prev)
	}
	// Degenerate stats.
	if PollingThroughput(&adio.RequestStats{}, des.Second) != 0 {
		t.Fatal("degenerate")
	}
}
