package tmio

import (
	"fmt"
	"sort"

	"iobehind/internal/des"
	"iobehind/internal/pfs"
	"iobehind/internal/region"
)

// Replay answers the what-if question the traced data enables: given the
// required bandwidths B_ij measured in one run, what would a different
// strategy (or tolerance) have done? For each rank the phases are replayed
// in order: the strategy derives the limit for phase j+1 from B_ij exactly
// as it would have online, and the projected I/O duration bytes/limit is
// compared against the actually available window. The result predicts the
// waiting time and compute-phase exploitation of the hypothetical run —
// without re-running the application.
//
// This is the analysis path the paper gestures at when it offers the
// required bandwidth "to other bandwidth-limiting approaches": recorded
// requirements are enough to evaluate a policy offline.
type ReplayPhase struct {
	Rank   int
	Index  int
	B      float64      // measured required bandwidth
	Window des.Duration // measured available window
	Limit  float64      // the limit the replayed strategy applies here
	// Projected outcomes under the replayed limit:
	Duration des.Duration // bytes / limit (capped at window when unlimited)
	Wait     des.Duration // max(0, Duration − Window)
	Exploit  des.Duration // min(Duration, Window)
}

// ReplayResult aggregates one replayed strategy.
type ReplayResult struct {
	Strategy    StrategyConfig
	Phases      []ReplayPhase
	TotalWait   des.Duration
	TotalWindow des.Duration
	TotalHidden des.Duration
}

// WaitShare returns projected waiting as a fraction of the total windows.
func (r *ReplayResult) WaitShare() float64 {
	if r.TotalWindow <= 0 {
		return 0
	}
	return r.TotalWait.Seconds() / r.TotalWindow.Seconds()
}

// ExploitShare returns projected hidden-I/O time as a fraction of the
// total windows.
func (r *ReplayResult) ExploitShare() float64 {
	if r.TotalWindow <= 0 {
		return 0
	}
	return r.TotalHidden.Seconds() / r.TotalWindow.Seconds()
}

func (r *ReplayResult) String() string {
	return fmt.Sprintf("replay %s: wait %.2f%%, exploit %.2f%% of windows",
		r.Strategy.Label(), 100*r.WaitShare(), 100*r.ExploitShare())
}

// Replay runs the strategy over recorded phases (e.g. Report.BPhases).
// Phases are grouped per rank and replayed in Index order. Degenerate
// phases (zero window or B) are skipped, as the online tracer skips them.
func Replay(phases []region.Phase, strat StrategyConfig) *ReplayResult {
	strat = strat.WithDefaults()
	byRank := make(map[int][]region.Phase)
	for _, ph := range phases {
		if ph.Value <= 0 || ph.End <= ph.Start {
			continue
		}
		byRank[ph.Rank] = append(byRank[ph.Rank], ph)
	}
	ranks := make([]int, 0, len(byRank))
	for rank := range byRank {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)

	res := &ReplayResult{Strategy: strat}
	for _, rank := range ranks {
		seq := byRank[rank]
		sort.Slice(seq, func(i, j int) bool { return seq[i].Index < seq[j].Index })
		limit := pfs.Unlimited
		lastB := 0.0
		haveLast := false
		var freq FrequencyTable
		for _, ph := range seq {
			window := ph.End.Sub(ph.Start)
			bytes := ph.Value * window.Seconds()

			rp := ReplayPhase{
				Rank: rank, Index: ph.Index,
				B: ph.Value, Window: window, Limit: limit,
			}
			if limit == pfs.Unlimited {
				// Unlimited: the burst is assumed instantaneous relative
				// to the window (the recorded run's actual transfer time
				// is not part of the B record).
				rp.Duration = 0
			} else {
				rp.Duration = des.DurationOf(bytes / limit)
			}
			if rp.Duration > window {
				rp.Wait = rp.Duration - window
				rp.Exploit = window
			} else {
				rp.Exploit = rp.Duration
			}
			res.Phases = append(res.Phases, rp)
			res.TotalWait += rp.Wait
			res.TotalWindow += window
			res.TotalHidden += rp.Exploit

			// Derive the next limit exactly as the online tracer would.
			if strat.Strategy == Frequent {
				freq.Observe(ph.Value)
				limit = freq.Limit(strat.Tol)
			} else {
				limit = strat.NextLimit(limit, ph.Value, lastB, haveLast)
			}
			lastB = ph.Value
			haveLast = true
		}
	}
	return res
}

// CompareStrategies replays several strategies over the same recorded
// phases and returns the results in the given order — the offline
// strategy-selection workflow.
func CompareStrategies(phases []region.Phase, strategies []StrategyConfig) []*ReplayResult {
	out := make([]*ReplayResult, len(strategies))
	for i, s := range strategies {
		out[i] = Replay(phases, s)
	}
	return out
}
