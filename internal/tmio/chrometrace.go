package tmio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"iobehind/internal/des"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the traced run as Chrome trace-event JSON: one
// timeline row per rank with its I/O operation spans (hidden asynchronous
// activity) and wait spans (visible blocking), plus instants where limits
// were applied. Load the file in Perfetto or chrome://tracing to see the
// paper's overlap story frame by frame.
//
// Call it after the run; spans come from the same records Report uses.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	usec := func(x des.Time) float64 { return float64(x) / 1e3 }
	usecD := func(d des.Duration) float64 { return float64(d) / 1e3 }

	var events []chromeEvent
	for _, rt := range t.ranks {
		tid := rt.rank.ID()
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", tid)},
		})
		// Asynchronous operation windows (the agent executing in the
		// background) from the recorded phases.
		for _, ph := range rt.phases {
			for _, req := range ph.requests {
				st := req.Stats()
				if st.End <= st.Start {
					continue
				}
				limit := st.Limit
				if math.IsInf(limit, 1) {
					limit = -1 // JSON cannot carry +Inf; -1 = unlimited
				}
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("async %s %dB", st.Class, st.Bytes),
					Cat:  "io",
					Ph:   "X",
					Ts:   usec(st.Start),
					Dur:  usecD(st.End.Sub(st.Start)),
					Pid:  0,
					Tid:  tid,
					Args: map[string]any{
						"limit":  limit,
						"slept":  st.SleptFor.Seconds(),
						"phase":  ph.index,
						"window": ph.te.Sub(ph.ts).Seconds(),
					},
				})
			}
			if ph.limited {
				events = append(events, chromeEvent{
					Name: "limit applied", Cat: "limit", Ph: "i",
					Ts: usec(ph.te), Pid: 0, Tid: tid,
					Args: map[string]any{"bytes_per_s": ph.bl},
				})
			}
		}
		// Visible waiting.
		for _, iv := range rt.waits.List() {
			events = append(events, chromeEvent{
				Name: "MPI_Wait (blocked)",
				Cat:  "wait",
				Ph:   "X",
				Ts:   usec(iv.Start),
				Dur:  usecD(iv.End.Sub(iv.Start)),
				Pid:  0,
				Tid:  tid,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
