package tmio

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// ErrEmptyRecord is returned by DecodeStreamRecord for blank input lines.
var ErrEmptyRecord = errors.New("tmio: empty stream record")

// DecodeStreamRecord parses one JSON line of the TMIO stream protocol —
// the inverse of what TCPSink emits. It is the single decode path shared
// by every consumer (the gateway's ingest loop, tests, fuzzing), so
// tolerance decisions live in one place:
//
//   - unknown fields and higher schema versions are accepted (the
//     protocol only grows; encoding/json ignores what it does not know);
//   - surrounding whitespace is trimmed;
//   - anything that is not one complete JSON object — truncated lines,
//     trailing garbage, arrays, bare literals — is an error.
//
// On error the returned record is always the zero value, never a
// partially decoded one, so callers cannot accidentally ingest fields
// from a rejected line.
func DecodeStreamRecord(line []byte) (StreamRecord, error) {
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 {
		return StreamRecord{}, ErrEmptyRecord
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	var rec StreamRecord
	if err := dec.Decode(&rec); err != nil {
		return StreamRecord{}, fmt.Errorf("tmio: decode stream record: %w", err)
	}
	// json.Decoder stops at the end of the first value; a second value on
	// the line (e.g. `{...}{...}` from a torn write) means the framing is
	// broken and the line cannot be trusted.
	if dec.More() {
		return StreamRecord{}, errors.New("tmio: decode stream record: trailing data after record")
	}
	return rec, nil
}
