package tmio

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iobehind/internal/des"
)

// TestSinkCloseThenEmit: emitting on a closed sink must fail cleanly (no
// panic, no block) and Close must be idempotent.
func TestSinkCloseThenEmit(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sink := NewTCPSinkWith(client, SinkOptions{WriteTimeout: 20 * time.Millisecond})
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := sink.Emit(StreamRecord{Rank: 1}); err != ErrSinkClosed {
		t.Fatalf("emit after close = %v, want ErrSinkClosed", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestSinkStalledPeerNeverBlocks: a peer that accepts the connection but
// never reads must cost the emitter nothing. net.Pipe is unbuffered, so
// every write to the stalled peer parks until the write deadline — the
// deterministic worst case. Emit must stay non-blocking, the buffer must
// stay bounded, and the loss must be counted.
func TestSinkStalledPeerNeverBlocks(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sink := NewTCPSinkWith(client, SinkOptions{
		BufferRecords: 8,
		WriteTimeout:  20 * time.Millisecond,
	})
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1}); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("200 emits against a stalled peer took %v", elapsed)
	}
	sink.Close()
	if got := sink.Dropped(); got == 0 {
		t.Fatal("no drops recorded: buffer cannot have stayed bounded")
	} else if got > 200 {
		t.Fatalf("dropped %d > emitted 200", got)
	}
}

// TestTracedAppSurvivesStalledCollector is the backpressure acceptance
// test: a real traced simulation streams into a collector that never
// reads. The application must finish promptly with no sink error; the
// sink buffers then drops, and Dropped reflects the loss.
func TestTracedAppSurvivesStalledCollector(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sink := NewTCPSinkWith(client, SinkOptions{
		BufferRecords: 16,
		WriteTimeout:  20 * time.Millisecond,
	})

	h := newHarness(2, Config{DisableOverhead: true})
	h.tr.SetSink(sink)
	start := time.Now()
	rep := h.run(t, phasedWriter(100, 1e6, 50*des.Millisecond))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("traced run blocked on stalled collector: %v", elapsed)
	}
	if err := h.tr.SinkErr(); err != nil {
		t.Fatalf("stalled collector surfaced as app error: %v", err)
	}
	if len(rep.BPhases) != 2*100 {
		t.Fatalf("phases = %d, want 200 (tracing degraded the run)", len(rep.BPhases))
	}
	sink.Close()
	if sink.Dropped() == 0 {
		t.Fatal("expected drops with a 16-record buffer and 200 records")
	}
}

// lineServer is a test collector: it accepts connections in a loop and
// records every JSON line received, tracking which connection it arrived
// on.
type lineServer struct {
	ln net.Listener

	mu     sync.Mutex
	conns  int
	lines  []StreamRecord
	byConn map[int]int

	// closeAfterFirstLine makes connection 1 drop after one line (the
	// peer-closes-mid-stream scenario).
	closeAfterFirstLine bool
}

func newLineServer(t *testing.T, closeAfterFirstLine bool) *lineServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	s := &lineServer{ln: ln, byConn: make(map[int]int), closeAfterFirstLine: closeAfterFirstLine}
	go s.acceptLoop()
	return s
}

func (s *lineServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns++
		id := s.conns
		s.mu.Unlock()
		go s.read(conn, id)
	}
}

func (s *lineServer) read(conn net.Conn, id int) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		s.mu.Lock()
		s.lines = append(s.lines, rec)
		s.byConn[id]++
		first := s.closeAfterFirstLine && id == 1
		s.mu.Unlock()
		if first {
			return // abrupt close mid-stream
		}
	}
}

func (s *lineServer) snapshot() (conns int, lines []StreamRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns, append([]StreamRecord(nil), s.lines...)
}

// TestSinkReconnectsAfterPeerClose: the collector drops the connection
// after one record; the sink must redial (with backoff) and keep
// delivering without ever surfacing an error to the emitter.
func TestSinkReconnectsAfterPeerClose(t *testing.T) {
	srv := newLineServer(t, true)
	defer srv.ln.Close()

	sink, err := DialSinkWith(srv.ln.Addr().String(), SinkOptions{
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	deadline := time.After(5 * time.Second)
	for i := 0; ; i++ {
		if err := sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1}); err != nil {
			t.Fatalf("emit: %v", err)
		}
		conns, lines := srv.snapshot()
		if conns >= 2 && len(lines) >= 2 {
			srv.mu.Lock()
			second := srv.byConn[2]
			srv.mu.Unlock()
			if second == 0 {
				continue // reconnected but nothing delivered yet
			}
			return // delivered on the second connection: reconnect worked
		}
		select {
		case <-deadline:
			t.Fatalf("no delivery after reconnect: conns=%d lines=%d", conns, len(lines))
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestSinkBuffersDuringOutage: with the collector fully down (connection
// dead, listener gone), the sink keeps accepting records into its bounded
// buffer; once the collector returns, the surviving buffer is flushed.
func TestSinkBuffersDuringOutage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	addr := ln.Addr().String()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	sink, err := DialSinkWith(addr, SinkOptions{
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// Take the collector down: close its side of the connection and stop
	// listening entirely.
	conn := <-accepted
	conn.Close()
	ln.Close()

	// Emit through the outage; every Emit must succeed instantly.
	for i := 0; i < 30; i++ {
		if err := sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1}); err != nil {
			t.Fatalf("emit during outage: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Bring the collector back on the same address.
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	var delivered atomic.Int64
	var sawOutageRecord atomic.Bool
	go func() {
		for {
			conn, err := ln2.Accept()
			if err != nil {
				return
			}
			go func() {
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					var rec StreamRecord
					if json.Unmarshal(sc.Bytes(), &rec) == nil {
						if rec.Phase < 100 {
							sawOutageRecord.Store(true)
						}
						delivered.Add(1)
					}
				}
			}()
		}
	}()

	// Probe until the reconnect lands; buffered outage records (phase <
	// 100) must come through with it.
	deadline := time.After(5 * time.Second)
	for i := 100; ; i++ {
		sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1})
		if delivered.Load() > 0 && sawOutageRecord.Load() {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("reconnect flush failed: delivered=%d outageSeen=%v dropped=%d",
				delivered.Load(), sawOutageRecord.Load(), sink.Dropped())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestStreamRecordVersionAndIdentity: emitted records carry the schema
// version, the tracer's StreamID, and the throughput window of completed
// transfers; a sink-level AppID fills in when the tracer has none.
func TestStreamRecordVersionAndIdentity(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true, StreamID: "run-42"})
	sink := &CollectSink{}
	h.tr.SetSink(sink)
	h.run(t, phasedWriter(3, 10e6, des.Second))
	if sink.Len() != 3 {
		t.Fatalf("records = %d", sink.Len())
	}
	for _, rec := range sink.Records {
		if rec.V != StreamVersion {
			t.Fatalf("record version = %d, want %d", rec.V, StreamVersion)
		}
		if rec.App != "run-42" {
			t.Fatalf("record app = %q, want run-42", rec.App)
		}
		// 10 MB at 100 MB/s completes long before the 1 s compute phase
		// ends, so the throughput window must be present.
		if rec.T <= 0 || rec.TteSec <= rec.TtsSec {
			t.Fatalf("missing throughput window: %+v", rec)
		}
	}
}

func TestSinkAppIDStamping(t *testing.T) {
	srv := newLineServer(t, false)
	defer srv.ln.Close()
	sink, err := DialSinkWith(srv.ln.Addr().String(), SinkOptions{AppID: "wacomm-7"})
	if err != nil {
		t.Fatal(err)
	}
	sink.Emit(StreamRecord{Rank: 1, B: 5})
	sink.Emit(StreamRecord{App: "explicit", Rank: 2, B: 6}) // pre-set App wins
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for {
		_, lines := srv.snapshot()
		if len(lines) == 2 {
			if lines[0].App != "wacomm-7" || lines[0].V != StreamVersion {
				t.Fatalf("stamped record = %+v", lines[0])
			}
			if lines[1].App != "explicit" {
				t.Fatalf("explicit app overwritten: %+v", lines[1])
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("lines = %d, want 2", len(lines))
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestStreamRecordDecodeTolerance: records from newer emitters — higher
// version, unknown fields — must decode cleanly, keeping what is known.
func TestStreamRecordDecodeTolerance(t *testing.T) {
	line := `{"v":99,"app":"future","rank":3,"phase":1,"ts":0.5,"te":1.5,"b":42,` +
		`"compression":"zstd","extra":{"nested":true}}`
	var rec StreamRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("future record rejected: %v", err)
	}
	if rec.V != 99 || rec.App != "future" || rec.Rank != 3 || rec.B != 42 {
		t.Fatalf("known fields lost: %+v", rec)
	}
}

// TestSinkSlowReaderDoesNotSlowSimulation: a collector that drains very
// slowly (reads one line at a time with pauses) must not stretch the
// traced application's wall time — emission is fire-and-forget.
func TestSinkSlowReaderDoesNotSlowSimulation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	defer ln.Close()
	var received atomic.Int64
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
			received.Add(1)
			time.Sleep(time.Millisecond) // deliberately slow drain
		}
	}()

	sink, err := DialSink(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(2, Config{DisableOverhead: true})
	h.tr.SetSink(sink)
	start := time.Now()
	h.run(t, phasedWriter(20, 1e6, 100*des.Millisecond))
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("slow reader stalled the simulation: %v", elapsed)
	}
	if err := h.tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	sink.Close()
}
