package tmio

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iobehind/internal/des"
)

// TestSinkCloseThenEmit: emitting on a closed sink must fail cleanly (no
// panic, no block) and Close must be idempotent.
func TestSinkCloseThenEmit(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sink := NewTCPSinkWith(client, SinkOptions{WriteTimeout: 20 * time.Millisecond})
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := sink.Emit(StreamRecord{Rank: 1}); err != ErrSinkClosed {
		t.Fatalf("emit after close = %v, want ErrSinkClosed", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestSinkStalledPeerNeverBlocks: a peer that accepts the connection but
// never reads must cost the emitter nothing. net.Pipe is unbuffered, so
// every write to the stalled peer parks until the write deadline — the
// deterministic worst case. Emit must stay non-blocking, the buffer must
// stay bounded, and the loss must be counted.
func TestSinkStalledPeerNeverBlocks(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sink := NewTCPSinkWith(client, SinkOptions{
		BufferRecords: 8,
		WriteTimeout:  20 * time.Millisecond,
	})
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1}); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("200 emits against a stalled peer took %v", elapsed)
	}
	sink.Close()
	if got := sink.Dropped(); got == 0 {
		t.Fatal("no drops recorded: buffer cannot have stayed bounded")
	} else if got > 200 {
		t.Fatalf("dropped %d > emitted 200", got)
	}
}

// TestTracedAppSurvivesStalledCollector is the backpressure acceptance
// test: a real traced simulation streams into a collector that never
// reads. The application must finish promptly with no sink error; the
// sink buffers then drops, and Dropped reflects the loss.
func TestTracedAppSurvivesStalledCollector(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sink := NewTCPSinkWith(client, SinkOptions{
		BufferRecords: 16,
		WriteTimeout:  20 * time.Millisecond,
	})

	h := newHarness(2, Config{DisableOverhead: true})
	h.tr.SetSink(sink)
	start := time.Now()
	rep := h.run(t, phasedWriter(100, 1e6, 50*des.Millisecond))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("traced run blocked on stalled collector: %v", elapsed)
	}
	if err := h.tr.SinkErr(); err != nil {
		t.Fatalf("stalled collector surfaced as app error: %v", err)
	}
	if len(rep.BPhases) != 2*100 {
		t.Fatalf("phases = %d, want 200 (tracing degraded the run)", len(rep.BPhases))
	}
	sink.Close()
	if sink.Dropped() == 0 {
		t.Fatal("expected drops with a 16-record buffer and 200 records")
	}
}

// TestSinkCloseReportsDrops pins the Close contract: when records were
// dropped at any point in the sink's lifetime, Close must say so even
// if the final flush succeeds — a clean shutdown does not erase loss.
func TestSinkCloseReportsDrops(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sink := NewTCPSinkWith(client, SinkOptions{
		BufferRecords: 4,
		WriteTimeout:  20 * time.Millisecond,
	})
	// net.Pipe is unbuffered and the peer never reads: flushes time out,
	// batches drop, then the 4-slot ring overflows too.
	for i := 0; i < 100; i++ {
		sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1})
	}
	// Drain the peer before Close so the final flush can succeed — the
	// error must survive a successful last write.
	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	err := sink.Close()
	if err == nil {
		t.Fatalf("Close = nil after %d drops", sink.Dropped())
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("Close error %q does not mention the drops", err)
	}
}

// TestSinkRingDropOldest drives the ring buffer directly (the writer
// goroutine is never started, so the queue state is deterministic):
// overflow drops exactly the oldest records, order is preserved across
// the wrap, and requeue re-inserts an unflushed batch ahead of newer
// records with the same oldest-first trimming.
func TestSinkRingDropOldest(t *testing.T) {
	s := newSink(nil, SinkOptions{BufferRecords: 4})
	for i := 0; i < 10; i++ {
		if err := s.Emit(StreamRecord{Phase: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	batch, _ := s.takeBatch()
	if len(batch) != 4 {
		t.Fatalf("batch = %d records, want 4", len(batch))
	}
	for i, rec := range batch {
		if rec.Phase != 6+i {
			t.Fatalf("batch[%d].Phase = %d, want %d (oldest-first order lost)", i, rec.Phase, 6+i)
		}
	}
	// Two newer records arrive while the batch is in flight; the dial
	// fails and the batch is requeued. The merged queue exceeds the ring,
	// so the two oldest batch records go.
	s.Emit(StreamRecord{Phase: 10})
	s.Emit(StreamRecord{Phase: 11})
	requeued := append([]StreamRecord(nil), batch...)
	s.requeue(requeued)
	if got := s.Dropped(); got != 8 {
		t.Fatalf("dropped = %d after requeue overflow, want 8", got)
	}
	batch, _ = s.takeBatch()
	want := []int{8, 9, 10, 11}
	if len(batch) != len(want) {
		t.Fatalf("batch = %d records, want %d", len(batch), len(want))
	}
	for i, rec := range batch {
		if rec.Phase != want[i] {
			t.Fatalf("batch[%d].Phase = %d, want %d", i, rec.Phase, want[i])
		}
	}
	// The sink must still report the loss at Close even though the final
	// queue state is clean.
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "dropped 8") {
		t.Fatalf("Close = %v, want the 8-record drop summary", err)
	}
}

// frameServer is the binary twin of lineServer: it accepts connections
// and decodes length-prefixed frames via the shared FrameInfo +
// DecodeFrame path.
type frameServer struct {
	ln net.Listener

	mu   sync.Mutex
	recs []StreamRecord
}

func newFrameServer(t *testing.T) *frameServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	s := &frameServer{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.read(conn)
		}
	}()
	return s
}

func (s *frameServer) read(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	hdr := make([]byte, FrameHeaderLen)
	var buf []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return
		}
		payload, _, err := FrameInfo(hdr)
		if err != nil {
			return
		}
		if cap(buf) < FrameHeaderLen+payload {
			buf = make([]byte, FrameHeaderLen+payload)
		}
		buf = buf[:FrameHeaderLen+payload]
		copy(buf, hdr)
		if _, err := io.ReadFull(r, buf[FrameHeaderLen:]); err != nil {
			return
		}
		recs, _, err := DecodeFrame(nil, buf)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.recs = append(s.recs, recs...)
		s.mu.Unlock()
	}
}

func (s *frameServer) snapshot() []StreamRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StreamRecord(nil), s.recs...)
}

// TestSinkBinaryDelivery: a Binary-mode sink delivers every record, in
// order, AppID-stamped, over pooled frames — and Close is clean when
// nothing was dropped.
func TestSinkBinaryDelivery(t *testing.T) {
	srv := newFrameServer(t)
	defer srv.ln.Close()
	sink, err := DialSinkWith(srv.ln.Addr().String(), SinkOptions{
		AppID:  "bin-run",
		Binary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := sink.Emit(StreamRecord{Rank: i % 4, Phase: i, B: float64(i)}); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var recs []StreamRecord
	deadline := time.After(3 * time.Second)
	for {
		recs = srv.snapshot()
		if len(recs) == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("delivered %d records, want %d", len(recs), n)
		case <-time.After(2 * time.Millisecond):
		}
	}
	for i, rec := range recs {
		if rec.Phase != i || rec.App != "bin-run" || rec.V != StreamVersion {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}

// lineServer is a test collector: it accepts connections in a loop and
// records every JSON line received, tracking which connection it arrived
// on.
type lineServer struct {
	ln net.Listener

	mu     sync.Mutex
	conns  int
	lines  []StreamRecord
	byConn map[int]int

	// closeAfterFirstLine makes connection 1 drop after one line (the
	// peer-closes-mid-stream scenario).
	closeAfterFirstLine bool
}

func newLineServer(t *testing.T, closeAfterFirstLine bool) *lineServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	s := &lineServer{ln: ln, byConn: make(map[int]int), closeAfterFirstLine: closeAfterFirstLine}
	go s.acceptLoop()
	return s
}

func (s *lineServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns++
		id := s.conns
		s.mu.Unlock()
		go s.read(conn, id)
	}
}

func (s *lineServer) read(conn net.Conn, id int) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		s.mu.Lock()
		s.lines = append(s.lines, rec)
		s.byConn[id]++
		first := s.closeAfterFirstLine && id == 1
		s.mu.Unlock()
		if first {
			return // abrupt close mid-stream
		}
	}
}

func (s *lineServer) snapshot() (conns int, lines []StreamRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns, append([]StreamRecord(nil), s.lines...)
}

// TestSinkReconnectsAfterPeerClose: the collector drops the connection
// after one record; the sink must redial (with backoff) and keep
// delivering without ever surfacing an error to the emitter.
func TestSinkReconnectsAfterPeerClose(t *testing.T) {
	srv := newLineServer(t, true)
	defer srv.ln.Close()

	sink, err := DialSinkWith(srv.ln.Addr().String(), SinkOptions{
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	deadline := time.After(5 * time.Second)
	for i := 0; ; i++ {
		if err := sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1}); err != nil {
			t.Fatalf("emit: %v", err)
		}
		conns, lines := srv.snapshot()
		if conns >= 2 && len(lines) >= 2 {
			srv.mu.Lock()
			second := srv.byConn[2]
			srv.mu.Unlock()
			if second == 0 {
				continue // reconnected but nothing delivered yet
			}
			return // delivered on the second connection: reconnect worked
		}
		select {
		case <-deadline:
			t.Fatalf("no delivery after reconnect: conns=%d lines=%d", conns, len(lines))
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestSinkBuffersDuringOutage: with the collector fully down (connection
// dead, listener gone), the sink keeps accepting records into its bounded
// buffer; once the collector returns, the surviving buffer is flushed.
func TestSinkBuffersDuringOutage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	addr := ln.Addr().String()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	sink, err := DialSinkWith(addr, SinkOptions{
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// Take the collector down: close its side of the connection and stop
	// listening entirely.
	conn := <-accepted
	conn.Close()
	ln.Close()

	// Emit through the outage; every Emit must succeed instantly.
	for i := 0; i < 30; i++ {
		if err := sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1}); err != nil {
			t.Fatalf("emit during outage: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Bring the collector back on the same address.
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	var delivered atomic.Int64
	var sawOutageRecord atomic.Bool
	go func() {
		for {
			conn, err := ln2.Accept()
			if err != nil {
				return
			}
			go func() {
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					var rec StreamRecord
					if json.Unmarshal(sc.Bytes(), &rec) == nil {
						if rec.Phase < 100 {
							sawOutageRecord.Store(true)
						}
						delivered.Add(1)
					}
				}
			}()
		}
	}()

	// Probe until the reconnect lands; buffered outage records (phase <
	// 100) must come through with it.
	deadline := time.After(5 * time.Second)
	for i := 100; ; i++ {
		sink.Emit(StreamRecord{Rank: 0, Phase: i, B: 1})
		if delivered.Load() > 0 && sawOutageRecord.Load() {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("reconnect flush failed: delivered=%d outageSeen=%v dropped=%d",
				delivered.Load(), sawOutageRecord.Load(), sink.Dropped())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestStreamRecordVersionAndIdentity: emitted records carry the schema
// version, the tracer's StreamID, and the throughput window of completed
// transfers; a sink-level AppID fills in when the tracer has none.
func TestStreamRecordVersionAndIdentity(t *testing.T) {
	h := newHarness(1, Config{DisableOverhead: true, StreamID: "run-42"})
	sink := &CollectSink{}
	h.tr.SetSink(sink)
	h.run(t, phasedWriter(3, 10e6, des.Second))
	if sink.Len() != 3 {
		t.Fatalf("records = %d", sink.Len())
	}
	for _, rec := range sink.Records {
		if rec.V != StreamVersion {
			t.Fatalf("record version = %d, want %d", rec.V, StreamVersion)
		}
		if rec.App != "run-42" {
			t.Fatalf("record app = %q, want run-42", rec.App)
		}
		// 10 MB at 100 MB/s completes long before the 1 s compute phase
		// ends, so the throughput window must be present.
		if rec.T <= 0 || rec.TteSec <= rec.TtsSec {
			t.Fatalf("missing throughput window: %+v", rec)
		}
	}
}

func TestSinkAppIDStamping(t *testing.T) {
	srv := newLineServer(t, false)
	defer srv.ln.Close()
	sink, err := DialSinkWith(srv.ln.Addr().String(), SinkOptions{AppID: "wacomm-7"})
	if err != nil {
		t.Fatal(err)
	}
	sink.Emit(StreamRecord{Rank: 1, B: 5})
	sink.Emit(StreamRecord{App: "explicit", Rank: 2, B: 6}) // pre-set App wins
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for {
		_, lines := srv.snapshot()
		if len(lines) == 2 {
			if lines[0].App != "wacomm-7" || lines[0].V != StreamVersion {
				t.Fatalf("stamped record = %+v", lines[0])
			}
			if lines[1].App != "explicit" {
				t.Fatalf("explicit app overwritten: %+v", lines[1])
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("lines = %d, want 2", len(lines))
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestStreamRecordDecodeTolerance: records from newer emitters — higher
// version, unknown fields — must decode cleanly, keeping what is known.
func TestStreamRecordDecodeTolerance(t *testing.T) {
	line := `{"v":99,"app":"future","rank":3,"phase":1,"ts":0.5,"te":1.5,"b":42,` +
		`"compression":"zstd","extra":{"nested":true}}`
	var rec StreamRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("future record rejected: %v", err)
	}
	if rec.V != 99 || rec.App != "future" || rec.Rank != 3 || rec.B != 42 {
		t.Fatalf("known fields lost: %+v", rec)
	}
}

// TestSinkSlowReaderDoesNotSlowSimulation: a collector that drains very
// slowly (reads one line at a time with pauses) must not stretch the
// traced application's wall time — emission is fire-and-forget.
func TestSinkSlowReaderDoesNotSlowSimulation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	defer ln.Close()
	var received atomic.Int64
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
			received.Add(1)
			time.Sleep(time.Millisecond) // deliberately slow drain
		}
	}()

	sink, err := DialSink(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(2, Config{DisableOverhead: true})
	h.tr.SetSink(sink)
	start := time.Now()
	h.run(t, phasedWriter(20, 1e6, 100*des.Millisecond))
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("slow reader stalled the simulation: %v", elapsed)
	}
	if err := h.tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	sink.Close()
}
