package tmio

import (
	"net"
	"testing"
	"time"
)

// TestRedialRateBoundedWithZeroBackoff pins the hot-spin guard in redial:
// a sink constructed through newSink never went through withDefaults, so
// zero backoff bounds used to collapse the sleep to zero and hammer the
// dead collector with thousands of dials per second. With the floor, an
// unreachable address costs a handful of attempts over half a second.
func TestRedialRateBoundedWithZeroBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now dead: every dial fails fast

	// Zero BackoffMin/BackoffMax on purpose — the guard under test.
	s := newSink(nil, SinkOptions{
		BufferRecords: 8,
		DialTimeout:   100 * time.Millisecond,
		WriteTimeout:  time.Second,
		Seed:          1,
	})
	s.addr = addr
	s.start()
	if err := s.Emit(StreamRecord{Rank: 1, B: 1e6}); err != nil {
		t.Fatal(err)
	}

	time.Sleep(600 * time.Millisecond)
	dials := s.Dials()
	s.Close()

	if dials < 1 {
		t.Fatal("writer never attempted to dial the collector")
	}
	// The floored, doubling backoff allows at most ~6 attempts in 600 ms
	// even with maximal -50% jitter; a hot spin would make thousands.
	if dials > 12 {
		t.Fatalf("%d dials in 600ms — redial backoff is not bounding the rate", dials)
	}
}
