// Package tmio reimplements the paper's TMIO (Tracing MPI-IO) library on
// the simulated MPI stack: it intercepts MPI-IO calls and matching waits,
// measures the required bandwidth B_ij and throughput T_ij of every rank
// and phase, drives the bandwidth-limiting strategies, and aggregates
// rank-level metrics into the application-level series B, B_L, and T.
//
// Attach installs the tracer the way LD_PRELOAD installs TMIO: the
// application code is unchanged; every interception costs a small,
// configurable peri-runtime overhead, and the MPI_Finalize hook models the
// post-runtime aggregation the paper separates out in Fig. 6.
package tmio

import (
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/region"
)

// PhaseEndRule selects when a multi-request I/O phase's required-bandwidth
// window ends (paper Sec. IV-A).
type PhaseEndRule int

const (
	// FirstWait ends the phase when the first request in the queue reaches
	// its matching wait. The paper's default: yields higher (safer)
	// bandwidth requirements.
	FirstWait PhaseEndRule = iota
	// LastWait ends the phase when the last request in the queue reaches
	// its matching wait.
	LastWait
)

// Aggregation selects how per-request bandwidths combine into B_ij.
type Aggregation int

const (
	// Sum adds the per-request bandwidths (the paper's choice: higher B).
	Sum Aggregation = iota
	// Average takes their mean.
	Average
)

// OverheadModel parameterizes the tracing cost the tracer charges to the
// application, mirroring TMIO's measured overheads.
type OverheadModel struct {
	// PerCall is charged at every intercepted call (peri-runtime).
	// Defaults to 300 ns.
	PerCall des.Duration
	// FinalizeBase is the fixed post-runtime cost on the root rank.
	// Defaults to 5 ms.
	FinalizeBase des.Duration
	// FinalizePerRank is the root's per-rank aggregation cost; this is
	// what makes the post-runtime overhead grow with the rank count
	// (Fig. 6). Defaults to 150 µs.
	FinalizePerRank des.Duration
	// PayloadPerRank is the metric payload gathered from each rank and
	// then written out by the root. Defaults to 4 KiB.
	PayloadPerRank int64
}

func (m OverheadModel) withDefaults() OverheadModel {
	if m.PerCall <= 0 {
		m.PerCall = 300 * des.Nanosecond
	}
	if m.FinalizeBase <= 0 {
		m.FinalizeBase = 5 * des.Millisecond
	}
	if m.FinalizePerRank <= 0 {
		m.FinalizePerRank = 150 * des.Microsecond
	}
	if m.PayloadPerRank <= 0 {
		m.PayloadPerRank = 4096
	}
	return m
}

// Config configures a tracer.
type Config struct {
	// Strategy drives the bandwidth limiting; Strategy.None only traces.
	Strategy StrategyConfig
	// PhaseEnd defaults to FirstWait.
	PhaseEnd PhaseEndRule
	// Aggregation defaults to Sum.
	Aggregation Aggregation
	// Overhead defaults to the values above. Set DisableOverhead to trace
	// at zero simulated cost instead.
	Overhead        OverheadModel
	DisableOverhead bool
	// SkipFinalizeWrite skips the root's report write to the file system
	// during Finalize (the paper notes this overhead "can be discarded if
	// the collected metrics are not saved", e.g. when streaming via TCP).
	SkipFinalizeWrite bool
	// UniformLimit applies the application-level aggregate instead of each
	// rank's own measurement: every rank is capped at tol × (Σ_i B_i)/n,
	// the alternative Sec. IV-B sketches ("aggregating B_ij over all
	// involved ranks and calculating an application-level metric") before
	// settling on per-rank limits. Under imbalance the uniform cap starves
	// the hungry ranks — the reason the paper keeps limits per rank.
	UniformLimit bool
	// PerClassLimits derives and applies limits separately for read and
	// write phases. The paper's single limit oscillates when an
	// application alternates classes with different requirements (the
	// modified HACC-IO's write window is the verify block, its read
	// window the longer compute block); per-class limits keep the two
	// control loops independent.
	PerClassLimits bool
	// OnlineAggregation maintains the application-level B sweep during
	// the run (the paper's online mode): Tracer.OnlineB answers mid-run
	// queries, e.g. from an I/O scheduler deciding how much bandwidth to
	// reserve for this application.
	OnlineAggregation bool
	// StreamID identifies this application/run in streamed records (the
	// App field), so a collector can demultiplex several concurrent runs
	// on one listener. A sink-level AppID (SinkOptions) wins over an
	// empty StreamID.
	StreamID string
	// MinWindow is the smallest usable required-bandwidth window. A
	// request whose matching wait arrives sooner (e.g. the application's
	// final request, waited immediately after submission) provides no
	// meaningful requirement — the window only measures interception
	// overhead — and is excluded from B_ij. Defaults to 1 ms.
	MinWindow des.Duration
	// FaultOracle, when non-nil, reports whether a fault window overlapped
	// [from, to) on the class (internal/faults.Injector.Overlaps fits).
	// A phase measured inside a fault window is tainted: it is recorded
	// and emitted (with its Faulty mark) but neither derives a limit nor
	// enters the limiter's trend history — degraded measurements must not
	// poison the control loop, and the pre-fault limit survives until the
	// first clean phase re-derives a fresh one. Runtime wiring, not
	// configuration: excluded from cache keys.
	FaultOracle func(class pfs.Class, from, to des.Time) bool `json:"-"`
}

// Tracer observes one world's MPI-IO traffic and applies the limiting
// strategy. Create it with Attach before launching the world.
type Tracer struct {
	sys     *mpiio.System
	cfg     Config
	ranks   []*rankTracer
	sink    Sink
	sinkErr error
	online  *region.OnlineSweep

	// Uniform-limit bookkeeping: running sum of the ranks' latest B.
	uniformSum   float64
	uniformCount int
}

// Attach installs a tracer on the system (the LD_PRELOAD moment). It
// registers the MPI-IO interceptor and the MPI_Finalize hook.
func Attach(sys *mpiio.System, cfg Config) *Tracer {
	cfg.Strategy = cfg.Strategy.WithDefaults()
	cfg.Overhead = cfg.Overhead.withDefaults()
	if cfg.MinWindow <= 0 {
		cfg.MinWindow = des.Millisecond
	}
	t := &Tracer{sys: sys, cfg: cfg}
	if cfg.OnlineAggregation {
		t.online = region.NewOnlineSweep("B")
	}
	for _, r := range sys.World().Ranks() {
		t.ranks = append(t.ranks, &rankTracer{
			t: t, rank: r,
			limit:      pfs.Unlimited,
			classLimit: [2]float64{pfs.Unlimited, pfs.Unlimited},
		})
	}
	sys.SetInterceptor(t)
	sys.World().AddFinalizeHook(t.finalize)
	return t
}

// Config returns the tracer configuration (with defaults applied).
func (t *Tracer) Config() Config { return t.cfg }

// rankTracer is the per-rank bookkeeping: the bandwidth/throughput
// monitoring queues and the accumulated accounting.
type rankTracer struct {
	t    *Tracer
	rank *mpi.Rank

	// open is the current phase's request queue.
	open      []pendingReq
	phases    []phaseRecord
	lastB     float64
	haveLastB bool
	// Per-class history for PerClassLimits (the adaptive trend must not
	// mix read and write measurements).
	classLastB [2]float64
	classHave  [2]bool
	// uniformB is this rank's latest contribution to the uniform sum.
	uniformB float64

	// freq is the Frequent strategy's histogram.
	freq FrequencyTable

	// limit currently in force (pfs.Unlimited when none applied yet);
	// classLimit carries the per-class values under PerClassLimits.
	limit        float64
	classLimit   [2]float64
	firstLimitAt des.Time
	limitApplied bool

	// Accounting.
	waits        metrics.Intervals
	waitTotal    [2]des.Duration
	syncTotal    [2]des.Duration
	syncBytes    [2]int64
	syncOps      int
	asyncOps     int
	peri         des.Duration
	post         des.Duration
	curWaitFrom  des.Time
	curWaitClass pfs.Class
}

type pendingReq struct {
	req    *mpiio.Request
	ts     des.Time
	waited bool
}

// phaseRecord is one closed I/O phase of one rank.
type phaseRecord struct {
	index    int
	ts, te   des.Time // required-bandwidth window
	b        float64  // B_ij
	bl       float64  // the scaled value (limit derived from this phase)
	limited  bool
	faulty   bool // measured inside a fault window; excluded from feedback
	retries  int  // transient-error retries summed over the phase's requests
	requests []*mpiio.Request
}

// charge applies the peri-runtime per-call overhead.
func (rt *rankTracer) charge() {
	if rt.t.cfg.DisableOverhead {
		return
	}
	d := rt.t.cfg.Overhead.PerCall
	rt.rank.Proc().Sleep(d)
	rt.peri += d
}

// AsyncSubmitted implements mpiio.Interceptor.
func (t *Tracer) AsyncSubmitted(r *mpi.Rank, req *mpiio.Request) {
	rt := t.ranks[r.ID()]
	rt.charge()
	rt.asyncOps++
	rt.open = append(rt.open, pendingReq{req: req, ts: req.SubmittedAt()})
}

// WaitBegin implements mpiio.Interceptor.
func (t *Tracer) WaitBegin(r *mpi.Rank, req *mpiio.Request) {
	rt := t.ranks[r.ID()]
	rt.charge()
	rt.curWaitFrom = r.Now()
	rt.curWaitClass = req.Class()

	// Mark the request waited and decide whether the phase closes.
	idx := -1
	for i := range rt.open {
		if rt.open[i].req == req {
			rt.open[i].waited = true
			idx = i
			break
		}
	}
	if idx < 0 {
		return // wait for a request of an already-closed phase
	}
	switch t.cfg.PhaseEnd {
	case FirstWait:
		if idx == 0 {
			rt.closePhase(r.Now(), true)
		}
	case LastWait:
		all := true
		for i := range rt.open {
			if !rt.open[i].waited {
				all = false
				break
			}
		}
		if all {
			rt.closePhase(r.Now(), true)
		}
	}
}

// WaitEnd implements mpiio.Interceptor.
func (t *Tracer) WaitEnd(r *mpi.Rank, req *mpiio.Request) {
	rt := t.ranks[r.ID()]
	iv := metrics.Interval{Start: rt.curWaitFrom, End: r.Now()}
	rt.waits.Add(iv)
	rt.waitTotal[req.Class()] += iv.Duration()
}

// SyncBegin implements mpiio.Interceptor.
func (t *Tracer) SyncBegin(r *mpi.Rank, op mpiio.Op) {
	rt := t.ranks[r.ID()]
	rt.charge()
}

// SyncEnd implements mpiio.Interceptor.
func (t *Tracer) SyncEnd(r *mpi.Rank, op mpiio.Op, start, end des.Time) {
	rt := t.ranks[r.ID()]
	rt.syncOps++
	rt.syncTotal[op.Class] += end.Sub(start)
	rt.syncBytes[op.Class] += op.Bytes
}

// closePhase computes B_ij over the open queue, derives and applies the
// next limit (when applyLimit is set and the strategy limits), and records
// the phase.
func (rt *rankTracer) closePhase(te des.Time, applyLimit bool) {
	if len(rt.open) == 0 {
		return
	}
	ts := rt.open[0].ts
	b := 0.0
	reqs := make([]*mpiio.Request, 0, len(rt.open))
	for _, p := range rt.open {
		reqs = append(reqs, p.req)
		window := te.Sub(p.ts)
		if window < rt.t.cfg.MinWindow {
			continue
		}
		b += float64(p.req.Bytes()) / window.Seconds()
	}
	if rt.t.cfg.Aggregation == Average && len(rt.open) > 0 {
		b /= float64(len(rt.open))
	}

	class := pfs.Write
	if len(reqs) > 0 {
		class = reqs[0].Class()
	}
	rec := phaseRecord{
		index:    len(rt.phases),
		ts:       ts,
		te:       te,
		b:        b,
		requests: reqs,
	}
	for _, q := range reqs {
		rec.retries += q.Stats().Retries
	}
	// A degenerate window (the wait was reached immediately, e.g. the
	// application's very last request) measures nothing: the required
	// bandwidth is unbounded, not zero, so no new limit is derived.
	if b <= 0 {
		applyLimit = false
	}
	// A phase overlapping a fault window measured degraded hardware, not
	// the application's requirement: record it, but derive no limit from
	// it and keep it out of the trend history, so the first clean phase
	// recovers the control loop.
	if rt.t.cfg.FaultOracle != nil && b > 0 && rt.t.cfg.FaultOracle(class, ts, te) {
		rec.faulty = true
		applyLimit = false
	}
	if applyLimit && rt.t.cfg.Strategy.Limits() {
		var next float64
		if rt.t.cfg.Strategy.Strategy == Frequent {
			rt.freq.Observe(b)
			next = rt.freq.Limit(rt.t.cfg.Strategy.WithDefaults().Tol)
		} else {
			if rt.t.cfg.PerClassLimits {
				next = rt.t.cfg.Strategy.NextLimit(
					rt.classLimit[class], b, rt.classLastB[class], rt.classHave[class])
			} else {
				next = rt.t.cfg.Strategy.NextLimit(rt.limit, b, rt.lastB, rt.haveLastB)
			}
		}
		if rt.t.cfg.UniformLimit {
			next = rt.t.uniformLimit(rt, b)
		}
		rec.bl = next
		rec.limited = true
		if rt.t.cfg.PerClassLimits {
			rt.classLimit[class] = next
			rt.t.sys.Agent(rt.rank.ID()).SetClassLimit(class, next)
		} else {
			rt.limit = next
			rt.t.sys.Agent(rt.rank.ID()).SetLimit(next)
		}
		if !rt.limitApplied {
			rt.limitApplied = true
			rt.firstLimitAt = te
		}
	}
	if b > 0 && !rec.faulty {
		rt.lastB = b
		rt.haveLastB = true
		rt.classLastB[class] = b
		rt.classHave[class] = true
	}
	rt.phases = append(rt.phases, rec)
	rt.open = rt.open[:0]
	if rt.t.online != nil {
		rt.t.online.Add(region.Phase{
			Rank: rt.rank.ID(), Index: rec.index,
			Start: rec.ts, End: rec.te, Value: rec.b,
		})
	}
	rt.t.emitPhase(rt.rank.ID(), rec)
}

// uniformLimit records the rank's latest measurement and returns the
// uniform per-rank cap: tol × mean of the latest B across ranks that have
// measured anything yet.
func (t *Tracer) uniformLimit(rt *rankTracer, b float64) float64 {
	if rt.uniformB == 0 {
		t.uniformCount++
	}
	t.uniformSum += b - rt.uniformB
	rt.uniformB = b
	return t.cfg.Strategy.WithDefaults().Tol * t.uniformSum / float64(t.uniformCount)
}

// OnlineB returns the application-level required bandwidth aggregated so
// far, available while the run is still in progress. It returns 0 unless
// Config.OnlineAggregation is set.
func (t *Tracer) OnlineB() float64 {
	if t.online == nil {
		return 0
	}
	return t.online.Max()
}

// finalize is the MPI_Finalize hook: the post-runtime aggregation. Every
// rank contributes its payload to a gather; the root then pays a per-rank
// aggregation cost and writes the combined report to the file system.
func (t *Tracer) finalize(r *mpi.Rank) {
	rt := t.ranks[r.ID()]
	// A phase left open (its head never waited) closes at finalize time
	// without applying a limit — there is no next phase to limit.
	if len(rt.open) > 0 {
		rt.closePhase(r.Now(), false)
	}
	if t.cfg.DisableOverhead {
		return
	}
	m := t.cfg.Overhead
	start := r.Now()
	r.Gather(0, m.PayloadPerRank)
	if r.ID() == 0 {
		n := r.World().Size()
		r.Sleep(m.FinalizeBase + des.Duration(n)*m.FinalizePerRank)
		if !t.cfg.SkipFinalizeWrite {
			t.sys.FS().Transfer(r.Proc(), pfs.Write,
				int64(n)*m.PayloadPerRank, 1, pfs.Unlimited,
				pfs.Tag{Job: -1, Rank: -1})
		}
	}
	rt.post = r.Now().Sub(start)
}

// Limit returns the limit currently applied to rank (pfs.Unlimited if
// none).
func (t *Tracer) Limit(rank int) float64 { return t.ranks[rank].limit }

// RequiredBandwidth returns the rank's most recently measured required
// bandwidth B_ij in bytes/s (0 before the first phase closes). External
// controllers — e.g. a cluster-level contention monitor — use it to limit
// an application to exactly what it needs.
func (t *Tracer) RequiredBandwidth(rank int) float64 {
	rt := t.ranks[rank]
	if !rt.haveLastB {
		return 0
	}
	return rt.lastB
}

// Phases returns the number of closed phases recorded for rank.
func (t *Tracer) Phases(rank int) int { return len(t.ranks[rank].phases) }

func (t *Tracer) String() string {
	return fmt.Sprintf("tmio.Tracer{ranks: %d, strategy: %s}",
		len(t.ranks), t.cfg.Strategy.Label())
}
