package tmio

import (
	"encoding/json"
	"math"
	"testing"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/region"
)

// Fault window of the recovery tests, placed so that one phase's first
// request is mid-transfer when the degradation hits: its wait-end then
// delays the phase-closing last wait, which is how degraded hardware
// lengthens a measured window and deflates B.
var (
	faultFrom = des.Time(2100 * des.Millisecond)
	faultTo   = des.Time(5500 * des.Millisecond)
)

// faultedRun executes a two-requests-per-phase writer under the LastWait
// rule on a harness whose write channel drops to 5% capacity during
// [faultFrom, faultTo); withOracle additionally wires the tracer's fault
// oracle over that window (mirroring the injector's overlap semantics).
func faultedRun(t *testing.T, sc StrategyConfig, degrade, withOracle bool) (*harness, *Report) {
	t.Helper()
	cfg := Config{Strategy: sc, PhaseEnd: LastWait, DisableOverhead: true}
	if withOracle {
		cfg.FaultOracle = func(class pfs.Class, from, to des.Time) bool {
			return class == pfs.Write && faultFrom < to && from < faultTo
		}
	}
	h := newHarness(1, cfg)
	if degrade {
		h.e.Schedule(faultFrom, des.PrioEarly, func() { h.fs.SetFaultFactors(0.05, 1) })
		h.e.Schedule(faultTo, des.PrioEarly, func() { h.fs.SetFaultFactors(1, 1) })
	}
	rep := h.run(t, func(r *mpi.Rank, f *mpiio.File) {
		for j := 0; j < 8; j++ {
			q1 := f.IwriteAt(0, 10e6)
			q2 := f.IwriteAt(10e6, 10e6)
			r.Compute(500 * des.Millisecond)
			q1.Wait()
			q2.Wait() // phase closes here: the window includes q1's wait
		}
	})
	return h, rep
}

// firstLimitAfter returns the first applied-limit value whose phase starts
// at or after t (0 when none).
func firstLimitAfter(rep *Report, t des.Time) float64 {
	var best region.Phase
	found := false
	for _, ph := range rep.BLPhases {
		if ph.Start >= t && (!found || ph.Start < best.Start) {
			best = ph
			found = true
		}
	}
	if !found {
		return 0
	}
	return best.Value
}

// TestLimiterRecoversWithinOneCleanPhase asserts, for each limiting
// strategy, that a hard degradation window does not poison the control
// loop when the fault oracle is wired: tainted phases derive no limit, the
// pre-fault limit survives the window, and the first clean phase after it
// re-derives the clean run's limit.
func TestLimiterRecoversWithinOneCleanPhase(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   StrategyConfig
	}{
		{"direct", StrategyConfig{Strategy: Direct, Tol: 1.1}},
		{"uponly", StrategyConfig{Strategy: UpOnly, Tol: 1.1}},
		{"adaptive", StrategyConfig{Strategy: Adaptive, Tol: 1.1, TolD: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hClean, clean := faultedRun(t, tc.sc, false, false)
			if clean.FaultPhases != 0 {
				t.Fatalf("clean run recorded %d fault phases", clean.FaultPhases)
			}
			cleanFinal := hClean.tr.Limit(0)
			if cleanFinal <= 0 || math.IsInf(cleanFinal, 1) {
				t.Fatalf("clean run applied no limit: %v", cleanFinal)
			}

			h, rep := faultedRun(t, tc.sc, true, true)
			if rep.FaultPhases == 0 {
				t.Fatal("no phase was marked faulty")
			}
			if len(rep.FaultSpans) != rep.FaultPhases {
				t.Fatalf("fault spans %d != fault phases %d", len(rep.FaultSpans), rep.FaultPhases)
			}
			// Quarantine: no applied limit anywhere in the run collapsed
			// below the clean level — the degraded measurements never
			// reached the limiter.
			for _, ph := range rep.BLPhases {
				if ph.Value < 0.5*cleanFinal {
					t.Fatalf("limit %v applied at %v — fault feedback leaked into the limiter",
						ph.Value, ph.Start)
				}
			}
			// Recovery: the first limit derived after the window closes is
			// the clean value again — the tainted phases derived none, so
			// this is the first clean phase.
			if got := firstLimitAfter(rep, faultTo); math.Abs(got-cleanFinal)/cleanFinal > 0.1 {
				t.Fatalf("first post-fault limit = %v, want ~%v", got, cleanFinal)
			}
			if got := h.tr.Limit(0); math.Abs(got-cleanFinal)/cleanFinal > 0.1 {
				t.Fatalf("final limit = %v, want ~%v", got, cleanFinal)
			}
		})
	}
}

// TestFaultFeedbackPoisonsLimiterWithoutOracle is the control for the test
// above: same degradation, no oracle — the Direct strategy derives a limit
// from the deflated measurement and collapses below the clean level.
func TestFaultFeedbackPoisonsLimiterWithoutOracle(t *testing.T) {
	sc := StrategyConfig{Strategy: Direct, Tol: 1.1}
	hClean, _ := faultedRun(t, sc, false, false)
	cleanFinal := hClean.tr.Limit(0)

	_, rep := faultedRun(t, sc, true, false)
	if rep.FaultPhases != 0 {
		t.Fatal("no oracle, yet phases were marked faulty")
	}
	poisoned := false
	for _, ph := range rep.BLPhases {
		if ph.Value < 0.5*cleanFinal {
			poisoned = true
		}
	}
	if !poisoned {
		t.Fatal("degradation did not poison the unprotected limiter — the oracle tests prove nothing")
	}
}

func TestReportCountsFaultPhasesAndSpans(t *testing.T) {
	_, rep := faultedRun(t, StrategyConfig{Strategy: Direct, Tol: 1.1}, true, true)
	if rep.FaultPhases == 0 || len(rep.FaultSpans) == 0 {
		t.Fatalf("fault accounting empty: %d phases, %d spans", rep.FaultPhases, len(rep.FaultSpans))
	}
	for _, sp := range rep.FaultSpans {
		if sp.End <= sp.Start {
			t.Fatalf("degenerate fault span %+v", sp)
		}
	}
	// The report JSON carries the counter.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["fault_phases"]; !ok {
		t.Fatal("fault_phases missing from report JSON")
	}
}

func TestStreamRecordsCarryFaultMarks(t *testing.T) {
	cfg := Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.1},
		DisableOverhead: true,
		FaultOracle: func(class pfs.Class, from, to des.Time) bool {
			return faultFrom < to && from < faultTo
		},
	}
	h := newHarness(1, cfg)
	sink := &CollectSink{}
	h.tr.SetSink(sink)
	h.run(t, phasedWriter(6, 10e6, des.Second))
	faulty := 0
	for _, rec := range sink.Records {
		if rec.Faulty {
			faulty++
		}
	}
	if faulty == 0 {
		t.Fatal("no streamed record carried the fault mark")
	}
}

func TestStreamRecordFaultFieldsRoundTrip(t *testing.T) {
	rec := StreamRecord{V: StreamVersion, App: "a", Rank: 1, Phase: 2,
		TsSec: 0.5, TeSec: 1.5, B: 1e6, Faulty: true, Retries: 3}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStreamRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Faulty || got.Retries != 3 {
		t.Fatalf("round trip lost fault fields: %+v", got)
	}
	// A pre-fault-era record decodes with the zero values.
	legacy, err := DecodeStreamRecord([]byte(`{"v":1,"rank":0,"phase":0,"ts":0,"te":1,"b":5}`))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Faulty || legacy.Retries != 0 {
		t.Fatalf("legacy record grew fault fields: %+v", legacy)
	}
}

// failTwice fails the first two sub-request attempts of the run.
type failTwice struct{ n *int }

func (f failTwice) QueueFactor(pfs.Class) float64 { return 1 }
func (f failTwice) NodeSlowdown(int) float64      { return 1 }
func (f failTwice) ErrorProb(pfs.Class) float64 {
	*f.n++
	if *f.n <= 2 {
		return 1
	}
	return 0
}

// TestPhaseRetriesSummedFromRequests wires a full traced stack against a
// fail-then-recover fault model and checks the per-phase retry counts
// surface in both the report and the stream.
func TestPhaseRetriesSummedFromRequests(t *testing.T) {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: 1})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := Attach(sys, Config{DisableOverhead: true})
	sink := &CollectSink{}
	tr.SetSink(sink)
	attempts := 0
	sys.SetFaults(failTwice{n: &attempts})
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "t.dat")
		req := f.IwriteAt(0, 10e6)
		r.Compute(des.Second)
		req.Wait()
		r.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	if rep.Retries != 2 {
		t.Fatalf("report retries = %d, want 2", rep.Retries)
	}
	total := 0
	for _, rec := range sink.Records {
		total += rec.Retries
	}
	if total != 2 {
		t.Fatalf("streamed retries = %d, want 2", total)
	}
}
