package tmio

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeStreamRecord hammers the gateway's shared JSON-lines decode
// path with arbitrary bytes. Beyond not panicking, it checks the decode
// contract the ingest loop depends on:
//
//   - errors always come with a zero record (no partially decoded fields
//     can leak into aggregation);
//   - an accepted record survives a marshal/decode round trip unchanged
//     (re-encoding a record is how the gateway's smoke path replays);
//   - whitespace framing never changes the outcome.
func FuzzDecodeStreamRecord(f *testing.F) {
	// A full valid record, as TCPSink emits it.
	f.Add(`{"v":1,"app":"hacc-run-1","rank":3,"phase":2,"ts":1.5,"te":2.5,"b":1048576,"bl":9.5e5,"t":8e5,"tts":1.6,"tte":2.4}`)
	// Minimal record: omitempty fields absent.
	f.Add(`{"rank":0,"phase":0,"ts":0,"te":0.5,"b":42}`)
	// Truncated mid-object (torn TCP write).
	f.Add(`{"v":1,"rank":3,"phase":2,"ts":1.`)
	// Unknown fields and a future schema version must decode.
	f.Add(`{"v":99,"rank":1,"phase":0,"ts":0,"te":1,"b":7,"future_field":{"x":[1,2]},"note":"hi"}`)
	// Two records on one line: broken framing, must be rejected.
	f.Add(`{"rank":1,"phase":0,"ts":0,"te":1,"b":1}{"rank":2,"phase":0,"ts":0,"te":1,"b":1}`)
	// Wrong JSON shapes.
	f.Add(`[1,2,3]`)
	f.Add(`"just a string"`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`   `)
	f.Add(`{"rank":"not a number"}`)
	// Deep nesting in an ignored field.
	f.Add(`{"rank":1,"x":` + strings.Repeat(`[`, 64) + strings.Repeat(`]`, 64) + `}`)

	f.Fuzz(func(t *testing.T, line string) {
		rec, err := DecodeStreamRecord([]byte(line))
		if err != nil {
			if rec != (StreamRecord{}) {
				t.Fatalf("error %v returned non-zero record %+v", err, rec)
			}
			return
		}
		// Round trip: an accepted record re-encodes and re-decodes to
		// itself, so replaying a stream is lossless.
		encoded, merr := json.Marshal(rec)
		if merr != nil {
			t.Fatalf("accepted record %+v does not re-marshal: %v", rec, merr)
		}
		again, derr := DecodeStreamRecord(encoded)
		if derr != nil {
			t.Fatalf("re-decoding %s failed: %v", encoded, derr)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %+v -> %+v", rec, again)
		}
		// Framing whitespace is irrelevant.
		padded, perr := DecodeStreamRecord([]byte("  \t" + line + "\r\n"))
		if perr != nil || padded != rec {
			t.Fatalf("whitespace padding changed outcome: rec=%+v err=%v", padded, perr)
		}
	})
}
