package tmio

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// FuzzDecodeStreamRecord hammers the gateway's shared JSON-lines decode
// path with arbitrary bytes. Beyond not panicking, it checks the decode
// contract the ingest loop depends on:
//
//   - errors always come with a zero record (no partially decoded fields
//     can leak into aggregation);
//   - an accepted record survives a marshal/decode round trip unchanged
//     (re-encoding a record is how the gateway's smoke path replays);
//   - whitespace framing never changes the outcome.
func FuzzDecodeStreamRecord(f *testing.F) {
	// A full valid record, as TCPSink emits it.
	f.Add(`{"v":1,"app":"hacc-run-1","rank":3,"phase":2,"ts":1.5,"te":2.5,"b":1048576,"bl":9.5e5,"t":8e5,"tts":1.6,"tte":2.4}`)
	// Minimal record: omitempty fields absent.
	f.Add(`{"rank":0,"phase":0,"ts":0,"te":0.5,"b":42}`)
	// Truncated mid-object (torn TCP write).
	f.Add(`{"v":1,"rank":3,"phase":2,"ts":1.`)
	// Unknown fields and a future schema version must decode.
	f.Add(`{"v":99,"rank":1,"phase":0,"ts":0,"te":1,"b":7,"future_field":{"x":[1,2]},"note":"hi"}`)
	// Two records on one line: broken framing, must be rejected.
	f.Add(`{"rank":1,"phase":0,"ts":0,"te":1,"b":1}{"rank":2,"phase":0,"ts":0,"te":1,"b":1}`)
	// Wrong JSON shapes.
	f.Add(`[1,2,3]`)
	f.Add(`"just a string"`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`   `)
	f.Add(`{"rank":"not a number"}`)
	// Deep nesting in an ignored field.
	f.Add(`{"rank":1,"x":` + strings.Repeat(`[`, 64) + strings.Repeat(`]`, 64) + `}`)

	f.Fuzz(func(t *testing.T, line string) {
		rec, err := DecodeStreamRecord([]byte(line))
		if err != nil {
			if rec != (StreamRecord{}) {
				t.Fatalf("error %v returned non-zero record %+v", err, rec)
			}
			return
		}
		// Round trip: an accepted record re-encodes and re-decodes to
		// itself, so replaying a stream is lossless.
		encoded, merr := json.Marshal(rec)
		if merr != nil {
			t.Fatalf("accepted record %+v does not re-marshal: %v", rec, merr)
		}
		again, derr := DecodeStreamRecord(encoded)
		if derr != nil {
			t.Fatalf("re-decoding %s failed: %v", encoded, derr)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %+v -> %+v", rec, again)
		}
		// Framing whitespace is irrelevant.
		padded, perr := DecodeStreamRecord([]byte("  \t" + line + "\r\n"))
		if perr != nil || padded != rec {
			t.Fatalf("whitespace padding changed outcome: rec=%+v err=%v", padded, perr)
		}
	})
}

// FuzzDecodeFrame hammers the binary frame decoder — the gateway's
// other ingest decode path — with arbitrary bytes. The contract checked
// mirrors FuzzDecodeStreamRecord's, plus the frame-specific invariants:
//
//   - errors always leave the caller's slice at its original length and
//     consume zero bytes (no partially decoded batch can leak into
//     aggregation, and a reader cannot mis-resync);
//   - an accepted frame's records survive an encode/decode round trip
//     exactly;
//   - a successful decode consumes exactly header + payload bytes, so
//     back-to-back frames in one buffer parse sequentially;
//   - truncating an accepted frame by one byte never decodes.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed frames of several shapes.
	for _, n := range []int{0, 1, 3} {
		recs := make([]StreamRecord, n)
		for i := range recs {
			recs[i] = StreamRecord{V: 1, App: "fuzz", Rank: i, Phase: i,
				TsSec: float64(i), TeSec: float64(i) + 1, B: 42, Faulty: i%2 == 0, Retries: i}
		}
		buf, err := EncodeFrame(recs)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// Truncated prefix (torn mid-header and mid-payload).
	whole, err := EncodeFrame([]StreamRecord{{V: 1, App: "torn", B: 7}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(whole[:5])
	f.Add(whole[:len(whole)-2])
	// Length overflow: payload length claims far more than the buffer.
	huge := append([]byte(nil), whole...)
	binary.LittleEndian.PutUint32(huge[4:8], MaxFramePayload)
	f.Add(huge)
	// Version skew on the frame layout.
	skew := append([]byte(nil), whole...)
	skew[2] = FrameVersion + 3
	f.Add(skew)
	// JSON on the binary path and raw noise.
	f.Add([]byte(`{"rank":1,"phase":0,"ts":0,"te":1,"b":1}`))
	f.Add([]byte{frameMagic0, frameMagic1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		prior := []StreamRecord{{App: "sentinel", Rank: 9}}
		recs, n, err := DecodeFrame(prior, data)
		if err != nil {
			if len(recs) != len(prior) || n != 0 {
				t.Fatalf("error %v appended records (len %d) or consumed %d bytes", err, len(recs), n)
			}
			return
		}
		if recs[0] != prior[0] {
			t.Fatalf("decode clobbered the caller's existing records: %+v", recs[0])
		}
		decoded := recs[len(prior):]
		if n < FrameHeaderLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Round trip: re-encoding the accepted records and decoding again
		// must reproduce them exactly (re-encode may be shorter than the
		// input when the input carried future fields).
		enc, err := AppendFrame(nil, decoded)
		if err != nil {
			t.Fatalf("accepted records %+v do not re-encode: %v", decoded, err)
		}
		again, n2, err := DecodeFrame(nil, enc)
		if err != nil || n2 != len(enc) {
			t.Fatalf("re-decode failed: n=%d err=%v", n2, err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round trip changed record count: %d -> %d", len(decoded), len(again))
		}
		for i := range again {
			if !sameRecordBits(again[i], decoded[i]) {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, decoded[i], again[i])
			}
		}
		// A frame shortened by one byte must not decode (no silent
		// acceptance of torn frames).
		if _, _, err := DecodeFrame(nil, bytes.Clone(data[:n-1])); err == nil {
			t.Fatal("frame truncated by one byte still decoded")
		}
	})
}

// sameRecordBits compares records field-for-field with floats compared
// by bit pattern: the binary codec is bit-exact, and fuzzing produces
// NaN payloads for which == is always false.
func sameRecordBits(a, b StreamRecord) bool {
	sameF := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.V == b.V && a.App == b.App && a.Rank == b.Rank && a.Phase == b.Phase &&
		a.Faulty == b.Faulty && a.Retries == b.Retries &&
		sameF(a.TsSec, b.TsSec) && sameF(a.TeSec, b.TeSec) && sameF(a.B, b.B) &&
		sameF(a.BL, b.BL) && sameF(a.T, b.T) && sameF(a.TtsSec, b.TtsSec) && sameF(a.TteSec, b.TteSec)
}
