package tmio

import (
	"math"

	"fmt"

	"iobehind/internal/pfs"
)

// Strategy selects how a measured required bandwidth B_ij becomes the
// throughput limit of the next phase (paper Sec. IV-B).
type Strategy int

const (
	// None traces without limiting.
	None Strategy = iota
	// Direct sets the next limit to B_ij · Tol. The aggressive strategy:
	// highest exploitation of the compute phases, highest risk of waiting
	// when the next phase shrinks.
	Direct
	// UpOnly only ever raises the limit (monotone non-decreasing
	// B_ij · Tol). The safe strategy: least waiting, least exploitation.
	UpOnly
	// Adaptive blends the level and the trend, mimicking a PI controller:
	// limit = B_ij·Tol + (B_ij − B_i,j−1)·TolD.
	Adaptive
	// Frequent implements the paper's proposed future improvement, "a
	// most frequently used table of accesses": measured bandwidths are
	// bucketed (logarithmically), and the limit follows the historically
	// most frequent bucket instead of only the last phase. One-off
	// outliers — a phase that happened to be short or an unusually large
	// request — no longer whip the limit around.
	Frequent
)

// String returns the strategy name used in reports.
func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case Direct:
		return "direct"
	case UpOnly:
		return "up-only"
	case Adaptive:
		return "adaptive"
	case Frequent:
		return "frequent"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// StrategyConfig is a strategy with its tolerance values. The tolerance
// compensates for effects invisible at the MPI level, such as I/O threads
// competing with compute threads for resources.
type StrategyConfig struct {
	Strategy Strategy
	// Tol scales the measured bandwidth. Defaults to 1.1.
	Tol float64
	// TolD scales the trend term of the adaptive strategy. Defaults to 0.5.
	TolD float64
}

// WithDefaults returns the config with zero tolerances filled in.
func (c StrategyConfig) WithDefaults() StrategyConfig {
	if c.Tol <= 0 {
		c.Tol = 1.1
	}
	if c.TolD <= 0 {
		c.TolD = 0.5
	}
	return c
}

// NextLimit computes the limit for phase j+1 from the bandwidth measured in
// phase j (b), the previous phase's bandwidth (prevB, with havePrev false
// on the first phase), and the limit currently in force. The Frequent
// strategy is stateful; it is computed by FrequencyTable instead.
func (c StrategyConfig) NextLimit(current, b, prevB float64, havePrev bool) float64 {
	c = c.WithDefaults()
	switch c.Strategy {
	case Direct:
		return b * c.Tol
	case UpOnly:
		next := b * c.Tol
		if current != pfs.Unlimited && current > next {
			return current
		}
		return next
	case Adaptive:
		next := b * c.Tol
		if havePrev {
			next += (b - prevB) * c.TolD
		}
		// The trend term must not push the limit below the requirement
		// just measured: a limit under B guarantees waiting, and the wait
		// inflates the next window, which lowers the next B — a feedback
		// spiral down to the floor. Clamping at B keeps the strategy
		// "between" direct and up-only, as the paper describes it.
		if next < b {
			next = b
		}
		return next
	default:
		return pfs.Unlimited
	}
}

// FrequencyTable is the per-rank state of the Frequent strategy: a
// histogram of measured required bandwidths over logarithmic buckets.
type FrequencyTable struct {
	counts map[int]int     // bucket → observation count
	peak   map[int]float64 // bucket → largest B observed in it
}

// bucketOf maps a bandwidth to its logarithmic bucket (quarter-octave
// resolution: buckets per factor-of-two of bandwidth).
func bucketOf(b float64) int {
	if b <= 0 {
		return math.MinInt32
	}
	return int(math.Floor(4 * math.Log2(b)))
}

// Observe records a measured required bandwidth.
func (f *FrequencyTable) Observe(b float64) {
	if b <= 0 {
		return
	}
	if f.counts == nil {
		f.counts = make(map[int]int)
		f.peak = make(map[int]float64)
	}
	k := bucketOf(b)
	f.counts[k]++
	if b > f.peak[k] {
		f.peak[k] = b
	}
}

// Limit returns tol times the largest bandwidth seen in the most frequent
// bucket (ties break toward the higher bucket: safer). It returns
// pfs.Unlimited before any observation.
func (f *FrequencyTable) Limit(tol float64) float64 {
	if len(f.counts) == 0 {
		return pfs.Unlimited
	}
	bestBucket, bestCount := math.MinInt32, 0
	for k, n := range f.counts {
		if n > bestCount || (n == bestCount && k > bestBucket) {
			bestBucket, bestCount = k, n
		}
	}
	return f.peak[bestBucket] * tol
}

// Observations returns the total number of recorded bandwidths.
func (f *FrequencyTable) Observations() int {
	total := 0
	for _, n := range f.counts {
		total += n
	}
	return total
}

// Limits reports whether the strategy applies bandwidth limits at all.
func (c StrategyConfig) Limits() bool { return c.Strategy != None }

// Label returns a short human-readable description, e.g. "direct(tol=2)".
func (c StrategyConfig) Label() string {
	if c.Strategy == None {
		return "none"
	}
	d := c.WithDefaults()
	if c.Strategy == Adaptive {
		return fmt.Sprintf("%s(tol=%g,tolD=%g)", d.Strategy, d.Tol, d.TolD)
	}
	return fmt.Sprintf("%s(tol=%g)", d.Strategy, d.Tol)
}
