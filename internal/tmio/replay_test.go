package tmio

import (
	"math"
	"strings"
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/region"
)

// steadyPhases builds a constant-requirement phase sequence for one rank:
// B = 100 MB/s over 1 s windows.
func steadyPhases(n int) []region.Phase {
	sec := des.Time(des.Second)
	phases := make([]region.Phase, n)
	for i := range phases {
		phases[i] = region.Phase{
			Rank: 0, Index: i,
			Start: des.Time(i) * sec, End: des.Time(i+1) * sec,
			Value: 100e6,
		}
	}
	return phases
}

func TestReplaySteadyDirect(t *testing.T) {
	res := Replay(steadyPhases(10), StrategyConfig{Strategy: Direct, Tol: 1.1})
	if len(res.Phases) != 10 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	// Phase 0 runs unlimited; later phases are paced at 110 MB/s over
	// 100 MB windows: duration = 1/1.1 s, no waiting, ~91% exploit.
	if res.Phases[0].Limit != math.Inf(1) {
		t.Fatal("phase 0 should be unlimited")
	}
	for _, ph := range res.Phases[1:] {
		if math.Abs(ph.Limit-110e6)/110e6 > 1e-9 {
			t.Fatalf("limit = %v", ph.Limit)
		}
		if ph.Wait != 0 {
			t.Fatalf("steady replay waited: %v", ph.Wait)
		}
	}
	if res.TotalWait != 0 {
		t.Fatal("total wait")
	}
	// 9 of 10 windows exploited at ~1/1.1 each.
	want := 9.0 / 1.1 / 10.0
	if math.Abs(res.ExploitShare()-want) > 0.01 {
		t.Fatalf("exploit share = %v, want %v", res.ExploitShare(), want)
	}
	if !strings.Contains(res.String(), "direct") {
		t.Fatal("String")
	}
}

func TestReplayDirectWaitsOnShrinkingWindow(t *testing.T) {
	// Requirement doubles midway: a direct tol=1.0 limit derived from the
	// low phase forces waiting in the first high phase.
	sec := des.Time(des.Second)
	phases := []region.Phase{
		{Rank: 0, Index: 0, Start: 0, End: sec, Value: 50e6},
		{Rank: 0, Index: 1, Start: sec, End: 2 * sec, Value: 50e6},
		{Rank: 0, Index: 2, Start: 2 * sec, End: 3 * sec, Value: 100e6},
	}
	res := Replay(phases, StrategyConfig{Strategy: Direct, Tol: 1.0})
	// Phase 2: 100 MB over a 1 s window, limit 50 MB/s → 2 s duration,
	// 1 s projected wait.
	last := res.Phases[2]
	if math.Abs(last.Wait.Seconds()-1) > 1e-6 {
		t.Fatalf("projected wait = %v, want 1s", last.Wait)
	}
	// Up-only with a high starting phase would not have waited less here,
	// but a larger tolerance removes the wait entirely.
	relaxed := Replay(phases, StrategyConfig{Strategy: Direct, Tol: 2.0})
	if relaxed.TotalWait != 0 {
		t.Fatalf("tol=2 replay still waits: %v", relaxed.TotalWait)
	}
}

func TestReplayUpOnlyNeverWaitsOnDecreasingLoad(t *testing.T) {
	sec := des.Time(des.Second)
	var phases []region.Phase
	values := []float64{200e6, 100e6, 50e6, 200e6}
	for i, v := range values {
		phases = append(phases, region.Phase{
			Rank: 0, Index: i,
			Start: des.Time(i) * sec, End: des.Time(i+1) * sec, Value: v,
		})
	}
	up := Replay(phases, StrategyConfig{Strategy: UpOnly, Tol: 1.1})
	if up.TotalWait != 0 {
		t.Fatalf("up-only replay waited %v", up.TotalWait)
	}
	direct := Replay(phases, StrategyConfig{Strategy: Direct, Tol: 1.1})
	// Direct latched onto the 50 MB/s phase and pays for it at the jump
	// back to 200 MB/s.
	if direct.TotalWait <= 0 {
		t.Fatal("direct replay should wait at the jump")
	}
}

func TestReplayMultiRankAndDegenerate(t *testing.T) {
	sec := des.Time(des.Second)
	phases := []region.Phase{
		{Rank: 1, Index: 0, Start: 0, End: sec, Value: 10e6},
		{Rank: 0, Index: 0, Start: 0, End: sec, Value: 20e6},
		{Rank: 0, Index: 1, Start: sec, End: 2 * sec, Value: 20e6},
		{Rank: 2, Index: 0, Start: 0, End: 0, Value: 99e6},  // degenerate
		{Rank: 2, Index: 1, Start: 0, End: sec, Value: -10}, // degenerate
	}
	res := Replay(phases, StrategyConfig{Strategy: Direct, Tol: 1.1})
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (degenerate dropped)", len(res.Phases))
	}
	// Ranks are replayed independently: rank 0's second phase uses rank
	// 0's first B, not rank 1's.
	var rank0second ReplayPhase
	for _, ph := range res.Phases {
		if ph.Rank == 0 && ph.Index == 1 {
			rank0second = ph
		}
	}
	if math.Abs(rank0second.Limit-22e6)/22e6 > 1e-9 {
		t.Fatalf("rank 0 phase 1 limit = %v, want 22e6", rank0second.Limit)
	}
}

func TestReplayFrequentUsesMode(t *testing.T) {
	sec := des.Time(des.Second)
	var phases []region.Phase
	values := []float64{100e6, 100e6, 100e6, 800e6, 100e6}
	for i, v := range values {
		phases = append(phases, region.Phase{
			Rank: 0, Index: i,
			Start: des.Time(i) * sec, End: des.Time(i+1) * sec, Value: v,
		})
	}
	res := Replay(phases, StrategyConfig{Strategy: Frequent, Tol: 1.1})
	// After the outlier (phase 3), the frequent strategy stays at the
	// 100 MB/s mode for phase 4.
	last := res.Phases[4]
	if math.Abs(last.Limit-110e6)/110e6 > 0.01 {
		t.Fatalf("frequent limit = %v, want 110e6", last.Limit)
	}
}

func TestCompareStrategies(t *testing.T) {
	phases := steadyPhases(5)
	results := CompareStrategies(phases, []StrategyConfig{
		{Strategy: Direct, Tol: 1.1},
		{Strategy: UpOnly, Tol: 1.1},
		{},
	})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// On steady load, direct and up-only agree; 'none' never exploits.
	if math.Abs(results[0].ExploitShare()-results[1].ExploitShare()) > 1e-9 {
		t.Fatal("direct and up-only diverge on steady load")
	}
	if results[2].ExploitShare() != 0 {
		t.Fatalf("unlimited replay exploit = %v", results[2].ExploitShare())
	}
}

// TestReplayMatchesLiveRun: the replayed direct strategy predicts the same
// limits the live tracer applied.
func TestReplayMatchesLiveRun(t *testing.T) {
	h := newHarness(2, Config{
		Strategy:        StrategyConfig{Strategy: Direct, Tol: 1.5},
		DisableOverhead: true,
	})
	rep := h.run(t, phasedWriter(6, 20e6, des.Second))
	replayed := Replay(rep.BPhases, StrategyConfig{Strategy: Direct, Tol: 1.5})
	// Build a map of live limits (B_L) per rank+index and compare.
	live := map[[2]int]float64{}
	for _, ph := range rep.BLPhases {
		live[[2]int{ph.Rank, ph.Index}] = ph.Value
	}
	for _, ph := range replayed.Phases {
		if ph.Index == 0 {
			continue // live B_L of phase j records the limit derived FROM it
		}
		want, ok := live[[2]int{ph.Rank, ph.Index - 1}]
		if !ok {
			continue
		}
		if math.Abs(ph.Limit-want)/want > 1e-6 {
			t.Fatalf("rank %d phase %d: replay limit %v, live %v",
				ph.Rank, ph.Index, ph.Limit, want)
		}
	}
}
