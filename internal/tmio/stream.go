package tmio

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"iobehind/internal/des"
)

// StreamVersion is the wire-format version stamped on every emitted
// record. Decoders must tolerate records with a higher version (and any
// unknown fields): the protocol only grows.
const StreamVersion = 1

// ErrSinkClosed is returned by Emit after Close.
var ErrSinkClosed = errors.New("tmio: sink closed")

// Sink receives metric records as they are produced, the stand-in for
// TMIO's ZeroMQ/TCP streaming mode ("the library can also send the data
// via TCP to avoid creating a file").
type Sink interface {
	// Emit delivers one metric record. Implementations must be safe to
	// call from the simulation goroutines (which run one at a time) and
	// must never block on the network: tracing cannot stall the traced
	// application.
	Emit(rec StreamRecord) error
	Close() error
}

// StreamRecord is one rank-phase measurement, streamed as a JSON line.
//
// V is the schema version (StreamVersion); App identifies the
// application/run so a collector can demultiplex several concurrent runs
// arriving on one listener. Ts/Te bound the required-bandwidth window
// (B is measured over it); Tts/Tte bound the actual transfer window of
// the phase's completed requests (T is measured over it) and are absent
// when no request had finished by the time the phase closed.
type StreamRecord struct {
	V      int     `json:"v,omitempty"`
	App    string  `json:"app,omitempty"`
	Rank   int     `json:"rank"`
	Phase  int     `json:"phase"`
	TsSec  float64 `json:"ts"`
	TeSec  float64 `json:"te"`
	B      float64 `json:"b"`
	BL     float64 `json:"bl,omitempty"`
	T      float64 `json:"t,omitempty"`
	TtsSec float64 `json:"tts,omitempty"`
	TteSec float64 `json:"tte,omitempty"`
	// Faulty marks a phase measured inside an injected fault window (its B
	// was excluded from limiter feedback); Retries counts the transient-
	// error retries of the phase's requests. Older decoders ignore both.
	Faulty  bool `json:"fault,omitempty"`
	Retries int  `json:"retries,omitempty"`
}

// SinkOptions tunes the TCP sink's buffering and reconnection behaviour.
// The zero value selects the defaults noted on each field.
type SinkOptions struct {
	// AppID is stamped into every record's App field (unless the record
	// already carries one), so one collector can tell concurrent runs
	// apart.
	AppID string
	// BufferRecords bounds the in-memory queue that absorbs records while
	// the collector is slow or down. When full, the oldest record is
	// dropped and counted. Defaults to 4096.
	BufferRecords int
	// WriteTimeout bounds each flush to the collector; a stalled peer
	// costs at most this much writer-goroutine time per batch (the
	// emitting application is never the one waiting). Defaults to 5s.
	WriteTimeout time.Duration
	// DialTimeout bounds each (re)connection attempt. Defaults to 2s.
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (jittered ±50%). Default 50ms / 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed drives the backoff jitter; defaults to 1 so tests are
	// reproducible.
	Seed int64
	// Binary selects the binary frame encoding (docs/STREAM_FORMAT.md):
	// each flush packs the whole batch into a pooled frame buffer and
	// writes it with one syscall, with zero steady-state allocations.
	// The default stays JSON lines; the gateway sniffs the first bytes
	// of a connection and accepts either.
	Binary bool
}

func (o SinkOptions) withDefaults() SinkOptions {
	if o.BufferRecords <= 0 {
		o.BufferRecords = 4096
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// TCPSink streams records over a TCP connection — JSON lines by
// default, length-prefixed binary frames with SinkOptions.Binary.
//
// Emit never blocks on the network and never fails the application:
// records go into a bounded in-memory ring that a background writer
// flushes to the collector. If the connection drops, the writer redials
// with exponential backoff and jitter (when the sink was created with an
// address) while the queue keeps absorbing records; once the queue is
// full the oldest records are dropped and counted — the tracer degrades,
// it never stalls.
type TCPSink struct {
	opts SinkOptions
	addr string // redial target; empty when wrapping a foreign conn

	mu      sync.Mutex
	ring    []StreamRecord // fixed-capacity drop-oldest queue, allocated on first use
	head    int            // index of the oldest queued record
	queued  int            // number of records currently queued
	dropped uint64
	closed  bool
	lastErr error // last delivery error; a clean flush clears it
	dropErr error // error behind the most recent drop; never cleared

	wake chan struct{} // 1-buffered doorbell for the writer
	done chan struct{} // closed by Close
	wg   sync.WaitGroup

	// Writer-goroutine state (no lock needed after construction).
	conn    net.Conn
	rng     *rand.Rand
	scratch []StreamRecord // reused takeBatch buffer, owned by the writer
	jbuf    bytes.Buffer   // reused JSON-lines encode buffer
	fbuf    *[]byte        // pooled binary frame buffer (Binary mode)

	// dials counts connection attempts (observability; the redial-rate
	// test asserts the backoff bounds it).
	dials atomic.Int64
}

// Dials returns how many TCP connection attempts the sink has made.
func (s *TCPSink) Dials() int64 { return s.dials.Load() }

// DialSink connects to addr (e.g. "127.0.0.1:5555") with default options.
func DialSink(addr string) (*TCPSink, error) {
	return DialSinkWith(addr, SinkOptions{})
}

// DialSinkWith connects to addr with explicit options. The initial dial
// is synchronous so an unreachable collector is reported immediately;
// after that the sink reconnects on its own.
func DialSinkWith(addr string, opts SinkOptions) (*TCPSink, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tmio: dial sink: %w", err)
	}
	s := newSink(conn, opts)
	s.addr = addr
	s.start()
	return s, nil
}

// NewTCPSink wraps an established connection with default options. A
// wrapped connection cannot be redialled: if it fails, the sink drops
// records (counted by Dropped) instead of blocking.
func NewTCPSink(conn net.Conn) *TCPSink {
	return NewTCPSinkWith(conn, SinkOptions{})
}

// NewTCPSinkWith wraps an established connection with explicit options.
func NewTCPSinkWith(conn net.Conn, opts SinkOptions) *TCPSink {
	s := newSink(conn, opts.withDefaults())
	s.start()
	return s
}

func newSink(conn net.Conn, opts SinkOptions) *TCPSink {
	// Floor the ring capacity here too: tests build sinks through newSink
	// without withDefaults, and a zero-capacity ring could never queue.
	if opts.BufferRecords <= 0 {
		opts.BufferRecords = 4096
	}
	return &TCPSink{
		opts: opts,
		conn: conn,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

func (s *TCPSink) start() {
	s.wg.Add(1)
	go s.writer()
}

// Emit implements Sink: it stamps the record and enqueues it, dropping
// the oldest queued record when the buffer is full. It touches only the
// in-memory queue, so the caller can never be blocked by the collector.
func (s *TCPSink) Emit(rec StreamRecord) error {
	if rec.V == 0 {
		rec.V = StreamVersion
	}
	if rec.App == "" {
		rec.App = s.opts.AppID
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSinkClosed
	}
	if s.ring == nil {
		s.ring = make([]StreamRecord, s.opts.BufferRecords)
	}
	if s.queued == len(s.ring) {
		// Drop-oldest is one head advance on the ring. (The previous slice
		// queue shifted every element here, so a sustained-overflow
		// producer paid O(n) per emit — O(n²) across the overflow.)
		s.head++
		if s.head == len(s.ring) {
			s.head = 0
		}
		s.queued--
		s.dropped++
		s.dropErr = errSinkOverflow
	}
	i := s.head + s.queued
	if i >= len(s.ring) {
		i -= len(s.ring)
	}
	s.ring[i] = rec
	s.queued++
	s.mu.Unlock()
	//iolint:ignore goroutine nonblocking wake of the sink's flusher goroutine: whether the send lands only affects trace delivery latency, never the simulated results the sink observes
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return nil
}

// Dropped returns how many records were discarded because the buffer
// overflowed or a write failed mid-batch.
func (s *TCPSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close drains the queue (one final flush attempt, bounded by the dial
// and write timeouts), stops the writer, and closes the connection. It
// returns a summary error whenever any records were dropped during the
// sink's lifetime — a clean final flush does not erase earlier loss —
// and otherwise the last delivery error, if any.
func (s *TCPSink) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropped > 0 {
		return fmt.Errorf("tmio: sink dropped %d records: %w", s.dropped, s.dropErr)
	}
	return s.lastErr
}

// writer is the background flush loop.
func (s *TCPSink) writer() {
	defer s.wg.Done()
	defer func() {
		if s.conn != nil {
			s.conn.Close()
		}
		if s.fbuf != nil {
			PutFrameBuf(s.fbuf)
		}
	}()
	for {
		batch, final := s.takeBatch()
		if len(batch) == 0 {
			if final {
				return
			}
			select {
			case <-s.wake:
			case <-s.done:
			}
			continue
		}
		s.flush(batch, final)
	}
}

// takeBatch copies the whole queue into the writer's reused batch
// buffer and empties the ring. final reports that Close was called:
// after one more flush attempt the writer must exit.
func (s *TCPSink) takeBatch() ([]StreamRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.scratch) < s.queued {
		s.scratch = make([]StreamRecord, 0, len(s.ring))
	}
	batch := s.scratch[:0]
	first := len(s.ring) - s.head
	if first > s.queued {
		first = s.queued
	}
	batch = append(batch, s.ring[s.head:s.head+first]...)
	batch = append(batch, s.ring[:s.queued-first]...)
	s.scratch = batch
	s.head, s.queued = 0, 0
	return batch, s.closed
}

// flush delivers one batch. Dial failures requeue the batch (nothing was
// written, so no duplicates); write failures drop the batch (it may be
// partially delivered and replaying would double-count downstream).
func (s *TCPSink) flush(batch []StreamRecord, final bool) {
	if s.conn == nil && !s.redial(final) {
		if final || s.addr == "" {
			s.drop(batch, errors.New("tmio: sink disconnected"))
		} else {
			s.requeue(batch)
		}
		return
	}
	var out []byte
	if s.opts.Binary {
		// Exact upper bound on the encoded size, so the pooled buffer
		// never regrows mid-append and stays in its size class.
		payload := 0
		for i := range batch {
			payload += 2 + recFixedLen + len(batch[i].App)
		}
		frames := 1 + payload/(MaxFramePayload-maxRecordWire)
		if s.fbuf == nil {
			s.fbuf = GetFrameBuf(payload + frames*FrameHeaderLen)
		} else {
			s.fbuf = GrowFrameBuf(s.fbuf, payload+frames*FrameHeaderLen)
		}
		buf, err := appendFrames((*s.fbuf)[:0], batch)
		*s.fbuf = buf[:0]
		if err != nil {
			// A record outside the wire range cannot be represented; the
			// batch is lost the same way a failed write loses it.
			s.drop(batch, err)
			return
		}
		out = buf
	} else {
		s.jbuf.Reset()
		enc := json.NewEncoder(&s.jbuf)
		for _, rec := range batch {
			enc.Encode(rec) // cannot fail for this struct
		}
		out = s.jbuf.Bytes()
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	if _, err := s.conn.Write(out); err != nil {
		s.conn.Close()
		s.conn = nil
		s.drop(batch, err)
		return
	}
	s.mu.Lock()
	s.lastErr = nil
	s.mu.Unlock()
}

// redial re-establishes the connection with exponential backoff and
// jitter. During shutdown (final) it tries exactly once so Close stays
// bounded. It returns false when no connection could be made (or the
// sink wraps a foreign conn and cannot redial at all).
func (s *TCPSink) redial(final bool) bool {
	if s.addr == "" {
		return false
	}
	// Guard against zero-valued options reaching this loop (a sink built
	// through newSink skips withDefaults): a zero BackoffMin would make
	// Int63n(0+1) return 0 and backoff*2 stay 0 — a busy-loop hammering
	// the collector with dials. Floor both bounds.
	backoff := s.opts.BackoffMin
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := s.opts.BackoffMax
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	if maxBackoff < backoff {
		maxBackoff = backoff
	}
	for attempt := 0; ; attempt++ {
		s.dials.Add(1)
		conn, err := net.DialTimeout("tcp", s.addr, s.opts.DialTimeout)
		if err == nil {
			s.conn = conn
			return true
		}
		s.setErr(err)
		if final {
			return false
		}
		// Jitter ±50% around the current backoff, then double it.
		d := backoff/2 + time.Duration(s.rng.Int63n(int64(backoff)+1))
		if !s.sleep(d) {
			// Close arrived mid-backoff: one last immediate attempt.
			s.dials.Add(1)
			conn, err := net.DialTimeout("tcp", s.addr, s.opts.DialTimeout)
			if err == nil {
				s.conn = conn
				return true
			}
			return false
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// sleep waits d, returning false if Close happened first.
func (s *TCPSink) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}

// errSinkOverflow explains drops caused by the bounded queue itself —
// the collector was too slow or down for too long — as opposed to a
// failed write or an unencodable record.
var errSinkOverflow = errors.New("tmio: sink buffer overflowed")

func (s *TCPSink) drop(batch []StreamRecord, err error) {
	s.mu.Lock()
	s.dropped += uint64(len(batch))
	s.lastErr = err
	s.dropErr = err
	s.mu.Unlock()
}

// requeue puts an unflushed batch back at the front of the ring (every
// record queued since is newer), dropping the oldest records when the
// combined set no longer fits. Writing into the ring in place replaces
// the old slice-merge, which reallocated on every failed dial.
func (s *TCPSink) requeue(batch []StreamRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		s.ring = make([]StreamRecord, s.opts.BufferRecords)
	}
	if over := len(batch) + s.queued - len(s.ring); over > 0 {
		s.dropped += uint64(over)
		s.dropErr = errSinkOverflow
		batch = batch[over:]
	}
	s.head -= len(batch)
	if s.head < 0 {
		s.head += len(s.ring)
	}
	for i := range batch {
		j := s.head + i
		if j >= len(s.ring) {
			j -= len(s.ring)
		}
		s.ring[j] = batch[i]
	}
	s.queued += len(batch)
}

func (s *TCPSink) setErr(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// SetSink attaches a streaming sink; every phase close is emitted as a
// record. Pass nil to detach.
func (t *Tracer) SetSink(sink Sink) { t.sink = sink }

// emitPhase streams a closed phase if a sink is attached. Emission errors
// are recorded, not fatal: tracing must never kill the application.
func (t *Tracer) emitPhase(rank int, rec phaseRecord) {
	if t.sink == nil {
		return
	}
	sr := StreamRecord{
		V:       StreamVersion,
		App:     t.cfg.StreamID,
		Rank:    rank,
		Phase:   rec.index,
		TsSec:   rec.ts.Seconds(),
		TeSec:   rec.te.Seconds(),
		B:       rec.b,
		BL:      rec.bl,
		Faulty:  rec.faulty,
		Retries: rec.retries,
	}
	// Throughput over the phase's completed transfers. Requests still in
	// flight at phase close (their wait has not finished) have no end
	// time yet and are skipped; the offline report covers them instead.
	var tStart, tEnd des.Time
	var transferred int64
	seen := false
	for _, req := range rec.requests {
		st := req.Stats()
		if st.End <= st.Start {
			continue
		}
		if !seen || st.Start < tStart {
			tStart = st.Start
		}
		if st.End > tEnd {
			tEnd = st.End
		}
		transferred += st.Bytes
		seen = true
	}
	if seen && tEnd > tStart {
		sr.TtsSec = tStart.Seconds()
		sr.TteSec = tEnd.Seconds()
		sr.T = float64(transferred) / tEnd.Sub(tStart).Seconds()
	}
	if err := t.sink.Emit(sr); err != nil && t.sinkErr == nil {
		t.sinkErr = err
	}
}

// SinkErr returns the first streaming error encountered, if any.
func (t *Tracer) SinkErr() error { return t.sinkErr }

// CollectSink is an in-memory Sink for tests and examples.
type CollectSink struct {
	mu      sync.Mutex
	Records []StreamRecord
}

// Emit implements Sink.
func (c *CollectSink) Emit(rec StreamRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Records = append(c.Records, rec)
	return nil
}

// Close implements Sink.
func (c *CollectSink) Close() error { return nil }

// Len returns the number of collected records.
func (c *CollectSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.Records)
}
