package tmio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Sink receives metric records as they are produced, the stand-in for
// TMIO's ZeroMQ/TCP streaming mode ("the library can also send the data
// via TCP to avoid creating a file").
type Sink interface {
	// Emit delivers one metric record. Implementations must be safe to
	// call from the simulation goroutines (which run one at a time).
	Emit(rec StreamRecord) error
	Close() error
}

// StreamRecord is one rank-phase measurement, streamed as a JSON line.
type StreamRecord struct {
	Rank  int     `json:"rank"`
	Phase int     `json:"phase"`
	TsSec float64 `json:"ts"`
	TeSec float64 `json:"te"`
	B     float64 `json:"b"`
	BL    float64 `json:"bl,omitempty"`
}

// TCPSink streams JSON lines over a TCP connection.
type TCPSink struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *json.Encoder
}

// DialSink connects to addr (e.g. "127.0.0.1:5555").
func DialSink(addr string) (*TCPSink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tmio: dial sink: %w", err)
	}
	return NewTCPSink(conn), nil
}

// NewTCPSink wraps an established connection.
func NewTCPSink(conn net.Conn) *TCPSink {
	bw := bufio.NewWriter(conn)
	return &TCPSink{conn: conn, bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink.
func (s *TCPSink) Emit(rec StreamRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(rec)
}

// Close flushes and closes the connection.
func (s *TCPSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil {
		s.conn.Close()
		return err
	}
	return s.conn.Close()
}

// SetSink attaches a streaming sink; every phase close is emitted as a
// record. Pass nil to detach.
func (t *Tracer) SetSink(sink Sink) { t.sink = sink }

// emitPhase streams a closed phase if a sink is attached. Emission errors
// are recorded, not fatal: tracing must never kill the application.
func (t *Tracer) emitPhase(rank int, rec phaseRecord) {
	if t.sink == nil {
		return
	}
	err := t.sink.Emit(StreamRecord{
		Rank:  rank,
		Phase: rec.index,
		TsSec: rec.ts.Seconds(),
		TeSec: rec.te.Seconds(),
		B:     rec.b,
		BL:    rec.bl,
	})
	if err != nil && t.sinkErr == nil {
		t.sinkErr = err
	}
}

// SinkErr returns the first streaming error encountered, if any.
func (t *Tracer) SinkErr() error { return t.sinkErr }

// CollectSink is an in-memory Sink for tests and examples.
type CollectSink struct {
	mu      sync.Mutex
	Records []StreamRecord
}

// Emit implements Sink.
func (c *CollectSink) Emit(rec StreamRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Records = append(c.Records, rec)
	return nil
}

// Close implements Sink.
func (c *CollectSink) Close() error { return nil }

// Len returns the number of collected records.
func (c *CollectSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.Records)
}
