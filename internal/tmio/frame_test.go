package tmio

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// frameBatch builds a representative batch: several ranks and phases of
// one app, fault marks and retries included, the shape TCPSink flushes.
func frameBatch(n int) []StreamRecord {
	recs := make([]StreamRecord, n)
	for i := range recs {
		recs[i] = StreamRecord{
			V: StreamVersion, App: "hacc-run-1",
			Rank: i % 8, Phase: i / 8,
			TsSec: float64(i), TeSec: float64(i) + 0.5,
			B: 1e8 + float64(i), BL: 9e7, T: 8e7,
			TtsSec: float64(i) + 0.1, TteSec: float64(i) + 0.4,
			Faulty: i%3 == 0, Retries: i % 5,
		}
	}
	return recs
}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256} {
		recs := frameBatch(n)
		buf, err := EncodeFrame(recs)
		if err != nil {
			t.Fatalf("encode %d records: %v", n, err)
		}
		got, consumed, err := DecodeFrame(nil, buf)
		if err != nil {
			t.Fatalf("decode %d records: %v", n, err)
		}
		if consumed != len(buf) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
		}
		if len(got) != n {
			t.Fatalf("decoded %d records, want %d", len(got), n)
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], got[i])
			}
		}
	}
}

// TestFrameAppendInto: DecodeFrame appends to the caller's slice and two
// frames back-to-back decode sequentially by consumed offset — the
// stream-reader pattern.
func TestFrameAppendInto(t *testing.T) {
	a, b := frameBatch(3), frameBatch(2)
	buf, err := AppendFrame(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = AppendFrame(buf, b)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]StreamRecord, 0, 8)
	recs, n1, err := DecodeFrame(recs, buf)
	if err != nil || len(recs) != 3 {
		t.Fatalf("first frame: %d records, err %v", len(recs), err)
	}
	recs, n2, err := DecodeFrame(recs, buf[n1:])
	if err != nil || len(recs) != 5 {
		t.Fatalf("second frame: %d records, err %v", len(recs), err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n1+n2, len(buf))
	}
}

// TestFrameDecodeErrors: every rejection leaves the caller's slice at
// its original length (zero-record-on-error, the same contract as
// DecodeStreamRecord) and identifies the failure.
func TestFrameDecodeErrors(t *testing.T) {
	good, err := EncodeFrame(frameBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"empty", nil, "short frame header"},
		{"short header", good[:5], "short frame header"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'x'; return b }), "bad frame magic"},
		{"future frame version", mutate(func(b []byte) []byte { b[2] = FrameVersion + 1; return b }), "unknown binary frame version"},
		{"truncated payload", good[:len(good)-3], "truncated frame"},
		{"oversized payload claim", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], MaxFramePayload+1)
			return b
		}), "exceeds limit"},
		{"count beyond payload", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1000)
			return b
		}), "needs"},
		{"record length torn", mutate(func(b []byte) []byte {
			// Inflate the first record's length so it overruns the payload.
			binary.LittleEndian.PutUint16(b[FrameHeaderLen:FrameHeaderLen+2], 60000)
			return b
		}), "overruns the frame payload"},
		{"record below v1 minimum", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[FrameHeaderLen:FrameHeaderLen+2], 10)
			return b
		}), "below the v1 minimum"},
	}
	for _, tc := range cases {
		prior := frameBatch(2)
		recs, n, err := DecodeFrame(prior, tc.buf)
		if err == nil {
			t.Errorf("%s: decode succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if n != 0 || len(recs) != len(prior) {
			t.Errorf("%s: error consumed %d bytes and left %d records (want 0, %d)", tc.name, n, len(recs), len(prior))
		}
	}
	if errors.Is(func() error {
		_, _, err := DecodeFrame(nil, mutate(func(b []byte) []byte { b[2] = 9; return b }))
		return err
	}(), ErrFrameVersion) == false {
		t.Error("future frame version error does not unwrap to ErrFrameVersion")
	}
}

// TestFrameForwardCompat: a record longer than v1's known fields (a
// future writer's appended fields) decodes cleanly, with the extra
// bytes skipped — the additive-growth rule, binary edition.
func TestFrameForwardCompat(t *testing.T) {
	rec := frameBatch(1)[0]
	buf, err := EncodeFrame([]StreamRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	// Append 4 future bytes to the record and patch recLen + payloadLen.
	buf = append(buf, 0xde, 0xad, 0xbe, 0xef)
	recLen := binary.LittleEndian.Uint16(buf[FrameHeaderLen : FrameHeaderLen+2])
	binary.LittleEndian.PutUint16(buf[FrameHeaderLen:FrameHeaderLen+2], recLen+4)
	payload := binary.LittleEndian.Uint32(buf[4:8])
	binary.LittleEndian.PutUint32(buf[4:8], payload+4)

	got, n, err := DecodeFrame(nil, buf)
	if err != nil {
		t.Fatalf("future-field record rejected: %v", err)
	}
	if n != len(buf) || len(got) != 1 || got[0] != rec {
		t.Fatalf("future-field decode: n=%d records=%+v", n, got)
	}
}

func TestFrameEncodeRange(t *testing.T) {
	for _, rec := range []StreamRecord{
		{Rank: 1 << 40},
		{Phase: -(1 << 40)},
		{Retries: -1},
		{V: 1 << 20},
		{App: strings.Repeat("a", 1<<17)},
	} {
		if _, err := EncodeFrame([]StreamRecord{rec}); err == nil {
			t.Errorf("record %+v encoded despite out-of-range field", rec)
		}
	}
	// Too many records for one frame.
	if _, err := AppendFrame(nil, make([]StreamRecord, MaxFrameRecords+1)); err == nil {
		t.Error("oversized batch encoded")
	}
}

// TestFrameBufPool: buffers cycle through their size class, growth
// re-enters the pool, and oversize requests still work (unpooled).
func TestFrameBufPool(t *testing.T) {
	p := GetFrameBuf(100)
	if cap(*p) < 100 {
		t.Fatalf("cap %d < requested 100", cap(*p))
	}
	class := cap(*p)
	*p = append(*p, 1, 2, 3)
	PutFrameBuf(p)
	q := GetFrameBuf(class)
	if len(*q) != 0 {
		t.Fatalf("pooled buffer returned with stale length %d", len(*q))
	}
	q = GrowFrameBuf(q, class+1)
	if cap(*q) <= class {
		t.Fatalf("GrowFrameBuf did not grow: cap %d", cap(*q))
	}
	PutFrameBuf(q)
	huge := GetFrameBuf(FrameHeaderLen + MaxFramePayload + 1)
	if cap(*huge) < FrameHeaderLen+MaxFramePayload+1 {
		t.Fatal("oversize request under-allocated")
	}
	PutFrameBuf(huge) // no class match: dropped, must not panic
	PutFrameBuf(nil)  // nil-safe
}

// TestFrameSteadyStateAllocs pins the hot-path contract: once the
// buffer, the decode slice, and the app-name intern table are warm,
// encode and decode allocate nothing.
func TestFrameSteadyStateAllocs(t *testing.T) {
	recs := frameBatch(64)
	buf, err := EncodeFrame(recs) // warms the intern table for "hacc-run-1"
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFrame(nil, buf); err != nil {
		t.Fatal(err)
	}
	enc := make([]byte, 0, 2*len(buf))
	if n := testing.AllocsPerRun(50, func() {
		var err error
		enc, err = AppendFrame(enc[:0], recs)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendFrame: %v allocs/op in steady state, want 0", n)
	}
	dec := make([]StreamRecord, 0, len(recs))
	if n := testing.AllocsPerRun(50, func() {
		var err error
		dec, _, err = DecodeFrame(dec[:0], buf)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeFrame: %v allocs/op in steady state, want 0", n)
	}
}

// BenchmarkFrameRoundTrip is the codec half of the ingest-path benchmark
// pair (BenchmarkIngest in internal/gateway is the other): one 64-record
// batch encoded into a reused buffer and decoded back into a reused
// slice, the steady-state cycle of a sink flush plus a gateway read.
// Guarded by BENCH_baseline.json via make bench-check: allocs/op must
// stay 0.
func BenchmarkFrameRoundTrip(b *testing.B) {
	recs := frameBatch(64)
	enc, err := EncodeFrame(recs)
	if err != nil {
		b.Fatal(err)
	}
	enc = enc[:0]
	dec := make([]StreamRecord, 0, len(recs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err = AppendFrame(enc[:0], recs)
		if err != nil {
			b.Fatal(err)
		}
		dec, _, err = DecodeFrame(dec[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(enc)))
}
