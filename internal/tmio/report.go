package tmio

import (
	"encoding/json"

	"io"
	"iobehind/internal/adio"
	"math"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/pfs"
	"iobehind/internal/region"
)

// Report is the aggregated result of one traced run. Build it with
// Tracer.Report after the simulation has finished.
type Report struct {
	Ranks    int            `json:"ranks"`
	Strategy StrategyConfig `json:"strategy"`

	// Runtime is the wall span from the first rank start to the last rank
	// end, including the post-runtime overhead. AppTime excludes the
	// post-runtime overhead (the paper's "App" curve in Fig. 5).
	Runtime des.Duration `json:"runtime"`
	AppTime des.Duration `json:"app_time"`

	// TotalRankTime is Σ over ranks of their individual runtimes — the
	// denominator of the time-distribution percentages.
	TotalRankTime des.Duration `json:"total_rank_time"`

	// Aggregated time categories (Σ over ranks).
	PeriOverhead des.Duration    `json:"peri_overhead"`
	PostOverhead des.Duration    `json:"post_overhead"`
	SyncTime     [2]des.Duration `json:"sync_time"`     // by pfs.Class
	AsyncLost    [2]des.Duration `json:"async_lost"`    // wait-blocked
	AsyncExploit [2]des.Duration `json:"async_exploit"` // hidden background I/O
	ComputeFree  des.Duration    `json:"compute_free"`

	SyncOps  int `json:"sync_ops"`
	AsyncOps int `json:"async_ops"`

	// FirstLimitAt is when the fastest rank applied a limit for the first
	// time (the vertical purple line of Figs. 9, 10, 13, 14); zero when no
	// limit was ever applied.
	FirstLimitAt des.Time `json:"first_limit_at"`

	// RequiredBandwidth is max over regions of the B sweep — the minimal
	// application-level bandwidth that avoids all waiting.
	RequiredBandwidth float64 `json:"required_bandwidth"`

	// Rank-level phases feeding the application-level sweeps.
	BPhases  []region.Phase `json:"-"`
	TPhases  []region.Phase `json:"-"`
	BLPhases []region.Phase `json:"-"`

	// TotalBytes moved per class through traced operations.
	TotalBytes [2]int64 `json:"total_bytes"`

	// WindowHist and SizeHist summarize the distribution of the measured
	// required-bandwidth windows (seconds) and asynchronous request sizes
	// (bytes) across all ranks and phases.
	WindowHist metrics.Histogram `json:"-"`
	SizeHist   metrics.Histogram `json:"-"`

	// Fault/resilience accounting. FaultPhases counts rank-phases measured
	// inside an injected fault window (their B was excluded from limiter
	// feedback); Retries and RetriesExhausted sum the agents' transient-
	// error retries and abandoned requests; FaultSpans carries the tainted
	// phases' windows for annotation (Value is the excluded B).
	FaultPhases      int            `json:"fault_phases,omitempty"`
	Retries          int            `json:"retries,omitempty"`
	RetriesExhausted int            `json:"retries_exhausted,omitempty"`
	FaultSpans       []region.Phase `json:"-"`
}

// Report aggregates the tracer's per-rank records. Call it after the
// engine has drained; phases still open are closed at each rank's end
// time.
func (t *Tracer) Report() *Report {
	rep := &Report{
		Ranks:    len(t.ranks),
		Strategy: t.cfg.Strategy,
	}
	var firstStart, lastEnd, lastAppEnd des.Time
	first := true
	rep.FirstLimitAt = 0

	for _, rt := range t.ranks {
		if len(rt.open) > 0 {
			end := rt.rank.Ended()
			if end == 0 {
				end = rt.rank.Now()
			}
			rt.closePhase(end, false)
		}

		start, end := rt.rank.Started(), rt.rank.Ended()
		runtime := end.Sub(start)
		rep.TotalRankTime += runtime
		if first || start < firstStart {
			firstStart = start
		}
		if end > lastEnd {
			lastEnd = end
		}
		if appEnd := end.Add(-rt.post); first || appEnd > lastAppEnd {
			lastAppEnd = appEnd
		}
		first = false

		rep.PeriOverhead += rt.peri
		rep.PostOverhead += rt.post
		for c := 0; c < 2; c++ {
			rep.SyncTime[c] += rt.syncTotal[c]
			rep.AsyncLost[c] += rt.waitTotal[c]
			rep.TotalBytes[c] += rt.syncBytes[c]
		}
		rep.SyncOps += rt.syncOps
		rep.AsyncOps += rt.asyncOps
		if rt.limitApplied && (rep.FirstLimitAt == 0 || rt.firstLimitAt < rep.FirstLimitAt) {
			rep.FirstLimitAt = rt.firstLimitAt
		}
		agent := t.sys.Agent(rt.rank.ID())
		rep.Retries += agent.Retries()
		rep.RetriesExhausted += agent.RetryExhausted()

		// Phases → region inputs; exploit from operation windows.
		for _, ph := range rt.phases {
			rep.WindowHist.Observe(ph.te.Sub(ph.ts).Seconds())
			if ph.faulty {
				rep.FaultPhases++
				rep.FaultSpans = append(rep.FaultSpans, region.Phase{
					Rank: rt.rank.ID(), Index: ph.index,
					Start: ph.ts, End: ph.te, Value: ph.b,
				})
			}
			rep.BPhases = append(rep.BPhases, region.Phase{
				Rank: rt.rank.ID(), Index: ph.index,
				Start: ph.ts, End: ph.te, Value: ph.b,
			})
			if ph.limited {
				rep.BLPhases = append(rep.BLPhases, region.Phase{
					Rank: rt.rank.ID(), Index: ph.index,
					Start: ph.ts, End: ph.te, Value: ph.bl,
				})
			}
			var tStart, tEnd des.Time
			var bytes int64
			for i, req := range ph.requests {
				st := req.Stats()
				if i == 0 || st.Start < tStart {
					tStart = st.Start
				}
				if st.End > tEnd {
					tEnd = st.End
				}
				bytes += st.Bytes
				rep.TotalBytes[req.Class()] += st.Bytes
				rep.SizeHist.Observe(float64(st.Bytes))

				op := metrics.Interval{Start: st.Start, End: st.End}
				lostOverlap := rt.waits.OverlapWith(op)
				exploit := op.Duration() - lostOverlap
				if exploit < 0 {
					exploit = 0
				}
				rep.AsyncExploit[req.Class()] += exploit
			}
			if tEnd > tStart {
				window := tEnd.Sub(tStart).Seconds()
				rep.TPhases = append(rep.TPhases, region.Phase{
					Rank: rt.rank.ID(), Index: ph.index,
					Start: tStart, End: tEnd,
					Value: float64(bytes) / window,
				})
			}
		}
	}

	rep.Runtime = lastEnd.Sub(firstStart)
	rep.AppTime = lastAppEnd.Sub(firstStart)
	rep.ComputeFree = rep.TotalRankTime - rep.PeriOverhead - rep.PostOverhead -
		rep.SyncTime[0] - rep.SyncTime[1] -
		rep.AsyncLost[0] - rep.AsyncLost[1] -
		rep.AsyncExploit[0] - rep.AsyncExploit[1]
	if rep.ComputeFree < 0 {
		rep.ComputeFree = 0
	}
	rep.RequiredBandwidth = region.MaxRequired(rep.BPhases)
	return rep
}

// BSeries returns the application-level required-bandwidth step series
// (Eq. 3 sweep over the rank phases).
func (r *Report) BSeries() *metrics.Series { return region.Sweep("B", r.BPhases) }

// TSeries returns the application-level throughput step series.
func (r *Report) TSeries() *metrics.Series { return region.Sweep("T", r.TPhases) }

// BLSeries returns the application-level applied-limit step series.
func (r *Report) BLSeries() *metrics.Series { return region.Sweep("B_L", r.BLPhases) }

// Distribution is the run's time breakdown as percentages of
// TotalRankTime, the categories of the paper's Figs. 6, 7 and 11.
type Distribution struct {
	SyncWrite         float64 `json:"sync_write"`
	SyncRead          float64 `json:"sync_read"`
	AsyncWriteLost    float64 `json:"async_write_lost"`
	AsyncReadLost     float64 `json:"async_read_lost"`
	AsyncWriteExploit float64 `json:"async_write_exploit"`
	AsyncReadExploit  float64 `json:"async_read_exploit"`
	OverheadPeri      float64 `json:"overhead_peri"`
	OverheadPost      float64 `json:"overhead_post"`
	ComputeFree       float64 `json:"compute_free"`
}

// Distribution computes the percentage breakdown.
func (r *Report) Distribution() Distribution {
	total := r.TotalRankTime.Seconds()
	if total <= 0 {
		return Distribution{}
	}
	pct := func(d des.Duration) float64 { return 100 * d.Seconds() / total }
	return Distribution{
		SyncWrite:         pct(r.SyncTime[pfs.Write]),
		SyncRead:          pct(r.SyncTime[pfs.Read]),
		AsyncWriteLost:    pct(r.AsyncLost[pfs.Write]),
		AsyncReadLost:     pct(r.AsyncLost[pfs.Read]),
		AsyncWriteExploit: pct(r.AsyncExploit[pfs.Write]),
		AsyncReadExploit:  pct(r.AsyncExploit[pfs.Read]),
		OverheadPeri:      pct(r.PeriOverhead),
		OverheadPost:      pct(r.PostOverhead),
		ComputeFree:       pct(r.ComputeFree),
	}
}

// VisibleIO is the paper's "visible I/O": synchronous I/O plus the time
// spent blocked in asynchronous waits, as a percentage of TotalRankTime.
func (d Distribution) VisibleIO() float64 {
	return d.SyncWrite + d.SyncRead + d.AsyncWriteLost + d.AsyncReadLost
}

// ExploitTotal is the combined hidden (exploited) asynchronous I/O share.
func (d Distribution) ExploitTotal() float64 {
	return d.AsyncWriteExploit + d.AsyncReadExploit
}

// OverheadShare returns the tracer's total overhead as a fraction of the
// runtime (peri + post), in percent.
func (r *Report) OverheadShare() float64 {
	total := r.TotalRankTime.Seconds()
	if total <= 0 {
		return 0
	}
	return 100 * (r.PeriOverhead.Seconds() + r.PostOverhead.Seconds()) / total
}

// WriteJSON streams the report (including the distribution and the swept
// series) as JSON, the stand-in for TMIO's result file.
func (r *Report) WriteJSON(w io.Writer) error {
	type seriesJSON struct {
		Name   string       `json:"name"`
		Points [][2]float64 `json:"points"`
	}
	conv := func(s *metrics.Series) seriesJSON {
		out := seriesJSON{Name: s.Name}
		for _, p := range s.Points {
			out.Points = append(out.Points, [2]float64{p.T.Seconds(), p.V})
		}
		return out
	}
	type phaseJSON struct {
		Rank  int     `json:"rank"`
		Index int     `json:"index"`
		Ts    float64 `json:"ts"`
		Te    float64 `json:"te"`
		B     float64 `json:"b"`
	}
	phases := make([]phaseJSON, 0, len(r.BPhases))
	for _, ph := range r.BPhases {
		phases = append(phases, phaseJSON{
			Rank: ph.Rank, Index: ph.Index,
			Ts: ph.Start.Seconds(), Te: ph.End.Seconds(), B: ph.Value,
		})
	}
	payload := struct {
		*Report
		Distribution Distribution `json:"distribution"`
		B            seriesJSON   `json:"b_series"`
		T            seriesJSON   `json:"t_series"`
		BL           seriesJSON   `json:"bl_series"`
		Phases       []phaseJSON  `json:"phases"`
	}{
		Report:       r,
		Distribution: r.Distribution(),
		B:            conv(r.BSeries()),
		T:            conv(r.TSeries()),
		BL:           conv(r.BLSeries()),
		Phases:       phases,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// Speedup returns how much faster this run's AppTime is than other's, in
// percent (positive = this run is faster).
func (r *Report) Speedup(other *Report) float64 {
	a, b := r.AppTime.Seconds(), other.AppTime.Seconds()
	if a <= 0 || b <= 0 || math.IsNaN(a) || math.IsNaN(b) {
		return 0
	}
	return 100 * (b - a) / b
}

// RankStats is one rank's share of the run, for imbalance analysis.
type RankStats struct {
	Rank       int          `json:"rank"`
	Runtime    des.Duration `json:"runtime"`
	Phases     int          `json:"phases"`
	LastB      float64      `json:"last_b"`
	WaitTime   des.Duration `json:"wait_time"`
	SyncTime   des.Duration `json:"sync_time"`
	AsyncBytes int64        `json:"async_bytes"`
	Limit      float64      `json:"limit"` // applied write limit; Inf if none
}

// RankBreakdown returns per-rank statistics in rank order, computed from
// the tracer's live records (call after the run).
func (t *Tracer) RankBreakdown() []RankStats {
	out := make([]RankStats, 0, len(t.ranks))
	for _, rt := range t.ranks {
		st := RankStats{
			Rank:     rt.rank.ID(),
			Runtime:  rt.rank.Ended().Sub(rt.rank.Started()),
			Phases:   len(rt.phases),
			LastB:    rt.lastB,
			WaitTime: rt.waitTotal[0] + rt.waitTotal[1],
			SyncTime: rt.syncTotal[0] + rt.syncTotal[1],
			Limit:    rt.limit,
		}
		for _, ph := range rt.phases {
			for _, req := range ph.requests {
				st.AsyncBytes += req.Bytes()
			}
		}
		out = append(out, st)
	}
	return out
}

// PollingThroughput estimates a request's throughput the way an
// application polling MPI_Test every interval would: the completion is
// only observed at the first poll after the actual end, so the measured
// window rounds up to the polling grid and the throughput is
// underestimated. The paper's modified MPICH avoids this by timing inside
// the I/O thread ("this removes the need for less accurate methods, like
// frequent calls to MPI_Test"); this helper quantifies what that buys.
func PollingThroughput(st *adio.RequestStats, interval des.Duration) float64 {
	if st.End <= st.Start || st.Bytes <= 0 {
		return 0
	}
	window := st.End.Sub(st.Start)
	if interval > 0 {
		polls := (int64(window) + int64(interval) - 1) / int64(interval)
		window = des.Duration(polls) * interval
	}
	return float64(st.Bytes) / window.Seconds()
}

// ThroughputError returns the relative underestimation of
// PollingThroughput at the given interval versus the I/O thread's exact
// measurement, in [0, 1).
func ThroughputError(st *adio.RequestStats, interval des.Duration) float64 {
	exact := PollingThroughput(st, 0)
	if exact <= 0 {
		return 0
	}
	return 1 - PollingThroughput(st, interval)/exact
}
