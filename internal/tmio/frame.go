package tmio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// The binary stream protocol: a length-prefixed, versioned frame that
// carries many StreamRecords per network write. It exists because the
// JSON-lines encoding — one reflective json.Marshal and one allocation
// per record — is the ingest hot path's bottleneck at production
// traffic; the binary frame encodes a whole batch into one pooled
// buffer with zero steady-state allocations and decodes the same way.
//
// docs/STREAM_FORMAT.md is the normative specification. Layout (all
// integers little-endian):
//
//	frame   = magic(2) version(1) reserved(1) payloadLen(u32) count(u32) payload
//	payload = count × record
//	record  = recLen(u16) v(u16) rank(i32) phase(i32) flags(u8) retries(u32)
//	          ts te b bl t tts tte (7 × f64) appLen(u16) app(appLen bytes)
//
// recLen counts every byte after itself, so a decoder that knows fewer
// fields than the writer skips the remainder — the record grows
// additively, like the JSON encoding's unknown-field tolerance. The
// frame version, by contrast, pins the layout itself: an unknown frame
// version is rejected, never guessed at.
//
// The two magic bytes can never begin a JSON line (0xB5 is not valid
// UTF-8 lead byte territory for JSON text, which starts with
// whitespace or '{'), which is what lets gateway.Server sniff the first
// bytes of a connection and fall back to the JSON-lines decode for old
// producers.
const (
	frameMagic0 = 0xB5
	frameMagic1 = 0x10

	// FrameVersion is the binary frame layout version. Unlike the
	// record-level StreamVersion (which only grows and is tolerated
	// upward), an unknown frame version is an error: it may re-type
	// fields or change the framing.
	FrameVersion = 1

	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 12

	// MaxFramePayload bounds one frame's payload so a corrupt or hostile
	// length prefix cannot make a reader buffer gigabytes.
	MaxFramePayload = 4 << 20

	// MaxFrameRecords bounds one frame's record count.
	MaxFrameRecords = 1 << 16

	// recFixedLen is the encoded size of a record's fixed fields,
	// counted from just after the recLen prefix: v(2) + rank(4) +
	// phase(4) + flags(1) + retries(4) + 7 float64s (56) + appLen(2).
	recFixedLen = 73

	// maxRecordWire is the largest encoding one v1 record can take:
	// prefix + fixed fields + a maximal (64 KiB − 1) app identifier.
	maxRecordWire = 2 + recFixedLen + math.MaxUint16
)

// ErrFrameVersion is returned when a frame carries an unknown layout
// version. It is connection-fatal for a stream reader: the bytes that
// follow cannot be framed.
var ErrFrameVersion = errors.New("tmio: unknown binary frame version")

// SniffBinary reports whether b — the first bytes read from a stream —
// begins a binary frame rather than a JSON line. Two bytes suffice.
func SniffBinary(b []byte) bool {
	return len(b) >= 2 && b[0] == frameMagic0 && b[1] == frameMagic1
}

// FrameInfo validates a frame header and returns the payload length and
// record count that follow it. hdr must hold at least FrameHeaderLen
// bytes; extra bytes are ignored. Stream readers call this on the fixed
// header to learn how much to read before handing the whole frame to
// DecodeFrame (the single decode path).
func FrameInfo(hdr []byte) (payloadLen, count int, err error) {
	if len(hdr) < FrameHeaderLen {
		return 0, 0, fmt.Errorf("tmio: short frame header: %d bytes", len(hdr))
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, 0, fmt.Errorf("tmio: bad frame magic %#02x %#02x", hdr[0], hdr[1])
	}
	if hdr[2] != FrameVersion {
		return 0, 0, fmt.Errorf("%w: %d", ErrFrameVersion, hdr[2])
	}
	payloadLen = int(binary.LittleEndian.Uint32(hdr[4:8]))
	count = int(binary.LittleEndian.Uint32(hdr[8:12]))
	if payloadLen > MaxFramePayload {
		return 0, 0, fmt.Errorf("tmio: frame payload %d exceeds limit %d", payloadLen, MaxFramePayload)
	}
	if count > MaxFrameRecords {
		return 0, 0, fmt.Errorf("tmio: frame record count %d exceeds limit %d", count, MaxFrameRecords)
	}
	// Every record costs at least its prefix plus the fixed fields; a
	// count the payload cannot possibly hold is a framing error caught
	// before any per-record work.
	if min := count * (2 + recFixedLen); min > payloadLen {
		return 0, 0, fmt.Errorf("tmio: frame count %d needs ≥ %d payload bytes, header claims %d", count, min, payloadLen)
	}
	return payloadLen, count, nil
}

// AppendFrame appends one encoded binary frame holding recs to dst and
// returns the extended slice. It fails — leaving dst's contents beyond
// its original length unspecified — when a record cannot be represented
// (rank/phase outside int32, negative or oversized retries, app name
// over 64 KiB) or the batch exceeds the frame limits; callers split
// oversized batches across frames instead.
func AppendFrame(dst []byte, recs []StreamRecord) ([]byte, error) {
	if len(recs) > MaxFrameRecords {
		return dst, fmt.Errorf("tmio: %d records exceed the %d per-frame limit", len(recs), MaxFrameRecords)
	}
	base := len(dst)
	var hdr [FrameHeaderLen]byte
	hdr[0], hdr[1], hdr[2] = frameMagic0, frameMagic1, FrameVersion
	dst = append(dst, hdr[:]...)
	for i := range recs {
		var err error
		dst, err = appendRecord(dst, &recs[i])
		if err != nil {
			return dst, err
		}
	}
	payload := len(dst) - base - FrameHeaderLen
	if payload > MaxFramePayload {
		return dst, fmt.Errorf("tmio: frame payload %d exceeds limit %d", payload, MaxFramePayload)
	}
	binary.LittleEndian.PutUint32(dst[base+4:base+8], uint32(payload))
	binary.LittleEndian.PutUint32(dst[base+8:base+12], uint32(len(recs)))
	return dst, nil
}

// appendFrames encodes batch as however many frames it needs, appended
// to dst: a frame closes when the next record would push its payload
// past MaxFramePayload (the record-count limit can never bind first —
// MaxFrameRecords minimal records already exceed the payload cap).
// TCPSink's binary flush writes the returned buffer with one syscall.
func appendFrames(dst []byte, batch []StreamRecord) ([]byte, error) {
	for len(batch) > 0 {
		n, size := 0, 0
		for n < len(batch) && n < MaxFrameRecords {
			rs := 2 + recFixedLen + len(batch[n].App)
			if n > 0 && size+rs > MaxFramePayload {
				break
			}
			size += rs
			n++
		}
		var err error
		dst, err = AppendFrame(dst, batch[:n])
		if err != nil {
			return dst, err
		}
		batch = batch[n:]
	}
	return dst, nil
}

// EncodeFrame encodes recs as one binary frame into a fresh buffer.
// Hot paths use AppendFrame with a pooled buffer instead.
func EncodeFrame(recs []StreamRecord) ([]byte, error) {
	return AppendFrame(make([]byte, 0, FrameHeaderLen+(2+recFixedLen+16)*len(recs)), recs)
}

func appendRecord(dst []byte, rec *StreamRecord) ([]byte, error) {
	if rec.Rank < math.MinInt32 || rec.Rank > math.MaxInt32 ||
		rec.Phase < math.MinInt32 || rec.Phase > math.MaxInt32 {
		return dst, fmt.Errorf("tmio: rank %d / phase %d outside the wire range", rec.Rank, rec.Phase)
	}
	if rec.Retries < 0 || rec.Retries > math.MaxUint32 {
		return dst, fmt.Errorf("tmio: retries %d outside the wire range", rec.Retries)
	}
	if rec.V < 0 || rec.V > math.MaxUint16 {
		return dst, fmt.Errorf("tmio: version %d outside the wire range", rec.V)
	}
	if len(rec.App) > math.MaxUint16 {
		return dst, fmt.Errorf("tmio: app identifier %d bytes long, limit %d", len(rec.App), math.MaxUint16)
	}
	var scratch [2 + recFixedLen]byte
	b := scratch[:]
	binary.LittleEndian.PutUint16(b[0:2], uint16(recFixedLen+len(rec.App)))
	binary.LittleEndian.PutUint16(b[2:4], uint16(rec.V))
	binary.LittleEndian.PutUint32(b[4:8], uint32(int32(rec.Rank)))
	binary.LittleEndian.PutUint32(b[8:12], uint32(int32(rec.Phase)))
	if rec.Faulty {
		b[12] = 1
	} else {
		b[12] = 0
	}
	binary.LittleEndian.PutUint32(b[13:17], uint32(rec.Retries))
	binary.LittleEndian.PutUint64(b[17:25], math.Float64bits(rec.TsSec))
	binary.LittleEndian.PutUint64(b[25:33], math.Float64bits(rec.TeSec))
	binary.LittleEndian.PutUint64(b[33:41], math.Float64bits(rec.B))
	binary.LittleEndian.PutUint64(b[41:49], math.Float64bits(rec.BL))
	binary.LittleEndian.PutUint64(b[49:57], math.Float64bits(rec.T))
	binary.LittleEndian.PutUint64(b[57:65], math.Float64bits(rec.TtsSec))
	binary.LittleEndian.PutUint64(b[65:73], math.Float64bits(rec.TteSec))
	binary.LittleEndian.PutUint16(b[73:75], uint16(len(rec.App)))
	dst = append(dst, b...)
	return append(dst, rec.App...), nil
}

// DecodeFrame parses one complete binary frame at the start of b,
// appending the decoded records to into and returning the extended
// slice plus the number of bytes consumed. It is the single binary
// decode path shared by every consumer (the gateway's frame loop,
// tests, fuzzing), mirroring DecodeStreamRecord for the JSON lines.
//
// On error the returned slice is into truncated to its original length
// — never a partially appended batch — so callers cannot ingest records
// from a rejected frame, and a reused buffer keeps its capacity.
// Decode tolerance mirrors the JSON rules: records longer than the
// fields this version knows are accepted (the excess is skipped, the
// additive-growth rule), unknown flag bits are ignored, but an unknown
// frame version, a length that disagrees with the payload, or a
// truncated buffer rejects the whole frame.
func DecodeFrame(into []StreamRecord, b []byte) ([]StreamRecord, int, error) {
	orig := len(into)
	payload, count, err := FrameInfo(b)
	if err != nil {
		return into[:orig], 0, err
	}
	total := FrameHeaderLen + payload
	if len(b) < total {
		return into[:orig], 0, fmt.Errorf("tmio: truncated frame: have %d of %d bytes", len(b), total)
	}
	off := FrameHeaderLen
	for i := 0; i < count; i++ {
		if off+2 > total {
			return into[:orig], 0, fmt.Errorf("tmio: record %d overruns the frame payload", i)
		}
		recLen := int(binary.LittleEndian.Uint16(b[off : off+2]))
		off += 2
		if recLen < recFixedLen {
			return into[:orig], 0, fmt.Errorf("tmio: record %d is %d bytes, below the v1 minimum %d", i, recLen, recFixedLen)
		}
		if off+recLen > total {
			return into[:orig], 0, fmt.Errorf("tmio: record %d overruns the frame payload", i)
		}
		r := b[off : off+recLen]
		appLen := int(binary.LittleEndian.Uint16(r[71:73]))
		if recFixedLen+appLen > recLen {
			return into[:orig], 0, fmt.Errorf("tmio: record %d app name overruns the record", i)
		}
		rec := StreamRecord{
			V:       int(binary.LittleEndian.Uint16(r[0:2])),
			Rank:    int(int32(binary.LittleEndian.Uint32(r[2:6]))),
			Phase:   int(int32(binary.LittleEndian.Uint32(r[6:10]))),
			Faulty:  r[10]&1 != 0,
			Retries: int(binary.LittleEndian.Uint32(r[11:15])),
			TsSec:   math.Float64frombits(binary.LittleEndian.Uint64(r[15:23])),
			TeSec:   math.Float64frombits(binary.LittleEndian.Uint64(r[23:31])),
			B:       math.Float64frombits(binary.LittleEndian.Uint64(r[31:39])),
			BL:      math.Float64frombits(binary.LittleEndian.Uint64(r[39:47])),
			T:       math.Float64frombits(binary.LittleEndian.Uint64(r[47:55])),
			TtsSec:  math.Float64frombits(binary.LittleEndian.Uint64(r[55:63])),
			TteSec:  math.Float64frombits(binary.LittleEndian.Uint64(r[63:71])),
			App:     internApp(r[recFixedLen : recFixedLen+appLen]),
		}
		into = append(into, rec)
		off += recLen // recLen > the known fields: a newer writer's extra bytes, skipped
	}
	if off != total {
		return into[:orig], 0, fmt.Errorf("tmio: %d payload bytes left over after %d records", total-off, count)
	}
	return into, total, nil
}

// appIntern deduplicates decoded application identifiers. A collector
// sees the same few app names millions of times; returning one shared
// string per name keeps the steady-state decode loop allocation-free.
// The table is bounded so a hostile producer cycling names cannot grow
// it without bound — past the cap, names simply allocate.
var appIntern = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

const (
	appInternMaxEntries = 4096
	appInternMaxLen     = 256
)

func internApp(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > appInternMaxLen {
		return string(b)
	}
	appIntern.RLock()
	s, ok := appIntern.m[string(b)] // no alloc: map lookup by converted []byte
	appIntern.RUnlock()
	if ok {
		return s
	}
	appIntern.Lock()
	defer appIntern.Unlock()
	if s, ok := appIntern.m[string(b)]; ok {
		return s
	}
	s = string(b)
	if len(appIntern.m) < appInternMaxEntries {
		appIntern.m[s] = s
	}
	return s
}

// Frame buffers are recycled through power-of-four size classes, the
// mbuf discipline: a writer grabs the smallest class that fits its
// batch, the reader grabs one per connection, and both return them when
// done, so the steady state allocates nothing and a brief burst of
// large frames does not pin large buffers behind small requests.
var frameClasses = [...]int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, FrameHeaderLen + MaxFramePayload}

var framePools [len(frameClasses)]sync.Pool

// GetFrameBuf returns a zero-length buffer with capacity ≥ n from the
// frame pool (or a fresh one when n exceeds the largest class). Pass
// the same pointer back to PutFrameBuf when done; the pointer
// indirection is what keeps Get/Put themselves allocation-free.
func GetFrameBuf(n int) *[]byte {
	for i, class := range frameClasses {
		if n <= class {
			if p, _ := framePools[i].Get().(*[]byte); p != nil {
				*p = (*p)[:0]
				return p
			}
			b := make([]byte, 0, class)
			return &b
		}
	}
	b := make([]byte, 0, n)
	return &b
}

// PutFrameBuf returns a buffer obtained from GetFrameBuf to its size
// class. Buffers whose capacity matches no class (oversize one-offs)
// are dropped for the garbage collector.
func PutFrameBuf(p *[]byte) {
	if p == nil {
		return
	}
	for i, class := range frameClasses {
		if cap(*p) == class {
			*p = (*p)[:0]
			framePools[i].Put(p)
			return
		}
	}
}

// GrowFrameBuf ensures *p has capacity ≥ n, exchanging it through the
// pool when it must grow so the old buffer is recycled rather than
// garbage. Stream readers use it to size a per-connection buffer to
// each incoming frame.
func GrowFrameBuf(p *[]byte, n int) *[]byte {
	if cap(*p) >= n {
		return p
	}
	PutFrameBuf(p)
	return GetFrameBuf(n)
}
