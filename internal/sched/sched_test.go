package sched

import (
	"math"
	"testing"

	"iobehind/internal/des"
)

// capRecorder records Apply calls for one app.
type capRecorder struct {
	caps []float64
}

func (c *capRecorder) apply(v float64) { c.caps = append(c.caps, v) }

func (c *capRecorder) last() float64 {
	if len(c.caps) == 0 {
		return math.NaN()
	}
	return c.caps[len(c.caps)-1]
}

func TestPolicyNames(t *testing.T) {
	if FairShare.String() != "fair-share" ||
		CapDuringContention.String() != "cap-during-contention" ||
		CapAlways.String() != "cap-always" {
		t.Fatal("policy names")
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name")
	}
}

func TestFairShareNeverCaps(t *testing.T) {
	a := New(FairShare, 1.1)
	rec := &capRecorder{}
	a.Register(App{ID: 1, Async: true, Weight: 4, Apply: rec.apply}, 100)
	a.Register(App{ID: 2, Weight: 4}, 0)
	a.SetActive(2, true)
	a.Reallocate()
	if len(rec.caps) != 0 || a.Toggles() != 0 {
		t.Fatalf("fair-share capped: %v", rec.caps)
	}
}

func TestCapDuringContentionToggles(t *testing.T) {
	a := New(CapDuringContention, 1.5)
	rec := &capRecorder{}
	a.Register(App{ID: 1, Async: true, Weight: 4, Apply: rec.apply}, 100)
	a.Register(App{ID: 2, Weight: 4}, 0)

	// No one else active: uncapped.
	a.Reallocate()
	if a.Capped(1) {
		t.Fatal("capped without contention")
	}
	// The sync app becomes active: cap at fallback × tol.
	a.SetActive(2, true)
	a.Reallocate()
	if !a.Capped(1) || rec.last() != 150 {
		t.Fatalf("cap = %v, want 150", rec.last())
	}
	// A TMIO measurement arrives; on the next contention cycle the cap
	// follows the measurement.
	a.SetRequired(1, 200)
	a.SetActive(2, false)
	a.Reallocate()
	if a.Capped(1) || !math.IsInf(rec.last(), 1) {
		t.Fatalf("uncap missing: %v", rec.caps)
	}
	a.SetActive(2, true)
	a.Reallocate()
	if rec.last() != 300 {
		t.Fatalf("cap = %v, want 300 (measured 200 × 1.5)", rec.last())
	}
	if a.Toggles() != 2 {
		t.Fatalf("toggles = %d", a.Toggles())
	}
}

func TestCapAlways(t *testing.T) {
	a := New(CapAlways, 0) // tol defaults to 1.1
	rec := &capRecorder{}
	a.Register(App{ID: 1, Async: true, Weight: 1, Apply: rec.apply}, 100)
	a.Reallocate()
	if !a.Capped(1) || math.Abs(rec.last()-110) > 1e-9 {
		t.Fatalf("cap = %v, want 110", rec.last())
	}
	// Idempotent: no further Apply calls without state change.
	a.Reallocate()
	if len(rec.caps) != 1 {
		t.Fatalf("reapplied without change: %v", rec.caps)
	}
}

func TestUnregisterUncaps(t *testing.T) {
	a := New(CapAlways, 1)
	rec := &capRecorder{}
	a.Register(App{ID: 1, Async: true, Weight: 1, Apply: rec.apply}, 50)
	a.Reallocate()
	a.Unregister(1)
	if !math.IsInf(rec.last(), 1) {
		t.Fatalf("unregister did not uncap: %v", rec.caps)
	}
	a.Unregister(1) // idempotent
	a.Reallocate()  // no panic on empty
}

func TestSparedBandwidth(t *testing.T) {
	a := New(CapAlways, 1)
	rec := &capRecorder{}
	a.Register(App{ID: 1, Async: true, Weight: 50, Apply: rec.apply}, 10)
	a.Register(App{ID: 2, Weight: 50}, 0)
	if got := a.SparedBandwidth(100); got != 0 {
		t.Fatalf("spared before reallocate = %v", got)
	}
	a.Reallocate()
	// App 1's fair share of 100 is 50; capped at 10 → spares 40.
	if got := a.SparedBandwidth(100); math.Abs(got-40) > 1e-9 {
		t.Fatalf("spared = %v, want 40", got)
	}
	// A cap above the share spares nothing.
	a.SetRequired(1, 500)
	a.SetActive(2, true)
	a.Reallocate() // still capped; requirement only applies on re-toggle
	if got := a.SparedBandwidth(100); got < 0 {
		t.Fatalf("negative spared: %v", got)
	}
}

func TestRegistrationValidation(t *testing.T) {
	a := New(CapAlways, 1)
	a.Register(App{ID: 1, Weight: 1}, 0)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { a.Register(App{ID: 1, Weight: 1}, 0) })
	mustPanic("async without apply", func() {
		a.Register(App{ID: 2, Async: true, Weight: 1}, 0)
	})
	// Updates on unknown apps are ignored.
	a.SetRequired(99, 5)
	a.SetActive(99, true)
	if a.Capped(99) {
		t.Fatal("unknown app capped")
	}
}

func TestPredictiveCapping(t *testing.T) {
	a := New(CapDuringContention, 1)
	rec := &capRecorder{}
	a.Register(App{ID: 1, Async: true, Weight: 1, Apply: rec.apply}, 100)
	a.Register(App{ID: 2, Weight: 1}, 0)
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }

	// Job 2 bursts for 2 s every 10 s, last burst at t=0.
	a.SetForecast(2, Forecast{
		Period:    des.Duration(10 * des.Second),
		BurstLen:  des.Duration(2 * des.Second),
		LastBurst: 0,
	})

	// t=5s: next burst at t=10; lookahead 3 s does not reach it.
	a.ReallocatePredictive(sec(5), des.Duration(3*des.Second))
	if a.Capped(1) {
		t.Fatal("capped outside the predicted window")
	}
	// t=8s: burst at t=10 is within the 3 s lookahead → pre-emptive cap.
	a.ReallocatePredictive(sec(8), des.Duration(3*des.Second))
	if !a.Capped(1) {
		t.Fatal("not capped ahead of the predicted burst")
	}
	// t=11s: burst in progress (10..12) → still capped.
	a.ReallocatePredictive(sec(11), des.Duration(1*des.Second))
	if !a.Capped(1) {
		t.Fatal("uncapped during the burst")
	}
	// t=13s: burst over, next at t=20 → uncapped.
	a.ReallocatePredictive(sec(13), des.Duration(3*des.Second))
	if a.Capped(1) {
		t.Fatal("still capped after the burst")
	}
	// Reactive fallback: no forecast match but the other app is active.
	a.SetActive(2, true)
	a.ReallocatePredictive(sec(14), des.Duration(1*des.Second))
	if !a.Capped(1) {
		t.Fatal("reactive fallback missing")
	}
}

func TestForecastWindow(t *testing.T) {
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }
	f := Forecast{
		Period:    des.Duration(10 * des.Second),
		BurstLen:  des.Duration(2 * des.Second),
		LastBurst: sec(100),
	}
	cases := []struct {
		now       float64
		lookahead float64
		want      bool
	}{
		{101, 1, true},  // mid-burst
		{103, 1, false}, // between bursts
		{108, 3, true},  // next burst (110) inside lookahead
		{108, 1, false}, // not yet
		{95, 20, true},  // before LastBurst: the recorded burst is ahead
	}
	for _, c := range cases {
		got := f.windowContains(sec(c.now), des.DurationOf(c.lookahead))
		if got != c.want {
			t.Errorf("windowContains(now=%v, look=%v) = %v, want %v",
				c.now, c.lookahead, got, c.want)
		}
	}
	if (Forecast{}).windowContains(0, des.Second) {
		t.Fatal("zero forecast matched")
	}
}
