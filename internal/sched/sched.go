// Package sched implements the cluster-level I/O bandwidth arbiter the
// paper motivates: "This metric [the required bandwidth] can be considered
// by the I/O scheduler to dynamically schedule I/O accesses to reduce the
// contention."
//
// The arbiter tracks the applications sharing a file system, their
// measured required bandwidths (from TMIO), and their current I/O
// activity. Under its policy it decides which asynchronous applications to
// cap at their requirement — freeing the difference between their burst
// share and their need for the synchronous applications whose runtime
// depends directly on I/O speed. The arbiter is pure decision logic: it
// applies caps through per-application callbacks, so it works against the
// simulation (internal/cluster uses it) or any other enforcement point.
package sched

import (
	"fmt"
	"sort"

	"iobehind/internal/des"
	"iobehind/internal/pfs"
)

// Policy selects when asynchronous applications are capped.
type Policy int

const (
	// FairShare never caps: bandwidth splits by the file system's
	// weighted fairness alone.
	FairShare Policy = iota
	// CapDuringContention caps an asynchronous application only while at
	// least one other application is doing I/O (the paper's Fig. 1
	// setting).
	CapDuringContention
	// CapAlways keeps asynchronous applications capped whenever running.
	CapAlways
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FairShare:
		return "fair-share"
	case CapDuringContention:
		return "cap-during-contention"
	case CapAlways:
		return "cap-always"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// App describes one application under the arbiter's control.
type App struct {
	// ID is the caller's identifier for the application.
	ID int
	// Async marks applications whose I/O can be throttled without
	// affecting their runtime.
	Async bool
	// Weight is the application's fair-share weight (e.g. node count).
	Weight float64
	// Apply installs a bandwidth cap in bytes/s on the application's
	// ranks; pfs.Unlimited removes it. Must not be nil for Async apps.
	Apply func(cap float64)
}

// appState is the arbiter's view of one application.
type appState struct {
	App
	required    float64 // latest TMIO measurement; 0 = unknown
	fallback    float64 // configured estimate used before any measurement
	active      bool    // currently has I/O in flight
	running     bool
	capped      bool
	faulty      bool // measurements currently tainted by a fault window
	forecast    Forecast
	hasForecast bool
}

// Arbiter decides and applies caps. It is not goroutine-safe; in the
// simulation everything runs on the engine's single logical thread.
type Arbiter struct {
	policy  Policy
	tol     float64
	apps    map[int]*appState
	order   []int // deterministic iteration
	toggles int
}

// New creates an arbiter. tol scales applied caps (like the strategies'
// tolerance); values <= 0 default to 1.1.
func New(policy Policy, tol float64) *Arbiter {
	if tol <= 0 {
		tol = 1.1
	}
	return &Arbiter{policy: policy, tol: tol, apps: make(map[int]*appState)}
}

// Policy returns the arbiter's policy.
func (a *Arbiter) Policy() Policy { return a.policy }

// Toggles returns how many times a cap has been switched on.
func (a *Arbiter) Toggles() int { return a.toggles }

// Register adds an application; it starts in the running state. Duplicate
// registration panics.
func (a *Arbiter) Register(app App, fallbackRequired float64) {
	if _, ok := a.apps[app.ID]; ok {
		panic(fmt.Sprintf("sched: app %d registered twice", app.ID))
	}
	if app.Async && app.Apply == nil {
		panic(fmt.Sprintf("sched: async app %d without Apply", app.ID))
	}
	a.apps[app.ID] = &appState{App: app, fallback: fallbackRequired, running: true}
	a.order = append(a.order, app.ID)
	sort.Ints(a.order)
}

// Unregister removes an application (job completion).
func (a *Arbiter) Unregister(id int) {
	st, ok := a.apps[id]
	if !ok {
		return
	}
	if st.capped && st.Apply != nil {
		st.Apply(pfs.Unlimited)
	}
	delete(a.apps, id)
	for i, v := range a.order {
		if v == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
}

// SetRequired updates an application's measured required bandwidth. While
// the application is marked faulty (SetFaulty) the update is discarded: a
// requirement measured against degraded hardware would poison the caps the
// arbiter derives, so the last clean value survives the fault window.
func (a *Arbiter) SetRequired(id int, b float64) {
	if st, ok := a.apps[id]; ok && b > 0 && !st.faulty {
		st.required = b
	}
}

// SetFaulty marks (or clears) an application's measurements as tainted by
// an active fault window; see SetRequired. The cluster monitor drives it
// from the fault injector each tick.
func (a *Arbiter) SetFaulty(id int, faulty bool) {
	if st, ok := a.apps[id]; ok {
		st.faulty = faulty
	}
}

// Faulty reports whether the application is currently marked faulty.
func (a *Arbiter) Faulty(id int) bool {
	st, ok := a.apps[id]
	return ok && st.faulty
}

// SetActive marks whether the application currently has I/O in flight.
func (a *Arbiter) SetActive(id int, active bool) {
	if st, ok := a.apps[id]; ok {
		st.active = active
	}
}

// Capped reports whether the application is currently capped.
func (a *Arbiter) Capped(id int) bool {
	st, ok := a.apps[id]
	return ok && st.capped
}

// requirement returns the cap value for an app: the measurement when
// available, the registration fallback otherwise.
func (st *appState) requirement() float64 {
	if st.required > 0 {
		return st.required
	}
	return st.fallback
}

// Reallocate applies the policy: for every asynchronous application it
// decides capped/uncapped and invokes Apply on transitions. Call it
// whenever activity or requirements changed (the cluster monitor polls).
func (a *Arbiter) Reallocate() {
	if a.policy == FairShare {
		return
	}
	for _, id := range a.order {
		st := a.apps[id]
		if !st.Async || !st.running {
			continue
		}
		want := a.policy == CapAlways
		if a.policy == CapDuringContention {
			want = a.othersActive(id)
		}
		if want == st.capped {
			continue
		}
		st.capped = want
		if want {
			a.toggles++
			st.Apply(st.requirement() * a.tol)
		} else {
			st.Apply(pfs.Unlimited)
		}
	}
}

// othersActive reports whether any other application has I/O in flight.
func (a *Arbiter) othersActive(id int) bool {
	for _, other := range a.order {
		if other != id && a.apps[other].active {
			return true
		}
	}
	return false
}

// SparedBandwidth estimates how much bandwidth capping currently returns
// to the pool: for each capped application, its weighted fair share of
// capacity minus its applied cap (never negative).
func (a *Arbiter) SparedBandwidth(capacity float64) float64 {
	var totalWeight float64
	for _, id := range a.order {
		if a.apps[id].running {
			totalWeight += a.apps[id].Weight
		}
	}
	if totalWeight <= 0 {
		return 0
	}
	var spared float64
	for _, id := range a.order {
		st := a.apps[id]
		if !st.capped {
			continue
		}
		share := capacity * st.Weight / totalWeight
		cap := st.requirement() * a.tol
		if share > cap {
			spared += share - cap
		}
	}
	return spared
}

// Forecast describes an application's periodic burst pattern, as detected
// by FTIO (internal/ftio): bursts of BurstLen recur every Period; the last
// one started at LastBurst.
type Forecast struct {
	Period    des.Duration
	BurstLen  des.Duration
	LastBurst des.Time
}

// windowContains reports whether a burst is (or will be) in progress
// within [now, now+lookahead).
func (f Forecast) windowContains(now des.Time, lookahead des.Duration) bool {
	if f.Period <= 0 {
		return false
	}
	// Walk bursts from LastBurst forward until one ends after now.
	start := f.LastBurst
	for start.Add(f.BurstLen) <= now {
		start = start.Add(f.Period)
	}
	return start < now.Add(lookahead)
}

// SetForecast attaches a burst forecast to a (synchronous) application.
func (a *Arbiter) SetForecast(id int, f Forecast) {
	if st, ok := a.apps[id]; ok {
		st.forecast = f
		st.hasForecast = true
	}
}

// ReallocatePredictive is the forward-looking variant of Reallocate for
// the CapPredictive policy: an asynchronous application is capped while
// any other application's forecast predicts a burst within lookahead —
// the cap is in place *before* the burst arrives, so the synchronous job
// never shares its burst window with an unthrottled competitor. Between
// predicted bursts the async application runs unrestricted.
func (a *Arbiter) ReallocatePredictive(now des.Time, lookahead des.Duration) {
	for _, id := range a.order {
		st := a.apps[id]
		if !st.Async || !st.running {
			continue
		}
		want := false
		for _, other := range a.order {
			if other == id {
				continue
			}
			o := a.apps[other]
			if o.hasForecast && o.forecast.windowContains(now, lookahead) {
				want = true
				break
			}
			if o.active {
				want = true // fall back to reactive capping
				break
			}
		}
		if want == st.capped {
			continue
		}
		st.capped = want
		if want {
			a.toggles++
			st.Apply(st.requirement() * a.tol)
		} else {
			st.Apply(pfs.Unlimited)
		}
	}
}
