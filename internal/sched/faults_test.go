package sched

import "testing"

// TestSetFaultyQuarantinesRequired verifies the arbiter's fault
// quarantine: while an application is marked faulty, measured required
// bandwidths are discarded (the last healthy measurement survives), and
// the gate reopens as soon as the mark clears.
func TestSetFaultyQuarantinesRequired(t *testing.T) {
	a := New(CapAlways, 1.0)
	a.Register(App{ID: 7, Async: true, Weight: 1, Apply: func(float64) {}}, 5e6)

	a.SetRequired(7, 10e6)
	if got := a.apps[7].required; got != 10e6 {
		t.Fatalf("healthy measurement not recorded: %v", got)
	}

	a.SetFaulty(7, true)
	if !a.Faulty(7) {
		t.Fatal("Faulty(7) false after SetFaulty")
	}
	a.SetRequired(7, 1e3) // tainted: must be discarded
	if got := a.apps[7].required; got != 10e6 {
		t.Fatalf("tainted measurement overwrote the healthy one: %v", got)
	}

	a.SetFaulty(7, false)
	if a.Faulty(7) {
		t.Fatal("Faulty(7) true after clearing")
	}
	a.SetRequired(7, 20e6)
	if got := a.apps[7].required; got != 20e6 {
		t.Fatalf("post-fault measurement discarded: %v", got)
	}
}

func TestSetFaultyUnknownAppIsNoOp(t *testing.T) {
	a := New(CapAlways, 1.0)
	a.SetFaulty(42, true) // must not panic or create state
	if a.Faulty(42) {
		t.Fatal("unknown app reported faulty")
	}
	a.SetRequired(42, 1e6)
	if len(a.apps) != 0 {
		t.Fatal("updates for unknown apps created state")
	}
}
