package report

import (
	"strings"
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "bee", "c")
	tb.AddRow("1", "2", "3")
	tb.AddRow("100", "2000", "3")
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Alignment: both data rows have the same column offsets.
	if strings.Index(lines[3], "2") != strings.Index(lines[4], "2000") {
		t.Fatalf("misaligned:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatal("row count")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRowf("%d|%d", 1, 2)
	csv := tb.CSV()
	if csv != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		2.5e9: "2.50 GB/s",
		3e6:   "3.00 MB/s",
		4e3:   "4.00 KB/s",
		17:    "17 B/s",
	}
	for v, want := range cases {
		if got := Rate(v); got != want {
			t.Errorf("Rate(%v) = %q, want %q", v, got, want)
		}
	}
	if got := Seconds(150 * des.Second); got != "150 s" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Seconds(des.Second * 3 / 2); got != "1.50 s" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Seconds(5 * des.Millisecond); got != "5.0 ms" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Pct(12.34); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	var s metrics.Series
	s.Append(0, 0)
	s.Append(des.Time(5*des.Second), 100)
	out := Sparkline(&s, 0, des.Time(10*des.Second), 10)
	if len([]rune(out)) != 10 {
		t.Fatalf("width = %d", len([]rune(out)))
	}
	runes := []rune(out)
	if runes[0] != '▁' || runes[9] != '█' {
		t.Fatalf("sparkline shape: %q", out)
	}
	if Sparkline(&s, 0, 0, 10) != "" {
		t.Fatal("empty span should yield empty sparkline")
	}
	var empty metrics.Series
	if got := Sparkline(&empty, 0, des.Time(des.Second), 4); got != "▁▁▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}
}

func TestSampleSeries(t *testing.T) {
	a := &metrics.Series{Name: "T"}
	a.Append(0, 1e9)
	b := &metrics.Series{Name: "B"}
	b.Append(0, 5e8)
	tb := SampleSeries("x", 0, des.Time(10*des.Second), 5, a, b)
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	out := tb.Render()
	if !strings.Contains(out, "1.00 GB/s") || !strings.Contains(out, "500.00 MB/s") {
		t.Fatalf("missing values:\n%s", out)
	}
}

func TestGantt(t *testing.T) {
	rows := []GanttRow{
		{Label: "job0", Start: 0, End: des.Time(5 * des.Second)},
		{Label: "job10", Start: des.Time(5 * des.Second), End: des.Time(10 * des.Second)},
	}
	out := Gantt("timeline", rows, des.Time(10*des.Second), 20)
	if !strings.Contains(out, "== timeline ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// job0 occupies the first half, job10 the second.
	first := lines[1][strings.Index(lines[1], "|")+1:]
	if !strings.HasPrefix(first, "██████████") || !strings.Contains(first[10:], "          ") {
		t.Fatalf("job0 bar wrong: %q", first)
	}
	if Gantt("", rows, 0, 20) != "" {
		t.Fatal("zero horizon")
	}
}
