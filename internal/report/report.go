// Package report renders experiment results as aligned ASCII tables,
// sampled series, sparklines, and CSV — the textual equivalents of the
// paper's figures.
package report

import (
	"fmt"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
)

// Table is a simple aligned-columns renderer.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Render returns the aligned table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (quotes are not needed
// for the numeric content we emit).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Rate formats a bytes/s value in human units.
func Rate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GB/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f MB/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f KB/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", v)
	}
}

// Seconds formats a duration in seconds with sensible precision.
func Seconds(d des.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	default:
		return fmt.Sprintf("%.1f ms", s*1000)
	}
}

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Bytes formats a byte count in human units.
func Bytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%d B", v)
	}
}

// sparkLevels are the eight block glyphs of a sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as width sampled block characters between
// from and to (the textual stand-in for the paper's time-series plots).
func Sparkline(s *metrics.Series, from, to des.Time, width int) string {
	if width <= 0 || to <= from {
		return ""
	}
	max := s.Max()
	if max <= 0 {
		return strings.Repeat(string(sparkLevels[0]), width)
	}
	var b strings.Builder
	span := to.Sub(from)
	for i := 0; i < width; i++ {
		at := from.Add(des.Duration(int64(span) * int64(i) / int64(width)))
		v := s.At(at)
		idx := int(v / max * float64(len(sparkLevels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// SampleSeries renders several series sampled at n uniformly spaced
// instants between from and to, one row per instant.
func SampleSeries(title string, from, to des.Time, n int, series ...*metrics.Series) *Table {
	headers := []string{"t"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	t := NewTable(title, headers...)
	if n < 2 {
		n = 2
	}
	span := to.Sub(from)
	for i := 0; i < n; i++ {
		at := from.Add(des.Duration(int64(span) * int64(i) / int64(n-1)))
		row := []string{fmt.Sprintf("%.1f", at.Seconds())}
		for _, s := range series {
			row = append(row, Rate(s.At(at)))
		}
		t.AddRow(row...)
	}
	return t
}

// GanttRow is one bar of a Gantt chart.
type GanttRow struct {
	Label      string
	Start, End des.Time
}

// Gantt renders rows as an ASCII timeline between 0 and horizon, width
// characters wide — the textual form of the paper's Fig. 1 job timeline.
func Gantt(title string, rows []GanttRow, horizon des.Time, width int) string {
	if width <= 0 || horizon <= 0 {
		return ""
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	cell := func(i int) des.Time {
		return des.Time(int64(horizon) * int64(i) / int64(width))
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s |", labelW, r.Label)
		for i := 0; i < width; i++ {
			mid := cell(i) + (cell(i+1)-cell(i))/2
			if mid >= r.Start && mid < r.End {
				b.WriteRune('█')
			} else {
				b.WriteRune(' ')
			}
		}
		fmt.Fprintf(&b, "| %s..%s\n", Seconds(des.Duration(r.Start)), Seconds(des.Duration(r.End)))
	}
	// Axis line.
	fmt.Fprintf(&b, "%-*s 0%*s\n", labelW, "", width, Seconds(des.Duration(horizon)))
	return b.String()
}
