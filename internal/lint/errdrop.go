package lint

import (
	"go/ast"
	"go/types"
)

// errdropAnalyzer guards two error-return contracts that the fuzzers and
// the fabric's resume guarantee depend on:
//
//   - the four fuzz-tested decoders (tmio.DecodeStreamRecord,
//     tmio.DecodeFrame, trace.DecodeRecord, fabric.DecodeMsg) promise a
//     zero value exactly when they return an error; a caller that drops
//     the error happily processes that zero value as data;
//   - Close/Flush on files and buffered writers inside internal/fabric
//     and internal/runner (the journal and cache write paths): an
//     acceptance journaled but not durably written, or a cache entry
//     whose final flush failed silently, breaks kill/restart resume and
//     can poison the shared content-addressed cache.
//
// Unlike the taint rules this applies module-wide, including the exempt
// packages — the decoders' most important call sites are the gateway and
// the fabric themselves. A discard is an expression statement, a go or
// defer of the call, or a blank assignment of the error result.
var errdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc: "forbid discarding the error from the fuzz-tested decoders " +
		"(tmio.DecodeStreamRecord, tmio.DecodeFrame, trace.DecodeRecord, fabric.DecodeMsg) and " +
		"from Close/Flush on files and buffered writers in the fabric/runner " +
		"journal and cache write paths",
	Run: func(prog *Program, p *Package) []Diagnostic {
		var diags []Diagnostic
		report := func(pos ast.Node, msg string) {
			diags = append(diags, Diagnostic{Pos: p.Fset.Position(pos.Pos()), Rule: "errdrop", Message: msg})
		}
		checkCall := func(x ast.Expr) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := staticCallee(p, call)
			if fn == nil {
				return
			}
			if name, ok := decoderName(fn); ok {
				report(call, "discarded error from "+name+"; the decode contract is "+
					"zero-value-on-error — a dropped error turns a torn frame into data")
				return
			}
			if closeFlushTarget(p, fn) {
				report(call, "discarded error from "+dispName(fn)+" in the journal/cache "+
					"write path; an unchecked "+fn.Name()+" breaks the kill/restart resume guarantee")
			}
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.ExprStmt:
					checkCall(x.X)
				case *ast.DeferStmt:
					checkCall(x.Call)
				case *ast.GoStmt:
					checkCall(x.Call)
				case *ast.AssignStmt:
					if len(x.Rhs) != 1 {
						return true
					}
					call, ok := x.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := staticCallee(p, call)
					if fn == nil || len(x.Lhs) == 0 {
						return true
					}
					// The error is the last result; discarded when the
					// last LHS is blank.
					if !isBlank(x.Lhs[len(x.Lhs)-1]) {
						return true
					}
					if name, ok := decoderName(fn); ok {
						report(call, "error from "+name+" assigned to _; the decode contract is "+
							"zero-value-on-error — a dropped error turns a torn frame into data")
					} else if closeFlushTarget(p, fn) {
						report(call, "error from "+dispName(fn)+" assigned to _ in the journal/cache "+
							"write path; an unchecked "+fn.Name()+" breaks the kill/restart resume guarantee")
					}
				}
				return true
			})
		}
		return diags
	},
}

// staticCallee resolves a call to its statically known target function,
// if any.
func staticCallee(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// decoderName reports whether fn is one of the four fuzz-tested
// decoders, returning its display name.
func decoderName(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	path := fn.Pkg().Path()
	switch {
	case fn.Name() == "DecodeStreamRecord" && pathIs(path, "internal/tmio"):
		return "tmio.DecodeStreamRecord", true
	case fn.Name() == "DecodeFrame" && pathIs(path, "internal/tmio"):
		return "tmio.DecodeFrame", true
	case fn.Name() == "DecodeRecord" && pathIs(path, "internal/trace"):
		return "trace.DecodeRecord", true
	case fn.Name() == "DecodeMsg" && pathIs(path, "internal/fabric"):
		return "fabric.DecodeMsg", true
	}
	return "", false
}

// closeFlushTarget reports whether fn is an error-returning Close or
// Flush on an *os.File or *bufio.Writer called from inside the fabric or
// runner packages — the journal and cache write paths.
func closeFlushTarget(p *Package, fn *types.Func) bool {
	if !pathIs(p.Path, "internal/fabric") && !pathIs(p.Path, "internal/runner") {
		return false
	}
	if fn.Name() != "Close" && fn.Name() != "Flush" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Results().Len() == 0 {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "os" && name == "File") || (pkg == "bufio" && name == "Writer")
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
