// Fixture for the cachekey rule: every struct reachable from a
// runner.Point or fabric.ManifestPoint config must mark
// func/chan/unexported-interface fields json:"-". Rule applicability
// does not depend on the import path.
package fixture

import (
	"io"

	"iobehind/internal/fabric"
	"iobehind/internal/runner"
)

type callback func()

type hidden interface{ do() }

// Doer is exported, so a field of this type marshals by dynamic value —
// accepted (the writer opted into an exported contract).
type Doer interface{ Do() }

type badConfig struct {
	Name    string
	OnDone  func()           // want "[cachekey] cache-keyed field OnDone contains func content"
	Events  chan int         // want "[cachekey] cache-keyed field Events contains chan content"
	Hooks   []func() bool    // want "[cachekey] cache-keyed field Hooks contains func content"
	Filter  hidden           // want "[cachekey] cache-keyed field Filter contains unexported-interface content"
	Inline  interface{ f() } // want "[cachekey] cache-keyed field Inline contains anonymous-interface content"
	cb      callback         // want "[cachekey] unexported cache-keyed field cb contains func content"
	Sink    io.Writer        // exported interface: allowed
	Do      Doer             // exported interface: allowed
	Nested  *nestedConfig
	Tagged  func()         `json:"-"` // excluded wiring: allowed
	Skipped *skippedConfig `json:"-"` // excluded: not descended into
	//iolint:ignore cachekey fixture: documented intentional hazard
	Pardoned func()
}

type nestedConfig struct {
	Ranks int
	Hook  func(int) // want "[cachekey] cache-keyed field Hook contains func content"
}

// skippedConfig sits behind a json:"-" field, so its hazards are outside
// the cache key and must not be reported.
type skippedConfig struct {
	Unreported func()
}

type assignedConfig struct {
	Ch chan string // want "[cachekey] cache-keyed field Ch contains chan content"
}

var _ = runner.Point{Key: "a", Config: badConfig{}}

func assign() runner.Point {
	var p runner.Point
	p.Config = &assignedConfig{}
	return p
}

// manifestConfig enters a fabric manifest, so it travels the wire as a
// point's cache-key identity — the same totality contract applies.
type manifestConfig struct {
	Ranks  int
	OnLoss func()   // want "[cachekey] cache-keyed field OnLoss contains func content"
	Feed   chan int `json:"-"` // excluded wiring: allowed
}

var _ = fabric.ManifestPoint{Config: manifestConfig{}}

func assignManifest() fabric.ManifestPoint {
	var mp fabric.ManifestPoint
	mp.Config = &manifestAssigned{}
	return mp
}

type manifestAssigned struct {
	Done chan struct{} // want "[cachekey] cache-keyed field Done contains chan content"
}

// cleanConfig is never used as a Point config; its hazards are not the
// cache's business.
type cleanConfig struct {
	Unchecked func()
}
