// Fixture helper for the reachability regression test. This package is
// claimed as iobehind/internal/core — NOT a simulation package — so the
// pre-call-graph, package-scoped rules never looked inside it. Its sinks
// become findings only when a simulation package's calls make them
// sim-reachable.
package core

import "time"

// Stamp is the hop the simulation package calls.
func Stamp() int64 { return now() }

// now hides the wall-clock read one further hop down.
func now() int64 { return time.Now().UnixNano() }

// Requests reproduces the PR-5 pfs bug shape: building the per-stripe
// request list by ranging the stripe map, so map iteration order leaks
// into the slice.
func Requests(stripes map[int]int) []int {
	var out []int
	for s, n := range stripes {
		out = append(out, s*n)
	}
	return out
}
