// Fixture for malformed suppression comments: a marker without a rule or
// without a reason suppresses nothing and is itself reported (expected
// diagnostics are listed in lint_test.go, not as want comments, because a
// trailing comment would read as the missing reason).
package fixture

//iolint:ignore
var a int

//iolint:ignore floateq
var b int
