// Fixture for the errdrop rule's binary-frame half. Loaded under the
// claimed import path iobehind/internal/tmio, where the local
// DecodeFrame stands in for the real fuzz-tested frame decoder. Loaded
// again under iobehind/internal/gateway, where the local function is
// not the tmio decoder and nothing may be reported.
package fixture

import "os"

type StreamRecord struct{ Rank int }

// DecodeFrame mirrors the real frame decoder's contract: the returned
// slice is truncated to its original length exactly when err != nil.
func DecodeFrame(into []StreamRecord, b []byte) ([]StreamRecord, int, error) {
	if len(b) == 0 {
		return into, 0, os.ErrInvalid
	}
	return append(into, StreamRecord{Rank: int(b[0])}), 1, nil
}

func drops(b []byte) {
	DecodeFrame(nil, b)               // want "discarded error from tmio.DecodeFrame"
	recs, n, _ := DecodeFrame(nil, b) // want "error from tmio.DecodeFrame assigned to _"
	_, _ = recs, n
	defer DecodeFrame(nil, b) // want "discarded error from tmio.DecodeFrame"
}

func checked(b []byte) ([]StreamRecord, error) {
	recs, _, err := DecodeFrame(nil, b)
	if err != nil {
		return nil, err
	}
	return recs, nil
}
