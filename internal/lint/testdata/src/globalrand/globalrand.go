// Fixture for the globalrand rule, loaded under the claimed import path
// iobehind/internal/pfs.
package fixture

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
)

var global = rand.Intn(5) // want "[globalrand] global math/rand.Intn"

func draws() {
	_ = rand.Float64()     // want "[globalrand] global math/rand.Float64"
	rand.Seed(7)           // want "[globalrand] global math/rand.Seed"
	rand.Shuffle(3, swap)  // want "[globalrand] global math/rand.Shuffle"
	_ = randv2.Int()       // want "[globalrand] global math/rand/v2.Int"
	_, _ = crand.Read(nil) // want "[globalrand] crypto/rand is nondeterministic"
}

func swap(i, j int) {}

// Explicitly seeded generators are the required idiom.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng2 := randv2.New(randv2.NewPCG(1, 2))
	return rng.Float64() + rng2.Float64()
}

// A generator built from an indirect source cannot be proven seeded.
func indirect(src rand.Source) *rand.Rand {
	return rand.New(src) // want "[globalrand] math/rand.New with an indirect source"
}

func suppressedIndirect(src rand.Source) *rand.Rand {
	//iolint:ignore globalrand fixture: source is seeded by the caller
	return rand.New(src)
}
