// Fixture modeling the incremental sweep engine's shape: a chunked
// aggregation structure whose maintenance code must stay deterministic
// and synchronous. Loaded under the claimed import path
// iobehind/internal/region (a simulation package, so every declared
// function is a reachability entry point and the maporder and goroutine
// taint rules both apply) and again under the exempt
// iobehind/internal/runner path, where nothing may be reported.
package fixture

type chunk struct {
	times  []int64
	deltas []float64
}

type incSweep struct {
	chunks []*chunk
	// byTime is the tempting-but-wrong index: ranging it would make the
	// refold order depend on map iteration.
	byTime map[int64]*chunk
}

// refoldFromIndex is the bug shape the rules exist to catch: rebuilding
// the chunk list by ranging a map appends boundaries in
// nondeterministic order, breaking the bit-exactness contract with the
// offline sweep.
func (s *incSweep) refoldFromIndex() []*chunk {
	var ordered []*chunk
	for _, ch := range s.byTime { // want "appends to a slice"
		ordered = append(ordered, ch)
	}
	return ordered
}

// foldFromIndex is the float flavor: a prefix sum accumulated in map
// order differs between runs in its low bits.
func (s *incSweep) foldFromIndex() float64 {
	sum := 0.0
	for _, ch := range s.byTime { // want "accumulates floats"
		for _, d := range ch.deltas {
			sum += d
		}
	}
	return sum
}

// compactAsync is the other forbidden shape: compaction racing the fold
// on a goroutine instead of running synchronously under the caller's
// lock.
func (s *incSweep) compactAsync(cutoff int64) {
	done := make(chan struct{})
	go func() { // want "go statement starts a goroutine"
		for len(s.chunks) > 0 && s.chunks[0].times[0] < cutoff {
			s.chunks = s.chunks[1:]
		}
		close(done) // want "close of a channel"
	}()
	<-done // want "channel receive"
}

// refold is the correct shape: a deterministic slice walk with a single
// sequential float fold. Nothing may be reported here.
func (s *incSweep) refold() float64 {
	sum := 0.0
	for _, ch := range s.chunks {
		for _, d := range ch.deltas {
			sum += d
		}
	}
	return sum
}

// sizeByChunk ranges a map in an order-independent way (per-key writes
// into another map): allowed.
func (s *incSweep) sizeByChunk() map[int64]int {
	out := make(map[int64]int, len(s.byTime))
	for t, ch := range s.byTime {
		out[t] = len(ch.deltas)
	}
	return out
}
