// Fixture for the walltime rule. Loaded by lint_test.go under the
// claimed import path iobehind/internal/des (a simulation package) and
// again under a non-simulation path, where nothing may be reported.
package fixture

import "time"

var t0 = time.Now() // want "[walltime] wall-clock call time.Now"

func waits() {
	time.Sleep(time.Millisecond) // want "[walltime] wall-clock call time.Sleep"
	_ = time.Since(t0)           // want "[walltime] wall-clock call time.Since"
	<-time.After(0)              // want "[walltime] wall-clock call time.After" "[goroutine] channel receive"
	select { // want "[goroutine] select over channels"
	case <-time.Tick(time.Second): // want "[walltime] wall-clock call time.Tick"
	default:
	}
}

// Types and pure conversions stay allowed: only reading the host clock is
// banned.
func allowed() time.Duration {
	var d time.Duration = 5 * time.Millisecond
	_ = d.String()
	return time.Duration(42)
}

func suppressed() {
	//iolint:ignore walltime fixture exercises a justified wall-clock read
	_ = time.Now()
	_ = time.Now() //iolint:ignore walltime same-line suppression form
}
