// Fixture for the errdrop rule. Loaded under the claimed import path
// iobehind/internal/fabric, where both halves of the rule apply: the
// local DecodeMsg stands in for the real fuzz-tested decoder, and
// Close/Flush on files and buffered writers are journal/cache write
// paths. Loaded again under iobehind/internal/gateway, where neither
// half applies and nothing may be reported.
package fixture

import (
	"bufio"
	"os"
)

// Msg and DecodeMsg mirror the real decoder's contract: zero value
// exactly when err != nil.
type Msg struct{ Kind string }

func DecodeMsg(b []byte) (Msg, error) {
	if len(b) == 0 {
		return Msg{}, os.ErrInvalid
	}
	return Msg{Kind: string(b)}, nil
}

func drops(f *os.File, w *bufio.Writer, b []byte) {
	DecodeMsg(b)         // want "discarded error from fabric.DecodeMsg"
	m, _ := DecodeMsg(b) // want "error from fabric.DecodeMsg assigned to _"
	_ = m
	f.Close()       // want "discarded error from os.(*File).Close"
	defer w.Flush() // want "discarded error from bufio.(*Writer).Flush"
	_ = f.Close()   // want "error from os.(*File).Close assigned to _"
}

func checked(f *os.File, b []byte) error {
	if _, err := DecodeMsg(b); err != nil {
		return err
	}
	return f.Close()
}

// A Close that is neither *os.File nor *bufio.Writer is not a journal
// or cache write path.
type closer struct{}

func (closer) Close() error { return nil }

func fine(c closer) {
	c.Close()
}
