// Fixture for the goroutine rule. Loaded under the claimed import path
// iobehind/internal/des (a simulation package) and again under the
// exempt iobehind/internal/fabric path, where nothing may be reported —
// the exemption boundary, not a suppression, is what permits real
// concurrency in the fabric.
package fixture

func pump(ch chan int, done chan struct{}) {
	go drain(ch) // want "go statement starts a goroutine"
	ch <- 1      // want "channel send"
	<-done       // want "channel receive"
	// A select is one finding; the channel operations heading its cases
	// are part of it, not separate findings.
	select { // want "select over channels"
	case v := <-ch:
		_ = v
	case done <- struct{}{}:
	}
	close(ch) // want "close of a channel"
}

func drain(ch chan int) {
	v := <-ch // want "channel receive"
	_ = v
}

// close as a plain function call is not the channel builtin.
type conn struct{}

func (conn) close() {}

func fine(c conn) {
	c.close()
}
