// Fixture for suppression edge cases. Claimed as
// iobehind/internal/metrics so both the taint rules (sim package) and
// floateq (scoped package) apply.
package fixture

import "time"

// Two rules fire on one line; the suppression names floateq, so only
// the floateq finding is covered and walltime must survive.
func mixed(a float64) bool {
	//iolint:ignore floateq fixture: exact compare against a sentinel, not computed arithmetic
	return a == float64(time.Now().Unix()) // want "wall-clock call time.Now"
}

// A suppression above a multi-line statement covers every line the
// statement spans — both wall-clock reads inside the literal.
func spanned() []int64 {
	//iolint:ignore walltime fixture: exercises statement-span suppression
	out := []int64{
		time.Now().Unix(),
		time.Now().UnixNano(),
	}
	return out
}

// A chain-style finding is suppressed only by naming its rule; naming a
// different rule covers nothing.
func wrongRule() int64 {
	//iolint:ignore maporder fixture: wrong rule on purpose
	return time.Now().Unix() // want "wall-clock call time.Now"
}
