// Fixture for the reachability regression test. Claimed as
// iobehind/internal/pfs (a simulation package); its calls into the
// reachcore helper make the helper's hidden sinks sim-reachable.
package pfs

import core "iobehind/internal/core"

// Recompute reaches time.Now two call hops away
// (Recompute → Stamp → now → time.Now).
func Recompute() int64 { return core.Stamp() }

// Layout reaches the PR-5-shaped map-order bug one hop away.
func Layout() []int { return core.Requests(map[int]int{0: 1}) }
