// Fixture for the golden-output test. Claimed as
// iobehind/internal/metrics so walltime, maporder (sim package), and
// floateq (scoped package) all fire; TestGoldenOutput pins the text and
// JSON renderings of the resulting findings byte-for-byte.
package fixture

import "time"

func epoch() float64 {
	return float64(time.Now().Unix())
}

func Equalish(a, b float64) bool {
	return a == b
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
