// Fixture for the maporder rule. Loaded under the claimed import path
// iobehind/internal/sched (a simulation package) and again under the
// exempt iobehind/internal/runner path, where nothing may be reported.
package fixture

import "fmt"

type queue struct{ items []int }

func (q *queue) Schedule(v int) { q.items = append(q.items, v) }

// collect is the PR-5 bug shape: the result slice is built in map order.
func collect(m map[int]int) []int {
	var out []int
	for k, v := range m { // want "appends to a slice"
		out = append(out, k+v)
	}
	return out
}

func enqueue(q *queue, m map[int]int) {
	for k := range m { // want "schedules events"
		q.Schedule(k)
	}
}

func show(m map[string]float64) {
	for k, v := range m { // want "writes output"
		fmt.Println(k, v)
	}
}

func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulates floats"
		sum += v
	}
	return sum
}

// Order-independent bodies stay allowed: counting, per-key writes, and
// integer accumulation do not depend on iteration order.
func count(m map[string]int) int {
	n := 0
	total := 0
	for _, v := range m {
		n++
		total += v
	}
	return n + total
}

func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Ranging a slice is always fine; the rule is about maps.
func sliceAppend(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

func suppressedCollect(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//iolint:ignore maporder fixture: keys are sorted before use, order cannot leak
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
