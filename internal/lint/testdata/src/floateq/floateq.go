// Fixture for the floateq rule, loaded under the claimed import path
// iobehind/internal/region.
package fixture

func compare(a, b float64, f float32, n, m int) bool {
	if a == b { // want "[floateq] floating-point == comparison"
		return true
	}
	if a != 0 { // want "[floateq] floating-point != comparison"
		return false
	}
	if f == 1.5 { // want "[floateq] floating-point == comparison"
		return true
	}
	// Integer and ordering comparisons are fine.
	if n == m || a < b || a >= b {
		return false
	}
	//iolint:ignore floateq fixture: sentinel bit-pattern check is intentional
	return a == -1
}
