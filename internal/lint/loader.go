package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and typechecks the packages matched by patterns, rooted at
// the module directory dir. Patterns are directory paths relative to dir
// ("./internal/des", "internal/des") or recursive globs ("./...",
// "./internal/..."). Test files are never loaded: the rules police
// simulation code, not its tests. Directories named testdata, hidden
// directories, and directories without non-test Go files are skipped.
//
// Typechecking uses the stdlib source importer, so the only external
// requirement is a resolvable GOROOT — no x/tools, no export data.
func Load(dir string, patterns []string) ([]*Package, error) {
	module, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		p, err := Check(fset, imp, d, path)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// Check parses and typechecks the non-test Go files of one directory as
// the package with the given import path. It returns (nil, nil) when the
// directory has no non-test Go files. Exposed so tests can load fixture
// directories under an arbitrary claimed import path.
func Check(fset *token.FileSet, imp types.Importer, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// modulePath reads the module path from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if mod := strings.TrimSpace(rest); mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// expandPatterns resolves patterns to the sorted set of package dirs.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		if pat == "" {
			pat = "."
		}
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
		} else if pat == "..." {
			base, recursive = ".", true
		}
		start := filepath.Join(root, filepath.FromSlash(base))
		fi, err := os.Stat(start)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			add(start)
			continue
		}
		err = filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
