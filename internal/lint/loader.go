package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and typechecks the packages matched by patterns, rooted at
// the module directory dir. Patterns are directory paths relative to dir
// ("./internal/des", "internal/des") or recursive globs ("./...",
// "./internal/..."). Test files are never loaded: the rules police
// simulation code, not its tests. Directories named testdata, hidden
// directories, and directories without non-test Go files are skipped.
//
// The target set is expanded to its module-internal import closure, and
// packages are typechecked in dependency order with module-internal
// imports resolving to the already-checked packages, so every module
// package in the load is checked exactly once and type identity is
// unified across the whole load — the property the call-graph builder's
// interface-implementation checks depend on. Only standard-library
// imports fall back to the stdlib source importer, so the only external
// requirement is a resolvable GOROOT — no x/tools, no export data.
func Load(dir string, patterns []string) ([]*Package, error) {
	module, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Parse everything first so the dependency order among the targets is
	// known before any typechecking starts.
	type unit struct {
		dir, path string
		files     []*ast.File
		imports   []string
	}
	var units []*unit
	byPath := make(map[string]*unit)
	addUnit := func(d, path string) (*unit, error) {
		files, err := parseDir(fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, nil
		}
		u := &unit{dir: d, path: path, files: files}
		seen := make(map[string]bool)
		for _, f := range files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if !seen[p] {
					seen[p] = true
					u.imports = append(u.imports, p)
				}
			}
		}
		units = append(units, u)
		byPath[path] = u
		return u, nil
	}
	for _, d := range dirs {
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		if _, err := addUnit(d, path); err != nil {
			return nil, err
		}
	}

	// Expand to the module-internal import closure: a module package
	// imported by a target but excluded from the patterns must still be
	// typechecked in this load, or the fallback importer would rebuild it
	// (and, transitively, packages that *are* in the target set) in a
	// second type universe and identical types would stop comparing equal.
	// Closure packages also carry taint — a sim entry point's chain does
	// not stop at a pattern boundary.
	for i := 0; i < len(units); i++ {
		for _, imp := range units[i].imports {
			if byPath[imp] != nil || !strings.HasPrefix(imp, module+"/") {
				continue
			}
			d := filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(imp, module+"/")))
			if !hasGoFiles(d) {
				continue
			}
			if _, err := addUnit(d, imp); err != nil {
				return nil, err
			}
		}
	}

	// Topological order (imports before importers). Valid Go has no
	// cycles among these; anything unresolved just keeps its place.
	order := make([]*unit, 0, len(units))
	state := make(map[*unit]int) // 0 new, 1 visiting, 2 done
	var visit func(u *unit)
	visit = func(u *unit) {
		if state[u] != 0 {
			return
		}
		state[u] = 1
		for _, imp := range u.imports {
			if dep, ok := byPath[imp]; ok && state[dep] == 0 {
				visit(dep)
			}
		}
		state[u] = 2
		order = append(order, u)
	}
	for _, u := range units {
		visit(u)
	}

	chain := &ChainImporter{
		Fallback: importer.ForCompiler(fset, "source", nil),
		Pkgs:     make(map[string]*types.Package, len(order)),
	}
	var pkgs []*Package
	for _, u := range order {
		p, err := checkFiles(fset, chain, u.path, u.files)
		if err != nil {
			return nil, err
		}
		chain.Pkgs[u.path] = p.Pkg
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// ChainImporter resolves imports from an explicit package map before
// falling back to another importer. Load uses it to hand each package
// the packages checked before it; tests use it to load fixture packages
// that import one another under claimed paths.
type ChainImporter struct {
	Pkgs     map[string]*types.Package
	Fallback types.Importer
}

// Import implements types.Importer.
func (c *ChainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.Pkgs[path]; ok {
		return p, nil
	}
	return c.Fallback.Import(path)
}

// ImportFrom implements types.ImporterFrom so the source importer's
// srcDir-aware resolution still applies on fallback.
func (c *ChainImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.Pkgs[path]; ok {
		return p, nil
	}
	if from, ok := c.Fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return c.Fallback.Import(path)
}

// Check parses and typechecks the non-test Go files of one directory as
// the package with the given import path. It returns (nil, nil) when the
// directory has no non-test Go files. Exposed so tests can load fixture
// directories under an arbitrary claimed import path.
func Check(fset *token.FileSet, imp types.Importer, dir, path string) (*Package, error) {
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	return checkFiles(fset, imp, path, files)
}

// parseDir parses the sorted non-test Go files of dir (with comments).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkFiles typechecks already-parsed files as the package at path.
func checkFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// modulePath reads the module path from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if mod := strings.TrimSpace(rest); mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// expandPatterns resolves patterns to the sorted set of package dirs.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		if pat == "" {
			pat = "."
		}
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
		} else if pat == "..." {
			base, recursive = ".", true
		}
		start := filepath.Join(root, filepath.FromSlash(base))
		fi, err := os.Stat(start)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			add(start)
			continue
		}
		err = filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
