package lint_test

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"iobehind/internal/lint"
)

// TestAnalyzers loads each rule's fixture package under a claimed import
// path and asserts that the diagnostics RunAll produces (after
// suppression filtering) match the fixture's // want comments exactly:
// every want is hit by exactly one diagnostic on its line, and no
// diagnostic lacks a want.
func TestAnalyzers(t *testing.T) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	tests := []struct {
		name string
		dir  string // fixture under testdata/src
		path string // claimed import path (decides rule applicability)
		// explicit, when non-nil, replaces // want matching with exact
		// "line [rule]" expectations (used where a trailing want comment
		// would change the fixture's meaning).
		explicit []string
		// ignoreWants loads a fixture while asserting zero diagnostics —
		// the same code under a path where no rule applies.
		ignoreWants bool
	}{
		{name: "walltime", dir: "walltime", path: "iobehind/internal/des"},
		{name: "walltime-outside-sim", dir: "walltime", path: "iobehind/internal/gateway", ignoreWants: true},
		// The fabric legitimately reads the wall clock (lease deadlines,
		// reconnect backoff, worker liveness — properties of real machines,
		// never of a simulated point), so it is deliberately outside the
		// walltime rule's scope.
		{name: "walltime-fabric-excluded", dir: "walltime", path: "iobehind/internal/fabric", ignoreWants: true},
		{name: "globalrand", dir: "globalrand", path: "iobehind/internal/pfs"},
		{name: "globalrand-outside-sim", dir: "globalrand", path: "iobehind/internal/tmio", ignoreWants: true},
		{name: "maporder", dir: "maporder", path: "iobehind/internal/sched"},
		{name: "maporder-exempt", dir: "maporder", path: "iobehind/internal/runner", ignoreWants: true},
		{name: "goroutine", dir: "goroutine", path: "iobehind/internal/des"},
		{name: "goroutine-exempt", dir: "goroutine", path: "iobehind/internal/fabric", ignoreWants: true},
		// The incremental sweep's chunked-structure shape: map-ordered
		// refolds and goroutine-based compaction are exactly the bugs
		// that would break the online/offline bit-exactness contract, so
		// both taint rules must cover internal/region's new code.
		{name: "incsweep-region", dir: "incsweep", path: "iobehind/internal/region"},
		{name: "incsweep-exempt", dir: "incsweep", path: "iobehind/internal/runner", ignoreWants: true},
		{name: "errdrop", dir: "errdrop", path: "iobehind/internal/fabric"},
		{name: "errdrop-outside", dir: "errdrop", path: "iobehind/internal/gateway", ignoreWants: true},
		{name: "errdropframe", dir: "errdropframe", path: "iobehind/internal/tmio"},
		{name: "errdropframe-outside", dir: "errdropframe", path: "iobehind/internal/gateway", ignoreWants: true},
		{name: "suppress-edge-cases", dir: "suppress", path: "iobehind/internal/metrics"},
		{name: "cachekey", dir: "cachekey", path: "iobehind/internal/lintfixture"},
		{name: "floateq", dir: "floateq", path: "iobehind/internal/region"},
		{name: "floateq-outside", dir: "floateq", path: "iobehind/internal/pfs", ignoreWants: true},
		{name: "ignore-malformed", dir: "ignorebad", path: "iobehind/internal/lintfixture",
			explicit: []string{"7 [ignore]", "10 [ignore]"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tt.dir)
			p, err := lint.Check(fset, imp, dir, tt.path)
			if err != nil {
				t.Fatalf("load fixture %s: %v", dir, err)
			}
			diags := lint.RunAll([]*lint.Package{p})
			switch {
			case tt.ignoreWants:
				for _, d := range diags {
					t.Errorf("unexpected diagnostic outside rule scope: %s", d)
				}
			case tt.explicit != nil:
				var got []string
				for _, d := range diags {
					got = append(got, fmt.Sprintf("%d [%s]", d.Pos.Line, d.Rule))
				}
				if strings.Join(got, "; ") != strings.Join(tt.explicit, "; ") {
					t.Errorf("diagnostics = %v, want %v", got, tt.explicit)
				}
			default:
				matchWants(t, p, diags)
			}
		})
	}
}

var wantRE = regexp.MustCompile(`// want (".*")`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// matchWants compares diagnostics against the fixture's // want comments.
func matchWants(t *testing.T, p *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type want struct {
		substr string
		used   bool
	}
	wants := make(map[int][]*want) // line -> expectations
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					wants[line] = append(wants[line], &want{substr: arg[1]})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.used && strings.Contains(d.String(), w.substr) {
				w.used, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("line %d: missing diagnostic containing %q", line, w.substr)
			}
		}
	}
}

// TestDiagnosticString pins the file:line:col: [rule] message format the
// Makefile's lint target (and editors) rely on.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Rule:    "walltime",
		Message: "msg",
	}
	if got, want := d.String(), "a/b.go:3:7: [walltime] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestAnalyzerRegistry pins the shipped rule set: the seven invariants
// the sweep cache and online/offline equality depend on.
func TestAnalyzerRegistry(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s: missing doc or run", a.Name)
		}
	}
	want := []string{"walltime", "globalrand", "maporder", "goroutine", "errdrop", "cachekey", "floateq"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("analyzers = %v, want %v", names, want)
	}
}

// TestReachabilityAcrossPackages is the seeded regression for the
// whole-program engine: a wall-clock read and a PR-5-shaped map-order
// bug hidden in a helper package OUTSIDE the simulation list, reached
// only through calls from a simulation package. The package-scoped
// rules this engine replaced provably missed both (the helper alone is
// clean); the call graph reports them with full chains.
func TestReachabilityAcrossPackages(t *testing.T) {
	fset := token.NewFileSet()
	src := importer.ForCompiler(fset, "source", nil)

	helper, err := lint.Check(fset, src, filepath.Join("testdata", "src", "reachcore"), "iobehind/internal/core")
	if err != nil {
		t.Fatalf("load helper: %v", err)
	}
	// Alone, the helper produces nothing: it is not a simulation package,
	// so nothing in it is sim-reachable. This is exactly the blind spot of
	// a package-list rule.
	if diags := lint.RunAll([]*lint.Package{helper}); len(diags) != 0 {
		t.Fatalf("helper alone should be clean, got %v", diags)
	}

	chain := &lint.ChainImporter{
		Pkgs:     map[string]*types.Package{"iobehind/internal/core": helper.Pkg},
		Fallback: src,
	}
	sim, err := lint.Check(fset, chain, filepath.Join("testdata", "src", "reach"), "iobehind/internal/pfs")
	if err != nil {
		t.Fatalf("load sim fixture: %v", err)
	}
	diags := lint.RunAll([]*lint.Package{helper, sim})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%v", len(diags), diags)
	}
	byRule := make(map[string]lint.Diagnostic)
	for _, d := range diags {
		byRule[d.Rule] = d
		if base := filepath.Base(d.Pos.Filename); base != "core.go" {
			t.Errorf("[%s] reported in %s, want the helper file core.go", d.Rule, base)
		}
	}
	wt, ok := byRule["walltime"]
	if !ok {
		t.Fatalf("no walltime diagnostic in %v", diags)
	}
	if got, want := strings.Join(wt.Chain, " → "), "pfs.Recompute → core.Stamp → core.now → time.Now"; got != want {
		t.Errorf("walltime chain = %q, want %q", got, want)
	}
	if !strings.Contains(wt.Message, "pfs.Recompute → core.Stamp → core.now → time.Now") {
		t.Errorf("walltime message lacks the rendered chain: %s", wt.Message)
	}
	mo, ok := byRule["maporder"]
	if !ok {
		t.Fatalf("no maporder diagnostic in %v", diags)
	}
	if got, want := strings.Join(mo.Chain, " → "), "pfs.Layout → core.Requests"; got != want {
		t.Errorf("maporder chain = %q, want %q", got, want)
	}
}

// TestLoadRepo smoke-loads two real packages through the pattern loader
// (which expands to their module-internal import closure so type
// identity stays unified) and asserts the loaded tree is currently
// clean — the invariant make ci enforces.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecking the repo is slow; skipped with -short")
	}
	pkgs, err := lint.Load(filepath.Join("..", ".."), []string{"./internal/des", "./internal/region"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	found := make(map[string]bool)
	for _, p := range pkgs {
		found[p.Path] = true
	}
	for _, want := range []string{"iobehind/internal/des", "iobehind/internal/region"} {
		if !found[want] {
			t.Errorf("Load did not return %s (got %d packages)", want, len(pkgs))
		}
	}
	for _, d := range lint.RunAll(pkgs) {
		t.Errorf("unexpected diagnostic in clean tree: %s", d)
	}
}

// TestGoldenOutput pins both renderings of iolint's findings — the
// file:line:col text form and the -json form with its stable field
// names — over a fixture that trips three different rules.
func TestGoldenOutput(t *testing.T) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	p, err := lint.Check(fset, imp, filepath.Join("testdata", "src", "multirule"), "iobehind/internal/metrics")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := lint.RunAll([]*lint.Package{p})
	for i := range diags {
		diags[i].Pos.Filename = filepath.Base(diags[i].Pos.Filename)
	}

	var text strings.Builder
	for _, d := range diags {
		text.WriteString(d.String())
		text.WriteString("\n")
	}
	if got := text.String(); got != goldenText {
		t.Errorf("text rendering drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenText)
	}

	out, err := lint.FormatJSON(diags)
	if err != nil {
		t.Fatalf("FormatJSON: %v", err)
	}
	if got := string(out) + "\n"; got != goldenJSON {
		t.Errorf("JSON rendering drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenJSON)
	}

	// The empty set renders as [], not null — scripts consuming -json
	// depend on always getting an array.
	empty, err := lint.FormatJSON(nil)
	if err != nil {
		t.Fatalf("FormatJSON(nil): %v", err)
	}
	if string(empty) != "[]" {
		t.Errorf("FormatJSON(nil) = %q, want []", empty)
	}
}

// goldenText and goldenJSON pin iolint's two output renderings over the
// multirule fixture (filenames reduced to their base name).
const goldenText = `multirule.go:10:17: [walltime] wall-clock call time.Now is sim-reachable (metrics.epoch → time.Now); derive time from des.Time so results stay a pure function of config
multirule.go:14:11: [floateq] floating-point == comparison; use an epsilon or ordering comparison so interval arithmetic stays stable
multirule.go:19:2: [maporder] range over map[string]int appends to a slice; map iteration order is randomized per run — iterate a sorted or first-appearance order instead (metrics.Keys)
`

const goldenJSON = `[
  {
    "file": "multirule.go",
    "line": 10,
    "col": 17,
    "rule": "walltime",
    "message": "wall-clock call time.Now is sim-reachable (metrics.epoch → time.Now); derive time from des.Time so results stay a pure function of config",
    "chain": [
      "metrics.epoch",
      "time.Now"
    ]
  },
  {
    "file": "multirule.go",
    "line": 14,
    "col": 11,
    "rule": "floateq",
    "message": "floating-point == comparison; use an epsilon or ordering comparison so interval arithmetic stays stable"
  },
  {
    "file": "multirule.go",
    "line": 19,
    "col": 2,
    "rule": "maporder",
    "message": "range over map[string]int appends to a slice; map iteration order is randomized per run — iterate a sorted or first-appearance order instead (metrics.Keys)",
    "chain": [
      "metrics.Keys"
    ]
  }
]
`
