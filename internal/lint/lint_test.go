package lint_test

import (
	"fmt"
	"go/importer"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"iobehind/internal/lint"
)

// TestAnalyzers loads each rule's fixture package under a claimed import
// path and asserts that the diagnostics RunAll produces (after
// suppression filtering) match the fixture's // want comments exactly:
// every want is hit by exactly one diagnostic on its line, and no
// diagnostic lacks a want.
func TestAnalyzers(t *testing.T) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	tests := []struct {
		name string
		dir  string // fixture under testdata/src
		path string // claimed import path (decides rule applicability)
		// explicit, when non-nil, replaces // want matching with exact
		// "line [rule]" expectations (used where a trailing want comment
		// would change the fixture's meaning).
		explicit []string
		// ignoreWants loads a fixture while asserting zero diagnostics —
		// the same code under a path where no rule applies.
		ignoreWants bool
	}{
		{name: "walltime", dir: "walltime", path: "iobehind/internal/des"},
		{name: "walltime-outside-sim", dir: "walltime", path: "iobehind/internal/gateway", ignoreWants: true},
		// The fabric legitimately reads the wall clock (lease deadlines,
		// reconnect backoff, worker liveness — properties of real machines,
		// never of a simulated point), so it is deliberately outside the
		// walltime rule's scope.
		{name: "walltime-fabric-excluded", dir: "walltime", path: "iobehind/internal/fabric", ignoreWants: true},
		{name: "globalrand", dir: "globalrand", path: "iobehind/internal/pfs"},
		{name: "globalrand-outside-sim", dir: "globalrand", path: "iobehind/internal/tmio", ignoreWants: true},
		{name: "cachekey", dir: "cachekey", path: "iobehind/internal/lintfixture"},
		{name: "floateq", dir: "floateq", path: "iobehind/internal/region"},
		{name: "floateq-outside", dir: "floateq", path: "iobehind/internal/pfs", ignoreWants: true},
		{name: "ignore-malformed", dir: "ignorebad", path: "iobehind/internal/lintfixture",
			explicit: []string{"7 [ignore]", "10 [ignore]"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tt.dir)
			p, err := lint.Check(fset, imp, dir, tt.path)
			if err != nil {
				t.Fatalf("load fixture %s: %v", dir, err)
			}
			diags := lint.RunAll([]*lint.Package{p})
			switch {
			case tt.ignoreWants:
				for _, d := range diags {
					t.Errorf("unexpected diagnostic outside rule scope: %s", d)
				}
			case tt.explicit != nil:
				var got []string
				for _, d := range diags {
					got = append(got, fmt.Sprintf("%d [%s]", d.Pos.Line, d.Rule))
				}
				if strings.Join(got, "; ") != strings.Join(tt.explicit, "; ") {
					t.Errorf("diagnostics = %v, want %v", got, tt.explicit)
				}
			default:
				matchWants(t, p, diags)
			}
		})
	}
}

var wantRE = regexp.MustCompile(`// want (".*")`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// matchWants compares diagnostics against the fixture's // want comments.
func matchWants(t *testing.T, p *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type want struct {
		substr string
		used   bool
	}
	wants := make(map[int][]*want) // line -> expectations
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					wants[line] = append(wants[line], &want{substr: arg[1]})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.used && strings.Contains(d.String(), w.substr) {
				w.used, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("line %d: missing diagnostic containing %q", line, w.substr)
			}
		}
	}
}

// TestDiagnosticString pins the file:line:col: [rule] message format the
// Makefile's lint target (and editors) rely on.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Rule:    "walltime",
		Message: "msg",
	}
	if got, want := d.String(), "a/b.go:3:7: [walltime] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestAnalyzerRegistry pins the shipped rule set: the four invariants the
// sweep cache and online/offline equality depend on.
func TestAnalyzerRegistry(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s: missing doc or run", a.Name)
		}
	}
	want := []string{"walltime", "globalrand", "cachekey", "floateq"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("analyzers = %v, want %v", names, want)
	}
}

// TestLoadRepo smoke-loads two real packages through the pattern loader
// and asserts the simulation tree is currently clean — the invariant
// make ci enforces.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecking the repo is slow; skipped with -short")
	}
	pkgs, err := lint.Load(filepath.Join("..", ".."), []string{"./internal/des", "./internal/region"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, d := range lint.RunAll(pkgs) {
		t.Errorf("unexpected diagnostic in clean tree: %s", d)
	}
}
