package lint

import (
	"go/ast"
	"go/types"
)

// walltimeFuncs are the package-level time functions that observe or wait
// on the wall clock. Types like time.Duration (which des.Duration mirrors
// for printing) and pure conversions remain allowed; it is the *reading*
// of host time that breaks the pure-function-of-config contract.
var walltimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "After": true,
	"Until": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

var walltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads (time.Now/Sleep/Since/After/...) in " +
		"simulation packages; all time must flow from des.Time",
	Run: func(p *Package) []Diagnostic {
		if !isSimPackage(p.Path) {
			return nil
		}
		var diags []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil || !walltimeFuncs[fn.Name()] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(sel.Pos()),
					Rule: "walltime",
					Message: "wall-clock call time." + fn.Name() +
						" in simulation package; derive time from des.Time so results stay a pure function of config",
				})
				return true
			})
		}
		return diags
	},
}
