package lint

import (
	"go/types"
)

// walltimeFuncs are the package-level time functions that observe or wait
// on the wall clock. Types like time.Duration (which des.Duration mirrors
// for printing) and pure conversions remain allowed; it is the *reading*
// of host time that breaks the pure-function-of-config contract.
var walltimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "After": true,
	"Until": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

var walltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "forbid any call path from a simulation entry point to " +
		"time.Now/Sleep/Since/After/... through any number of packages; " +
		"all time must flow from des.Time",
	Run: func(prog *Program, p *Package) []Diagnostic {
		var diags []Diagnostic
		for _, n := range prog.reachableDeclared(p) {
			for _, e := range n.edges {
				fn := e.to.fn
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					continue
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					continue
				}
				if !walltimeFuncs[fn.Name()] {
					continue
				}
				chain := n.chainTo(e.to.disp)
				diags = append(diags, Diagnostic{
					Pos:   e.pos,
					Rule:  "walltime",
					Chain: chain,
					Message: "wall-clock call time." + fn.Name() +
						" is sim-reachable (" + renderChain(chain) +
						"); derive time from des.Time so results stay a pure function of config",
				})
			}
		}
		return diags
	},
}
