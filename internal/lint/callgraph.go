package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph and the sim-reachability
// relation the taint rules (walltime, globalrand, maporder, goroutine)
// run on. The graph is intentionally conservative:
//
//   - static calls and method calls resolve through the type checker to
//     their exact target;
//   - a call through an interface method fans out to every declared
//     method in the load with the same name whose receiver type
//     implements that interface;
//   - a call through a function value (variable, parameter, struct
//     field) fans out to every function that escapes as a value
//     anywhere in the load with an identical signature;
//   - function-literal bodies are attributed to their lexically
//     enclosing declared function, so a callback's body is reachable
//     whenever its encloser is — no closure tracking needed;
//   - package-level variable initializers form a synthetic "pkg.init"
//     node, an entry point for every package a simulation package
//     (transitively) imports, because init runs before any point does.
//
// Over-approximation only ever produces extra findings, never missed
// ones, and the //iolint:ignore mechanism absorbs the rare false edge.

// cgNode is one function in the call graph: a declared function or
// method of a loaded package, a synthetic per-package init, or an
// external function (stdlib or unloaded module package) that appears as
// a call target but has no body here.
type cgNode struct {
	sym  string // unique key: types.Func.FullName() or path+".init"
	disp string // short display form: "pfs.recompute", "des.(*Engine).Run"
	pkg  string // declaring package import path ("" if unknown)
	p    *Package
	fn   *types.Func // nil for init and external nodes

	bodies []ast.Node // FuncDecl bodies / var initializer expressions
	edges  []cgEdge

	// valueSigs are the signatures under which this function escapes as
	// a value (taken by reference rather than called); dynamic calls
	// resolve against them.
	valueSigs []*types.Signature

	entry     bool
	reachable bool
	via       *cgNode // BFS parent toward an entry point
}

// cgEdge is one call site.
type cgEdge struct {
	to   *cgNode
	pos  token.Position
	call *ast.CallExpr // the call expression for static calls, else nil
}

type ifaceCall struct {
	from  *cgNode
	iface *types.Interface
	name  string
	pos   token.Position
}

type dynCall struct {
	from *cgNode
	sig  *types.Signature
	pos  token.Position
}

type methodDecl struct {
	recv types.Type
	node *cgNode
}

type graph struct {
	nodes    map[string]*cgNode
	declared map[*Package][]*cgNode
	methods  map[string][]methodDecl // declared methods by name
	ifaces   []ifaceCall
	dyns     []dynCall
	escaped  []*cgNode // nodes with valueSigs, in first-escape order
	edgeN    int
}

// Program is the whole-program view RunAll and cmd/iolint analyze: the
// loaded packages plus the call graph and sim-reachability over them.
type Program struct {
	Pkgs []*Package
	g    *graph
}

// NewProgram builds the call graph over pkgs and computes which
// functions are reachable from the simulation entry points.
func NewProgram(pkgs []*Package) *Program {
	g := &graph{
		nodes:    make(map[string]*cgNode),
		declared: make(map[*Package][]*cgNode),
		methods:  make(map[string][]methodDecl),
	}
	for _, p := range pkgs {
		g.register(p)
	}
	for _, p := range pkgs {
		for _, n := range g.declared[p] {
			g.scan(n)
		}
	}
	g.resolve()
	g.computeReach(pkgs)
	return &Program{Pkgs: pkgs, g: g}
}

// Stats reports the graph size for the timing line.
func (prog *Program) Stats() (nodes, edges int) {
	return len(prog.g.nodes), prog.g.edgeN
}

// reachableDeclared returns p's declared functions that are reachable
// from a simulation entry point and not in an exempt package, in
// declaration order.
func (prog *Program) reachableDeclared(p *Package) []*cgNode {
	var out []*cgNode
	for _, n := range prog.g.declared[p] {
		if n.reachable && !isExemptPackage(n.pkg) {
			out = append(out, n)
		}
	}
	return out
}

// exemptPackages are outside the taint rules' scope by design: they run
// on real machines around the simulation, not inside it. The runner,
// gateway, and fabric legitimately use wall clocks, goroutines, and
// channels (worker pools, TCP ingest, lease deadlines); commands are
// process entry points. None of them may influence a point's result —
// the cachekey rule still polices everything they feed into a point's
// identity.
func isExemptPackage(path string) bool {
	if path == "" {
		return false
	}
	for _, rel := range []string{"internal/runner", "internal/gateway", "internal/fabric"} {
		if pathIs(path, rel) {
			return true
		}
	}
	return pathIs(path, "cmd") || strings.Contains(path, "/cmd/")
}

// register creates nodes for p's declared functions, methods, and
// package-level variable initializers.
func (g *graph) register(p *Package) {
	var initBodies []ast.Node
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, _ := p.Info.Defs[d.Name].(*types.Func)
				if obj == nil {
					continue
				}
				if d.Recv == nil && d.Name.Name == "init" {
					if d.Body != nil {
						initBodies = append(initBodies, d.Body)
					}
					continue
				}
				n := g.ensure(obj)
				n.p = p
				n.pkg = p.Path
				if d.Body != nil {
					n.bodies = append(n.bodies, d.Body)
				}
				g.declared[p] = append(g.declared[p], n)
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					g.methods[obj.Name()] = append(g.methods[obj.Name()], methodDecl{recv: sig.Recv().Type(), node: n})
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						initBodies = append(initBodies, v)
					}
				}
			}
		}
	}
	if len(initBodies) > 0 {
		n := g.ensureInit(p)
		n.bodies = append(n.bodies, initBodies...)
		g.declared[p] = append(g.declared[p], n)
	}
}

// ensure returns (creating if needed) the node for fn.
func (g *graph) ensure(fn *types.Func) *cgNode {
	sym := fn.FullName()
	if n, ok := g.nodes[sym]; ok {
		return n
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	n := &cgNode{sym: sym, disp: dispName(fn), pkg: pkg, fn: fn}
	g.nodes[sym] = n
	return n
}

func (g *graph) ensureInit(p *Package) *cgNode {
	sym := p.Path + ".init"
	if n, ok := g.nodes[sym]; ok {
		return n
	}
	n := &cgNode{sym: sym, disp: pkgBase(p.Path) + ".init", pkg: p.Path, p: p}
	g.nodes[sym] = n
	return n
}

// dispName renders the short human form of a function: the package's
// last path element plus "(*Recv)." for methods.
func dispName(fn *types.Func) string {
	base := ""
	if fn.Pkg() != nil {
		base = pkgBase(fn.Pkg().Path()) + "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		star := ""
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
			star = "*"
		}
		name := "?"
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return base + "(" + star + name + ")." + fn.Name()
	}
	return base + fn.Name()
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// scan walks one node's bodies, collecting static edges, interface and
// dynamic call sites, and escaping function values.
func (g *graph) scan(n *cgNode) {
	p := n.p
	for _, body := range n.bodies {
		// Pre-pass: the expressions occupying call position, so a
		// function named in call position is not also recorded as an
		// escaping value.
		funExpr := make(map[ast.Expr]bool)
		ast.Inspect(body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				funExpr[unparen(call.Fun)] = true
			}
			return true
		})
		skipSel := make(map[*ast.Ident]bool)
		ast.Inspect(body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				g.scanCall(n, x)
			case *ast.SelectorExpr:
				skipSel[x.Sel] = true
				if funExpr[x] {
					return true
				}
				if fn, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
					g.escape(fn, p.Info.TypeOf(x))
				}
			case *ast.Ident:
				if funExpr[ast.Expr(x)] || skipSel[x] {
					return true
				}
				if fn, ok := p.Info.Uses[x].(*types.Func); ok {
					g.escape(fn, p.Info.TypeOf(x))
				}
			}
			return true
		})
	}
}

// scanCall classifies one call expression into a static edge, an
// interface dispatch site, or a dynamic (function-value) call.
func (g *graph) scanCall(n *cgNode, call *ast.CallExpr) {
	p := n.p
	fun := unparen(call.Fun)
	pos := p.Fset.Position(fun.Pos())
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[f].(type) {
		case *types.Func:
			g.addEdge(n, g.ensure(obj), pos, call)
		case *types.Var:
			g.addDyn(n, p.Info.TypeOf(f), pos)
		}
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[f]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				m, _ := sel.Obj().(*types.Func)
				if m == nil {
					return
				}
				if types.IsInterface(sel.Recv()) {
					if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
						g.ifaces = append(g.ifaces, ifaceCall{from: n, iface: iface, name: m.Name(), pos: pos})
					}
					return
				}
				g.addEdge(n, g.ensure(m), pos, call)
			case types.MethodExpr:
				if m, ok := sel.Obj().(*types.Func); ok {
					g.addEdge(n, g.ensure(m), pos, call)
				}
			case types.FieldVal:
				g.addDyn(n, sel.Type(), pos)
			}
			return
		}
		// Qualified identifier: pkg.Fn, pkg.Var, or a type conversion.
		switch obj := p.Info.Uses[f.Sel].(type) {
		case *types.Func:
			g.addEdge(n, g.ensure(obj), pos, call)
		case *types.Var:
			g.addDyn(n, p.Info.TypeOf(f), pos)
		}
	case *ast.FuncLit:
		// Immediately invoked; its body is already attributed to n.
	default:
		// A call of a computed expression (call result, index, type
		// assertion): dynamic if it is function-typed.
		if t := p.Info.TypeOf(fun); t != nil {
			if tv, ok := p.Info.Types[fun]; !ok || !tv.IsType() {
				g.addDyn(n, t, pos)
			}
		}
	}
}

func (g *graph) addEdge(from, to *cgNode, pos token.Position, call *ast.CallExpr) {
	from.edges = append(from.edges, cgEdge{to: to, pos: pos, call: call})
	g.edgeN++
}

func (g *graph) addDyn(from *cgNode, t types.Type, pos token.Position) {
	if t == nil {
		return
	}
	if sig, ok := t.Underlying().(*types.Signature); ok {
		g.dyns = append(g.dyns, dynCall{from: from, sig: sig, pos: pos})
	}
}

// escape records that fn is taken as a value with the given static type.
func (g *graph) escape(fn *types.Func, t types.Type) {
	n := g.ensure(fn)
	sig, _ := t.(*types.Signature)
	if sig == nil {
		if t != nil {
			sig, _ = t.Underlying().(*types.Signature)
		}
		if sig == nil {
			sig, _ = fn.Type().(*types.Signature)
		}
	}
	if sig == nil {
		return
	}
	for _, s := range n.valueSigs {
		if types.Identical(s, sig) {
			return
		}
	}
	if len(n.valueSigs) == 0 {
		g.escaped = append(g.escaped, n)
	}
	n.valueSigs = append(n.valueSigs, sig)
}

// resolve turns the recorded interface and dynamic call sites into
// conservative edges.
func (g *graph) resolve() {
	for name := range g.methods {
		ms := g.methods[name]
		sort.Slice(ms, func(i, j int) bool { return ms[i].node.sym < ms[j].node.sym })
	}
	for _, ic := range g.ifaces {
		seen := make(map[*cgNode]bool)
		for _, m := range g.methods[ic.name] {
			if seen[m.node] {
				continue
			}
			if types.Implements(m.recv, ic.iface) || implementsPtr(m.recv, ic.iface) {
				seen[m.node] = true
				g.addEdge(ic.from, m.node, ic.pos, nil)
			}
		}
	}
	for _, dc := range g.dyns {
		seen := make(map[*cgNode]bool)
		for _, n := range g.escaped {
			if seen[n] {
				continue
			}
			for _, s := range n.valueSigs {
				if types.Identical(s, dc.sig) {
					seen[n] = true
					g.addEdge(dc.from, n, dc.pos, nil)
					break
				}
			}
		}
	}
}

// implementsPtr reports whether *T implements iface for a non-pointer
// receiver type T (the pointer method set includes the value methods).
func implementsPtr(recv types.Type, iface *types.Interface) bool {
	if _, ok := recv.(*types.Pointer); ok {
		return false
	}
	return types.Implements(types.NewPointer(recv), iface)
}

// computeReach marks every node reachable from a simulation entry point,
// stopping at the exempt-package boundary. Entries are every function
// declared in a simulation package (which subsumes the Fig*Experiment
// point functions, des.Engine callbacks, and everything a runner.Point
// config funnels into the kernel) plus the init node of every package a
// simulation package transitively imports.
func (g *graph) computeReach(pkgs []*Package) {
	closure := simImportClosure(pkgs)
	var entries []*cgNode
	for _, p := range pkgs {
		for _, n := range g.declared[p] {
			if isSimPackage(n.pkg) || (n.fn == nil && closure[n.pkg]) {
				n.entry = true
				entries = append(entries, n)
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].sym < entries[j].sym })
	queue := make([]*cgNode, 0, len(entries))
	for _, n := range entries {
		if !n.reachable {
			n.reachable = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			t := e.to
			if t.reachable || t.p == nil || isExemptPackage(t.pkg) {
				continue
			}
			t.reachable = true
			t.via = n
			queue = append(queue, t)
		}
	}
}

// simImportClosure is the set of package paths transitively imported by
// the loaded simulation packages (their inits run before any point).
func simImportClosure(pkgs []*Package) map[string]bool {
	closure := make(map[string]bool)
	var visit func(tp *types.Package)
	visit = func(tp *types.Package) {
		if closure[tp.Path()] {
			return
		}
		closure[tp.Path()] = true
		for _, imp := range tp.Imports() {
			visit(imp)
		}
	}
	for _, p := range pkgs {
		if isSimPackage(p.Path) {
			visit(p.Pkg)
		}
	}
	return closure
}

// chainTo renders the call chain from an entry point to n, optionally
// ending at a named sink ("pfs.recompute → core.stamp → time.Now").
func (n *cgNode) chainTo(sink string) []string {
	var rev []string
	for m := n; m != nil; m = m.via {
		rev = append(rev, m.disp)
	}
	chain := make([]string, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		chain = append(chain, rev[i])
	}
	if sink != "" {
		chain = append(chain, sink)
	}
	return chain
}

func renderChain(chain []string) string {
	return strings.Join(chain, " → ")
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// WhyResult explains one function's standing in the reachability
// analysis, for iolint -why.
type WhyResult struct {
	Symbol    string
	Display   string
	Package   string
	Entry     bool
	Reachable bool
	Exempt    bool
	Chain     []string // entry → ... → the function, when reachable
}

// Why looks up every function whose symbol, display form, or symbol
// suffix matches query and explains whether (and via which chain) it is
// sim-reachable.
func (prog *Program) Why(query string) []WhyResult {
	var out []WhyResult
	for _, n := range prog.g.nodes {
		if n.sym != query && n.disp != query && !strings.HasSuffix(n.sym, query) {
			continue
		}
		r := WhyResult{
			Symbol:    n.sym,
			Display:   n.disp,
			Package:   n.pkg,
			Entry:     n.entry,
			Reachable: n.reachable,
			Exempt:    isExemptPackage(n.pkg),
		}
		if n.reachable {
			r.Chain = n.chainTo("")
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Symbol < out[j].Symbol })
	return out
}
