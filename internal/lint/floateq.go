package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floateqPackages hold the interval arithmetic behind Eq. 3 and the
// sweep's online/offline equality: exact ==/!= between floats there is
// almost always a latent divergence between the two aggregation paths.
var floateqPackages = []string{"internal/region", "internal/metrics", "internal/ftio"}

var floateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= between floating-point expressions in " +
		"internal/region, internal/metrics, internal/ftio; use epsilon or " +
		"ordering comparisons (or integer des.Time arithmetic) instead",
	Run: func(prog *Program, p *Package) []Diagnostic {
		applies := false
		for _, rel := range floateqPackages {
			if pathIs(p.Path, rel) {
				applies = true
				break
			}
		}
		if !applies {
			return nil
		}
		var diags []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(be.OpPos),
					Rule: "floateq",
					Message: "floating-point " + be.Op.String() +
						" comparison; use an epsilon or ordering comparison so interval arithmetic stays stable",
				})
				return true
			})
		}
		return diags
	},
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
