// Package lint is iolint's engine: a stdlib-only static-analysis pass
// that enforces the invariants the simulator's reproducibility rests on.
//
// The paper's metrics (B, B_L, T — Eq. 3) are reproducible only because
// every experiment point is a pure function of its configuration. Two
// subsystems silently depend on that purity: the runner's SHA-256 result
// cache (a point's canonical-JSON config *is* its identity) and the
// gateway's online-vs-offline sweep equality (the same phases must
// aggregate to the same series no matter when they are observed). Nothing
// used to check that simulation code never reads the wall clock, never
// draws from unseeded global randomness, and never places unhashable
// fields into cache-keyed configs; iolint encodes those hazards as
// machine-checked rules:
//
//   - walltime   — time.Now/Sleep/Since/After (and friends) are forbidden
//     in the simulation packages; all time must flow from des.Time.
//   - globalrand — top-level math/rand(/v2) draws and unseeded rand.New
//     are forbidden in the simulation packages; randomness must come from
//     an explicitly seeded *rand.Rand threaded through config.
//   - cachekey   — structs reachable from a runner.Point config, or from
//     a fabric.ManifestPoint config about to travel the wire, must mark
//     func/chan/unexported-interface fields `json:"-"` so json.Marshal
//     based SHA-256 cache keys stay total and stable.
//   - floateq    — ==/!= between floating-point expressions is forbidden
//     in internal/region, internal/metrics, and internal/ftio; interval
//     arithmetic there must use epsilon or ordering comparisons.
//
// Analyzers inspect non-test files only; tests may freely use wall time
// and ad-hoc randomness. A finding can be suppressed with a comment on
// the offending line or the line directly above it:
//
//	//iolint:ignore <rule> <reason>
//
// The reason is mandatory: a suppression without one does not suppress
// and is itself reported. The whole package uses only go/ast, go/parser,
// go/token, and go/types with the source importer — no x/tools — so the
// module stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Diagnostic is one finding, rendered as "file:line:col: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, typechecked package handed to analyzers.
type Package struct {
	// Path is the package's import path (e.g. "iobehind/internal/des");
	// rule applicability is decided on it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns every rule in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{walltimeAnalyzer, globalrandAnalyzer, cachekeyAnalyzer, floateqAnalyzer}
}

// simPackages are the packages whose behaviour must be a pure function of
// config and seed: everything that executes inside (or enumerates) a
// virtual-time simulation.
//
// internal/fabric is deliberately absent: the distributed-sweep fabric
// legitimately reads the wall clock for lease deadlines, reconnect
// backoff, and worker liveness — properties of real machines, not of the
// simulated cluster — and none of them can influence a point's result.
// Everything a fabric manifest can carry still falls under the cachekey
// rule (see fabric.ManifestPoint in cachekey.go), which is what keeps
// remote execution byte-identical to local.
var simPackages = []string{
	"des", "sched", "cluster", "adio", "pfs", "mpi", "mpiio",
	"region", "metrics", "ftio", "workloads", "experiments", "faults",
	"trace",
}

// isSimPackage reports whether path is one of the simulation packages
// (matched as an internal/<name> suffix so the module name is irrelevant).
func isSimPackage(path string) bool {
	for _, name := range simPackages {
		if pathIs(path, "internal/"+name) {
			return true
		}
	}
	return false
}

// pathIs reports whether the import path is rel or a subpackage of it,
// regardless of the module prefix.
func pathIs(path, rel string) bool {
	if path == rel || strings.HasSuffix(path, "/"+rel) {
		return true
	}
	i := strings.Index(path, "/"+rel+"/")
	return i >= 0 || strings.HasPrefix(path, rel+"/")
}

// RunAll applies every analyzer to every package, drops suppressed
// findings, reports malformed suppression comments, deduplicates, and
// returns the result sorted by position then rule.
func RunAll(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	sup := newSuppressions()
	for _, p := range pkgs {
		for _, a := range Analyzers() {
			for _, d := range a.Run(p) {
				if !sup.covers(d) {
					diags = append(diags, d)
				}
			}
		}
		diags = append(diags, sup.malformed(p)...)
	}
	return dedupeSort(diags)
}

func dedupeSort(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	out := diags[:0]
	var prev Diagnostic
	for i, d := range diags {
		if i > 0 && d.Pos.Filename == prev.Pos.Filename && d.Pos.Line == prev.Pos.Line &&
			d.Pos.Column == prev.Pos.Column && d.Rule == prev.Rule {
			continue
		}
		out = append(out, d)
		prev = d
	}
	return out
}

// ignoreMarker introduces a suppression comment. Built by concatenation
// so this very file does not read as a (malformed) suppression.
const ignoreMarker = "//iolint:" + "ignore"

// suppressions resolves //iolint:ignore comments. It reads source files
// directly (cached per file) rather than relying on loaded ASTs: cachekey
// diagnostics can land in packages reached only through the type graph,
// whose comments were never parsed.
type suppressions struct {
	files map[string]map[int][]string // filename -> line -> suppressed rules
}

func newSuppressions() *suppressions {
	return &suppressions{files: make(map[string]map[int][]string)}
}

// covers reports whether d is suppressed by a well-formed ignore comment
// on its own line or the line directly above.
func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.load(d.Pos.Filename)
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == d.Rule {
				return true
			}
		}
	}
	return false
}

// malformed reports ignore comments in p's files that lack a rule or a
// reason — they suppress nothing, and leaving them silent would let a
// suppression rot into a no-op unnoticed.
func (s *suppressions) malformed(p *Package) []Diagnostic {
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		for i, text := range strings.Split(string(data), "\n") {
			idx := strings.Index(text, ignoreMarker)
			if idx < 0 {
				continue
			}
			fields := strings.Fields(text[idx+len(ignoreMarker):])
			if len(fields) >= 2 {
				continue // rule + reason: well-formed
			}
			diags = append(diags, Diagnostic{
				Pos:     token.Position{Filename: name, Line: i + 1, Column: idx + 1},
				Rule:    "ignore",
				Message: "malformed suppression: want //iolint:ignore <rule> <reason>",
			})
		}
	}
	return diags
}

// load parses one file's suppression lines on first use.
func (s *suppressions) load(filename string) map[int][]string {
	if m, ok := s.files[filename]; ok {
		return m
	}
	m := make(map[int][]string)
	s.files[filename] = m
	data, err := os.ReadFile(filename)
	if err != nil {
		return m
	}
	for i, text := range strings.Split(string(data), "\n") {
		idx := strings.Index(text, ignoreMarker)
		if idx < 0 {
			continue
		}
		fields := strings.Fields(text[idx+len(ignoreMarker):])
		if len(fields) < 2 {
			continue // no rule or no reason: not a valid suppression
		}
		m[i+1] = append(m[i+1], fields[0])
	}
	return m
}
