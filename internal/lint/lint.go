// Package lint is iolint's engine: a stdlib-only whole-program static
// analysis that enforces the invariants the simulator's reproducibility
// rests on.
//
// The paper's metrics (B, B_L, T — Eq. 3) are reproducible only because
// every experiment point is a pure function of its configuration. Three
// subsystems silently depend on that purity: the runner's SHA-256 result
// cache (a point's canonical-JSON config *is* its identity), the
// gateway's online-vs-offline sweep equality, and the distributed fabric
// (which ships cached results between machines keyed by that identity).
// iolint encodes the hazards as machine-checked rules over a module-wide
// call graph (see callgraph.go): functions declared in the simulation
// packages are *entry points*, everything they can call — through any
// number of packages, interfaces, or function values — is
// *sim-reachable*, and the taint rules police sim-reachable code
// wherever it is declared:
//
//   - walltime   — no path from an entry point to time.Now/Sleep/Since/
//     After/...; all time must flow from des.Time. Findings carry the
//     full call chain (pfs.recompute → core.stamp → time.Now).
//   - globalrand — no path to global math/rand(/v2) draws, unseeded
//     rand.New, or crypto/rand; randomness must come from an explicitly
//     seeded *rand.Rand threaded through config.
//   - maporder   — no ranging over a map in sim-reachable code where the
//     loop body appends to a slice, schedules events, writes output, or
//     accumulates floats: map order is randomized per run.
//   - goroutine  — no go statements or channel operations in
//     sim-reachable code; the kernel is single-threaded by design and
//     concurrency belongs to the exempt packages.
//   - errdrop    — no discarded error from the fuzz-tested decoders
//     (tmio.DecodeStreamRecord, trace.DecodeRecord, fabric.DecodeMsg) or
//     from Close/Flush on files and buffered writers in the fabric and
//     runner packages, where a swallowed error breaks the resume
//     guarantee.
//   - cachekey   — structs reachable from a runner.Point config, or from
//     a fabric.ManifestPoint config about to travel the wire, must mark
//     func/chan/unexported-interface fields `json:"-"` so json.Marshal
//     based SHA-256 cache keys stay total and stable.
//   - floateq    — ==/!= between floating-point expressions is forbidden
//     in internal/region, internal/metrics, and internal/ftio; interval
//     arithmetic there must use epsilon or ordering comparisons.
//
// The taint rules stop at an explicit exemption boundary — internal/
// runner, internal/gateway, internal/fabric, and cmd/ — the layers that
// run on real machines around the simulation (worker pools, TCP ingest,
// lease deadlines) and can never influence a point's result.
//
// Analyzers inspect non-test files only; tests may freely use wall time
// and ad-hoc randomness. A finding can be suppressed with a comment on
// the offending line, the line directly above it, or the line directly
// above the statement containing it:
//
//	//iolint:ignore <rule> <reason>
//
// The reason is mandatory: a suppression without one does not suppress
// and is itself reported. The whole package uses only go/ast, go/parser,
// go/token, and go/types with the source importer — no x/tools — so the
// module stays dependency-free.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, rendered as "file:line:col: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Chain, for reachability findings, is the call chain from a
	// simulation entry point to the sink ("pfs.recompute", "core.stamp",
	// "time.Now"). The text rendering folds it into Message; the JSON
	// rendering carries it as a structured field.
	Chain []string
}

// String renders the diagnostic in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// jsonDiagnostic fixes the JSON field set; names are part of iolint's
// output contract and pinned by a golden test.
type jsonDiagnostic struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Rule    string   `json:"rule"`
	Message string   `json:"message"`
	Chain   []string `json:"chain,omitempty"`
}

// FormatJSON renders diagnostics as an indented JSON array with stable
// field names, preserving the input (sorted) order. An empty set renders
// as [] rather than null.
func FormatJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
			Chain:   d.Chain,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// Package is one loaded, typechecked package handed to analyzers.
type Package struct {
	// Path is the package's import path (e.g. "iobehind/internal/des");
	// entry-point and exemption decisions are made on it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one named rule. Run receives the whole program (for the
// call graph) and the single package whose declarations it must report
// on, so RunAll visits each finding exactly once.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, p *Package) []Diagnostic
}

// Analyzers returns every rule in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		walltimeAnalyzer, globalrandAnalyzer, maporderAnalyzer,
		goroutineAnalyzer, errdropAnalyzer, cachekeyAnalyzer, floateqAnalyzer,
	}
}

// simPackages are the packages whose declared functions are the
// reachability entry points: everything that executes inside (or
// enumerates) a virtual-time simulation. Unlike the pre-call-graph
// engine, this list no longer bounds where rules fire — taint follows
// calls into any non-exempt package — it only defines where simulation
// code *starts*.
var simPackages = []string{
	"des", "sched", "cluster", "adio", "pfs", "mpi", "mpiio",
	"region", "metrics", "ftio", "workloads", "experiments", "faults",
	"trace",
}

// isSimPackage reports whether path is one of the simulation packages
// (matched as an internal/<name> suffix so the module name is irrelevant).
func isSimPackage(path string) bool {
	for _, name := range simPackages {
		if pathIs(path, "internal/"+name) {
			return true
		}
	}
	return false
}

// pathIs reports whether the import path is rel or a subpackage of it,
// regardless of the module prefix.
func pathIs(path, rel string) bool {
	if path == rel || strings.HasSuffix(path, "/"+rel) {
		return true
	}
	i := strings.Index(path, "/"+rel+"/")
	return i >= 0 || strings.HasPrefix(path, rel+"/")
}

// RunAll builds the whole-program view over pkgs, applies every
// analyzer, drops suppressed findings, reports malformed suppression
// comments, deduplicates, and returns the result sorted by position then
// rule.
func RunAll(pkgs []*Package) []Diagnostic {
	return NewProgram(pkgs).Diagnostics()
}

// Diagnostics applies every analyzer to every package of the program.
func (prog *Program) Diagnostics() []Diagnostic {
	sup := newSuppressions()
	for _, p := range prog.Pkgs {
		sup.registerSpans(p)
	}
	var diags []Diagnostic
	for _, p := range prog.Pkgs {
		for _, a := range Analyzers() {
			for _, d := range a.Run(prog, p) {
				if !sup.covers(d) {
					diags = append(diags, d)
				}
			}
		}
		diags = append(diags, sup.malformed(p)...)
	}
	return dedupeSort(diags)
}

func dedupeSort(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	out := diags[:0]
	var prev Diagnostic
	for i, d := range diags {
		if i > 0 && d.Pos.Filename == prev.Pos.Filename && d.Pos.Line == prev.Pos.Line &&
			d.Pos.Column == prev.Pos.Column && d.Rule == prev.Rule {
			continue
		}
		out = append(out, d)
		prev = d
	}
	return out
}
