package lint_test

import (
	"strings"
	"testing"

	"iobehind/internal/lint"
)

// FuzzParseIgnore pins the suppression parser's three contracts on
// arbitrary input: it never panics, every marker-bearing line is
// classified (well-formed or malformed, so a typo'd suppression always
// surfaces as a "malformed suppression" finding rather than a silent
// no-op), and a well-formed parse round-trips through re-rendering.
func FuzzParseIgnore(f *testing.F) {
	marker := "//iolint:" + "ignore"
	f.Add("")
	f.Add("x := 1 // plain comment")
	f.Add(marker)
	f.Add(marker + " walltime")
	f.Add(marker + " walltime lease deadlines are wall-clock by definition")
	f.Add("\t\t" + marker + "  maporder \t keys sorted below ")
	f.Add(marker + " " + marker + " nested markers")
	f.Add(strings.Repeat(marker+" ", 10))
	f.Add("//iolint:ignoreX not-the-marker") // marker must still be detected as a prefix
	f.Add("日本語 " + marker + " rule 理由 with unicode")
	f.Fuzz(func(t *testing.T, line string) {
		rule, reason, present, ok, col := lint.ParseIgnore(line)
		if !present {
			// Absent marker: nothing else may be reported.
			if ok || rule != "" || reason != "" || col != 0 {
				t.Fatalf("ParseIgnore(%q) = (%q, %q, %v, %v, %d): non-zero result without a marker",
					line, rule, reason, present, ok, col)
			}
			return
		}
		if col < 1 || col > len(line) {
			t.Fatalf("ParseIgnore(%q): marker column %d out of range", line, col)
		}
		if !ok {
			// Malformed: classified, never silently dropped. rule/reason
			// must be empty so nothing downstream acts on half a parse.
			if rule != "" || reason != "" {
				t.Fatalf("ParseIgnore(%q): malformed parse leaked rule=%q reason=%q", line, rule, reason)
			}
			return
		}
		if rule == "" || reason == "" {
			t.Fatalf("ParseIgnore(%q): ok with empty rule=%q or reason=%q", line, rule, reason)
		}
		if strings.ContainsAny(rule, " \t") {
			t.Fatalf("ParseIgnore(%q): rule %q contains whitespace", line, rule)
		}
		// Round-trip: re-rendering the parse must parse identically.
		round := marker + " " + rule + " " + reason
		r2, s2, p2, ok2, _ := lint.ParseIgnore(round)
		if !p2 || !ok2 || r2 != rule || s2 != reason {
			t.Fatalf("round-trip of %q: ParseIgnore(%q) = (%q, %q, %v, %v)",
				line, round, r2, s2, p2, ok2)
		}
	})
}
