package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// maporderAnalyzer catches the bug class PR 5 fixed by hand in
// internal/pfs: ranging over a Go map in simulation-reachable code and
// letting the (deliberately randomized) iteration order leak into the
// result. A map range is fine when the body is order-independent
// (counting, set membership, per-key writes); it is a determinism bug
// the moment the body appends to a slice, schedules events, writes
// output, or accumulates floating-point values — each of those makes the
// outcome a function of iteration order, so two runs of the same config
// diverge and the SHA-256 cache serves a result no rerun can reproduce.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over a map in sim-reachable code where the loop " +
		"body appends to a slice, schedules events, writes output, or " +
		"accumulates floats; iterate a sorted or first-appearance order instead",
	Run: func(prog *Program, p *Package) []Diagnostic {
		var diags []Diagnostic
		for _, n := range prog.reachableDeclared(p) {
			for _, body := range n.bodies {
				ast.Inspect(body, func(x ast.Node) bool {
					rs, ok := x.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := p.Info.TypeOf(rs.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					effects := orderEffects(p, rs.Body)
					if len(effects) == 0 {
						return true
					}
					chain := n.chainTo("")
					diags = append(diags, Diagnostic{
						Pos:   p.Fset.Position(rs.Pos()),
						Rule:  "maporder",
						Chain: chain,
						Message: "range over " + types.TypeString(t, shortQualifier) +
							" " + strings.Join(effects, " and ") +
							"; map iteration order is randomized per run — iterate a sorted" +
							" or first-appearance order instead (" + renderChain(chain) + ")",
					})
					return true
				})
			}
		}
		return diags
	},
}

// shortQualifier renders package-qualified type names with the package's
// base name, matching the chain rendering.
func shortQualifier(p *types.Package) string { return p.Name() }

// scheduleNames are method names that enqueue work on the simulation
// kernel; calling one per map-range iteration orders the event heap by
// map order.
var scheduleNames = map[string]bool{"Schedule": true, "After": true, "Spawn": true}

// orderEffects classifies what an iteration-order-dependent loop body
// does, in stable order. Empty means the body looks order-independent.
func orderEffects(p *Package, body ast.Node) []string {
	found := map[string]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			switch fun := unparen(x.Fun).(type) {
			case *ast.Ident:
				if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
					found["appends to a slice"] = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
					sig, _ := fn.Type().(*types.Signature)
					isMethod := sig != nil && sig.Recv() != nil
					if isMethod && scheduleNames[name] {
						found["schedules events"] = true
					}
					if isMethod && (name == "Write" || name == "WriteString" ||
						name == "WriteByte" || name == "WriteRune" ||
						name == "Printf" || name == "Print") {
						found["writes output"] = true
					}
					if !isMethod && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
						(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
						found["writes output"] = true
					}
				}
			}
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range x.Lhs {
					if isFloat(p.Info.TypeOf(lhs)) {
						found["accumulates floats"] = true
					}
				}
			}
		}
		return true
	})
	effects := make([]string, 0, len(found))
	for e := range found {
		effects = append(effects, e)
	}
	sort.Strings(effects)
	return effects
}
