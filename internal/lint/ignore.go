package lint

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// ignoreMarker introduces a suppression comment. Built by concatenation
// so this very file does not read as a (malformed) suppression.
const ignoreMarker = "//iolint:" + "ignore"

// ParseIgnore scans one source line for a suppression marker and parses
// it. present reports that the marker occurs at all; ok reports that the
// suppression is well-formed (a rule name and a non-empty reason —
// anything less suppresses nothing and is reported as malformed). col is
// the 1-based column of the marker, 0 when absent. The format is
//
//	//iolint:ignore <rule> <reason...>
//
// and the parser is deliberately line-oriented and total: any input is
// classified, nothing panics, and malformed inputs always surface as
// "malformed suppression" findings (FuzzParseIgnore pins all three
// properties).
func ParseIgnore(line string) (rule, reason string, present, ok bool, col int) {
	idx := strings.Index(line, ignoreMarker)
	if idx < 0 {
		return "", "", false, false, 0
	}
	fields := strings.Fields(line[idx+len(ignoreMarker):])
	if len(fields) < 2 {
		return "", "", true, false, idx + 1
	}
	return fields[0], strings.Join(fields[1:], " "), true, true, idx + 1
}

// suppressions resolves //iolint:ignore comments. Line tables are read
// from source text (cached per file) rather than only from loaded ASTs,
// because cachekey diagnostics can land in packages reached solely
// through the type graph, whose comments were never parsed. For files
// that *are* loaded, registerSpans additionally records multi-line
// statement extents so a suppression above a statement covers every
// line the statement spans.
type suppressions struct {
	files map[string]map[int][]string // filename -> line -> suppressed rules
	spans map[string]map[int]int      // filename -> start line -> max end line
}

func newSuppressions() *suppressions {
	return &suppressions{
		files: make(map[string]map[int][]string),
		spans: make(map[string]map[int]int),
	}
}

// registerSpans records, for each of p's files, the line extent of every
// statement, declaration, and spec, keyed by its starting line. covers
// uses them to widen a suppression to the whole statement beneath it.
func (s *suppressions) registerSpans(p *Package) {
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if _, ok := s.spans[name]; ok {
			continue
		}
		m := make(map[int]int)
		s.spans[name] = m
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl, ast.Spec:
				start := p.Fset.Position(n.Pos()).Line
				end := p.Fset.Position(n.End()).Line
				if end > m[start] {
					m[start] = end
				}
			}
			return true
		})
	}
}

// covers reports whether d is suppressed by a well-formed ignore comment
// for its rule on its own line, the line directly above, or a line whose
// following statement's span contains d's line.
func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.load(d.Pos.Filename)
	spans := s.spans[d.Pos.Filename]
	match := func(line int) bool {
		for _, rule := range lines[line] {
			if rule == d.Rule {
				return true
			}
		}
		return false
	}
	if match(d.Pos.Line) || match(d.Pos.Line-1) {
		return true
	}
	// A suppression on line L covers the whole statement starting on L
	// (trailing comment on the first line) or on L+1 (comment above a
	// multi-line statement).
	for line := range lines {
		if !match(line) {
			continue
		}
		for _, start := range []int{line, line + 1} {
			if end, ok := spans[start]; ok && start <= d.Pos.Line && d.Pos.Line <= end {
				return true
			}
		}
	}
	return false
}

// malformed reports ignore comments in p's files that lack a rule or a
// reason — they suppress nothing, and leaving them silent would let a
// suppression rot into a no-op unnoticed.
func (s *suppressions) malformed(p *Package) []Diagnostic {
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		for i, text := range strings.Split(string(data), "\n") {
			_, _, present, ok, col := ParseIgnore(text)
			if !present || ok {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:     token.Position{Filename: name, Line: i + 1, Column: col},
				Rule:    "ignore",
				Message: "malformed suppression: want " + ignoreMarker + " <rule> <reason>",
			})
		}
	}
	return diags
}

// load parses one file's suppression lines on first use.
func (s *suppressions) load(filename string) map[int][]string {
	if m, ok := s.files[filename]; ok {
		return m
	}
	m := make(map[int][]string)
	s.files[filename] = m
	data, err := os.ReadFile(filename)
	if err != nil {
		return m
	}
	for i, text := range strings.Split(string(data), "\n") {
		rule, _, _, ok, _ := ParseIgnore(text)
		if !ok {
			continue
		}
		m[i+1] = append(m[i+1], rule)
	}
	return m
}
