package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// cachekeyAnalyzer enforces the runner cache's key contract. A
// runner.Point's Config is canonically JSON-encoded and SHA-256-hashed
// into the disk-cache key, so every struct reachable from a Config value
// must marshal totally and stably:
//
//   - func- and chan-typed content in an exported field makes
//     json.Marshal fail outright (the cache key ceases to exist);
//   - the same content in an unexported field is silently skipped, so a
//     piece of behaviour-changing wiring stops participating in the
//     point's identity and stale cache entries get served;
//   - unexported-interface fields marshal by dynamic value, so the key
//     depends on runtime wiring rather than configuration.
//
// All three must be excluded explicitly with a `json:"-"` tag (stating
// "this is runtime wiring, not identity"), as cluster.Config.Forecasts
// does. Fields already tagged `json:"-"` are not descended into.
//
// The same contract guards fabric.ManifestPoint: its Config travels the
// wire as the point's cache-key identity, so a config that cannot
// marshal totally would silently change identity between the submitter
// and a remote worker. Both composite literals root the walk.
var cachekeyAnalyzer = &Analyzer{
	Name: "cachekey",
	Doc: "structs reachable from a runner.Point or fabric.ManifestPoint " +
		"config must mark func/chan/unexported-interface fields json:\"-\" " +
		"so JSON-based SHA-256 cache keys stay total and stable",
	Run: func(prog *Program, p *Package) []Diagnostic {
		w := &cachekeyWalker{p: p, visited: make(map[types.Type]bool), reported: make(map[*types.Var]bool)}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					if !isConfigCarrier(p.Info.Types[n].Type) {
						return true
					}
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Config" {
							w.root(kv.Value)
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						sel, ok := lhs.(*ast.SelectorExpr)
						if !ok || sel.Sel.Name != "Config" || i >= len(n.Rhs) {
							continue
						}
						if seln := p.Info.Selections[sel]; seln != nil && isConfigCarrier(seln.Recv()) {
							w.root(n.Rhs[i])
						}
					}
				}
				return true
			})
		}
		return w.diags
	},
}

// isConfigCarrier reports whether t is (a pointer to) a struct whose
// Config field is a cache-key root: the runner package's Point or the
// fabric package's ManifestPoint.
func isConfigCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Name() {
	case "Point":
		return pathIs(obj.Pkg().Path(), "internal/runner")
	case "ManifestPoint":
		return pathIs(obj.Pkg().Path(), "internal/fabric")
	}
	return false
}

type cachekeyWalker struct {
	p        *Package
	visited  map[types.Type]bool
	reported map[*types.Var]bool
	diags    []Diagnostic
}

// root starts a walk at the static type of a Config expression. An
// expression that is already statically interface-typed (e.g. forwarding
// an `any`) carries no type information to check.
func (w *cachekeyWalker) root(expr ast.Expr) {
	if tv, ok := w.p.Info.Types[expr]; ok && tv.Type != nil {
		w.walk(tv.Type)
	}
}

// walk descends the type graph rooted at t, checking every struct field
// it can reach through pointers, slices, arrays, maps, and named types.
func (w *cachekeyWalker) walk(t types.Type) {
	if t == nil || w.visited[t] {
		return
	}
	w.visited[t] = true
	switch t := t.(type) {
	case *types.Pointer:
		w.walk(t.Elem())
	case *types.Slice:
		w.walk(t.Elem())
	case *types.Array:
		w.walk(t.Elem())
	case *types.Map:
		w.walk(t.Key())
		w.walk(t.Elem())
	case *types.Named:
		w.walk(t.Underlying())
	case *types.Struct:
		w.checkStruct(t)
	}
}

func (w *cachekeyWalker) checkStruct(st *types.Struct) {
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if jsonExcluded(st.Tag(i)) {
			continue // explicitly not part of the key; don't descend
		}
		if w.reported[field] {
			continue
		}
		ft := field.Type()
		if kind := unmarshalableKind(ft, nil); kind != "" {
			w.reported[field] = true
			w.report(field, kind, st)
			continue
		}
		w.walk(ft)
	}
}

func (w *cachekeyWalker) report(field *types.Var, kind string, st *types.Struct) {
	var msg string
	if field.Exported() {
		msg = "cache-keyed field " + field.Name() + " contains " + kind +
			" content, which json.Marshal rejects; mark it json:\"-\" (runtime wiring, not point identity)"
	} else {
		msg = "unexported cache-keyed field " + field.Name() + " contains " + kind +
			" content and is silently excluded from the cache key; hoist the wiring out of the config"
	}
	w.diags = append(w.diags, Diagnostic{Pos: w.p.Fset.Position(field.Pos()), Rule: "cachekey", Message: msg})
}

// jsonExcluded reports whether a struct tag is exactly `json:"-"` — the
// marker that a field is runtime wiring excluded from marshaling.
// (`json:"-,"` names the field "-" and still marshals.)
func jsonExcluded(tag string) bool {
	val, ok := reflect.StructTag(tag).Lookup("json")
	return ok && strings.Split(val, ",")[0] == "-" && !strings.Contains(val, ",")
}

// unmarshalableKind reports the reason t cannot participate in a JSON
// cache key: "func"-typed or "chan"-typed content reached through
// non-struct containers, or an unexported/anonymous interface. Struct
// fields are not descended here — the struct walk checks them against
// their own tags.
func unmarshalableKind(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Signature:
		return "func"
	case *types.Chan:
		return "chan"
	case *types.Pointer:
		return unmarshalableKind(t.Elem(), seen)
	case *types.Slice:
		return unmarshalableKind(t.Elem(), seen)
	case *types.Array:
		return unmarshalableKind(t.Elem(), seen)
	case *types.Map:
		if kind := unmarshalableKind(t.Key(), seen); kind != "" {
			return kind
		}
		return unmarshalableKind(t.Elem(), seen)
	case *types.Interface:
		if !t.Empty() {
			return "anonymous-interface"
		}
		return ""
	case *types.Named:
		if iface, ok := t.Underlying().(*types.Interface); ok {
			obj := t.Obj()
			if obj.Pkg() != nil && !obj.Exported() && !iface.Empty() {
				return "unexported-interface"
			}
			return ""
		}
		return unmarshalableKind(t.Underlying(), seen)
	}
	return ""
}
