package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutineAnalyzer keeps the simulation single-threaded. The kernel's
// determinism rests on one event at a time mutating one world; a go
// statement or a channel operation in sim-reachable code introduces a
// scheduler race that no seed controls, so results stop being a pure
// function of config. Concurrency belongs to the exempt layers — the
// runner's worker pool, the gateway's ingest, the fabric's leases —
// which sit outside every simulated point. The des engine's own
// coroutine handoff (exactly one runnable goroutine at any instant) is
// the one justified exception, suppressed in place with reasons.
var goroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc: "forbid go statements and channel operations (send, receive, " +
		"select, close) in sim-reachable code; the kernel is single-threaded " +
		"by design and concurrency belongs to runner/gateway/fabric/cmd",
	Run: func(prog *Program, p *Package) []Diagnostic {
		var diags []Diagnostic
		for _, n := range prog.reachableDeclared(p) {
			for _, body := range n.bodies {
				// A select statement is reported once; the channel
				// operations heading its cases are part of that finding,
				// not separate ones.
				inComm := make(map[ast.Node]bool)
				ast.Inspect(body, func(x ast.Node) bool {
					sel, ok := x.(*ast.SelectStmt)
					if !ok {
						return true
					}
					for _, cl := range sel.Body.List {
						if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
							ast.Inspect(comm.Comm, func(y ast.Node) bool {
								inComm[y] = true
								return true
							})
						}
					}
					return true
				})
				report := func(pos token.Pos, what string) {
					chain := n.chainTo("")
					diags = append(diags, Diagnostic{
						Pos:   p.Fset.Position(pos),
						Rule:  "goroutine",
						Chain: chain,
						Message: what + " in sim-reachable code (" + renderChain(chain) +
							"); the kernel is single-threaded — concurrency belongs to runner/gateway/fabric/cmd",
					})
				}
				ast.Inspect(body, func(x ast.Node) bool {
					if inComm[x] {
						return true
					}
					switch x := x.(type) {
					case *ast.GoStmt:
						report(x.Pos(), "go statement starts a goroutine")
					case *ast.SendStmt:
						report(x.Arrow, "channel send")
					case *ast.UnaryExpr:
						if x.Op == token.ARROW {
							report(x.OpPos, "channel receive")
						}
					case *ast.SelectStmt:
						report(x.Pos(), "select over channels")
					case *ast.CallExpr:
						if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
							if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
								report(x.Pos(), "close of a channel")
							}
						}
					}
					return true
				})
			}
		}
		return diags
	},
}
