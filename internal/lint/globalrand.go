package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand(/v2) package-level functions that
// build an explicitly seeded generator rather than drawing from the
// shared global one. Everything else at package level either consumes
// hidden global state (Intn, Float64, Shuffle, ...) or mutates it (Seed),
// and both destroy run-to-run reproducibility.
var randConstructors = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
}

var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc: "forbid any call path from a simulation entry point to global " +
		"math/rand draws, unseeded rand.New, or crypto/rand; randomness " +
		"must come from an explicitly seeded *rand.Rand threaded through config",
	Run: func(prog *Program, p *Package) []Diagnostic {
		var diags []Diagnostic
		for _, n := range prog.reachableDeclared(p) {
			for _, e := range n.edges {
				fn := e.to.fn
				if fn == nil || fn.Pkg() == nil {
					continue
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					continue
				}
				path := fn.Pkg().Path()
				report := func(msg string) {
					chain := n.chainTo(e.to.disp)
					diags = append(diags, Diagnostic{
						Pos: e.pos, Rule: "globalrand", Chain: chain,
						Message: msg + " (" + renderChain(chain) + ")",
					})
				}
				if path == "crypto/rand" {
					report("crypto/rand is nondeterministic by design; " +
						"simulation randomness must come from a seeded *rand.Rand")
					continue
				}
				ctors, ok := randConstructors[path]
				if !ok {
					continue
				}
				if !ctors[fn.Name()] {
					report("global " + path + "." + fn.Name() +
						" draws from hidden shared state; use an explicitly seeded *rand.Rand from config")
					continue
				}
				if fn.Name() == "New" && !seededSourceArg(p, e.call) {
					report(path + ".New with an indirect source; seed it in place " +
						"with rand.NewSource(seed) so the seed provably comes from config")
				}
			}
		}
		return diags
	},
}

// seededSourceArg reports whether the rand.New call passes a source
// constructed in place by a math/rand(/v2) source constructor
// (NewSource, NewPCG, NewChaCha8) — the only shape the analyzer can
// prove is explicitly seeded. A nil call (an indirect edge) proves
// nothing.
func seededSourceArg(p *Package, call *ast.CallExpr) bool {
	if call == nil || len(call.Args) == 0 {
		return false
	}
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	argSel, ok := argCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[argSel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if _, isRand := randConstructors[fn.Pkg().Path()]; !isRand {
		return false
	}
	switch fn.Name() {
	case "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
