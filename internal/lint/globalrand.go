package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand(/v2) package-level functions that
// build an explicitly seeded generator rather than drawing from the
// shared global one. Everything else at package level either consumes
// hidden global state (Intn, Float64, Shuffle, ...) or mutates it (Seed),
// and both destroy run-to-run reproducibility.
var randConstructors = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
}

var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc: "forbid global math/rand draws, unseeded rand.New, and crypto/rand " +
		"in simulation packages; randomness must come from an explicitly " +
		"seeded *rand.Rand threaded through config",
	Run: func(p *Package) []Diagnostic {
		if !isSimPackage(p.Path) {
			return nil
		}
		var diags []Diagnostic
		report := func(n ast.Node, msg string) {
			diags = append(diags, Diagnostic{Pos: p.Fset.Position(n.Pos()), Rule: "globalrand", Message: msg})
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				path := fn.Pkg().Path()
				if path == "crypto/rand" {
					report(sel, "crypto/rand is nondeterministic by design; "+
						"simulation randomness must come from a seeded *rand.Rand")
					return true
				}
				ctors, ok := randConstructors[path]
				if !ok {
					return true
				}
				if !ctors[fn.Name()] {
					report(sel, "global "+path+"."+fn.Name()+
						" draws from hidden shared state; use an explicitly seeded *rand.Rand from config")
					return true
				}
				if fn.Name() == "New" && !seededSourceArg(p, sel) {
					report(sel, path+".New with an indirect source; seed it in place "+
						"with rand.NewSource(seed) so the seed provably comes from config")
				}
				return true
			})
		}
		return diags
	},
}

// seededSourceArg reports whether the rand.New call enclosing sel passes a
// source constructed in place by a math/rand(/v2) source constructor
// (NewSource, NewPCG, NewChaCha8) — the only shape the analyzer can prove
// is explicitly seeded.
func seededSourceArg(p *Package, sel *ast.SelectorExpr) bool {
	call := enclosingCall(p, sel)
	if call == nil || len(call.Args) == 0 {
		return false
	}
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	argSel, ok := argCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[argSel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if _, isRand := randConstructors[fn.Pkg().Path()]; !isRand {
		return false
	}
	switch fn.Name() {
	case "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

// enclosingCall finds the CallExpr whose Fun is sel by re-walking the
// file; nil when sel is referenced without being called.
func enclosingCall(p *Package, sel *ast.SelectorExpr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, f := range p.Files {
		if f.Pos() <= sel.Pos() && sel.End() <= f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
					found = call
					return false
				}
				return found == nil
			})
		}
	}
	return found
}
