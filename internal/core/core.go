// Package core is the paper's primary contribution in one place: the
// required-bandwidth methodology (measure B_ij, derive the next phase's
// limit, throttle the I/O thread) assembled from its two halves,
// internal/tmio (the measuring/limiting tracer) and internal/adio (the
// throttling I/O agent). The implementation lives in those packages; this
// package names the contribution, re-exports its surface, and provides
// the one-call entry point used when the full simulation facade
// (package iobehind) is more than a caller needs.
package core

import (
	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/tmio"
)

// The contribution's surface, by part:
//
//   - measuring:  Tracer, Config, Report, PhaseEndRule, Aggregation
//   - deciding:   Strategy, StrategyConfig (direct / up-only / adaptive /
//     frequent), FrequencyTable
//   - enforcing:  Agent, AgentConfig (sub-request throttle, Cases A/B)
type (
	// Tracer is the TMIO reimplementation.
	Tracer = tmio.Tracer
	// Config configures the tracer.
	Config = tmio.Config
	// Report is a traced run's result.
	Report = tmio.Report
	// Strategy selects the limiting strategy.
	Strategy = tmio.Strategy
	// StrategyConfig is a strategy plus tolerances.
	StrategyConfig = tmio.StrategyConfig
	// Agent is the throttling I/O thread of the modified ADIO layer.
	Agent = adio.Agent
	// AgentConfig parameterizes the agent.
	AgentConfig = adio.Config
)

// Limiting strategies.
const (
	None     = tmio.None
	Direct   = tmio.Direct
	UpOnly   = tmio.UpOnly
	Adaptive = tmio.Adaptive
	Frequent = tmio.Frequent
)

// Attach installs the contribution on an MPI-IO subsystem: the tracer
// intercepts the application's MPI-IO calls (the LD_PRELOAD moment) and
// drives the per-rank agents' bandwidth limits.
func Attach(sys *mpiio.System, cfg Config) *Tracer {
	return tmio.Attach(sys, cfg)
}

// Assemble builds the whole measured-and-throttled I/O stack for a world:
// per-rank agents on the file system, the MPI-IO surface, and the
// attached tracer. It is the minimal wiring the paper's deployment
// prescribes ("the application has to use the modified version of the
// MPICH framework … and has to be linked to the intercepting library").
func Assemble(w *mpi.World, fs *pfs.PFS, agentCfg AgentConfig, tracerCfg Config) (*mpiio.System, *Tracer) {
	sys := mpiio.NewSystem(w, fs, agentCfg)
	return sys, Attach(sys, tracerCfg)
}

// RequiredBandwidth is the core metric on its own: the bandwidth needed to
// move bytes entirely within the available window (Eq. 1 of the paper).
func RequiredBandwidth(bytes int64, window des.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(bytes) / window.Seconds()
}
