package core

import (
	"math"
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/pfs"
)

func TestAssembleRunsTheContribution(t *testing.T) {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: 4})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9})
	sys, tr := Assemble(w, fs, AgentConfig{},
		Config{Strategy: StrategyConfig{Strategy: Direct, Tol: 1.1}, DisableOverhead: true})
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out")
		var req interface{ Wait() }
		for j := 0; j < 5; j++ {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(0, 50<<20)
			r.Compute(des.Second)
		}
		req.Wait()
		r.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	if rep.RequiredBandwidth <= 0 || rep.FirstLimitAt == 0 {
		t.Fatalf("contribution inactive: B=%v firstLimit=%v",
			rep.RequiredBandwidth, rep.FirstLimitAt)
	}
	// The agents carry the derived limits.
	if math.IsInf(sys.Agent(0).Limit(), 1) {
		t.Fatal("no limit installed")
	}
}

func TestRequiredBandwidth(t *testing.T) {
	if got := RequiredBandwidth(100e6, des.Second); math.Abs(got-100e6) > 1 {
		t.Fatalf("B = %v", got)
	}
	if RequiredBandwidth(1, 0) != 0 {
		t.Fatal("degenerate window")
	}
}
