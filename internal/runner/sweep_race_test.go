package runner_test

// The race-detector sweep: real experiment points (not synthetic
// payloads) from two different figures run concurrently through one
// worker pool, exercising the full DES → mpi → mpiio/adio → tmio stack
// under `go test -race ./internal/runner/...`. The assertion is the
// system's core contract: the parallel sweep's rendered figures are
// byte-identical to the serial path's.

import (
	"context"
	"testing"

	"iobehind/internal/experiments"
	"iobehind/internal/runner"
)

func TestConcurrentSweepMatchesSerialRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale sweep")
	}
	figs := []string{"1", "5"}

	// Serial reference, one figure at a time — the historical path.
	want := make(map[string]string, len(figs))
	for _, fig := range figs {
		exp, ok := experiments.ByFig(fig, experiments.Quick)
		if !ok {
			t.Fatalf("figure %s missing", fig)
		}
		res, err := experiments.RunExperiment(context.Background(), runner.Serial(), exp)
		if err != nil {
			t.Fatalf("serial figure %s: %v", fig, err)
		}
		want[fig] = res.Render()
	}

	// One flat sweep: both figures' points interleaved across 8 workers.
	var points []runner.Point
	type slot struct {
		fig      string
		exp      *experiments.Experiment
		from, to int
	}
	var slots []slot
	for _, fig := range figs {
		exp, _ := experiments.ByFig(fig, experiments.Quick)
		slots = append(slots, slot{fig: fig, exp: exp, from: len(points), to: len(points) + len(exp.Points)})
		points = append(points, exp.Points...)
	}
	r := runner.New(runner.Options{Workers: 8})
	results, err := r.Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		res, err := s.exp.Assemble(results[s.from:s.to])
		if err != nil {
			t.Fatalf("assemble figure %s: %v", s.fig, err)
		}
		if got := res.Render(); got != want[s.fig] {
			t.Errorf("figure %s: concurrent render differs from serial:\n--- serial ---\n%s\n--- concurrent ---\n%s",
				s.fig, want[s.fig], got)
		}
	}
}

func TestConcurrentSweepWithCacheMatchesSerialRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale sweep")
	}
	exp, ok := experiments.ByFig("5", experiments.Quick)
	if !ok {
		t.Fatal("figure 5 missing")
	}
	serial, err := experiments.RunExperiment(context.Background(), runner.Serial(), exp)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Render()

	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(runner.Options{Workers: 4, Cache: cache})
	passes := []struct {
		name       string
		wantCached int
	}{{"cold", 0}, {"warm", len(exp.Points)}}
	for _, p := range passes {
		pass, wantCached := p.name, p.wantCached
		results, err := r.Run(context.Background(), exp.Points)
		if err != nil {
			t.Fatalf("%s pass: %v", pass, err)
		}
		if got := runner.CachedCount(results); got != wantCached {
			t.Fatalf("%s pass: %d points cached, want %d", pass, got, wantCached)
		}
		res, err := exp.Assemble(results)
		if err != nil {
			t.Fatalf("%s pass: %v", pass, err)
		}
		if res.Render() != want {
			t.Fatalf("%s pass: render differs from serial", pass)
		}
	}
}
