// Package runner is the parallel sweep engine behind the experiment
// suite. Every figure of the paper decomposes into independent points —
// one deterministic virtual-time simulation per (figure, scale, strategy,
// rank count) cell — and the runner fans those points across a worker
// pool, collects the results in their input order regardless of
// completion order, and optionally memoizes completed points on disk
// (see Cache) so a re-run only recomputes points whose configuration
// changed.
//
// The contract that makes this safe is the one the DES substrate already
// guarantees: a point's result is a pure function of its configuration.
// Each point owns a private engine seeded from its spec, so running
// points concurrently cannot change any result — only the wall time.
//
// A point that panics does not kill the sweep: the panic is captured as a
// *PanicError on that point's Result and the remaining points proceed.
// Cancelling the context stops feeding new points; points never started
// report the context's error.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Point is one independent unit of a sweep.
type Point struct {
	// Key names the point within its sweep (e.g. "fig05/quick/ranks=64/run=1").
	// It participates in the cache key, so it must be stable across runs
	// and unique within the cache directory's lifetime.
	Key string
	// Config fully describes the computation: strategy, tolerances, rank
	// count, file-system config, workload parameters. It is canonically
	// JSON-encoded and hashed into the cache key, so any config change
	// invalidates the cached result. It must be json-marshalable.
	Config any
	// New allocates the zero result the cache decodes into (for example
	// func() any { return new(tmio.Report) }). A nil New disables caching
	// for this point.
	New func() any
	// Run computes the point. When New is set, Run must return the same
	// pointer type New allocates (so cache hits and fresh runs are
	// indistinguishable to the caller) and the pointed-to value must be
	// gob-encodable.
	Run func(ctx context.Context) (any, error)
}

// Result is one point's outcome, delivered at the point's input index.
type Result struct {
	Key    string
	Value  any
	Err    error
	Cached bool // satisfied from the cache without running
}

// PanicError reports a point that panicked; the sweep itself continues.
type PanicError struct {
	Key   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("point %s panicked: %v", e.Key, e.Value)
}

// Options configures a Runner.
type Options struct {
	// Workers is the pool size. Values < 1 default to GOMAXPROCS.
	Workers int
	// Cache, when non-nil, memoizes completed points: the local disk
	// *Cache, the fabric's HTTP-backed remote cache, or a tier of both.
	// It must be nil (not a typed-nil pointer in an interface) to
	// disable caching.
	Cache PointCache
}

// Runner executes sweeps. A Runner is safe for concurrent use; each Run
// call gets its own worker pool.
type Runner struct {
	workers int
	cache   PointCache
}

// New builds a runner from opts.
func New(opts Options) *Runner {
	w := opts.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: w, cache: opts.Cache}
}

// Serial returns a single-worker, cache-less runner — the configuration
// that reproduces the historical serial execution order exactly.
func Serial() *Runner { return New(Options{Workers: 1}) }

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// Cache returns the attached cache (nil when uncached).
func (r *Runner) Cache() PointCache { return r.cache }

// Run executes all points and returns one Result per point, in input
// order. Point failures (errors and panics) are reported per Result, not
// as the call's error; the error return is non-nil only when ctx was
// cancelled, in which case unstarted points carry ctx.Err().
func (r *Runner) Run(ctx context.Context, points []Point) ([]Result, error) {
	results := make([]Result, len(points))
	if len(points) == 0 {
		return results, ctx.Err()
	}
	workers := r.workers
	if workers > len(points) {
		workers = len(points)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runPoint(ctx, points[i])
			}
		}()
	}
	for i := range points {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < len(points); j++ {
				results[j] = Result{Key: points[j].Key, Err: ctx.Err()}
			}
			// The channel is unbuffered, so indices from i on were never
			// handed to a worker; only this loop writes their results.
			// Points a worker already holds check ctx themselves.
			close(idx)
			wg.Wait()
			return results, ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	return results, ctx.Err()
}

// runPoint executes one point: cache probe, isolated run, cache fill.
func (r *Runner) runPoint(ctx context.Context, p Point) (res Result) {
	res.Key = p.Key
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}

	var ckey string
	if r.cache != nil && p.New != nil {
		var err error
		ckey, err = CacheKey(p)
		if err != nil {
			res.Err = fmt.Errorf("runner: hash config of %s: %w", p.Key, err)
			return res
		}
		if v, ok := r.cache.Get(ckey, p.New); ok {
			res.Value, res.Cached = v, true
			return res
		}
	}

	// Panic isolation: a panicking point becomes an error on its own
	// Result; the other workers keep draining the sweep.
	defer func() {
		if rec := recover(); rec != nil {
			res.Value = nil
			res.Err = &PanicError{Key: p.Key, Value: rec, Stack: debug.Stack()}
		}
	}()
	v, err := p.Run(ctx)
	if err != nil {
		res.Err = err
		return res
	}
	res.Value = v
	if r.cache != nil && ckey != "" {
		r.cache.Put(ckey, v)
	}
	return res
}

// FirstErr returns the first non-nil error in input order (nil if none) —
// the error the historical serial loop would have stopped at.
func FirstErr(results []Result) error {
	for _, res := range results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// CachedCount reports how many results were satisfied from the cache.
func CachedCount(results []Result) int {
	n := 0
	for _, res := range results {
		if res.Cached {
			n++
		}
	}
	return n
}
