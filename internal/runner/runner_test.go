package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// payload is a gob-friendly test result.
type payload struct {
	N int
	S string
}

func intPoint(i int, cfg any) Point {
	return Point{
		Key:    fmt.Sprintf("p%03d", i),
		Config: cfg,
		New:    func() any { return new(payload) },
		Run: func(context.Context) (any, error) {
			return &payload{N: i * i, S: fmt.Sprintf("v%d", i)}, nil
		},
	}
}

func TestRunPreservesInputOrder(t *testing.T) {
	// Points finish in shuffled order (later points sleep less), but the
	// results must land at their input indices.
	const n = 32
	points := make([]Point, n)
	for i := 0; i < n; i++ {
		i := i
		points[i] = Point{
			Key: fmt.Sprintf("p%d", i),
			Run: func(context.Context) (any, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
				return i, nil
			},
		}
	}
	results, err := New(Options{Workers: 8}).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil || res.Value.(int) != i {
			t.Fatalf("result %d = %+v", i, res)
		}
	}
}

func TestSerialMatchesParallel(t *testing.T) {
	points := make([]Point, 16)
	for i := range points {
		points[i] = intPoint(i, map[string]int{"i": i})
	}
	serial, err := Serial().Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Workers: 8}).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a, b := serial[i].Value.(*payload), parallel[i].Value.(*payload)
		if *a != *b {
			t.Fatalf("point %d: serial %+v vs parallel %+v", i, a, b)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	points := []Point{
		{Key: "ok1", Run: func(context.Context) (any, error) { return 1, nil }},
		{Key: "boom", Run: func(context.Context) (any, error) { panic("kaboom") }},
		{Key: "ok2", Run: func(context.Context) (any, error) { return 2, nil }},
	}
	results, err := New(Options{Workers: 2}).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("neighbors of the panicking point failed: %+v", results)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("want PanicError, got %v", results[1].Err)
	}
	if pe.Key != "boom" || !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("panic error = %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if got := FirstErr(results); got != results[1].Err {
		t.Fatalf("FirstErr = %v", got)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran atomic.Int32
	points := []Point{
		{Key: "first", Run: func(context.Context) (any, error) {
			close(started)
			ran.Add(1)
			<-ctx.Done() // hold the single worker until cancelled
			return nil, ctx.Err()
		}},
		{Key: "second", Run: func(context.Context) (any, error) {
			ran.Add(1)
			return 2, nil
		}},
		{Key: "third", Run: func(context.Context) (any, error) {
			ran.Add(1)
			return 3, nil
		}},
	}
	go func() {
		<-started
		cancel()
	}()
	results, err := Serial().Run(ctx, points)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("ran %d points after cancellation", ran.Load())
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Fatalf("result %d = %+v", i, results[i])
		}
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	mk := func() []Point {
		points := make([]Point, 8)
		for i := range points {
			i := i
			points[i] = Point{
				Key:    fmt.Sprintf("pt%d", i),
				Config: map[string]int{"i": i},
				New:    func() any { return new(payload) },
				Run: func(context.Context) (any, error) {
					runs.Add(1)
					return &payload{N: i, S: "fresh"}, nil
				},
			}
		}
		return points
	}
	r := New(Options{Workers: 4, Cache: cache})

	cold, err := r.Run(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if got := CachedCount(cold); got != 0 {
		t.Fatalf("cold run: %d cached", got)
	}
	if runs.Load() != 8 {
		t.Fatalf("cold run executed %d points", runs.Load())
	}

	warm, err := r.Run(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if got := CachedCount(warm); got != 8 {
		t.Fatalf("warm run: only %d cached", got)
	}
	if runs.Load() != 8 {
		t.Fatalf("warm run recomputed: %d executions", runs.Load())
	}
	for i := range warm {
		a, b := cold[i].Value.(*payload), warm[i].Value.(*payload)
		if *a != *b {
			t.Fatalf("point %d: cold %+v vs warm %+v", i, a, b)
		}
	}
	st := cache.Stats()
	if st.Hits != 8 || st.Misses != 8 || st.Writes != 8 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheInvalidatesOnConfigChange(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{Workers: 1, Cache: cache})
	run := func(tol float64) *payload {
		points := []Point{{
			Key:    "single",
			Config: map[string]float64{"tol": tol},
			New:    func() any { return new(payload) },
			Run: func(context.Context) (any, error) {
				return &payload{N: int(tol * 10)}, nil
			},
		}}
		results, err := r.Run(context.Background(), points)
		if err != nil || results[0].Err != nil {
			t.Fatalf("run: %v %v", err, results[0].Err)
		}
		return results[0].Value.(*payload)
	}
	if run(1.1).N != 11 {
		t.Fatal("first run")
	}
	if got := run(2.0); got.N != 20 {
		t.Fatalf("changed config served stale value %+v", got)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Unchanged config hits.
	if run(2.0).N != 20 {
		t.Fatal("warm hit")
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheToleratesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	point := Point{
		Key:    "c",
		Config: 7,
		New:    func() any { return new(payload) },
		Run:    func(context.Context) (any, error) { return &payload{N: 7}, nil },
	}
	key, err := CacheKey(point)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".gob"), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(Options{Workers: 1, Cache: cache})
	results, err := r.Run(context.Background(), []Point{point})
	if err != nil || results[0].Err != nil {
		t.Fatalf("run: %v %v", err, results[0].Err)
	}
	if results[0].Cached {
		t.Fatal("corrupt entry served as a hit")
	}
	if results[0].Value.(*payload).N != 7 {
		t.Fatalf("value = %+v", results[0].Value)
	}
	// The corrupt entry was overwritten; the next run hits.
	results, err = r.Run(context.Background(), []Point{point})
	if err != nil || !results[0].Cached {
		t.Fatalf("recovery run: %v %+v", err, results[0])
	}
}

func TestCacheKeyStability(t *testing.T) {
	p := Point{Key: "k", Config: struct {
		Ranks int
		Tol   float64
	}{96, 1.1}}
	a, err := CacheKey(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := CacheKey(p)
	if a != b {
		t.Fatal("key not stable")
	}
	p.Config = struct {
		Ranks int
		Tol   float64
	}{96, 1.2}
	c, _ := CacheKey(p)
	if c == a {
		t.Fatal("config change did not change the key")
	}
	p.Key = "other"
	d, _ := CacheKey(p)
	if d == c {
		t.Fatal("point key does not participate")
	}
	if _, err := CacheKey(Point{Key: "bad", Config: func() {}}); err == nil {
		t.Fatal("unmarshalable config must error")
	}
}

func TestPointWithNilNewSkipsCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{Workers: 1, Cache: cache})
	var runs int
	point := Point{
		Key:    "nocache",
		Config: 1,
		Run: func(context.Context) (any, error) {
			runs++
			return runs, nil
		},
	}
	for i := 1; i <= 2; i++ {
		results, err := r.Run(context.Background(), []Point{point})
		if err != nil || results[0].Err != nil {
			t.Fatalf("run %d: %v %v", i, err, results[0].Err)
		}
		if results[0].Cached || results[0].Value.(int) != i {
			t.Fatalf("run %d: %+v", i, results[0])
		}
	}
	if st := cache.Stats(); st.Writes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	results, err := New(Options{}).Run(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v %v", results, err)
	}
	if w := New(Options{Workers: -3}).Workers(); w < 1 {
		t.Fatalf("workers = %d", w)
	}
	if Serial().Workers() != 1 || Serial().Cache() != nil {
		t.Fatal("serial runner shape")
	}
	if _, err := OpenCache(""); err == nil {
		t.Fatal("empty cache dir must error")
	}
}

func TestPointErrorDoesNotStopSweep(t *testing.T) {
	wantErr := errors.New("point failed")
	points := []Point{
		{Key: "a", Run: func(context.Context) (any, error) { return nil, wantErr }},
		{Key: "b", Run: func(context.Context) (any, error) { return "ok", nil }},
	}
	results, err := New(Options{Workers: 1}).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, wantErr) || results[1].Err != nil {
		t.Fatalf("results = %+v", results)
	}
	if CachedCount(results) != 0 {
		t.Fatal("cached count")
	}
}
