package runner_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"iobehind/internal/runner"
)

// TestOpenCacheSweepsStaleTempFiles plants the orphan a crash between
// os.CreateTemp and rename leaves behind (the in-process cleanup in Put
// never runs for a killed worker) and asserts OpenCache removes it while
// leaving real entries alone.
func TestOpenCacheSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.gob.tmp-123456")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	entry := filepath.Join(dir, "deadbeef.gob")
	if err := os.WriteFile(entry, []byte("entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := runner.OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived OpenCache: %v", err)
	}
	if _, err := os.Stat(entry); err != nil {
		t.Errorf("real entry removed by OpenCache: %v", err)
	}
}

// TestCacheBytesRoundTrip pins the raw-entry surface the fabric's cache
// server is built on: PutBytes/GetBytes move entry bytes untouched, and
// the bytes interoperate with the typed Get path.
func TestCacheBytesRoundTrip(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type payload struct{ N int }
	data, err := runner.EncodeEntry(&payload{N: 42})
	if err != nil {
		t.Fatal(err)
	}
	key, err := runner.CacheKey(runner.Point{Key: "p", Config: struct{ A int }{1}})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := cache.GetBytes(key); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	if !cache.PutBytes(key, data) {
		t.Fatal("PutBytes failed")
	}
	got, ok := cache.GetBytes(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("GetBytes = (%d bytes, %v), want the stored %d bytes", len(got), ok, len(data))
	}
	v, ok := cache.Get(key, func() any { return new(payload) })
	if !ok || v.(*payload).N != 42 {
		t.Fatalf("typed Get over raw bytes = (%v, %v), want &{42}", v, ok)
	}

	st := cache.Stats()
	if st.Writes != 1 || st.Hits != 2 || st.Misses != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 1 write, 2 hits, 1 miss, 0 errors", st)
	}
}

// TestValidCacheKey pins the shape guard the fabric's HTTP cache server
// uses to keep request paths inside the cache directory.
func TestValidCacheKey(t *testing.T) {
	key, err := runner.CacheKey(runner.Point{Key: "p", Config: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !runner.ValidCacheKey(key) {
		t.Errorf("real cache key %q rejected", key)
	}
	for _, bad := range []string{
		"", "short", key[:63], key + "0",
		"../../../../etc/passwd0000000000000000000000000000000000000000000",
		"ABCDEF0123456789abcdef0123456789abcdef0123456789abcdef0123456789"[:64],
	} {
		if runner.ValidCacheKey(bad) {
			t.Errorf("ValidCacheKey(%q) = true, want false", bad)
		}
	}
}

// TestEncodeEntryDeterministic asserts entry bytes are identical across
// repeated encodes of the same value — the property content-addressed
// result sharing and duplicate-completion comparison rest on.
func TestEncodeEntryDeterministic(t *testing.T) {
	type inner struct{ Xs []float64 }
	type payload struct {
		N  int
		S  string
		In inner
	}
	v := &payload{N: 7, S: "x", In: inner{Xs: []float64{1.5, 2.5, 3.5}}}
	first, err := runner.EncodeEntry(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		again, err := runner.EncodeEntry(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encode %d differs from first encode", i)
		}
	}
}
