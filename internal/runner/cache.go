package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheVersion participates in every cache key: bumping it invalidates
// all entries at once. Bump it when the meaning of cached results changes
// (e.g. a simulation-model fix that alters outputs without any config
// change).
// v2: adio accounting fixes (storm-queue time folded into the first
// segment, burst-buffered stats aligned with the direct path) changed
// report contents for unchanged configs.
const cacheVersion = "iobehind-runner-v2"

// Cache memoizes completed sweep points on disk. Entries are gob files
// named by a SHA-256 over (cache version, point key, canonical JSON of
// the point's config), so any configuration change — strategy,
// tolerances, rank count, file-system config, workload parameters —
// produces a different key and the stale entry is simply never read
// again. Unreadable or corrupt entries count as misses and are
// recomputed and overwritten, never trusted.
//
// A Cache is safe for concurrent use by one process. Concurrent writers
// of the same key are benign: writes go to unique temp files and are
// renamed into place atomically, and every entry for a key encodes the
// same deterministic result.
type Cache struct {
	dir string

	mu     sync.Mutex
	hits   int
	misses int
	writes int
	errs   int
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits   int // results served from disk
	Misses int // lookups that fell through to a run
	Writes int // entries stored
	Errors int // read/write/decode failures (treated as misses)
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the hit/miss/write counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Writes: c.writes, Errors: c.errs}
}

// CacheKey derives the point's cache key: a hex SHA-256 over the cache
// version, the point key, and the canonical JSON encoding of the config.
func CacheKey(p Point) (string, error) {
	cfg, err := json.Marshal(p.Config)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", cacheVersion, p.Key)
	h.Write(cfg)
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".gob")
}

// get loads the entry for key into a fresh value from alloc. Any failure
// (absent, unreadable, undecodable) is a miss.
func (c *Cache) get(key string, alloc func() any) (any, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.count(func() { c.misses++ })
		return nil, false
	}
	into := alloc()
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(into); err != nil {
		c.count(func() { c.misses++; c.errs++ })
		return nil, false
	}
	c.count(func() { c.hits++ })
	return into, true
}

// put stores v under key, atomically (temp file + rename). Failures are
// recorded in the stats but otherwise ignored: a cache write error only
// costs a future recomputation.
func (c *Cache) put(key string, v any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		c.count(func() { c.errs++ })
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		c.count(func() { c.errs++ })
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), c.path(key)) != nil {
		os.Remove(tmp.Name())
		c.count(func() { c.errs++ })
		return
	}
	c.count(func() { c.writes++ })
}

func (c *Cache) count(f func()) {
	c.mu.Lock()
	f()
	c.mu.Unlock()
}
