package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheVersion participates in every cache key: bumping it invalidates
// all entries at once. Bump it when the meaning of cached results changes
// (e.g. a simulation-model fix that alters outputs without any config
// change).
// v2: adio accounting fixes (storm-queue time folded into the first
// segment, burst-buffered stats aligned with the direct path) changed
// report contents for unchanged configs.
// v3: metrics.Histogram switched to a deterministic (sorted-bucket) wire
// encoding so entry bytes are content-addressable; old entries encode
// the same values differently and must never be compared byte-wise.
// v4: region.Sweep's boundary sort gained a canonical (time, delta)
// tie-break so the fold is permutation-independent; coincident-boundary
// accumulation order — and thus the low bits of swept series — can
// differ from v3 entries.
const cacheVersion = "iobehind-runner-v4"

// PointCache is the memoization surface a Runner probes before running a
// point and fills after. *Cache is the local-disk implementation; the
// fabric adds an HTTP-backed remote cache and a local-under-remote tier
// that satisfy the same contract. Implementations must be safe for
// concurrent use and must treat every failure as a miss — a cache can
// only ever cost a recomputation, never change a result.
type PointCache interface {
	// Get loads the entry for key into a fresh value from alloc,
	// reporting whether the load succeeded.
	Get(key string, alloc func() any) (any, bool)
	// Put stores v under key. Failures are absorbed (recorded in Stats).
	Put(key string, v any)
	// Stats returns a point-in-time counter snapshot.
	Stats() CacheStats
}

// Cache memoizes completed sweep points on disk. Entries are gob files
// named by a SHA-256 over (cache version, point key, canonical JSON of
// the point's config), so any configuration change — strategy,
// tolerances, rank count, file-system config, workload parameters —
// produces a different key and the stale entry is simply never read
// again. Unreadable or corrupt entries count as misses and are
// recomputed and overwritten, never trusted.
//
// A Cache is safe for concurrent use by one process. Concurrent writers
// of the same key are benign: writes go to unique temp files and are
// renamed into place atomically, and every entry for a key encodes the
// same deterministic result.
type Cache struct {
	dir string

	mu     sync.Mutex
	hits   int
	misses int
	writes int
	errs   int
}

// Cache implements PointCache.
var _ PointCache = (*Cache)(nil)

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits   int // results served from the cache
	Misses int // lookups that fell through to a run
	Writes int // entries stored
	Errors int // read/write/decode failures (treated as misses)
}

// OpenCache opens (creating if needed) a cache rooted at dir. Stale
// temp files left behind by a crash between os.CreateTemp and rename —
// in-process failures are cleaned up by put, a killed process's are not —
// are swept here, so cache directories do not accumulate orphans across
// worker or coordinator restarts. Removing another live writer's temp
// file is benign: its rename fails and is absorbed as a cache-write
// error, costing only a recomputation.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-*")); err == nil {
		for _, path := range stale {
			os.Remove(path)
		}
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the hit/miss/write counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Writes: c.writes, Errors: c.errs}
}

// CacheKey derives the point's cache key: a hex SHA-256 over the cache
// version, the point key, and the canonical JSON encoding of the config.
func CacheKey(p Point) (string, error) {
	cfg, err := json.Marshal(p.Config)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", cacheVersion, p.Key)
	h.Write(cfg)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ValidCacheKey reports whether key has the exact shape CacheKey
// produces: 64 lowercase hex characters. The fabric's cache server uses
// it to reject anything that could escape the cache directory.
func ValidCacheKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EncodeEntry serializes a point result into the cache's entry format —
// the exact bytes a *Cache stores on disk and the fabric moves over the
// wire. The encoding is deterministic for a given value (result structs
// contain no bare maps; see metrics.Histogram's sorted wire form), which
// is what makes entries content-addressable and duplicate completions
// byte-comparable.
func EncodeEntry(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEntry decodes entry bytes into a fresh value from alloc.
func DecodeEntry(data []byte, alloc func() any) (any, error) {
	into := alloc()
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(into); err != nil {
		return nil, err
	}
	return into, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".gob")
}

// GetBytes loads the raw entry bytes for key; absence or a read error is
// a miss. No decode happens here — callers moving entries between caches
// (the fabric's cache server) forward the bytes untouched.
func (c *Cache) GetBytes(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.count(func() { c.misses++ })
		return nil, false
	}
	c.count(func() { c.hits++ })
	return data, true
}

// PutBytes stores raw entry bytes under key, atomically (temp file +
// rename), reporting success. Failures are recorded in the stats but
// otherwise absorbed: a cache write error only costs a future
// recomputation.
func (c *Cache) PutBytes(key string, data []byte) bool {
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		c.count(func() { c.errs++ })
		return false
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), c.path(key)) != nil {
		os.Remove(tmp.Name())
		c.count(func() { c.errs++ })
		return false
	}
	c.count(func() { c.writes++ })
	return true
}

// Get loads the entry for key into a fresh value from alloc. Any failure
// (absent, unreadable, undecodable) is a miss.
func (c *Cache) Get(key string, alloc func() any) (any, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.count(func() { c.misses++ })
		return nil, false
	}
	into, err := DecodeEntry(data, alloc)
	if err != nil {
		c.count(func() { c.misses++; c.errs++ })
		return nil, false
	}
	c.count(func() { c.hits++ })
	return into, true
}

// Put stores v under key via EncodeEntry + PutBytes.
func (c *Cache) Put(key string, v any) {
	data, err := EncodeEntry(v)
	if err != nil {
		c.count(func() { c.errs++ })
		return
	}
	c.PutBytes(key, data)
}

func (c *Cache) count(f func()) {
	c.mu.Lock()
	f()
	c.mu.Unlock()
}
