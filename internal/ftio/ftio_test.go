package ftio

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/region"
)

// periodicSeries builds a square-wave I/O signal: bursts of the given
// height and width repeating with the given period.
func periodicSeries(period, width des.Duration, height float64, cycles int) (*metrics.Series, des.Time) {
	s := &metrics.Series{Name: "io"}
	for i := 0; i < cycles; i++ {
		start := des.Time(int64(period) * int64(i))
		s.Append(start, height)
		s.Append(start.Add(width), 0)
	}
	end := des.Time(int64(period) * int64(cycles))
	return s, end
}

func TestDetectSquareWavePeriod(t *testing.T) {
	period := des.Duration(10 * des.Second)
	s, end := periodicSeries(period, 2*des.Second, 100e6, 16)
	res, err := Detect(s, 0, end, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Period.Seconds(); math.Abs(got-10) > 0.5 {
		t.Fatalf("period = %v, want ~10s", got)
	}
	// A 20%-duty square wave spreads energy into harmonics; the
	// fundamental holds roughly 40% of the non-DC energy.
	if res.Confidence < 0.35 {
		t.Fatalf("confidence = %v for a clean square wave", res.Confidence)
	}
	if math.Abs(res.Frequency-0.1) > 0.01 {
		t.Fatalf("frequency = %v, want ~0.1 Hz", res.Frequency)
	}
	if !strings.Contains(res.String(), "period") {
		t.Fatal("String format")
	}
}

func TestDetectConstantSignalNoPeriod(t *testing.T) {
	s := &metrics.Series{Name: "flat"}
	s.Append(0, 42)
	res, err := Detect(s, 0, des.Time(100*des.Second), 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence != 0 || res.Period != 0 {
		t.Fatalf("constant signal detected period: %+v", res)
	}
	if math.Abs(res.Mean-42) > 1e-9 {
		t.Fatalf("mean = %v", res.Mean)
	}
}

func TestDetectNoiseHasLowConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := &metrics.Series{Name: "noise"}
	for i := 0; i < 400; i++ {
		s.Append(des.Time(i)*des.Time(des.Second), rng.Float64()*100)
	}
	res, err := Detect(s, 0, des.Time(400*des.Second), 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence > 0.3 {
		t.Fatalf("white noise confidence = %v, want low", res.Confidence)
	}
}

func TestDetectValidation(t *testing.T) {
	s := &metrics.Series{}
	if _, err := Detect(s, 0, 100, 2); err == nil {
		t.Fatal("too few bins accepted")
	}
	if _, err := Detect(s, 100, 100, 64); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := DetectPhases(nil, 64); err == nil {
		t.Fatal("no phases accepted")
	}
}

func TestDetectPhases(t *testing.T) {
	// 8 ranks each bursting for 1 s every 10 s: the aggregate signal is a
	// clean 0.1 Hz square wave.
	var phases []region.Phase
	for cycle := 0; cycle < 12; cycle++ {
		for rank := 0; rank < 8; rank++ {
			start := des.Time(cycle * 10 * int(des.Second))
			phases = append(phases, region.Phase{
				Rank:  rank,
				Index: cycle,
				Start: start,
				End:   start.Add(des.Second),
				Value: 50e6,
			})
		}
	}
	res, err := DetectPhases(phases, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Period.Seconds(); math.Abs(got-10) > 1 {
		t.Fatalf("period = %v, want ~10s", got)
	}
}

func TestPredictNext(t *testing.T) {
	r := &Result{Period: des.Duration(10 * des.Second)}
	last := des.Time(5 * des.Second)
	now := des.Time(32 * des.Second)
	if got := r.PredictNext(last, now); got != des.Time(35*des.Second) {
		t.Fatalf("next = %v, want 35s", got)
	}
	if (&Result{}).PredictNext(last, now) != 0 {
		t.Fatal("no-period prediction should be zero")
	}
	// A burst exactly at now predicts the following one.
	if got := r.PredictNext(now, now); got != des.Time(42*des.Second) {
		t.Fatalf("next = %v, want 42s", got)
	}
}

// TestDetectRecoversPeriodProperty: for random periods and duty cycles,
// the detector recovers the fundamental (or a harmonic of it) with
// reasonable confidence.
func TestDetectRecoversPeriodProperty(t *testing.T) {
	f := func(p uint8, duty uint8, cyc uint8) bool {
		periodSec := float64(p%20) + 4       // 4..23 s
		dutyFrac := 0.2 + float64(duty%4)/10 // 0.2..0.5
		cycles := int(cyc%10) + 8            // 8..17
		period := des.DurationOf(periodSec)
		s, end := periodicSeries(period, des.DurationOf(periodSec*dutyFrac), 1e9, cycles)
		res, err := Detect(s, 0, end, 512)
		if err != nil {
			return false
		}
		if res.Confidence < 0.2 {
			return false
		}
		// The detected period must be the fundamental or one of its first
		// few harmonics (square waves have strong harmonics).
		for h := 1; h <= 5; h++ {
			if math.Abs(res.Period.Seconds()*float64(h)-periodSec) < 0.25*periodSec {
				return true
			}
		}
		return false
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
