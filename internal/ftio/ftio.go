// Package ftio implements frequency-technique I/O phase detection, the
// companion analysis the paper couples TMIO with ("the tool has been
// recently used together with FTIO to predict online or detect offline the
// I/O phases of an application", Sec. VII, citing Tarraf et al., IPDPS'24).
//
// The detector bins an I/O activity signal over time, applies a discrete
// Fourier transform, and reports the dominant period along with a
// confidence score. Periodic I/O — the checkpointing pattern that
// dominates HPC write traffic — shows up as a sharp spectral line; its
// period tells a scheduler when the next burst will come.
package ftio

import (
	"fmt"
	"math"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/region"
)

// Result describes the dominant periodicity of an I/O signal.
type Result struct {
	// Period of the dominant component.
	Period des.Duration
	// Frequency in Hz (1/Period).
	Frequency float64
	// Amplitude of the dominant spectral line (signal units).
	Amplitude float64
	// Confidence in [0,1]: the dominant line's share of the total
	// non-DC spectral energy. Values near 1 mean strongly periodic I/O;
	// values near 0 mean noise.
	Confidence float64
	// Bins is the number of samples analysed.
	Bins int
	// Mean is the signal's average (the DC component).
	Mean float64
}

// String summarizes the detection.
func (r *Result) String() string {
	return fmt.Sprintf("period %.3gs (%.3g Hz), confidence %.2f",
		r.Period.Seconds(), r.Frequency, r.Confidence)
}

// Detect analyses the series over [start, end) using the given number of
// bins. The series is sampled at bin midpoints (a step series holds its
// value between points, so midpoint sampling is exact for signals that
// change slower than a bin).
func Detect(s *metrics.Series, start, end des.Time, bins int) (*Result, error) {
	if bins < 4 {
		return nil, fmt.Errorf("ftio: need at least 4 bins, got %d", bins)
	}
	if end <= start {
		return nil, fmt.Errorf("ftio: empty window [%v, %v)", start, end)
	}
	span := end.Sub(start)
	samples := make([]float64, bins)
	for i := 0; i < bins; i++ {
		at := start.Add(des.Duration(int64(span) * (2*int64(i) + 1) / int64(2*bins)))
		samples[i] = s.At(at)
	}
	return analyze(samples, span)
}

// DetectPhases builds the activity signal from rank-level phases (e.g. a
// report's TPhases: each contributes its Value over [Start, End)) and
// detects the dominant period.
func DetectPhases(phases []region.Phase, bins int) (*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("ftio: no phases")
	}
	series := region.Sweep("activity", phases)
	start := phases[0].Start
	end := phases[0].End
	for _, ph := range phases {
		if ph.Start < start {
			start = ph.Start
		}
		if ph.End > end {
			end = ph.End
		}
	}
	return Detect(series, start, end, bins)
}

// analyze runs the DFT over the samples spanning the given duration.
func analyze(samples []float64, span des.Duration) (*Result, error) {
	n := len(samples)
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(n)

	// Direct DFT on the mean-removed signal. n is a few thousand at most
	// for our use, so O(n²) is fine and avoids radix restrictions.
	half := n / 2
	power := make([]float64, half+1)
	var total float64
	best, bestK := 0.0, 0
	for k := 1; k <= half; k++ {
		var re, im float64
		w := 2 * math.Pi * float64(k) / float64(n)
		for t, v := range samples {
			x := v - mean
			re += x * math.Cos(w*float64(t))
			im -= x * math.Sin(w*float64(t))
		}
		p := re*re + im*im
		power[k] = p
		total += p
		if p > best {
			best, bestK = p, k
		}
	}
	res := &Result{Bins: n, Mean: mean}
	if total <= 0 || bestK == 0 {
		// A constant signal: no periodicity at all.
		return res, nil
	}
	spanSec := span.Seconds()
	res.Frequency = float64(bestK) / spanSec
	res.Period = des.DurationOf(spanSec / float64(bestK))
	res.Amplitude = 2 * math.Sqrt(best) / float64(n)
	res.Confidence = best / total
	return res, nil
}

// PredictNext returns the expected start of the next I/O burst after now,
// given a detection result and the time of the last observed burst start.
// This is the online-prediction use FTIO serves: an I/O scheduler can
// reserve bandwidth just before the burst arrives.
func (r *Result) PredictNext(lastBurst, now des.Time) des.Time {
	if r.Period <= 0 {
		return 0
	}
	next := lastBurst
	for next <= now {
		next = next.Add(r.Period)
	}
	return next
}
