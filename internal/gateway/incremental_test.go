package gateway

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/region"
	"iobehind/internal/tmio"
)

func streamRec(app string, j int, start, dur, b float64) tmio.StreamRecord {
	return tmio.StreamRecord{
		V: tmio.StreamVersion, App: app, Rank: j % 4, Phase: j,
		TsSec: start, TeSec: start + dur, B: b,
	}
}

// TestIngestCreateFastPath pins the read-locked lookup: after an app's
// first record, ingest must never take the shard write lock again — one
// slow-path pass per app, no matter how many records follow, including
// records racing in from many goroutines.
func TestIngestCreateFastPath(t *testing.T) {
	s := New(Config{})
	for j := 0; j < 500; j++ {
		s.reg.ingest(streamRec("one-app", j, float64(j), 0.5, 1e6), "conn-1")
	}
	if got := s.reg.slow.Load(); got != 1 {
		t.Fatalf("slow-path passes after 500 records of one app = %d, want 1", got)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.reg.ingest(streamRec("racy-app", j, float64(j), 0.5, 1e6), "conn-2")
			}
		}(g)
	}
	wg.Wait()
	// The racy creation may cost a few extra write-locked passes (losers
	// of the create race re-check under the lock), but steady state must
	// be pure fast path: far fewer slow passes than records.
	if got := s.reg.slow.Load(); got > 1+8 {
		t.Fatalf("slow-path passes = %d after concurrent ingest, want <= 9", got)
	}
	info, ok := s.AppInfo("racy-app")
	if !ok || info.Records != 8*200 {
		t.Fatalf("racy-app records = %+v (ok=%v), want 1600", info, ok)
	}
}

// TestShardedRegistrySpreadsApps sanity-checks the striping: distinct
// apps land in more than one shard, and every app stays reachable.
func TestShardedRegistrySpreadsApps(t *testing.T) {
	s := New(Config{})
	used := make(map[*appShard]bool)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("app-%d", i)
		s.reg.ingest(streamRec(id, 0, 0, 1, 1e6), "conn-1")
		used[s.reg.shardOf(id)] = true
		if _, ok := s.reg.get(id); !ok {
			t.Fatalf("app %s unreachable after ingest", id)
		}
	}
	if len(used) < appShards/2 {
		t.Fatalf("200 apps hashed into only %d/%d shards", len(used), appShards)
	}
	if got := s.reg.len(); got != 200 {
		t.Fatalf("registry len = %d, want 200", got)
	}
	if got := len(s.reg.ids()); got != 200 {
		t.Fatalf("ids() returned %d apps, want 200", got)
	}
}

// TestRetentionBoundsMemory streams far more history than the retention
// window holds and checks (a) the sweep's live footprint stays bounded
// by the window rather than the stream length, (b) Max still equals the
// full-history offline sweep bit-for-bit, and (c) a record arriving
// behind the horizon is rejected and surfaces in Stats.Late and
// /metrics.
func TestRetentionBoundsMemory(t *testing.T) {
	s := New(Config{
		RetentionWindow: des.DurationOf(10), // 10 virtual seconds
		RetentionTail:   8,
	})
	var all []region.Phase
	const n = 5000
	for j := 0; j < n; j++ {
		rec := streamRec("ret", j, float64(j)*0.1, 0.05, float64(1+j%7)*1e6)
		s.reg.ingest(rec, "conn-1")
		all = append(all, RecordPhase(rec))
	}
	st, ok := s.reg.get("ret")
	if !ok {
		t.Fatal("app missing")
	}
	boundaries, _ := st.b.Size()
	// The 10 s window holds ~100 live phases (200 boundaries); chunk
	// granularity and the window/4 compaction hysteresis add slack, but
	// the footprint must be far below the 2*5000 un-compacted boundaries.
	if boundaries > 2000 {
		t.Fatalf("live boundaries = %d, want bounded by the window (<< %d)", boundaries, 2*n)
	}
	if _, compacted := st.b.Horizon(); !compacted {
		t.Fatal("retention never compacted despite 500 s of history")
	}
	off := region.Sweep("B", all)
	if got := st.b.Max(); got != off.Max() {
		t.Fatalf("Max after retention = %v, full-history max %v (must be exact)", got, off.Max())
	}

	// A record behind the horizon: rejected, counted, app counters still
	// account for it as received.
	s.reg.ingest(streamRec("ret", n, 0.2, 0.05, 1e6), "conn-1")
	if got := s.Stats().Late; got != 1 {
		t.Fatalf("Stats().Late = %d, want 1", got)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	nr, _ := resp.Body.Read(buf)
	if want := "iogateway_records_late_total 1"; !containsLine(string(buf[:nr]), want) {
		t.Fatalf("/metrics missing %q", want)
	}
}

func containsLine(body, want string) bool {
	for len(body) > 0 {
		i := 0
		for i < len(body) && body[i] != '\n' {
			i++
		}
		if body[:i] == want {
			return true
		}
		if i == len(body) {
			break
		}
		body = body[i+1:]
	}
	return false
}

// TestConcurrentScrapeDuringIngest hammers the query surface (AppInfo,
// AppSeries, Predict, /metrics) from readers while writers ingest — the
// scrapes-do-not-stall-ingest contract, exercised under -race in the CI
// sweep — then verifies the final online state equals the offline sweep
// over everything ingested, point for point.
func TestConcurrentScrapeDuringIngest(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const apps, perApp = 4, 400
	var wg sync.WaitGroup
	collected := make([][]region.Phase, apps)
	for a := 0; a < apps; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			id := fmt.Sprintf("load-%d", a)
			for j := 0; j < perApp; j++ {
				rec := streamRec(id, j, float64(j)*0.05, 0.04, float64(1+a)*1e6)
				collected[a] = append(collected[a], RecordPhase(rec))
				s.reg.ingest(rec, "conn-load")
			}
		}(a)
	}
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				id := fmt.Sprintf("load-%d", g%apps)
				s.AppInfo(id)
				s.AppSeries(id)
				s.Predict(id, 0)
				if g == 0 {
					resp, err := http.Get(srv.URL + "/metrics")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopReads)
	readers.Wait()

	for a := 0; a < apps; a++ {
		id := fmt.Sprintf("load-%d", a)
		got, ok := s.AppSeries(id)
		if !ok {
			t.Fatalf("no series for %s", id)
		}
		want := region.Sweep("B", collected[a])
		if err := sameSeries(got.B, want); err != nil {
			t.Fatalf("%s online B diverged from offline after concurrent load: %v", id, err)
		}
	}
}

// errorWriter fails after n bytes, standing in for a scraper that hangs
// up mid-response.
type errorWriter struct {
	n       int
	written int
}

func (e *errorWriter) Write(p []byte) (int, error) {
	if e.written+len(p) > e.n {
		return 0, errors.New("peer gone")
	}
	e.written += len(p)
	return len(p), nil
}

// TestErrWriterLatches pins the streaming exposition's error handling:
// the first write failure is latched and every later write is a cheap
// no-op returning the same error.
func TestErrWriterLatches(t *testing.T) {
	ew := &errWriter{w: &errorWriter{n: 10}}
	if _, err := ew.Write([]byte("12345")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if _, err := ew.Write([]byte("6789012345")); err == nil {
		t.Fatal("overflowing write did not fail")
	}
	if _, err := ew.Write([]byte("x")); err == nil || ew.err == nil {
		t.Fatal("error did not latch")
	}
}
