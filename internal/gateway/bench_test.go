package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"iobehind/internal/tmio"
)

// replayConn is a net.Conn that serves a pre-built byte stream from
// memory, so the ingest benchmark measures the protocol loops (framing,
// decode, enqueue) rather than loopback socket syscalls.
type replayConn struct {
	r *bytes.Reader
}

func (c *replayConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *replayConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *replayConn) Close() error                       { return nil }
func (c *replayConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *replayConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *replayConn) SetDeadline(t time.Time) error      { return nil }
func (c *replayConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *replayConn) SetWriteDeadline(t time.Time) error { return nil }

// BenchmarkIngest compares the gateway's two ingest decode paths over
// the same records: the JSON-lines loop every producer spoke before the
// binary format, and the frame loop. One op replays a whole connection
// carrying benchRecsPerConn records into a discarding enqueue, so ns/op
// is the read-loop cost and records/s is directly comparable across the
// sub-benchmarks. Guarded by BENCH_baseline.json via make bench-check;
// the binary path's records/s is the tentpole win (≥ 5× JSON).
func BenchmarkIngest(b *testing.B) {
	const benchRecsPerConn = 4096
	recs := make([]tmio.StreamRecord, benchRecsPerConn)
	for i := range recs {
		recs[i] = tmio.StreamRecord{
			V: tmio.StreamVersion, App: "bench", Rank: i % 8, Phase: i / 8,
			TsSec: float64(i), TeSec: float64(i) + 0.5,
			B: 1e8, BL: 9e7, T: 8e7,
			TtsSec: float64(i) + 0.1, TteSec: float64(i) + 0.4,
		}
	}

	var jsonPayload bytes.Buffer
	enc := json.NewEncoder(&jsonPayload)
	for _, rec := range recs {
		enc.Encode(rec)
	}
	var framePayload []byte
	for off := 0; off < len(recs); off += 256 {
		end := off + 256
		if end > len(recs) {
			end = len(recs)
		}
		frame, err := tmio.EncodeFrame(recs[off:end])
		if err != nil {
			b.Fatal(err)
		}
		framePayload = append(framePayload, frame...)
	}

	s := New(Config{})
	run := func(payload []byte, binary bool) func(*testing.B) {
		return func(b *testing.B) {
			got := 0
			discard := func(rec tmio.StreamRecord) { got++ }
			b.ReportAllocs()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				conn := &replayConn{r: bytes.NewReader(payload)}
				r := bufio.NewReaderSize(conn, 64<<10)
				if binary {
					s.serveFrames(conn, r, "bench", discard)
				} else {
					s.serveLines(conn, r, "bench", discard)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			if got != b.N*benchRecsPerConn {
				b.Fatalf("decoded %d records, want %d", got, b.N*benchRecsPerConn)
			}
			b.ReportMetric(float64(got)/elapsed.Seconds(), "records/s")
		}
	}
	b.Run("json", run(jsonPayload.Bytes(), false))
	b.Run("binary", run(framePayload, true))
}

// preloadApp feeds n phased records for one app straight into the
// registry, bypassing the wire so benchmarks measure aggregation and
// query cost only.
func preloadApp(s *Server, id string, n int) {
	for j := 0; j < n; j++ {
		s.reg.ingest(tmio.StreamRecord{
			V: tmio.StreamVersion, App: id, Rank: j % 8, Phase: j / 8,
			TsSec: float64(j) * 0.05, TeSec: float64(j)*0.05 + 0.04, B: 1e8,
		}, "conn-bench")
	}
}

// BenchmarkMetricsScrape measures one /metrics exposition. The per-app
// gauges read the incremental sweep's maintained max, so the cost must
// be flat in how many phases each app has ever streamed — the
// phases=1000 and phases=50000 sub-benchmarks pin that in the
// bench-check gate (the old path re-sorted every phase per scrape).
func BenchmarkMetricsScrape(b *testing.B) {
	for _, phases := range []int{1000, 50000} {
		b.Run(fmt.Sprintf("phases=%d", phases), func(b *testing.B) {
			s := New(Config{})
			for a := 0; a < 8; a++ {
				preloadApp(s, fmt.Sprintf("app-%d", a), phases)
			}
			h := s.Handler()
			req := httptest.NewRequest("GET", "/metrics", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := &discardResponse{}
				h.ServeHTTP(rec, req)
			}
		})
	}
}

// discardResponse is a ResponseWriter that counts and drops the body, so
// the scrape benchmark measures formatting, not recorder buffering.
type discardResponse struct {
	n int
}

func (d *discardResponse) Header() http.Header        { return http.Header{} }
func (d *discardResponse) WriteHeader(statusCode int) {}
func (d *discardResponse) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}

// BenchmarkOnlineQueryUnderIngest interleaves the two sides the lock
// split decouples: each op ingests a batch of records and then answers
// an AppInfo query (the scheduler-poll shape). Deterministic and
// single-threaded so the bench-check threshold tracks the code path, not
// scheduler noise; the true concurrency contract is exercised under
// -race by TestConcurrentScrapeDuringIngest.
func BenchmarkOnlineQueryUnderIngest(b *testing.B) {
	s := New(Config{})
	preloadApp(s, "mixed", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			j := 1000 + i*8 + k
			s.reg.ingest(tmio.StreamRecord{
				V: tmio.StreamVersion, App: "mixed", Rank: j % 8, Phase: j / 8,
				TsSec: float64(j) * 0.05, TeSec: float64(j)*0.05 + 0.04, B: 1e8,
			}, "conn-bench")
		}
		if _, ok := s.AppInfo("mixed"); !ok {
			b.Fatal("app vanished")
		}
	}
}
