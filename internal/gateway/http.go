package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
)

// Handler returns the gateway's HTTP query surface:
//
//	GET /healthz              liveness probe
//	GET /metrics              Prometheus text exposition
//	GET /apps                 JSON list of applications
//	GET /apps/{id}/series     JSON B/B_L/T step series
//	GET /apps/{id}/predict    JSON next-burst forecast (?now=<seconds>)
//
// All times cross the wire as seconds of virtual time, matching the
// stream protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.serveHealthz)
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	mux.HandleFunc("GET /apps", s.serveApps)
	mux.HandleFunc("GET /apps/{id}/series", s.serveSeries)
	mux.HandleFunc("GET /apps/{id}/predict", s.servePredict)
	return mux
}

type appJSON struct {
	ID                string  `json:"id"`
	Records           int64   `json:"records"`
	Version           int     `json:"v"`
	RequiredBandwidth float64 `json:"required_bandwidth"`
	LastActivitySec   float64 `json:"last_activity_s"`
}

func appToJSON(info AppInfo) appJSON {
	return appJSON{
		ID:                info.ID,
		Records:           info.Records,
		Version:           info.Version,
		RequiredBandwidth: info.RequiredBandwidth,
		LastActivitySec:   info.LastActivity.Seconds(),
	}
}

type pointJSON struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

type seriesJSON struct {
	ID                string      `json:"id"`
	RequiredBandwidth float64     `json:"required_bandwidth"`
	B                 []pointJSON `json:"b"`
	BL                []pointJSON `json:"bl"`
	T                 []pointJSON `json:"t"`
	// Faults annotates the merged windows during which B was measured
	// against degraded hardware; Retries sums the app's transient-error
	// retries. Both absent when no fault was ever streamed.
	Faults  []spanJSON `json:"faults,omitempty"`
	Retries int64      `json:"retries,omitempty"`
}

type spanJSON struct {
	Ts float64 `json:"ts"`
	Te float64 `json:"te"`
}

func pointsToJSON(series *metrics.Series) []pointJSON {
	pts := make([]pointJSON, 0, len(series.Points))
	for _, p := range series.Points {
		pts = append(pts, pointJSON{T: p.T.Seconds(), V: p.V})
	}
	return pts
}

// PredictJSON is the wire form of a Prediction (also decoded by
// PredictClient, hence exported).
type PredictJSON struct {
	ID           string  `json:"id"`
	OK           bool    `json:"ok"`
	PeriodSec    float64 `json:"period_s"`
	FrequencyHz  float64 `json:"frequency_hz"`
	Confidence   float64 `json:"confidence"`
	BurstLenSec  float64 `json:"burst_len_s"`
	LastBurstSec float64 `json:"last_burst_s"`
	NextBurstSec float64 `json:"next_burst_s"`
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) serveApps(w http.ResponseWriter, r *http.Request) {
	infos := s.Apps()
	out := make([]appJSON, 0, len(infos))
	for _, info := range infos {
		out = append(out, appToJSON(info))
	}
	s.writeJSON(w, out)
}

func (s *Server) serveSeries(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	series, ok := s.AppSeries(id)
	if !ok {
		http.Error(w, "unknown app", http.StatusNotFound)
		return
	}
	out := seriesJSON{
		ID:                series.ID,
		RequiredBandwidth: series.B.Max(),
		B:                 pointsToJSON(series.B),
		BL:                pointsToJSON(series.BL),
		T:                 pointsToJSON(series.T),
		Retries:           series.Retries,
	}
	for _, iv := range series.Faults {
		out.Faults = append(out.Faults, spanJSON{
			Ts: iv.Start.Seconds(), Te: iv.End.Seconds(),
		})
	}
	s.writeJSON(w, out)
}

func (s *Server) servePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, known := s.reg.get(id); !known {
		http.Error(w, "unknown app", http.StatusNotFound)
		return
	}
	var now des.Time
	if q := r.URL.Query().Get("now"); q != "" {
		sec, err := strconv.ParseFloat(q, 64)
		if err != nil {
			http.Error(w, "bad now parameter", http.StatusBadRequest)
			return
		}
		now = timeOf(sec)
	}
	p, ok := s.Predict(id, now)
	if !ok {
		// Known app, no confident forecast yet: a valid, useful answer.
		s.writeJSON(w, PredictJSON{ID: id, OK: false})
		return
	}
	s.writeJSON(w, PredictJSON{
		ID:           p.App,
		OK:           true,
		PeriodSec:    p.Period.Seconds(),
		FrequencyHz:  p.Frequency,
		Confidence:   p.Confidence,
		BurstLenSec:  p.BurstLen.Seconds(),
		LastBurstSec: p.LastBurst.Seconds(),
		NextBurstSec: p.Next.Seconds(),
	})
}

// errWriter wraps the response writer, latches the first write error,
// and turns later writes into no-ops: once the scraper hangs up there is
// no point formatting the rest of the exposition.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// serveMetrics writes the Prometheus text exposition format (0.0.4) with
// gateway-level counters and per-app gauges, streaming straight to the
// response (the old strings.Builder staging double-copied every scrape).
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.Stats()
	ew := &errWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("iogateway_connections_total", "Ingest connections ever accepted.", st.ConnsTotal)
	gauge("iogateway_connections_active", "Ingest connections currently open.", st.ConnsActive)
	counter("iogateway_records_ingested_total", "Stream records aggregated.", st.Ingested)
	counter("iogateway_records_dropped_total", "Stream records discarded by queue backpressure.", st.Dropped)
	counter("iogateway_decode_errors_total", "Stream lines that failed to parse.", st.DecodeErrors)
	counter("iogateway_records_faulty_total", "Stream records marked as measured inside an injected fault window.", st.Faulty)
	counter("iogateway_records_late_total", "Stream records rejected as older than the retention horizon.", st.Late)
	gauge("iogateway_apps", "Distinct applications seen.", int64(st.Apps))

	infos := s.Apps()
	if len(infos) > 0 {
		fmt.Fprintf(ew, "# HELP iogateway_app_records_total Records ingested per application.\n# TYPE iogateway_app_records_total counter\n")
		for _, info := range infos {
			fmt.Fprintf(ew, "iogateway_app_records_total{app=%q} %d\n", info.ID, info.Records)
		}
		fmt.Fprintf(ew, "# HELP iogateway_app_required_bandwidth_bytes_per_second Current application-level required bandwidth (max of the online Eq. 3 sweep).\n# TYPE iogateway_app_required_bandwidth_bytes_per_second gauge\n")
		for _, info := range infos {
			fmt.Fprintf(ew, "iogateway_app_required_bandwidth_bytes_per_second{app=%q} %g\n", info.ID, info.RequiredBandwidth)
		}
		fmt.Fprintf(ew, "# HELP iogateway_app_last_activity_seconds End of the latest phase window seen, in virtual seconds.\n# TYPE iogateway_app_last_activity_seconds gauge\n")
		for _, info := range infos {
			fmt.Fprintf(ew, "iogateway_app_last_activity_seconds{app=%q} %g\n", info.ID, info.LastActivity.Seconds())
		}
		fmt.Fprintf(ew, "# HELP iogateway_app_fault_phases_total Phases per application measured inside an injected fault window.\n# TYPE iogateway_app_fault_phases_total counter\n")
		for _, info := range infos {
			fmt.Fprintf(ew, "iogateway_app_fault_phases_total{app=%q} %d\n", info.ID, info.FaultPhases)
		}
		fmt.Fprintf(ew, "# HELP iogateway_app_retries_total Transient-error retries per application.\n# TYPE iogateway_app_retries_total counter\n")
		for _, info := range infos {
			fmt.Fprintf(ew, "iogateway_app_retries_total{app=%q} %d\n", info.ID, info.Retries)
		}
	}
	if ew.err != nil {
		s.logf("gateway: /metrics write: %v", ew.err)
	}
}

// writeJSON encodes v to the response, reporting (rather than silently
// swallowing) an encode or write failure. A failure here is almost
// always the client hanging up mid-body; the status line is already
// gone, so logging is all that remains.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.logf("gateway: response encode: %v", err)
	}
}
