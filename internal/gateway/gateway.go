// Package gateway implements the collector half of TMIO's streaming mode:
// a long-running telemetry service that accepts many concurrent TCP
// connections speaking the JSON-lines tmio.StreamRecord protocol,
// aggregates each application's rank phases online (the Eq. 3 sweep and
// FTIO period detection run *while* the applications run), and serves the
// results over HTTP — per-app B/B_L/T step series, next-burst predictions,
// and Prometheus metrics.
//
// The paper ships TMIO metrics off-node precisely so FTIO and the I/O
// scheduler can act on them mid-run; this package is that off-node side.
// internal/cluster's predictive limiter can consume the gateway's
// forecasts through Config.Forecasts, closing the TMIO → FTIO → scheduler
// loop over a real network boundary.
//
// Ingest is built for graceful degradation, never unbounded growth: each
// connection gets its own reader goroutine, a bounded record queue with
// drop-oldest backpressure, and a read deadline; shutdown stops accepting,
// unblocks readers, and drains every queue before returning.
package gateway

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"iobehind/internal/tmio"
)

// Config tunes the gateway. The zero value selects the defaults noted on
// each field.
type Config struct {
	// QueueDepth bounds each connection's in-flight record queue. When
	// the aggregator falls behind, the oldest queued record is dropped
	// and counted rather than growing without bound. Defaults to 1024.
	QueueDepth int
	// ReadTimeout is the per-read deadline on ingest connections; a
	// silent peer is cut after this long. Defaults to 30s.
	ReadTimeout time.Duration
	// MaxLineBytes bounds one JSON line. Defaults to 1 MiB.
	MaxLineBytes int
	// FTIOBins is the DFT resolution for next-burst prediction.
	// Defaults to 128.
	FTIOBins int
	// MinConfidence is the spectral-confidence floor below which Predict
	// reports "no forecast". Defaults to 0.1.
	MinConfidence float64
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	if c.FTIOBins <= 0 {
		c.FTIOBins = 128
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.1
	}
	return c
}

// Stats is a snapshot of the gateway's ingest counters (the numbers
// behind /metrics).
type Stats struct {
	ConnsTotal   int64 // connections ever accepted
	ConnsActive  int64 // currently open
	Ingested     int64 // records aggregated
	Dropped      int64 // records discarded by queue backpressure
	DecodeErrors int64 // lines that failed to parse
	Faulty       int64 // records marked as measured inside a fault window
	Apps         int   // distinct applications seen
}

// Server is the telemetry gateway. Create with New, feed it with Serve
// (TCP ingest) and Handler (HTTP query surface), stop with Shutdown.
type Server struct {
	cfg Config
	reg registry

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connSeq      atomic.Int64
	connsTotal   atomic.Int64
	connsActive  atomic.Int64
	ingested     atomic.Int64
	dropped      atomic.Int64
	decodeErrors atomic.Int64
	faulty       atomic.Int64

	// ingestHook, when non-nil, runs before each record is aggregated;
	// tests use it to simulate a slow aggregator.
	ingestHook func()
}

// New creates a gateway server.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.reg.init()
	return s
}

// Serve accepts ingest connections on ln until Shutdown (which returns
// nil here) or a listener error. Each connection is handled on its own
// goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.connsActive.Add(1)
		go s.handle(c)
	}
}

// Shutdown stops accepting, unblocks in-flight readers, and waits for
// every connection's queue to drain. If ctx expires first, remaining
// connections are force-closed and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Expire pending reads; queued records still drain through the
	// consumers before handle() returns.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the ingest counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return Stats{
		ConnsTotal:   s.connsTotal.Load(),
		ConnsActive:  active,
		Ingested:     s.ingested.Load(),
		Dropped:      s.dropped.Load(),
		DecodeErrors: s.decodeErrors.Load(),
		Faulty:       s.faulty.Load(),
		Apps:         s.reg.len(),
	}
}

// handle runs one ingest connection: a reader goroutine (this one) that
// parses lines into a bounded queue with drop-oldest backpressure, and a
// consumer goroutine that feeds the aggregation registry. The consumer
// always drains the queue before the connection is released, so shutdown
// never discards records that were already accepted.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.connsActive.Add(-1)
		c.Close()
	}()

	// Records without an App field (a run that predates the identifier,
	// or a single-run tracer with no StreamID) demultiplex by connection.
	fallbackID := fmt.Sprintf("conn-%d", s.connSeq.Add(1))

	queue := make(chan tmio.StreamRecord, s.cfg.QueueDepth)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for rec := range queue {
			if s.ingestHook != nil {
				s.ingestHook()
			}
			s.reg.ingest(rec, fallbackID)
			s.ingested.Add(1)
			if rec.Faulty {
				s.faulty.Add(1)
			}
		}
	}()

	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64<<10), s.cfg.MaxLineBytes)
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				s.logf("gateway: %s: read: %v", fallbackID, err)
			}
			break
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// Unknown fields and future schema versions are tolerated,
		// truncated or torn lines rejected — see tmio.DecodeStreamRecord,
		// the fuzz-tested decode path shared with every other consumer.
		rec, err := tmio.DecodeStreamRecord(line)
		if err != nil {
			s.decodeErrors.Add(1)
			continue
		}
		select {
		case queue <- rec:
		default:
			// Queue full: drop the oldest queued record to admit the
			// newest (fresh telemetry is worth more than stale).
			select {
			case <-queue:
				s.dropped.Add(1)
			default:
			}
			select {
			case queue <- rec:
			default:
				s.dropped.Add(1)
			}
		}
	}
	close(queue)
	<-drained
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
