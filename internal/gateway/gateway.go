// Package gateway implements the collector half of TMIO's streaming mode:
// a long-running telemetry service that accepts many concurrent TCP
// connections speaking the tmio.StreamRecord protocol — binary frames or
// JSON lines, sniffed per connection (docs/STREAM_FORMAT.md) —
// aggregates each application's rank phases online (the Eq. 3 sweep and
// FTIO period detection run *while* the applications run), and serves the
// results over HTTP — per-app B/B_L/T step series, next-burst predictions,
// and Prometheus metrics.
//
// The paper ships TMIO metrics off-node precisely so FTIO and the I/O
// scheduler can act on them mid-run; this package is that off-node side.
// internal/cluster's predictive limiter can consume the gateway's
// forecasts through Config.Forecasts, closing the TMIO → FTIO → scheduler
// loop over a real network boundary.
//
// Ingest is built for graceful degradation, never unbounded growth: each
// connection gets its own reader goroutine, a bounded record queue with
// drop-oldest backpressure, and a read deadline; shutdown stops accepting,
// unblocks readers, and drains every queue before returning.
package gateway

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"iobehind/internal/des"
	"iobehind/internal/tmio"
)

// Config tunes the gateway. The zero value selects the defaults noted on
// each field.
type Config struct {
	// QueueDepth bounds each connection's in-flight record queue. When
	// the aggregator falls behind, the oldest queued record is dropped
	// and counted rather than growing without bound. Defaults to 1024.
	QueueDepth int
	// ReadTimeout is the per-read deadline on ingest connections; a
	// silent peer is cut after this long. Defaults to 30s.
	ReadTimeout time.Duration
	// MaxLineBytes bounds one JSON line. Defaults to 1 MiB.
	MaxLineBytes int
	// FTIOBins is the DFT resolution for next-burst prediction.
	// Defaults to 128.
	FTIOBins int
	// MinConfidence is the spectral-confidence floor below which Predict
	// reports "no forecast". Defaults to 0.1.
	MinConfidence float64
	// RetentionWindow, when > 0, bounds each application's retained
	// history in *virtual* time: once an app's activity frontier moves
	// past the window, closed regions older than (frontier − window) are
	// compacted into a fixed summary (exact running max plus a coarsened
	// tail of at most RetentionTail points) and the FTIO signal slices
	// are pruned to the same horizon, so per-app memory is bounded by
	// the window's occupancy instead of growing for the life of the run.
	// Records arriving behind an app's horizon are rejected and counted
	// in Stats.Late. 0 (the default) retains everything.
	RetentionWindow des.Duration
	// RetentionTail bounds the coarsened summary kept per compacted
	// sweep. Defaults to 64 when retention is active.
	RetentionTail int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	if c.FTIOBins <= 0 {
		c.FTIOBins = 128
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.1
	}
	return c
}

// Stats is a snapshot of the gateway's ingest counters (the numbers
// behind /metrics).
type Stats struct {
	ConnsTotal   int64 // connections ever accepted
	ConnsActive  int64 // currently open
	Ingested     int64 // records aggregated
	Dropped      int64 // records discarded by queue backpressure
	DecodeErrors int64 // lines that failed to parse
	Faulty       int64 // records marked as measured inside a fault window
	Late         int64 // records rejected as older than the retention horizon
	Apps         int   // distinct applications seen
}

// Server is the telemetry gateway. Create with New, feed it with Serve
// (TCP ingest) and Handler (HTTP query surface), stop with Shutdown.
type Server struct {
	cfg Config
	reg registry

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connSeq      atomic.Int64
	connsTotal   atomic.Int64
	ingested     atomic.Int64
	dropped      atomic.Int64
	decodeErrors atomic.Int64
	faulty       atomic.Int64

	// ingestHook, when non-nil, runs before each record is aggregated;
	// tests use it to simulate a slow aggregator.
	ingestHook func()
}

// New creates a gateway server.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.reg.init(s.cfg.RetentionWindow, s.cfg.RetentionTail)
	return s
}

// Serve accepts ingest connections on ln until Shutdown (which returns
// nil here) or a listener error. Each connection is handled on its own
// goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Add(1)
		go s.handle(c)
	}
}

// Shutdown stops accepting, unblocks in-flight readers, and waits for
// every connection's queue to drain. If ctx expires first, remaining
// connections are force-closed and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Expire pending reads; queued records still drain through the
	// consumers before handle() returns.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the ingest counters. ConnsActive is derived from the
// connection set itself — the single source of truth that Serve adds to
// and handle deletes from — so it can never disagree with the set the
// way a separately maintained counter transiently could.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return Stats{
		ConnsTotal:   s.connsTotal.Load(),
		ConnsActive:  active,
		Ingested:     s.ingested.Load(),
		Dropped:      s.dropped.Load(),
		DecodeErrors: s.decodeErrors.Load(),
		Faulty:       s.faulty.Load(),
		Late:         s.reg.late.Load(),
		Apps:         s.reg.len(),
	}
}

// handle runs one ingest connection: a reader goroutine (this one) that
// parses frames or lines into a bounded queue with drop-oldest
// backpressure, and a consumer goroutine that feeds the aggregation
// registry. The consumer always drains the queue before the connection
// is released, so shutdown never discards records that were already
// accepted.
//
// The protocol is sniffed from the first two bytes: the binary frame
// magic can never begin a JSON line, so new producers speak frames and
// old producers fall back to JSON lines on the same listener.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	// Records without an App field (a run that predates the identifier,
	// or a single-run tracer with no StreamID) demultiplex by connection.
	fallbackID := fmt.Sprintf("conn-%d", s.connSeq.Add(1))

	queue := make(chan tmio.StreamRecord, s.cfg.QueueDepth)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for rec := range queue {
			if s.ingestHook != nil {
				s.ingestHook()
			}
			s.reg.ingest(rec, fallbackID)
			s.ingested.Add(1)
			if rec.Faulty {
				s.faulty.Add(1)
			}
		}
	}()

	enqueue := func(rec tmio.StreamRecord) {
		select {
		case queue <- rec:
		default:
			// Queue full: drop the oldest queued record to admit the
			// newest (fresh telemetry is worth more than stale).
			select {
			case <-queue:
				s.dropped.Add(1)
			default:
			}
			select {
			case queue <- rec:
			default:
				s.dropped.Add(1)
			}
		}
	}

	r := bufio.NewReaderSize(c, 64<<10)
	c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	first, _ := r.Peek(2)
	if tmio.SniffBinary(first) {
		s.serveFrames(c, r, fallbackID, enqueue)
	} else {
		s.serveLines(c, r, fallbackID, enqueue)
	}
	close(queue)
	<-drained
}

// serveFrames is the binary ingest loop: fixed header, validated length
// prefix, payload into a pooled buffer, then the shared fuzz-tested
// tmio.DecodeFrame. A bad header is connection-fatal (without a
// trustworthy length there is no resync point), but a bad payload is
// not: the frame boundary was sound, so the stream resynchronizes at
// the next header.
func (s *Server) serveFrames(c net.Conn, r *bufio.Reader, fallbackID string, enqueue func(tmio.StreamRecord)) {
	hdr := make([]byte, tmio.FrameHeaderLen)
	buf := tmio.GetFrameBuf(64 << 10)
	defer func() { tmio.PutFrameBuf(buf) }()
	recs := make([]tmio.StreamRecord, 0, 256)
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err != io.EOF {
				s.logf("gateway: %s: read: %v", fallbackID, err)
			}
			return
		}
		payload, _, err := tmio.FrameInfo(hdr)
		if err != nil {
			s.decodeErrors.Add(1)
			s.logf("gateway: %s: frame: %v", fallbackID, err)
			return
		}
		buf = tmio.GrowFrameBuf(buf, tmio.FrameHeaderLen+payload)
		frame := (*buf)[:tmio.FrameHeaderLen+payload]
		copy(frame, hdr)
		if _, err := io.ReadFull(r, frame[tmio.FrameHeaderLen:]); err != nil {
			s.logf("gateway: %s: read: %v", fallbackID, err)
			return
		}
		recs, _, err = tmio.DecodeFrame(recs[:0], frame)
		if err != nil {
			s.decodeErrors.Add(1)
			continue
		}
		for _, rec := range recs {
			enqueue(rec)
		}
	}
}

// serveLines is the JSON-lines ingest loop. Unlike the bufio.Scanner it
// replaces, an oversized line (> MaxLineBytes) is not connection-fatal:
// the loop discards bytes up to the next newline, counts one decode
// error, and keeps reading — one misbehaving print must not silence a
// producer's whole remaining run.
func (s *Server) serveLines(c net.Conn, r *bufio.Reader, fallbackID string, enqueue func(tmio.StreamRecord)) {
	var line []byte
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		line = line[:0]
		tooLong := false
		var rerr error
		for {
			chunk, err := r.ReadSlice('\n')
			if !tooLong {
				if len(line)+len(chunk) > s.cfg.MaxLineBytes {
					tooLong = true
					line = line[:0]
				} else {
					line = append(line, chunk...)
				}
			}
			if err == bufio.ErrBufferFull {
				continue // no newline yet: keep accumulating (or skipping)
			}
			rerr = err
			break
		}
		if tooLong {
			s.decodeErrors.Add(1)
			s.logf("gateway: %s: line exceeds %d bytes, skipped", fallbackID, s.cfg.MaxLineBytes)
		}
		if rerr != nil && rerr != io.EOF {
			s.logf("gateway: %s: read: %v", fallbackID, rerr)
			return
		}
		if !tooLong {
			if trimmed := bytes.TrimSpace(line); len(trimmed) != 0 {
				// Unknown fields and future schema versions are tolerated,
				// truncated or torn lines rejected — see
				// tmio.DecodeStreamRecord, the fuzz-tested decode path
				// shared with every other consumer.
				rec, err := tmio.DecodeStreamRecord(trimmed)
				if err != nil {
					s.decodeErrors.Add(1)
				} else {
					enqueue(rec)
				}
			}
		}
		if rerr != nil {
			return // EOF after processing the final (unterminated) line
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
