package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/tmio"
)

// TestFaultCoverIncremental pins the semantics the old per-query
// mergeSpans provided, now maintained incrementally at ingest via
// metrics.InsertInterval: overlapping spans merge, touching spans merge
// into one, and the cover stays sorted regardless of arrival order.
func TestFaultCoverIncremental(t *testing.T) {
	sec := func(s float64) des.Time { return des.Time(s * float64(des.Second)) }
	var cover []metrics.Interval
	for _, iv := range []metrics.Interval{
		{Start: sec(5), End: sec(6)},
		{Start: 0, End: sec(1)},
		{Start: sec(0.5), End: sec(2)}, // overlaps the second
		{Start: sec(2), End: sec(3)},   // touches: still one span
	} {
		cover = metrics.InsertInterval(cover, iv)
	}
	want := []metrics.Interval{{Start: 0, End: sec(3)}, {Start: sec(5), End: sec(6)}}
	if len(cover) != len(want) {
		t.Fatalf("merged %d spans, want %d: %+v", len(cover), len(want), cover)
	}
	for i := range want {
		if cover[i] != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, cover[i], want[i])
		}
	}
	if metrics.InsertInterval(nil, metrics.Interval{}) != nil {
		t.Fatal("inserting an empty interval into nil must stay nil")
	}
}

// TestFaultAnnotationsSurface streams records carrying fault marks and
// retry counts into a live gateway and checks every query surface exposes
// them: Stats, AppInfo, the series endpoint, and /metrics.
func TestFaultAnnotationsSurface(t *testing.T) {
	s, addr, stop := startGateway(t, Config{})
	defer stop()

	sink, err := tmio.DialSinkWith(addr, tmio.SinkOptions{AppID: "faulty-app"})
	if err != nil {
		t.Fatal(err)
	}
	recs := []tmio.StreamRecord{
		{V: tmio.StreamVersion, Rank: 0, Phase: 0, TsSec: 0, TeSec: 1, B: 5e6, Faulty: true, Retries: 3},
		{V: tmio.StreamVersion, Rank: 0, Phase: 1, TsSec: 1, TeSec: 2, B: 5e6},
		{V: tmio.StreamVersion, Rank: 0, Phase: 2, TsSec: 2.5, TeSec: 3, B: 5e6, Faulty: true, Retries: 1},
	}
	for _, rec := range recs {
		if err := sink.Emit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "records ingested", func() bool { return s.Stats().Ingested == 3 })

	if got := s.Stats().Faulty; got != 2 {
		t.Fatalf("Stats().Faulty = %d, want 2", got)
	}
	info, ok := s.AppInfo("faulty-app")
	if !ok {
		t.Fatal("app not registered")
	}
	if info.FaultPhases != 2 || info.Retries != 4 {
		t.Fatalf("AppInfo fault phases/retries = %d/%d, want 2/4", info.FaultPhases, info.Retries)
	}
	series, ok := s.AppSeries("faulty-app")
	if !ok {
		t.Fatal("no series for app")
	}
	if len(series.Faults) != 2 || series.Retries != 4 {
		t.Fatalf("AppSeries faults/retries = %d/%d, want 2/4", len(series.Faults), series.Retries)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body)
	}

	var decoded struct {
		Faults []struct {
			Ts float64 `json:"ts"`
			Te float64 `json:"te"`
		} `json:"faults"`
		Retries int64 `json:"retries"`
	}
	if err := json.Unmarshal([]byte(get("/apps/faulty-app/series")), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Faults) != 2 || decoded.Retries != 4 {
		t.Fatalf("series endpoint faults/retries = %d/%d, want 2/4", len(decoded.Faults), decoded.Retries)
	}
	if decoded.Faults[0].Ts != 0 || decoded.Faults[0].Te != 1 {
		t.Fatalf("first fault span = %+v, want [0,1]", decoded.Faults[0])
	}

	metricsBody := get("/metrics")
	for _, want := range []string{
		"iogateway_records_faulty_total 2",
		`iogateway_app_fault_phases_total{app="faulty-app"} 2`,
		`iogateway_app_retries_total{app="faulty-app"} 4`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}
}
