package gateway

import (
	"sort"
	"sync"

	"iobehind/internal/des"
	"iobehind/internal/ftio"
	"iobehind/internal/metrics"
	"iobehind/internal/region"
	"iobehind/internal/sched"
	"iobehind/internal/tmio"
)

// timeOf converts a streamed seconds value back into virtual time.
// Negative inputs clamp to zero (virtual time starts at 0).
func timeOf(sec float64) des.Time { return des.Time(des.DurationOf(sec)) }

// RecordPhase converts a streamed record into its required-bandwidth
// region phase — the exact input the offline report feeds region.Sweep,
// so online and offline aggregation over the same records agree
// point-for-point.
func RecordPhase(rec tmio.StreamRecord) region.Phase {
	return region.Phase{
		Rank:  rec.Rank,
		Index: rec.Phase,
		Start: timeOf(rec.TsSec),
		End:   timeOf(rec.TeSec),
		Value: rec.B,
	}
}

// RecordLimitPhase converts a record's applied-limit measurement (B_L).
// ok is false when the phase carried no limit.
func RecordLimitPhase(rec tmio.StreamRecord) (region.Phase, bool) {
	if rec.BL <= 0 {
		return region.Phase{}, false
	}
	ph := RecordPhase(rec)
	ph.Value = rec.BL
	return ph, true
}

// RecordThroughputPhase converts a record's transfer window (T). ok is
// false when the record carries no completed-transfer window.
func RecordThroughputPhase(rec tmio.StreamRecord) (region.Phase, bool) {
	if rec.T <= 0 || rec.TteSec <= rec.TtsSec {
		return region.Phase{}, false
	}
	return region.Phase{
		Rank:  rec.Rank,
		Index: rec.Phase,
		Start: timeOf(rec.TtsSec),
		End:   timeOf(rec.TteSec),
		Value: rec.T,
	}, true
}

// appState is one application's live aggregation. Its mutex serializes
// the per-connection consumer goroutines feeding it against HTTP queries
// reading it (region.OnlineSweep itself is not goroutine-safe).
type appState struct {
	mu      sync.Mutex
	id      string
	b       *region.OnlineSweep
	bl      *region.OnlineSweep
	t       *region.OnlineSweep
	bPhases []region.Phase // activity signal for FTIO detection
	tPhases []region.Phase // actual burst windows
	records int64
	version int
	lastTe  des.Time

	// Fault annotations: phases marked Faulty by the tracer (their spans
	// are merged for the series surface) and the summed retry count.
	faultPhases int64
	retries     int64
	faultSpans  []metrics.Interval
}

// registry demultiplexes records into per-app state.
type registry struct {
	mu   sync.Mutex
	apps map[string]*appState
}

func (r *registry) init() { r.apps = make(map[string]*appState) }

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.apps)
}

func (r *registry) get(id string) (*appState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.apps[id]
	return st, ok
}

func (r *registry) getOrCreate(id string) *appState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.apps[id]
	if !ok {
		st = &appState{
			id: id,
			b:  region.NewOnlineSweep("B"),
			bl: region.NewOnlineSweep("B_L"),
			t:  region.NewOnlineSweep("T"),
		}
		r.apps[id] = st
	}
	return st
}

func (r *registry) ids() []string {
	r.mu.Lock()
	ids := make([]string, 0, len(r.apps))
	for id := range r.apps {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// ingest demultiplexes one record (by its App field, falling back to the
// connection identity) and feeds the app's online sweeps.
func (r *registry) ingest(rec tmio.StreamRecord, fallbackID string) {
	id := rec.App
	if id == "" {
		id = fallbackID
	}
	st := r.getOrCreate(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.records++
	if rec.V > st.version {
		st.version = rec.V
	}
	if rec.Faulty {
		st.faultPhases++
	}
	st.retries += int64(rec.Retries)
	ph := RecordPhase(rec)
	if ph.End > ph.Start {
		st.b.Add(ph)
		st.bPhases = append(st.bPhases, ph)
		if rec.Faulty {
			st.faultSpans = append(st.faultSpans,
				metrics.Interval{Start: ph.Start, End: ph.End})
		}
		if ph.End > st.lastTe {
			st.lastTe = ph.End
		}
	}
	if blPh, ok := RecordLimitPhase(rec); ok {
		st.bl.Add(blPh)
	}
	if tPh, ok := RecordThroughputPhase(rec); ok {
		st.t.Add(tPh)
		st.tPhases = append(st.tPhases, tPh)
	}
}

// AppInfo summarizes one application's live state.
type AppInfo struct {
	ID string
	// Records ingested so far.
	Records int64
	// Version is the highest schema version seen from this app.
	Version int
	// RequiredBandwidth is the current max of the online B sweep.
	RequiredBandwidth float64
	// LastActivity is the end of the latest phase window seen.
	LastActivity des.Time
	// FaultPhases counts records marked as measured inside a fault window;
	// Retries sums their transient-error retry counts.
	FaultPhases int64
	Retries     int64
}

// Apps lists the applications seen so far, sorted by ID.
func (s *Server) Apps() []AppInfo {
	ids := s.reg.ids()
	infos := make([]AppInfo, 0, len(ids))
	for _, id := range ids {
		if info, ok := s.AppInfo(id); ok {
			infos = append(infos, info)
		}
	}
	return infos
}

// AppInfo returns one application's summary.
func (s *Server) AppInfo(id string) (AppInfo, bool) {
	st, ok := s.reg.get(id)
	if !ok {
		return AppInfo{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return AppInfo{
		ID:                st.id,
		Records:           st.records,
		Version:           st.version,
		RequiredBandwidth: st.b.Max(),
		LastActivity:      st.lastTe,
		FaultPhases:       st.faultPhases,
		Retries:           st.retries,
	}, true
}

// AppSeries is a snapshot of one application's online step series.
type AppSeries struct {
	ID string
	// B is the Eq. 3 required-bandwidth sweep, B_L the applied-limit
	// sweep, T the achieved-throughput sweep — the same three series the
	// offline report derives, available mid-run.
	B, BL, T *metrics.Series
	// Faults is the union of the faulty phases' windows (sorted,
	// overlapping spans merged): the intervals over which B was measured
	// against degraded hardware and excluded from limiter feedback.
	Faults []metrics.Interval
	// Retries sums the app's transient-error retries streamed so far.
	Retries int64
}

// AppSeries snapshots the application's B/B_L/T series. Later ingests do
// not mutate the returned series.
func (s *Server) AppSeries(id string) (AppSeries, bool) {
	st, ok := s.reg.get(id)
	if !ok {
		return AppSeries{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return AppSeries{
		ID:      st.id,
		B:       st.b.Series(),
		BL:      st.bl.Series(),
		T:       st.t.Series(),
		Faults:  mergeSpans(st.faultSpans),
		Retries: st.retries,
	}, true
}

// mergeSpans unions possibly-overlapping intervals into a sorted, disjoint
// cover. The input is not mutated.
func mergeSpans(spans []metrics.Interval) []metrics.Interval {
	if len(spans) == 0 {
		return nil
	}
	sorted := make([]metrics.Interval, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Prediction is a next-burst forecast for one application, derived from
// FTIO period detection over the streamed phases.
type Prediction struct {
	App        string
	Period     des.Duration
	Frequency  float64
	Confidence float64
	// BurstLen is the mean transfer-window length (falling back to the
	// mean phase window when no transfer windows were streamed).
	BurstLen des.Duration
	// LastBurst is the start of the most recent observed burst; Next is
	// the first predicted burst strictly after the query time.
	LastBurst des.Time
	Next      des.Time
}

// Forecast converts the prediction into the scheduler's forecast form.
func (p Prediction) Forecast() sched.Forecast {
	return sched.Forecast{Period: p.Period, BurstLen: p.BurstLen, LastBurst: p.LastBurst}
}

// Predict runs FTIO period detection over everything streamed for the
// app so far and forecasts the first burst after now (now <= 0 means
// "the app's latest activity"). ok is false while the app is unknown,
// has too little history, or shows no confident periodicity.
func (s *Server) Predict(id string, now des.Time) (Prediction, bool) {
	st, ok := s.reg.get(id)
	if !ok {
		return Prediction{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	// Prefer the transfer windows as the activity signal: the actual
	// bursts are sharply periodic, while the required-bandwidth windows
	// tile the timeline (one per compute phase) and look near-constant
	// to a DFT.
	bursts := st.tPhases
	if len(bursts) < 4 {
		bursts = st.bPhases
	}
	if len(bursts) < 4 {
		return Prediction{}, false
	}
	res, err := ftio.DetectPhases(bursts, s.cfg.FTIOBins)
	if err != nil || res.Period <= 0 || res.Confidence < s.cfg.MinConfidence {
		return Prediction{}, false
	}
	var last des.Time
	var total des.Duration
	for _, ph := range bursts {
		if ph.Start > last {
			last = ph.Start
		}
		total += ph.Duration()
	}
	if now <= 0 {
		now = st.lastTe
	}
	return Prediction{
		App:        st.id,
		Period:     res.Period,
		Frequency:  res.Frequency,
		Confidence: res.Confidence,
		BurstLen:   total / des.Duration(len(bursts)),
		LastBurst:  last,
		Next:       res.PredictNext(last, now),
	}, true
}
