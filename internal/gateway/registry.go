package gateway

import (
	"sort"
	"sync"
	"sync/atomic"

	"iobehind/internal/des"
	"iobehind/internal/ftio"
	"iobehind/internal/metrics"
	"iobehind/internal/region"
	"iobehind/internal/sched"
	"iobehind/internal/tmio"
)

// timeOf converts a streamed seconds value back into virtual time.
// Negative inputs clamp to zero (virtual time starts at 0).
func timeOf(sec float64) des.Time { return des.Time(des.DurationOf(sec)) }

// RecordPhase converts a streamed record into its required-bandwidth
// region phase — the exact input the offline report feeds region.Sweep,
// so online and offline aggregation over the same records agree
// point-for-point.
func RecordPhase(rec tmio.StreamRecord) region.Phase {
	return region.Phase{
		Rank:  rec.Rank,
		Index: rec.Phase,
		Start: timeOf(rec.TsSec),
		End:   timeOf(rec.TeSec),
		Value: rec.B,
	}
}

// RecordLimitPhase converts a record's applied-limit measurement (B_L).
// ok is false when the phase carried no limit.
func RecordLimitPhase(rec tmio.StreamRecord) (region.Phase, bool) {
	if rec.BL <= 0 {
		return region.Phase{}, false
	}
	ph := RecordPhase(rec)
	ph.Value = rec.BL
	return ph, true
}

// RecordThroughputPhase converts a record's transfer window (T). ok is
// false when the record carries no completed-transfer window.
func RecordThroughputPhase(rec tmio.StreamRecord) (region.Phase, bool) {
	if rec.T <= 0 || rec.TteSec <= rec.TtsSec {
		return region.Phase{}, false
	}
	return region.Phase{
		Rank:  rec.Rank,
		Index: rec.Phase,
		Start: timeOf(rec.TtsSec),
		End:   timeOf(rec.TteSec),
		Value: rec.T,
	}, true
}

// appState is one application's live aggregation.
//
// The lock is an RWMutex because every query is a pure read: the
// incremental sweeps are left fully consistent by each Add, so AppInfo,
// AppSeries, /metrics scrapes, and Predict's signal snapshot all run
// under RLock and never stall ingest behind a slow reader — only the
// per-connection consumer goroutines take the write side.
//
// Lock hierarchy: a shard lock (registry lookup) is never held while an
// appState lock is taken, and appState locks never nest; ingest and
// queries each acquire at most one lock at a time beyond the lookup.
type appState struct {
	mu      sync.RWMutex
	id      string
	b       *region.IncrementalSweep
	bl      *region.IncrementalSweep
	t       *region.IncrementalSweep
	bPhases []region.Phase // activity signal for FTIO detection
	tPhases []region.Phase // actual burst windows
	records int64
	version int
	lastTe  des.Time

	// Fault annotations: the merged cover of phases marked Faulty by the
	// tracer, maintained incrementally as spans arrive (sorted, disjoint,
	// touching spans merged), and the summed retry count.
	faultPhases int64
	retries     int64
	faultCover  []metrics.Interval

	// nextCompact is the lastTe threshold at which retention runs again;
	// the window/4 hysteresis keeps compaction amortized instead of
	// scanning chunks on every record.
	nextCompact des.Time
}

// appShards fixes the registry's stripe count. Power of two so the hash
// reduces with a mask; 64 stripes keep cross-app ingest contention
// negligible at any realistic core count.
const appShards = 64

type appShard struct {
	mu   sync.RWMutex
	apps map[string]*appState
}

// registry demultiplexes records into per-app state. The app map is
// striped appShards ways by FNV-1a of the app ID, and each stripe's
// lookup takes only a read lock on the steady-state path — creation
// (the write lock) happens once per app per stripe, counted in slow so
// the fast path is pinned by its own test.
type registry struct {
	shards [appShards]appShard

	// window > 0 bounds each app's retained history in virtual time;
	// tailCap bounds the coarsened summary kept for compacted history.
	window  des.Duration
	tailCap int

	// slow counts write-locked getOrCreate passes (app creations, plus
	// the rare lost race); late counts records rejected because they
	// arrived behind an app's retention horizon.
	slow atomic.Int64
	late atomic.Int64
}

func (r *registry) init(window des.Duration, tailCap int) {
	for i := range r.shards {
		r.shards[i].apps = make(map[string]*appState)
	}
	r.window = window
	r.tailCap = tailCap
}

// shardOf hashes the app ID with inline FNV-1a (allocation-free, unlike
// hash/fnv's boxed hasher) and reduces by mask.
func (r *registry) shardOf(id string) *appShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &r.shards[h&(appShards-1)]
}

func (r *registry) len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.apps)
		sh.mu.RUnlock()
	}
	return n
}

func (r *registry) get(id string) (*appState, bool) {
	sh := r.shardOf(id)
	sh.mu.RLock()
	st, ok := sh.apps[id]
	sh.mu.RUnlock()
	return st, ok
}

// getOrCreate resolves the app's state with a read-locked fast path:
// after the first record of an app, every subsequent lookup is a shared
// lock and one map read. Only a miss falls through to the write lock,
// which re-checks under exclusion before creating.
func (r *registry) getOrCreate(id string) *appState {
	sh := r.shardOf(id)
	sh.mu.RLock()
	st, ok := sh.apps[id]
	sh.mu.RUnlock()
	if ok {
		return st
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r.slow.Add(1)
	if st, ok := sh.apps[id]; ok {
		return st
	}
	st = &appState{
		id: id,
		b:  region.NewIncrementalSweep("B"),
		bl: region.NewIncrementalSweep("B_L"),
		t:  region.NewIncrementalSweep("T"),
	}
	if r.tailCap > 0 {
		st.b.SetTailCap(r.tailCap)
		st.bl.SetTailCap(r.tailCap)
		st.t.SetTailCap(r.tailCap)
	}
	sh.apps[id] = st
	return st
}

func (r *registry) ids() []string {
	var ids []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for id := range sh.apps {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// ingest demultiplexes one record (by its App field, falling back to the
// connection identity) and feeds the app's online sweeps. The shard lock
// is released before the app lock is taken (lock hierarchy: never both).
func (r *registry) ingest(rec tmio.StreamRecord, fallbackID string) {
	id := rec.App
	if id == "" {
		id = fallbackID
	}
	st := r.getOrCreate(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.records++
	if rec.V > st.version {
		st.version = rec.V
	}
	if rec.Faulty {
		st.faultPhases++
	}
	st.retries += int64(rec.Retries)
	late := false
	ph := RecordPhase(rec)
	if ph.End > ph.Start {
		if st.b.Add(ph) {
			st.bPhases = append(st.bPhases, ph)
			if rec.Faulty {
				st.faultCover = metrics.InsertInterval(st.faultCover,
					metrics.Interval{Start: ph.Start, End: ph.End})
			}
			if ph.End > st.lastTe {
				st.lastTe = ph.End
			}
		} else {
			late = true
		}
	}
	if blPh, ok := RecordLimitPhase(rec); ok && !st.bl.Add(blPh) {
		late = true
	}
	if tPh, ok := RecordThroughputPhase(rec); ok {
		if st.t.Add(tPh) {
			st.tPhases = append(st.tPhases, tPh)
		} else {
			late = true
		}
	}
	if late {
		r.late.Add(1)
	}
	r.maybeCompact(st)
}

// maybeCompact enforces the retention horizon: once the app's activity
// frontier has moved window past the previous compaction point, history
// older than (frontier − window) is folded into each sweep's fixed
// summary, and the FTIO signal slices and fault cover are pruned to the
// same horizon. Runs under the app write lock held by ingest.
func (r *registry) maybeCompact(st *appState) {
	if r.window <= 0 {
		return
	}
	cutoff := st.lastTe - des.Time(r.window)
	if cutoff <= 0 || cutoff < st.nextCompact {
		return
	}
	st.b.Compact(cutoff)
	st.bl.Compact(cutoff)
	st.t.Compact(cutoff)
	st.bPhases = prunePhases(st.bPhases, cutoff)
	st.tPhases = prunePhases(st.tPhases, cutoff)
	st.faultCover = pruneCover(st.faultCover, cutoff)
	st.nextCompact = cutoff + des.Time(r.window/4)
}

// prunePhases filters in place, keeping phases that end at or after the
// cutoff. The backing array is reused, so steady state allocates nothing
// and the high-water capacity is bounded by the window's occupancy.
func prunePhases(phs []region.Phase, cutoff des.Time) []region.Phase {
	k := 0
	for _, ph := range phs {
		if ph.End >= cutoff {
			phs[k] = ph
			k++
		}
	}
	return phs[:k]
}

// pruneCover drops fault spans that ended before the cutoff, clipping a
// span that straddles it.
func pruneCover(cover []metrics.Interval, cutoff des.Time) []metrics.Interval {
	k := 0
	for _, iv := range cover {
		if iv.End < cutoff {
			continue
		}
		if iv.Start < cutoff {
			iv.Start = cutoff
		}
		cover[k] = iv
		k++
	}
	return cover[:k]
}

// AppInfo summarizes one application's live state.
type AppInfo struct {
	ID string
	// Records ingested so far.
	Records int64
	// Version is the highest schema version seen from this app.
	Version int
	// RequiredBandwidth is the current max of the online B sweep.
	RequiredBandwidth float64
	// LastActivity is the end of the latest phase window seen.
	LastActivity des.Time
	// FaultPhases counts records marked as measured inside a fault window;
	// Retries sums their transient-error retry counts.
	FaultPhases int64
	Retries     int64
}

// Apps lists the applications seen so far, sorted by ID.
func (s *Server) Apps() []AppInfo {
	ids := s.reg.ids()
	infos := make([]AppInfo, 0, len(ids))
	for _, id := range ids {
		if info, ok := s.AppInfo(id); ok {
			infos = append(infos, info)
		}
	}
	return infos
}

// AppInfo returns one application's summary. A pure read: the max query
// is O(1) against the incremental sweep's maintained aggregate, under a
// shared lock that never blocks other readers.
func (s *Server) AppInfo(id string) (AppInfo, bool) {
	st, ok := s.reg.get(id)
	if !ok {
		return AppInfo{}, false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return AppInfo{
		ID:                st.id,
		Records:           st.records,
		Version:           st.version,
		RequiredBandwidth: st.b.Max(),
		LastActivity:      st.lastTe,
		FaultPhases:       st.faultPhases,
		Retries:           st.retries,
	}, true
}

// AppSeries is a snapshot of one application's online step series.
type AppSeries struct {
	ID string
	// B is the Eq. 3 required-bandwidth sweep, B_L the applied-limit
	// sweep, T the achieved-throughput sweep — the same three series the
	// offline report derives, available mid-run.
	B, BL, T *metrics.Series
	// Faults is the union of the faulty phases' windows (sorted,
	// overlapping spans merged): the intervals over which B was measured
	// against degraded hardware and excluded from limiter feedback.
	Faults []metrics.Interval
	// Retries sums the app's transient-error retries streamed so far.
	Retries int64
}

// AppSeries snapshots the application's B/B_L/T series. Later ingests do
// not mutate the returned series. The fault cover is already merged
// incrementally at ingest, so the snapshot is a copy, not a sort.
func (s *Server) AppSeries(id string) (AppSeries, bool) {
	st, ok := s.reg.get(id)
	if !ok {
		return AppSeries{}, false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return AppSeries{
		ID:      st.id,
		B:       st.b.Series(),
		BL:      st.bl.Series(),
		T:       st.t.Series(),
		Faults:  append([]metrics.Interval(nil), st.faultCover...),
		Retries: st.retries,
	}, true
}

// Prediction is a next-burst forecast for one application, derived from
// FTIO period detection over the streamed phases.
type Prediction struct {
	App        string
	Period     des.Duration
	Frequency  float64
	Confidence float64
	// BurstLen is the mean transfer-window length (falling back to the
	// mean phase window when no transfer windows were streamed).
	BurstLen des.Duration
	// LastBurst is the start of the most recent observed burst; Next is
	// the first predicted burst strictly after the query time.
	LastBurst des.Time
	Next      des.Time
}

// Forecast converts the prediction into the scheduler's forecast form.
func (p Prediction) Forecast() sched.Forecast {
	return sched.Forecast{Period: p.Period, BurstLen: p.BurstLen, LastBurst: p.LastBurst}
}

// Predict runs FTIO period detection over everything streamed for the
// app so far and forecasts the first burst after now (now <= 0 means
// "the app's latest activity"). ok is false while the app is unknown,
// has too little history, or shows no confident periodicity.
//
// The burst windows are copied out under the read lock and the O(n) DFT
// runs on the copy: a forecast query never holds the app lock during
// analysis, so it cannot stall ingest or other readers. The copy is also
// required for correctness — retention prunes the signal slices in
// place, which would race with an aliased snapshot.
func (s *Server) Predict(id string, now des.Time) (Prediction, bool) {
	st, ok := s.reg.get(id)
	if !ok {
		return Prediction{}, false
	}
	st.mu.RLock()
	src := st.tPhases
	if len(src) < 4 {
		// Prefer the transfer windows as the activity signal: the actual
		// bursts are sharply periodic, while the required-bandwidth
		// windows tile the timeline (one per compute phase) and look
		// near-constant to a DFT.
		src = st.bPhases
	}
	if len(src) < 4 {
		st.mu.RUnlock()
		return Prediction{}, false
	}
	bursts := make([]region.Phase, len(src))
	copy(bursts, src)
	lastTe := st.lastTe
	st.mu.RUnlock()

	res, err := ftio.DetectPhases(bursts, s.cfg.FTIOBins)
	if err != nil || res.Period <= 0 || res.Confidence < s.cfg.MinConfidence {
		return Prediction{}, false
	}
	var last des.Time
	var total des.Duration
	for _, ph := range bursts {
		if ph.Start > last {
			last = ph.Start
		}
		total += ph.Duration()
	}
	if now <= 0 {
		now = lastTe
	}
	return Prediction{
		App:        id,
		Period:     res.Period,
		Frequency:  res.Frequency,
		Confidence: res.Confidence,
		BurstLen:   total / des.Duration(len(bursts)),
		LastBurst:  last,
		Next:       res.PredictNext(last, now),
	}, true
}
