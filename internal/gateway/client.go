package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"iobehind/internal/des"
	"iobehind/internal/sched"
)

// PredictClient consumes a gateway's /apps/{id}/predict endpoint and
// turns the answers into scheduler forecasts — the consumer side of the
// paper's TMIO → FTIO → scheduler loop, over a real network boundary.
// internal/cluster's Config.Forecasts can be wired straight to
// ForecastFunc.
type PredictClient struct {
	// BaseURL is the gateway's HTTP root, e.g. "http://127.0.0.1:9008".
	BaseURL string
	// HTTP is the client used for requests; defaults to one with a 2s
	// timeout (a scheduler must not hang on its telemetry source).
	HTTP *http.Client
}

// NewPredictClient creates a client with the default timeout.
func NewPredictClient(baseURL string) *PredictClient {
	return &PredictClient{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 2 * time.Second},
	}
}

// Predict fetches the app's forecast at virtual time now (now <= 0 lets
// the gateway use the app's latest activity). ok is false on any network
// error, unknown app, or low-confidence answer: a scheduler treats all
// three the same way — fall back to reactive behaviour.
func (c *PredictClient) Predict(app string, now des.Time) (sched.Forecast, bool) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 2 * time.Second}
	}
	u := fmt.Sprintf("%s/apps/%s/predict", c.BaseURL, url.PathEscape(app))
	if now > 0 {
		u += fmt.Sprintf("?now=%g", now.Seconds())
	}
	resp, err := httpc.Get(u)
	if err != nil {
		return sched.Forecast{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sched.Forecast{}, false
	}
	var p PredictJSON
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil || !p.OK {
		return sched.Forecast{}, false
	}
	return sched.Forecast{
		Period:    des.DurationOf(p.PeriodSec),
		BurstLen:  des.DurationOf(p.BurstLenSec),
		LastBurst: timeOf(p.LastBurstSec),
	}, true
}

// ForecastFunc adapts the client to internal/cluster's Config.Forecasts
// signature, naming apps by the given function (e.g. job 0 → "job0").
func (c *PredictClient) ForecastFunc(appID func(job int) string) func(int, des.Time) (sched.Forecast, bool) {
	return func(job int, now des.Time) (sched.Forecast, bool) {
		return c.Predict(appID(job), now)
	}
}
