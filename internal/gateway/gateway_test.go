package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iobehind/internal/adio"
	"iobehind/internal/cluster"
	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/region"
	"iobehind/internal/sched"
	"iobehind/internal/tmio"
)

// startGateway spins up a server on a loopback listener and returns it
// with the ingest address and a shutdown helper.
func startGateway(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	s := New(cfg)
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return s, ln.Addr().String(), stop
}

// teeSink fans records out to the gateway and an in-memory copy so tests
// can compare online aggregation against an offline sweep over the exact
// same records.
type teeSink struct {
	tcp     *tmio.TCPSink
	collect *tmio.CollectSink
}

func (s teeSink) Emit(rec tmio.StreamRecord) error {
	s.collect.Emit(rec)
	return s.tcp.Emit(rec)
}

func (s teeSink) Close() error { return s.tcp.Close() }

// runStreamingApp runs one traced simulation that streams every phase to
// the gateway — over binary frames or JSON lines — returning the locally
// collected copy of the records.
func runStreamingApp(t *testing.T, addr, appID string, seed int64, ranks, phases int, bytes int64, binary bool) *tmio.CollectSink {
	t.Helper()
	e := des.NewEngine(seed)
	w := mpi.NewWorld(e, mpi.Config{Size: ranks})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	sys := mpiio.NewSystem(w, fs, adio.Config{SubRequestSize: 1e6})
	tr := tmio.Attach(sys, tmio.Config{
		DisableOverhead: true,
		Strategy:        tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.5},
	})
	tcp, err := tmio.DialSinkWith(addr, tmio.SinkOptions{AppID: appID, Binary: binary})
	if err != nil {
		t.Errorf("%s: dial: %v", appID, err)
		return nil
	}
	collect := &tmio.CollectSink{}
	tr.SetSink(teeSink{tcp: tcp, collect: collect})
	err = w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, appID+".dat")
		var req *mpiio.Request
		for j := 0; j < phases; j++ {
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(int64(j)*bytes, bytes)
			r.Compute(des.Second)
		}
		req.Wait()
		r.Finalize()
	})
	if err != nil {
		t.Errorf("%s: run: %v", appID, err)
	}
	if err := tcp.Close(); err != nil {
		t.Errorf("%s: close sink: %v", appID, err)
	}
	return collect
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func sameSeries(a, b *metrics.Series) error {
	if len(a.Points) != len(b.Points) {
		return fmt.Errorf("len %d != %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return fmt.Errorf("point %d: %+v != %+v", i, a.Points[i], b.Points[i])
		}
	}
	return nil
}

// TestConcurrentAppsOnlineMatchesOffline is the end-to-end acceptance
// test: four concurrent simulated applications — two speaking binary
// frames, two speaking JSON lines, all into the same listener — and for
// each app the gateway's online B/B_L/T step series must equal the
// offline region sweep over the very same records, whichever protocol
// carried them.
func TestConcurrentAppsOnlineMatchesOffline(t *testing.T) {
	s, addr, stop := startGateway(t, Config{})
	defer stop()

	const apps = 4
	collects := make([]*tmio.CollectSink, apps)
	var wg sync.WaitGroup
	for i := 0; i < apps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			collects[i] = runStreamingApp(t, addr, fmt.Sprintf("app-%d", i),
				int64(i+1), 2, 5+i, int64(i+1)*5e6, i%2 == 0)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i := 0; i < apps; i++ {
		id := fmt.Sprintf("app-%d", i)
		want := int64(collects[i].Len())
		if want == 0 {
			t.Fatalf("%s: no records collected", id)
		}
		waitFor(t, id+" ingest", func() bool {
			info, ok := s.AppInfo(id)
			return ok && info.Records == want
		})
		series, ok := s.AppSeries(id)
		if !ok {
			t.Fatalf("%s: missing series", id)
		}

		// The offline truth: region.Sweep over the identical records.
		var bPh, blPh, tPh []region.Phase
		for _, rec := range collects[i].Records {
			bPh = append(bPh, RecordPhase(rec))
			if ph, ok := RecordLimitPhase(rec); ok {
				blPh = append(blPh, ph)
			}
			if ph, ok := RecordThroughputPhase(rec); ok {
				tPh = append(tPh, ph)
			}
		}
		if err := sameSeries(series.B, region.Sweep("B", bPh)); err != nil {
			t.Errorf("%s: B series: %v", id, err)
		}
		if err := sameSeries(series.BL, region.Sweep("B_L", blPh)); err != nil {
			t.Errorf("%s: B_L series: %v", id, err)
		}
		if err := sameSeries(series.T, region.Sweep("T", tPh)); err != nil {
			t.Errorf("%s: T series: %v", id, err)
		}
		if len(blPh) == 0 || len(tPh) == 0 {
			t.Errorf("%s: degenerate input (bl=%d t=%d records)", id, len(blPh), len(tPh))
		}
	}

	st := s.Stats()
	if st.Apps != apps || st.ConnsTotal != apps || st.Dropped != 0 || st.DecodeErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func writeLines(t *testing.T, addr string, lines []string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
}

func recordLine(app string, rank, phase int, ts, te, b float64) string {
	rec := tmio.StreamRecord{V: tmio.StreamVersion, App: app, Rank: rank, Phase: phase,
		TsSec: ts, TeSec: te, B: b}
	buf, _ := json.Marshal(rec)
	return string(buf)
}

// TestOversizedLineKeepsConnection is the regression test for the
// ErrTooLong bug: one line over MaxLineBytes used to kill the whole
// ingest connection (bufio.Scanner gives up, the read loop exits), and
// with it every later record from that producer. The gateway must skip
// to the next newline, count one decode error, and keep reading.
func TestOversizedLineKeepsConnection(t *testing.T) {
	s, addr, stop := startGateway(t, Config{})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	write := func(data string) {
		t.Helper()
		if _, err := conn.Write([]byte(data)); err != nil {
			t.Fatal(err)
		}
	}
	write(recordLine("huge", 0, 0, 0, 0.5, 10) + "\n")
	// 2 MiB on one line, twice the default MaxLineBytes.
	write(`{"app":"huge","junk":"` + strings.Repeat("x", 2<<20) + `"}` + "\n")
	write(recordLine("huge", 0, 1, 1, 1.5, 10) + "\n")
	write(recordLine("huge", 0, 2, 2, 2.5, 10) + "\n")

	waitFor(t, "records after the oversized line", func() bool {
		return s.Stats().Ingested == 3
	})
	st := s.Stats()
	if st.DecodeErrors != 1 {
		t.Fatalf("decode errors = %d, want 1 (the oversized line)", st.DecodeErrors)
	}
	if st.ConnsActive != 1 {
		t.Fatalf("conns active = %d: the connection did not survive", st.ConnsActive)
	}
	info, ok := s.AppInfo("huge")
	if !ok || info.Records != 3 {
		t.Fatalf("app info = %+v ok=%v", info, ok)
	}
}

// writeFrame encodes recs as one binary frame and writes it to conn.
func writeFrame(t *testing.T, conn net.Conn, recs []tmio.StreamRecord) {
	t.Helper()
	buf, err := tmio.EncodeFrame(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// TestFrameResyncAfterBadPayload: a frame whose header is sound but
// whose payload fails to decode costs one decode error, not the
// connection — the validated length prefix is the resync point.
func TestFrameResyncAfterBadPayload(t *testing.T) {
	s, addr, stop := startGateway(t, Config{})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeFrame(t, conn, []tmio.StreamRecord{{App: "resync", Rank: 0, Phase: 0, TeSec: 0.5, B: 1}})
	// Corrupt a frame's first record-length prefix so DecodeFrame rejects
	// the payload; header and length stay valid.
	bad, err := tmio.EncodeFrame([]tmio.StreamRecord{{App: "resync", Rank: 0, Phase: 1, TeSec: 1.5, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad[tmio.FrameHeaderLen] = 1 // recLen = 1: below the v1 minimum
	bad[tmio.FrameHeaderLen+1] = 0
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	writeFrame(t, conn, []tmio.StreamRecord{{App: "resync", Rank: 0, Phase: 2, TeSec: 2.5, B: 1}})

	waitFor(t, "frames after the corrupt payload", func() bool {
		return s.Stats().Ingested == 2
	})
	st := s.Stats()
	if st.DecodeErrors != 1 {
		t.Fatalf("decode errors = %d, want 1", st.DecodeErrors)
	}
	if st.ConnsActive != 1 {
		t.Fatalf("conns active = %d: the connection did not survive", st.ConnsActive)
	}
}

// TestBinaryReconnectMidStream: one application delivers half its
// records, loses the connection, and reconnects to deliver the rest —
// the gateway's online series must still equal the offline sweep over
// all the records (the mid-stream-reconnect acceptance case).
func TestBinaryReconnectMidStream(t *testing.T) {
	s, addr, stop := startGateway(t, Config{})
	defer stop()

	const phases = 10
	all := make([]tmio.StreamRecord, phases)
	for j := range all {
		all[j] = tmio.StreamRecord{V: tmio.StreamVersion, App: "reconn", Rank: 0, Phase: j,
			TsSec: float64(j), TeSec: float64(j) + 0.5, B: 1e6 * float64(j+1)}
	}
	for _, half := range [][]tmio.StreamRecord{all[:phases/2], all[phases/2:]} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		writeFrame(t, conn, half)
		conn.Close()
	}
	waitFor(t, "both halves ingested", func() bool {
		info, ok := s.AppInfo("reconn")
		return ok && info.Records == phases
	})
	series, ok := s.AppSeries("reconn")
	if !ok {
		t.Fatal("missing series")
	}
	var bPh []region.Phase
	for _, rec := range all {
		bPh = append(bPh, RecordPhase(rec))
	}
	if err := sameSeries(series.B, region.Sweep("B", bPh)); err != nil {
		t.Fatalf("B series after reconnect: %v", err)
	}
	if st := s.Stats(); st.DecodeErrors != 0 || st.ConnsTotal != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShutdownDrainsQueuedRecords: records accepted before shutdown must
// be aggregated even when the consumer is slow — graceful drain, not
// abandonment.
func TestShutdownDrainsQueuedRecords(t *testing.T) {
	const n = 100
	s := New(Config{QueueDepth: n + 10})
	s.ingestHook = func() { time.Sleep(500 * time.Microsecond) }
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()

	lines := make([]string, n)
	for i := range lines {
		lines[i] = recordLine("drain", 0, i, float64(i), float64(i)+0.5, 10)
	}
	writeLines(t, ln.Addr().String(), lines)

	// Give the reader a moment to pull the bytes off the socket, then
	// shut down while the slow consumer still has most of the queue.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	st := s.Stats()
	if st.Ingested != n {
		t.Fatalf("ingested %d of %d queued records across shutdown", st.Ingested, n)
	}
	// After a drained shutdown the connection set — the one source of
	// truth behind ConnsActive — must be empty.
	if st.ConnsActive != 0 {
		t.Fatalf("conns active = %d after shutdown, want 0", st.ConnsActive)
	}
}

// TestBackpressureDropsOldest: a deliberately slow aggregator with a tiny
// queue must shed load by dropping the oldest records — bounded memory,
// counted loss, never a stalled reader.
func TestBackpressureDropsOldest(t *testing.T) {
	const n = 300
	s := New(Config{QueueDepth: 4})
	s.ingestHook = func() { time.Sleep(2 * time.Millisecond) }
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking available:", err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()

	lines := make([]string, n)
	for i := range lines {
		lines[i] = recordLine("burst", 0, i, float64(i), float64(i)+0.5, 10)
	}
	start := time.Now()
	writeLines(t, ln.Addr().String(), lines)
	// The writer must not be blocked by the slow consumer: n records at
	// 2ms each would take 600ms if reads were gated on aggregation.
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("sender blocked for %v: reader is gated on the aggregator", elapsed)
	}

	waitFor(t, "connection close", func() bool { return s.Stats().ConnsActive == 0 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-served
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops: queue cannot have stayed bounded")
	}
	if st.Ingested+st.Dropped != n {
		t.Fatalf("ingested %d + dropped %d != %d", st.Ingested, st.Dropped, n)
	}
	// Drop-oldest: the newest record must have survived.
	info, ok := s.AppInfo("burst")
	if !ok {
		t.Fatal("app missing")
	}
	if want := timeOf(float64(n-1) + 0.5); info.LastActivity != want {
		t.Fatalf("latest record dropped: last activity %v, want %v", info.LastActivity, want)
	}
}

// TestDecodeToleranceAndDemux: unknown fields and future versions pass
// through; garbage lines are counted, not fatal; records without an App
// fall back to per-connection identities.
func TestDecodeToleranceAndDemux(t *testing.T) {
	s, addr, stop := startGateway(t, Config{})
	defer stop()

	writeLines(t, addr, []string{
		`{"v":7,"app":"future","rank":0,"phase":0,"ts":0,"te":1,"b":5,"new_field":"yes"}`,
		`this is not JSON`,
		`{"rank":1,"phase":0,"ts":1,"te":2,"b":7}`, // no app: demux by connection
	})
	waitFor(t, "ingest", func() bool { return s.Stats().Ingested == 2 })
	if got := s.Stats().DecodeErrors; got != 1 {
		t.Fatalf("decode errors = %d, want 1", got)
	}
	info, ok := s.AppInfo("future")
	if !ok || info.Version != 7 {
		t.Fatalf("future app info = %+v ok=%v", info, ok)
	}
	apps := s.Apps()
	if len(apps) != 2 {
		t.Fatalf("apps = %+v", apps)
	}
	var connApp string
	for _, a := range apps {
		if a.ID != "future" {
			connApp = a.ID
		}
	}
	if !strings.HasPrefix(connApp, "conn-") {
		t.Fatalf("fallback app id = %q", connApp)
	}
}

// feedPeriodic ingests a synthetic periodic application directly:
// `phases` bursts of length burstLen every period, starting at t=0.
func feedPeriodic(s *Server, app string, phases int, period, burstLen float64, b float64) {
	for j := 0; j < phases; j++ {
		start := float64(j) * period
		s.reg.ingest(tmio.StreamRecord{
			V: tmio.StreamVersion, App: app, Rank: 0, Phase: j,
			TsSec: start, TeSec: start + period, B: b,
			T: b * 4, TtsSec: start, TteSec: start + burstLen,
		}, "conn-x")
	}
}

func TestPredictRecoversPeriod(t *testing.T) {
	s := New(Config{})
	feedPeriodic(s, "periodic", 12, 3.0, 0.4, 50e6)

	p, ok := s.Predict("periodic", 0)
	if !ok {
		t.Fatal("no prediction for a strongly periodic app")
	}
	if math.Abs(p.Period.Seconds()-3.0) > 0.5 {
		t.Fatalf("period = %v, want ~3s", p.Period)
	}
	lastStart := 11 * 3.0
	if p.LastBurst != timeOf(lastStart) {
		t.Fatalf("last burst = %v, want %v", p.LastBurst, timeOf(lastStart))
	}
	if p.Next <= p.LastBurst {
		t.Fatalf("next burst %v not after last %v", p.Next, p.LastBurst)
	}
	if bl := p.BurstLen.Seconds(); math.Abs(bl-0.4) > 0.05 {
		t.Fatalf("burst len = %v, want ~0.4s", bl)
	}
	// Forecast conversion carries the same numbers.
	f := p.Forecast()
	if f.Period != p.Period || f.LastBurst != p.LastBurst || f.BurstLen != p.BurstLen {
		t.Fatalf("forecast %+v != prediction %+v", f, p)
	}

	// Too little history: no forecast.
	feedPeriodic(s, "young", 2, 3.0, 0.4, 50e6)
	if _, ok := s.Predict("young", 0); ok {
		t.Fatal("prediction from 2 phases")
	}
	if _, ok := s.Predict("unknown", 0); ok {
		t.Fatal("prediction for unknown app")
	}
}

func TestHTTPSurface(t *testing.T) {
	s := New(Config{})
	feedPeriodic(s, "hacc-io", 10, 2.0, 0.25, 80e6)
	web := httptest.NewServer(s.Handler())
	defer web.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}

	code, body := get("/apps")
	if code != 200 {
		t.Fatalf("apps: %d", code)
	}
	var apps []map[string]any
	if err := json.Unmarshal([]byte(body), &apps); err != nil {
		t.Fatalf("apps JSON: %v", err)
	}
	if len(apps) != 1 || apps[0]["id"] != "hacc-io" || apps[0]["records"].(float64) != 10 {
		t.Fatalf("apps = %s", body)
	}

	code, body = get("/apps/hacc-io/series")
	if code != 200 {
		t.Fatalf("series: %d", code)
	}
	var series struct {
		ID                string      `json:"id"`
		RequiredBandwidth float64     `json:"required_bandwidth"`
		B                 []pointJSON `json:"b"`
		T                 []pointJSON `json:"t"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("series JSON: %v", err)
	}
	if series.ID != "hacc-io" || len(series.B) == 0 || len(series.T) == 0 {
		t.Fatalf("series = %s", body)
	}
	if series.RequiredBandwidth != 80e6 {
		t.Fatalf("required = %v", series.RequiredBandwidth)
	}

	code, body = get("/apps/hacc-io/predict")
	if code != 200 {
		t.Fatalf("predict: %d", code)
	}
	var pred PredictJSON
	if err := json.Unmarshal([]byte(body), &pred); err != nil || !pred.OK {
		t.Fatalf("predict = %s (err %v)", body, err)
	}
	if math.Abs(pred.PeriodSec-2.0) > 0.5 {
		t.Fatalf("predict period = %v", pred.PeriodSec)
	}

	if code, _ := get("/apps/nope/series"); code != 404 {
		t.Fatalf("unknown series code = %d", code)
	}
	if code, _ := get("/apps/nope/predict"); code != 404 {
		t.Fatalf("unknown predict code = %d", code)
	}
	if code, _ := get("/apps/hacc-io/predict?now=bogus"); code != 400 {
		t.Fatalf("bad now code = %d", code)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"iogateway_records_ingested_total",
		"iogateway_connections_total",
		"iogateway_records_dropped_total",
		`iogateway_app_required_bandwidth_bytes_per_second{app="hacc-io"} 8e+07`,
		`iogateway_app_records_total{app="hacc-io"} 10`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestClusterPredictiveViaGateway closes the paper's loop over a real
// network boundary: the cluster's predictive limiter pulls next-burst
// forecasts from the gateway's HTTP API instead of in-process FTIO.
func TestClusterPredictiveViaGateway(t *testing.T) {
	s := New(Config{})
	// The gateway has already observed job 0's periodic write pattern
	// (period = compute + write time of the scenario below).
	feedPeriodic(s, "job0", 10, 2.2, 0.2, 100e6)
	web := httptest.NewServer(s.Handler())
	defer web.Close()

	client := NewPredictClient(web.URL)
	var calls, hits int
	cfg := cluster.Config{
		Nodes: 64,
		Jobs: []cluster.JobSpec{
			{Nodes: 8, Loops: 4, BytesPerNode: 1 << 28, Compute: 2 * des.Second},
			{Nodes: 8, Async: true, Loops: 4, BytesPerNode: 1 << 27, Compute: 3 * des.Second},
		},
		Policy: cluster.LimitPredictive,
		FS:     &pfs.Config{WriteCapacity: 2e9, ReadCapacity: 2e9},
		Forecasts: func(job int, now des.Time) (sched.Forecast, bool) {
			calls++
			f, ok := client.Predict(fmt.Sprintf("job%d", job), now)
			if ok {
				hits++
			}
			return f, ok
		},
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || hits == 0 {
		t.Fatalf("gateway forecasts unused: calls=%d hits=%d", calls, hits)
	}
	if len(res.Jobs) != 2 || res.Makespan <= 0 {
		t.Fatalf("cluster result = %+v", res)
	}
}
