package fabric

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"iobehind/internal/runner"
)

// CacheHandler serves a runner.Cache over HTTP in the existing SHA-256
// content-addressed scheme, so local runs, remote workers, and resumed
// sweeps all share hits:
//
//	GET /cache/{key}   entry bytes (404 when absent)
//	PUT /cache/{key}   store entry bytes (204)
//	GET /healthz       liveness probe
//
// Keys must be exactly the 64-hex shape runner.CacheKey produces —
// anything else is rejected before it can name a path. Writes go through
// the cache's atomic temp+rename, so concurrent PUTs of the same key are
// benign and a killed server never leaves a torn entry.
func CacheHandler(c *runner.Cache) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !runner.ValidCacheKey(key) {
			http.Error(w, "malformed cache key", http.StatusBadRequest)
			return
		}
		data, ok := c.GetBytes(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	mux.HandleFunc("PUT /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !runner.ValidCacheKey(key) {
			http.Error(w, "malformed cache key", http.StatusBadRequest)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes+1))
		if err != nil {
			http.Error(w, "read body", http.StatusBadRequest)
			return
		}
		if len(data) == 0 || len(data) > MaxFrameBytes {
			http.Error(w, "entry size out of range", http.StatusBadRequest)
			return
		}
		if !c.PutBytes(key, data) {
			http.Error(w, "store failed", http.StatusInsufficientStorage)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// RemoteCache is a runner.PointCache speaking to a fabric cache server.
// Every failure — connection refused, timeout, 5xx — degrades to a miss:
// a worker with a flaky cache server recomputes, it never blocks or
// corrupts. Safe for concurrent use.
type RemoteCache struct {
	base   string // server URL without trailing slash
	client *http.Client

	mu    sync.Mutex
	stats runner.CacheStats
}

var _ runner.PointCache = (*RemoteCache)(nil)

// NewRemoteCache builds a client for the cache server at baseURL (e.g.
// "http://127.0.0.1:7778").
func NewRemoteCache(baseURL string) *RemoteCache {
	return &RemoteCache{
		base:   strings.TrimRight(baseURL, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// URL returns the server URL the cache talks to.
func (rc *RemoteCache) URL() string { return rc.base }

func (rc *RemoteCache) url(key string) string { return rc.base + "/cache/" + key }

// GetBytes fetches the raw entry for key; any failure is a miss.
func (rc *RemoteCache) GetBytes(key string) ([]byte, bool) {
	resp, err := rc.client.Get(rc.url(key))
	if err != nil {
		rc.count(func(s *runner.CacheStats) { s.Misses++; s.Errors++ })
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		rc.count(func(s *runner.CacheStats) { s.Misses++ })
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		rc.count(func(s *runner.CacheStats) { s.Misses++; s.Errors++ })
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameBytes+1))
	if err != nil || len(data) == 0 || len(data) > MaxFrameBytes {
		rc.count(func(s *runner.CacheStats) { s.Misses++; s.Errors++ })
		return nil, false
	}
	rc.count(func(s *runner.CacheStats) { s.Hits++ })
	return data, true
}

// PutBytes stores raw entry bytes, reporting success. Failures are
// absorbed into the stats.
func (rc *RemoteCache) PutBytes(key string, data []byte) bool {
	req, err := http.NewRequest(http.MethodPut, rc.url(key), bytes.NewReader(data))
	if err != nil {
		rc.count(func(s *runner.CacheStats) { s.Errors++ })
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rc.client.Do(req)
	if err != nil {
		rc.count(func(s *runner.CacheStats) { s.Errors++ })
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		rc.count(func(s *runner.CacheStats) { s.Errors++ })
		return false
	}
	rc.count(func(s *runner.CacheStats) { s.Writes++ })
	return true
}

// Get implements runner.PointCache over GetBytes.
func (rc *RemoteCache) Get(key string, alloc func() any) (any, bool) {
	data, ok := rc.GetBytes(key)
	if !ok {
		return nil, false
	}
	v, err := runner.DecodeEntry(data, alloc)
	if err != nil {
		rc.count(func(s *runner.CacheStats) { s.Errors++ })
		return nil, false
	}
	return v, true
}

// Put implements runner.PointCache over PutBytes.
func (rc *RemoteCache) Put(key string, v any) {
	data, err := runner.EncodeEntry(v)
	if err != nil {
		rc.count(func(s *runner.CacheStats) { s.Errors++ })
		return
	}
	rc.PutBytes(key, data)
}

// Stats returns a snapshot of the remote lookup counters.
func (rc *RemoteCache) Stats() runner.CacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

func (rc *RemoteCache) count(f func(*runner.CacheStats)) {
	rc.mu.Lock()
	f(&rc.stats)
	rc.mu.Unlock()
}

// bytesCache is the raw-entry surface TieredCache moves bytes across
// without a decode/re-encode round trip. Both *runner.Cache and
// *RemoteCache satisfy it.
type bytesCache interface {
	GetBytes(key string) ([]byte, bool)
	PutBytes(key string, data []byte) bool
}

// TieredCache layers a local cache under a remote one: probe local
// first, then remote (filling local on a remote hit so the next probe
// stays on disk), and write through to both. This is the worker's cache:
// a point computed anywhere in the fabric is a local-latency hit
// everywhere else after first touch.
type TieredCache struct {
	local  runner.PointCache
	remote runner.PointCache
}

var _ runner.PointCache = (*TieredCache)(nil)

// NewTieredCache layers local under remote. Either may be nil, in which
// case the tier degenerates to the other cache alone.
func NewTieredCache(local, remote runner.PointCache) *TieredCache {
	return &TieredCache{local: local, remote: remote}
}

// Get probes local, then remote. A remote hit is copied into the local
// tier — byte-for-byte when both tiers speak bytesCache, re-encoded
// otherwise.
func (t *TieredCache) Get(key string, alloc func() any) (any, bool) {
	if t.local != nil {
		if v, ok := t.local.Get(key, alloc); ok {
			return v, true
		}
	}
	if t.remote == nil {
		return nil, false
	}
	lb, lok := t.local.(bytesCache)
	if rb, rok := t.remote.(bytesCache); rok && lok {
		data, ok := rb.GetBytes(key)
		if !ok {
			return nil, false
		}
		v, err := runner.DecodeEntry(data, alloc)
		if err != nil {
			return nil, false
		}
		lb.PutBytes(key, data)
		return v, true
	}
	v, ok := t.remote.Get(key, alloc)
	if !ok {
		return nil, false
	}
	if t.local != nil {
		t.local.Put(key, v)
	}
	return v, true
}

// Put writes through to both tiers.
func (t *TieredCache) Put(key string, v any) {
	if t.local != nil {
		t.local.Put(key, v)
	}
	if t.remote != nil {
		t.remote.Put(key, v)
	}
}

// Stats sums both tiers' counters. Hits count wherever they landed;
// writes count once per tier written, mirroring the real I/O performed.
func (t *TieredCache) Stats() runner.CacheStats {
	var sum runner.CacheStats
	for _, c := range []runner.PointCache{t.local, t.remote} {
		if c == nil {
			continue
		}
		st := c.Stats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Writes += st.Writes
		sum.Errors += st.Errors
	}
	return sum
}
