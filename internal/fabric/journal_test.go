package fabric

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalRoundTrip appends acceptances, reopens, and asserts the
// reload sees them — including idempotence of duplicate appends.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("result-bytes")
	key := strings.Repeat("ab", 32)
	if err := j.append(key, "fig05/quick/ranks=8/run=0", data); err != nil {
		t.Fatal(err)
	}
	if err := j.append(key, "fig05/quick/ranks=8/run=0", data); err != nil {
		t.Fatal(err)
	}
	j.close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), "\n"); n != 1 {
		t.Fatalf("duplicate append wrote %d lines, want 1:\n%s", n, raw)
	}

	j2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	sha, ok := j2.lookup(key)
	if !ok {
		t.Fatal("reloaded journal lost the acceptance")
	}
	if sha != entrySHA(data) {
		t.Fatalf("reloaded sha %s, want %s", sha, entrySHA(data))
	}
}

// TestJournalSkipsTornLine plants a torn final line (the signature of a
// coordinator killed mid-write) plus junk and asserts reload keeps the
// good entries and drops the rest.
func TestJournalSkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	goodKey := strings.Repeat("cd", 32)
	good := `{"k":"` + goodKey + `","sha":"` + entrySHA([]byte("x")) + `","key":"p0"}`
	content := good + "\n" +
		"\n" + // blank line
		`{"k":"missing-sha"}` + "\n" + // incomplete entry
		`{"k":"` + strings.Repeat("ef", 32) + `","sha":"torn` // torn mid-write
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if _, ok := j.lookup(goodKey); !ok {
		t.Fatal("good line lost")
	}
	if _, ok := j.lookup("missing-sha"); ok {
		t.Fatal("incomplete line trusted")
	}
	if _, ok := j.lookup(strings.Repeat("ef", 32)); ok {
		t.Fatal("torn line trusted")
	}
	// Appending after a torn tail must still yield parseable lines.
	newKey := strings.Repeat("01", 32)
	if err := j.append(newKey, "p1", []byte("y")); err != nil {
		t.Fatal(err)
	}
	j.close()
	j2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if _, ok := j2.lookup(newKey); !ok {
		t.Fatal("append after torn tail lost")
	}
}

// TestJournalMemoryOnly checks the path == "" mode used by tests and
// journal-less coordinators.
func TestJournalMemoryOnly(t *testing.T) {
	j, err := openJournal("")
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if err := j.append("k", "p", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.lookup("k"); !ok {
		t.Fatal("memory journal lost entry")
	}
}
