package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"iobehind/internal/experiments"
)

// sampleMsgs covers every kind with representative payloads.
func sampleMsgs(t *testing.T) []Msg {
	t.Helper()
	exp := experiments.Fig05Experiment(experiments.Quick)
	refs := experiments.ExperimentRefs(exp, experiments.Quick)
	manifest, err := ManifestFor(exp.Points[:2], refs[:2])
	if err != nil {
		t.Fatal(err)
	}
	return []Msg{
		{Kind: KindHello, Role: "worker", ID: "w0"},
		{Kind: KindSubmit, ID: "client", Points: manifest},
		{Kind: KindAccepted, Stats: &SweepStats{Points: 2, CacheHits: 1}},
		{Kind: KindGet, Role: "worker", ID: "w0"},
		{Kind: KindLease, Seq: 7, Index: 1, Point: &manifest[1]},
		{Kind: KindIdle, RetryMS: 250},
		{Kind: KindResult, Seq: 7, Index: 1, CacheKey: manifest[1].CacheKey, Bytes: []byte{1, 2, 3}},
		{Kind: KindAck, Seq: 7, Dup: true},
		{Kind: KindSweepDone, Stats: &SweepStats{Points: 2, Computed: 2}},
	}
}

// TestMsgRoundTrip writes and re-reads every message kind, including a
// manifest whose Config survives as the same cache-key identity.
func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMsgs(t)
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.Kind, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Index != want.Index ||
			got.Role != want.Role || got.ID != want.ID || got.CacheKey != want.CacheKey ||
			got.Dup != want.Dup || got.RetryMS != want.RetryMS || !bytes.Equal(got.Bytes, want.Bytes) {
			t.Fatalf("round trip of %s changed fields:\n got %+v\nwant %+v", want.Kind, got, want)
		}
		if got.V != ProtocolVersion {
			t.Fatalf("read %s: version %d, want stamped %d", want.Kind, got.V, ProtocolVersion)
		}
		if want.Point != nil && (got.Point == nil || got.Point.CacheKey != want.Point.CacheKey) {
			t.Fatalf("lease point did not survive: %+v", got.Point)
		}
		if len(want.Points) != len(got.Points) {
			t.Fatalf("manifest length changed: %d -> %d", len(want.Points), len(got.Points))
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after reading all messages", buf.Len())
	}
	// A manifest read off the wire must still resolve with the same key.
	m2 := sampleMsgs(t)[1]
	var wire bytes.Buffer
	if err := WriteMsg(&wire, m2); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMsg(&wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range back.Points {
		p, err := experiments.ResolvePoint(mp.Ref)
		if err != nil {
			t.Fatalf("resolve wire ref %s: %v", mp.Ref, err)
		}
		if p.Key != mp.Ref.Key {
			t.Fatalf("wire ref resolved to %q", p.Key)
		}
	}
}

// TestDecodeMsgRejects pins the decoder's strictness: zero value returned
// on every rejection.
func TestDecodeMsgRejects(t *testing.T) {
	encode := func(m Msg) []byte {
		var buf bytes.Buffer
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[4:] // strip frame prefix
	}
	cases := map[string][]byte{
		"empty":         {},
		"garbage":       []byte("not a gob message at all"),
		"trailing data": append(encode(Msg{Kind: KindGet}), 0x01),
		"unknown kind":  encode(Msg{Kind: KindSweepDone + 1}),
		// gob omits zero fields, so a kindless message decodes fine and
		// must die in validation, not by luck of encoding.
		"zero kind":    encodeRaw(t, Msg{V: ProtocolVersion}),
		"zero version": encodeRaw(t, Msg{Kind: KindGet}),
	}
	for name, payload := range cases {
		m, err := DecodeMsg(payload)
		if err == nil {
			t.Errorf("%s: decoded without error", name)
		}
		if !isZeroMsg(m) {
			t.Errorf("%s: non-zero message returned on error: %+v", name, m)
		}
	}
}

// TestDecodeMsgVersionGate rejects newer-than-spoken versions.
func TestDecodeMsgVersionGate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, Msg{Kind: KindGet}); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[4:]
	if _, err := DecodeMsg(payload); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	// Re-encode with a future version by patching the struct directly.
	future := Msg{Kind: KindGet}
	var fb bytes.Buffer
	if err := WriteMsg(&fb, future); err != nil {
		t.Fatal(err)
	}
	// WriteMsg stamps ProtocolVersion; craft the future frame through the
	// decoder's own gob by round-tripping a hand-bumped copy.
	fm, err := ReadMsg(bytes.NewReader(fb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fm.V = ProtocolVersion + 1
	fpayload := encodeRaw(t, fm)
	if _, err := DecodeMsg(fpayload); err == nil || !strings.Contains(err.Error(), "unsupported protocol version") {
		t.Fatalf("future version accepted (err=%v)", err)
	}
}

// TestReadFrameLimits pins the framing edge cases.
func TestReadFrameLimits(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("clean close: got %v, want io.EOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("torn prefix: got %v, want wrapped unexpected EOF", err)
	}
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrameBytes+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	var torn bytes.Buffer
	binary.BigEndian.PutUint32(huge[:], 10)
	torn.Write(huge[:])
	torn.WriteString("short")
	if _, err := ReadFrame(&torn); err == nil {
		t.Fatal("torn payload accepted")
	}
}

// isZeroMsg reports whether m is the zero message (Msg holds slices, so
// == does not apply).
func isZeroMsg(m Msg) bool {
	return reflect.DeepEqual(m, Msg{})
}

// encodeRaw gob-encodes a message without WriteMsg's version stamping.
func encodeRaw(t *testing.T, m Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
