// Package fabric turns the single-process sweep runner into a small job
// fabric: a coordinator that leases manifest points to pull-based
// workers over TCP, re-dispatches expired leases, journals accepted
// results for crash resume, and shares completed results through the
// runner's content-addressed cache served over HTTP.
//
// The design leans entirely on one property, enforced by iolint's
// cachekey/walltime rules: every sweep point is a pure function of its
// configuration. That is what makes remote execution sound (a worker's
// result is the submitter's result), duplicate completions benign (the
// bytes are identical, the content-addressed write is idempotent, first
// one wins), and cache sharing safe (a hit is indistinguishable from a
// run).
//
// Unlike the simulation packages, fabric legitimately reads the wall
// clock: lease deadlines, reconnect backoff, and worker liveness are
// properties of real machines, not of the simulated cluster, and none of
// them can influence a point's result. That is why internal/fabric is
// deliberately absent from iolint's walltime rule while everything that
// enters a manifest stays under the cachekey rule.
package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"iobehind/internal/experiments"
)

// ProtocolVersion is the fabric wire-protocol version. A peer speaking a
// newer version is rejected at decode time: lease contents are trusted
// to re-execute bit-identically, so silent cross-version tolerance is a
// hazard, not a feature.
const ProtocolVersion = 1

// MaxFrameBytes bounds one frame (4-byte big-endian length prefix +
// payload). Submit frames carry a whole manifest; result frames carry
// one gob-encoded report. 64 MiB is two orders of magnitude above the
// largest paper-scale sweep while still refusing absurd lengths from a
// confused or hostile peer before allocating.
const MaxFrameBytes = 64 << 20

// Kind discriminates wire messages.
type Kind uint8

const (
	// KindHello opens every connection: Role "worker" or "client", ID
	// names the peer for leases and logs.
	KindHello Kind = iota + 1
	// KindSubmit (client → coordinator) carries a sweep manifest.
	KindSubmit
	// KindAccepted (coordinator → client) acknowledges a submission;
	// Stats holds the initial journal/cache-hit split.
	KindAccepted
	// KindGet (worker → coordinator) requests one lease.
	KindGet
	// KindLease (coordinator → worker) grants a point: Seq identifies
	// the lease, Index the point, Point the manifest entry.
	KindLease
	// KindIdle (coordinator → worker) reports no pending work; RetryMS
	// hints when to ask again.
	KindIdle
	// KindResult carries one completed point: worker → coordinator with
	// Seq/Index/CacheKey and either Bytes or Err; coordinator → client
	// with Index and the same payload.
	KindResult
	// KindAck (coordinator → worker) confirms a result was recorded;
	// Dup marks a duplicate completion (another worker was first).
	KindAck
	// KindSweepDone (coordinator → client) closes a sweep; Stats is the
	// final accounting.
	KindSweepDone
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindSubmit:
		return "submit"
	case KindAccepted:
		return "accepted"
	case KindGet:
		return "get"
	case KindLease:
		return "lease"
	case KindIdle:
		return "idle"
	case KindResult:
		return "result"
	case KindAck:
		return "ack"
	case KindSweepDone:
		return "sweepdone"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ManifestPoint is one sweep point as it travels the wire: the
// serializable ref a worker resolves locally, the point's config (its
// cache-key identity, carried so a worker can name exactly what differed
// on a skew), and the submitter-computed content-address of the result.
type ManifestPoint struct {
	Ref experiments.PointRef
	// Config is the point's cache-key identity. Concrete types must be
	// gob-registered (internal/experiments does so for every built-in
	// config) and must satisfy iolint's cachekey rule.
	Config any
	// CacheKey is runner.CacheKey of the resolved point, computed by the
	// submitter. Workers recompute and refuse to run on mismatch.
	CacheKey string
}

// SweepStats is a sweep's accounting, reported in KindAccepted (initial)
// and KindSweepDone (final) messages and exposed on /metrics.
type SweepStats struct {
	Points       int // manifest size
	Computed     int // results produced by workers this sweep
	JournalHits  int // points resumed from the acceptance journal
	CacheHits    int // points served from the shared cache without a journal entry
	Redispatches int // leases that expired and were re-queued
	Duplicates   int // completions that arrived after another worker's
	Mismatches   int // duplicate completions whose bytes differed (determinism violation)
	Errors       int // points that completed with an error
}

// Msg is the fabric's single wire message. One struct for every kind
// keeps the decoder single (and fuzzable); unused fields stay zero and
// cost nothing in gob, which omits zero values.
type Msg struct {
	V    int
	Kind Kind

	Role     string          // hello: "worker" or "client"
	ID       string          // hello: peer name
	Seq      uint64          // lease: lease id; result: echoed lease id
	Index    int             // lease/result: point index in the manifest
	CacheKey string          // result (from worker): content address of the point
	Point    *ManifestPoint  // lease: the granted point
	Points   []ManifestPoint // submit: the manifest
	Bytes    []byte          // result: content-addressed entry bytes
	Err      string          // result: point error; accepted: rejection reason
	Cached   bool            // result (to client): served from journal/cache
	Dup      bool            // ack: duplicate completion
	RetryMS  int             // idle: backoff hint
	Stats    *SweepStats     // accepted/sweepdone
}

// ErrFrameTooLarge reports a length prefix beyond MaxFrameBytes.
var ErrFrameTooLarge = errors.New("fabric: frame exceeds size limit")

// ReadFrame reads one length-prefixed frame payload from r. io.EOF is
// returned verbatim for a clean close before the prefix; a close mid-
// frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("fabric: read frame prefix: %w", err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 {
		return nil, errors.New("fabric: zero-length frame")
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("fabric: read frame payload: %w", err)
	}
	return payload, nil
}

// DecodeMsg parses one frame payload — the single decode path shared by
// the coordinator, workers, clients, tests, and the fuzzer, in the style
// of tmio.DecodeStreamRecord. On error the returned message is always
// the zero value, never a partially decoded one. A message is rejected
// when it is not exactly one gob value, when its version is newer than
// this binary speaks, or when its kind is unknown — the fabric re-
// executes lease contents, so "tolerate and guess" is the wrong default.
func DecodeMsg(payload []byte) (Msg, error) {
	reader := bytes.NewReader(payload)
	var m Msg
	if err := gob.NewDecoder(reader).Decode(&m); err != nil {
		return Msg{}, fmt.Errorf("fabric: decode message: %w", err)
	}
	if reader.Len() != 0 {
		return Msg{}, errors.New("fabric: decode message: trailing data after message")
	}
	if m.V < 1 || m.V > ProtocolVersion {
		return Msg{}, fmt.Errorf("fabric: unsupported protocol version %d (speaking %d)", m.V, ProtocolVersion)
	}
	if m.Kind < KindHello || m.Kind > KindSweepDone {
		return Msg{}, fmt.Errorf("fabric: unknown message kind %d", m.Kind)
	}
	return m, nil
}

// WriteMsg frames and writes one message. The version is stamped here so
// call sites cannot forget it.
func WriteMsg(w io.Writer, m Msg) error {
	m.V = ProtocolVersion
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length prefix placeholder
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("fabric: encode %s message: %w", m.Kind, err)
	}
	payload := buf.Bytes()
	n := len(payload) - 4
	if n > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(payload[:4], uint32(n))
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("fabric: write %s message: %w", m.Kind, err)
	}
	return nil
}

// ReadMsg reads and decodes one message.
func ReadMsg(r io.Reader) (Msg, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return Msg{}, err
	}
	return DecodeMsg(payload)
}
