package fabric

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"iobehind/internal/experiments"
	"iobehind/internal/runner"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coordinator is the fabric coordinator's TCP address.
	Coordinator string
	// ID names this worker in leases and logs. Default: local hostname
	// substitute "worker".
	ID string
	// Executors is the number of concurrent point executors, each with
	// its own coordinator connection. Values < 1 default to 1.
	Executors int
	// LocalCache, when non-nil, is the worker's disk tier: probed before
	// the remote cache, filled byte-for-byte on remote hits and fresh
	// computations.
	LocalCache *runner.Cache
	// RemoteCache, when non-nil, is the shared cache server tier.
	RemoteCache *RemoteCache
	// Logf receives progress lines. Nil discards them.
	Logf func(format string, args ...any)
	// DialTimeout bounds one connection attempt. Default 5s.
	DialTimeout time.Duration
	// MaxBackoff caps the reconnect backoff. Default 5s.
	MaxBackoff time.Duration
}

// RunWorker pulls leases from the coordinator and executes them until ctx
// is cancelled. Each executor holds its own connection; a lost connection
// is retried with jittered exponential backoff, and a result computed
// while disconnected is resent after reconnect (the coordinator matches
// it by content address, so it survives lease re-dispatch and even a
// coordinator restart). Returns nil on cancellation.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Coordinator == "" {
		return fmt.Errorf("fabric: worker needs a coordinator address")
	}
	if opts.ID == "" {
		opts.ID = "worker"
	}
	if opts.Executors < 1 {
		opts.Executors = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	var wg sync.WaitGroup
	for i := 0; i < opts.Executors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := &executor{
				opts: opts,
				name: fmt.Sprintf("%s/%d", opts.ID, i),
			}
			e.run(ctx)
		}(i)
	}
	wg.Wait()
	return nil
}

// executor is one pull loop with its own coordinator connection.
type executor struct {
	opts WorkerOptions
	name string

	conn     net.Conn
	stopConn func() bool // context.AfterFunc cleanup for conn
	backoff  time.Duration
	pending  *Msg // computed result not yet acked by the coordinator
}

func (e *executor) logf(format string, args ...any) { e.opts.Logf(format, args...) }

func (e *executor) run(ctx context.Context) {
	defer e.dropConn()
	for ctx.Err() == nil {
		if e.conn == nil {
			if !e.connect(ctx) {
				continue
			}
		}
		// Deliver a result stranded by a connection loss before asking
		// for new work: the coordinator may have re-dispatched the
		// lease, but first-byte-identical-result-wins makes the resend
		// harmless at worst and a straggler win at best.
		if e.pending != nil {
			if !e.deliver(ctx, *e.pending) {
				continue
			}
			e.pending = nil
		}
		if err := WriteMsg(e.conn, Msg{Kind: KindGet, Role: "worker", ID: e.name}); err != nil {
			e.dropConn()
			continue
		}
		m, err := ReadMsg(e.conn)
		if err != nil {
			e.dropConn()
			continue
		}
		switch m.Kind {
		case KindIdle:
			retry := time.Duration(m.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = 200 * time.Millisecond
			}
			sleepCtx(ctx, jitter(retry))
		case KindLease:
			res := e.execute(ctx, m)
			e.pending = &res
			if e.deliver(ctx, res) {
				e.pending = nil
			}
		default:
			e.logf("fabric: worker=%s unexpected %s reply, reconnecting", e.name, m.Kind)
			e.dropConn()
		}
	}
}

// connect dials and introduces the executor; false means backoff taken.
func (e *executor) connect(ctx context.Context) bool {
	d := net.Dialer{Timeout: e.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", e.opts.Coordinator)
	if err != nil {
		e.waitBackoff(ctx, err)
		return false
	}
	if err := WriteMsg(conn, Msg{Kind: KindHello, Role: "worker", ID: e.name}); err != nil {
		conn.Close()
		e.waitBackoff(ctx, err)
		return false
	}
	e.conn = conn
	e.stopConn = context.AfterFunc(ctx, func() { conn.Close() })
	e.backoff = 0
	return true
}

func (e *executor) dropConn() {
	if e.conn != nil {
		if e.stopConn != nil {
			e.stopConn()
			e.stopConn = nil
		}
		e.conn.Close()
		e.conn = nil
	}
}

// waitBackoff sleeps the jittered exponential backoff after a failure.
func (e *executor) waitBackoff(ctx context.Context, cause error) {
	if e.backoff == 0 {
		e.backoff = 100 * time.Millisecond
	} else {
		e.backoff *= 2
		if e.backoff > e.opts.MaxBackoff {
			e.backoff = e.opts.MaxBackoff
		}
	}
	e.logf("fabric: worker=%s coordinator unreachable (%v), retrying in %s", e.name, cause, e.backoff)
	sleepCtx(ctx, jitter(e.backoff))
}

// deliver sends one result and waits for the ack; false drops the
// connection (the caller retries after reconnect via e.pending).
func (e *executor) deliver(ctx context.Context, res Msg) bool {
	if err := WriteMsg(e.conn, res); err != nil {
		e.dropConn()
		return false
	}
	ack, err := ReadMsg(e.conn)
	if err != nil || ack.Kind != KindAck {
		e.dropConn()
		return false
	}
	if ack.Dup {
		e.logf("fabric: worker=%s point=%s lost the race (duplicate)", e.name, res.CacheKey)
	}
	return true
}

// execute resolves and runs one leased point, returning the result
// message to deliver. Every failure mode — unresolvable ref, cache-key
// skew, point error, panic — becomes an Err result; the executor never
// dies on a poisoned lease.
func (e *executor) execute(ctx context.Context, lease Msg) Msg {
	res := Msg{Kind: KindResult, Role: "worker", ID: e.name, Seq: lease.Seq, Index: lease.Index}
	mp := lease.Point
	if mp == nil {
		res.Err = "lease carried no point"
		return res
	}
	res.CacheKey = mp.CacheKey
	p, err := experiments.ResolvePoint(mp.Ref)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	ckey, err := runner.CacheKey(p)
	if err != nil {
		res.Err = fmt.Sprintf("hash config: %v", err)
		return res
	}
	if ckey != mp.CacheKey {
		// Version skew: this binary enumerates a different point than
		// the submitter hashed. Running it would poison the shared
		// cache under the submitter's address — refuse instead.
		res.Err = fmt.Sprintf("cache key skew: submitter %s, worker %s — mismatched binaries?", mp.CacheKey, ckey)
		return res
	}

	// Cache tiers: local disk first, then the shared server, moving raw
	// bytes so the content address is preserved exactly.
	if e.opts.LocalCache != nil {
		if data, ok := e.opts.LocalCache.GetBytes(ckey); ok {
			res.Bytes, res.Cached = data, true
			return res
		}
	}
	if e.opts.RemoteCache != nil {
		if data, ok := e.opts.RemoteCache.GetBytes(ckey); ok {
			if e.opts.LocalCache != nil {
				e.opts.LocalCache.PutBytes(ckey, data)
			}
			res.Bytes, res.Cached = data, true
			return res
		}
	}

	// Run through a single-worker runner for its panic isolation; no
	// cache attached because the byte-level tiers above already cover
	// it and keep the encoding canonical.
	start := time.Now()
	results, _ := runner.New(runner.Options{Workers: 1}).Run(ctx, []runner.Point{p})
	r := results[0]
	if r.Err != nil {
		res.Err = r.Err.Error()
		return res
	}
	data, err := runner.EncodeEntry(r.Value)
	if err != nil {
		res.Err = fmt.Sprintf("encode result: %v", err)
		return res
	}
	res.Bytes = data
	e.logf("fabric: worker=%s point=%s computed in %s (%d bytes)", e.name, p.Key, time.Since(start).Round(time.Millisecond), len(data))
	if e.opts.LocalCache != nil {
		e.opts.LocalCache.PutBytes(ckey, data)
	}
	if e.opts.RemoteCache != nil {
		e.opts.RemoteCache.PutBytes(ckey, data)
	}
	return res
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// jitter spreads d over [d/2, d) so a fleet of workers losing the same
// coordinator does not reconnect in lockstep. The wall clock is the
// entropy source — fabric timing is allowed to be nondeterministic, it
// can never reach a result.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(time.Now().UnixNano())%(d/2)
}
