package fabric

import (
	"context"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"iobehind/internal/experiments"
	"iobehind/internal/runner"
)

// TestDistributedMatchesSerial is the fabric's headline invariant: a
// built-in figure swept through a coordinator and two real workers — one
// of which is killed mid-sweep so its leases re-dispatch — renders
// byte-identically to the historical serial run. It also proves the
// cache sharing is real: a point computed by one worker is a remote
// cache hit for the other and for a subsequent local run pointed at the
// same cache server, asserted through CacheStats.
func TestDistributedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed integration test")
	}
	plan, err := experiments.BuildPlan([]string{"5"}, experiments.Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	exp := plan.Entries[0].Exp
	manifest, err := ManifestFor(plan.Points, plan.Refs)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: the serial, cache-less runner.
	serialResults, err := runner.Serial().Run(context.Background(), plan.Points)
	if err != nil {
		t.Fatal(err)
	}
	serialRender, err := exp.Assemble(serialResults)
	if err != nil {
		t.Fatal(err)
	}

	// Fabric: coordinator with journal + shared cache, served over HTTP
	// for the workers' remote tier.
	sharedCache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	workerCtx1, killWorker1 := context.WithCancel(context.Background())
	defer killWorker1()
	var killOnce sync.Once
	co, err := NewCoordinator(Options{
		Cache:        sharedCache,
		LeaseTimeout: 2 * time.Second,
		IdleRetry:    10 * time.Millisecond,
		Logf:         t.Logf,
		// Kill worker 1 as soon as any result lands: whatever it holds
		// at that moment must be re-dispatched and the sweep must still
		// finish correctly on worker 2 alone.
		OnAccept: func(worker string, index int, pointKey string) {
			killOnce.Do(func() {
				t.Logf("killing worker w1 after first acceptance (%s by %s)", pointKey, worker)
				killWorker1()
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co.Start(ln)
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	workerCtx2, stopWorker2 := context.WithCancel(context.Background())
	defer stopWorker2()
	local1, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	local2, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	remote2 := NewRemoteCache(srv.URL)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		RunWorker(workerCtx1, WorkerOptions{
			Coordinator: co.Addr(), ID: "w1", Executors: 2,
			LocalCache: local1, RemoteCache: NewRemoteCache(srv.URL),
			Logf: t.Logf, MaxBackoff: 100 * time.Millisecond,
		})
	}()
	go func() {
		defer wg.Done()
		RunWorker(workerCtx2, WorkerOptions{
			Coordinator: co.Addr(), ID: "w2", Executors: 2,
			LocalCache: local2, RemoteCache: remote2,
			Logf: t.Logf, MaxBackoff: 100 * time.Millisecond,
		})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sub, err := Submit(ctx, co.Addr(), "integration-test", manifest, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	stopWorker2()
	wg.Wait()

	// Byte-identical at the entry level...
	for i, res := range serialResults {
		if res.Err != nil {
			t.Fatalf("serial point %s failed: %v", res.Key, res.Err)
		}
		want, err := runner.EncodeEntry(res.Value)
		if err != nil {
			t.Fatal(err)
		}
		if string(sub.Bytes[i]) != string(want) {
			t.Fatalf("point %s: distributed entry bytes differ from serial", res.Key)
		}
	}
	// ...and at the rendered-figure level.
	fabricResults, err := DecodeResults(plan.Points, sub)
	if err != nil {
		t.Fatal(err)
	}
	fabricRender, err := exp.Assemble(fabricResults)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fabricRender.Render(), serialRender.Render(); got != want {
		t.Fatalf("distributed render differs from serial:\n--- distributed ---\n%s\n--- serial ---\n%s", got, want)
	}
	if sub.Stats.Computed+sub.Stats.JournalHits+sub.Stats.CacheHits != len(plan.Points) {
		t.Fatalf("stats %+v do not account for all %d points", sub.Stats, len(plan.Points))
	}

	// Cache sharing, part 1: every point a worker computed was PUT to
	// the shared server, so a fresh remote client hits all of them.
	probe := NewRemoteCache(srv.URL)
	for _, mp := range manifest {
		if _, ok := probe.GetBytes(mp.CacheKey); !ok {
			t.Fatalf("point %s not in the shared cache after the sweep", mp.Ref.Key)
		}
	}
	st := probe.Stats()
	if st.Hits != len(manifest) || st.Misses != 0 {
		t.Fatalf("probe stats %+v, want %d hits", st, len(manifest))
	}

	// Cache sharing, part 2: a local run layered over the same server
	// (iosweep -cache-server's configuration) recomputes nothing.
	localDisk, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTieredCache(localDisk, NewRemoteCache(srv.URL))
	localRun := runner.New(runner.Options{Workers: 2, Cache: tier})
	// Re-enumerate so no state leaks from the earlier plan.
	plan2, err := experiments.BuildPlan([]string{"5"}, experiments.Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	localResults, err := localRun.Run(context.Background(), plan2.Points)
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.CachedCount(localResults); got != len(plan2.Points) {
		t.Fatalf("local run over the shared cache computed %d points, want 0 (all %d cached)",
			len(plan2.Points)-got, len(plan2.Points))
	}
	localRender, err := plan2.Entries[0].Exp.Assemble(localResults)
	if err != nil {
		t.Fatal(err)
	}
	if localRender.Render() != serialRender.Render() {
		t.Fatal("cache-served local run renders differently from serial")
	}

	// The kill was real: worker 1 must have died before finishing the
	// sweep alone (otherwise the straggler path was not exercised).
	if workerCtx1.Err() == nil {
		t.Fatal("worker 1 was never killed")
	}
	_ = workerCtx2
}
