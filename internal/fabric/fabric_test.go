package fabric

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"iobehind/internal/experiments"
	"iobehind/internal/runner"
)

// startCoordinator spins up a coordinator on a loopback listener.
func startCoordinator(t *testing.T, opts Options) *Coordinator {
	t.Helper()
	if opts.Cache == nil {
		c, err := runner.OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = c
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	co, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co.Start(ln)
	t.Cleanup(co.Close)
	return co
}

// manualWorker is a hand-driven wire-protocol worker for tests that need
// precise control over when leases are taken and results delivered.
type manualWorker struct {
	t    *testing.T
	conn net.Conn
}

func dialWorker(t *testing.T, addr, id string) *manualWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := WriteMsg(conn, Msg{Kind: KindHello, Role: "worker", ID: id}); err != nil {
		t.Fatal(err)
	}
	return &manualWorker{t: t, conn: conn}
}

// lease polls Get until a lease is granted (or the deadline passes).
func (w *manualWorker) lease() Msg {
	w.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := WriteMsg(w.conn, Msg{Kind: KindGet}); err != nil {
			w.t.Fatal(err)
		}
		m, err := ReadMsg(w.conn)
		if err != nil {
			w.t.Fatal(err)
		}
		if m.Kind == KindLease {
			return m
		}
		if m.Kind != KindIdle {
			w.t.Fatalf("unexpected %s reply to get", m.Kind)
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.t.Fatal("no lease granted within deadline")
	return Msg{}
}

// finish delivers a result and returns the ack.
func (w *manualWorker) finish(lease Msg, data []byte) Msg {
	w.t.Helper()
	res := Msg{Kind: KindResult, Seq: lease.Seq, Index: lease.Index, CacheKey: lease.Point.CacheKey, Bytes: data}
	if err := WriteMsg(w.conn, res); err != nil {
		w.t.Fatal(err)
	}
	ack, err := ReadMsg(w.conn)
	if err != nil || ack.Kind != KindAck {
		w.t.Fatalf("ack read: %v (%+v)", err, ack)
	}
	return ack
}

// syntheticManifest fabricates n manifest points with valid (but made-up)
// content addresses — the coordinator never resolves refs, so these
// exercise its machinery without running simulations.
func syntheticManifest(n int) []ManifestPoint {
	points := make([]ManifestPoint, n)
	for i := range points {
		key := fmt.Sprintf("%064x", i+1)
		points[i] = ManifestPoint{
			Ref:      experiments.PointRef{Fig: "synthetic", Scale: "quick", Index: i, Key: "synthetic/" + key[56:]},
			CacheKey: key,
		}
	}
	return points
}

// submitAsync runs Submit in a goroutine and returns a channel with its
// outcome.
type submitOutcome struct {
	res *SubmitResult
	err error
}

func submitAsync(ctx context.Context, t *testing.T, addr string, manifest []ManifestPoint) <-chan submitOutcome {
	ch := make(chan submitOutcome, 1)
	go func() {
		res, err := Submit(ctx, addr, "test-client", manifest, t.Logf)
		ch <- submitOutcome{res, err}
	}()
	return ch
}

// TestLeaseExpiryRedispatch holds a lease past its deadline on one worker
// and asserts the point is re-dispatched to another, the sweep completes,
// and the re-dispatch is counted. Run under -race in the CI race sweep.
func TestLeaseExpiryRedispatch(t *testing.T) {
	co := startCoordinator(t, Options{LeaseTimeout: 50 * time.Millisecond, IdleRetry: 5 * time.Millisecond})
	manifest := syntheticManifest(1)
	ch := submitAsync(context.Background(), t, co.Addr(), manifest)

	slow := dialWorker(t, co.Addr(), "slow")
	lease := slow.lease()
	// Sit on the lease; the reaper must hand the point to someone else.
	fast := dialWorker(t, co.Addr(), "fast")
	lease2 := fast.lease()
	if lease2.Index != lease.Index {
		t.Fatalf("re-dispatched index %d, want %d", lease2.Index, lease.Index)
	}
	if ack := fast.finish(lease2, []byte("payload")); ack.Dup {
		t.Fatal("first completion acked as duplicate")
	}

	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Stats.Redispatches < 1 {
		t.Fatalf("stats %+v recorded no re-dispatch", out.res.Stats)
	}
	if out.res.Stats.Computed != 1 {
		t.Fatalf("stats %+v, want 1 computed", out.res.Stats)
	}
	if string(out.res.Bytes[0]) != "payload" {
		t.Fatalf("client received %q", out.res.Bytes[0])
	}
}

// TestDisconnectRequeuesLease drops a worker connection mid-lease and
// asserts the point is immediately re-queued without waiting for the
// deadline.
func TestDisconnectRequeuesLease(t *testing.T) {
	co := startCoordinator(t, Options{LeaseTimeout: time.Hour, IdleRetry: 5 * time.Millisecond})
	manifest := syntheticManifest(1)
	ch := submitAsync(context.Background(), t, co.Addr(), manifest)

	dropper := dialWorker(t, co.Addr(), "dropper")
	dropper.lease()
	dropper.conn.Close() // hour-long deadline: only the disconnect path can save this sweep

	survivor := dialWorker(t, co.Addr(), "survivor")
	lease := survivor.lease()
	survivor.finish(lease, []byte("rescued"))

	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Stats.Redispatches != 1 {
		t.Fatalf("stats %+v, want exactly 1 re-dispatch", out.res.Stats)
	}
}

// TestDuplicateCompletionIdempotent lets a straggler deliver after the
// winner: byte-identical bytes are acked Dup and counted once; differing
// bytes are flagged as a determinism violation with the first result
// kept.
func TestDuplicateCompletionIdempotent(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	co := startCoordinator(t, Options{Cache: cache, LeaseTimeout: 50 * time.Millisecond, IdleRetry: 5 * time.Millisecond})
	manifest := syntheticManifest(2)
	ch := submitAsync(context.Background(), t, co.Addr(), manifest)

	slow := dialWorker(t, co.Addr(), "slow")
	slowLease0 := slow.lease()
	slowLease1 := slow.lease()

	fast := dialWorker(t, co.Addr(), "fast")
	fastLease0 := fast.lease() // re-dispatch of one of slow's points
	fastLease1 := fast.lease() // and the other
	if ack := fast.finish(fastLease0, []byte("winner")); ack.Dup {
		t.Fatal("winner acked as duplicate")
	}
	fast.finish(fastLease1, []byte("winner"))

	// Straggler delivers the identical bytes for one point and different
	// bytes for the other; both are duplicates, only the second is a
	// determinism violation.
	if ack := slow.finish(slowLease0, []byte("winner")); !ack.Dup {
		t.Fatal("identical straggler not acked as duplicate")
	}
	if ack := slow.finish(slowLease1, []byte("DIFFERENT")); !ack.Dup {
		t.Fatal("mismatched straggler not acked as duplicate")
	}

	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	snap := co.Snapshot()
	if snap.Totals.Duplicates != 2 {
		t.Fatalf("totals %+v, want 2 duplicates", snap.Totals)
	}
	if snap.Totals.Mismatches != 1 {
		t.Fatalf("totals %+v, want exactly 1 mismatch", snap.Totals)
	}
	if snap.Totals.Computed != 2 {
		t.Fatalf("totals %+v, want 2 computed (duplicates must not double-count)", snap.Totals)
	}
	// First result won: the client and the cache both hold the winner's
	// bytes for every point.
	for i := range manifest {
		if string(out.res.Bytes[i]) != "winner" {
			t.Fatalf("point %d: client got %q", i, out.res.Bytes[i])
		}
		if data, ok := cache.GetBytes(manifest[i].CacheKey); !ok || string(data) != "winner" {
			t.Fatalf("point %d: cache holds %q, %v", i, data, ok)
		}
	}
}

// TestCoordinatorResumesFromJournal kills a coordinator after one of two
// points completed and asserts a new incarnation (same journal, same
// cache dir) serves the finished point from the journal and only the
// unfinished one is recomputed.
func TestCoordinatorResumesFromJournal(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	cacheDir := filepath.Join(dir, "cache")
	manifest := syntheticManifest(2)

	cache1, err := runner.OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	co1, err := NewCoordinator(Options{Cache: cache1, JournalPath: journalPath, IdleRetry: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co1.Start(ln)

	ch := submitAsync(context.Background(), t, co1.Addr(), manifest)
	w := dialWorker(t, co1.Addr(), "w")
	lease := w.lease()
	w.finish(lease, []byte("first-half"))
	doneIndex := lease.Index
	co1.Close() // kill mid-sweep: client errors out, second point never ran
	if out := <-ch; out.err == nil {
		t.Fatal("submit survived a coordinator kill")
	}

	cache2, err := runner.OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	co2, err := NewCoordinator(Options{Cache: cache2, JournalPath: journalPath, IdleRetry: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co2.Start(ln2)
	defer co2.Close()

	ch2 := submitAsync(context.Background(), t, co2.Addr(), manifest)
	w2 := dialWorker(t, co2.Addr(), "w2")
	lease2 := w2.lease()
	if lease2.Index == doneIndex {
		t.Fatalf("resumed coordinator re-leased the journaled point %d", doneIndex)
	}
	w2.finish(lease2, []byte("second-half"))

	out := <-ch2
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Stats.JournalHits != 1 || out.res.Stats.Computed != 1 {
		t.Fatalf("resume stats %+v, want 1 journal hit + 1 computed", out.res.Stats)
	}
	if string(out.res.Bytes[doneIndex]) != "first-half" {
		t.Fatalf("journaled point served %q", out.res.Bytes[doneIndex])
	}
	if !out.res.Cached[doneIndex] {
		t.Fatal("journaled point not marked cached")
	}
}

// TestSubmitRejections pins coordinator-side submission validation.
func TestSubmitRejections(t *testing.T) {
	co := startCoordinator(t, Options{})
	if _, err := Submit(context.Background(), co.Addr(), "c", nil, nil); err == nil {
		t.Fatal("empty manifest accepted")
	}
	bad := syntheticManifest(1)
	bad[0].CacheKey = "not-hex"
	if _, err := Submit(context.Background(), co.Addr(), "c", bad, nil); err == nil || !strings.Contains(err.Error(), "malformed cache key") {
		t.Fatalf("malformed key accepted (err=%v)", err)
	}
}

// TestConcurrentWorkersDrainSweep floods a coordinator with synthetic
// workers under the race detector: every point completes exactly once
// from the client's perspective no matter how many workers race.
func TestConcurrentWorkersDrainSweep(t *testing.T) {
	co := startCoordinator(t, Options{LeaseTimeout: time.Second, IdleRetry: time.Millisecond})
	const n = 24
	manifest := syntheticManifest(n)
	ch := submitAsync(context.Background(), t, co.Addr(), manifest)

	var wg sync.WaitGroup
	for wkr := 0; wkr < 4; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", co.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			if WriteMsg(conn, Msg{Kind: KindHello, Role: "worker", ID: "w"}) != nil {
				return
			}
			for {
				if WriteMsg(conn, Msg{Kind: KindGet}) != nil {
					return
				}
				m, err := ReadMsg(conn)
				if err != nil {
					return
				}
				switch m.Kind {
				case KindIdle:
					time.Sleep(time.Millisecond)
				case KindLease:
					res := Msg{Kind: KindResult, Seq: m.Seq, Index: m.Index, CacheKey: m.Point.CacheKey, Bytes: []byte(m.Point.CacheKey)}
					if WriteMsg(conn, res) != nil {
						return
					}
					if _, err := ReadMsg(conn); err != nil {
						return
					}
				}
			}
		}(wkr)
	}

	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	for i, mp := range manifest {
		if string(out.res.Bytes[i]) != mp.CacheKey {
			t.Fatalf("point %d: bytes %q", i, out.res.Bytes[i])
		}
	}
	if out.res.Stats.Computed != n {
		t.Fatalf("stats %+v, want %d computed", out.res.Stats, n)
	}
	co.Close() // unblock any worker waiting in ReadMsg
	wg.Wait()
}
