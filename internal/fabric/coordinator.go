package fabric

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"iobehind/internal/runner"
)

// Options configures a Coordinator.
type Options struct {
	// Cache stores accepted results content-addressed by cache key. It
	// is required: the cache is the fabric's result store (the journal
	// only records which entries were verified) and doubles as the
	// backing store of the HTTP cache server in Handler.
	Cache *runner.Cache
	// JournalPath is the append-only acceptance journal. Empty disables
	// crash resume (acceptance is then tracked in memory only).
	JournalPath string
	// LeaseTimeout is how long a worker may hold a point before the
	// lease expires and the point is re-dispatched to another worker
	// (straggler speculation). Default 60s.
	LeaseTimeout time.Duration
	// IdleRetry is the backoff hint sent to workers when no work is
	// pending. Default 200ms.
	IdleRetry time.Duration
	// Logf receives structured per-lease log lines (key=value pairs).
	// Nil discards them.
	Logf func(format string, args ...any)
	// OnAccept, when non-nil, is called after every first-acceptance of
	// a point — the hook the smoke test and integration tests use to
	// kill a worker mid-sweep at a deterministic moment.
	OnAccept func(worker string, index int, pointKey string)
}

// lease is one outstanding grant.
type lease struct {
	seq      uint64
	index    int
	worker   string
	granted  time.Time
	deadline time.Time
}

// workerInfo is per-worker liveness accounting for /metrics.
type workerInfo struct {
	lastSeen  time.Time
	leases    int // currently held
	completed int // results accepted (first or duplicate)
}

const (
	statePending uint8 = iota
	stateInflight
	stateDone
)

// sweepState is the currently-active (or most recently finished) sweep.
// It survives its own completion so straggler results arriving after
// SweepDone are still recognized as duplicates and byte-verified.
type sweepState struct {
	points []ManifestPoint
	byKey  map[string]int // cache key -> index
	state  []uint8
	shas   []string // accepted entry SHA per done point ("" for error completions)
	errs   []string
	queue  []int
	stats  SweepStats
	done   int

	clientMu sync.Mutex
	client   net.Conn // nil once the submitter disconnects
}

// Coordinator hands manifest points to pull-based workers, re-dispatches
// expired leases, accepts the first completion of each point (verifying
// that any duplicate is byte-identical), journals acceptances for crash
// resume, and streams results back to the submitting client.
type Coordinator struct {
	opts  Options
	cache *runner.Cache
	jr    *journal
	logf  func(string, ...any)

	mu      sync.Mutex
	sweep   *sweepState
	seq     uint64
	leases  map[uint64]*lease
	workers map[string]*workerInfo
	totals  SweepStats // across all sweeps of this incarnation
	closed  bool

	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds a coordinator and loads its journal.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.Cache == nil {
		return nil, fmt.Errorf("fabric: coordinator requires a cache")
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = 60 * time.Second
	}
	if opts.IdleRetry <= 0 {
		opts.IdleRetry = 200 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	jr, err := openJournal(opts.JournalPath)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		opts:    opts,
		cache:   opts.Cache,
		jr:      jr,
		logf:    logf,
		leases:  make(map[uint64]*lease),
		workers: make(map[string]*workerInfo),
		stop:    make(chan struct{}),
	}, nil
}

// Start serves the fabric protocol on ln and launches the lease reaper.
func (c *Coordinator) Start(ln net.Listener) {
	c.ln = ln
	c.wg.Add(2)
	go c.acceptLoop()
	go c.reaper()
}

// Addr returns the listener address (for tests and logs).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close stops serving. In-flight worker computations are abandoned to
// their own fate — acceptance state is already on disk (cache+journal),
// which is exactly what resume-from-journal relies on.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	if c.ln != nil {
		c.ln.Close()
	}
	c.wg.Wait()
	if err := c.jr.close(); err != nil {
		c.logf("fabric: %v", err)
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.stop:
				return
			default:
			}
			c.logf("fabric: accept: %v", err)
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			c.handleConn(conn)
		}()
	}
}

// handleConn reads the hello and dispatches on role.
func (c *Coordinator) handleConn(conn net.Conn) {
	// Unblock reads when the coordinator shuts down.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-c.stop:
			conn.Close()
		case <-done:
		}
	}()

	hello, err := ReadMsg(conn)
	if err != nil || hello.Kind != KindHello {
		return
	}
	switch hello.Role {
	case "worker":
		c.serveWorker(conn, hello.ID)
	case "client":
		c.serveClient(conn, hello.ID)
	default:
		c.logf("fabric: conn from %s: unknown role %q", conn.RemoteAddr(), hello.Role)
	}
}

// touchWorker updates liveness for id and returns its info (locked).
func (c *Coordinator) touchWorker(id string) *workerInfo {
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{}
		c.workers[id] = w
	}
	w.lastSeen = time.Now()
	return w
}

// serveWorker runs the pull loop for one worker connection.
func (c *Coordinator) serveWorker(conn net.Conn, id string) {
	if id == "" {
		id = conn.RemoteAddr().String()
	}
	var held []uint64 // lease seqs granted over this connection, not yet resolved
	defer func() {
		// A dropped connection is a fast straggler signal: re-dispatch
		// its unresolved leases now instead of waiting for the deadline.
		c.mu.Lock()
		for _, seq := range held {
			if l, ok := c.leases[seq]; ok {
				delete(c.leases, seq)
				c.requeueLocked(l, "disconnect")
			}
		}
		if w := c.workers[id]; w != nil && w.leases > 0 {
			w.leases = 0
		}
		c.mu.Unlock()
	}()

	for {
		m, err := ReadMsg(conn)
		if err != nil {
			return
		}
		switch m.Kind {
		case KindGet:
			reply := c.grant(id, &held)
			if err := WriteMsg(conn, reply); err != nil {
				return
			}
		case KindResult:
			dup := c.acceptResult(id, m, &held)
			if err := WriteMsg(conn, Msg{Kind: KindAck, Seq: m.Seq, Dup: dup}); err != nil {
				return
			}
		default:
			c.logf("fabric: worker=%s unexpected %s message", id, m.Kind)
			return
		}
	}
}

// grant hands out the next pending point or an idle hint.
func (c *Coordinator) grant(worker string, held *[]uint64) Msg {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorker(worker)
	sw := c.sweep
	if sw == nil || len(sw.queue) == 0 {
		return Msg{Kind: KindIdle, RetryMS: int(c.opts.IdleRetry / time.Millisecond)}
	}
	idx := sw.queue[0]
	sw.queue = sw.queue[1:]
	sw.state[idx] = stateInflight
	c.seq++
	now := time.Now()
	l := &lease{seq: c.seq, index: idx, worker: worker, granted: now, deadline: now.Add(c.opts.LeaseTimeout)}
	c.leases[l.seq] = l
	*held = append(*held, l.seq)
	w.leases++
	c.logf("fabric: lease seq=%d point=%s worker=%s event=grant deadline=%s",
		l.seq, sw.points[idx].Ref.Key, worker, l.deadline.Format(time.RFC3339))
	return Msg{Kind: KindLease, Seq: l.seq, Index: idx, Point: &sw.points[idx]}
}

// requeueLocked returns a lease's point to the queue. Callers hold c.mu.
func (c *Coordinator) requeueLocked(l *lease, cause string) {
	sw := c.sweep
	if sw == nil || l.index >= len(sw.state) || sw.state[l.index] != stateInflight {
		return
	}
	sw.state[l.index] = statePending
	sw.queue = append(sw.queue, l.index)
	sw.stats.Redispatches++
	c.totals.Redispatches++
	if w := c.workers[l.worker]; w != nil && w.leases > 0 {
		w.leases--
	}
	c.logf("fabric: lease seq=%d point=%s worker=%s event=redispatch cause=%s held=%s",
		l.seq, sw.points[l.index].Ref.Key, l.worker, cause, time.Since(l.granted).Round(time.Millisecond))
}

// reaper expires leases past their deadline.
func (c *Coordinator) reaper() {
	defer c.wg.Done()
	interval := c.opts.LeaseTimeout / 4
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for seq, l := range c.leases {
				if now.After(l.deadline) {
					delete(c.leases, seq)
					c.requeueLocked(l, "expired")
				}
			}
			c.mu.Unlock()
		}
	}
}

// acceptResult records one completion. The first result for a point
// wins; later ones are duplicates, verified byte-identical via SHA-256
// (a mismatch means a determinism violation and is counted loudly).
func (c *Coordinator) acceptResult(worker string, m Msg, held *[]uint64) (dup bool) {
	c.mu.Lock()
	w := c.touchWorker(worker)
	if _, ok := c.leases[m.Seq]; ok {
		delete(c.leases, m.Seq)
		if w.leases > 0 {
			w.leases--
		}
	}
	for i, seq := range *held {
		if seq == m.Seq {
			*held = append((*held)[:i], (*held)[i+1:]...)
			break
		}
	}
	sw := c.sweep
	if sw == nil {
		c.mu.Unlock()
		c.logf("fabric: worker=%s event=orphan-result cachekey=%s", worker, m.CacheKey)
		return true
	}
	idx, ok := sw.byKey[m.CacheKey]
	if !ok {
		c.mu.Unlock()
		c.logf("fabric: worker=%s event=orphan-result cachekey=%s", worker, m.CacheKey)
		return true
	}
	key := sw.points[idx].Ref.Key
	if sw.state[idx] == stateDone {
		sw.stats.Duplicates++
		c.totals.Duplicates++
		w.completed++
		sha := ""
		if m.Err == "" {
			sha = entrySHA(m.Bytes)
		}
		if sha != sw.shas[idx] {
			sw.stats.Mismatches++
			c.totals.Mismatches++
			c.logf("fabric: point=%s worker=%s event=DUPLICATE-MISMATCH first=%s dup=%s — determinism violation, first result kept",
				key, worker, sw.shas[idx], sha)
		} else {
			c.logf("fabric: lease seq=%d point=%s worker=%s event=duplicate", m.Seq, key, worker)
		}
		c.mu.Unlock()
		return true
	}
	sw.state[idx] = stateDone
	sw.done++
	w.completed++
	if m.Err != "" {
		sw.errs[idx] = m.Err
		sw.stats.Errors++
		c.totals.Errors++
	} else {
		sw.shas[idx] = entrySHA(m.Bytes)
		sw.stats.Computed++
		c.totals.Computed++
	}
	finished := sw.done == len(sw.points)
	stats := sw.stats
	c.mu.Unlock()

	if m.Err == "" {
		// Content-addressed write (atomic temp+rename): idempotent under
		// duplicate completions, and the store resume reads from.
		c.cache.PutBytes(m.CacheKey, m.Bytes)
		if err := c.jr.append(m.CacheKey, key, m.Bytes); err != nil {
			c.logf("fabric: journal: %v", err)
		}
		c.logf("fabric: lease seq=%d point=%s worker=%s event=accept bytes=%d", m.Seq, key, worker, len(m.Bytes))
	} else {
		c.logf("fabric: lease seq=%d point=%s worker=%s event=accept-error err=%q", m.Seq, key, worker, m.Err)
	}
	c.streamResult(sw, Msg{Kind: KindResult, Index: idx, Bytes: m.Bytes, Err: m.Err})
	if c.opts.OnAccept != nil {
		c.opts.OnAccept(worker, idx, key)
	}
	if finished {
		c.finishSweep(sw, stats)
	}
	return false
}

// streamResult pushes one result to the submitting client, if still
// connected. A failed write drops the client; the sweep itself proceeds
// (results are durable in cache+journal, a resubmission resumes them).
func (c *Coordinator) streamResult(sw *sweepState, m Msg) {
	sw.clientMu.Lock()
	defer sw.clientMu.Unlock()
	if sw.client == nil {
		return
	}
	if err := WriteMsg(sw.client, m); err != nil {
		c.logf("fabric: client write failed, detaching: %v", err)
		sw.client.Close()
		sw.client = nil
	}
}

// finishSweep sends the final stats to the client.
func (c *Coordinator) finishSweep(sw *sweepState, stats SweepStats) {
	c.logf("fabric: sweep done points=%d computed=%d journal=%d cache=%d redispatch=%d dup=%d err=%d",
		stats.Points, stats.Computed, stats.JournalHits, stats.CacheHits,
		stats.Redispatches, stats.Duplicates, stats.Errors)
	c.streamResult(sw, Msg{Kind: KindSweepDone, Stats: &stats})
}

// serveClient accepts one submission on conn and streams its results.
func (c *Coordinator) serveClient(conn net.Conn, id string) {
	m, err := ReadMsg(conn)
	if err != nil || m.Kind != KindSubmit {
		return
	}
	if len(m.Points) == 0 {
		WriteMsg(conn, Msg{Kind: KindAccepted, Err: "empty manifest"})
		return
	}
	keys := make(map[string]bool, len(m.Points))
	for _, mp := range m.Points {
		if !runner.ValidCacheKey(mp.CacheKey) {
			WriteMsg(conn, Msg{Kind: KindAccepted, Err: fmt.Sprintf("point %s: malformed cache key", mp.Ref.Key)})
			return
		}
		if keys[mp.CacheKey] {
			// Two points sharing an address would alias in byKey and the
			// cache; real configs cannot collide, so this is a client bug.
			WriteMsg(conn, Msg{Kind: KindAccepted, Err: fmt.Sprintf("point %s: duplicate cache key in manifest", mp.Ref.Key)})
			return
		}
		keys[mp.CacheKey] = true
	}

	c.mu.Lock()
	if c.sweep != nil && c.sweep.done < len(c.sweep.points) {
		c.mu.Unlock()
		WriteMsg(conn, Msg{Kind: KindAccepted, Err: "coordinator busy with an active sweep"})
		return
	}
	sw := &sweepState{
		points: m.Points,
		byKey:  make(map[string]int, len(m.Points)),
		state:  make([]uint8, len(m.Points)),
		shas:   make([]string, len(m.Points)),
		errs:   make([]string, len(m.Points)),
		client: conn,
	}
	sw.stats.Points = len(m.Points)
	type instant struct {
		idx    int
		bytes  []byte
		fromJr bool
	}
	var ready []instant
	for i, mp := range m.Points {
		sw.byKey[mp.CacheKey] = i
		// Resume and shared-cache probe: a journal entry whose cache
		// bytes still match is an accepted result from a previous
		// incarnation; bare cache bytes (written by a worker PUT or a
		// local cached run) are trusted the same way the local runner
		// trusts its cache.
		if sha, ok := c.jr.lookup(mp.CacheKey); ok {
			if data, ok := c.cache.GetBytes(mp.CacheKey); ok && entrySHA(data) == sha {
				sw.state[i] = stateDone
				sw.shas[i] = sha
				sw.done++
				sw.stats.JournalHits++
				c.totals.JournalHits++
				ready = append(ready, instant{idx: i, bytes: data, fromJr: true})
				continue
			}
		}
		if data, ok := c.cache.GetBytes(mp.CacheKey); ok {
			sw.state[i] = stateDone
			sw.shas[i] = entrySHA(data)
			sw.done++
			sw.stats.CacheHits++
			c.totals.CacheHits++
			ready = append(ready, instant{idx: i, bytes: data})
			continue
		}
		sw.queue = append(sw.queue, i)
	}
	c.sweep = sw
	stats := sw.stats
	pending := len(sw.queue)
	finished := sw.done == len(sw.points)
	c.mu.Unlock()

	c.logf("fabric: client=%s event=submit points=%d journal=%d cache=%d pending=%d",
		id, stats.Points, stats.JournalHits, stats.CacheHits, pending)
	if err := WriteMsg(conn, Msg{Kind: KindAccepted, Stats: &stats}); err != nil {
		return
	}
	for _, r := range ready {
		c.streamResult(sw, Msg{Kind: KindResult, Index: r.idx, Bytes: r.bytes, Cached: true})
	}
	if finished {
		c.finishSweep(sw, stats)
	}

	// Block until the client hangs up (or sends anything else, which we
	// ignore); detach it so worker-side streaming stops cleanly.
	for {
		if _, err := ReadMsg(conn); err != nil {
			break
		}
	}
	sw.clientMu.Lock()
	if sw.client == conn {
		sw.client = nil
	}
	sw.clientMu.Unlock()
}

// Snapshot is a point-in-time view of the coordinator for /metrics and
// tests.
type Snapshot struct {
	Pending  int
	Inflight int
	Done     int
	Totals   SweepStats
	Workers  map[string]WorkerSnapshot
}

// WorkerSnapshot is one worker's liveness view.
type WorkerSnapshot struct {
	LastSeen  time.Time
	Leases    int
	Completed int
}

// Snapshot returns the current counters.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Totals: c.totals, Workers: make(map[string]WorkerSnapshot, len(c.workers))}
	if sw := c.sweep; sw != nil {
		for _, st := range sw.state {
			switch st {
			case statePending:
				s.Pending++
			case stateInflight:
				s.Inflight++
			case stateDone:
				s.Done++
			}
		}
	}
	for id, w := range c.workers {
		s.Workers[id] = WorkerSnapshot{LastSeen: w.lastSeen, Leases: w.leases, Completed: w.completed}
	}
	return s
}

// Handler returns the coordinator's HTTP surface: the content-addressed
// cache server plus observability.
//
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text exposition
//	GET  /cache/{key}   shared cache read
//	PUT  /cache/{key}   shared cache write
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/cache/", CacheHandler(c.cache))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", c.serveMetrics)
	return mux
}

// serveMetrics writes the Prometheus text exposition format (0.0.4),
// mirroring the gateway's metrics surface.
func (c *Coordinator) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := c.Snapshot()
	cst := c.cache.Stats()
	var b strings.Builder
	counter := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("iofabric_points_pending", "Points queued awaiting a lease.", snap.Pending)
	gauge("iofabric_points_inflight", "Points currently leased to workers.", snap.Inflight)
	gauge("iofabric_points_done", "Points of the current sweep completed.", snap.Done)
	counter("iofabric_results_computed_total", "Results computed by workers.", snap.Totals.Computed)
	counter("iofabric_journal_hits_total", "Points resumed from the acceptance journal.", snap.Totals.JournalHits)
	counter("iofabric_cache_hits_total", "Points served from the shared cache at submit.", snap.Totals.CacheHits)
	counter("iofabric_redispatches_total", "Leases expired or dropped and re-queued.", snap.Totals.Redispatches)
	counter("iofabric_duplicate_results_total", "Straggler completions after another worker's.", snap.Totals.Duplicates)
	counter("iofabric_result_mismatches_total", "Duplicate completions whose bytes differed (determinism violations).", snap.Totals.Mismatches)
	counter("iofabric_point_errors_total", "Points completed with an error.", snap.Totals.Errors)
	counter("iofabric_cache_store_hits_total", "Shared-cache reads served.", cst.Hits)
	counter("iofabric_cache_store_misses_total", "Shared-cache reads missed.", cst.Misses)
	counter("iofabric_cache_store_writes_total", "Shared-cache entries written.", cst.Writes)
	counter("iofabric_cache_store_errors_total", "Shared-cache read/write failures.", cst.Errors)
	ratio := 0.0
	if cst.Hits+cst.Misses > 0 {
		ratio = float64(cst.Hits) / float64(cst.Hits+cst.Misses)
	}
	fmt.Fprintf(&b, "# HELP iofabric_cache_hit_ratio Fraction of shared-cache reads served.\n# TYPE iofabric_cache_hit_ratio gauge\niofabric_cache_hit_ratio %.4f\n", ratio)
	ids := make([]string, 0, len(snap.Workers))
	for id := range snap.Workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, "# HELP iofabric_worker_idle_seconds Seconds since the worker was last heard from.\n# TYPE iofabric_worker_idle_seconds gauge\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "iofabric_worker_idle_seconds{worker=%q} %.3f\n", id, time.Since(snap.Workers[id].LastSeen).Seconds())
	}
	fmt.Fprintf(&b, "# HELP iofabric_worker_leases Leases currently held per worker.\n# TYPE iofabric_worker_leases gauge\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "iofabric_worker_leases{worker=%q} %d\n", id, snap.Workers[id].Leases)
	}
	fmt.Fprintf(&b, "# HELP iofabric_worker_completed_total Results delivered per worker.\n# TYPE iofabric_worker_completed_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "iofabric_worker_completed_total{worker=%q} %d\n", id, snap.Workers[id].Completed)
	}
	w.Write([]byte(b.String()))
}
