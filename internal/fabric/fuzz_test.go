package fabric

import (
	"bytes"
	"testing"
)

// FuzzDecodeMsg fuzzes the fabric's single decode path, mirroring
// tmio's FuzzDecodeStreamRecord: whatever the bytes, DecodeMsg must not
// panic, and on error it must return exactly the zero message. Valid
// messages must re-encode and re-decode to the same kind (gob is not
// canonical, so byte-stability is asserted elsewhere, not here).
func FuzzDecodeMsg(f *testing.F) {
	seed := []Msg{
		{Kind: KindHello, Role: "worker", ID: "w0"},
		{Kind: KindGet},
		{Kind: KindIdle, RetryMS: 250},
		{Kind: KindResult, Seq: 3, Index: 1, CacheKey: "abc", Bytes: []byte{9, 9}},
		{Kind: KindAck, Seq: 3, Dup: true},
		{Kind: KindSweepDone, Stats: &SweepStats{Points: 4}},
	}
	for _, m := range seed {
		var buf bytes.Buffer
		if err := WriteMsg(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()[4:])
	}
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeMsg(payload)
		if err != nil {
			if !isZeroMsg(m) {
				t.Fatalf("error %v but non-zero message %+v", err, m)
			}
			return
		}
		if m.V < 1 || m.V > ProtocolVersion {
			t.Fatalf("accepted message with version %d", m.V)
		}
		if m.Kind < KindHello || m.Kind > KindSweepDone {
			t.Fatalf("accepted message with kind %d", m.Kind)
		}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		m2, err := ReadMsg(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if m2.Kind != m.Kind || m2.Seq != m.Seq || m2.Index != m.Index || m2.CacheKey != m.CacheKey {
			t.Fatalf("re-round-trip changed identity: %+v vs %+v", m2, m)
		}
	})
}
