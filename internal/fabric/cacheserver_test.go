package fabric

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"iobehind/internal/runner"
)

func newCacheServer(t *testing.T) (*runner.Cache, *httptest.Server) {
	t.Helper()
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(CacheHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

// TestCacheServerRoundTrip PUTs through one RemoteCache and GETs through
// another — the shape of two workers sharing one server.
func TestCacheServerRoundTrip(t *testing.T) {
	disk, srv := newCacheServer(t)
	key := strings.Repeat("ab", 32)
	data := []byte("shared-entry-bytes")

	w1 := NewRemoteCache(srv.URL)
	if ok := w1.PutBytes(key, data); !ok {
		t.Fatal("put failed")
	}
	w2 := NewRemoteCache(srv.URL)
	got, ok := w2.GetBytes(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("second client read %q, %v", got, ok)
	}
	// The server's disk cache holds the same bytes: a later local run
	// pointed at the same directory hits without HTTP.
	if onDisk, ok := disk.GetBytes(key); !ok || !bytes.Equal(onDisk, data) {
		t.Fatal("entry not in the backing disk cache")
	}
	st := w2.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("client stats %+v, want 1 hit", st)
	}
	if _, ok := w2.GetBytes(strings.Repeat("00", 32)); ok {
		t.Fatal("absent key hit")
	}
	if st := w2.Stats(); st.Misses != 1 {
		t.Fatalf("stats after miss: %+v", st)
	}
}

// TestCacheServerRejects pins the input validation.
func TestCacheServerRejects(t *testing.T) {
	_, srv := newCacheServer(t)
	for _, path := range []string{
		"/cache/short",
		"/cache/" + strings.Repeat("ZZ", 32), // uppercase hex
		"/cache/" + strings.Repeat("ab", 33), // wrong length
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// Empty body PUT is rejected.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/cache/"+strings.Repeat("ab", 32), bytes.NewReader(nil))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty PUT: status %d, want 400", resp.StatusCode)
	}
}

// TestRemoteCacheDegradesToMiss points a client at a dead server and
// asserts every operation degrades to a miss, never an error return.
func TestRemoteCacheDegradesToMiss(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // dead on arrival
	rc := NewRemoteCache(url)
	if _, ok := rc.GetBytes(strings.Repeat("ab", 32)); ok {
		t.Fatal("dead server produced a hit")
	}
	if ok := rc.PutBytes(strings.Repeat("ab", 32), []byte("x")); ok {
		t.Fatal("dead server accepted a put")
	}
	st := rc.Stats()
	if st.Errors == 0 {
		t.Fatalf("stats %+v recorded no errors", st)
	}
}

// TestTieredCacheFillsLocal computes the layering contract: a remote hit
// fills the local tier byte-for-byte, so the next probe stays on disk.
func TestTieredCacheFillsLocal(t *testing.T) {
	_, srv := newCacheServer(t)
	remote := NewRemoteCache(srv.URL)
	local, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTieredCache(local, remote)

	type payload struct{ N int }
	key := strings.Repeat("cd", 32)
	remote.Put(key, &payload{N: 7})
	remoteBytes, ok := remote.GetBytes(key)
	if !ok {
		t.Fatal("seeded entry missing")
	}

	alloc := func() any { return new(payload) }
	v, ok := tier.Get(key, alloc)
	if !ok || v.(*payload).N != 7 {
		t.Fatalf("tier miss or wrong value: %+v, %v", v, ok)
	}
	localBytes, ok := local.GetBytes(key)
	if !ok {
		t.Fatal("remote hit did not fill local tier")
	}
	if !bytes.Equal(localBytes, remoteBytes) {
		t.Fatal("local fill is not byte-identical to the remote entry")
	}
	// Second probe must be served locally: kill the server and re-get.
	srv.Close()
	v2, ok := tier.Get(key, alloc)
	if !ok || v2.(*payload).N != 7 {
		t.Fatal("second probe did not survive server death (local tier not used)")
	}
	// Put writes through to both tiers.
	local2, _ := runner.OpenCache(t.TempDir())
	_, srv2 := newCacheServer(t)
	remote2 := NewRemoteCache(srv2.URL)
	tier2 := NewTieredCache(local2, remote2)
	key2 := strings.Repeat("ef", 32)
	tier2.Put(key2, &payload{N: 9})
	if _, ok := local2.GetBytes(key2); !ok {
		t.Fatal("put skipped local tier")
	}
	if _, ok := remote2.GetBytes(key2); !ok {
		t.Fatal("put skipped remote tier")
	}
}
