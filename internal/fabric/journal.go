package fabric

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// journalEntry is one accepted result: the point's content address, the
// SHA-256 of the accepted entry bytes (so resume can refuse a cache file
// that does not match what was accepted), and the human point key for
// logs. Error completions are deliberately not journaled — a resumed
// sweep retries them.
type journalEntry struct {
	CacheKey string `json:"k"`
	SHA      string `json:"sha"`
	Key      string `json:"key"`
}

// decodeJournalLine parses one journal line — the journal's single
// decode path. Zero entry on error; blank lines are errors the loader
// skips silently (a crash can tear the final line).
func decodeJournalLine(line []byte) (journalEntry, error) {
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 {
		return journalEntry{}, errors.New("fabric: empty journal line")
	}
	var e journalEntry
	if err := json.Unmarshal(trimmed, &e); err != nil {
		return journalEntry{}, fmt.Errorf("fabric: decode journal line: %w", err)
	}
	if e.CacheKey == "" || e.SHA == "" {
		return journalEntry{}, errors.New("fabric: journal line missing cache key or sha")
	}
	return e, nil
}

// journal is the coordinator's append-only acceptance log. Appends are
// synchronous JSON lines; a coordinator killed mid-write tears at most
// the final line, which the loader skips. The journal records
// *acceptance*, not results: bytes live in the content-addressed cache,
// the journal says which cache entries a previous incarnation verified.
type journal struct {
	mu    sync.Mutex
	f     *os.File
	known map[string]string // cache key -> accepted sha
}

// openJournal opens (creating if needed) the journal at path and loads
// every well-formed line. path == "" yields a memory-only journal that
// still deduplicates within one run but cannot resume.
func openJournal(path string) (*journal, error) {
	j := &journal{known: make(map[string]string)}
	if path == "" {
		return j, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: open journal: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		e, err := decodeJournalLine(sc.Bytes())
		if err != nil {
			continue // blank, torn, or foreign line: ignore, never trust
		}
		j.known[e.CacheKey] = e.SHA
	}
	if err := sc.Err(); err != nil {
		//iolint:ignore errdrop open failed before any append; nothing was accepted through this handle, so a close error cannot lose journaled acceptances
		f.Close()
		return nil, fmt.Errorf("fabric: read journal: %w", err)
	}
	// A crash can leave the file without a final newline; terminate the
	// torn tail so the next append starts a fresh line instead of gluing
	// onto (and losing with) the torn one.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, st.Size()-1); err == nil && tail[0] != '\n' {
			f.Write([]byte("\n"))
		}
	}
	j.f = f
	return j, nil
}

// lookup returns the accepted sha for a cache key, if any.
func (j *journal) lookup(cacheKey string) (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	sha, ok := j.known[cacheKey]
	return sha, ok
}

// append records an acceptance. Write failures are returned but leave
// the in-memory state updated: the sweep proceeds, only resume coverage
// degrades.
func (j *journal) append(cacheKey, pointKey string, data []byte) error {
	sum := sha256.Sum256(data)
	sha := hex.EncodeToString(sum[:])
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.known[cacheKey]; ok && prev == sha {
		return nil // idempotent re-acceptance (duplicate completion)
	}
	j.known[cacheKey] = sha
	if j.f == nil {
		return nil
	}
	line, err := json.Marshal(journalEntry{CacheKey: cacheKey, SHA: sha, Key: pointKey})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("fabric: append journal: %w", err)
	}
	return nil
}

// close releases the journal file. The Close error is reported: an
// acceptance written into the OS but failing to close may not be
// durable, and resume silently loses coverage if that is swallowed.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("fabric: close journal: %w", err)
	}
	return nil
}

// entrySHA hashes entry bytes the way the journal does.
func entrySHA(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
