package fabric

import (
	"context"
	"fmt"
	"net"
	"time"

	"iobehind/internal/experiments"
	"iobehind/internal/runner"
)

// ManifestFor pairs resolved points with their serializable refs into
// the wire manifest, computing each point's content address. The two
// slices must come from the same enumeration (e.g. a Plan's Points and
// Refs).
func ManifestFor(points []runner.Point, refs []experiments.PointRef) ([]ManifestPoint, error) {
	if len(points) != len(refs) {
		return nil, fmt.Errorf("fabric: %d points vs %d refs", len(points), len(refs))
	}
	manifest := make([]ManifestPoint, len(points))
	for i, p := range points {
		if p.New == nil {
			return nil, fmt.Errorf("fabric: point %s has no result allocator; it cannot travel the fabric", p.Key)
		}
		if refs[i].Key != p.Key {
			return nil, fmt.Errorf("fabric: ref %s paired with point %s", refs[i], p.Key)
		}
		ckey, err := runner.CacheKey(p)
		if err != nil {
			return nil, fmt.Errorf("fabric: hash config of %s: %w", p.Key, err)
		}
		manifest[i] = ManifestPoint{Ref: refs[i], Config: p.Config, CacheKey: ckey}
	}
	return manifest, nil
}

// SubmitResult is one sweep's outcome as received from the coordinator.
type SubmitResult struct {
	// Bytes holds each point's gob entry bytes (nil where Errs is set).
	Bytes [][]byte
	// Errs holds per-point failure messages ("" for success).
	Errs []string
	// Cached marks points served from the coordinator's journal or cache
	// without a worker computation this sweep.
	Cached []bool
	// Stats is the coordinator's final accounting for the sweep.
	Stats SweepStats
}

// Submit sends a manifest to the coordinator at addr and blocks until
// every point has a result (streamed as workers finish them) or ctx is
// cancelled. id names the client in coordinator logs; logf (may be nil)
// receives progress lines.
func Submit(ctx context.Context, addr, id string, manifest []ManifestPoint, logf func(string, ...any)) (*SubmitResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(manifest) == 0 {
		return nil, fmt.Errorf("fabric: empty manifest")
	}
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: dial coordinator %s: %w", addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if err := WriteMsg(conn, Msg{Kind: KindHello, Role: "client", ID: id}); err != nil {
		return nil, err
	}
	if err := WriteMsg(conn, Msg{Kind: KindSubmit, ID: id, Points: manifest}); err != nil {
		return nil, err
	}
	acc, err := ReadMsg(conn)
	if err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("fabric: read accept: %w", err))
	}
	if acc.Kind != KindAccepted {
		return nil, fmt.Errorf("fabric: coordinator replied %s to submit", acc.Kind)
	}
	if acc.Err != "" {
		return nil, fmt.Errorf("fabric: submission rejected: %s", acc.Err)
	}
	if acc.Stats != nil {
		logf("fabric: submitted %d points (%d from journal, %d from cache)",
			acc.Stats.Points, acc.Stats.JournalHits, acc.Stats.CacheHits)
	}

	out := &SubmitResult{
		Bytes:  make([][]byte, len(manifest)),
		Errs:   make([]string, len(manifest)),
		Cached: make([]bool, len(manifest)),
	}
	got := make([]bool, len(manifest))
	received := 0
	for {
		m, err := ReadMsg(conn)
		if err != nil {
			return nil, ctxErr(ctx, fmt.Errorf("fabric: sweep interrupted after %d/%d results: %w", received, len(manifest), err))
		}
		switch m.Kind {
		case KindResult:
			if m.Index < 0 || m.Index >= len(manifest) {
				return nil, fmt.Errorf("fabric: result index %d out of range", m.Index)
			}
			if got[m.Index] {
				continue // coordinator resent; first delivery stands
			}
			got[m.Index] = true
			received++
			out.Bytes[m.Index] = m.Bytes
			out.Errs[m.Index] = m.Err
			out.Cached[m.Index] = m.Cached
		case KindSweepDone:
			if m.Stats != nil {
				out.Stats = *m.Stats
			}
			for i, ok := range got {
				if !ok {
					return nil, fmt.Errorf("fabric: sweep done but point %s never reported", manifest[i].Ref.Key)
				}
			}
			return out, nil
		default:
			return nil, fmt.Errorf("fabric: unexpected %s message mid-sweep", m.Kind)
		}
	}
}

// DecodeResults turns a SubmitResult back into runner.Results in input
// order, decoding each entry with its point's allocator — the shape the
// figure assemblers already consume, so a distributed sweep plugs in
// where a local runner.Run call was.
func DecodeResults(points []runner.Point, sub *SubmitResult) ([]runner.Result, error) {
	if len(points) != len(sub.Bytes) {
		return nil, fmt.Errorf("fabric: %d points vs %d results", len(points), len(sub.Bytes))
	}
	results := make([]runner.Result, len(points))
	for i, p := range points {
		results[i] = runner.Result{Key: p.Key, Cached: sub.Cached[i]}
		if sub.Errs[i] != "" {
			results[i].Err = fmt.Errorf("fabric: point %s: %s", p.Key, sub.Errs[i])
			continue
		}
		v, err := runner.DecodeEntry(sub.Bytes[i], p.New)
		if err != nil {
			return nil, fmt.Errorf("fabric: decode result of %s: %w", p.Key, err)
		}
		results[i].Value = v
	}
	return results, nil
}

// ctxErr prefers the context's error over a transport error it caused.
func ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
