package region

import (
	"math"
	"testing"

	"iobehind/internal/des"
)

func TestOnlineSweepMatchesOffline(t *testing.T) {
	o := NewOnlineSweep("B")
	if o.Max() != 0 || o.Len() != 0 {
		t.Fatal("empty sweep state")
	}
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }
	phases := []Phase{
		{Rank: 0, Start: sec(0), End: sec(5), Value: 10},
		{Rank: 1, Start: sec(2), End: sec(7), Value: 20},
		{Rank: 2, Start: sec(4), End: sec(6), Value: 5},
		{Rank: 0, Start: sec(10), End: sec(10), Value: 99}, // degenerate: dropped
	}
	for i, ph := range phases {
		o.Add(ph)
		// Mid-stream queries must reflect everything added so far.
		want := Sweep("B", phases[:i+1]).Max()
		if got := o.Max(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("after %d adds: online max %v, offline %v", i+1, got, want)
		}
	}
	if o.Len() != 3 {
		t.Fatalf("len = %d, want 3 (degenerate dropped)", o.Len())
	}
	// Peak region: [4,5) where all three overlap = 35.
	if got := o.Max(); math.Abs(got-35) > 1e-9 {
		t.Fatalf("max = %v, want 35", got)
	}
	s := o.Series()
	if got := s.At(sec(4.5)); math.Abs(got-35) > 1e-9 {
		t.Fatalf("series at 4.5s = %v", got)
	}
	// Snapshot semantics: adding after a query leaves the old snapshot
	// intact and updates the next one.
	o.Add(Phase{Rank: 3, Start: sec(4), End: sec(5), Value: 100})
	if got := s.At(sec(4.5)); math.Abs(got-35) > 1e-9 {
		t.Fatal("old snapshot mutated")
	}
	if got := o.Max(); math.Abs(got-135) > 1e-9 {
		t.Fatalf("new max = %v", got)
	}
}
