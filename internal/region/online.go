package region

import (
	"iobehind/internal/metrics"
)

// OnlineSweep accumulates rank phases as they close during a run and
// answers application-level queries mid-flight — the paper's online
// aggregation mode ("the captured data can be aggregated over the ranks to
// produce application-level metrics online or offline through flags").
// External consumers such as I/O schedulers can poll Max for the current
// application-level required bandwidth while the application still runs.
type OnlineSweep struct {
	name   string
	phases []Phase
	dirty  bool
	maxVal float64
	series *metrics.Series
}

// NewOnlineSweep creates an empty aggregator producing a series with the
// given name.
func NewOnlineSweep(name string) *OnlineSweep {
	return &OnlineSweep{name: name, series: &metrics.Series{Name: name}}
}

// Add records a closed phase. Phases may arrive in any order across ranks.
func (o *OnlineSweep) Add(ph Phase) {
	if ph.End <= ph.Start {
		return
	}
	o.phases = append(o.phases, ph)
	o.dirty = true
}

// Len returns the number of recorded phases.
func (o *OnlineSweep) Len() int { return len(o.phases) }

// refresh recomputes the sweep if new phases arrived since the last query.
// Queries are far rarer than insertions (a scheduler polling every few
// seconds versus thousands of phase closes), so recompute-on-read keeps
// insertion O(1).
func (o *OnlineSweep) refresh() {
	if !o.dirty {
		return
	}
	o.series = Sweep(o.name, o.phases)
	o.maxVal = o.series.Max()
	o.dirty = false
}

// Max returns the current application-level required bandwidth: the
// maximum of the Eq. 3 sweep over everything observed so far.
func (o *OnlineSweep) Max() float64 {
	o.refresh()
	return o.maxVal
}

// Series returns the current application-level step series. The returned
// series is a snapshot; later Adds do not mutate it.
func (o *OnlineSweep) Series() *metrics.Series {
	o.refresh()
	return o.series
}
