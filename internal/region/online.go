package region

import (
	"iobehind/internal/metrics"
)

// OnlineSweep accumulates rank phases as they close during a run and
// answers application-level queries mid-flight — the paper's online
// aggregation mode ("the captured data can be aggregated over the ranks to
// produce application-level metrics online or offline through flags").
// External consumers such as I/O schedulers can poll Max for the current
// application-level required bandwidth while the application still runs.
//
// It is a thin wrapper over IncrementalSweep: Add folds the phase into
// the sorted boundary structure immediately (O(log n) plus a bounded
// refold for in-order arrival), so Max is O(1) and Series a straight
// walk — the old recompute-on-read full re-sort per query is gone.
type OnlineSweep struct {
	inc *IncrementalSweep
}

// NewOnlineSweep creates an empty aggregator producing a series with the
// given name.
func NewOnlineSweep(name string) *OnlineSweep {
	return &OnlineSweep{inc: NewIncrementalSweep(name)}
}

// Add records a closed phase. Phases may arrive in any order across ranks.
func (o *OnlineSweep) Add(ph Phase) {
	o.inc.Add(ph)
}

// Len returns the number of recorded phases.
func (o *OnlineSweep) Len() int { return o.inc.Len() }

// Max returns the current application-level required bandwidth: the
// maximum of the Eq. 3 sweep over everything observed so far.
func (o *OnlineSweep) Max() float64 { return o.inc.Max() }

// Series returns the current application-level step series. The returned
// series is a snapshot; later Adds do not mutate it.
func (o *OnlineSweep) Series() *metrics.Series { return o.inc.Series() }
