package region

import (
	"math/rand"
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
)

func ms(n int) des.Time { return des.Time(n) * des.Time(des.Millisecond) }

// diffSeries returns a description of the first divergence between two
// series under exact (bit-level) comparison, or "" when identical.
func diffSeries(got, want *metrics.Series) string {
	if len(got.Points) != len(want.Points) {
		return "length mismatch"
	}
	for i := range got.Points {
		if got.Points[i] != want.Points[i] {
			return "point mismatch"
		}
	}
	return ""
}

func requireExactMatch(t *testing.T, inc *IncrementalSweep, oracle []Phase) {
	t.Helper()
	off := Sweep("B", oracle)
	got := inc.Series()
	if d := diffSeries(got, off); d != "" {
		t.Fatalf("series diverges from offline Sweep (%s):\n got %v\nwant %v", d, got.Points, off.Points)
	}
	if inc.Max() != off.Max() {
		t.Fatalf("Max() = %v, offline %v (must be bit-identical)", inc.Max(), off.Max())
	}
}

// permute4 mirrors internal/pfs/order_test.go: every order of four
// indices, small enough to enumerate.
var permute4 = [][]int{
	{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}, {0, 2, 1, 3}, {3, 0, 2, 1},
}

// TestIncrementalPermutationDeterministic pins the committed invariant:
// the incremental sweep must reproduce the offline Sweep bit-for-bit no
// matter what order phases arrive in. The phase set is chosen so ties
// bite: coincident boundaries, a start meeting an end, equal values, and
// a non-representable value whose accumulation order would show in the
// low bits if the fold order were permutation-dependent.
func TestIncrementalPermutationDeterministic(t *testing.T) {
	const r = 7.3e6 // deliberately non-representable
	phases := []Phase{
		{Rank: 0, Start: ms(0), End: ms(30), Value: r},
		{Rank: 1, Start: ms(10), End: ms(30), Value: r * 3},
		{Rank: 2, Start: ms(10), End: ms(40), Value: r * 7},
		{Rank: 3, Start: ms(30), End: ms(50), Value: r},
	}
	var want *metrics.Series
	var wantMax float64
	for pi, perm := range permute4 {
		inc := NewIncrementalSweep("B")
		var arrived []Phase
		for _, i := range perm {
			if !inc.Add(phases[i]) {
				t.Fatalf("perm %v: Add(%+v) rejected", perm, phases[i])
			}
			arrived = append(arrived, phases[i])
		}
		// The offline oracle must itself be arrival-order independent
		// (canonical tie-break), and the incremental result must match it.
		requireExactMatch(t, inc, arrived)
		got := inc.Series()
		if pi == 0 {
			want = got
			wantMax = inc.Max()
			continue
		}
		if d := diffSeries(got, want); d != "" {
			t.Fatalf("perm %v: series differs from first permutation (%s)", perm, d)
		}
		if inc.Max() != wantMax {
			t.Fatalf("perm %v: Max %v != %v", perm, inc.Max(), wantMax)
		}
	}
}

// TestSweepPermutationDeterministic pins the offline comparator: with the
// canonical (time, delta) event order, Sweep itself must be bit-identical
// across input permutations — the property the incremental engine's
// equality contract is built on.
func TestSweepPermutationDeterministic(t *testing.T) {
	const r = 11.7e5
	phases := []Phase{
		{Start: ms(0), End: ms(20), Value: r},
		{Start: ms(20), End: ms(40), Value: r * 1.9},
		{Start: ms(0), End: ms(40), Value: r * 0.7},
		{Start: ms(20), End: ms(30), Value: r},
	}
	var want *metrics.Series
	for pi, perm := range permute4 {
		in := make([]Phase, 0, len(phases))
		for _, i := range perm {
			in = append(in, phases[i])
		}
		got := Sweep("B", in)
		if pi == 0 {
			want = got
			continue
		}
		if d := diffSeries(got, want); d != "" {
			t.Fatalf("perm %v: offline Sweep differs from first permutation (%s):\n got %v\nwant %v",
				perm, d, got.Points, want.Points)
		}
	}
}

// TestIncrementalEmpty pins the zero-record case: no phases, and phases
// that are all degenerate, both yield an empty series and zero Max —
// exactly like the offline sweep.
func TestIncrementalEmpty(t *testing.T) {
	inc := NewIncrementalSweep("B")
	requireExactMatch(t, inc, nil)
	if got := inc.Series(); len(got.Points) != 0 {
		t.Fatalf("empty sweep produced points: %v", got.Points)
	}
	if inc.Add(Phase{Start: ms(10), End: ms(10), Value: 5}) {
		t.Fatal("zero-width phase accepted")
	}
	if inc.Add(Phase{Start: ms(10), End: ms(5), Value: 5}) {
		t.Fatal("inverted phase accepted")
	}
	requireExactMatch(t, inc, nil)
	if n, c := inc.Size(); n != 0 || c != 0 {
		t.Fatalf("degenerate phases left state: %d boundaries, %d chunks", n, c)
	}
}

// TestIncrementalRandomOrderAcrossSplits drives enough boundaries through
// the structure to force many chunk splits, in shuffled arrival order
// with heavy time collisions, and requires exact equality throughout.
func TestIncrementalRandomOrderAcrossSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 3000 // 6000 boundaries: well past several chunkMax splits
	phases := make([]Phase, n)
	for i := range phases {
		start := rng.Intn(500) // dense: many coincident boundaries
		dur := 1 + rng.Intn(60)
		phases[i] = Phase{
			Rank:  i % 16,
			Start: ms(start),
			End:   ms(start + dur),
			Value: float64(1+rng.Intn(9)) * 1.37e6,
		}
	}
	rng.Shuffle(n, func(i, j int) { phases[i], phases[j] = phases[j], phases[i] })
	inc := NewIncrementalSweep("B")
	for i, ph := range phases {
		if !inc.Add(ph) {
			t.Fatalf("Add(%+v) rejected", ph)
		}
		// Spot-check mid-stream so intermediate folds are pinned too.
		if i%500 == 499 {
			requireExactMatch(t, inc, phases[:i+1])
		}
	}
	requireExactMatch(t, inc, phases)
	if bounds, chunks := inc.Size(); chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d (%d boundaries)", chunks, bounds)
	}
}

// TestIncrementalReversedArrival is the worst case for the refold: every
// insertion lands at the front. Correctness (exact equality) must hold
// even where the complexity degrades.
func TestIncrementalReversedArrival(t *testing.T) {
	const n = 1500
	phases := make([]Phase, 0, n)
	for i := n - 1; i >= 0; i-- {
		phases = append(phases, Phase{Start: ms(i * 2), End: ms(i*2 + 3), Value: 2.13e6})
	}
	inc := NewIncrementalSweep("B")
	for _, ph := range phases {
		inc.Add(ph)
	}
	requireExactMatch(t, inc, phases)
}

// TestIncrementalCompact pins the retention contract: after compacting
// everything older than a cutoff, (a) Max still equals the full-history
// offline maximum bit-for-bit, (b) the series suffix beyond the horizon
// is bit-identical to the full-history sweep, (c) the live footprint
// shrank and the coarsened tail respects its cap, and (d) phases behind
// the horizon are rejected and counted.
func TestIncrementalCompact(t *testing.T) {
	inc := NewIncrementalSweep("B")
	inc.SetTailCap(8)
	var all []Phase
	// A tall spike early on: Max must survive compaction exactly.
	for i := 0; i < 4000; i++ {
		v := 1.7e6
		if i == 137 {
			v = 9.9e7
		}
		ph := Phase{Start: ms(i * 2), End: ms(i*2 + 3), Value: v}
		all = append(all, ph)
		if !inc.Add(ph) {
			t.Fatalf("Add %d rejected", i)
		}
	}
	before, _ := inc.Size()
	cutoff := ms(6000)
	inc.Compact(cutoff)
	after, _ := inc.Size()
	if after >= before {
		t.Fatalf("Compact did not shrink: %d -> %d boundaries", before, after)
	}
	horizon, ok := inc.Horizon()
	if !ok || horizon >= cutoff {
		t.Fatalf("horizon = %v (ok=%v), want < cutoff %v", horizon, ok, cutoff)
	}

	off := Sweep("B", all)
	if inc.Max() != off.Max() {
		t.Fatalf("Max after compact = %v, full-history %v", inc.Max(), off.Max())
	}

	suffix := func(s *metrics.Series) []metrics.Point {
		var out []metrics.Point
		for _, p := range s.Points {
			if p.T > horizon {
				out = append(out, p)
			}
		}
		return out
	}
	gotSuf, wantSuf := suffix(inc.Series()), suffix(off)
	if len(gotSuf) != len(wantSuf) {
		t.Fatalf("suffix length %d != %d", len(gotSuf), len(wantSuf))
	}
	for i := range gotSuf {
		if gotSuf[i] != wantSuf[i] {
			t.Fatalf("suffix point %d: %+v != %+v", i, gotSuf[i], wantSuf[i])
		}
	}

	// The sketch of the dropped region is bounded and ordered.
	var head int
	for _, p := range inc.Series().Points {
		if p.T <= horizon {
			head++
		}
	}
	if head > 8 {
		t.Fatalf("coarsened tail has %d points, cap 8", head)
	}

	// Late arrival behind the horizon: rejected and counted.
	if inc.Add(Phase{Start: ms(1), End: ms(5), Value: 1}) {
		t.Fatal("phase behind horizon accepted")
	}
	if inc.Late() != 1 {
		t.Fatalf("Late() = %d, want 1", inc.Late())
	}
	// New arrivals ahead of the horizon still fold in and keep the live
	// suffix exact: the carry preserved the running sum across the drop.
	ph := Phase{Start: ms(8100), End: ms(8200), Value: 3.3e6}
	if !inc.Add(ph) {
		t.Fatal("live phase rejected after compact")
	}
	all = append(all, ph)
	off = Sweep("B", all)
	gotSuf, wantSuf = suffix(inc.Series()), suffix(off)
	if len(gotSuf) != len(wantSuf) {
		t.Fatalf("post-compact suffix length %d != %d", len(gotSuf), len(wantSuf))
	}
	for i := range gotSuf {
		if gotSuf[i] != wantSuf[i] {
			t.Fatalf("post-compact suffix point %d: %+v != %+v", i, gotSuf[i], wantSuf[i])
		}
	}
	if inc.Max() != off.Max() {
		t.Fatalf("Max after post-compact adds = %v, full-history %v", inc.Max(), off.Max())
	}
}

// TestIncrementalCompactNoop: a cutoff at or before the first boundary
// drops nothing and changes nothing.
func TestIncrementalCompactNoop(t *testing.T) {
	inc := NewIncrementalSweep("B")
	phases := []Phase{
		{Start: ms(100), End: ms(200), Value: 5e6},
		{Start: ms(150), End: ms(250), Value: 3e6},
	}
	for _, ph := range phases {
		inc.Add(ph)
	}
	inc.Compact(ms(50))
	if _, ok := inc.Horizon(); ok {
		t.Fatal("no-op Compact set a horizon")
	}
	requireExactMatch(t, inc, phases)
}

// TestOnlineSweepStillWraps: the tracer-facing wrapper keeps its
// contract (snapshot semantics, Len) on top of the incremental engine.
func TestOnlineSweepSnapshotIsolation(t *testing.T) {
	o := NewOnlineSweep("B")
	o.Add(Phase{Start: ms(0), End: ms(10), Value: 4e6})
	snap := o.Series()
	before := append([]metrics.Point(nil), snap.Points...)
	o.Add(Phase{Start: ms(5), End: ms(15), Value: 4e6})
	for i := range before {
		if snap.Points[i] != before[i] {
			t.Fatal("earlier snapshot mutated by later Add")
		}
	}
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2", o.Len())
	}
}
