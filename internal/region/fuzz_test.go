package region

import (
	"testing"

	"iobehind/internal/des"
)

// FuzzIncrementalSweep drives a random interleave of Add/Max/Series
// operations, decoded from the fuzz input four bytes at a time, against
// the offline Sweep oracle over the accepted phases. Every comparison is
// exact — the equality invariant is bit-for-bit, not within a tolerance.
// An input with no (or only degenerate) phases exercises the zero-record
// case: empty series, zero Max.
func FuzzIncrementalSweep(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                                    // degenerate: zero width
	f.Add([]byte{0, 10, 5, 2, 3, 200, 3, 1, 1, 10, 5, 2})        // dup phase + query
	f.Add([]byte{0, 1, 60, 9, 0, 1, 60, 9, 3, 0, 0, 0, 2, 5, 5}) // coincident ties
	f.Add([]byte{2, 250, 250, 255, 0, 0, 1, 1, 3, 9, 9, 9, 0, 0, 200, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		inc := NewIncrementalSweep("B")
		var oracle []Phase
		check := func() {
			t.Helper()
			off := Sweep("B", oracle)
			got := inc.Series()
			if len(got.Points) != len(off.Points) {
				t.Fatalf("series length %d != offline %d (%d phases)", len(got.Points), len(off.Points), len(oracle))
			}
			for i := range got.Points {
				if got.Points[i] != off.Points[i] {
					t.Fatalf("point %d: %+v != offline %+v", i, got.Points[i], off.Points[i])
				}
			}
			if inc.Max() != off.Max() {
				t.Fatalf("Max %v != offline %v", inc.Max(), off.Max())
			}
		}
		for i := 0; i+3 < len(data); i += 4 {
			op, b1, b2, b3 := data[i], data[i+1], data[i+2], data[i+3]
			if op%5 == 3 {
				check() // interleaved query: Series+Max mid-stream
				continue
			}
			if op%5 == 4 {
				_ = inc.Max() // Max alone must not disturb state
				continue
			}
			start := des.Time(b1) * des.Time(des.Millisecond)
			ph := Phase{
				Rank:  int(op),
				Start: start,
				End:   start + des.Time(b2)*des.Time(des.Millisecond),
				Value: float64(b3) * 1.31e5, // non-representable step
			}
			accepted := inc.Add(ph)
			if valid := ph.End > ph.Start; accepted != valid {
				t.Fatalf("Add(%+v) = %v, want %v", ph, accepted, valid)
			}
			if accepted {
				oracle = append(oracle, ph)
			}
		}
		check()
	})
}
