package region

import (
	"math"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
)

const (
	// chunkMax bounds one chunk's boundary count. A full chunk splits in
	// half before the next insertion, so the slices allocated with this
	// capacity never regrow: the Add path performs no allocations between
	// splits (three per ~chunkMax/2 inserts, amortizing to zero — pinned
	// by BenchmarkIncrementalAdd in the bench-check gate).
	chunkMax = 512
	// defaultTailCap bounds the coarsened-history points Compact keeps.
	defaultTailCap = 64
)

// chunk is one run of consecutive boundary deltas in the global
// (time, delta) order, annotated with the exact state of the sequential
// prefix fold at its edges. Because base/end carry the fold value
// element-for-element — never a chunk-sum shortcut — every cached value
// is bit-identical to what the offline Sweep's single left-to-right
// accumulation produces.
type chunk struct {
	times  []des.Time
	deltas []float64
	// base is the running prefix sum before this chunk's first delta;
	// end is the prefix after its last. end of chunk i is base of i+1.
	base, end float64
	// max is the largest clamped series value attained at a boundary
	// that closes a time group inside this chunk (-Inf when every
	// boundary here continues into the next chunk's leading time group).
	max float64
	// prefMax is the running maximum of max over chunks[0..this], so the
	// global maximum is an O(1) read of the last chunk's prefMax.
	prefMax float64
}

func newChunk() *chunk {
	return &chunk{
		times:  make([]des.Time, 0, chunkMax),
		deltas: make([]float64, 0, chunkMax),
	}
}

// IncrementalSweep maintains the Eq. 3 application-level sweep under
// streaming phase arrival: Add folds one closed phase in without
// re-sorting history, Max is an O(1) read of a maintained aggregate, and
// Series is a straight walk over the boundary chunks — no O(n log n)
// recompute per query, which is what made the gateway's /metrics scrape
// cost grow with every phase ever seen.
//
// The structure is a chunked sorted array of boundary deltas (+Value at
// Start, -Value at End) in (time, delta) order, the same canonical order
// the offline Sweep sorts into. Each chunk caches the exact sequential
// prefix fold at its boundaries, so Series and Max reproduce the offline
// sweep bit-for-bit under ANY arrival permutation — the PR-2
// online-vs-offline equality invariant, now load-bearing for the data
// structure itself (FuzzIncrementalSweep and the permutation tests pin
// it point-for-point, not within a tolerance).
//
// Complexity: Add is O(log n) to locate the insertion point plus a
// refold of the chunks from the insertion point to the end — O(chunkMax)
// for the in-order and near-sorted arrival real streams exhibit (each
// rank emits its phases in time order), degrading gracefully toward
// O(n) for a fully reversed stream, which is still cheaper than the old
// full re-sort per *query*. Max is O(1). Series is O(n) with no sort.
// Every method other than Add and Compact is a pure read, so callers can
// serve queries under a read lock while ingest holds the write lock.
//
// An IncrementalSweep is not goroutine-safe; callers synchronize.
type IncrementalSweep struct {
	name   string
	chunks []*chunk
	n      int // live boundary count across chunks
	phases int // accepted phases, including ones later compacted away

	// carry is the exact prefix fold entering chunks[0]: zero until a
	// Compact drops the entire live window, after which it preserves the
	// fold so later arrivals continue from the true running sum.
	carry float64

	// Retention state (see Compact).
	compacted    bool
	horizon      des.Time
	compactedMax float64
	tail         []metrics.Point
	tailCap      int
	late         int64
}

// NewIncrementalSweep creates an empty aggregator producing a series
// with the given name.
func NewIncrementalSweep(name string) *IncrementalSweep {
	return &IncrementalSweep{name: name, tailCap: defaultTailCap}
}

// SetTailCap bounds the coarsened-history points retained by Compact
// (default 64). Values < 1 are ignored.
func (s *IncrementalSweep) SetTailCap(n int) {
	if n > 0 {
		s.tailCap = n
	}
}

// Len returns the number of accepted phases, including phases whose
// boundaries have since been compacted away.
func (s *IncrementalSweep) Len() int { return s.phases }

// Late returns how many phases were rejected because they started at or
// before the compaction horizon.
func (s *IncrementalSweep) Late() int64 { return s.late }

// Size reports the live boundary and chunk counts — the structure's
// actual memory footprint, which retention keeps bounded.
func (s *IncrementalSweep) Size() (boundaries, chunks int) {
	return s.n, len(s.chunks)
}

// Horizon returns the compaction horizon: the latest boundary time
// folded into the fixed summary. ok is false until Compact first drops
// history.
func (s *IncrementalSweep) Horizon() (des.Time, bool) {
	return s.horizon, s.compacted
}

// Add folds one closed phase into the sweep. Phases may arrive in any
// order across ranks. It returns false — and the phase is not folded —
// when the window is empty or inverted, or when the phase starts at or
// before the compaction horizon (counted in Late: once history is
// summarized, a boundary inside it can no longer join the fold).
func (s *IncrementalSweep) Add(ph Phase) bool {
	if ph.End <= ph.Start {
		return false
	}
	if s.compacted && ph.Start <= s.horizon {
		s.late++
		return false
	}
	c1 := s.insert(ph.Start, ph.Value)
	c2 := s.insert(ph.End, -ph.Value)
	from := c1
	if c2 < from {
		from = c2
	}
	// Start one chunk earlier: an insertion at a chunk's front can turn
	// the previous chunk's trailing boundary into (or out of) a time
	// group that now continues across the chunk seam, changing which of
	// its boundaries count toward max.
	if from > 0 {
		from--
	}
	s.refold(from)
	s.phases++
	return true
}

// Max returns the current application-level required bandwidth: the
// maximum of the Eq. 3 sweep over everything observed so far, including
// compacted history. O(1): the value is maintained by Add.
func (s *IncrementalSweep) Max() float64 {
	m := s.compactedMax // 0 until retention kicks in; Series max is >= 0
	if n := len(s.chunks); n > 0 && s.chunks[n-1].prefMax > m {
		m = s.chunks[n-1].prefMax
	}
	return m
}

// Series builds the application-level step series: a straight walk over
// the chunks continuing each chunk's exact prefix fold. The returned
// series is a fresh snapshot; later Adds do not mutate it, and the walk
// itself mutates nothing. With retention active the head of the series
// is the coarsened tail (one span-maximum point per compacted region);
// the suffix from the horizon on is exact.
func (s *IncrementalSweep) Series() *metrics.Series {
	out := &metrics.Series{Name: s.name}
	out.Points = make([]metrics.Point, 0, len(s.tail)+s.n)
	for _, p := range s.tail {
		out.Append(p.T, p.V)
	}
	for ci, ch := range s.chunks {
		p := ch.base
		hasNext := ci+1 < len(s.chunks)
		var nextT des.Time
		if hasNext {
			nextT = s.chunks[ci+1].times[0]
		}
		for i := range ch.deltas {
			p += ch.deltas[i]
			if i+1 < len(ch.times) {
				if ch.times[i+1] == ch.times[i] {
					continue // same time group: only its last delta lands
				}
			} else if hasNext && nextT == ch.times[i] {
				continue // group continues into the next chunk
			}
			out.Append(ch.times[i], clampNoise(p))
		}
	}
	return out
}

// Compact folds every chunk whose boundaries all lie before cutoff into
// a fixed summary: the running maximum (so Max stays exact over the full
// history) and a coarsened tail of at most tailCap span-maximum points
// (so Series keeps a bounded sketch of the dropped regions). The first
// retained chunk's cached base already carries the exact fold across the
// dropped prefix, so the surviving suffix of the series stays
// bit-identical to the full-history sweep. Phases starting at or before
// the new horizon are rejected by later Adds.
func (s *IncrementalSweep) Compact(cutoff des.Time) {
	drop := 0
	for drop < len(s.chunks) {
		ch := s.chunks[drop]
		if ch.times[len(ch.times)-1] >= cutoff {
			break
		}
		drop++
	}
	if drop == 0 {
		return
	}
	for _, ch := range s.chunks[:drop] {
		if !math.IsInf(ch.max, -1) {
			if ch.max > s.compactedMax {
				s.compactedMax = ch.max
			}
			s.tail = append(s.tail, metrics.Point{T: ch.times[0], V: ch.max})
		}
		s.n -= len(ch.times)
	}
	s.coarsenTail()
	last := s.chunks[drop-1]
	s.horizon = last.times[len(last.times)-1]
	s.carry = last.end
	s.compacted = true
	// Trim in place and nil the vacated slots so the dropped chunks'
	// slices are released to the collector.
	k := copy(s.chunks, s.chunks[drop:])
	for i := k; i < len(s.chunks); i++ {
		s.chunks[i] = nil
	}
	s.chunks = s.chunks[:k]
	// Retained prefMax values may still reflect dropped chunks' maxima;
	// the overstatement is harmless because compactedMax has absorbed
	// every dropped maximum and only ever grows.
}

// coarsenTail halves the tail by merging adjacent point pairs (keeping
// the earlier time and the larger value — the span-max envelope) until
// it fits the cap, doubling the summary's granularity each pass.
func (s *IncrementalSweep) coarsenTail() {
	limit := s.tailCap
	if limit <= 0 {
		limit = defaultTailCap
	}
	for len(s.tail) > limit {
		half := (len(s.tail) + 1) / 2
		for i := 0; i < half; i++ {
			p := s.tail[2*i]
			if 2*i+1 < len(s.tail) && s.tail[2*i+1].V > p.V {
				p.V = s.tail[2*i+1].V
			}
			s.tail[i] = p
		}
		s.tail = s.tail[:half]
	}
}

// keyAfter reports whether boundary (bt, bd) orders strictly after
// (t, d) in the canonical (time, delta) order shared with the offline
// Sweep's sort. Runs of fully equal keys are interchangeable, which is
// what makes the fold's float result permutation-independent.
func keyAfter(bt des.Time, bd float64, t des.Time, d float64) bool {
	if bt != t {
		return bt > t
	}
	return bd > d
}

// insert places one boundary delta into its chunk, splitting a full
// chunk first, and returns the index of the chunk that received it.
// Binary searches are hand-rolled loops: sort.Search's closure would
// allocate on every call and the Add path must stay allocation-free.
func (s *IncrementalSweep) insert(t des.Time, d float64) int {
	if len(s.chunks) == 0 {
		ch := newChunk()
		ch.times = append(ch.times, t)
		ch.deltas = append(ch.deltas, d)
		s.chunks = append(s.chunks, ch)
		s.n++
		return 0
	}
	// The target chunk: the last whose first key is <= (t, d), clamped
	// to the first chunk for keys below everything.
	lo, hi := 0, len(s.chunks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		ch := s.chunks[mid]
		if keyAfter(ch.times[0], ch.deltas[0], t, d) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	ci := lo - 1
	if ci < 0 {
		ci = 0
	}
	if len(s.chunks[ci].times) >= chunkMax {
		s.split(ci)
		right := s.chunks[ci+1]
		if !keyAfter(right.times[0], right.deltas[0], t, d) {
			ci++
		}
	}
	ch := s.chunks[ci]
	lo, hi = 0, len(ch.times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyAfter(ch.times[mid], ch.deltas[mid], t, d) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	ch.times = ch.times[:len(ch.times)+1]
	copy(ch.times[lo+1:], ch.times[lo:])
	ch.times[lo] = t
	ch.deltas = ch.deltas[:len(ch.deltas)+1]
	copy(ch.deltas[lo+1:], ch.deltas[lo:])
	ch.deltas[lo] = d
	s.n++
	return ci
}

// split divides a full chunk into two halves so the pending insertion
// has room. Aggregates of both halves are rebuilt by the refold that
// every Add runs over the touched suffix.
func (s *IncrementalSweep) split(ci int) {
	ch := s.chunks[ci]
	half := len(ch.times) / 2
	right := newChunk()
	right.times = right.times[:len(ch.times)-half]
	copy(right.times, ch.times[half:])
	right.deltas = right.deltas[:len(ch.deltas)-half]
	copy(right.deltas, ch.deltas[half:])
	ch.times = ch.times[:half]
	ch.deltas = ch.deltas[:half]
	s.chunks = append(s.chunks, nil)
	copy(s.chunks[ci+2:], s.chunks[ci+1:])
	s.chunks[ci+1] = right
}

// refold recomputes base/end/max/prefMax for chunks[from:] by continuing
// the exact sequential fold — the same left-to-right accumulation the
// offline Sweep performs, element by element, never a chunk-sum
// shortcut. This is the whole bit-exactness argument: every cached
// prefix is a value the offline fold also computes.
func (s *IncrementalSweep) refold(from int) {
	for ci := from; ci < len(s.chunks); ci++ {
		ch := s.chunks[ci]
		if ci == 0 {
			ch.base = s.carry
		} else {
			ch.base = s.chunks[ci-1].end
		}
		hasNext := ci+1 < len(s.chunks)
		var nextT des.Time
		if hasNext {
			nextT = s.chunks[ci+1].times[0]
		}
		p := ch.base
		mx := math.Inf(-1)
		for i := range ch.deltas {
			p += ch.deltas[i]
			if i+1 < len(ch.times) {
				if ch.times[i+1] == ch.times[i] {
					continue
				}
			} else if hasNext && nextT == ch.times[i] {
				continue
			}
			if v := clampNoise(p); v > mx {
				mx = v
			}
		}
		ch.end = p
		ch.max = mx
		if ci == 0 {
			ch.prefMax = mx
		} else {
			ch.prefMax = s.chunks[ci-1].prefMax
			if mx > ch.prefMax {
				ch.prefMax = mx
			}
		}
	}
}
