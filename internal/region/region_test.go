package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iobehind/internal/des"
)

// TestPaperFigure4 reproduces the worked example of the paper's Fig. 4:
// three ranks with overlapping phases produce five regions whose values
// are the running sums of the covering bandwidths.
func TestPaperFigure4(t *testing.T) {
	// Layout (times in seconds):
	//   rank 1: [1, 6)  value B1
	//   rank 2: [2, 8)  value B2
	//   rank 0: [3, 10) value B0
	// Regions: [1,2)=B1, [2,3)=B1+B2, [3,6)=B1+B2+B0, [6,8)=B2+B0, [8,10)=B0.
	const b0, b1, b2 = 5.0, 3.0, 2.0
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }
	phases := []Phase{
		{Rank: 1, Start: sec(1), End: sec(6), Value: b1},
		{Rank: 2, Start: sec(2), End: sec(8), Value: b2},
		{Rank: 0, Start: sec(3), End: sec(10), Value: b0},
	}
	s := Sweep("B", phases)
	checks := []struct {
		at   float64
		want float64
	}{
		{0.5, 0}, {1.5, b1}, {2.5, b1 + b2}, {4, b1 + b2 + b0},
		{7, b2 + b0}, {9, b0}, {10.5, 0},
	}
	for _, c := range checks {
		if got := s.At(sec(c.at)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("B(%vs) = %v, want %v", c.at, got, c.want)
		}
	}
	// Five regions plus the trailing zero = 6 points.
	if len(s.Points) != 6 {
		t.Fatalf("points = %d, want 6: %v", len(s.Points), s.Points)
	}
	if got := MaxRequired(phases); math.Abs(got-(b0+b1+b2)) > 1e-9 {
		t.Fatalf("MaxRequired = %v, want %v", got, b0+b1+b2)
	}
}

func TestSweepIgnoresDegeneratePhases(t *testing.T) {
	s := Sweep("B", []Phase{
		{Start: 10, End: 10, Value: 1},
		{Start: 20, End: 5, Value: 1},
	})
	if len(s.Points) != 0 {
		t.Fatalf("degenerate phases produced points: %v", s.Points)
	}
	if s.Max() != 0 {
		t.Fatal("max of empty sweep")
	}
}

func TestSweepCoincidentBoundaries(t *testing.T) {
	// One phase ends exactly where another starts: no double counting at
	// the boundary (half-open intervals).
	s := Sweep("B", []Phase{
		{Start: 0, End: 100, Value: 4},
		{Start: 100, End: 200, Value: 6},
	})
	if got := s.At(99); got != 4 {
		t.Fatalf("At(99) = %v", got)
	}
	if got := s.At(100); got != 6 {
		t.Fatalf("At(100) = %v, want 6 (no double count)", got)
	}
	if got := s.At(200); got != 0 {
		t.Fatalf("At(200) = %v, want 0", got)
	}
}

func TestPhaseDuration(t *testing.T) {
	p := Phase{Start: des.Time(des.Second), End: des.Time(3 * des.Second)}
	if p.Duration() != 2*des.Second {
		t.Fatalf("duration = %v", p.Duration())
	}
}

// TestSweepMatchesBruteForce compares the sweep against a direct
// evaluation of Eq. 3 at random probe times, on random phase sets.
func TestSweepMatchesBruteForce(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var phases []Phase
		for i := 0; i+2 < len(raw) && len(phases) < 30; i += 3 {
			start := des.Time(raw[i] % 1000)
			length := des.Time(raw[i+1]%200) + 1
			val := float64(raw[i+2]%50) + 0.5
			phases = append(phases, Phase{
				Rank:  i / 3,
				Start: start,
				End:   start + length,
				Value: val,
			})
		}
		s := Sweep("B", phases)
		for probe := 0; probe < 50; probe++ {
			at := des.Time(rng.Int63n(1400))
			want := 0.0
			for _, ph := range phases {
				if at >= ph.Start && at < ph.End {
					want += ph.Value
				}
			}
			if math.Abs(s.At(at)-want) > 1e-6 {
				return false
			}
		}
		// The max of the series equals the max over all boundaries.
		maxWant := 0.0
		for _, ph := range phases {
			sum := 0.0
			for _, other := range phases {
				if ph.Start >= other.Start && ph.Start < other.End {
					sum += other.Value
				}
			}
			if sum > maxWant {
				maxWant = sum
			}
		}
		return math.Abs(s.Max()-maxWant) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
