package region

import (
	"fmt"
	"testing"

	"iobehind/internal/des"
)

var benchSinkF float64

// BenchmarkIncrementalAdd measures the streaming insert path for
// in-order arrival — the realistic shape, since each rank emits its
// phases in time order. The bench-check gate pins 0 allocs/op: the only
// allocations are chunk splits, amortized away by the preallocated
// chunk capacity.
func BenchmarkIncrementalAdd(b *testing.B) {
	b.ReportAllocs()
	s := NewIncrementalSweep("B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := des.Time(i) * des.Time(des.Millisecond)
		s.Add(Phase{Rank: i % 64, Start: t, End: t + des.Time(des.Millisecond), Value: 1.7e6})
	}
}

// BenchmarkIncrementalMax pins the O(1) query: cost must be flat in the
// number of phases ever folded in (it was a full O(n log n) re-sort).
func BenchmarkIncrementalMax(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("phases=%d", n), func(b *testing.B) {
			s := NewIncrementalSweep("B")
			for i := 0; i < n; i++ {
				t := des.Time(i) * des.Time(des.Millisecond)
				s.Add(Phase{Start: t, End: t + 2*des.Time(des.Millisecond), Value: 3.1e6})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSinkF = s.Max()
			}
		})
	}
}
