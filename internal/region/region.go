// Package region implements the paper's Eq. 3: aggregating rank-level
// required bandwidths (or throughputs) into an application-level step
// series over the regions where the ranks' I/O phases overlap.
//
// Each rank phase contributes its value on [Start, End). Sorting all start
// and end times yields the region boundaries; the value of a region is the
// sum of the values of the phases covering it. The maximum over regions of
// the required-bandwidth series is the minimal application-level bandwidth
// such that no rank ever waits on a matching blocking operation.
package region

import (
	"sort"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
)

// Phase is one rank-level I/O phase: rank Rank needs (or achieved) Value
// bytes/s over [Start, End).
type Phase struct {
	Rank       int
	Index      int // phase number j within the rank
	Start, End des.Time
	Value      float64
}

// Duration returns the phase window length.
func (p Phase) Duration() des.Duration { return p.End.Sub(p.Start) }

// Sweep builds the application-level step series from rank phases. Phases
// with empty or inverted windows are ignored. The series ends with an
// explicit zero once all phases have been processed.
func Sweep(name string, phases []Phase) *metrics.Series {
	type boundary struct {
		t     des.Time
		delta float64
	}
	events := make([]boundary, 0, 2*len(phases))
	for _, ph := range phases {
		if ph.End <= ph.Start {
			continue
		}
		events = append(events, boundary{t: ph.Start, delta: ph.Value})
		events = append(events, boundary{t: ph.End, delta: -ph.Value})
	}
	// Canonical (time, delta) order: breaking time ties by delta makes
	// runs of equal keys consist of identical values, so the fold below
	// accumulates the same floats in the same order no matter how the
	// input phases were permuted. That determinism is what lets the
	// incremental engine promise bit-identical results to this function
	// under arbitrary arrival order (see incremental.go).
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta
	})

	s := &metrics.Series{Name: name}
	sum := 0.0
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			sum += events[i].delta
			i++
		}
		s.Append(t, clampNoise(sum))
	}
	return s
}

// clampNoise absorbs float cancellation noise: a running sum that should
// have returned to zero after matched +v/-v boundaries can land a few
// ulps below it. Shared by the offline fold above and the incremental
// engine so both clamp identically — part of the bit-exactness contract.
func clampNoise(v float64) float64 {
	if v < 0 && v > -1e-9 {
		return 0
	}
	return v
}

// MaxRequired returns the maximum of the swept series — the paper's
// application-level required bandwidth B.
func MaxRequired(phases []Phase) float64 {
	return Sweep("B", phases).Max()
}
