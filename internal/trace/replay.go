package trace

import (
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
)

// ReplayMain returns a per-rank main function that drives the simulated
// cluster from a parsed trace, the way the built-in workloads drive it
// from their models: hand it to mpi.World.Run on a world with exactly
// tr.Ranks ranks.
//
// The replay preserves, per rank, the trace's operation order, the
// absolute issue times (the inter-op gaps become compute), and the
// submit/wait pairing of asynchronous requests. Before each operation the
// rank computes up to the recorded issue time; if the simulated system is
// slower than the traced one (tighter bandwidth, added tracer overhead),
// the rank is already past that time and issues immediately — gaps
// collapse, they never run backwards. Replaying a trace against the same
// configuration it was emitted from therefore reproduces the original
// timeline exactly; replaying against a different configuration answers
// "what would this application have done on that system".
func ReplayMain(sys *mpiio.System, tr *Trace) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		if sys.World().Size() != tr.Ranks {
			panic(fmt.Sprintf("trace: replaying a %d-rank trace on a %d-rank world",
				tr.Ranks, sys.World().Size()))
		}
		ops := tr.PerRank[r.ID()]
		files := map[int]*mpiio.File{}
		pending := map[int]*mpiio.Request{}

		sleepTo := func(t int64) {
			if target := des.Time(t); target > r.Now() {
				r.Compute(target.Sub(r.Now()))
			}
		}
		file := func(rec Record) *mpiio.File {
			if f, ok := files[rec.Fid]; ok {
				return f
			}
			// A trace without open records (minimal external emitters)
			// still replays: handles appear on first use.
			f := sys.Open(r, fmt.Sprintf("trace-r%06d-f%d", r.ID(), rec.Fid))
			files[rec.Fid] = f
			return f
		}

		finalized := false
		for _, rec := range ops {
			sleepTo(rec.T)
			switch rec.Op {
			case OpOpen:
				name := rec.File
				if name == "" {
					name = fmt.Sprintf("trace-r%06d-f%d", r.ID(), rec.Fid)
				}
				files[rec.Fid] = sys.Open(r, name)
			case OpWriteAt:
				file(rec).WriteAt(rec.Off, rec.N)
			case OpReadAt:
				file(rec).ReadAt(rec.Off, rec.N)
			case OpWriteAtAll:
				file(rec).WriteAtAll(rec.Off, rec.N)
			case OpReadAtAll:
				file(rec).ReadAtAll(rec.Off, rec.N)
			case OpIwriteAt:
				pending[rec.Rid] = file(rec).IwriteAt(rec.Off, rec.N)
			case OpIreadAt:
				pending[rec.Rid] = file(rec).IreadAt(rec.Off, rec.N)
			case OpWait:
				// Validation guarantees the rid is outstanding.
				pending[rec.Rid].Wait()
				delete(pending, rec.Rid)
			case OpBarrier:
				r.Barrier()
			case OpFinalize:
				r.Finalize()
				finalized = true
			}
		}
		if !finalized {
			r.Finalize()
		}
	}
}
