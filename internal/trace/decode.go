package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrEmptyRecord is returned by DecodeRecord for blank input lines.
var ErrEmptyRecord = errors.New("trace: empty record")

// DecodeRecord parses one JSON line of the trace format. It is the single
// decode path shared by every consumer (Parse, the CLI tools, tests,
// fuzzing), so tolerance decisions live in one place:
//
//   - unknown fields and higher schema versions are accepted (the format
//     only grows; encoding/json ignores what it does not know);
//   - surrounding whitespace is trimmed;
//   - anything that is not one complete JSON object — truncated lines,
//     trailing garbage, arrays, bare literals — is an error.
//
// On error the returned record is always the zero value, never a
// partially decoded one, so callers cannot accidentally ingest fields
// from a rejected line.
func DecodeRecord(line []byte) (Record, error) {
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 {
		return Record{}, ErrEmptyRecord
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("trace: decode record: %w", err)
	}
	// json.Decoder stops at the end of the first value; a second value on
	// the line (e.g. `{...}{...}` from a torn write) means the framing is
	// broken and the line cannot be trusted.
	if dec.More() {
		return Record{}, errors.New("trace: decode record: trailing data after record")
	}
	return rec, nil
}

// opKnown reports whether the op name is one this version understands.
func opKnown(op string) bool {
	switch op {
	case OpMeta, OpOpen, OpWriteAt, OpReadAt, OpWriteAtAll, OpReadAtAll,
		OpIwriteAt, OpIreadAt, OpWait, OpBarrier, OpFinalize:
		return true
	}
	return false
}

// synchronizing reports whether the op is a world-wide rendezvous: every
// rank must issue the same sequence of these or the replay deadlocks.
func synchronizing(op string) bool {
	switch op {
	case OpBarrier, OpWriteAtAll, OpReadAtAll:
		return true
	}
	return false
}

// Parse reads a whole JSON-lines trace, validates it, and groups the
// records per rank in issue order. Blank lines are skipped; records with
// unknown op names are dropped and counted (Trace.Skipped). Any framing
// error, a missing or malformed meta header, or a validation failure
// (timestamps running backwards, unknown or double-waited request ids,
// mismatched collective sequences across ranks, ops after finalize)
// rejects the whole trace: a replay must never start from a trace that
// could deadlock or misorder halfway through.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	tr := &Trace{}
	lineNo := 0
	seenMeta := false
	for sc.Scan() {
		lineNo++
		rec, err := DecodeRecord(sc.Bytes())
		if err != nil {
			if errors.Is(err, ErrEmptyRecord) {
				continue
			}
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if !seenMeta {
			if rec.Op != OpMeta {
				return nil, fmt.Errorf("trace: line %d: first record must be %q, got %q", lineNo, OpMeta, rec.Op)
			}
			if rec.Ranks < 1 {
				return nil, fmt.Errorf("trace: line %d: meta names %d ranks, want ≥ 1", lineNo, rec.Ranks)
			}
			tr.App = rec.App
			tr.Version = rec.V
			tr.Ranks = rec.Ranks
			tr.RanksPerNode = rec.RPN
			tr.Clock = rec.Clock
			if tr.Clock == "" {
				tr.Clock = "sim"
			}
			tr.PerRank = make([][]Record, rec.Ranks)
			seenMeta = true
			continue
		}
		if rec.Op == OpMeta {
			return nil, fmt.Errorf("trace: line %d: duplicate meta record", lineNo)
		}
		if !opKnown(rec.Op) {
			tr.Skipped++
			continue
		}
		if rec.Rank < 0 || rec.Rank >= tr.Ranks {
			return nil, fmt.Errorf("trace: line %d: rank %d outside [0, %d)", lineNo, rec.Rank, tr.Ranks)
		}
		tr.PerRank[rec.Rank] = append(tr.PerRank[rec.Rank], rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if !seenMeta {
		return nil, errors.New("trace: no records (missing meta header)")
	}
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// validate enforces the per-rank and cross-rank invariants the replayer
// depends on.
func (tr *Trace) validate() error {
	var syncSeq0 []string
	for rank, ops := range tr.PerRank {
		var lastT int64
		outstanding := map[int]bool{}
		finalized := false
		var syncSeq []string
		for i, rec := range ops {
			where := fmt.Sprintf("trace: rank %d op %d (%s)", rank, i, rec.Op)
			if finalized {
				return fmt.Errorf("%s: operation after finalize", where)
			}
			if rec.T < 0 {
				return fmt.Errorf("%s: negative timestamp %d", where, rec.T)
			}
			if rec.T < lastT {
				return fmt.Errorf("%s: timestamp %d before previous %d", where, rec.T, lastT)
			}
			lastT = rec.T
			if rec.Te != 0 && rec.Te < rec.T {
				return fmt.Errorf("%s: te %d before t %d", where, rec.Te, rec.T)
			}
			if rec.N < 0 || rec.Off < 0 {
				return fmt.Errorf("%s: negative size or offset", where)
			}
			switch rec.Op {
			case OpIwriteAt, OpIreadAt:
				if outstanding[rec.Rid] {
					return fmt.Errorf("%s: request id %d reused while outstanding", where, rec.Rid)
				}
				outstanding[rec.Rid] = true
			case OpWait:
				if !outstanding[rec.Rid] {
					return fmt.Errorf("%s: wait for unknown or already-waited request id %d", where, rec.Rid)
				}
				delete(outstanding, rec.Rid)
			case OpFinalize:
				finalized = true
			}
			if synchronizing(rec.Op) {
				syncSeq = append(syncSeq, rec.Op)
			}
		}
		if len(outstanding) > 0 {
			return fmt.Errorf("trace: rank %d ends with %d unwaited requests", rank, len(outstanding))
		}
		if rank == 0 {
			syncSeq0 = syncSeq
		} else if len(syncSeq) != len(syncSeq0) {
			return fmt.Errorf("trace: rank %d has %d synchronizing ops, rank 0 has %d — replay would deadlock",
				rank, len(syncSeq), len(syncSeq0))
		} else {
			for i := range syncSeq {
				if syncSeq[i] != syncSeq0[i] {
					return fmt.Errorf("trace: rank %d synchronizing op %d is %s, rank 0 issued %s — replay would deadlock",
						rank, i, syncSeq[i], syncSeq0[i])
				}
			}
		}
	}
	return nil
}
