package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
)

// Emitter captures a trace from a simulated run. It implements
// mpiio.Interceptor (and mpiio.OpenObserver) and records every MPI-IO
// call at zero simulated cost, so it composes with a charging tracer via
// mpiio.Tee — list the emitter first so it timestamps each call before
// the tracer applies its per-call overhead:
//
//	em := trace.NewEmitter(sys, "my-app")
//	tr := tmio.Attach(sys, tmioCfg)          // installs itself…
//	sys.SetInterceptor(mpiio.Tee(em, tr))    // …then compose both
//
// NewEmitter must run before tmio.Attach: both register MPI_Finalize
// hooks, and the emitter's must fire first so the finalize record carries
// the application's finalize time, not the tracer's post-processing time.
//
// The DES engine runs exactly one process at a time, so the emitter's
// append-only record log needs no locking and its global order is
// deterministic.
type Emitter struct {
	app   string
	world *mpi.World
	recs  []*Record
	ranks []emitterRank
}

type emitterRank struct {
	fids    map[*mpiio.File]int
	nextFid int
	rids    map[*mpiio.Request]int
	nextRid int
	// pendingSync / pendingWait index recs entries whose Te is filled at
	// the matching End callback. Sync ops and waits cannot nest within a
	// rank, so one slot each suffices.
	pendingSync int
	pendingWait int
}

// NewEmitter creates an emitter for the system's world and registers its
// MPI_Finalize hook. The caller composes it into the interceptor chain
// (see the type comment). app tags the trace header.
func NewEmitter(sys *mpiio.System, app string) *Emitter {
	em := &Emitter{app: app, world: sys.World()}
	em.ranks = make([]emitterRank, sys.World().Size())
	for i := range em.ranks {
		em.ranks[i] = emitterRank{
			fids: map[*mpiio.File]int{}, nextFid: 1,
			rids: map[*mpiio.Request]int{}, nextRid: 1,
			pendingSync: -1, pendingWait: -1,
		}
	}
	sys.World().AddFinalizeHook(em.finalize)
	return em
}

func (em *Emitter) add(rec Record) *Record {
	p := &rec
	em.recs = append(em.recs, p)
	return p
}

// fid returns the per-rank handle id, opening the file implicitly when
// the emitter never saw an open (e.g. it was installed after the fact).
func (em *Emitter) fid(r *mpi.Rank, f *mpiio.File, now des.Time) int {
	er := &em.ranks[r.ID()]
	if id, ok := er.fids[f]; ok {
		return id
	}
	id := er.nextFid
	er.nextFid++
	er.fids[f] = id
	em.add(Record{
		Op: OpOpen, Rank: r.ID(), Node: em.node(r), T: int64(now),
		File: f.Name(), Fid: id,
	})
	return id
}

func (em *Emitter) node(r *mpi.Rank) int {
	rpn := em.world.Config().RanksPerNode
	if rpn <= 0 {
		return 0
	}
	return r.ID() / rpn
}

// FileOpened implements mpiio.OpenObserver.
func (em *Emitter) FileOpened(r *mpi.Rank, f *mpiio.File) {
	em.fid(r, f, r.Now())
}

// SyncBegin implements mpiio.Interceptor.
func (em *Emitter) SyncBegin(r *mpi.Rank, op mpiio.Op) {
	name := OpWriteAt
	switch {
	case op.Collective && op.Class == pfs.Write:
		name = OpWriteAtAll
	case op.Collective:
		name = OpReadAtAll
	case op.Class == pfs.Read:
		name = OpReadAt
	}
	now := r.Now()
	em.add(Record{
		Op: name, Rank: r.ID(), T: int64(now),
		Fid: em.fid(r, op.File, now), Off: op.Offset, N: op.Bytes,
	})
	em.ranks[r.ID()].pendingSync = len(em.recs) - 1
}

// SyncEnd implements mpiio.Interceptor.
func (em *Emitter) SyncEnd(r *mpi.Rank, op mpiio.Op, start, end des.Time) {
	er := &em.ranks[r.ID()]
	if er.pendingSync >= 0 {
		em.recs[er.pendingSync].Te = int64(end)
		er.pendingSync = -1
	}
}

// AsyncSubmitted implements mpiio.Interceptor.
func (em *Emitter) AsyncSubmitted(r *mpi.Rank, req *mpiio.Request) {
	er := &em.ranks[r.ID()]
	name := OpIwriteAt
	if req.Class() == pfs.Read {
		name = OpIreadAt
	}
	rid := er.nextRid
	er.nextRid++
	er.rids[req] = rid
	t := req.SubmittedAt()
	em.add(Record{
		Op: name, Rank: r.ID(), T: int64(t),
		Fid: em.fid(r, req.File(), t), Off: req.Offset(), N: req.Bytes(), Rid: rid,
	})
}

// WaitBegin implements mpiio.Interceptor.
func (em *Emitter) WaitBegin(r *mpi.Rank, req *mpiio.Request) {
	er := &em.ranks[r.ID()]
	rid, ok := er.rids[req]
	if !ok {
		return // wait for a request submitted before the emitter attached
	}
	delete(er.rids, req)
	em.add(Record{Op: OpWait, Rank: r.ID(), T: int64(r.Now()), Rid: rid})
	er.pendingWait = len(em.recs) - 1
}

// WaitEnd implements mpiio.Interceptor.
func (em *Emitter) WaitEnd(r *mpi.Rank, req *mpiio.Request) {
	er := &em.ranks[r.ID()]
	if er.pendingWait >= 0 {
		em.recs[er.pendingWait].Te = int64(r.Now())
		er.pendingWait = -1
	}
}

// finalize is the MPI_Finalize hook: it stamps the application's finalize
// time. Registered before any charging tracer's hook, it records when the
// application called MPI_Finalize, so a replay finalizes at the same
// instant and incurs the same post-runtime overhead.
func (em *Emitter) finalize(r *mpi.Rank) {
	em.add(Record{Op: OpFinalize, Rank: r.ID(), T: int64(r.Now())})
}

// Records returns the captured records (no meta header) in global
// emission order. The slice is shared; callers must not mutate it.
func (em *Emitter) Records() []*Record { return em.recs }

// Encode writes the complete trace — meta header plus all captured
// records — as JSON lines.
func (em *Emitter) Encode(w io.Writer) error {
	meta := Record{
		V: Version, Op: OpMeta, App: em.app,
		Ranks: em.world.Size(), RPN: em.world.Config().RanksPerNode,
		Clock: "sim",
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("trace: encode meta: %w", err)
	}
	for _, rec := range em.recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trace: encode record: %w", err)
		}
	}
	return nil
}
