package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeTraceRecord hammers the trace format's shared JSON-lines
// decode path with arbitrary bytes, mirroring tmio.FuzzDecodeStreamRecord.
// Beyond not panicking, it checks the decode contract Parse depends on:
//
//   - errors always come with a zero record (no partially decoded fields
//     can leak into a replay);
//   - an accepted record survives a marshal/decode round trip unchanged
//     (re-encoding is how traces are filtered and rewritten);
//   - whitespace framing never changes the outcome.
func FuzzDecodeTraceRecord(f *testing.F) {
	// A full meta header, as Emitter.Encode emits it.
	f.Add(`{"v":1,"op":"meta","rank":0,"app":"hacc-run","ranks":4,"rpn":2,"clock":"sim"}`)
	// Typical op records.
	f.Add(`{"op":"open","rank":3,"node":1,"t":1200,"file":"hacc-000003.bin","fid":1}`)
	f.Add(`{"op":"write_at","rank":0,"t":1500000,"te":2500000,"fid":1,"off":4096,"n":1048576}`)
	f.Add(`{"op":"iwrite_at","rank":1,"t":3000000,"fid":1,"off":0,"n":8388608,"rid":2}`)
	f.Add(`{"op":"wait","rank":1,"t":5000000,"te":5100000,"rid":2}`)
	f.Add(`{"op":"write_at_all","rank":2,"t":100,"te":900,"fid":1,"n":65536}`)
	f.Add(`{"op":"barrier","rank":0,"t":77}`)
	f.Add(`{"op":"finalize","rank":0,"t":9000000000}`)
	// Truncated mid-object (torn write).
	f.Add(`{"op":"write_at","rank":3,"t":15`)
	// Unknown fields and a future schema version must decode.
	f.Add(`{"v":99,"op":"mmap","rank":1,"t":5,"future_field":{"x":[1,2]},"note":"hi"}`)
	// Two records on one line: broken framing, must be rejected.
	f.Add(`{"op":"barrier","rank":1,"t":1}{"op":"barrier","rank":2,"t":1}`)
	// Wrong JSON shapes.
	f.Add(`[1,2,3]`)
	f.Add(`"just a string"`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`   `)
	f.Add(`{"rank":"not a number"}`)
	// Deep nesting in an ignored field.
	f.Add(`{"op":"open","rank":1,"x":` + strings.Repeat(`[`, 64) + strings.Repeat(`]`, 64) + `}`)

	f.Fuzz(func(t *testing.T, line string) {
		rec, err := DecodeRecord([]byte(line))
		if err != nil {
			if rec != (Record{}) {
				t.Fatalf("error %v returned non-zero record %+v", err, rec)
			}
			return
		}
		// Round trip: an accepted record re-encodes and re-decodes to
		// itself, so rewriting a trace is lossless.
		encoded, merr := json.Marshal(rec)
		if merr != nil {
			t.Fatalf("accepted record %+v does not re-marshal: %v", rec, merr)
		}
		again, derr := DecodeRecord(encoded)
		if derr != nil {
			t.Fatalf("re-decoding %s failed: %v", encoded, derr)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %+v -> %+v", rec, again)
		}
		// Framing whitespace is irrelevant.
		padded, perr := DecodeRecord([]byte("  \t" + line + "\r\n"))
		if perr != nil || padded != rec {
			t.Fatalf("whitespace padding changed outcome: rec=%+v err=%v", padded, perr)
		}
	})
}
