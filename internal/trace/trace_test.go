package trace

import (
	"bytes"
	"strings"
	"testing"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

func parseString(t *testing.T, s string) (*Trace, error) {
	t.Helper()
	return Parse(strings.NewReader(s))
}

func TestParseRejectsMalformedTraces(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "missing meta"},
		{"no meta first", `{"op":"barrier","rank":0,"t":1}`, "first record"},
		{"meta without ranks", `{"v":1,"op":"meta"}`, "ranks"},
		{"duplicate meta", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"meta\",\"ranks\":1}", "duplicate meta"},
		{"rank out of range", "{\"op\":\"meta\",\"ranks\":2}\n{\"op\":\"barrier\",\"rank\":2,\"t\":1}", "outside"},
		{"time backwards", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"barrier\",\"rank\":0,\"t\":5}\n{\"op\":\"barrier\",\"rank\":0,\"t\":4}", "before previous"},
		{"te before t", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"write_at\",\"rank\":0,\"t\":5,\"te\":4,\"n\":1}", "te 4 before t 5"},
		{"wait unknown rid", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"wait\",\"rank\":0,\"t\":1,\"rid\":7}", "unknown"},
		{"double wait", "{\"op\":\"meta\",\"ranks\":1}\n" +
			`{"op":"iwrite_at","rank":0,"t":1,"n":1,"rid":1}` + "\n" +
			`{"op":"wait","rank":0,"t":2,"rid":1}` + "\n" +
			`{"op":"wait","rank":0,"t":3,"rid":1}`, "already-waited"},
		{"unwaited request", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"iread_at\",\"rank\":0,\"t\":1,\"n\":1,\"rid\":1}", "unwaited"},
		{"op after finalize", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"finalize\",\"rank\":0,\"t\":1}\n{\"op\":\"barrier\",\"rank\":0,\"t\":2}", "after finalize"},
		{"collective mismatch", "{\"op\":\"meta\",\"ranks\":2}\n" +
			`{"op":"barrier","rank":0,"t":1}` + "\n" +
			`{"op":"write_at_all","rank":1,"t":1,"n":1}`, "deadlock"},
		{"collective count mismatch", "{\"op\":\"meta\",\"ranks\":2}\n{\"op\":\"barrier\",\"rank\":0,\"t\":1}", "deadlock"},
		{"negative size", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"write_at\",\"rank\":0,\"t\":1,\"n\":-5}", "negative"},
		{"torn frame", "{\"op\":\"meta\",\"ranks\":1}\n{\"op\":\"barrier\",\"rank\":0,\"t\":1}{\"op\":\"barrier\",\"rank\":0,\"t\":2}", "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseString(t, tc.input)
			if err == nil {
				t.Fatalf("parse accepted malformed trace")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseToleratesUnknownOpsAndVersions(t *testing.T) {
	input := "{\"v\":99,\"op\":\"meta\",\"app\":\"ext\",\"ranks\":2,\"rpn\":2,\"clock\":\"wall\"}\n" +
		"\n" + // blank line
		`{"op":"open","rank":0,"t":10,"file":"a.dat","fid":1}` + "\n" +
		`{"op":"mmap","rank":0,"t":11,"n":4096}` + "\n" + // future op kind
		`{"op":"write_at","rank":0,"t":20,"te":30,"fid":1,"n":100}` + "\n" +
		`{"op":"finalize","rank":0,"t":40}` + "\n" +
		`{"op":"finalize","rank":1,"t":40}`
	tr, err := parseString(t, input)
	if err != nil {
		t.Fatal(err)
	}
	if tr.App != "ext" || tr.Version != 99 || tr.Ranks != 2 || tr.Clock != "wall" {
		t.Errorf("header = %+v", tr)
	}
	if tr.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", tr.Skipped)
	}
	if len(tr.PerRank[0]) != 3 || len(tr.PerRank[1]) != 1 {
		t.Errorf("per-rank ops: %d/%d, want 3/1", len(tr.PerRank[0]), len(tr.PerRank[1]))
	}
	if tr.Ops() != 4 {
		t.Errorf("Ops = %d, want 4", tr.Ops())
	}
}

// testFS returns a modest file system so the dogfood traces have phases
// with meaningful (> MinWindow) required-bandwidth windows. No noise: the
// replay identity needs an I/O path free of random draws.
func testFS() *pfs.Config {
	return &pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9}
}

type emitRun struct {
	report   []byte // Report.WriteJSON output
	trace    []byte // the emitted trace file
	asyncOps int
	syncOps  int
}

// emitWorkload runs main with an emitter and a charging tracer attached
// (emitter first, so records carry pre-overhead call times) and returns
// the rendered report plus the trace.
func emitWorkload(t *testing.T, ranks, rpn int, strat tmio.StrategyConfig,
	mainOf func(*mpiio.System) func(*mpi.Rank)) emitRun {
	t.Helper()
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: ranks, RanksPerNode: rpn})
	fs := pfs.New(e, *testFS())
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	em := NewEmitter(sys, "dogfood")
	tr := tmio.Attach(sys, tmio.Config{Strategy: strat})
	sys.SetInterceptor(mpiio.Tee(em, tr))
	if err := w.Run(mainOf(sys)); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	var repBuf, trBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatal(err)
	}
	if err := em.Encode(&trBuf); err != nil {
		t.Fatal(err)
	}
	return emitRun{
		report: repBuf.Bytes(), trace: trBuf.Bytes(),
		asyncOps: rep.AsyncOps, syncOps: rep.SyncOps,
	}
}

// replayTrace replays a trace on a fresh, identically configured stack
// (tracer only, no emitter) and returns the rendered report.
func replayTrace(t *testing.T, raw []byte, rpn int, strat tmio.StrategyConfig) []byte {
	t.Helper()
	parsed, err := Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: parsed.Ranks, RanksPerNode: rpn})
	fs := pfs.New(e, *testFS())
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := tmio.Attach(sys, tmio.Config{Strategy: strat})
	if err := w.Run(ReplayMain(sys, parsed)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEmitReplayByteIdentical is the headline dogfood invariant: for each
// built-in workload, replaying its own emitted trace on an identically
// configured stack reproduces the report byte for byte — the trace
// captures everything the bandwidth analysis needs.
func TestEmitReplayByteIdentical(t *testing.T) {
	adaptive := tmio.StrategyConfig{Strategy: tmio.Adaptive}
	direct := tmio.StrategyConfig{Strategy: tmio.Direct}
	none := tmio.StrategyConfig{}
	cases := []struct {
		name       string
		ranks, rpn int
		strat      tmio.StrategyConfig
		mainOf     func(*mpiio.System) func(*mpi.Rank)
		wantAsync  bool
	}{
		{"phased", 4, 2, adaptive, func(sys *mpiio.System) func(*mpi.Rank) {
			return workloads.PhasedMain(sys, workloads.PhasedConfig{
				Phases: 4, BytesPerPhase: 8 << 20,
				Compute: 50 * des.Millisecond, JitterFraction: 0.05,
			})
		}, true},
		{"hacc", 2, 2, direct, func(sys *mpiio.System) func(*mpi.Rank) {
			return workloads.HaccMain(sys, workloads.HaccConfig{
				Loops: 3, ParticlesPerRank: 200_000,
				FixedPhase: 40 * des.Millisecond,
			})
		}, true},
		{"wacomm", 4, 2, direct, func(sys *mpiio.System) func(*mpi.Rank) {
			return workloads.WacommMain(sys, workloads.WacommConfig{
				Particles: 100_000, Iterations: 3, ReadEvery: 2,
			})
		}, true},
		{"ior-collective", 4, 2, none, func(sys *mpiio.System) func(*mpi.Rank) {
			return workloads.IorMain(sys, workloads.IorConfig{
				Segments: 2, BlockSize: 8 << 20, TransferSize: 4 << 20,
				Collective: true, ReadBack: true,
			})
		}, false},
		{"ior-async", 2, 2, adaptive, func(sys *mpiio.System) func(*mpi.Rank) {
			return workloads.IorMain(sys, workloads.IorConfig{
				Segments: 2, BlockSize: 8 << 20, TransferSize: 4 << 20,
				Async: true, ComputeBetween: 20 * des.Millisecond,
			})
		}, true},
		{"checkpoint", 2, 2, direct, func(sys *mpiio.System) func(*mpi.Rank) {
			return workloads.CheckpointMain(sys, workloads.CheckpointConfig{
				ComputeTotal: 400 * des.Millisecond, Interval: 100 * des.Millisecond,
				CheckpointBytes: 8 << 20, Async: true,
				MTBF: 800 * des.Millisecond, RestartRead: true,
			})
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			emitted := emitWorkload(t, tc.ranks, tc.rpn, tc.strat, tc.mainOf)
			if tc.wantAsync && emitted.asyncOps == 0 {
				t.Fatalf("workload issued no async ops — dogfood case lost its point")
			}
			if emitted.asyncOps+emitted.syncOps == 0 {
				t.Fatalf("workload issued no I/O at all")
			}
			replayed := replayTrace(t, emitted.trace, tc.rpn, tc.strat)
			if !bytes.Equal(emitted.report, replayed) {
				t.Fatalf("replayed report differs from original\n--- original ---\n%s\n--- replayed ---\n%s",
					firstDiff(emitted.report, replayed), firstDiff(replayed, emitted.report))
			}
		})
	}
}

// firstDiff trims two byte slices to the region around their first
// difference, to keep failure output readable.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 100
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestReplayFourRankHandWrittenTrace replays a hand-written external-style
// trace — barriers included, which the emitter itself cannot capture — on
// a 4-rank world, and checks the replay honors absolute times, barrier
// synchronization, and submit/wait pairing. This is the -race exercise
// for the replayer (the race sweep runs this package).
func TestReplayFourRankHandWrittenTrace(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"v":1,"op":"meta","app":"hand","ranks":4,"rpn":2,"clock":"sim"}` + "\n")
	ms := int64(des.Millisecond)
	for rank := 0; rank < 4; rank++ {
		w := func(s string) { sb.WriteString(s + "\n") }
		w(`{"op":"open","rank":` + itoa(rank) + `,"t":0,"file":"ext.dat","fid":1}`)
		// Rank 0 starts late; the barrier drags everyone to its schedule.
		t0 := int64(rank) * ms
		w(`{"op":"iwrite_at","rank":` + itoa(rank) + `,"t":` + itoa64(t0) + `,"fid":1,"n":1000000,"rid":1}`)
		w(`{"op":"wait","rank":` + itoa(rank) + `,"t":` + itoa64(t0+10*ms) + `,"rid":1}`)
		w(`{"op":"barrier","rank":` + itoa(rank) + `,"t":` + itoa64(t0+11*ms) + `}`)
		w(`{"op":"write_at_all","rank":` + itoa(rank) + `,"t":` + itoa64(t0+12*ms) + `,"fid":1,"n":500000}`)
		w(`{"op":"finalize","rank":` + itoa(rank) + `,"t":` + itoa64(t0+20*ms) + `}`)
	}
	parsed, err := parseString(t, sb.String())
	if err != nil {
		t.Fatal(err)
	}

	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: 4, RanksPerNode: 2})
	fs := pfs.New(e, *testFS())
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := tmio.Attach(sys, tmio.Config{DisableOverhead: true})
	if err := w.Run(ReplayMain(sys, parsed)); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	if rep.AsyncOps != 4 {
		t.Errorf("AsyncOps = %d, want 4", rep.AsyncOps)
	}
	if rep.SyncOps != 4 {
		t.Errorf("SyncOps = %d, want 4 (one collective per rank)", rep.SyncOps)
	}
	// Rank 3's finalize is at 23 ms; the runtime must reach at least that.
	if rep.Runtime < 23*des.Millisecond {
		t.Errorf("Runtime = %v, want ≥ 23ms", rep.Runtime)
	}
}

func itoa(v int) string { return itoa64(int64(v)) }
func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestReplaySlowerSystemCollapsesGaps replays a phased trace against a
// file system ten times slower than the traced one: absolute times are
// unreachable, so the gaps collapse and the run simply takes longer —
// never deadlocks, never sleeps backwards.
func TestReplaySlowerSystemCollapsesGaps(t *testing.T) {
	strat := tmio.StrategyConfig{}
	emitted := emitWorkload(t, 2, 2, strat, func(sys *mpiio.System) func(*mpi.Rank) {
		return workloads.PhasedMain(sys, workloads.PhasedConfig{
			Phases: 3, BytesPerPhase: 16 << 20, Compute: 20 * des.Millisecond,
		})
	})
	parsed, err := Parse(bytes.NewReader(emitted.trace))
	if err != nil {
		t.Fatal(err)
	}
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: 2, RanksPerNode: 2})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 1e8, ReadCapacity: 1e8})
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := tmio.Attach(sys, tmio.Config{})
	if err := w.Run(ReplayMain(sys, parsed)); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	if rep.AsyncOps != 6 {
		t.Errorf("AsyncOps = %d, want 6", rep.AsyncOps)
	}
	if rep.Runtime <= 0 {
		t.Errorf("Runtime = %v, want > 0", rep.Runtime)
	}
}

// TestEmittedTraceParses pins the emitter's output against its own
// parser: meta first, ops grouped per rank, no skips.
func TestEmittedTraceParses(t *testing.T) {
	emitted := emitWorkload(t, 2, 2, tmio.StrategyConfig{}, func(sys *mpiio.System) func(*mpi.Rank) {
		return workloads.PhasedMain(sys, workloads.PhasedConfig{
			Phases: 2, BytesPerPhase: 4 << 20, Compute: 10 * des.Millisecond,
		})
	})
	parsed, err := Parse(bytes.NewReader(emitted.trace))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Ranks != 2 || parsed.App != "dogfood" || parsed.Clock != "sim" || parsed.Version != Version {
		t.Errorf("header = %+v", parsed)
	}
	if parsed.Skipped != 0 {
		t.Errorf("Skipped = %d, want 0", parsed.Skipped)
	}
	for rank, ops := range parsed.PerRank {
		if len(ops) == 0 {
			t.Fatalf("rank %d has no ops", rank)
		}
		if ops[0].Op != OpOpen {
			t.Errorf("rank %d first op = %s, want open", rank, ops[0].Op)
		}
		last := ops[len(ops)-1]
		if last.Op != OpFinalize {
			t.Errorf("rank %d last op = %s, want finalize", rank, last.Op)
		}
	}
}
