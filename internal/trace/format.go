// Package trace defines the versioned JSON-lines I/O trace format: a
// compact record of per-rank timestamped MPI-IO operations that any real
// application trace can be converted into, plus an emitter that captures a
// trace from a simulated run and a replayer that drives the simulated
// cluster from one. The normative specification of the wire format lives
// in docs/TRACE_FORMAT.md; this package is the reference implementation.
//
// A trace file is a sequence of JSON objects, one per line. The first
// record must be the meta header (Op "meta") naming the schema version,
// the rank count and the timestamp clock; every following record is one
// operation of one rank. Per-rank record order is the rank's program
// order, with non-decreasing timestamps.
package trace

import "fmt"

// Version is the trace schema version this package emits. Decoders accept
// records with any version — the schema only grows, and unknown fields are
// ignored — so a higher version is not an error.
const Version = 1

// Operation names, the Op field of a Record. Unknown names are skipped by
// Parse (counted in Trace.Skipped) so future op kinds do not break old
// readers.
const (
	// OpMeta is the header record: first line of every trace.
	OpMeta = "meta"
	// OpOpen binds a file id (Fid) to a path for one rank.
	OpOpen = "open"
	// OpWriteAt and OpReadAt are blocking individual operations
	// (MPI_File_write_at / read_at). T is the call time, Te the return.
	OpWriteAt = "write_at"
	OpReadAt  = "read_at"
	// OpWriteAtAll and OpReadAtAll are the collective variants; N is the
	// per-rank piece, as each rank passed it.
	OpWriteAtAll = "write_at_all"
	OpReadAtAll  = "read_at_all"
	// OpIwriteAt and OpIreadAt are non-blocking submissions
	// (MPI_File_iwrite_at / iread_at); Rid names the request for the
	// matching wait.
	OpIwriteAt = "iwrite_at"
	OpIreadAt  = "iread_at"
	// OpWait is the matching completion (MPI_Wait) of request Rid. T is
	// when the wait began, Te when it returned.
	OpWait = "wait"
	// OpBarrier is an MPI_Barrier over all ranks. The simulated emitter
	// cannot observe application barriers (they do not pass through the
	// MPI-IO layer), but external traces may carry them and the replayer
	// honors them.
	OpBarrier = "barrier"
	// OpFinalize is MPI_Finalize; at most one per rank, as its last op.
	OpFinalize = "finalize"
)

// Record is one line of a trace file. Fields are tagged for the compact
// JSON-lines encoding; zero-valued optional fields are omitted. All
// timestamps are integer nanoseconds on the trace's clock (Meta Clock
// field: "sim" for virtual time, "wall" for wall-clock time re-based to
// the application start).
type Record struct {
	// V is the schema version; only meaningful on the meta record. 0 on a
	// non-meta record means "same as the header".
	V int `json:"v,omitempty"`
	// Op is the operation name, one of the Op* constants.
	Op string `json:"op"`
	// Rank is the issuing rank, 0-based. 0 on the meta record.
	Rank int `json:"rank"`
	// Node and Job optionally tag the rank's placement and the batch job.
	Node int `json:"node,omitempty"`
	Job  int `json:"job,omitempty"`
	// T is when the operation was issued; Te, when set, is when the
	// blocking call (sync op, wait) returned. Nanoseconds.
	T  int64 `json:"t,omitempty"`
	Te int64 `json:"te,omitempty"`

	// Meta-only fields.
	App   string `json:"app,omitempty"`
	Ranks int    `json:"ranks,omitempty"`
	RPN   int    `json:"rpn,omitempty"`   // ranks per node
	Clock string `json:"clock,omitempty"` // "sim" or "wall"

	// File identifies the target: Fid is a per-rank handle id assigned at
	// open; File carries the path on the open record.
	File string `json:"file,omitempty"`
	Fid  int    `json:"fid,omitempty"`
	// Off and N are the operation's file offset and byte count.
	Off int64 `json:"off,omitempty"`
	N   int64 `json:"n,omitempty"`
	// Rid links a non-blocking submission to its wait, unique per rank.
	Rid int `json:"rid,omitempty"`
}

// Trace is a parsed, validated trace: the header fields plus each rank's
// operations in program order. Build one with Parse.
type Trace struct {
	App          string
	Version      int
	Ranks        int
	RanksPerNode int
	Clock        string
	// PerRank[r] is rank r's operations in issue order (no meta records).
	PerRank [][]Record
	// Skipped counts records with unknown op names that were tolerated
	// and dropped (forward compatibility).
	Skipped int
}

// Ops returns the total operation count across ranks.
func (tr *Trace) Ops() int {
	n := 0
	for _, ops := range tr.PerRank {
		n += len(ops)
	}
	return n
}

func (tr *Trace) String() string {
	return fmt.Sprintf("trace.Trace{app: %q, ranks: %d, ops: %d}",
		tr.App, tr.Ranks, tr.Ops())
}
