package mpiio

import (
	"iobehind/internal/pfs"
)

// Collective I/O (MPI_File_write_at_all / read_at_all) with two-phase
// aggregation, the ROMIO optimization the paper's HACC-IO configuration
// deliberately avoids ("an individual file pointer to distinct files,
// which is more challenging than collective I/O"): ranks exchange their
// pieces with one aggregator per node, and only the aggregators touch the
// file system — fewer, larger, contiguous accesses.
//
// All ranks of the world must call the collective together, like any MPI
// collective operation.

// WriteAtAll performs a collective write of bytesPerRank per rank.
func (f *File) WriteAtAll(offset, bytesPerRank int64) {
	f.collective(pfs.Write, offset, bytesPerRank)
}

// ReadAtAll performs a collective read of bytesPerRank per rank.
func (f *File) ReadAtAll(offset, bytesPerRank int64) {
	f.collective(pfs.Read, offset, bytesPerRank)
}

// collective runs the two-phase protocol. The offset is reported to the
// interceptor (trace emitters need it to reconstruct the access pattern)
// but deliberately does not reach the aggregator's Submit: the fluid
// file-system model of internal/pfs prices classes and byte counts, not
// placement, so the combined aggregator access costs the same wherever the
// collective lands in the file. Threading the offset into adio would imply
// a positional model the backend does not have. If the pfs model ever
// becomes offset-aware (e.g. striping), the aggregator submit below is the
// single place to route op.Offset through.
func (f *File) collective(class pfs.Class, offset, bytesPerRank int64) {
	r := f.r
	w := r.World()
	op := Op{File: f, Class: class, Offset: offset, Bytes: bytesPerRank, Collective: true}
	if i := f.sys.interceptor; i != nil {
		i.SyncBegin(r, op)
	}
	start := r.Now()

	// Phase 1: data shuffle to the aggregators, modelled as a gather
	// within the world (the dominant term is each rank shipping its piece
	// one hop).
	r.Gather(0, bytesPerRank)

	// Phase 2: one aggregator per node performs the combined access.
	rpn := w.Config().RanksPerNode
	if r.ID()%rpn == 0 {
		node := r.ID() / rpn
		ranksOnNode := w.Size() - node*rpn
		if ranksOnNode > rpn {
			ranksOnNode = rpn
		}
		f.sys.stallOnStorm(r, class)
		req := f.sys.agents[r.ID()].Submit(class, bytesPerRank*int64(ranksOnNode), false)
		req.Wait(r.Proc())
	}

	// Completion: everyone leaves together (the aggregators' I/O bounds
	// the collective).
	r.Barrier()

	if i := f.sys.interceptor; i != nil {
		i.SyncEnd(r, op, start, r.Now())
	}
}
