// Package mpiio is the MPI-IO surface the workloads program against:
// File_write_at / File_read_at and their non-blocking i-variants, backed by
// the per-rank ADIO I/O agent of internal/adio.
//
// The package also provides the interception seam that stands in for the
// PMPI interface: an Interceptor installed on the System observes every
// I/O call and every matching wait — exactly the calls TMIO hooks via
// LD_PRELOAD on a real system — without any change to application code.
package mpiio

import (
	"fmt"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/pfs"
)

// Op describes one blocking MPI-IO operation to an Interceptor: the file,
// the access class, the file offset and byte count the application asked
// for, and whether the call was a collective (write_at_all / read_at_all —
// Bytes is then the per-rank piece, as each rank passed it). The offset is
// carried for observers (tracers, trace emitters) even though the fluid
// file-system model does not price it; see File.collective.
type Op struct {
	File       *File
	Class      pfs.Class
	Offset     int64
	Bytes      int64
	Collective bool
}

// Interceptor observes MPI-IO activity on one world. All methods run on
// the calling rank's goroutine, so an implementation may charge tracing
// overhead by sleeping the rank. A nil interceptor means no tracing.
//
// An Interceptor that additionally implements OpenObserver is also told
// about every System.Open.
type Interceptor interface {
	// AsyncSubmitted fires when a rank issues a non-blocking operation
	// (MPI_File_iwrite_at / iread_at), right after submission.
	AsyncSubmitted(r *mpi.Rank, req *Request)
	// WaitBegin and WaitEnd bracket the matching request-complete call.
	WaitBegin(r *mpi.Rank, req *Request)
	WaitEnd(r *mpi.Rank, req *Request)
	// SyncBegin and SyncEnd bracket a blocking operation
	// (MPI_File_write_at / read_at and their _all collective variants).
	SyncBegin(r *mpi.Rank, op Op)
	SyncEnd(r *mpi.Rank, op Op, start, end des.Time)
}

// OpenObserver is an optional extension of Interceptor: implementations
// are notified when a rank opens a file (MPI_File_open), before any I/O
// on the handle. Trace emitters use it to bind file ids to path names.
type OpenObserver interface {
	FileOpened(r *mpi.Rank, f *File)
}

// tee fans every interception out to several interceptors in order. The
// order is load-bearing: a zero-cost observer (e.g. a trace emitter) listed
// before a tracer that charges simulated overhead sees event times before
// that overhead is applied.
type tee struct{ members []Interceptor }

// Tee combines interceptors into one; nil members are skipped. Events are
// delivered in member order. FileOpened reaches the members that implement
// OpenObserver.
func Tee(members ...Interceptor) Interceptor {
	t := &tee{}
	for _, m := range members {
		if m != nil {
			t.members = append(t.members, m)
		}
	}
	return t
}

func (t *tee) AsyncSubmitted(r *mpi.Rank, req *Request) {
	for _, m := range t.members {
		m.AsyncSubmitted(r, req)
	}
}
func (t *tee) WaitBegin(r *mpi.Rank, req *Request) {
	for _, m := range t.members {
		m.WaitBegin(r, req)
	}
}
func (t *tee) WaitEnd(r *mpi.Rank, req *Request) {
	for _, m := range t.members {
		m.WaitEnd(r, req)
	}
}
func (t *tee) SyncBegin(r *mpi.Rank, op Op) {
	for _, m := range t.members {
		m.SyncBegin(r, op)
	}
}
func (t *tee) SyncEnd(r *mpi.Rank, op Op, start, end des.Time) {
	for _, m := range t.members {
		m.SyncEnd(r, op, start, end)
	}
}
func (t *tee) FileOpened(r *mpi.Rank, f *File) {
	for _, m := range t.members {
		if o, ok := m.(OpenObserver); ok {
			o.FileOpened(r, f)
		}
	}
}

// System is the MPI-IO subsystem of one world: one I/O agent per rank plus
// the interception seam.
type System struct {
	w           *mpi.World
	fs          *pfs.PFS
	agents      []*adio.Agent
	agentCfg    adio.Config
	interceptor Interceptor
	closed      bool
}

// NewSystem creates the subsystem with one agent per rank. agentCfg.Tag's
// Rank field is overwritten per rank; its Job field is preserved. Agents
// are shut down automatically when every rank's main function returns.
func NewSystem(w *mpi.World, fs *pfs.PFS, agentCfg adio.Config) *System {
	s := &System{w: w, fs: fs, agentCfg: agentCfg}
	for _, r := range w.Ranks() {
		cfg := agentCfg
		cfg.Tag.Rank = r.ID()
		cfg.Tag.Node = r.ID() / w.Config().RanksPerNode
		s.agents = append(s.agents, adio.NewAgent(w.Engine(), fs, r, cfg))
	}
	w.Engine().Spawn("mpiio-reaper", func(p *des.Proc) {
		w.AllDone().Wait(p)
		s.Close()
	})
	return s
}

// SetInterceptor installs (or removes, with nil) the tracing hook.
func (s *System) SetInterceptor(i Interceptor) { s.interceptor = i }

// Interceptor returns the installed hook, or nil.
func (s *System) Interceptor() Interceptor { return s.interceptor }

// World returns the world this subsystem serves.
func (s *System) World() *mpi.World { return s.w }

// FS returns the backing file system.
func (s *System) FS() *pfs.PFS { return s.fs }

// Agent returns rank's I/O agent — the handle for the user-level
// bandwidth-limit control.
func (s *System) Agent(rank int) *adio.Agent { return s.agents[rank] }

// SetFaults installs (or removes, with nil) the fault model every rank's
// agent consults per sub-request.
func (s *System) SetFaults(m adio.FaultModel) {
	for _, a := range s.agents {
		a.SetFaults(m)
	}
}

// Close shuts down all agents. Idempotent.
func (s *System) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, a := range s.agents {
		a.Close()
	}
}

// stallOnStorm models the client-visible cost of posting an I/O request
// while the servers are swamped: the caller stalls for a delay that grows
// with the burst concurrency. With throttled traffic the concurrency stays
// low and the stall is negligible; an unthrottled synchronized burst of
// thousands of small requests makes every rank pay — the paper's
// file-system "pollution by unnecessary short accesses".
func (s *System) stallOnStorm(r *mpi.Rank, class pfs.Class) {
	if s.agentCfg.SubmitLatencyPerFlow <= 0 && s.agentCfg.QueueLatencyPerFlow <= 0 {
		return
	}
	n := s.fs.NoteOp(class)
	if lat := adio.StormLatency(s.w.Engine(), s.agentCfg.SubmitLatencyPerFlow, n); lat > 0 {
		r.Proc().Sleep(lat)
	}
}

// Open returns a file handle for rank r. Each rank opening its own path
// models HACC-IO's individual-file-pointer mode; a shared name works too
// since the simulated file system tracks bandwidth, not contents.
func (s *System) Open(r *mpi.Rank, name string) *File {
	f := &File{sys: s, r: r, name: name}
	if o, ok := s.interceptor.(OpenObserver); ok {
		o.FileOpened(r, f)
	}
	return f
}

// File is an open MPI file handle bound to one rank.
type File struct {
	sys  *System
	r    *mpi.Rank
	name string
}

// Name returns the path given to Open.
func (f *File) Name() string { return f.name }

// Rank returns the owning rank.
func (f *File) Rank() *mpi.Rank { return f.r }

// WriteAt performs a blocking write of bytes at offset (MPI_File_write_at).
// Like all I/O in the modified MPICH, it is executed by the I/O agent and
// is therefore subject to the agent's bandwidth limit.
func (f *File) WriteAt(offset, bytes int64) { f.sync(pfs.Write, offset, bytes) }

// ReadAt performs a blocking read of bytes at offset (MPI_File_read_at).
func (f *File) ReadAt(offset, bytes int64) { f.sync(pfs.Read, offset, bytes) }

func (f *File) sync(class pfs.Class, offset, bytes int64) {
	op := Op{File: f, Class: class, Offset: offset, Bytes: bytes}
	if i := f.sys.interceptor; i != nil {
		i.SyncBegin(f.r, op)
	}
	start := f.r.Now()
	f.sys.stallOnStorm(f.r, class)
	req := f.sys.agents[f.r.ID()].Submit(class, bytes, false)
	req.Wait(f.r.Proc())
	if i := f.sys.interceptor; i != nil {
		i.SyncEnd(f.r, op, start, f.r.Now())
	}
}

// IwriteAt starts a non-blocking write (MPI_File_iwrite_at) and returns
// its request. The matching Request.Wait completes the operation.
func (f *File) IwriteAt(offset, bytes int64) *Request {
	return f.async(pfs.Write, offset, bytes)
}

// IreadAt starts a non-blocking read (MPI_File_iread_at).
func (f *File) IreadAt(offset, bytes int64) *Request {
	return f.async(pfs.Read, offset, bytes)
}

func (f *File) async(class pfs.Class, offset, bytes int64) *Request {
	f.sys.stallOnStorm(f.r, class)
	inner := f.sys.agents[f.r.ID()].Submit(class, bytes, true)
	req := &Request{f: f, r: f.r, inner: inner, class: class, offset: offset, bytes: bytes}
	if i := f.sys.interceptor; i != nil {
		i.AsyncSubmitted(f.r, req)
	}
	return req
}

// Request is a non-blocking MPI-IO operation handle.
type Request struct {
	f      *File
	r      *mpi.Rank
	inner  *adio.Request
	class  pfs.Class
	offset int64
	bytes  int64
	waited bool
}

// File returns the file the operation targets.
func (q *Request) File() *File { return q.f }

// Class returns whether the operation is a read or a write.
func (q *Request) Class() pfs.Class { return q.class }

// Offset returns the file offset the application asked for. The fluid
// file-system model does not price offsets, but observers (trace emitters)
// need them to reproduce the application's access pattern.
func (q *Request) Offset() int64 { return q.offset }

// Bytes returns the operation size.
func (q *Request) Bytes() int64 { return q.bytes }

// SubmittedAt returns when the application issued the operation.
func (q *Request) SubmittedAt() des.Time { return q.inner.Stats.Submitted }

// Wait blocks the owning rank until the operation completes (MPI_Wait).
// Waiting twice on the same request panics, as MPI would error.
func (q *Request) Wait() {
	if q.waited {
		panic(fmt.Sprintf("mpiio: request on %q waited twice", q.f.name))
	}
	q.waited = true
	if i := q.f.sys.interceptor; i != nil {
		i.WaitBegin(q.r, q)
	}
	q.inner.Wait(q.r.Proc())
	if i := q.f.sys.interceptor; i != nil {
		i.WaitEnd(q.r, q)
	}
}

// Test reports whether the operation has completed (MPI_Test).
func (q *Request) Test() bool { return q.inner.Done() }

// Stats exposes the agent-side execution record; valid only after Wait.
func (q *Request) Stats() *adio.RequestStats { return &q.inner.Stats }

// Waitall waits on every request in order (MPI_Waitall).
func Waitall(reqs []*Request) {
	for _, q := range reqs {
		q.Wait()
	}
}

// Info hints: the user-level control surface of the modified MPICH ("we
// provide means to control the consumed bandwidth at the user-level").
// Applications — or tools like TMIO — set hints on a file handle the way
// MPI_Info objects attach to MPI_File_open; the bandwidth hints reach the
// rank's I/O agent.
const (
	// HintBandwidthLimit caps both classes, bytes/s (float64 or int64).
	HintBandwidthLimit = "io_bandwidth_limit"
	// HintWriteLimit and HintReadLimit cap one class only.
	HintWriteLimit = "io_write_bandwidth_limit"
	HintReadLimit  = "io_read_bandwidth_limit"
)

// SetHint applies an info hint to the file's rank-level I/O agent. Unknown
// keys are ignored, as the MPI standard prescribes for info hints. Numeric
// values may be float64, int64, or int.
func (f *File) SetHint(key string, value any) {
	limit, ok := hintNumber(value)
	if !ok {
		return
	}
	agent := f.sys.agents[f.r.ID()]
	switch key {
	case HintBandwidthLimit:
		agent.SetLimit(limit)
	case HintWriteLimit:
		agent.SetClassLimit(pfs.Write, limit)
	case HintReadLimit:
		agent.SetClassLimit(pfs.Read, limit)
	}
}

func hintNumber(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}
