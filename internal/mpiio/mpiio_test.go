package mpiio

import (
	"math"
	"testing"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/pfs"
)

func newSystem(t *testing.T, size int) (*des.Engine, *mpi.World, *System) {
	t.Helper()
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: size})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	return e, w, NewSystem(w, fs, adio.Config{})
}

func TestBlockingWriteTakesTransferTime(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		f.WriteAt(0, 100e6) // 1 s at 100 MB/s
		if got := r.Now().Seconds(); math.Abs(got-1) > 1e-6 {
			t.Errorf("write took %v, want 1s", got)
		}
		f.ReadAt(0, 50e6) // 0.5 s
		if got := r.Now().Seconds(); math.Abs(got-1.5) > 1e-6 {
			t.Errorf("after read: %v, want 1.5s", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncOverlapsCompute(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		req := f.IwriteAt(0, 100e6) // 1 s of I/O
		r.Compute(2 * des.Second)   // longer than the I/O
		req.Wait()                  // must return immediately
		if got := r.Now().Seconds(); math.Abs(got-2) > 1e-6 {
			t.Errorf("total = %v, want 2s (fully hidden I/O)", got)
		}
		if !req.Test() {
			t.Error("request not done after Wait")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitBlocksWhenIOOutlastsCompute(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		req := f.IwriteAt(0, 100e6)      // 1 s of I/O
		r.Compute(200 * des.Millisecond) // shorter than the I/O
		req.Wait()
		if got := r.Now().Seconds(); math.Abs(got-1) > 1e-6 {
			t.Errorf("total = %v, want 1s (wait till I/O done)", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleWaitPanics(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		req := f.IwriteAt(0, 1000)
		req.Wait()
		req.Wait()
	})
	if err == nil {
		t.Fatal("double wait did not fail the run")
	}
}

func TestWaitall(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		reqs := []*Request{f.IwriteAt(0, 50e6), f.IreadAt(0, 50e6)}
		Waitall(reqs)
		for _, q := range reqs {
			if !q.Test() {
				t.Error("request incomplete after Waitall")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestAccessors(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "data.bin")
		if f.Name() != "data.bin" || f.Rank() != r {
			t.Error("file accessors")
		}
		req := f.IreadAt(0, 1234)
		if req.Class() != pfs.Read || req.Bytes() != 1234 || req.File() != f {
			t.Error("request accessors")
		}
		if req.SubmittedAt() != r.Now() {
			t.Error("SubmittedAt")
		}
		req.Wait()
		if req.Stats().Bytes != 1234 {
			t.Error("stats bytes")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAgentLimitAppliesToFileOps(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	if err := w.Run(func(r *mpi.Rank) {
		sys.Agent(r.ID()).SetLimit(10e6)
		f := sys.Open(r, "out.dat")
		req := f.IwriteAt(0, 100e6)
		req.Wait()
		if got := r.Now().Seconds(); math.Abs(got-10) > 1e-2 {
			t.Errorf("limited write took %v, want ~10s", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

type recordingInterceptor struct {
	events []string
	ops    []Op
	opened []string
}

func (ri *recordingInterceptor) AsyncSubmitted(r *mpi.Rank, req *Request) {
	ri.events = append(ri.events, "submit")
}
func (ri *recordingInterceptor) WaitBegin(r *mpi.Rank, req *Request) {
	ri.events = append(ri.events, "wait-begin")
}
func (ri *recordingInterceptor) WaitEnd(r *mpi.Rank, req *Request) {
	ri.events = append(ri.events, "wait-end")
}
func (ri *recordingInterceptor) SyncBegin(r *mpi.Rank, op Op) {
	ri.events = append(ri.events, "sync-begin")
	ri.ops = append(ri.ops, op)
}
func (ri *recordingInterceptor) SyncEnd(r *mpi.Rank, op Op, s, e des.Time) {
	ri.events = append(ri.events, "sync-end")
}
func (ri *recordingInterceptor) FileOpened(r *mpi.Rank, f *File) {
	ri.opened = append(ri.opened, f.Name())
}

func TestInterceptorSeesAllCalls(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	ri := &recordingInterceptor{}
	sys.SetInterceptor(ri)
	if sys.Interceptor() != ri {
		t.Fatal("interceptor not installed")
	}
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		f.WriteAt(0, 1000)
		req := f.IwriteAt(0, 1000)
		r.Compute(des.Second)
		req.Wait()
	}); err != nil {
		t.Fatal(err)
	}
	want := "sync-begin,sync-end,submit,wait-begin,wait-end"
	got := ""
	for i, ev := range ri.events {
		if i > 0 {
			got += ","
		}
		got += ev
	}
	if got != want {
		t.Fatalf("events = %q, want %q", got, want)
	}
}

func TestAgentsClosedWhenWorldFinishes(t *testing.T) {
	e, w, sys := newSystem(t, 4)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		f.WriteAt(0, 1000)
	}); err != nil {
		t.Fatal(err)
	}
	if stalled := e.Stalled(); len(stalled) != 0 {
		names := make([]string, len(stalled))
		for i, p := range stalled {
			names[i] = p.Name()
		}
		t.Fatalf("stalled procs after run: %v", names)
	}
	sys.Close() // idempotent
}

func TestMultiRankIOContention(t *testing.T) {
	_, w, sys := newSystem(t, 4)
	ends := make([]float64, 4)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		f.WriteAt(0, 25e6) // 4 ranks sharing 100 MB/s → 1 s each
		ends[r.ID()] = r.Now().Seconds()
	}); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if math.Abs(end-1) > 1e-3 {
			t.Errorf("rank %d finished at %v, want ~1s", i, end)
		}
	}
}

func TestCollectiveWriteAggregates(t *testing.T) {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: 8, RanksPerNode: 4})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	sys := NewSystem(w, fs, adio.Config{})
	var maxConcurrent int
	fs.SetObserver(func(now des.Time, class pfs.Class, flows []*pfs.Flow) {
		if len(flows) > maxConcurrent {
			maxConcurrent = len(flows)
		}
	})
	ends := make([]des.Time, 8)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "shared.dat")
		f.WriteAtAll(0, 10e6)
		ends[r.ID()] = r.Now()
	}); err != nil {
		t.Fatal(err)
	}
	// Two nodes → two aggregators → at most 2 concurrent flows, not 8.
	if maxConcurrent > 2 {
		t.Fatalf("collective write used %d concurrent flows, want ≤ 2", maxConcurrent)
	}
	// All ranks leave together: 80 MB total at 100 MB/s ≈ 0.8 s.
	for i, end := range ends {
		if math.Abs(end.Seconds()-ends[0].Seconds()) > 1e-9 {
			t.Fatalf("rank %d left at %v, rank 0 at %v", i, end, ends[0])
		}
		if end.Seconds() < 0.8 || end.Seconds() > 1.0 {
			t.Fatalf("collective took %v, want ≈0.8s", end)
		}
	}
}

func TestCollectiveReadAndTracing(t *testing.T) {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: 4, RanksPerNode: 4})
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	sys := NewSystem(w, fs, adio.Config{})
	ri := &recordingInterceptor{}
	sys.SetInterceptor(ri)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "shared.dat")
		f.ReadAtAll(0, 5e6)
	}); err != nil {
		t.Fatal(err)
	}
	// Every rank sees a sync begin/end pair.
	begins, ends := 0, 0
	for _, ev := range ri.events {
		switch ev {
		case "sync-begin":
			begins++
		case "sync-end":
			ends++
		}
	}
	if begins != 4 || ends != 4 {
		t.Fatalf("sync events: %d begins, %d ends", begins, ends)
	}
	_ = e
}

// TestCollectiveOffsetModeling pins the documented modeling decision in
// collective.go: the offset is reported to the interceptor verbatim, and —
// because the fluid file-system model is offset-agnostic — it must not
// change the collective's timing.
func TestCollectiveOffsetModeling(t *testing.T) {
	run := func(offset int64) (end des.Time, ops []Op) {
		e := des.NewEngine(1)
		w := mpi.NewWorld(e, mpi.Config{Size: 4, RanksPerNode: 4})
		fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
		sys := NewSystem(w, fs, adio.Config{})
		ri := &recordingInterceptor{}
		sys.SetInterceptor(ri)
		if err := w.Run(func(r *mpi.Rank) {
			f := sys.Open(r, "shared.dat")
			f.WriteAtAll(offset, 10e6)
			if r.ID() == 0 {
				end = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end, ri.ops
	}
	endZero, opsZero := run(0)
	endFar, opsFar := run(1 << 40)
	if endZero != endFar {
		t.Errorf("offset changed collective timing: %v vs %v", endZero, endFar)
	}
	if len(opsZero) != 4 || len(opsFar) != 4 {
		t.Fatalf("ops recorded: %d and %d, want 4 each", len(opsZero), len(opsFar))
	}
	for _, op := range opsFar {
		if op.Offset != 1<<40 {
			t.Errorf("interceptor saw offset %d, want %d", op.Offset, int64(1)<<40)
		}
		if !op.Collective {
			t.Error("collective op not flagged Collective")
		}
	}
}

func TestInterceptorSeesOffsets(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	ri := &recordingInterceptor{}
	sys.SetInterceptor(ri)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		f.WriteAt(4096, 1000)
		req := f.IreadAt(8192, 500)
		if req.Offset() != 8192 {
			t.Errorf("Request.Offset = %d, want 8192", req.Offset())
		}
		req.Wait()
	}); err != nil {
		t.Fatal(err)
	}
	if len(ri.ops) != 1 || ri.ops[0].Offset != 4096 || ri.ops[0].Bytes != 1000 {
		t.Fatalf("sync op = %+v, want offset 4096 bytes 1000", ri.ops)
	}
	if ri.ops[0].Collective {
		t.Error("plain sync op flagged Collective")
	}
	if len(ri.opened) != 1 || ri.opened[0] != "out.dat" {
		t.Errorf("FileOpened saw %v, want [out.dat]", ri.opened)
	}
}

func TestTeeFansOutInOrder(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	a, b := &recordingInterceptor{}, &recordingInterceptor{}
	sys.SetInterceptor(Tee(a, nil, b))
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		f.WriteAt(0, 1000)
		req := f.IwriteAt(0, 1000)
		req.Wait()
	}); err != nil {
		t.Fatal(err)
	}
	if len(a.events) != len(b.events) || len(a.events) != 5 {
		t.Fatalf("tee delivered %d/%d events, want 5/5", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("tee order diverged: %v vs %v", a.events, b.events)
		}
	}
	if len(a.opened) != 1 || len(b.opened) != 1 {
		t.Errorf("FileOpened fan-out: %v / %v", a.opened, b.opened)
	}
}

func TestInfoHints(t *testing.T) {
	_, w, sys := newSystem(t, 1)
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "out.dat")
		f.SetHint(HintBandwidthLimit, 50e6)
		a := sys.Agent(0)
		if a.ClassLimit(pfs.Write) != 50e6 || a.ClassLimit(pfs.Read) != 50e6 {
			t.Errorf("hint not applied: %v/%v", a.ClassLimit(pfs.Write), a.ClassLimit(pfs.Read))
		}
		f.SetHint(HintWriteLimit, int64(25e6))
		f.SetHint(HintReadLimit, int(10e6))
		if a.ClassLimit(pfs.Write) != 25e6 || a.ClassLimit(pfs.Read) != 10e6 {
			t.Errorf("class hints not applied: %v/%v", a.ClassLimit(pfs.Write), a.ClassLimit(pfs.Read))
		}
		f.SetHint("unknown_hint", 1.0)   // ignored
		f.SetHint(HintWriteLimit, "bad") // non-numeric: ignored
		if a.ClassLimit(pfs.Write) != 25e6 {
			t.Error("ignored hint changed state")
		}
		// The hinted limit actually paces the next write.
		req := f.IwriteAt(0, 50e6) // 2 s at 25 MB/s
		req.Wait()
		if got := r.Now().Seconds(); got < 1.9 {
			t.Errorf("hinted limit not enforced: write took %v", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
