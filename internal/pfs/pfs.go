// Package pfs models a shared parallel file system as a fluid-flow network.
//
// Bandwidth on each channel (one for writes, one for reads, mirroring the
// separate peak figures of IBM Spectrum Scale on the Lichtenberg cluster) is
// divided among concurrent flows by weighted max–min fairness: every flow
// receives its fair share of the remaining capacity in proportion to its
// weight, unless a per-flow cap (a bandwidth limit) entitles it to less, in
// which case the spare capacity cascades to the other flows. This is the
// behaviour the paper exploits: a throttled asynchronous job returns its
// spare bandwidth to the synchronous jobs competing for the file system.
package pfs

import (
	"fmt"
	"math"

	"iobehind/internal/des"
)

// Class selects which channel a transfer uses.
type Class int

const (
	// Write transfers data from compute nodes to the file system.
	Write Class = iota
	// Read transfers data from the file system to compute nodes.
	Read
)

// String returns "write" or "read".
func (c Class) String() string {
	if c == Read {
		return "read"
	}
	return "write"
}

// Unlimited is the cap value for flows without a bandwidth limit.
var Unlimited = math.Inf(1)

// Config describes a file system.
type Config struct {
	// WriteCapacity and ReadCapacity are the peak bandwidths in bytes/s.
	// The paper's system: 106 GB/s writes, 120 GB/s reads.
	WriteCapacity float64
	ReadCapacity  float64
	// Noise, if non-nil, perturbs the effective capacity over time to model
	// external interference (other users, network congestion).
	Noise *NoiseConfig
	// SharedChannels makes reads and writes compete for one capacity
	// (WriteCapacity) instead of the default independent channels —
	// appropriate for systems whose peak figures are not direction-
	// independent.
	SharedChannels bool
	// InjectionCap, when positive, limits the aggregate rate of each
	// node's flows (grouped by Tag.Job and Tag.Node) to the node's NIC
	// bandwidth in bytes/s. Allocation becomes two-level hierarchical
	// max–min: capacity is shared fairly across nodes first, then within
	// each node across its flows. A single node can then never draw the
	// whole file-system bandwidth, however many ranks it hosts.
	InjectionCap float64
}

// LichtenbergConfig returns the file system parameters of the paper's
// production system.
func LichtenbergConfig() Config {
	return Config{
		WriteCapacity: 106e9,
		ReadCapacity:  120e9,
	}
}

// PFS is a simulated parallel file system with one write and one read
// channel.
type PFS struct {
	e     *des.Engine
	chans [2]*channel
}

// New creates a file system on engine e. Capacities must be positive.
func New(e *des.Engine, cfg Config) *PFS {
	if cfg.WriteCapacity <= 0 || cfg.ReadCapacity <= 0 {
		panic(fmt.Sprintf("pfs: capacities must be positive, got write=%g read=%g",
			cfg.WriteCapacity, cfg.ReadCapacity))
	}
	p := &PFS{e: e}
	p.chans[Write] = newChannel(e, "write", cfg.WriteCapacity)
	if cfg.SharedChannels {
		p.chans[Read] = p.chans[Write]
	} else {
		p.chans[Read] = newChannel(e, "read", cfg.ReadCapacity)
	}
	p.chans[Write].injectionCap = cfg.InjectionCap
	p.chans[Read].injectionCap = cfg.InjectionCap
	if cfg.Noise != nil {
		cfg.Noise.validate()
		p.chans[Write].noise = cfg.Noise
		p.chans[Read].noise = cfg.Noise
	}
	return p
}

// Engine returns the engine the file system is bound to.
func (p *PFS) Engine() *des.Engine { return p.e }

// Capacity returns the configured peak bandwidth of the class's channel.
func (p *PFS) Capacity(c Class) float64 { return p.chans[c].base }

// SetObserver installs fn to be called after every rate reallocation on
// either channel, with the current time and the channel's flows. Used by
// the cluster simulator to record bandwidth distribution over time.
func (p *PFS) SetObserver(fn func(now des.Time, class Class, flows []*Flow)) {
	p.chans[Write].observer = func(now des.Time, flows []*Flow) { fn(now, Write, flows) }
	if p.chans[Read] == p.chans[Write] {
		// Shared channels: one channel, one observer; callbacks carry
		// Write as the class label for the combined traffic.
		return
	}
	p.chans[Read].observer = func(now des.Time, flows []*Flow) { fn(now, Read, flows) }
}

// StartFlow begins transferring bytes on the class channel and returns
// immediately. weight sets the flow's fair-share weight (e.g. the job's
// node count); cap limits the flow's rate in bytes/s (Unlimited for none).
// Zero-byte flows complete at the current instant.
func (p *PFS) StartFlow(class Class, bytes int64, weight, cap float64, tag Tag) *Flow {
	if bytes < 0 {
		panic("pfs: negative transfer size")
	}
	if weight <= 0 {
		panic("pfs: flow weight must be positive")
	}
	return p.chans[class].start(float64(bytes), weight, cap, tag)
}

// Transfer runs a blocking transfer: it starts a flow and parks proc until
// the last byte has moved. It returns the transfer's start and end times.
func (p *PFS) Transfer(proc *des.Proc, class Class, bytes int64, weight, cap float64, tag Tag) (start, end des.Time) {
	f := p.StartFlow(class, bytes, weight, cap, tag)
	f.Wait(proc)
	return f.Started(), f.Finished()
}

// SetFaultFactor scales the effective capacity of the class's channel by
// factor in [0,1] (1 restores full capacity; 0 is an outage, landing on
// the channel's 1 B/s floor so flows stall but never deadlock). The
// factor composes multiplicatively with the noise model: effective
// capacity = base × noise × fault. The fault-injection subsystem
// (internal/faults) drives this on window boundaries.
func (p *PFS) SetFaultFactor(class Class, factor float64) {
	p.chans[class].setFaultFactor(factor)
}

// SetFaultFactors installs both classes' fault factors at once. With
// SharedChannels the two classes share one channel and the stricter
// (smaller) factor applies — an outage on either direction stalls the
// combined traffic.
func (p *PFS) SetFaultFactors(write, read float64) {
	if p.chans[Read] == p.chans[Write] {
		p.chans[Write].setFaultFactor(math.Min(write, read))
		return
	}
	p.chans[Write].setFaultFactor(write)
	p.chans[Read].setFaultFactor(read)
}

// FaultFactor returns the fault factor currently applied to the class's
// channel (1 when healthy).
func (p *PFS) FaultFactor(class Class) float64 { return p.chans[class].faultFactor }

// ActiveFlows returns the number of in-flight flows on the class channel.
func (p *PFS) ActiveFlows(c Class) int { return len(p.chans[c].flows) }

// Demand returns the sum of the rates all active flows on the channel
// would like (cap, or the channel capacity for unlimited flows). The
// cluster simulator uses it to detect contention.
func (p *PFS) Demand(c Class) float64 {
	ch := p.chans[c]
	var d float64
	for _, f := range ch.flows {
		want := f.cap
		if math.IsInf(want, 1) || want > ch.capacity {
			want = ch.capacity
		}
		d += want
	}
	return d
}

// NoteOp records an operation submission on the class channel and returns
// the burst concurrency: the number of operations (including this one)
// submitted within the last second. The MPI-IO layer calls it per
// operation to drive the storm-latency model.
func (p *PFS) NoteOp(c Class) int { return p.chans[c].noteOp() }

// RecentOps returns the burst concurrency without recording an operation.
func (p *PFS) RecentOps(c Class) int { return p.chans[c].recentOps() }

// Tag identifies a flow for observers and for the injection-cap grouping:
// which job, rank, and node it belongs to.
type Tag struct {
	Job  int
	Rank int
	Node int
}
