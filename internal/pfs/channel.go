package pfs

import (
	"math"
	"sort"

	"iobehind/internal/des"
)

// channel is one direction (read or write) of the file system: a capacity
// shared by flows under weighted max–min fairness with per-flow caps.
//
// The fluid model is advanced lazily: whenever the flow set, a cap, or the
// capacity changes, progress since the previous change is integrated at the
// old rates, rates are recomputed by water-filling, and a single event is
// scheduled at the earliest projected flow completion. Keeping one pending
// event (instead of one per flow) bounds the cost of a change to O(flows).
type channel struct {
	e            *des.Engine
	name         string
	base         float64 // configured peak capacity, bytes/s
	capacity     float64 // current effective capacity (noise and faults applied)
	noiseFactor  float64 // stationary noise scaling, (0,1]
	faultFactor  float64 // fault-injection scaling, [0,1]
	flows        []*Flow
	last         des.Time   // time progress was last integrated
	cancel       des.Handle // pending completion event, if any
	dirty        bool       // a recompute event is queued
	observer     func(now des.Time, flows []*Flow)
	noise        *NoiseConfig
	noiseOn      bool
	injectionCap float64 // per-node NIC cap, 0 = disabled

	// dirtyFn and recomputeFn are the two event callbacks the channel
	// schedules on every recompute cycle, bound once at construction so
	// the hot path never materializes a new closure.
	dirtyFn     func()
	recomputeFn func()

	// Scratch buffers reused across recomputes so the steady-state
	// water-filling path allocates nothing: order backs the sorted view
	// inside allocate, sorter is its sort.Stable adapter, and the
	// group* / members / supers set backs allocateGrouped's two-level
	// decomposition. They are plain scratch — valid only within one
	// allocation pass, never across events.
	order    []*Flow
	sorter   flowSorter
	groupIdx map[nodeKey]int
	members  [][]*Flow
	supers   []*Flow

	// recent tracks operation submissions inside the storm window for the
	// burst-storm latency model; head indexes the oldest live entry.
	recent []des.Time
	head   int
}

// stormWindow is how long a submitted operation counts toward the burst
// concurrency estimate.
const stormWindow = des.Second

// noteOp records an operation submission and returns the number of
// operations (including this one) seen within the storm window.
func (c *channel) noteOp() int {
	c.pruneRecent()
	c.recent = append(c.recent, c.e.Now())
	return len(c.recent) - c.head
}

// recentOps returns the number of operations submitted within the storm
// window.
func (c *channel) recentOps() int {
	c.pruneRecent()
	return len(c.recent) - c.head
}

func (c *channel) pruneRecent() {
	cutoff := c.e.Now().Add(-stormWindow)
	for c.head < len(c.recent) && c.recent[c.head] <= cutoff {
		c.head++
	}
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if c.head > 1024 && c.head > len(c.recent)/2 {
		c.recent = append(c.recent[:0], c.recent[c.head:]...)
		c.head = 0
	}
}

func newChannel(e *des.Engine, name string, capacity float64) *channel {
	c := &channel{
		e: e, name: name,
		base: capacity, capacity: capacity,
		noiseFactor: 1, faultFactor: 1,
	}
	c.dirtyFn = func() {
		c.dirty = false
		c.recompute()
	}
	c.recomputeFn = c.recompute
	return c
}

// Flow is one in-flight transfer on a channel.
type Flow struct {
	ch        *channel
	tag       Tag
	total     float64
	remaining float64
	weight    float64
	cap       float64
	rate      float64
	finishAt  des.Time // projected completion under current rates
	started   des.Time
	finished  des.Time
	done      *des.Completion
}

// Tag returns the identity the flow was started with.
func (f *Flow) Tag() Tag { return f.tag }

// Rate returns the flow's current allocated bandwidth in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Started returns when the flow began.
func (f *Flow) Started() des.Time { return f.started }

// Finished returns when the last byte moved; zero while in flight.
func (f *Flow) Finished() des.Time { return f.finished }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done.Done() }

// Wait parks proc until the flow completes.
func (f *Flow) Wait(proc *des.Proc) { f.done.Wait(proc) }

// SetCap changes the flow's bandwidth cap while in flight. It is a no-op
// on completed flows.
func (f *Flow) SetCap(cap float64) {
	if f.done.Done() || f.cap == cap {
		return
	}
	f.ch.integrate()
	f.cap = cap
	f.ch.markDirty()
}

func (c *channel) start(bytes, weight, cap float64, tag Tag) *Flow {
	f := &Flow{
		ch:        c,
		tag:       tag,
		total:     bytes,
		remaining: bytes,
		weight:    weight,
		cap:       cap,
		started:   c.e.Now(),
		done:      des.NewCompletion(c.e),
	}
	if bytes <= 0 {
		f.finished = c.e.Now()
		f.done.Complete()
		return f
	}
	c.integrate()
	c.flows = append(c.flows, f)
	c.markDirty()
	c.maybeStartNoise()
	return f
}

// setNoiseFactor installs the stationary-noise scaling and reapplies the
// combined effective capacity.
func (c *channel) setNoiseFactor(f float64) {
	c.noiseFactor = f
	c.applyFactors()
}

// setFaultFactor installs the fault-injection scaling (clamped to [0,1])
// and reapplies the combined effective capacity. A factor of 0 (an
// outage) lands on setCapacity's 1 B/s floor: flows stall for the window
// but can never deadlock the simulation.
func (c *channel) setFaultFactor(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	c.faultFactor = f
	c.applyFactors()
}

// applyFactors recomputes the effective capacity as base × noise × fault,
// so the two degradation sources compose instead of overwriting each
// other.
func (c *channel) applyFactors() {
	c.setCapacity(c.base * c.noiseFactor * c.faultFactor)
}

// setCapacity changes the effective channel capacity (noise injection).
func (c *channel) setCapacity(capacity float64) {
	if capacity <= 0 {
		capacity = 1 // never fully stall the file system
	}
	if capacity == c.capacity {
		return
	}
	c.integrate()
	c.capacity = capacity
	c.markDirty()
}

// integrate advances every flow's remaining bytes to the current instant at
// the rates assigned by the previous recompute.
func (c *channel) integrate() {
	now := c.e.Now()
	dt := now.Sub(c.last).Seconds()
	c.last = now
	if dt <= 0 {
		return
	}
	for _, f := range c.flows {
		if f.finishAt != 0 && f.finishAt <= now {
			f.remaining = 0
		} else {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
}

// markDirty schedules a single recompute at the current instant, after all
// same-instant process activity, so bursts of flow starts are batched.
func (c *channel) markDirty() {
	if c.dirty {
		return
	}
	c.dirty = true
	c.e.Schedule(c.e.Now(), des.PrioLate+1, c.dirtyFn)
}

// recompute integrates progress, completes finished flows, water-fills the
// rates of the survivors, and schedules the next completion event.
func (c *channel) recompute() {
	c.integrate()
	now := c.e.Now()

	// Complete drained flows (swap-delete keeps this O(flows)).
	for i := 0; i < len(c.flows); {
		f := c.flows[i]
		if f.remaining <= 0 {
			f.finished = now
			f.rate = 0
			f.finishAt = 0
			last := len(c.flows) - 1
			c.flows[i] = c.flows[last]
			c.flows[last] = nil
			c.flows = c.flows[:last]
			f.done.Complete()
			continue
		}
		i++
	}

	next := c.waterfill()

	// Replace the pending completion event with one at the new earliest
	// completion. The stale event is cancelled; the engine's dead-event
	// compaction keeps this reschedule-per-recompute pattern from
	// accumulating corpses in the queue.
	c.cancel.Cancel()
	c.cancel = des.Handle{}
	if next != 0 {
		c.cancel = c.e.Schedule(next, des.PrioEarly, c.recomputeFn)
	}
	if c.observer != nil {
		c.observer(now, c.flows)
	}
}

// waterfill assigns weighted max–min fair rates honouring per-flow caps
// (and, when configured, per-node injection caps), recomputes each flow's
// projected finish time, and returns the earliest one (zero when no flow
// will finish on its own) so the caller needs no second pass.
func (c *channel) waterfill() des.Time {
	n := len(c.flows)
	if n == 0 {
		return 0
	}
	if c.injectionCap > 0 {
		c.allocateGrouped()
	} else {
		c.allocate(c.capacity, c.flows)
	}
	now := c.e.Now()
	var next des.Time
	for _, f := range c.flows {
		f.finishAt = projectFinish(now, f.remaining, f.rate)
		if f.finishAt != 0 && (next == 0 || f.finishAt < next) {
			next = f.finishAt
		}
	}
	return next
}

// flowOrderLess is the water-filling visit order: ascending cap/weight,
// with ties broken by the flow's tag. The tag tie-break makes the order
// total over distinct flows, so tied rate classes resolve identically no
// matter how the input happens to be arranged — determinism by
// construction rather than by accident of sort.Slice's pivot choices.
func flowOrderLess(a, b *Flow) bool {
	ra, rb := a.cap/a.weight, b.cap/b.weight
	if ra < rb {
		return true
	}
	if ra > rb {
		return false
	}
	if a.tag.Job != b.tag.Job {
		return a.tag.Job < b.tag.Job
	}
	if a.tag.Node != b.tag.Node {
		return a.tag.Node < b.tag.Node
	}
	return a.tag.Rank < b.tag.Rank
}

// flowSorter adapts a flow slice to sort.Stable without a per-call
// closure; channels keep one and reuse it.
type flowSorter struct{ flows []*Flow }

func (s *flowSorter) Len() int           { return len(s.flows) }
func (s *flowSorter) Less(i, j int) bool { return flowOrderLess(s.flows[i], s.flows[j]) }
func (s *flowSorter) Swap(i, j int)      { s.flows[i], s.flows[j] = s.flows[j], s.flows[i] }

// insertionSortMax is the size up to which sortFlows uses insertion sort.
// Rate classes per channel are few in every workload the simulator
// models, so this covers the common case without sort.Stable's overhead.
const insertionSortMax = 32

// sortFlows stably sorts order by flowOrderLess. Stability matters only
// for flows with identical tags (indistinguishable anyway); it costs
// nothing with insertion sort and keeps the fallback consistent.
func (c *channel) sortFlows(order []*Flow) {
	if len(order) <= insertionSortMax {
		for i := 1; i < len(order); i++ {
			f := order[i]
			j := i - 1
			for j >= 0 && flowOrderLess(f, order[j]) {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = f
		}
		return
	}
	c.sorter.flows = order
	sort.Stable(&c.sorter)
	c.sorter.flows = nil
}

// allocate assigns weighted max–min fair rates to flows under capacity,
// honouring per-flow caps. It only sets f.rate. The sorted view lives in
// the channel's scratch buffer; calls must not nest (allocateGrouped's
// sequential super- and member-level calls are fine).
func (c *channel) allocate(capacity float64, flows []*Flow) {
	n := len(flows)
	if n == 0 {
		return
	}

	// Fast path: total demand fits; everyone gets its cap.
	total := 0.0
	capped := true
	for _, f := range flows {
		if math.IsInf(f.cap, 1) {
			capped = false
			break
		}
		total += f.cap
	}
	if capped && total <= capacity {
		for _, f := range flows {
			f.rate = f.cap
		}
		return
	}

	// Fast path: no caps and uniform weights (the common case of a
	// synchronized burst) — everyone gets an equal share, no sort needed.
	uniform := true
	for _, f := range flows {
		if !math.IsInf(f.cap, 1) || f.weight != flows[0].weight {
			uniform = false
			break
		}
	}
	if uniform {
		rate := capacity / float64(n)
		for _, f := range flows {
			f.rate = rate
		}
		return
	}

	// Water-filling: visit flows by ascending cap/weight. A flow whose cap
	// is below its proportional share keeps the cap and donates the rest.
	// Sorting a scratch copy (rather than the caller's slice) preserves
	// the flow set's insertion order for observers.
	order := append(c.order[:0], flows...)
	c.order = order
	c.sortFlows(order)
	remaining := capacity
	weight := 0.0
	for _, f := range order {
		weight += f.weight
	}
	for _, f := range order {
		fair := remaining * f.weight / weight
		rate := fair
		if f.cap < fair {
			rate = f.cap
		}
		f.rate = rate
		remaining -= rate
		weight -= f.weight
	}
	// Drop the flow references so an idle channel's scratch does not pin
	// completed flows for the GC.
	for i := range order {
		order[i] = nil
	}
}

// nodeKey groups flows sharing one node's NIC.
type nodeKey struct {
	job, node int
}

// allocateGrouped performs the two-level hierarchical allocation: the
// channel capacity is divided across node groups by weighted max–min with
// each group capped at the injection bandwidth, then each group's rate is
// divided across its member flows. Groups are assembled in first-
// appearance order over c.flows — not by ranging over a map — so the
// super-flow ordering (and with it every downstream float accumulation)
// is identical on every run. All grouping state lives in per-channel
// scratch reused across recomputes.
func (c *channel) allocateGrouped() {
	if c.groupIdx == nil {
		c.groupIdx = make(map[nodeKey]int)
	} else {
		clear(c.groupIdx)
	}
	c.members = c.members[:0]
	for _, f := range c.flows {
		k := nodeKey{job: f.tag.Job, node: f.tag.Node}
		gi, ok := c.groupIdx[k]
		if !ok {
			gi = len(c.members)
			c.groupIdx[k] = gi
			if gi < cap(c.members) {
				// Reuse the retired member slice's backing array.
				c.members = c.members[:gi+1]
				c.members[gi] = c.members[gi][:0]
			} else {
				c.members = append(c.members, nil)
			}
		}
		c.members[gi] = append(c.members[gi], f)
	}
	// Build one pooled super-flow per group. Its cap is the injection
	// bandwidth, tightened further when every member is individually
	// capped below it; its tag is the group identity, which gives the
	// water-filling tie-break a total order over supers too.
	for len(c.supers) < len(c.members) {
		c.supers = append(c.supers, &Flow{})
	}
	supers := c.supers[:len(c.members)]
	for i, flows := range c.members {
		weight, caps := 0.0, 0.0
		uncapped := false
		for _, f := range flows {
			weight += f.weight
			if math.IsInf(f.cap, 1) {
				uncapped = true
			} else {
				caps += f.cap
			}
		}
		gcap := c.injectionCap
		if !uncapped && caps < gcap {
			gcap = caps
		}
		*supers[i] = Flow{
			weight: weight,
			cap:    gcap,
			tag:    Tag{Job: flows[0].tag.Job, Node: flows[0].tag.Node},
		}
	}
	c.allocate(c.capacity, supers)
	for i, flows := range c.members {
		c.allocate(supers[i].rate, flows)
	}
	// As with allocate's order scratch: release member references so the
	// scratch never outlives the flows it grouped.
	for i, m := range c.members {
		for j := range m {
			m[j] = nil
		}
		c.members[i] = m[:0]
	}
}

// maxProjectSeconds caps a projected transfer duration at about 73 virtual
// years. Beyond it the nanosecond clock would overflow to a negative
// instant (a terabyte-scale flow on an outage-floored 1 B/s channel gets
// there easily). A clamped completion event just fires at the horizon,
// integrates the progress actually made, and re-projects — the flow still
// finishes at the right virtual time.
const maxProjectSeconds = float64(1<<61) / 1e9

// projectFinish returns the absolute completion time of a flow, rounding up
// a nanosecond so the completion event never fires before the fluid model
// says the flow is done. Zero-rate flows never finish on their own.
func projectFinish(now des.Time, remaining, rate float64) des.Time {
	if rate <= 0 {
		return 0
	}
	seconds := remaining / rate
	if seconds > maxProjectSeconds {
		seconds = maxProjectSeconds
	}
	d := des.DurationOf(seconds) + 1
	return now.Add(d)
}
