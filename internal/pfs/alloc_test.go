package pfs

import (
	"testing"

	"iobehind/internal/des"
)

// churnSetup builds a channel with a standing mixed-cap flow population
// (off both allocator fast paths) and warms every scratch buffer and the
// engine's event pool far enough that free-list growth has flattened out.
func churnSetup(injectionCap float64) *channel {
	e := des.NewEngine(1)
	c := newChannel(e, "test", 100)
	c.injectionCap = injectionCap
	for i := 0; i < 24; i++ {
		capv := Unlimited
		if i%2 == 0 {
			capv = float64(3 + i)
		}
		c.flows = append(c.flows, &Flow{
			tag:       Tag{Job: i % 2, Node: i % 5, Rank: i},
			weight:    float64(1 + i%3),
			cap:       capv,
			remaining: 1e12,
			done:      des.NewCompletion(e),
		})
	}
	// Warm-up: enough recomputes to grow the heap, the event free list
	// (through several dead-event compactions), and the channel scratch
	// to their steady-state sizes.
	for i := 0; i < 512; i++ {
		c.recompute()
	}
	return c
}

// TestRecomputeSteadyStateAllocs is the channel-side allocation guard:
// once scratch and pool are warm, a full recompute — integrate, water-
// fill with the sorted visit order, completion-event reschedule — must
// not allocate. This is what keeps thousand-rank-phase sweeps off the
// garbage collector.
func TestRecomputeSteadyStateAllocs(t *testing.T) {
	c := churnSetup(0)
	avg := testing.AllocsPerRun(500, func() { c.recompute() })
	if avg != 0 {
		t.Fatalf("recompute = %v allocs/op, want 0", avg)
	}
	if c.e.Stats().DeadCompactions == 0 {
		t.Fatal("guard never exercised the dead-event compaction path")
	}
}

// TestRecomputeGroupedSteadyStateAllocs covers the injection-cap path:
// group map, member lists, and pooled super-flows must all come from
// per-channel scratch.
func TestRecomputeGroupedSteadyStateAllocs(t *testing.T) {
	c := churnSetup(25)
	avg := testing.AllocsPerRun(500, func() { c.recompute() })
	if avg != 0 {
		t.Fatalf("grouped recompute = %v allocs/op, want 0", avg)
	}
}

// TestSetCapChurnSteadyStateAllocs drives the public-API version of the
// cancel-churn pattern (BenchmarkCancelChurn) through SetCap and pins it
// to the flow-set bookkeeping only.
func TestSetCapChurnSteadyStateAllocs(t *testing.T) {
	c := churnSetup(0)
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		f := c.flows[i%len(c.flows)]
		f.cap = float64(3 + i%11)
		i++
		c.recompute()
	})
	if avg != 0 {
		t.Fatalf("SetCap churn = %v allocs/op, want 0", avg)
	}
}
