package pfs

import (
	"math"
	"testing"

	"iobehind/internal/des"
)

func bbSetup(cfg BurstBufferConfig) (*des.Engine, *PFS, *BurstBuffer) {
	e := des.NewEngine(1)
	fs := New(e, Config{WriteCapacity: 1e9, ReadCapacity: 1e9})
	bb := NewBurstBuffer(e, fs, cfg, 1, Tag{})
	return e, fs, bb
}

func TestBurstBufferAbsorbsAtWriteRate(t *testing.T) {
	e, _, bb := bbSetup(BurstBufferConfig{
		Capacity: 1 << 30, WriteRate: 1e9, DrainRate: 100e6,
	})
	var absorbed des.Time
	e.Spawn("app", func(p *des.Proc) {
		bb.Write(p, 500e6) // 0.5 s at 1 GB/s
		absorbed = p.Now()
		bb.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := absorbed.Seconds(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("absorbed in %v, want 0.5s", got)
	}
	// The drain continues after the writer finished, capped at DrainRate:
	// 500 MB at 100 MB/s ≈ 5 s.
	if bb.Drained() != 500e6 {
		t.Fatalf("drained = %d", bb.Drained())
	}
	if got := e.Now().Seconds(); got < 5 || got > 5.6 {
		t.Fatalf("drain finished at %v, want ≈5s", got)
	}
	if bb.Level() != 0 {
		t.Fatalf("level = %d after close", bb.Level())
	}
}

func TestBurstBufferBackpressure(t *testing.T) {
	e, _, bb := bbSetup(BurstBufferConfig{
		Capacity: 100e6, WriteRate: 1e9, DrainRate: 50e6, DrainChunk: 10e6,
	})
	var wrote des.Time
	e.Spawn("app", func(p *des.Proc) {
		bb.Write(p, 300e6) // 3× the capacity: must wait for the drain
		wrote = p.Now()
		bb.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 200 MB must drain (at 50 MB/s = 4 s) before the last byte fits.
	if got := wrote.Seconds(); got < 3.9 {
		t.Fatalf("write returned at %v, backpressure missing", got)
	}
	if bb.Drained() != 300e6 {
		t.Fatalf("drained = %d", bb.Drained())
	}
}

func TestBurstBufferDrainRateCapped(t *testing.T) {
	e, fs, bb := bbSetup(BurstBufferConfig{
		Capacity: 1 << 30, WriteRate: 10e9, DrainRate: 100e6,
	})
	var peak float64
	fs.SetObserver(func(now des.Time, class Class, flows []*Flow) {
		for _, f := range flows {
			if f.Rate() > peak {
				peak = f.Rate()
			}
		}
	})
	e.Spawn("app", func(p *des.Proc) {
		bb.Write(p, 200e6)
		bb.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak > 100e6*1.001 {
		t.Fatalf("drain peaked at %v, cap is 100e6", peak)
	}
}

func TestBurstBufferValidation(t *testing.T) {
	if err := (BurstBufferConfig{Capacity: 0, WriteRate: 1, DrainRate: 1}).Validate(); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := (BurstBufferConfig{Capacity: 1, WriteRate: 0, DrainRate: 1}).Validate(); err == nil {
		t.Fatal("zero write rate accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewBurstBuffer with bad config did not panic")
		}
	}()
	bbSetup(BurstBufferConfig{})
}

func TestRequiredDrainRate(t *testing.T) {
	// 10 GB burst every 100 s: 100 MB/s keeps the buffer level bounded.
	if got := RequiredDrainRate(10e9, 100*des.Second); math.Abs(got-100e6) > 1 {
		t.Fatalf("rate = %v", got)
	}
	if RequiredDrainRate(1, 0) != 0 {
		t.Fatal("zero period")
	}
}

func TestMinCapacity(t *testing.T) {
	// Burst of 1 GB at 10 GB/s (0.1 s) draining at 1 GB/s: peak level is
	// 1 GB − 0.1 GB = 0.9 GB.
	if got := MinCapacity(1e9, 10e9, 1e9); math.Abs(float64(got)-0.9e9) > 1e6 {
		t.Fatalf("capacity = %d", got)
	}
	if MinCapacity(1e9, 1e9, 2e9) != 0 {
		t.Fatal("drain faster than write needs no capacity")
	}
	if MinCapacity(1e9, 0, 1) != 1e9 {
		t.Fatal("degenerate write rate")
	}
}

// TestBurstBufferSteadyStatePeriodic: a periodic burst pattern with
// DrainRate = RequiredDrainRate × 1.1 never overflows a MinCapacity-sized
// buffer, so the writer never blocks — the paper's future-work claim.
func TestBurstBufferSteadyStatePeriodic(t *testing.T) {
	period := des.Duration(10 * des.Second)
	burst := int64(500e6)
	writeRate := 5e9
	drainRate := RequiredDrainRate(burst, period) * 1.1
	// The chunked drainer frees space one chunk at a time, so the buffer
	// needs one chunk of slack on top of the fluid-model minimum.
	chunk := int64(16e6)
	capacity := MinCapacity(burst, writeRate, drainRate) + chunk

	e := des.NewEngine(1)
	fs := New(e, Config{WriteCapacity: 10e9, ReadCapacity: 10e9})
	bb := NewBurstBuffer(e, fs, BurstBufferConfig{
		Capacity: capacity, WriteRate: writeRate, DrainRate: drainRate,
		DrainChunk: chunk,
	}, 1, Tag{})
	absorbTimes := make([]float64, 0, 8)
	e.Spawn("app", func(p *des.Proc) {
		for i := 0; i < 8; i++ {
			start := p.Now()
			bb.Write(p, burst)
			absorbTimes = append(absorbTimes, p.Now().Sub(start).Seconds())
			p.SleepUntil(des.Time(int64(period) * int64(i+1)))
		}
		bb.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := float64(burst) / writeRate
	for i, got := range absorbTimes {
		if got > want*1.05 {
			t.Fatalf("burst %d took %v, want %v (writer blocked: drain underprovisioned)",
				i, got, want)
		}
	}
	if bb.Drained() != 8*burst {
		t.Fatalf("drained = %d", bb.Drained())
	}
}
