package pfs

import (
	"fmt"

	"iobehind/internal/des"
)

// BurstBufferConfig describes a node-local burst buffer tier (NVMe or
// similar). The paper's future work proposes "a similar definition [of the
// required bandwidth] for synchronous I/O in the presence of burst
// buffers": with a buffer in front of the file system, even a synchronous
// burst completes at buffer speed, and the *drain* to the parallel file
// system is what needs provisioning — RequiredDrainRate computes it.
type BurstBufferConfig struct {
	// Capacity in bytes. A full buffer back-pressures writers.
	Capacity int64
	// WriteRate is the absorb bandwidth in bytes/s (the burst speed).
	WriteRate float64
	// DrainRate caps the background drain flow to the file system in
	// bytes/s. This is the buffer's bandwidth footprint on the shared
	// system — the quantity to keep as low as the workload allows.
	DrainRate float64
	// DrainChunk is the drain granularity in bytes. Defaults to 64 MiB.
	DrainChunk int64
}

func (c *BurstBufferConfig) applyDefaults() {
	if c.DrainChunk <= 0 {
		c.DrainChunk = 64 << 20
	}
}

// Validate reports configuration errors.
func (c BurstBufferConfig) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("pfs: burst buffer capacity must be positive")
	}
	if c.WriteRate <= 0 || c.DrainRate <= 0 {
		return fmt.Errorf("pfs: burst buffer rates must be positive")
	}
	return nil
}

// RequiredDrainRate is the burst-buffer analogue of the paper's required
// bandwidth: the minimal drain rate such that a periodic burst of
// bytesPerBurst every period never accumulates in the buffer. It is the
// synchronous application's true demand on the shared file system.
func RequiredDrainRate(bytesPerBurst int64, period des.Duration) float64 {
	if period <= 0 {
		return 0
	}
	return float64(bytesPerBurst) / period.Seconds()
}

// MinCapacity returns the buffer size needed to absorb a burst of
// bytesPerBurst at writeRate while draining at drainRate: the peak level
// reached at the end of the burst.
func MinCapacity(bytesPerBurst int64, writeRate, drainRate float64) int64 {
	if writeRate <= 0 {
		return bytesPerBurst
	}
	if drainRate >= writeRate {
		return 0
	}
	burstDur := float64(bytesPerBurst) / writeRate
	peak := float64(bytesPerBurst) - drainRate*burstDur
	if peak < 0 {
		peak = 0
	}
	return int64(peak + 0.5)
}

// BurstBuffer is one buffer instance draining into a PFS write channel.
type BurstBuffer struct {
	e       *des.Engine
	fs      *PFS
	cfg     BurstBufferConfig
	tag     Tag
	weight  float64
	level   int64 // bytes currently buffered (including in-drain chunk)
	drainer *des.Proc
	work    *des.Completion // fired when data arrives for an idle drainer
	space   *des.Completion // fired when the drainer frees room
	drained int64           // total bytes moved to the PFS
	closed  bool
}

// NewBurstBuffer creates a buffer draining to fs with the given fair-share
// weight and flow tag. The drainer process starts immediately and runs
// until Close.
func NewBurstBuffer(e *des.Engine, fs *PFS, cfg BurstBufferConfig, weight float64, tag Tag) *BurstBuffer {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg.applyDefaults()
	bb := &BurstBuffer{
		e: e, fs: fs, cfg: cfg, tag: tag, weight: weight,
		work: des.NewCompletion(e),
	}
	bb.drainer = e.Spawn(fmt.Sprintf("bb-drainer-j%dr%d", tag.Job, tag.Rank), bb.drain)
	return bb
}

// Level returns the bytes currently buffered.
func (bb *BurstBuffer) Level() int64 { return bb.level }

// Drained returns the total bytes moved to the file system so far.
func (bb *BurstBuffer) Drained() int64 { return bb.drained }

// Config returns the buffer configuration (with defaults applied).
func (bb *BurstBuffer) Config() BurstBufferConfig { return bb.cfg }

// Write absorbs bytes into the buffer at WriteRate, back-pressuring the
// caller while the buffer is full. It returns when the last byte has been
// absorbed (not drained).
func (bb *BurstBuffer) Write(p *des.Proc, bytes int64) {
	if bb.closed {
		panic("pfs: write on closed burst buffer")
	}
	remaining := bytes
	for remaining > 0 {
		room := bb.cfg.Capacity - bb.level
		for room <= 0 {
			// Full: wait until the drainer frees space.
			if bb.space == nil || bb.space.Done() {
				bb.space = des.NewCompletion(bb.e)
			}
			bb.space.Wait(p)
			room = bb.cfg.Capacity - bb.level
		}
		chunk := remaining
		if chunk > room {
			chunk = room
		}
		p.Sleep(des.DurationOf(float64(chunk) / bb.cfg.WriteRate))
		bb.level += chunk
		remaining -= chunk
		bb.kickDrainer()
	}
}

// kickDrainer wakes an idle drainer.
func (bb *BurstBuffer) kickDrainer() {
	if !bb.work.Done() {
		bb.work.Complete()
	}
}

// drain is the background drainer: it moves buffered bytes to the file
// system in chunks, capped at DrainRate, and wakes blocked writers as
// space frees up.
func (bb *BurstBuffer) drain(p *des.Proc) {
	for {
		for bb.level == 0 {
			if bb.closed {
				return
			}
			bb.work = des.NewCompletion(bb.e)
			bb.work.Wait(p)
		}
		chunk := bb.cfg.DrainChunk
		if chunk > bb.level {
			chunk = bb.level
		}
		bb.fs.Transfer(p, Write, chunk, bb.weight, bb.cfg.DrainRate, bb.tag)
		bb.level -= chunk
		bb.drained += chunk
		// Space freed: release blocked writers (they re-check room).
		if bb.space != nil && !bb.space.Done() {
			bb.space.Complete()
		}
	}
}

// Close stops the drainer once the buffer is empty. Pending data continues
// to drain first.
func (bb *BurstBuffer) Close() {
	if bb.closed {
		return
	}
	bb.closed = true
	bb.kickDrainer()
}
