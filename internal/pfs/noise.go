package pfs

import (
	"iobehind/internal/des"
)

// NoiseConfig describes stochastic capacity perturbation of a channel,
// modelling I/O variability on a production system: other users' traffic,
// network congestion, and slow storage targets. The paper's Fig. 14 shows a
// run where exactly this variability keeps the throughput below the applied
// limit and causes short waiting phases.
type NoiseConfig struct {
	// Interval is the mean time between capacity changes. Actual gaps are
	// exponentially distributed. Must be positive when noise is enabled.
	Interval des.Duration
	// Amplitude in [0,1) scales the typical capacity reduction: the
	// effective capacity is uniform in [base·(1−Amplitude), base].
	Amplitude float64
	// DipProbability is the chance that a change is instead a deep dip to
	// DipFloor·base, modelling transient congestion events.
	DipProbability float64
	// DipFloor in (0,1] is the capacity fraction retained during a dip.
	DipFloor float64
}

func (cfg NoiseConfig) validate() {
	if cfg.Interval <= 0 {
		panic("pfs: noise interval must be positive")
	}
	if cfg.Amplitude < 0 || cfg.Amplitude >= 1 {
		panic("pfs: noise amplitude must be in [0,1)")
	}
}

// maybeStartNoise (re)starts the perturbation loop when a flow arrives on a
// noisy channel. The loop samples a new effective capacity and an
// exponentially distributed gap at each step, and parks itself (restoring
// the base capacity) once the channel drains, so the event queue can empty.
func (c *channel) maybeStartNoise() {
	if c.noise == nil || c.noiseOn {
		return
	}
	c.noiseOn = true
	cfg := *c.noise
	floor := cfg.DipFloor
	if floor <= 0 {
		floor = 0.2
	}
	var step func()
	step = func() {
		if len(c.flows) == 0 {
			c.noiseOn = false
			c.setNoiseFactor(1)
			return
		}
		rng := c.e.Rand()
		factor := 1 - cfg.Amplitude*rng.Float64()
		if cfg.DipProbability > 0 && rng.Float64() < cfg.DipProbability {
			factor = floor
		}
		c.setNoiseFactor(factor)
		gap := des.DurationOf(rng.ExpFloat64() * cfg.Interval.Seconds())
		if gap < des.Millisecond {
			gap = des.Millisecond
		}
		c.e.After(gap, step)
	}
	c.e.After(0, step)
}
