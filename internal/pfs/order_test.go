package pfs

import (
	"math"
	"testing"

	"iobehind/internal/des"
)

// permute4 is every order of four indices — small enough to enumerate.
var permute4 = [][]int{
	{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}, {0, 2, 1, 3}, {3, 0, 2, 1},
}

// TestAllocateTiedCapsDeterministic pins the water-filling tie-break:
// flows with identical cap/weight ratios used to be ordered by
// sort.Slice, whose placement of ties depends on incidental input order,
// so tied flows' float rate accumulations (and thus their projected
// completions) could differ between otherwise identical runs. With the
// stable (cap/weight, tag) total order, every input permutation must
// produce bit-identical rates per flow.
func TestAllocateTiedCapsDeterministic(t *testing.T) {
	// Deliberately non-representable ratio so any ordering difference
	// shows up in the low bits of the accumulated remaining capacity.
	const r = 7.3
	build := func() []*Flow {
		return []*Flow{
			{tag: Tag{Rank: 0}, weight: 1, cap: r * 1, remaining: 1e6},
			{tag: Tag{Rank: 1}, weight: 3, cap: r * 3, remaining: 1e6},
			{tag: Tag{Rank: 2}, weight: 7, cap: r * 7, remaining: 1e6},
			{tag: Tag{Rank: 3}, weight: 2, cap: Unlimited, remaining: 1e6},
		}
	}
	var want [4]float64
	for pi, perm := range permute4 {
		c := newChannel(des.NewEngine(1), "test", 100)
		flows := build()
		for _, i := range perm {
			c.flows = append(c.flows, flows[i])
		}
		c.allocate(c.capacity, c.flows)
		for _, f := range flows {
			got := f.rate
			if pi == 0 {
				want[f.tag.Rank] = got
				continue
			}
			if got != want[f.tag.Rank] {
				t.Fatalf("perm %v: rank %d rate = %v, want %v (tie-break is input-order dependent)",
					perm, f.tag.Rank, got, want[f.tag.Rank])
			}
		}
	}
}

// TestGroupedAllocationDeterministic does the same for the two-level
// injection-cap path, whose groups were previously assembled by ranging
// over a map: node-group ordering (and the float accumulation that
// follows it) must not depend on flow arrival order.
func TestGroupedAllocationDeterministic(t *testing.T) {
	build := func() []*Flow {
		return []*Flow{
			{tag: Tag{Job: 1, Node: 0, Rank: 0}, weight: 1.3, cap: Unlimited, remaining: 1e6},
			{tag: Tag{Job: 1, Node: 0, Rank: 1}, weight: 2.1, cap: 11.7, remaining: 1e6},
			{tag: Tag{Job: 1, Node: 1, Rank: 2}, weight: 1.9, cap: Unlimited, remaining: 1e6},
			{tag: Tag{Job: 2, Node: 0, Rank: 3}, weight: 0.7, cap: 5.3, remaining: 1e6},
		}
	}
	var want [4]float64
	for pi, perm := range permute4 {
		c := newChannel(des.NewEngine(1), "test", 40)
		c.injectionCap = 17
		flows := build()
		for _, i := range perm {
			c.flows = append(c.flows, flows[i])
		}
		c.allocateGrouped()
		for _, f := range flows {
			if pi == 0 {
				want[f.tag.Rank] = f.rate
				continue
			}
			if f.rate != want[f.tag.Rank] {
				t.Fatalf("perm %v: rank %d rate = %v, want %v", perm, f.tag.Rank, f.rate, want[f.tag.Rank])
			}
		}
	}
}

// TestSortFlowsTotalOrder checks both sort implementations (insertion
// sort for small sets, sort.Stable above insertionSortMax) produce the
// tag-ordered arrangement for tied ratios, at sizes straddling the
// cutover.
func TestSortFlowsTotalOrder(t *testing.T) {
	c := newChannel(des.NewEngine(1), "test", 100)
	for _, n := range []int{2, insertionSortMax, insertionSortMax + 1, 4 * insertionSortMax} {
		flows := make([]*Flow, n)
		for i := range flows {
			// Two tied rate classes interleaved over descending ranks.
			flows[i] = &Flow{tag: Tag{Rank: n - 1 - i}, weight: 1, cap: float64(2 + i%2)}
		}
		c.sortFlows(flows)
		for i := 1; i < n; i++ {
			a, b := flows[i-1], flows[i]
			if a.cap > b.cap || (a.cap == b.cap && a.tag.Rank >= b.tag.Rank) {
				t.Fatalf("n=%d: flows[%d..%d] out of order: (cap %v, rank %d) before (cap %v, rank %d)",
					n, i-1, i, a.cap, a.tag.Rank, b.cap, b.tag.Rank)
			}
		}
	}
}

// TestWaterfillRatesUnchangedByScratchReuse replays the same flow set
// through many recomputes and checks the scratch-reusing allocator keeps
// producing the original rates (no state leaks between passes).
func TestWaterfillRatesUnchangedByScratchReuse(t *testing.T) {
	c := newChannel(des.NewEngine(1), "test", 100)
	for i := 0; i < 6; i++ {
		capv := Unlimited
		if i%2 == 0 {
			capv = float64(10 * (i + 1))
		}
		c.flows = append(c.flows, &Flow{
			tag: Tag{Rank: i}, weight: float64(1 + i%3), cap: capv, remaining: 1e9,
		})
	}
	c.waterfill()
	var first []float64
	for _, f := range c.flows {
		first = append(first, f.rate)
	}
	total := 0.0
	for _, r := range first {
		total += r
	}
	if math.Abs(total-100) > 1e-6 {
		t.Fatalf("rates not work-conserving: total %v", total)
	}
	for round := 0; round < 50; round++ {
		c.waterfill()
		for i, f := range c.flows {
			if f.rate != first[i] {
				t.Fatalf("round %d: flow %d rate drifted %v -> %v", round, i, first[i], f.rate)
			}
		}
	}
}
