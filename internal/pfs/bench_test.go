package pfs

import (
	"testing"

	"iobehind/internal/des"
)

// BenchmarkFlowChurn measures sequential flow start/complete cycles on an
// otherwise idle channel.
func BenchmarkFlowChurn(b *testing.B) {
	b.ReportAllocs()
	e := des.NewEngine(1)
	p := New(e, Config{WriteCapacity: 1e9, ReadCapacity: 1e9})
	e.Spawn("w", func(proc *des.Proc) {
		for i := 0; i < b.N; i++ {
			p.Transfer(proc, Write, 1<<20, 1, Unlimited, Tag{})
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkConcurrentFlows measures the allocator under a synchronized
// burst of many equal flows (the uniform fast path).
func BenchmarkConcurrentFlows(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := des.NewEngine(1)
		p := New(e, Config{WriteCapacity: 100e9, ReadCapacity: 100e9})
		const flows = 4096
		for j := 0; j < flows; j++ {
			j := j
			e.Spawn("w", func(proc *des.Proc) {
				p.Transfer(proc, Write, 64<<20, 1, Unlimited, Tag{Rank: j})
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancelChurn measures repeated cap changes against a standing
// flow population: every SetCap forces a recompute, which cancels the
// pending completion event and schedules a replacement. This is the
// cancel-heavy pattern that strands dead events in the engine queue and
// re-runs the water-filling allocator without any flow completing.
func BenchmarkCancelChurn(b *testing.B) {
	b.ReportAllocs()
	e := des.NewEngine(1)
	p := New(e, Config{WriteCapacity: 1e9, ReadCapacity: 1e9})
	const flows = 64
	fs := make([]*Flow, flows)
	for i := range fs {
		// Large enough that no flow completes during the benchmark; the
		// mixed caps keep the allocator off its uniform fast path.
		fs[i] = p.StartFlow(Write, 1<<40, float64(1+i%3), 1e7*float64(1+i%5), Tag{Rank: i})
	}
	e.Spawn("churn", func(proc *des.Proc) {
		for i := 0; i < b.N; i++ {
			fs[i%flows].SetCap(1e6 * float64(1+i%9))
			proc.Sleep(des.Millisecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGroupedAllocation measures the two-level injection-cap
// allocator under the same burst.
func BenchmarkGroupedAllocation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := des.NewEngine(1)
		p := New(e, Config{WriteCapacity: 100e9, ReadCapacity: 100e9, InjectionCap: 25e9})
		const flows = 4096
		for j := 0; j < flows; j++ {
			j := j
			e.Spawn("w", func(proc *des.Proc) {
				p.Transfer(proc, Write, 64<<20, 1, Unlimited,
					Tag{Rank: j, Node: j / 96})
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
