package pfs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iobehind/internal/des"
)

func testPFS(t *testing.T, cfg Config) (*des.Engine, *PFS) {
	t.Helper()
	e := des.NewEngine(1)
	return e, New(e, cfg)
}

func runAll(t *testing.T, e *des.Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFlowFullCapacity(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 200})
	var start, end des.Time
	e.Spawn("w", func(proc *des.Proc) {
		start, end = p.Transfer(proc, Write, 1000, 1, Unlimited, Tag{})
	})
	runAll(t, e)
	if start != 0 {
		t.Fatalf("start = %v", start)
	}
	// 1000 bytes at 100 B/s = 10s (+1ns rounding).
	if got := end.Sub(start).Seconds(); math.Abs(got-10) > 1e-6 {
		t.Fatalf("duration = %v, want 10s", got)
	}
}

func TestReadAndWriteChannelsIndependent(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	var wEnd, rEnd des.Time
	e.Spawn("w", func(proc *des.Proc) {
		_, wEnd = p.Transfer(proc, Write, 1000, 1, Unlimited, Tag{})
	})
	e.Spawn("r", func(proc *des.Proc) {
		_, rEnd = p.Transfer(proc, Read, 1000, 1, Unlimited, Tag{})
	})
	runAll(t, e)
	// No cross-channel contention: both take ~10s, not 20.
	for _, end := range []des.Time{wEnd, rEnd} {
		if got := end.Seconds(); math.Abs(got-10) > 1e-6 {
			t.Fatalf("end = %v, want ~10s", got)
		}
	}
}

func TestEqualSharing(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	ends := make([]des.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("w", func(proc *des.Proc) {
			_, ends[i] = p.Transfer(proc, Write, 1000, 1, Unlimited, Tag{Rank: i})
		})
	}
	runAll(t, e)
	// Two equal flows at 50 B/s each: both finish at ~20s.
	for _, end := range ends {
		if got := end.Seconds(); math.Abs(got-20) > 1e-6 {
			t.Fatalf("end = %v, want ~20s", got)
		}
	}
}

func TestWeightedSharing(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	ends := make([]des.Time, 2)
	weights := []float64{3, 1}
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("w", func(proc *des.Proc) {
			_, ends[i] = p.Transfer(proc, Write, 1500, weights[i], Unlimited, Tag{Rank: i})
		})
	}
	runAll(t, e)
	// Heavy flow: 75 B/s → 1500/75 = 20s. After it finishes, the light
	// flow had 25 B/s for 20s (500 bytes done), then 100 B/s for the
	// remaining 1000 → 20 + 10 = 30s.
	if got := ends[0].Seconds(); math.Abs(got-20) > 1e-6 {
		t.Fatalf("heavy end = %v, want 20s", got)
	}
	if got := ends[1].Seconds(); math.Abs(got-30) > 1e-6 {
		t.Fatalf("light end = %v, want 30s", got)
	}
}

func TestCapSparesBandwidthForOthers(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	var cappedEnd, freeEnd des.Time
	e.Spawn("capped", func(proc *des.Proc) {
		_, cappedEnd = p.Transfer(proc, Write, 200, 1, 10, Tag{Rank: 0})
	})
	e.Spawn("free", func(proc *des.Proc) {
		_, freeEnd = p.Transfer(proc, Write, 900, 1, Unlimited, Tag{Rank: 1})
	})
	runAll(t, e)
	// Capped: 10 B/s → 20s. Free: 90 B/s for 10s (900 done)... it
	// finishes at 10s; capped continues at its cap (not at full rate).
	if got := freeEnd.Seconds(); math.Abs(got-10) > 1e-6 {
		t.Fatalf("free end = %v, want 10s", got)
	}
	if got := cappedEnd.Seconds(); math.Abs(got-20) > 1e-6 {
		t.Fatalf("capped end = %v, want 20s", got)
	}
}

func TestSetCapMidFlight(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	var end des.Time
	e.Spawn("w", func(proc *des.Proc) {
		f := p.StartFlow(Write, 1000, 1, 100, Tag{})
		proc.Sleep(5 * des.Second) // 500 bytes done
		f.SetCap(10)               // rest at 10 B/s → 50s more
		f.Wait(proc)
		end = proc.Now()
	})
	runAll(t, e)
	if got := end.Seconds(); math.Abs(got-55) > 1e-6 {
		t.Fatalf("end = %v, want 55s", got)
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	e.Spawn("w", func(proc *des.Proc) {
		start, end := p.Transfer(proc, Write, 0, 1, Unlimited, Tag{})
		if start != end || proc.Now() != 0 {
			t.Errorf("zero-byte transfer took time: %v..%v", start, end)
		}
	})
	runAll(t, e)
}

func TestStaggeredArrivalSharing(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	var aEnd, bEnd des.Time
	e.Spawn("a", func(proc *des.Proc) {
		_, aEnd = p.Transfer(proc, Write, 1000, 1, Unlimited, Tag{Rank: 0})
	})
	e.Spawn("b", func(proc *des.Proc) {
		proc.Sleep(5 * des.Second)
		_, bEnd = p.Transfer(proc, Write, 1000, 1, Unlimited, Tag{Rank: 1})
	})
	runAll(t, e)
	// a: 5s alone (500 done), then shares 50/50: 500 more at 50 B/s → 15s.
	// b: at 15s it has 500 done; alone for the rest → 15 + 5 = 20s.
	if got := aEnd.Seconds(); math.Abs(got-15) > 1e-5 {
		t.Fatalf("a end = %v, want 15s", got)
	}
	if got := bEnd.Seconds(); math.Abs(got-20) > 1e-5 {
		t.Fatalf("b end = %v, want 20s", got)
	}
}

func TestDemandAndActiveFlows(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	e.Spawn("w", func(proc *des.Proc) {
		f1 := p.StartFlow(Write, 1000, 1, 30, Tag{})
		f2 := p.StartFlow(Write, 1000, 1, Unlimited, Tag{})
		proc.Yield()
		if got := p.ActiveFlows(Write); got != 2 {
			t.Errorf("active = %d, want 2", got)
		}
		// Demand: 30 (cap) + 100 (unlimited counts as capacity).
		if got := p.Demand(Write); math.Abs(got-130) > 1e-9 {
			t.Errorf("demand = %v, want 130", got)
		}
		f1.Wait(proc)
		f2.Wait(proc)
	})
	runAll(t, e)
	if p.ActiveFlows(Write) != 0 {
		t.Fatal("flows left active")
	}
}

func TestObserverSeesRates(t *testing.T) {
	e, p := testPFS(t, Config{WriteCapacity: 100, ReadCapacity: 100})
	var snapshots int
	var lastTotal float64
	p.SetObserver(func(now des.Time, class Class, flows []*Flow) {
		snapshots++
		lastTotal = 0
		for _, f := range flows {
			lastTotal += f.Rate()
		}
	})
	e.Spawn("w", func(proc *des.Proc) {
		f1 := p.StartFlow(Write, 1000, 1, Unlimited, Tag{})
		f2 := p.StartFlow(Write, 500, 1, Unlimited, Tag{})
		f2.Wait(proc)
		f1.Wait(proc)
	})
	runAll(t, e)
	if snapshots == 0 {
		t.Fatal("observer never called")
	}
	if lastTotal != 0 {
		t.Fatalf("final snapshot total rate = %v, want 0 (drained)", lastTotal)
	}
}

func TestNoiseVariesCompletionAndStops(t *testing.T) {
	cfg := Config{
		WriteCapacity: 100, ReadCapacity: 100,
		Noise: &NoiseConfig{Interval: des.Second, Amplitude: 0.5},
	}
	e := des.NewEngine(9)
	p := New(e, cfg)
	var end des.Time
	e.Spawn("w", func(proc *des.Proc) {
		_, end = p.Transfer(proc, Write, 1000, 1, Unlimited, Tag{})
	})
	runAll(t, e) // must terminate: noise parks when the channel drains
	if end.Seconds() <= 10 {
		t.Fatalf("noisy transfer finished in %v, want > 10s (reduced capacity)", end)
	}
	if end.Seconds() > 25 {
		t.Fatalf("noisy transfer took %v, amplitude bound violated", end)
	}
}

func TestValidation(t *testing.T) {
	e := des.NewEngine(1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero capacity", func() { New(e, Config{WriteCapacity: 0, ReadCapacity: 1}) })
	p := New(e, Config{WriteCapacity: 1, ReadCapacity: 1})
	mustPanic("negative bytes", func() { p.StartFlow(Write, -1, 1, Unlimited, Tag{}) })
	mustPanic("zero weight", func() { p.StartFlow(Write, 1, 0, Unlimited, Tag{}) })
	mustPanic("bad noise", func() {
		New(des.NewEngine(1), Config{WriteCapacity: 1, ReadCapacity: 1,
			Noise: &NoiseConfig{Interval: 0}})
	})
}

func TestLichtenbergConfig(t *testing.T) {
	cfg := LichtenbergConfig()
	if cfg.WriteCapacity != 106e9 || cfg.ReadCapacity != 120e9 {
		t.Fatalf("unexpected config: %+v", cfg)
	}
	if Write.String() != "write" || Read.String() != "read" {
		t.Fatal("class names")
	}
}

// TestWaterfillProperties checks the allocation invariants on random flow
// sets: rates respect caps, never exceed capacity, work conservation holds
// (full capacity used unless all flows are capped below it), and max–min
// fairness (an uncapped flow's rate per weight is at least every other
// flow's).
func TestWaterfillProperties(t *testing.T) {
	f := func(caps []uint16, weights []uint8, capacity uint16) bool {
		n := len(caps)
		if len(weights) < n {
			n = len(weights)
		}
		if n == 0 {
			return true
		}
		c := newChannel(des.NewEngine(1), "test", float64(capacity%1000)+1)
		for i := 0; i < n; i++ {
			capv := float64(caps[i]%500) + 0.5
			if caps[i]%7 == 0 {
				capv = math.Inf(1)
			}
			c.flows = append(c.flows, &Flow{
				remaining: 100,
				weight:    float64(weights[i]%9) + 1,
				cap:       capv,
				done:      des.NewCompletion(c.e),
			})
		}
		c.waterfill()
		total := 0.0
		allCapped := true
		capSum := 0.0
		for _, fl := range c.flows {
			if fl.rate < 0 || fl.rate > fl.cap+1e-9 {
				return false
			}
			total += fl.rate
			if math.IsInf(fl.cap, 1) {
				allCapped = false
			} else {
				capSum += fl.cap
			}
		}
		if total > c.capacity+1e-6 {
			return false
		}
		// Work conservation.
		want := c.capacity
		if allCapped && capSum < c.capacity {
			want = capSum
		}
		if math.Abs(total-want) > 1e-6 {
			return false
		}
		// Max–min fairness: any flow below its cap must have at least the
		// weighted rate of every other flow (within tolerance).
		for _, a := range c.flows {
			if a.rate >= a.cap-1e-9 {
				continue // at cap: entitled to no more
			}
			for _, b := range c.flows {
				if a.rate/a.weight < b.rate/b.weight-1e-6 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFluidConservationProperty: with random flows and no caps, total bytes
// delivered equals total bytes requested, and completion order follows
// size/weight.
func TestFluidConservationProperty(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		e := des.NewEngine(seed)
		p := New(e, Config{WriteCapacity: 1000, ReadCapacity: 1000})
		ends := make([]des.Time, len(sizes))
		for i, s := range sizes {
			i, bytes := i, int64(s%5000)+1
			e.Spawn("w", func(proc *des.Proc) {
				_, ends[i] = p.Transfer(proc, Write, bytes, 1, Unlimited, Tag{Rank: i})
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i, s := range sizes {
			for j, s2 := range sizes {
				if s%5000 < s2%5000 && ends[i] > ends[j] {
					return false // smaller equal-weight flow must not finish later
				}
			}
		}
		return p.ActiveFlows(Write) == 0
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInjectionCapLimitsNodeAggregate(t *testing.T) {
	e := des.NewEngine(1)
	p := New(e, Config{WriteCapacity: 100, ReadCapacity: 100, InjectionCap: 30})
	// Node 0 hosts three flows, node 1 hosts one. Without the cap, node 0
	// would take 75 of 100; with a 30 B/s NIC it takes 30 and node 1 gets
	// its own 30 (NIC-bound too).
	var ends [4]des.Time
	for i := 0; i < 4; i++ {
		i := i
		node := 0
		if i == 3 {
			node = 1
		}
		e.Spawn("w", func(proc *des.Proc) {
			_, ends[i] = p.Transfer(proc, Write, 300, 1, Unlimited,
				Tag{Rank: i, Node: node})
		})
	}
	runAll(t, e)
	// Node 0: 3×300 bytes over a 30 B/s NIC = 30 s. Node 1: 300 bytes at
	// its NIC cap 30 B/s = 10 s.
	for i := 0; i < 3; i++ {
		if got := ends[i].Seconds(); math.Abs(got-30) > 0.1 {
			t.Fatalf("node-0 flow %d ended at %v, want 30s", i, got)
		}
	}
	if got := ends[3].Seconds(); math.Abs(got-10) > 0.1 {
		t.Fatalf("node-1 flow ended at %v, want 10s", got)
	}
}

func TestInjectionCapSharesFairlyAcrossNodes(t *testing.T) {
	e := des.NewEngine(1)
	// Capacity below the sum of NIC caps: nodes share max–min fairly.
	p := New(e, Config{WriteCapacity: 40, ReadCapacity: 40, InjectionCap: 30})
	var ends [2]des.Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("w", func(proc *des.Proc) {
			_, ends[i] = p.Transfer(proc, Write, 200, 1, Unlimited,
				Tag{Rank: i, Node: i})
		})
	}
	runAll(t, e)
	// Two nodes split 40 B/s evenly (20 each, below the 30 NIC cap):
	// 200/20 = 10 s each.
	for i, end := range ends {
		if got := end.Seconds(); math.Abs(got-10) > 0.1 {
			t.Fatalf("node %d ended at %v, want 10s", i, got)
		}
	}
}

func TestInjectionCapRespectsFlowCaps(t *testing.T) {
	e := des.NewEngine(1)
	p := New(e, Config{WriteCapacity: 100, ReadCapacity: 100, InjectionCap: 50})
	var capped, free des.Time
	e.Spawn("capped", func(proc *des.Proc) {
		_, capped = p.Transfer(proc, Write, 100, 1, 10, Tag{Node: 0})
	})
	e.Spawn("free", func(proc *des.Proc) {
		_, free = p.Transfer(proc, Write, 400, 1, Unlimited, Tag{Node: 0, Rank: 1})
	})
	runAll(t, e)
	// Same node: 50 B/s NIC; the capped flow takes its 10, the free one
	// the remaining 40 → finishes 400/40 = 10 s. Capped: 100/10 = 10 s.
	if math.Abs(capped.Seconds()-10) > 0.1 || math.Abs(free.Seconds()-10) > 0.1 {
		t.Fatalf("ends: capped=%v free=%v, want 10s each", capped, free)
	}
}

func TestSharedChannels(t *testing.T) {
	e := des.NewEngine(1)
	p := New(e, Config{WriteCapacity: 100, ReadCapacity: 100, SharedChannels: true})
	var wEnd, rEnd des.Time
	e.Spawn("w", func(proc *des.Proc) {
		_, wEnd = p.Transfer(proc, Write, 1000, 1, Unlimited, Tag{Rank: 0})
	})
	e.Spawn("r", func(proc *des.Proc) {
		_, rEnd = p.Transfer(proc, Read, 1000, 1, Unlimited, Tag{Rank: 1})
	})
	runAll(t, e)
	// Read and write share the single 100 B/s channel: 20 s each, not 10.
	for _, end := range []des.Time{wEnd, rEnd} {
		if got := end.Seconds(); math.Abs(got-20) > 1e-6 {
			t.Fatalf("end = %v, want ~20s (shared capacity)", got)
		}
	}
}

// TestGroupedAllocationProperties checks the two-level hierarchical
// allocation invariants on random flow populations: total ≤ capacity,
// per-node aggregate ≤ injection cap, per-flow rate ≤ flow cap, and work
// conservation (either the capacity is exhausted or every node is bound
// by its cap or demand).
func TestGroupedAllocationProperties(t *testing.T) {
	f := func(nodesRaw []uint8, capacity uint16, injCap uint16) bool {
		e := des.NewEngine(1)
		c := newChannel(e, "test", float64(capacity%500)+50)
		c.injectionCap = float64(injCap%200) + 10
		n := len(nodesRaw)
		if n > 40 {
			n = 40
		}
		for i := 0; i < n; i++ {
			capv := Unlimited
			if nodesRaw[i]%3 == 0 {
				capv = float64(nodesRaw[i]%50) + 1
			}
			c.flows = append(c.flows, &Flow{
				remaining: 1000,
				weight:    float64(nodesRaw[i]%4) + 1,
				cap:       capv,
				tag:       Tag{Node: int(nodesRaw[i] % 5)},
				done:      des.NewCompletion(e),
			})
		}
		if len(c.flows) == 0 {
			return true
		}
		c.waterfill()
		total := 0.0
		perNode := map[int]float64{}
		for _, fl := range c.flows {
			if fl.rate < -1e-9 || fl.rate > fl.cap+1e-9 {
				return false
			}
			total += fl.rate
			perNode[fl.tag.Node] += fl.rate
		}
		if total > c.capacity+1e-6 {
			return false
		}
		for _, agg := range perNode {
			if agg > c.injectionCap+1e-6 {
				return false
			}
		}
		// Work conservation: if the total is below capacity, every node
		// must be limited by its injection cap or its members' caps.
		if total < c.capacity-1e-6 {
			for node, agg := range perNode {
				if agg >= c.injectionCap-1e-6 {
					continue // NIC-bound
				}
				capSum := 0.0
				bound := true
				for _, fl := range c.flows {
					if fl.tag.Node != node {
						continue
					}
					if math.IsInf(fl.cap, 1) {
						bound = false
						break
					}
					capSum += fl.cap
				}
				if !bound || agg < capSum-1e-6 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInjectionCapWithNoiseAndFlowCaps(t *testing.T) {
	// All three constraint layers at once: channel noise, node injection
	// caps, and a per-flow cap. The run must terminate deterministically
	// with every constraint respected at the observer snapshots.
	e := des.NewEngine(5)
	p := New(e, Config{
		WriteCapacity: 1000, ReadCapacity: 1000,
		InjectionCap: 300,
		Noise:        &NoiseConfig{Interval: des.Second, Amplitude: 0.3},
	})
	violated := false
	p.SetObserver(func(now des.Time, class Class, flows []*Flow) {
		perNode := map[int]float64{}
		for _, f := range flows {
			perNode[f.Tag().Node] += f.Rate()
			if f.Rate() > 50+1e-9 && f.Tag().Rank == 0 {
				violated = true // flow cap 50 exceeded
			}
		}
		for _, agg := range perNode {
			if agg > 300+1e-9 {
				violated = true
			}
		}
	})
	for i := 0; i < 6; i++ {
		i := i
		capv := Unlimited
		if i == 0 {
			capv = 50
		}
		e.Spawn("w", func(proc *des.Proc) {
			p.Transfer(proc, Write, 2000, 1, capv, Tag{Rank: i, Node: i / 3})
		})
	}
	runAll(t, e)
	if violated {
		t.Fatal("constraint violated under combined noise/injection/flow caps")
	}
}
