package des

// This file provides virtual-time synchronization primitives built on the
// park/wake handoff. Because the engine runs one goroutine at a time, none
// of these types need locks.

// Completion is a one-shot event that processes can wait for (a future).
// The zero value is not ready; create with NewCompletion.
type Completion struct {
	e       *Engine
	done    bool
	at      Time
	waiters []waiter
}

// waiter records one parked process and the wake token it expects. It is
// stored by value inside the synchronization types so registering a
// waiter costs no allocation once the slice is warm.
type waiter struct {
	p   *Proc
	tok uint64
}

// NewCompletion returns an unfired completion bound to e.
func NewCompletion(e *Engine) *Completion {
	return &Completion{e: e}
}

// Done reports whether the completion has fired.
func (c *Completion) Done() bool { return c.done }

// At returns the virtual time the completion fired; zero if it has not.
func (c *Completion) At() Time { return c.at }

// Complete fires the completion and wakes all waiters at the current
// instant. Completing twice panics: a generalized request must complete
// exactly once.
func (c *Completion) Complete() {
	if c.done {
		panic("des: Completion completed twice")
	}
	c.done = true
	c.at = c.e.now
	for _, w := range c.waiters {
		c.e.wakeAt(w.p, c.e.now, PrioNormal, w.tok)
	}
	c.waiters = nil
}

// Wait blocks the calling process until the completion fires. It returns
// immediately if it already has.
func (c *Completion) Wait(p *Proc) {
	if c.done {
		return
	}
	tok := p.nextToken()
	c.waiters = append(c.waiters, waiter{p: p, tok: tok})
	p.block(tok)
}

// Semaphore is a counting semaphore in virtual time with FIFO wakeup order.
type Semaphore struct {
	e       *Engine
	tokens  int
	waiters []waiter
}

// NewSemaphore returns a semaphore holding n tokens.
func NewSemaphore(e *Engine, n int) *Semaphore {
	return &Semaphore{e: e, tokens: n}
}

// Acquire takes one token, blocking the process until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.tokens > 0 && len(s.waiters) == 0 {
		s.tokens--
		return
	}
	tok := p.nextToken()
	s.waiters = append(s.waiters, waiter{p: p, tok: tok})
	p.block(tok)
}

// TryAcquire takes a token without blocking; it reports whether it did.
func (s *Semaphore) TryAcquire() bool {
	if s.tokens > 0 && len(s.waiters) == 0 {
		s.tokens--
		return true
	}
	return false
}

// Release returns one token, waking the longest-waiting process if any.
// A released token handed to a waiter is consumed immediately.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		s.e.wakeAt(w.p, s.e.now, PrioNormal, w.tok)
		return
	}
	s.tokens++
}

// Available returns the number of free tokens.
func (s *Semaphore) Available() int { return s.tokens }

// Mailbox is an unbounded FIFO queue with blocking receive, used for
// client/server schemes such as the per-rank I/O agent.
type Mailbox[T any] struct {
	e       *Engine
	items   []T
	recv    waiter // at most one receiver may wait at a time
	waiting bool   // recv holds a parked receiver
}

// NewMailbox returns an empty mailbox bound to e.
func NewMailbox[T any](e *Engine) *Mailbox[T] {
	return &Mailbox[T]{e: e}
}

// Put enqueues v and wakes the waiting receiver, if any. It never blocks
// and may be called from function events as well as processes.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	if m.waiting {
		w := m.recv
		m.waiting = false
		m.e.wakeAt(w.p, m.e.now, PrioNormal, w.tok)
	}
}

// Get dequeues the oldest item, blocking the process while the mailbox is
// empty. Only one process may block on a mailbox at a time.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		if m.waiting {
			panic("des: concurrent Mailbox.Get")
		}
		tok := p.nextToken()
		m.recv = waiter{p: p, tok: tok}
		m.waiting = true
		p.block(tok)
	}
	v := m.items[0]
	var zero T
	m.items[0] = zero
	m.items = m.items[1:]
	return v
}

// TryGet dequeues without blocking; ok reports whether an item was present.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	var zero T
	m.items[0] = zero
	m.items = m.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Barrier synchronizes a fixed party of n processes repeatedly. All n must
// arrive before any proceeds; the barrier then resets for the next round.
type Barrier struct {
	e       *Engine
	n       int
	arrived int
	waiters []waiter
	rounds  int
}

// NewBarrier returns a reusable barrier for n parties.
func NewBarrier(e *Engine, n int) *Barrier {
	if n < 1 {
		panic("des: barrier party must be >= 1")
	}
	return &Barrier{e: e, n: n}
}

// Await blocks until all n parties have called Await for the current round.
// The release is scheduled delay after the last arrival, modelling the
// network cost of the synchronizing collective.
func (b *Barrier) Await(p *Proc, delay Duration) {
	b.arrived++
	if b.arrived == b.n {
		release := b.e.now.Add(delay)
		for _, w := range b.waiters {
			b.e.wakeAt(w.p, release, PrioNormal, w.tok)
		}
		b.waiters = b.waiters[:0]
		b.arrived = 0
		b.rounds++
		if delay > 0 {
			p.SleepUntil(release)
		}
		return
	}
	tok := p.nextToken()
	b.waiters = append(b.waiters, waiter{p: p, tok: tok})
	p.block(tok)
}

// Rounds returns how many times the barrier has released.
func (b *Barrier) Rounds() int { return b.rounds }
