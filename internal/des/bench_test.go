package des

import (
	"testing"
)

// BenchmarkEventThroughput measures raw function-event dispatch.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var fire func(i int)
	fire = func(i int) {
		if i < b.N {
			e.After(Microsecond, func() { fire(i + 1) })
		}
	}
	b.ResetTimer()
	fire(0)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcHandoff measures the park/wake goroutine handoff: the cost
// of one process Sleep round trip.
func BenchmarkProcHandoff(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcsRoundRobin measures scheduling across a wide process
// set (one wake per proc per virtual tick).
func BenchmarkManyProcsRoundRobin(b *testing.B) {
	const procs = 1024
	e := NewEngine(1)
	rounds := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn("p", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(Millisecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
