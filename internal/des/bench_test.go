package des

import (
	"testing"
)

// BenchmarkEventThroughput measures raw function-event dispatch.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var fire func(i int)
	fire = func(i int) {
		if i < b.N {
			e.After(Microsecond, func() { fire(i + 1) })
		}
	}
	b.ResetTimer()
	fire(0)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcHandoff measures the park/wake goroutine handoff: the cost
// of one process Sleep round trip.
func BenchmarkProcHandoff(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcsRoundRobin measures scheduling across a wide process
// set (one wake per proc per virtual tick).
func BenchmarkManyProcsRoundRobin(b *testing.B) {
	b.ReportAllocs()
	const procs = 1024
	e := NewEngine(1)
	rounds := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn("p", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(Millisecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleCancel measures the schedule/cancel cycle that
// channel.recompute performs on every reallocation: a far-future event is
// scheduled and immediately cancelled, leaving a dead entry behind. The
// engine must keep the pending queue from filling with corpses (the
// dead-event compaction path) and keep the cycle allocation-free.
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	fire := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cancel := e.Schedule(Time(Hour), PrioNormal, fire)
		cancel.Cancel()
	}
	b.StopTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
