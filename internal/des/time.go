// Package des implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Simulated entities (MPI ranks, I/O agent threads, cluster schedulers) run
// as goroutine-backed processes in virtual time. The engine executes exactly
// one process at a time and hands control back and forth explicitly, so a
// simulation is fully deterministic: identical inputs and seeds produce
// identical event orderings and results, regardless of GOMAXPROCS.
package des

import (
	"fmt"
	"time"
)

// Time is an absolute instant in virtual time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the usual constants (Second, Millisecond, ...) read
// naturally at call sites.
type Duration int64

// Convenient duration units, matching time.Duration's values.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts the virtual duration to a standard library time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration like time.Duration does.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf converts a floating-point number of seconds into a Duration.
// Negative inputs are clamped to zero: virtual time never runs backwards.
func DurationOf(seconds float64) Duration {
	if seconds <= 0 {
		return 0
	}
	return Duration(seconds * float64(Second))
}

// Seconds returns the instant as a floating-point number of seconds since
// the simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add advances the instant by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between u and t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }
