package des

import (
	"testing"
)

// TestStaleHandleAfterRecycle pins the generation-counter guarantee: a
// cancel handle retained past its event's execution must not kill the
// unrelated event that reuses the pooled object.
func TestStaleHandleAfterRecycle(t *testing.T) {
	e := NewEngine(1)
	var ranFirst, ranSecond bool
	stale := e.Schedule(0, PrioNormal, func() { ranFirst = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ranFirst {
		t.Fatal("first event did not run")
	}
	// The pool now holds the first event's object; the next Schedule must
	// reuse it (single-object pool).
	h := e.Schedule(e.Now(), PrioNormal, func() { ranSecond = true })
	if h.ev != stale.ev {
		t.Fatalf("pool did not recycle: new object %p, old %p", h.ev, stale.ev)
	}
	stale.Cancel() // must be a no-op: generation moved on
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ranSecond {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if got := e.Stats().EventsPooled; got != 1 {
		t.Fatalf("EventsPooled = %d, want 1", got)
	}
}

// TestCancelAfterFireIsNoOp covers cancelling an event whose object has
// not yet been recycled into a new activation.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	h := e.Schedule(0, PrioNormal, func() { ran++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	h.Cancel() // fired already: generation mismatch, no effect
	h.Cancel()
	if ran != 1 || e.dead != 0 {
		t.Fatalf("ran = %d, dead = %d", ran, e.dead)
	}
	var zero Handle
	zero.Cancel() // the zero Handle is inert
}

// TestDeadCompaction drives the cancel-churn pattern until the engine
// compacts the heap, and checks both the stat and that live events
// survive compaction in order.
func TestDeadCompaction(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(i)*Time(Second), PrioNormal, func() { order = append(order, i) })
	}
	// Churn far past the compaction threshold: every cancelled event is a
	// corpse the engine must evict without touching the 10 live ones.
	for i := 0; i < 10*compactThreshold; i++ {
		h := e.Schedule(Time(Hour), PrioNormal, func() { t.Error("dead event fired") })
		h.Cancel()
	}
	st := e.Stats()
	if st.DeadCompactions == 0 {
		t.Fatalf("no compactions after %d cancellations", 10*compactThreshold)
	}
	if n := e.heap.len(); n > 10+2*compactThreshold {
		t.Fatalf("heap still holds %d entries after compaction", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Fatalf("ran %d live events, want 10", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d; compaction broke heap ordering", i, got)
		}
	}
}

// TestMaxHeapCountsLiveEventsOnly pins the Stats fix: cancelled events
// awaiting compaction must not inflate the reported queue-pressure peak.
func TestMaxHeapCountsLiveEventsOnly(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 8; i++ {
		h := e.Schedule(Time(i)*Time(Second), PrioNormal, fn)
		if i > 0 { // keep one live event so Run has work to do
			h.Cancel()
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.MaxHeap != 1 {
		t.Fatalf("MaxHeap = %d, want 1 (7 of 8 events were dead)", s.MaxHeap)
	}
	if s.EventsRun != 1 {
		t.Fatalf("EventsRun = %d, want 1", s.EventsRun)
	}
}

// TestScheduleSteadyStateAllocs is the allocation guard for the tentpole:
// once the pool is warm, a Schedule + pop cycle performs zero heap
// allocations, so no future change can silently reintroduce per-event
// garbage on the kernel hot path.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm the event pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), PrioNormal, fn)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		e.Schedule(e.Now(), PrioNormal, fn)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Schedule+pop = %v allocs/op, want 0", avg)
	}
}

// TestCancelSteadyStateAllocs guards the full schedule/cancel/compact
// cycle: the reschedule-per-recompute pattern must stay allocation-free
// even while compactions run.
func TestCancelSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 2*compactThreshold; i++ {
		h := e.Schedule(Time(Hour), PrioNormal, fn)
		h.Cancel()
	}
	avg := testing.AllocsPerRun(10*compactThreshold, func() {
		h := e.Schedule(Time(Hour), PrioNormal, fn)
		h.Cancel()
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel = %v allocs/op, want 0", avg)
	}
	if e.Stats().DeadCompactions == 0 {
		t.Fatal("guard never exercised the compaction path")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
