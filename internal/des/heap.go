package des

// event is a scheduled occurrence: at time at, either run fn inline on the
// engine loop, or wake proc.
//
// Event objects are owned by the engine and recycled through a free list:
// every pop returns the object to the pool, so the steady-state hot path
// allocates nothing. gen increments on each recycle; a Handle created for
// one activation carries the generation it saw, which makes retained
// cancel handles harmless after the object has been reused.
type event struct {
	at    Time
	prio  int32  // lower fires first among equal times
	gen   uint32 // recycle generation, checked by Handle.Cancel
	seq   uint64
	fn    func()
	proc  *Proc
	token uint64  // wake token delivered to the proc (0 for fn events)
	owner *Engine // the engine whose pool the event belongs to
	dead  bool    // cancelled events are skipped when popped
}

// eventHeap is a binary min-heap ordered by (at, prio, seq). It is
// hand-rolled rather than using container/heap to avoid interface
// allocations on the simulation hot path.
type eventHeap struct {
	items []*event
}

func (h *eventHeap) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	h.items = append(h.items, ev)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(h.items[left], h.items[smallest]) {
			smallest = left
		}
		if right < n && h.less(h.items[right], h.items[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// init restores the heap invariant over arbitrarily ordered items
// (bottom-up heapify, O(n)). Used after dead-event compaction.
func (h *eventHeap) init() {
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *eventHeap) len() int { return len(h.items) }
