package des_test

import (
	"fmt"

	"iobehind/internal/des"
)

// A producer/consumer pair in virtual time: the engine runs exactly one
// process at a time, so the output ordering is fully deterministic.
func Example() {
	e := des.NewEngine(1)
	box := des.NewMailbox[string](e)

	e.Spawn("producer", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(des.Second)
			box.Put(fmt.Sprintf("item %d", i))
		}
	})
	e.Spawn("consumer", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			item := box.Get(p)
			fmt.Printf("%v: got %s\n", p.Now(), item)
		}
	})

	if err := e.Run(); err != nil {
		panic(err)
	}
	// Output:
	// 1.000s: got item 0
	// 2.000s: got item 1
	// 3.000s: got item 2
}

// Blocking transfers on a shared resource: two flows on a 100 B/s channel
// finish according to weighted max–min fair sharing.
func ExampleEngine_Schedule() {
	e := des.NewEngine(1)
	e.Schedule(des.Time(2*des.Second), des.PrioNormal, func() {
		fmt.Println("timer fired at", e.Now())
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	// Output:
	// timer fired at 2.000s
}
