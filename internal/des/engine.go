package des

import (
	"fmt"
	"math/rand"
)

// Event priorities. Among events scheduled for the same virtual instant,
// lower priorities fire first. Using distinct bands keeps composite
// operations deterministic: e.g. an I/O completion posted "now" is observed
// before a compute phase that starts "now".
const (
	PrioEarly  int32 = -100
	PrioNormal int32 = 0
	PrioLate   int32 = 100
)

// killToken is delivered to a parked process by Engine.Shutdown to make it
// unwind and exit. Regular wakeups always carry a non-zero token.
const killToken uint64 = 0

// errKilled is the sentinel panic value used to unwind killed processes.
type errKilled struct{}

// Engine is a deterministic discrete-event simulation kernel.
//
// The engine executes one event at a time. Function events run inline on
// the engine's goroutine; process events transfer control to the process's
// goroutine and wait for it to park again (or finish) before the next event
// is considered. At any moment at most one goroutine owned by the engine is
// running, so no locking is needed anywhere in the simulation and results
// are reproducible.
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	handoff chan struct{}
	procs   []*Proc
	nextID  int
	failure error
	rng     *rand.Rand
	running bool
	stopped bool

	// Statistics.
	eventsRun int64
	maxHeap   int
}

// NewEngine returns an engine with virtual time 0 and a PRNG seeded with
// seed. All simulation randomness must come from Rand() so runs are
// reproducible.
func NewEngine(seed int64) *Engine {
	return &Engine{
		handoff: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine-owned PRNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn at the absolute virtual time at (which must not be in
// the past) with the given priority. The returned cancel function marks the
// event dead; it is a no-op after the event has fired.
func (e *Engine) Schedule(at Time, prio int32, fn func()) (cancel func()) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: %v < now %v", at, e.now))
	}
	e.seq++
	ev := &event{at: at, prio: prio, seq: e.seq, fn: fn}
	e.heap.push(ev)
	return func() { ev.dead = true }
}

// After runs fn after duration d with normal priority.
func (e *Engine) After(d Duration, fn func()) (cancel func()) {
	return e.Schedule(e.now.Add(d), PrioNormal, fn)
}

// wakeAt schedules process p to resume at time at carrying token.
func (e *Engine) wakeAt(p *Proc, at Time, prio int32, token uint64) *event {
	if at < e.now {
		panic(fmt.Sprintf("des: waking into the past: %v < now %v", at, e.now))
	}
	if token == killToken {
		panic("des: zero wake token is reserved")
	}
	e.seq++
	ev := &event{at: at, prio: prio, seq: e.seq, proc: p, token: token}
	e.heap.push(ev)
	return ev
}

// Stop makes Run return after the current event completes. Pending events
// are retained; Run can be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, a process panics, or Stop is
// called. It returns the first process failure, if any.
func (e *Engine) Run() error {
	if e.running {
		panic("des: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for e.heap.len() > 0 && !e.stopped {
		if n := e.heap.len(); n > e.maxHeap {
			e.maxHeap = n
		}
		ev := e.heap.pop()
		if ev.dead {
			continue
		}
		e.eventsRun++
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
		} else {
			e.dispatch(ev.proc, ev.token)
		}
		if e.failure != nil {
			return e.failure
		}
	}
	return nil
}

// dispatch resumes p with token and blocks until p parks again or exits.
func (e *Engine) dispatch(p *Proc, token uint64) {
	p.wake <- token
	<-e.handoff
}

// Stalled returns the processes that are still alive after Run returned:
// they are parked waiting for a wakeup that never came (usually a deadlock
// or an intentionally infinite server process).
func (e *Engine) Stalled() []*Proc {
	var out []*Proc
	for _, p := range e.procs {
		if !p.finished {
			out = append(out, p)
		}
	}
	return out
}

// Shutdown forcibly unwinds all still-parked processes so their goroutines
// exit. Call it after Run when the simulation intentionally leaves server
// processes running. Processes must not park inside deferred functions.
func (e *Engine) Shutdown() {
	if e.running {
		panic("des: Shutdown called while running")
	}
	for _, p := range e.procs {
		if p.finished {
			continue
		}
		p.killed = true
		e.dispatch(p, killToken)
	}
	e.failure = nil
}

// Stats reports the engine's execution statistics.
type Stats struct {
	// EventsRun is the number of events executed (dead events excluded).
	EventsRun int64
	// MaxHeap is the peak size of the pending-event queue.
	MaxHeap int
	// Procs is the number of processes ever spawned.
	Procs int
	// Now is the current virtual time.
	Now Time
}

// Stats returns execution statistics, useful for performance analysis of
// the simulation itself.
func (e *Engine) Stats() Stats {
	return Stats{
		EventsRun: e.eventsRun,
		MaxHeap:   e.maxHeap,
		Procs:     len(e.procs),
		Now:       e.now,
	}
}

// fail records the first process failure; subsequent failures are dropped.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
}
