package des

import (
	"fmt"
	"math/rand"
)

// Event priorities. Among events scheduled for the same virtual instant,
// lower priorities fire first. Using distinct bands keeps composite
// operations deterministic: e.g. an I/O completion posted "now" is observed
// before a compute phase that starts "now".
const (
	PrioEarly  int32 = -100
	PrioNormal int32 = 0
	PrioLate   int32 = 100
)

// killToken is delivered to a parked process by Engine.Shutdown to make it
// unwind and exit. Regular wakeups always carry a non-zero token.
const killToken uint64 = 0

// errKilled is the sentinel panic value used to unwind killed processes.
type errKilled struct{}

// Engine is a deterministic discrete-event simulation kernel.
//
// The engine executes one event at a time. Function events run inline on
// the engine's goroutine; process events transfer control to the process's
// goroutine and wait for it to park again (or finish) before the next event
// is considered. At any moment at most one goroutine owned by the engine is
// running, so no locking is needed anywhere in the simulation and results
// are reproducible.
type Engine struct {
	now     Time
	heap    eventHeap
	free    []*event // recycled event objects (the pool)
	dead    int      // cancelled events still sitting in the heap
	seq     uint64
	handoff chan struct{}
	procs   []*Proc
	nextID  int
	failure error
	rng     *rand.Rand
	running bool
	stopped bool

	// Statistics.
	eventsRun       int64
	eventsPooled    int64
	deadCompactions int64
	maxHeap         int
}

// compactThreshold is the minimum number of dead events before the heap
// is compacted. Below it, skipping corpses at pop time is cheaper than a
// rebuild; above it, compaction runs only once dead entries outnumber
// live ones, keeping the amortized cost per cancellation O(1).
const compactThreshold = 64

// NewEngine returns an engine with virtual time 0 and a PRNG seeded with
// seed. All simulation randomness must come from Rand() so runs are
// reproducible.
func NewEngine(seed int64) *Engine {
	return &Engine{
		handoff: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine-owned PRNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Handle identifies one scheduled event activation. The zero Handle is
// inert: Cancel on it does nothing. Handles are plain values, so handing
// one out costs no allocation.
type Handle struct {
	ev  *event
	gen uint32
}

// Cancel marks the event dead so the engine skips it; it is a no-op after
// the event has fired. Event objects are pooled and recycled, but a
// recycle bumps the object's generation, so a stale Handle retained past
// its event's execution can never kill an unrelated later event.
func (h Handle) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.dead {
		return
	}
	ev.dead = true
	// Drop the payload references now: a dead event may sit in the heap
	// for a long virtual time, and it must not pin callbacks or processes
	// for the GC meanwhile.
	ev.fn = nil
	ev.proc = nil
	e := ev.owner
	e.dead++
	if e.dead >= compactThreshold && e.dead*2 > e.heap.len() {
		e.compact()
	}
}

// newEvent returns an event object from the free list, or a fresh one if
// the pool is empty. The caller must set the payload fields.
func (e *Engine) newEvent() *event {
	if n := len(e.free) - 1; n >= 0 {
		ev := e.free[n]
		e.free[n] = nil
		e.free = e.free[:n]
		e.eventsPooled++
		return ev
	}
	return &event{owner: e}
}

// recycle returns a popped (or compacted-away) event to the pool. The
// generation bump invalidates every Handle issued for the finished
// activation; clearing fn and proc releases the payload references so the
// pool never pins simulation objects.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.proc = nil
	ev.dead = false
	e.free = append(e.free, ev)
}

// compact removes dead events from the heap in one linear pass, recycles
// them, and restores the heap invariant. Cancel triggers it once corpses
// dominate the queue, which keeps cancel-heavy workloads (such as a pfs
// channel rescheduling its single completion event on every recompute)
// from growing the heap without bound.
func (e *Engine) compact() {
	items := e.heap.items
	kept := items[:0]
	for _, ev := range items {
		if ev.dead {
			e.recycle(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	// Clear the tail so the backing array does not retain extra pointers
	// to pooled events.
	for i := len(kept); i < len(items); i++ {
		items[i] = nil
	}
	e.heap.items = kept
	e.heap.init()
	e.dead = 0
	e.deadCompactions++
}

// Schedule runs fn at the absolute virtual time at (which must not be in
// the past) with the given priority. The returned Handle cancels the
// event; cancelling after the event has fired is a no-op.
func (e *Engine) Schedule(at Time, prio int32, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: %v < now %v", at, e.now))
	}
	e.seq++
	ev := e.newEvent()
	ev.at, ev.prio, ev.seq = at, prio, e.seq
	ev.fn, ev.token = fn, 0
	e.heap.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After runs fn after duration d with normal priority.
func (e *Engine) After(d Duration, fn func()) Handle {
	return e.Schedule(e.now.Add(d), PrioNormal, fn)
}

// wakeAt schedules process p to resume at time at carrying token.
func (e *Engine) wakeAt(p *Proc, at Time, prio int32, token uint64) {
	if at < e.now {
		panic(fmt.Sprintf("des: waking into the past: %v < now %v", at, e.now))
	}
	if token == killToken {
		panic("des: zero wake token is reserved")
	}
	e.seq++
	ev := e.newEvent()
	ev.at, ev.prio, ev.seq = at, prio, e.seq
	ev.proc, ev.token = p, token
	e.heap.push(ev)
}

// Stop makes Run return after the current event completes. Pending events
// are retained; Run can be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, a process panics, or Stop is
// called. It returns the first process failure, if any.
func (e *Engine) Run() error {
	if e.running {
		panic("des: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for e.heap.len() > 0 && !e.stopped {
		if live := e.heap.len() - e.dead; live > e.maxHeap {
			e.maxHeap = live
		}
		ev := e.heap.pop()
		if ev.dead {
			e.dead--
			e.recycle(ev)
			continue
		}
		// Copy the payload and recycle before executing: the callback may
		// schedule new events, and letting it reuse this object keeps the
		// pool at its minimum size. Any Handle to this activation is
		// invalidated by the recycle's generation bump first.
		fn, proc, token := ev.fn, ev.proc, ev.token
		e.now = ev.at
		e.recycle(ev)
		e.eventsRun++
		if fn != nil {
			fn()
		} else {
			e.dispatch(proc, token)
		}
		if e.failure != nil {
			return e.failure
		}
	}
	return nil
}

// dispatch resumes p with token and blocks until p parks again or exits.
func (e *Engine) dispatch(p *Proc, token uint64) {
	//iolint:ignore goroutine coroutine handoff: dispatch is the scheduler's half of the context switch; the engine blocks until the resumed process parks, so execution stays strictly sequential
	p.wake <- token
	//iolint:ignore goroutine coroutine handoff: blocking until the process parks is what makes process execution atomic within one event
	<-e.handoff
}

// Stalled returns the processes that are still alive after Run returned:
// they are parked waiting for a wakeup that never came (usually a deadlock
// or an intentionally infinite server process).
func (e *Engine) Stalled() []*Proc {
	var out []*Proc
	for _, p := range e.procs {
		if !p.finished {
			out = append(out, p)
		}
	}
	return out
}

// Shutdown forcibly unwinds all still-parked processes so their goroutines
// exit. Call it after Run when the simulation intentionally leaves server
// processes running. Processes must not park inside deferred functions.
func (e *Engine) Shutdown() {
	if e.running {
		panic("des: Shutdown called while running")
	}
	for _, p := range e.procs {
		if p.finished {
			continue
		}
		p.killed = true
		e.dispatch(p, killToken)
	}
	e.failure = nil
}

// Stats reports the engine's execution statistics.
type Stats struct {
	// EventsRun is the number of events executed (dead events excluded).
	EventsRun int64
	// EventsPooled is the number of event activations served from the
	// free list instead of a fresh allocation. On a warmed-up engine it
	// tracks EventsRun: the steady-state hot path allocates no events.
	EventsPooled int64
	// DeadCompactions is the number of times the pending queue was
	// rebuilt to evict cancelled events that had come to dominate it.
	DeadCompactions int64
	// MaxHeap is the peak number of live (non-cancelled) pending events.
	// Dead events awaiting compaction are excluded, so the figure
	// reflects real queue pressure even in cancel-heavy workloads.
	MaxHeap int
	// Procs is the number of processes ever spawned.
	Procs int
	// Now is the current virtual time.
	Now Time
}

// Stats returns execution statistics, useful for performance analysis of
// the simulation itself.
func (e *Engine) Stats() Stats {
	return Stats{
		EventsRun:       e.eventsRun,
		EventsPooled:    e.eventsPooled,
		DeadCompactions: e.deadCompactions,
		MaxHeap:         e.maxHeap,
		Procs:           len(e.procs),
		Now:             e.now,
	}
}

// fail records the first process failure; subsequent failures are dropped.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
}
