package des

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDurationOf(t *testing.T) {
	if got := DurationOf(1.5); got != 1500*Millisecond {
		t.Fatalf("DurationOf(1.5) = %v, want 1.5s", got)
	}
	if got := DurationOf(-3); got != 0 {
		t.Fatalf("DurationOf(-3) = %v, want 0", got)
	}
	if got := DurationOf(0); got != 0 {
		t.Fatalf("DurationOf(0) = %v, want 0", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(2 * Second)
	if t0.Seconds() != 2 {
		t.Fatalf("Seconds = %v, want 2", t0.Seconds())
	}
	if d := t0.Sub(Time(Second)); d != Second {
		t.Fatalf("Sub = %v, want 1s", d)
	}
	if s := (1500 * Millisecond).Seconds(); s != 1.5 {
		t.Fatalf("Duration.Seconds = %v, want 1.5", s)
	}
	if Time(1500*Millisecond).String() != "1.500s" {
		t.Fatalf("Time.String = %q", Time(1500*Millisecond).String())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(Time(2*Second), PrioNormal, func() { order = append(order, "b") })
	e.Schedule(Time(1*Second), PrioNormal, func() { order = append(order, "a") })
	e.Schedule(Time(2*Second), PrioEarly, func() { order = append(order, "b-early") })
	e.Schedule(Time(2*Second), PrioLate, func() { order = append(order, "b-late") })
	e.Schedule(Time(2*Second), PrioNormal, func() { order = append(order, "b2") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a,b-early,b,b2,b-late"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	if e.Now() != Time(2*Second) {
		t.Fatalf("final time = %v, want 2s", e.Now())
	}
}

func TestScheduleCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	cancel := e.After(Second, func() { fired = true })
	cancel.Cancel()
	cancel.Cancel() // idempotent
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.Schedule(0, PrioNormal, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleepDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var order []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Duration(i) * Second)
				order = append(order, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				p.Sleep(Second)
				order = append(order, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); strings.Join(got, ",") != strings.Join(first, ",") {
			t.Fatalf("non-deterministic order: %v vs %v", got, first)
		}
	}
	if first[0] != "p0@0.000s" || first[len(first)-1] != "p3@4.000s" {
		t.Fatalf("unexpected schedule: %v", first)
	}
}

func TestSleepNegativeYields(t *testing.T) {
	e := NewEngine(1)
	done := false
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-5 * Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced time to %v", p.Now())
		}
		p.SleepUntil(Time(-1)) // past: immediate
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("proc did not finish")
	}
}

func TestYieldRunsSameTimeEventsFirst(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("p", func(p *Proc) {
		p.Engine().Schedule(p.Now(), PrioNormal, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "event,proc" {
		t.Fatalf("order = %v", order)
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.SpawnAt(3*Time(Second), "late", func(p *Proc) { at = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(3*Second) {
		t.Fatalf("started at %v, want 3s", at)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestCompletion(t *testing.T) {
	e := NewEngine(1)
	c := NewCompletion(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(2 * Second)
		c.Complete()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, at := range woke {
		if at != Time(2*Second) {
			t.Fatalf("waiter woke at %v, want 2s", at)
		}
	}
	if !c.Done() || c.At() != Time(2*Second) {
		t.Fatalf("completion state: done=%v at=%v", c.Done(), c.At())
	}
	// Waiting after completion returns immediately.
	e2 := NewEngine(1)
	c2 := NewCompletion(e2)
	e2.Spawn("late", func(p *Proc) {
		c2.Complete()
		c2.Wait(p)
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionDoubleCompletePanics(t *testing.T) {
	e := NewEngine(1)
	c := NewCompletion(e)
	e.Spawn("p", func(p *Proc) {
		c.Complete()
		defer func() {
			if recover() == nil {
				t.Error("double Complete did not panic")
			}
		}()
		c.Complete()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(e, 1)
	var order []string
	hold := func(name string, work Duration) {
		e.Spawn(name, func(p *Proc) {
			s.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(work)
			order = append(order, name+"-")
			s.Release()
		})
	}
	hold("a", Second)
	hold("b", Second)
	hold("c", Second)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a+,a-,b+,b-,c+,c-"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	if s.Available() != 1 {
		t.Fatalf("tokens = %d, want 1", s.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(e, 1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire on free semaphore failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire on empty semaphore succeeded")
	}
	s.Release()
	if s.Available() != 1 {
		t.Fatalf("tokens = %d, want 1", s.Available())
	}
}

func TestMailboxOrdersAndBlocks(t *testing.T) {
	e := NewEngine(1)
	m := NewMailbox[int](e)
	var got []int
	e.Spawn("server", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, m.Get(p))
		}
	})
	e.Spawn("client", func(p *Proc) {
		p.Sleep(Second)
		m.Put(10)
		m.Put(20)
		p.Sleep(Second)
		m.Put(30)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[10 20 30]" {
		t.Fatalf("got %v", got)
	}
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	m.Put(7)
	if v, ok := m.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestBarrierSynchronizesParties(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(e, 3)
	var releases []Time
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("r%d", i), func(p *Proc) {
			for round := 0; round < 2; round++ {
				p.Sleep(Duration(i+1) * Second)
				b.Await(p, 100*Millisecond)
				releases = append(releases, p.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != 6 {
		t.Fatalf("releases = %v", releases)
	}
	// Round 1: slowest arrives at 3s, release at 3.1s. Round 2: slowest
	// arrives 3.1+3 = 6.1s, release at 6.2s.
	for i, at := range releases {
		want := Time(3100 * Millisecond)
		if i >= 3 {
			want = Time(6200 * Millisecond)
		}
		if at != want {
			t.Fatalf("release %d at %v, want %v", i, at, want)
		}
	}
	if b.Rounds() != 2 {
		t.Fatalf("rounds = %d", b.Rounds())
	}
}

func TestBarrierPartyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(NewEngine(1), 0)
}

func TestStalledAndShutdown(t *testing.T) {
	e := NewEngine(1)
	c := NewCompletion(e)
	e.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	e.Spawn("fine", func(p *Proc) { p.Sleep(Second) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	stalled := e.Stalled()
	if len(stalled) != 1 || stalled[0].Name() != "stuck" {
		t.Fatalf("stalled = %v", stalled)
	}
	e.Shutdown()
	if len(e.Stalled()) != 0 {
		t.Fatal("Shutdown left stalled procs")
	}
}

func TestStopAndResume(t *testing.T) {
	e := NewEngine(1)
	var ticks int
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Second)
			ticks++
			if ticks == 2 {
				p.Engine().Stop()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 2 {
		t.Fatalf("ticks after Stop = %d, want 2", ticks)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks after resume = %d, want 5", ticks)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewEngine(7).Rand().Int63(), NewEngine(7).Rand().Int63()
	if a != b {
		t.Fatalf("same-seed engines diverge: %d vs %d", a, b)
	}
}

// TestHeapOrderingProperty checks, with random event sets, that pops come
// out sorted by (time, prio, seq).
func TestHeapOrderingProperty(t *testing.T) {
	f := func(times []int16, prios []int8) bool {
		var h eventHeap
		n := len(times)
		if len(prios) < n {
			n = len(prios)
		}
		evs := make([]*event, 0, n)
		for i := 0; i < n; i++ {
			at := Time(times[i])
			if at < 0 {
				at = -at
			}
			ev := &event{at: at, prio: int32(prios[i]), seq: uint64(i)}
			evs = append(evs, ev)
			h.push(ev)
		}
		sort.SliceStable(evs, func(i, j int) bool {
			a, b := evs[i], evs[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.prio != b.prio {
				return a.prio < b.prio
			}
			return a.seq < b.seq
		})
		for _, want := range evs {
			if got := h.pop(); got != want {
				return false
			}
		}
		return h.pop() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsScale(t *testing.T) {
	e := NewEngine(3)
	const n = 2000
	var finished int
	for i := 0; i < n; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Sleep(Duration(1+p.ID()%17) * Millisecond)
			}
			finished++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
}

func TestEngineStats(t *testing.T) {
	e := NewEngine(1)
	if s := e.Stats(); s.EventsRun != 0 || s.Procs != 0 {
		t.Fatalf("fresh stats: %+v", s)
	}
	for i := 0; i < 3; i++ {
		e.Spawn("p", func(p *Proc) { p.Sleep(Second) })
	}
	cancel := e.After(Second, func() {})
	cancel.Cancel() // dead events do not count as run (or toward MaxHeap)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Procs != 3 {
		t.Fatalf("procs = %d", s.Procs)
	}
	// 3 start wakeups + 3 sleep wakeups = 6 events.
	if s.EventsRun != 6 {
		t.Fatalf("events = %d, want 6", s.EventsRun)
	}
	if s.MaxHeap < 3 {
		t.Fatalf("maxHeap = %d", s.MaxHeap)
	}
	if s.Now != Time(Second) {
		t.Fatalf("now = %v", s.Now)
	}
}
