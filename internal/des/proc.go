package des

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulation process: a goroutine that runs in virtual time under
// the engine's strict one-at-a-time scheduling. All Proc methods must be
// called from the process's own goroutine while it is the running process.
type Proc struct {
	e        *Engine
	name     string
	id       int
	wake     chan uint64
	finished bool
	killed   bool
	// waitSeq numbers this proc's blocking operations; it doubles as the
	// wake token so stale wakeups can be detected.
	waitSeq uint64
}

// Spawn creates a process named name running fn, scheduled to start at the
// current virtual time. It may be called before Run or from a running
// process.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process that starts at the absolute time at.
func (e *Engine) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{e: e, name: name, id: e.nextID, wake: make(chan uint64)}
	e.procs = append(e.procs, p)
	//iolint:ignore goroutine coroutine handoff: the new goroutine blocks on wake immediately and only ever runs while the engine is parked, so exactly one goroutine is runnable at any instant
	go p.run(fn)
	p.waitSeq++
	e.wakeAt(p, at, PrioNormal, p.waitSeq)
	return p
}

func (p *Proc) run(fn func(p *Proc)) {
	//iolint:ignore goroutine coroutine handoff: unbuffered wake/handoff channels are the context switch itself; the engine is parked whenever this runs
	<-p.wake // first activation
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(errKilled); !ok {
				p.e.fail(fmt.Errorf("des: process %q panicked: %v\n%s", p.name, r, debug.Stack()))
			}
		}
		p.finished = true
		//iolint:ignore goroutine coroutine handoff: the exiting process hands control back to the parked engine; no two goroutines ever run concurrently
		p.e.handoff <- struct{}{}
	}()
	fn(p)
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the engine-unique process id.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// park suspends the process until the engine delivers a wakeup, and returns
// the token it carried. If the engine is shutting down, park unwinds the
// goroutine by panicking with the kill sentinel.
func (p *Proc) park() uint64 {
	//iolint:ignore goroutine coroutine handoff: park/wake is the deterministic context switch — the engine resumes exactly one process per event, in heap order
	p.e.handoff <- struct{}{}
	//iolint:ignore goroutine coroutine handoff: the process sleeps here until the engine's single dispatch resumes it with a token
	token := <-p.wake
	if token == killToken {
		panic(errKilled{})
	}
	return token
}

// nextToken returns a fresh wake token for this proc's next blocking wait.
func (p *Proc) nextToken() uint64 {
	p.waitSeq++
	return p.waitSeq
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process still yields so same-time events with lower
// sequence numbers run first).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	tok := p.nextToken()
	p.e.wakeAt(p, p.e.now.Add(d), PrioNormal, tok)
	p.mustWake(tok)
}

// SleepUntil suspends the process until the absolute time at. If at is in
// the past it yields immediately.
func (p *Proc) SleepUntil(at Time) {
	if at < p.e.now {
		at = p.e.now
	}
	tok := p.nextToken()
	p.e.wakeAt(p, at, PrioNormal, tok)
	p.mustWake(tok)
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() {
	tok := p.nextToken()
	p.e.wakeAt(p, p.e.now, PrioLate, tok)
	p.mustWake(tok)
}

// mustWake parks until the expected token arrives; any other token is a
// kernel invariant violation.
func (p *Proc) mustWake(expect uint64) {
	got := p.park()
	if got != expect {
		panic(fmt.Sprintf("des: process %q woke with stale token %d (want %d)", p.name, got, expect))
	}
}

// block parks the process and verifies the wake token; it is the primitive
// used by the synchronization types in this package. The caller must have
// arranged exactly one future wakeAt carrying tok.
func (p *Proc) block(tok uint64) {
	p.mustWake(tok)
}
