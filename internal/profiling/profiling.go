// Package profiling wires the runtime/pprof profilers into the
// command-line tools. Commands accept -cpuprofile/-memprofile flags and
// call Start once after flag parsing; the returned stop function must
// run on every exit path (the commands route all exits through a
// run() int function for exactly this reason — a deferred stop never
// runs past os.Exit).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns
// a stop function that finalizes the CPU profile and writes an
// allocation-focused heap profile to memPath (when non-empty). Either
// path may be empty; with both empty, Start is a no-op and stop is
// still safe to call.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			// Fold in everything still unswept so the written profile
			// reflects live allocations, not GC timing.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
