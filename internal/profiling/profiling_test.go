package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have samples to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	buf := make([][]byte, 64)
	for i := range buf {
		buf[i] = make([]byte, 1<<12)
	}
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
