package mpi

import (
	"iobehind/internal/des"
)

// Rank is one MPI process. All methods must be called from the rank's own
// goroutine (inside the function passed to Launch/Run), mirroring how MPI
// calls are made from the owning process.
type Rank struct {
	w       *World
	id      int
	proc    *des.Proc
	started des.Time
	ended   des.Time

	// penalty is pending interference: virtual seconds of compute slowdown
	// charged by this rank's background I/O activity and drained at the
	// next Compute call.
	penalty float64

	// computeTime accumulates time spent in Compute (including drained
	// interference penalties).
	computeTime des.Duration

	finalized bool
}

// ID returns the rank number in [0, world size).
func (r *Rank) ID() int { return r.id }

// World returns the world this rank belongs to.
func (r *Rank) World() *World { return r.w }

// Proc returns the underlying simulation process.
func (r *Rank) Proc() *des.Proc { return r.proc }

// Now returns the current virtual time.
func (r *Rank) Now() des.Time { return r.proc.Now() }

// Started and Ended return the rank's main function lifetime (Ended is
// zero while running).
func (r *Rank) Started() des.Time { return r.started }
func (r *Rank) Ended() des.Time   { return r.ended }

// ComputeTime returns the accumulated time spent in Compute.
func (r *Rank) ComputeTime() des.Duration { return r.computeTime }

// Compute models a computational phase of duration d. Interference charged
// by background I/O (AddInterference) extends the phase: the drain loop
// keeps absorbing penalties that arrive while the extension itself runs.
func (r *Rank) Compute(d des.Duration) {
	t0 := r.proc.Now()
	r.proc.Sleep(d)
	for r.penalty > 1e-9 {
		p := r.penalty
		r.penalty = 0
		r.proc.Sleep(des.DurationOf(p))
	}
	r.computeTime += r.proc.Now().Sub(t0)
}

// AddInterference charges seconds of compute slowdown to this rank. It is
// called by the I/O agent after each transfer and may run from function
// events, not only processes.
func (r *Rank) AddInterference(seconds float64) {
	if seconds > 0 {
		r.penalty += seconds
	}
}

// Sleep suspends the rank without counting the time as compute.
func (r *Rank) Sleep(d des.Duration) { r.proc.Sleep(d) }

// Finalize runs the registered finalize hooks (MPI_Finalize). Call it at
// the end of the rank's main function; calling twice panics.
func (r *Rank) Finalize() {
	if r.finalized {
		panic("mpi: rank finalized twice")
	}
	r.finalized = true
	for _, fn := range r.w.finHooks {
		fn(r)
	}
}

// Jitter returns a uniformly distributed duration in [0, max), drawn from
// the engine PRNG. Workloads use it to de-synchronize otherwise identical
// ranks, like OS noise does on a real machine.
func (r *Rank) Jitter(max des.Duration) des.Duration {
	if max <= 0 {
		return 0
	}
	return des.Duration(r.w.e.Rand().Int63n(int64(max)))
}
