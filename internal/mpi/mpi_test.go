package mpi

import (
	"fmt"
	"math"
	"testing"

	"iobehind/internal/des"
)

func newTestWorld(t *testing.T, size int) *World {
	t.Helper()
	e := des.NewEngine(1)
	return NewWorld(e, Config{Size: size})
}

func TestWorldBasics(t *testing.T) {
	w := newTestWorld(t, 4)
	if w.Size() != 4 {
		t.Fatalf("size = %d", w.Size())
	}
	if w.Rank(2).ID() != 2 {
		t.Fatalf("rank id = %d", w.Rank(2).ID())
	}
	if len(w.Ranks()) != 4 {
		t.Fatal("Ranks length")
	}
	if w.Nodes() != 1 {
		t.Fatalf("4 ranks on 96-core nodes = %d nodes, want 1", w.Nodes())
	}
	w2 := NewWorld(des.NewEngine(1), Config{Size: 9216})
	if w2.Nodes() != 96 {
		t.Fatalf("9216 ranks = %d nodes, want 96", w2.Nodes())
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size 0 did not panic")
		}
	}()
	NewWorld(des.NewEngine(1), Config{Size: 0})
}

func TestRunAllRanks(t *testing.T) {
	w := newTestWorld(t, 8)
	var ran int
	if err := w.Run(func(r *Rank) {
		r.Compute(des.Duration(r.ID()+1) * des.Second)
		ran++
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 8 {
		t.Fatalf("ran = %d", ran)
	}
	if !w.AllDone().Done() {
		t.Fatal("AllDone did not fire")
	}
	if got := w.Rank(7).Ended().Seconds(); got != 8 {
		t.Fatalf("rank 7 ended at %v, want 8s", got)
	}
}

func TestDoubleLaunchPanics(t *testing.T) {
	w := newTestWorld(t, 1)
	w.Launch(func(r *Rank) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Launch did not panic")
		}
	}()
	w.Launch(func(r *Rank) {})
}

func TestBarrierSynchronizesRanks(t *testing.T) {
	w := newTestWorld(t, 4)
	var after []des.Time
	if err := w.Run(func(r *Rank) {
		r.Compute(des.Duration(r.ID()) * des.Second)
		r.Barrier()
		after = append(after, r.Now())
	}); err != nil {
		t.Fatal(err)
	}
	for _, at := range after {
		if at < des.Time(3*des.Second) {
			t.Fatalf("rank released at %v before slowest arrival", at)
		}
	}
}

func TestBcastCostGrowsWithSizeAndBytes(t *testing.T) {
	elapsed := func(n int, bytes int64) des.Duration {
		w := NewWorld(des.NewEngine(1), Config{Size: n})
		var end des.Time
		if err := w.Run(func(r *Rank) {
			r.Bcast(0, bytes)
			end = r.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return end.Sub(0)
	}
	small := elapsed(2, 1024)
	big := elapsed(64, 1024)
	bigger := elapsed(64, 1024*1024)
	if !(small < big && big < bigger) {
		t.Fatalf("cost ordering violated: %v, %v, %v", small, big, bigger)
	}
}

func TestAllreduceCostsTwiceBcast(t *testing.T) {
	c := DefaultCostModel()
	if c.allreduce(16, 4096) != 2*c.bcast(16, 4096) {
		t.Fatal("allreduce != 2*bcast")
	}
	if c.reduce(16, 4096) != c.bcast(16, 4096) {
		t.Fatal("reduce != bcast")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSendRecvDeliversAfterWireCost(t *testing.T) {
	w := newTestWorld(t, 2)
	var recvAt des.Time
	var gotBytes int64
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(des.Second)
			r.Send(1, 7, 125_000_000) // 125 MB at 12.5 GB/s = 10 ms
		} else {
			gotBytes = r.Recv(0, 7)
			recvAt = r.Now()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if gotBytes != 125_000_000 {
		t.Fatalf("bytes = %d", gotBytes)
	}
	want := 1.0 + 0.010 + 2e-6
	if got := recvAt.Seconds(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("recv at %v, want ~%v", got, want)
	}
}

func TestSendRecvTagsIndependent(t *testing.T) {
	w := newTestWorld(t, 2)
	var order []int
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, 1)
			r.Send(1, 2, 2)
		} else {
			order = append(order, int(r.Recv(0, 2)))
			order = append(order, int(r.Recv(0, 1)))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[2 1]" {
		t.Fatalf("order = %v", order)
	}
}

func TestSendRecvValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(5, 0, 1)
		}
	})
	if err == nil {
		t.Fatal("invalid destination did not fail the run")
	}
}

func TestGrequestWaitTest(t *testing.T) {
	w := newTestWorld(t, 1)
	if err := w.Run(func(r *Rank) {
		g := w.StartGrequest()
		if g.Test() {
			t.Error("fresh grequest is complete")
		}
		w.Engine().After(2*des.Second, g.Complete)
		g.Wait(r)
		if r.Now() != des.Time(2*des.Second) {
			t.Errorf("woke at %v", r.Now())
		}
		if !g.Test() || g.CompletedAt() != des.Time(2*des.Second) {
			t.Error("grequest state wrong after completion")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitall(t *testing.T) {
	w := newTestWorld(t, 1)
	if err := w.Run(func(r *Rank) {
		var reqs []Request
		for i := 1; i <= 3; i++ {
			g := w.StartGrequest()
			w.Engine().After(des.Duration(i)*des.Second, g.Complete)
			reqs = append(reqs, g)
		}
		Waitall(r, reqs)
		if r.Now() != des.Time(3*des.Second) {
			t.Errorf("Waitall returned at %v", r.Now())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeDrainsInterference(t *testing.T) {
	w := newTestWorld(t, 1)
	if err := w.Run(func(r *Rank) {
		r.AddInterference(0.5)
		r.Compute(des.Second)
		if got := r.Now().Seconds(); math.Abs(got-1.5) > 1e-9 {
			t.Errorf("compute with penalty ended at %v, want 1.5s", got)
		}
		if got := r.ComputeTime().Seconds(); math.Abs(got-1.5) > 1e-9 {
			t.Errorf("computeTime = %v", got)
		}
		// Penalty arriving during the drain is also absorbed.
		w.Engine().After(des.Second/4, func() { r.AddInterference(0.25) })
		r.Compute(des.Second / 2)
		if got := r.Now().Seconds(); math.Abs(got-2.25) > 1e-9 {
			t.Errorf("second compute ended at %v, want 2.25s", got)
		}
		r.AddInterference(-3) // ignored
		r.Compute(0)
		if got := r.Now().Seconds(); math.Abs(got-2.25) > 1e-9 {
			t.Errorf("negative interference affected time: %v", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInterferencePenalty(t *testing.T) {
	m := InterferenceModel{Kappa: 0.4, RefRate: 2e9, Exponent: 2}
	// 1 s at the reference rate: penalty = kappa.
	if got := m.Penalty(1, 2e9); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("penalty = %v, want 0.4", got)
	}
	// Quadratic: twice the rate, 4x the per-second penalty.
	if got := m.Penalty(1, 4e9); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("penalty = %v, want 1.6", got)
	}
	// Same bytes moved at double rate (half duration): 2x total penalty.
	slow := m.Penalty(2, 2e9)
	fast := m.Penalty(1, 4e9)
	if math.Abs(fast-2*slow) > 1e-12 {
		t.Fatalf("burst premium broken: fast=%v slow=%v", fast, slow)
	}
	// Linear exponent: rate-independent per byte.
	lin := InterferenceModel{Kappa: 0.4, RefRate: 2e9, Exponent: 1}
	if math.Abs(lin.Penalty(2, 2e9)-lin.Penalty(1, 4e9)) > 1e-12 {
		t.Fatal("linear model should charge equal penalty per byte")
	}
	// Disabled / degenerate inputs.
	if (InterferenceModel{}).Penalty(1, 1e9) != 0 {
		t.Fatal("zero model must charge nothing")
	}
	if m.Penalty(-1, 1e9) != 0 || m.Penalty(1, 0) != 0 {
		t.Fatal("degenerate inputs must charge nothing")
	}
	// Defaults fill in.
	d := InterferenceModel{Kappa: 1}
	if got := d.Penalty(1, 2e9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("default RefRate/Exponent: %v", got)
	}
}

func TestFinalizeHooks(t *testing.T) {
	w := newTestWorld(t, 3)
	var calls []int
	w.AddFinalizeHook(func(r *Rank) { calls = append(calls, r.ID()) })
	if err := w.Run(func(r *Rank) {
		r.Compute(des.Duration(r.ID()) * des.Second)
		r.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(calls) != "[0 1 2]" {
		t.Fatalf("finalize calls = %v", calls)
	}
}

func TestDoubleFinalizePanics(t *testing.T) {
	w := newTestWorld(t, 1)
	err := w.Run(func(r *Rank) {
		r.Finalize()
		r.Finalize()
	})
	if err == nil {
		t.Fatal("double finalize did not fail")
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0) // never sent
		}
	})
	if err == nil {
		t.Fatal("deadlocked world reported success")
	}
	w.Engine().Shutdown()
}

func TestJitterBounded(t *testing.T) {
	w := newTestWorld(t, 1)
	if err := w.Run(func(r *Rank) {
		for i := 0; i < 100; i++ {
			j := r.Jitter(des.Millisecond)
			if j < 0 || j >= des.Millisecond {
				t.Errorf("jitter %v out of range", j)
			}
		}
		if r.Jitter(0) != 0 {
			t.Error("Jitter(0) != 0")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIsendCompletesAfterInjection(t *testing.T) {
	w := newTestWorld(t, 2)
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			req := r.Isend(1, 0, 125_000_000) // 10 ms wire time
			if req.Test() {
				t.Error("isend complete immediately")
			}
			req.Wait(r)
			if got := r.Now().Seconds(); math.Abs(got-0.010002) > 1e-4 {
				t.Errorf("isend completed at %v", got)
			}
		} else {
			r.Recv(0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIrecvOverlapsCompute(t *testing.T) {
	w := newTestWorld(t, 2)
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(des.Second)
			r.Send(1, 3, 4096)
		} else {
			req := r.Irecv(0, 3)
			r.Compute(2 * des.Second) // message arrives mid-compute
			req.Wait(r)               // returns immediately
			if got := r.Now().Seconds(); math.Abs(got-2) > 1e-6 {
				t.Errorf("irecv wait returned at %v, want 2s (hidden)", got)
			}
			if req.Bytes() != 4096 || !req.Test() {
				t.Error("irecv payload")
			}
			if req.CompletedAt().Seconds() > 1.1 {
				t.Errorf("message arrived at %v, want ~1s", req.CompletedAt())
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIrecvValidation(t *testing.T) {
	w := newTestWorld(t, 1)
	err := w.Run(func(r *Rank) { r.Irecv(7, 0) })
	if err == nil {
		t.Fatal("invalid source accepted")
	}
}

func TestCommSplit(t *testing.T) {
	w := newTestWorld(t, 6)
	var evenAt, oddAt []des.Time
	if err := w.Run(func(r *Rank) {
		comm := r.Split(r.ID() % 2)
		if comm.Size() != 3 {
			t.Errorf("comm size = %d", comm.Size())
		}
		if !comm.Contains(r.ID()) {
			t.Error("not member of own comm")
		}
		want := r.ID() / 2
		if got := comm.LocalRank(r); got != want {
			t.Errorf("local rank = %d, want %d", got, want)
		}
		// Only the even comm computes before its barrier: the odd comm's
		// barrier must not wait for the even ranks.
		if r.ID()%2 == 0 {
			r.Compute(des.Duration(r.ID()+1) * des.Second)
		}
		comm.Barrier(r)
		if r.ID()%2 == 0 {
			evenAt = append(evenAt, r.Now())
		} else {
			oddAt = append(oddAt, r.Now())
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, at := range oddAt {
		if at > des.Time(des.Millisecond) {
			t.Fatalf("odd comm waited for even ranks: released at %v", at)
		}
	}
	for _, at := range evenAt {
		if at < des.Time(5*des.Second) {
			t.Fatalf("even comm released at %v before slowest member", at)
		}
	}
}

func TestCommCollectivesAndForeignRankPanics(t *testing.T) {
	w := newTestWorld(t, 4)
	if err := w.Run(func(r *Rank) {
		comm := r.Split(r.ID() / 2) // {0,1} and {2,3}
		comm.Bcast(r, 0, 1024)
		comm.Allreduce(r, 8)
		comm.Gather(r, 0, 4096)
		if r.ID() == 0 {
			// Misusing a communicator the rank is not a member of panics;
			// the recover keeps the run alive so the panic is observable.
			defer func() {
				if recover() == nil {
					t.Error("foreign collective did not panic")
				}
			}()
			foreign := &Comm{w: w, ranks: []int{2, 3}, index: map[int]int{2: 0, 3: 1}}
			foreign.Barrier(r)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeComm(t *testing.T) {
	e := des.NewEngine(1)
	w := NewWorld(e, Config{Size: 8, RanksPerNode: 4})
	if err := w.Run(func(r *Rank) {
		comm := r.NodeComm()
		if comm.Size() != 4 {
			t.Errorf("node comm size = %d", comm.Size())
		}
		if comm.Contains(r.ID()) != true {
			t.Error("membership")
		}
		wantNode := r.ID() / 4
		for _, other := range []int{0, 4} {
			if comm.Contains(other) != (other/4 == wantNode) {
				t.Errorf("rank %d node comm contains %d wrongly", r.ID(), other)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialSplits(t *testing.T) {
	w := newTestWorld(t, 4)
	if err := w.Run(func(r *Rank) {
		first := r.Split(0) // everyone together
		if first.Size() != 4 {
			t.Errorf("first split size = %d", first.Size())
		}
		second := r.Split(r.ID()) // everyone alone
		if second.Size() != 1 {
			t.Errorf("second split size = %d", second.Size())
		}
		second.Barrier(r) // self-barrier returns
	}); err != nil {
		t.Fatal(err)
	}
}
