// Package mpi provides an in-process, virtual-time MPI-like runtime.
//
// Ranks are simulation processes (see internal/des) that synchronize
// through collectives and point-to-point messages with an α–β network cost
// model. The package deliberately mirrors the MPI surface the paper's
// workloads use — Barrier, Bcast, Allreduce, Send/Recv, requests with
// Wait/Test, generalized requests, Finalize — so the workload models read
// like the MPI codes they stand in for.
package mpi

import (
	"fmt"

	"iobehind/internal/des"
)

// Config describes a world of ranks.
type Config struct {
	// Size is the number of ranks. Must be >= 1.
	Size int
	// RanksPerNode is the process-per-node count (96 on Lichtenberg). It
	// feeds the node-aggregate interference model. Defaults to 96.
	RanksPerNode int
	// Cost is the network cost model for collectives and messages.
	Cost CostModel
}

func (c *Config) applyDefaults() {
	if c.Size < 1 {
		panic(fmt.Sprintf("mpi: world size must be >= 1, got %d", c.Size))
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 96
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
}

// World is a communicator spanning all ranks of one application.
type World struct {
	e        *des.Engine
	cfg      Config
	ranks    []*Rank
	barrier  *des.Barrier
	mailbox  map[p2pKey]*des.Mailbox[message]
	finished int
	allDone  *des.Completion
	finHooks []func(*Rank)
	launched bool
	split    *splitState
}

// NewWorld creates a world on engine e. Ranks are created immediately but
// do not run until Launch.
func NewWorld(e *des.Engine, cfg Config) *World {
	cfg.applyDefaults()
	w := &World{
		e:       e,
		cfg:     cfg,
		barrier: des.NewBarrier(e, cfg.Size),
		mailbox: make(map[p2pKey]*des.Mailbox[message]),
		allDone: des.NewCompletion(e),
	}
	for i := 0; i < cfg.Size; i++ {
		w.ranks = append(w.ranks, &Rank{w: w, id: i})
	}
	return w
}

// Engine returns the engine the world runs on.
func (w *World) Engine() *des.Engine { return w.e }

// Size returns the number of ranks.
func (w *World) Size() int { return w.cfg.Size }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Ranks returns all ranks in id order.
func (w *World) Ranks() []*Rank { return w.ranks }

// AllDone fires when every rank's main function has returned.
func (w *World) AllDone() *des.Completion { return w.allDone }

// AddFinalizeHook registers fn to run inside each rank's Finalize call.
// This is the seam TMIO uses to model its post-runtime aggregation cost.
func (w *World) AddFinalizeHook(fn func(*Rank)) {
	w.finHooks = append(w.finHooks, fn)
}

// Launch starts every rank running main at the current virtual time and
// returns immediately; drive the engine to execute them. Launch may be
// called once per world.
func (w *World) Launch(main func(*Rank)) {
	if w.launched {
		panic("mpi: world launched twice")
	}
	w.launched = true
	for _, r := range w.ranks {
		r := r
		r.proc = w.e.Spawn(fmt.Sprintf("rank%d", r.id), func(p *des.Proc) {
			r.started = p.Now()
			main(r)
			r.ended = p.Now()
			w.finished++
			if w.finished == w.cfg.Size {
				w.allDone.Complete()
			}
		})
	}
}

// Run launches main and drives the engine until the event queue drains,
// returning the first process failure. It verifies all ranks completed.
func (w *World) Run(main func(*Rank)) error {
	w.Launch(main)
	if err := w.e.Run(); err != nil {
		return err
	}
	if w.finished != w.cfg.Size {
		return fmt.Errorf("mpi: %d of %d ranks did not complete (deadlock?)",
			w.cfg.Size-w.finished, w.cfg.Size)
	}
	return nil
}

// Nodes returns the number of nodes the world occupies, rounding up.
func (w *World) Nodes() int {
	return (w.cfg.Size + w.cfg.RanksPerNode - 1) / w.cfg.RanksPerNode
}
