package mpi

// Collectives are modelled as synchronizing operations: all ranks must
// arrive, then all are released after the operation's α–β cost. Real MPI
// collectives are not all strict barriers, but HPC applications calling
// them in lockstep (the SPMD pattern of both paper workloads) behave this
// way to first order, and the approximation keeps the phase structure —
// which is what the paper's metrics measure — exact.
//
// Because one reusable barrier per world carries all collectives, every
// rank must issue the same sequence of collective calls, as the MPI
// standard itself requires.

// Barrier blocks until all ranks arrive.
func (r *Rank) Barrier() {
	r.w.barrier.Await(r.proc, r.w.cfg.Cost.barrier(r.w.cfg.Size))
}

// Bcast broadcasts bytes from root to all ranks.
func (r *Rank) Bcast(root int, bytes int64) {
	_ = root // the cost model is root-agnostic
	r.w.barrier.Await(r.proc, r.w.cfg.Cost.bcast(r.w.cfg.Size, bytes))
}

// Reduce combines bytes from all ranks at root.
func (r *Rank) Reduce(root int, bytes int64) {
	_ = root
	r.w.barrier.Await(r.proc, r.w.cfg.Cost.reduce(r.w.cfg.Size, bytes))
}

// Allreduce combines bytes across all ranks and distributes the result.
func (r *Rank) Allreduce(bytes int64) {
	r.w.barrier.Await(r.proc, r.w.cfg.Cost.allreduce(r.w.cfg.Size, bytes))
}

// Allgather collects bytesPerRank from every rank on every rank.
func (r *Rank) Allgather(bytesPerRank int64) {
	r.w.barrier.Await(r.proc, r.w.cfg.Cost.allgather(r.w.cfg.Size, bytesPerRank))
}

// Gather collects bytesPerRank from every rank at root.
func (r *Rank) Gather(root int, bytesPerRank int64) {
	_ = root
	r.w.barrier.Await(r.proc, r.w.cfg.Cost.gather(r.w.cfg.Size, bytesPerRank))
}
