package mpi

import (
	"iobehind/internal/des"
)

// Request is the handle of a non-blocking operation, mirroring MPI_Request.
type Request interface {
	// Wait blocks the calling rank until the operation completes.
	Wait(r *Rank)
	// Test reports whether the operation has completed, without blocking.
	Test() bool
	// CompletedAt returns when the operation completed (zero if pending).
	CompletedAt() des.Time
}

// Grequest is a generalized request (MPI_Grequest_start /
// MPI_Grequest_complete): a completion handle for a custom asynchronous
// operation, here the I/O agent's background transfers.
type Grequest struct {
	c *des.Completion
}

// StartGrequest returns a new, incomplete generalized request.
func (w *World) StartGrequest() *Grequest {
	return &Grequest{c: des.NewCompletion(w.e)}
}

// Complete marks the operation finished and releases waiters. It must be
// called exactly once, typically by the I/O agent process.
func (g *Grequest) Complete() { g.c.Complete() }

// Wait blocks rank r until Complete has been called.
func (g *Grequest) Wait(r *Rank) { g.c.Wait(r.proc) }

// Test reports completion without blocking.
func (g *Grequest) Test() bool { return g.c.Done() }

// CompletedAt returns the completion time, zero while pending.
func (g *Grequest) CompletedAt() des.Time { return g.c.At() }

// Waitall blocks until every request in reqs has completed.
func Waitall(r *Rank, reqs []Request) {
	for _, req := range reqs {
		req.Wait(r)
	}
}
