package mpi

import (
	"fmt"

	"iobehind/internal/des"
)

// p2pKey identifies a directed (source, destination, tag) message channel.
type p2pKey struct {
	src, dst, tag int
}

// message is an in-flight point-to-point payload descriptor.
type message struct {
	bytes       int64
	availableAt des.Time
}

func (w *World) mbox(k p2pKey) *des.Mailbox[message] {
	mb, ok := w.mailbox[k]
	if !ok {
		mb = des.NewMailbox[message](w.e)
		w.mailbox[k] = mb
	}
	return mb
}

// Send posts bytes to rank dst with the given tag. The eager protocol is
// modelled: the sender buffers and returns immediately; the payload becomes
// available to the receiver after the α–β wire cost.
func (r *Rank) Send(dst, tag int, bytes int64) {
	if dst < 0 || dst >= r.w.cfg.Size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	k := p2pKey{src: r.id, dst: dst, tag: tag}
	r.w.mbox(k).Put(message{
		bytes:       bytes,
		availableAt: r.proc.Now().Add(r.w.cfg.Cost.pointToPoint(bytes)),
	})
}

// Recv blocks until a message from rank src with the given tag has fully
// arrived and returns its size.
func (r *Rank) Recv(src, tag int) int64 {
	if src < 0 || src >= r.w.cfg.Size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	k := p2pKey{src: src, dst: r.id, tag: tag}
	msg := r.w.mbox(k).Get(r.proc)
	r.proc.SleepUntil(msg.availableAt)
	return msg.bytes
}

// Isend posts bytes to dst without blocking (MPI_Isend). Under the eager
// model the payload is buffered immediately, so the returned request
// completes after the local injection cost — the wire time to get the
// message out of the sender's NIC.
func (r *Rank) Isend(dst, tag int, bytes int64) Request {
	g := r.w.StartGrequest()
	cost := r.w.cfg.Cost.pointToPoint(bytes)
	r.Send(dst, tag, bytes)
	r.w.e.After(cost, g.Complete)
	return g
}

// Irecv posts a non-blocking receive (MPI_Irecv): the returned request
// completes once a matching message has fully arrived. The received size
// is available through the request's CompletedAt pairing with Recv
// semantics; use RecvSize to read it.
func (r *Rank) Irecv(src, tag int) *RecvRequest {
	if src < 0 || src >= r.w.cfg.Size {
		panic(fmt.Sprintf("mpi: Irecv from invalid rank %d", src))
	}
	req := &RecvRequest{g: r.w.StartGrequest()}
	k := p2pKey{src: src, dst: r.id, tag: tag}
	mb := r.w.mbox(k)
	// A progress process performs the matching in the background, like
	// the MPI progress engine: it blocks on the mailbox so the request
	// completes as soon as the message lands, even if the application is
	// busy computing.
	r.w.e.Spawn(fmt.Sprintf("irecv-%d<-%d", r.id, src), func(p *des.Proc) {
		msg := mb.Get(p)
		p.SleepUntil(msg.availableAt)
		req.bytes = msg.bytes
		req.g.Complete()
	})
	return req
}

// RecvRequest is the handle of a non-blocking receive.
type RecvRequest struct {
	g     *Grequest
	bytes int64
}

// Wait blocks the rank until the message has arrived.
func (q *RecvRequest) Wait(r *Rank) { q.g.Wait(r) }

// Test reports whether the message has arrived.
func (q *RecvRequest) Test() bool { return q.g.Test() }

// CompletedAt returns the arrival time (zero while pending).
func (q *RecvRequest) CompletedAt() des.Time { return q.g.CompletedAt() }

// Bytes returns the received size; valid only after completion.
func (q *RecvRequest) Bytes() int64 { return q.bytes }
