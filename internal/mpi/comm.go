package mpi

import (
	"fmt"
	"sort"

	"iobehind/internal/des"
)

// Comm is a sub-communicator: a subset of the world's ranks with its own
// synchronizing collectives (MPI_Comm_split). Hierarchical applications —
// WaComM++'s node-level/island-level decomposition, for example — use one
// communicator per level.
type Comm struct {
	w     *World
	ranks []int       // world rank ids, sorted
	index map[int]int // world rank id → local rank
	bar   *des.Barrier
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// LocalRank returns r's rank within the communicator.
func (c *Comm) LocalRank(r *Rank) int {
	lr, ok := c.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d is not in this communicator", r.id))
	}
	return lr
}

// Contains reports whether world rank id belongs to the communicator.
func (c *Comm) Contains(id int) bool {
	_, ok := c.index[id]
	return ok
}

// Barrier blocks until all communicator members arrive.
func (c *Comm) Barrier(r *Rank) {
	c.check(r)
	c.bar.Await(r.proc, c.w.cfg.Cost.barrier(len(c.ranks)))
}

// Bcast broadcasts bytes within the communicator.
func (c *Comm) Bcast(r *Rank, root int, bytes int64) {
	_ = root
	c.check(r)
	c.bar.Await(r.proc, c.w.cfg.Cost.bcast(len(c.ranks), bytes))
}

// Allreduce combines bytes across the communicator members.
func (c *Comm) Allreduce(r *Rank, bytes int64) {
	c.check(r)
	c.bar.Await(r.proc, c.w.cfg.Cost.allreduce(len(c.ranks), bytes))
}

// Gather collects bytesPerRank at the communicator root.
func (c *Comm) Gather(r *Rank, root int, bytesPerRank int64) {
	_ = root
	c.check(r)
	c.bar.Await(r.proc, c.w.cfg.Cost.gather(len(c.ranks), bytesPerRank))
}

func (c *Comm) check(r *Rank) {
	if !c.Contains(r.id) {
		panic(fmt.Sprintf("mpi: rank %d calling collective on foreign communicator", r.id))
	}
}

// splitState coordinates one in-flight MPI_Comm_split across the world.
type splitState struct {
	colors  map[int]int // world rank → color
	arrived int
	done    *des.Completion
	comms   map[int]*Comm // color → communicator
}

// Split is the collective MPI_Comm_split: every rank of the world must
// call it (with any color); ranks sharing a color end up in the same
// communicator. Consecutive Splits must be issued in the same order on
// all ranks, like any collective.
func (r *Rank) Split(color int) *Comm {
	w := r.w
	if w.split == nil {
		w.split = &splitState{
			colors: make(map[int]int),
			done:   des.NewCompletion(w.e),
		}
	}
	st := w.split
	st.colors[r.id] = color
	st.arrived++
	if st.arrived < w.cfg.Size {
		st.done.Wait(r.proc)
	} else {
		// Last arrival builds all communicators and releases everyone.
		st.comms = make(map[int]*Comm)
		byColor := make(map[int][]int)
		//iolint:ignore maporder each color's rank list is sort.Ints'd below before communicator construction, so rank order inside a communicator never depends on map iteration
		for id, col := range st.colors {
			byColor[col] = append(byColor[col], id)
		}
		for col, ids := range byColor {
			sort.Ints(ids)
			comm := &Comm{w: w, ranks: ids, index: make(map[int]int, len(ids))}
			for i, id := range ids {
				comm.index[id] = i
			}
			comm.bar = des.NewBarrier(w.e, len(ids))
			st.comms[col] = comm
		}
		w.split = nil // allow the next Split round
		st.done.Complete()
	}
	return st.comms[st.colors[r.id]]
}

// NodeComm splits the world into one communicator per node (the common
// shared-memory decomposition).
func (r *Rank) NodeComm() *Comm {
	return r.Split(r.id / r.w.cfg.RanksPerNode)
}
