package mpi

import (
	"math"
	"math/bits"

	"iobehind/internal/des"
)

// CostModel is a latency–bandwidth (α–β) model of the interconnect.
type CostModel struct {
	// Alpha is the per-message latency.
	Alpha des.Duration
	// BetaPerByte is the per-byte transfer time in seconds.
	BetaPerByte float64
}

// DefaultCostModel returns parameters typical of a 100 Gb/s fabric:
// 2 µs latency, 12.5 GB/s per-link bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{Alpha: 2 * des.Microsecond, BetaPerByte: 1.0 / 12.5e9}
}

// log2ceil returns ⌈log₂ n⌉ with log2ceil(1) = 1, the tree depth used by
// the collective estimates (a self-collective still costs one α).
func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// pointToPoint is the cost of moving bytes between two ranks.
func (c CostModel) pointToPoint(bytes int64) des.Duration {
	return c.Alpha + des.DurationOf(float64(bytes)*c.BetaPerByte)
}

// barrier is the cost of an n-rank barrier (dissemination: ⌈log₂ n⌉ rounds).
func (c CostModel) barrier(n int) des.Duration {
	return des.Duration(log2ceil(n)) * c.Alpha
}

// bcast is the cost of broadcasting bytes to n ranks (binomial tree).
func (c CostModel) bcast(n int, bytes int64) des.Duration {
	return des.Duration(log2ceil(n)) * c.pointToPoint(bytes)
}

// reduce matches bcast's tree shape.
func (c CostModel) reduce(n int, bytes int64) des.Duration {
	return c.bcast(n, bytes)
}

// allreduce is a reduce followed by a bcast.
func (c CostModel) allreduce(n int, bytes int64) des.Duration {
	return 2 * c.bcast(n, bytes)
}

// allgather: log₂ n latency rounds, each rank ends up moving (n−1)/n of
// the aggregate payload (recursive doubling).
func (c CostModel) allgather(n int, bytesPerRank int64) des.Duration {
	lat := des.Duration(log2ceil(n)) * c.Alpha
	vol := des.DurationOf(float64(bytesPerRank) * float64(n-1) * c.BetaPerByte)
	return lat + vol
}

// gather: the root receives (n−1) messages up a binomial tree.
func (c CostModel) gather(n int, bytesPerRank int64) des.Duration {
	lat := des.Duration(log2ceil(n)) * c.Alpha
	vol := des.DurationOf(float64(bytesPerRank) * float64(n-1) * c.BetaPerByte)
	return lat + vol
}

// InterferenceModel captures how a rank's background I/O slows computation
// on its node. Background I/O threads compete with compute threads for
// cores and memory bandwidth (Tseng et al., cited as [33] in the paper).
//
// After a transfer of duration t at rank-level rate r, the rank is charged
//
//	penalty = Kappa · t · (R/RefRate)^Exponent,  R = r · RanksPerNode
//
// R approximates the node-aggregate I/O rate under the symmetric workloads
// studied here (every rank on a node behaves alike). With Exponent = 2 the
// penalty per byte grows linearly with the rate, so a short violent burst
// costs more compute time than the same bytes trickled slowly — this is
// what makes throttled runs slightly faster, as the paper observes. With
// Exponent = 1 the penalty per byte is rate-independent (the null model
// used in the ablation benchmarks).
type InterferenceModel struct {
	// Kappa scales the penalty; zero disables interference.
	Kappa float64
	// RefRate is the node-level reference rate in bytes/s (for example,
	// the node's memory bandwidth headroom). Defaults to 2 GB/s when
	// Kappa is set.
	RefRate float64
	// Exponent defaults to 2.
	Exponent float64
}

// DefaultInterference returns the calibrated model used by the paper-shape
// experiments.
func DefaultInterference() InterferenceModel {
	return InterferenceModel{Kappa: 0.4, RefRate: 2e9, Exponent: 2}
}

// Penalty returns the compute-time penalty in seconds for a transfer of
// duration seconds at node-aggregate rate nodeRate (bytes/s).
func (m InterferenceModel) Penalty(duration, nodeRate float64) float64 {
	if m.Kappa <= 0 || duration <= 0 || nodeRate <= 0 {
		return 0
	}
	ref := m.RefRate
	if ref <= 0 {
		ref = 2e9
	}
	exp := m.Exponent
	if exp <= 0 {
		exp = 2
	}
	return m.Kappa * duration * math.Pow(nodeRate/ref, exp)
}
