// Package experiments reproduces every figure of the paper's evaluation
// as a parameterized, runnable experiment. Each FigNN function runs the
// workloads behind the corresponding figure and returns a result whose
// Render method prints the rows or series the paper reports.
//
// Two scales are provided: Quick shrinks rank counts and loop counts so
// the whole suite runs in seconds (used by tests and the default
// benchmarks); Paper uses the paper's configurations (up to 9216 ranks,
// minutes of wall time for the largest runs).
//
// Every figure is decomposed into independent sweep points — one
// deterministic simulation per (strategy, rank count) cell — enumerated
// as an Experiment and executed through internal/runner. FigNN(scale)
// keeps the historical serial behaviour (one worker, no cache);
// FigNNWith(ctx, scale, r) fans the same points across r's worker pool
// and, when r carries a cache, skips points whose configuration already
// ran. Both paths produce byte-identical rendered output: results are
// assembled in point-enumeration order regardless of completion order,
// and each point's simulation is a pure function of its seed and config.
package experiments

import (
	"context"
	"fmt"

	"iobehind/internal/adio"
	"iobehind/internal/cluster"
	"iobehind/internal/des"
	"iobehind/internal/faults"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/region"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// Scale selects the experiment size.
type Scale int

const (
	// Quick shrinks experiments to run in seconds.
	Quick Scale = iota
	// Paper uses the paper's configurations.
	Paper
)

// String names the scale.
func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "quick"
}

// stormAgent returns the calibrated I/O-agent configuration used by the
// paper-shape runs: server queuing that makes burst operations visible
// (≈3% exploit for unthrottled runs at 9216 ranks) and the rare scheduling
// hiccups of unpaced I/O threads that slow the unthrottled runs at scale
// (the ≈11.6% effect of Fig. 10). See DESIGN.md for the calibration.
func stormAgent() adio.Config {
	return adio.Config{
		HiccupProb:          6e-4,
		HiccupMean:          150 * des.Millisecond,
		QueueLatencyPerFlow: 10 * des.Microsecond,
	}
}

// stack is one assembled simulation.
type stack struct {
	engine   *des.Engine
	world    *mpi.World
	fs       *pfs.PFS
	sys      *mpiio.System
	tracer   *tmio.Tracer
	injector *faults.Injector
}

// spec describes one traced run.
type spec struct {
	ranks    int
	seed     int64
	strategy tmio.StrategyConfig
	agent    adio.Config
	tracer   tmio.Config
	fsCfg    *pfs.Config
	faults   *faults.Config
}

// build assembles the stack for a spec.
func build(sp spec) *stack {
	seed := sp.seed
	if seed == 0 {
		seed = 1
	}
	e := des.NewEngine(seed)
	w := mpi.NewWorld(e, mpi.Config{Size: sp.ranks})
	fsCfg := pfs.LichtenbergConfig()
	if sp.fsCfg != nil {
		fsCfg = *sp.fsCfg
	}
	fs := pfs.New(e, fsCfg)
	sys := mpiio.NewSystem(w, fs, sp.agent)
	tcfg := sp.tracer
	tcfg.Strategy = sp.strategy
	var inj *faults.Injector
	if sp.faults != nil && !sp.faults.Empty() {
		inj = faults.New(e, fs, *sp.faults)
		sys.SetFaults(inj)
		tcfg.FaultOracle = inj.Overlaps
	}
	tr := tmio.Attach(sys, tcfg)
	return &stack{engine: e, world: w, fs: fs, sys: sys, tracer: tr, injector: inj}
}

// execute runs main on the stack's world and returns the report.
func (s *stack) execute(main func(*mpi.Rank)) (*tmio.Report, error) {
	if err := s.world.Run(main); err != nil {
		return nil, err
	}
	return s.tracer.Report(), nil
}

// Renderer is any experiment result that can print itself.
type Renderer interface{ Render() string }

// Experiment is one figure's sweep decomposed into independent runner
// points, plus the assembly that turns the point results — delivered in
// point order — back into the figure's renderable result.
type Experiment struct {
	// Fig is the canonical figure id; figures sharing one experiment
	// ("2" with "1", "6" with "5") share the id of the lower figure.
	Fig string
	// Seed is the non-default scenario seed the experiment was built
	// with (only the "faults" figure uses one; 0 elsewhere). It rides
	// into PointRefs so a remote worker re-enumerates the same sweep.
	Seed     int64
	Points   []runner.Point
	Assemble func(results []runner.Result) (Renderer, error)
}

// RunExperiment executes exp's points through r (serially when r is nil)
// and assembles the figure result.
func RunExperiment(ctx context.Context, r *runner.Runner, exp *Experiment) (Renderer, error) {
	if r == nil {
		r = runner.Serial()
	}
	results, err := r.Run(ctx, exp.Points)
	if err != nil {
		return nil, err
	}
	return exp.Assemble(results)
}

// FigOrder lists each distinct experiment once, in figure order — the
// iteration order of "run everything".
var FigOrder = []string{"1", "3", "4", "5", "7", "8", "9", "10", "11", "13", "14", "faults", "trace"}

// experimentsByFig maps every figure id to its experiment constructor.
var experimentsByFig = map[string]func(Scale) *Experiment{
	"1": Fig01Experiment, "2": Fig01Experiment,
	"3": Fig03Experiment, "4": Fig04Experiment,
	"5": Fig05Experiment, "6": Fig05Experiment,
	"7": Fig07Experiment, "8": Fig08Experiment,
	"9": Fig09Experiment, "10": Fig10Experiment,
	"11": Fig11Experiment, "13": Fig13Experiment,
	"14": Fig14Experiment, "faults": FigFaultsExperiment,
	"trace": FigTraceExperiment,
}

// ByFig returns the experiment behind a figure id ("1".."14"; "2" and
// "6" resolve to the experiments of Figs. 1 and 5, which render them).
func ByFig(fig string, scale Scale) (*Experiment, bool) {
	ctor, ok := experimentsByFig[fig]
	if !ok {
		return nil, false
	}
	return ctor(scale), true
}

// pointConfig is the canonical, hashable identity of one sweep point:
// everything that determines the point's result. It is JSON-encoded into
// the cache key, so any change here (or to the structs it embeds)
// invalidates exactly the affected points.
type pointConfig struct {
	Fig      string
	Scale    string
	Workload string
	Ranks    int   `json:",omitempty"`
	Seed     int64 `json:",omitempty"`
	Strategy tmio.StrategyConfig
	Agent    adio.Config
	Tracer   tmio.Config
	FS       *pfs.Config             `json:",omitempty"`
	Faults   *faults.Config          `json:",omitempty"`
	Hacc     *workloads.HaccConfig   `json:",omitempty"`
	Wacomm   *workloads.WacommConfig `json:",omitempty"`
	Phased   *workloads.PhasedConfig `json:",omitempty"`
	Ior      *workloads.IorConfig    `json:",omitempty"`
	Cluster  *cluster.Config         `json:",omitempty"`
	Phases   []region.Phase          `json:",omitempty"` // Fig. 4's exact inputs
	// TraceSHA is the SHA-256 of a replayed trace file's raw bytes: the
	// trace *content* is the point's input, so any byte change must miss.
	TraceSHA string `json:",omitempty"`
}

// config derives the hashable point identity from a spec.
func (sp spec) config(fig string, scale Scale, workload string) pointConfig {
	return pointConfig{
		Fig:      fig,
		Scale:    scale.String(),
		Workload: workload,
		Ranks:    sp.ranks,
		Seed:     sp.seed,
		Strategy: sp.strategy,
		Agent:    sp.agent,
		Tracer:   sp.tracer,
		FS:       sp.fsCfg,
		Faults:   sp.faults,
	}
}

// simPoint wraps one traced simulation as a cacheable sweep point:
// build the stack, run mainOf's per-rank main, return the report.
func simPoint(key string, cfg pointConfig, sp spec, mainOf func(*mpiio.System) func(*mpi.Rank)) runner.Point {
	return runner.Point{
		Key:    key,
		Config: cfg,
		New:    func() any { return new(tmio.Report) },
		Run: func(context.Context) (any, error) {
			st := build(sp)
			return st.execute(mainOf(st.sys))
		},
	}
}

// reportAt extracts point i's report from the sweep results.
func reportAt(results []runner.Result, i int) (*tmio.Report, error) {
	if err := results[i].Err; err != nil {
		return nil, err
	}
	rep, ok := results[i].Value.(*tmio.Report)
	if !ok {
		return nil, fmt.Errorf("point %s: unexpected result type %T", results[i].Key, results[i].Value)
	}
	return rep, nil
}
