// Package experiments reproduces every figure of the paper's evaluation
// as a parameterized, runnable experiment. Each FigNN function runs the
// workloads behind the corresponding figure and returns a result whose
// Render method prints the rows or series the paper reports.
//
// Two scales are provided: Quick shrinks rank counts and loop counts so
// the whole suite runs in seconds (used by tests and the default
// benchmarks); Paper uses the paper's configurations (up to 9216 ranks,
// minutes of wall time for the largest runs).
package experiments

import (
	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/tmio"
)

// Scale selects the experiment size.
type Scale int

const (
	// Quick shrinks experiments to run in seconds.
	Quick Scale = iota
	// Paper uses the paper's configurations.
	Paper
)

// String names the scale.
func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "quick"
}

// stormAgent returns the calibrated I/O-agent configuration used by the
// paper-shape runs: server queuing that makes burst operations visible
// (≈3% exploit for unthrottled runs at 9216 ranks) and the rare scheduling
// hiccups of unpaced I/O threads that slow the unthrottled runs at scale
// (the ≈11.6% effect of Fig. 10). See DESIGN.md for the calibration.
func stormAgent() adio.Config {
	return adio.Config{
		HiccupProb:          6e-4,
		HiccupMean:          150 * des.Millisecond,
		QueueLatencyPerFlow: 10 * des.Microsecond,
	}
}

// stack is one assembled simulation.
type stack struct {
	engine *des.Engine
	world  *mpi.World
	fs     *pfs.PFS
	sys    *mpiio.System
	tracer *tmio.Tracer
}

// spec describes one traced run.
type spec struct {
	ranks    int
	seed     int64
	strategy tmio.StrategyConfig
	agent    adio.Config
	tracer   tmio.Config
	fsCfg    *pfs.Config
}

// build assembles the stack for a spec.
func build(sp spec) *stack {
	seed := sp.seed
	if seed == 0 {
		seed = 1
	}
	e := des.NewEngine(seed)
	w := mpi.NewWorld(e, mpi.Config{Size: sp.ranks})
	fsCfg := pfs.LichtenbergConfig()
	if sp.fsCfg != nil {
		fsCfg = *sp.fsCfg
	}
	fs := pfs.New(e, fsCfg)
	sys := mpiio.NewSystem(w, fs, sp.agent)
	tcfg := sp.tracer
	tcfg.Strategy = sp.strategy
	tr := tmio.Attach(sys, tcfg)
	return &stack{engine: e, world: w, fs: fs, sys: sys, tracer: tr}
}

// execute runs main on the stack's world and returns the report.
func (s *stack) execute(main func(*mpi.Rank)) (*tmio.Report, error) {
	if err := s.world.Run(main); err != nil {
		return nil, err
	}
	return s.tracer.Report(), nil
}
