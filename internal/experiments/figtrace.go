package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/trace"
	"iobehind/internal/workloads"
)

// The trace experiment ("trace" in FigOrder) is the dogfood closure of the
// trace subsystem: every built-in workload is run once with the trace
// emitter attached, its trace is replayed on an identically configured
// stack, and the two rendered reports must match byte for byte. It is the
// same closure property PR 2 established for online/offline equality,
// extended to the trace path — if it holds, a trace captures everything
// the bandwidth analysis needs, so replaying *external* traces is on the
// same footing as running the hand-coded models.

// traceWorkload is one dogfood case: a named workload plus the stack
// configuration it is traced and replayed under.
type traceWorkload struct {
	name     string
	ranks    int
	rpn      int
	strategy tmio.StrategyConfig
	fs       pfs.Config
	phased   *workloads.PhasedConfig
	hacc     *workloads.HaccConfig
	wacomm   *workloads.WacommConfig
	ior      *workloads.IorConfig
}

func (wl traceWorkload) main(sys *mpiio.System) func(*mpi.Rank) {
	switch {
	case wl.phased != nil:
		return workloads.PhasedMain(sys, *wl.phased)
	case wl.hacc != nil:
		return workloads.HaccMain(sys, *wl.hacc)
	case wl.wacomm != nil:
		return workloads.WacommMain(sys, *wl.wacomm)
	case wl.ior != nil:
		return workloads.IorMain(sys, *wl.ior)
	}
	panic("experiments: traceWorkload with no workload config")
}

// traceWorkloads enumerates the dogfood cases. The file system is modest
// and noise-free and the agent config is zero: the replay identity needs
// an I/O path without random draws (application-side randomness — jitter,
// failure schedules — is fine, it is frozen into the trace).
func traceWorkloads(scale Scale) []traceWorkload {
	fs := pfs.Config{WriteCapacity: 2e9, ReadCapacity: 2e9}
	adaptive := tmio.StrategyConfig{Strategy: tmio.Adaptive}
	direct := tmio.StrategyConfig{Strategy: tmio.Direct}
	phases, loops, iters := 4, 3, 3
	ranks := 4
	if scale == Paper {
		phases, loops, iters = 10, 6, 8
		ranks = 8
	}
	return []traceWorkload{
		{name: "phased", ranks: ranks, rpn: 2, strategy: adaptive, fs: fs,
			phased: &workloads.PhasedConfig{
				Phases: phases, BytesPerPhase: 16 << 20,
				Compute: 50 * des.Millisecond, JitterFraction: 0.05,
			}},
		{name: "hacc", ranks: 2, rpn: 2, strategy: direct, fs: fs,
			hacc: &workloads.HaccConfig{
				Loops: loops, ParticlesPerRank: 200_000,
				FixedPhase: 40 * des.Millisecond,
			}},
		{name: "wacomm", ranks: ranks, rpn: 2, strategy: direct, fs: fs,
			wacomm: &workloads.WacommConfig{
				Particles: 100_000, Iterations: iters, ReadEvery: 2,
			}},
		{name: "ior", ranks: ranks, rpn: 2, strategy: adaptive, fs: fs,
			ior: &workloads.IorConfig{
				Segments: 2, BlockSize: 16 << 20, TransferSize: 8 << 20,
				Async: true, ComputeBetween: 20 * des.Millisecond,
			}},
	}
}

// emitWorkloadTrace runs the workload with the emitter composed in front
// of the charging tracer (see trace.NewEmitter on the ordering) and
// returns the trace bytes plus the rendered report.
func emitWorkloadTrace(wl traceWorkload) (traceBytes, reportBytes []byte, rep *tmio.Report, err error) {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: wl.ranks, RanksPerNode: wl.rpn})
	fs := pfs.New(e, wl.fs)
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	em := trace.NewEmitter(sys, wl.name)
	tr := tmio.Attach(sys, tmio.Config{Strategy: wl.strategy})
	sys.SetInterceptor(mpiio.Tee(em, tr))
	if err := w.Run(wl.main(sys)); err != nil {
		return nil, nil, nil, err
	}
	rep = tr.Report()
	var repBuf, trBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		return nil, nil, nil, err
	}
	if err := em.Encode(&trBuf); err != nil {
		return nil, nil, nil, err
	}
	return trBuf.Bytes(), repBuf.Bytes(), rep, nil
}

// replayParsedTrace replays a parsed trace on a stack configured like wl's
// emit run (tracer only, no emitter) and returns the rendered report.
func replayParsedTrace(parsed *trace.Trace, wl traceWorkload) ([]byte, *tmio.Report, error) {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: parsed.Ranks, RanksPerNode: wl.rpn})
	fs := pfs.New(e, wl.fs)
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := tmio.Attach(sys, tmio.Config{Strategy: wl.strategy})
	if err := w.Run(trace.ReplayMain(sys, parsed)); err != nil {
		return nil, nil, err
	}
	rep := tr.Report()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), rep, nil
}

// EmitBuiltinTrace runs the named built-in workload ("phased", "hacc",
// "wacomm", "ior") at the given scale and returns its trace file bytes —
// the implementation behind iosweep's -emit-trace flag.
func EmitBuiltinTrace(workload string, scale Scale) ([]byte, error) {
	for _, wl := range traceWorkloads(scale) {
		if wl.name == workload {
			traceBytes, _, _, err := emitWorkloadTrace(wl)
			return traceBytes, err
		}
	}
	return nil, fmt.Errorf("experiments: unknown trace workload %q (want phased, hacc, wacomm, or ior)", workload)
}

// TracePointResult is one dogfood point's outcome.
type TracePointResult struct {
	Workload   string
	Ranks      int
	Ops        int
	TraceBytes int
	TraceSHA   string
	Identical  bool
	Runtime    des.Duration
	RequiredBW float64
}

// FigTraceResult is the assembled trace experiment.
type FigTraceResult struct {
	Scale  Scale
	Points []TracePointResult
}

// FigTrace runs the trace dogfood experiment serially.
func FigTrace(scale Scale) (*FigTraceResult, error) {
	return FigTraceWith(context.Background(), scale, nil)
}

// FigTraceWith runs the experiment's points through r.
func FigTraceWith(ctx context.Context, scale Scale, r *runner.Runner) (*FigTraceResult, error) {
	res, err := RunExperiment(ctx, r, FigTraceExperiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*FigTraceResult), nil
}

// FigTraceExperiment enumerates one emit→replay→compare point per
// built-in workload. A point fails (returns an error, failing the sweep)
// when the replayed report is not byte-identical to the original — the
// trace subsystem's core invariant is enforced on every run, not only in
// tests.
func FigTraceExperiment(scale Scale) *Experiment {
	wls := traceWorkloads(scale)
	points := make([]runner.Point, 0, len(wls))
	for _, wl := range wls {
		wl := wl
		pcfg := pointConfig{
			Fig:      "trace",
			Scale:    scale.String(),
			Workload: wl.name,
			Ranks:    wl.ranks,
			Strategy: wl.strategy,
			Tracer:   tmio.Config{Strategy: wl.strategy},
			FS:       &wl.fs,
			Phased:   wl.phased,
			Hacc:     wl.hacc,
			Wacomm:   wl.wacomm,
			Ior:      wl.ior,
		}
		points = append(points, runner.Point{
			Key:    fmt.Sprintf("figtrace/%s/%s", scale.String(), wl.name),
			Config: pcfg,
			New:    func() any { return new(TracePointResult) },
			Run: func(context.Context) (any, error) {
				traceBytes, reportBytes, rep, err := emitWorkloadTrace(wl)
				if err != nil {
					return nil, fmt.Errorf("figtrace/%s: emit: %w", wl.name, err)
				}
				parsed, err := trace.Parse(bytes.NewReader(traceBytes))
				if err != nil {
					return nil, fmt.Errorf("figtrace/%s: parse own trace: %w", wl.name, err)
				}
				replayed, _, err := replayParsedTrace(parsed, wl)
				if err != nil {
					return nil, fmt.Errorf("figtrace/%s: replay: %w", wl.name, err)
				}
				if !bytes.Equal(reportBytes, replayed) {
					return nil, fmt.Errorf("figtrace/%s: replayed report diverged from original", wl.name)
				}
				sum := sha256.Sum256(traceBytes)
				return &TracePointResult{
					Workload:   wl.name,
					Ranks:      wl.ranks,
					Ops:        parsed.Ops(),
					TraceBytes: len(traceBytes),
					TraceSHA:   hex.EncodeToString(sum[:]),
					Identical:  true,
					Runtime:    rep.Runtime,
					RequiredBW: rep.RequiredBandwidth,
				}, nil
			},
		})
	}
	return &Experiment{
		Fig:    "trace",
		Points: points,
		Assemble: func(results []runner.Result) (Renderer, error) {
			out := &FigTraceResult{Scale: scale}
			for i := range results {
				if err := results[i].Err; err != nil {
					return nil, err
				}
				pt, ok := results[i].Value.(*TracePointResult)
				if !ok {
					return nil, fmt.Errorf("figtrace: point %s: unexpected result type %T",
						results[i].Key, results[i].Value)
				}
				out.Points = append(out.Points, *pt)
			}
			return out, nil
		},
	}
}

// Render prints one row per workload: the emit→replay round trip.
func (r *FigTraceResult) Render() string {
	t := report.NewTable(
		"Trace — emit each built-in workload, replay its trace, compare reports",
		"workload", "ranks", "ops", "trace size", "sha256", "round trip", "runtime", "B required")
	for _, p := range r.Points {
		rt := "byte-identical"
		if !p.Identical {
			rt = "DIVERGED"
		}
		t.AddRow(p.Workload,
			fmt.Sprintf("%d", p.Ranks),
			fmt.Sprintf("%d", p.Ops),
			fmt.Sprintf("%d B", p.TraceBytes),
			p.TraceSHA[:12],
			rt,
			report.Seconds(p.Runtime),
			report.Rate(p.RequiredBW))
	}
	return t.Render()
}

// TraceReplayResult is a replayed external trace: the parsed header plus
// the report the simulated cluster produced for it.
type TraceReplayResult struct {
	Name    string
	App     string
	Ranks   int
	Ops     int
	Skipped int
	Report  *tmio.Report
}

// TraceReplayExperiment wraps one trace file as a single-point experiment:
// parse it, replay it on the simulated cluster, and report the measured
// bandwidth requirement. The point's cache identity includes the SHA-256
// of the raw trace bytes, so a cached result is served only for the exact
// same trace content — any byte change re-runs the point.
func TraceReplayExperiment(name string, raw []byte, scale Scale) (*Experiment, error) {
	parsed, err := trace.Parse(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	pcfg := pointConfig{
		Fig:      "trace-replay",
		Scale:    scale.String(),
		Workload: "trace:" + name,
		Ranks:    parsed.Ranks,
		TraceSHA: hex.EncodeToString(sum[:]),
	}
	return &Experiment{
		Fig: "trace-replay",
		Points: []runner.Point{{
			Key:    fmt.Sprintf("trace-replay/%s/%s", scale.String(), name),
			Config: pcfg,
			New:    func() any { return new(tmio.Report) },
			Run: func(context.Context) (any, error) {
				e := des.NewEngine(1)
				w := mpi.NewWorld(e, mpi.Config{Size: parsed.Ranks, RanksPerNode: parsed.RanksPerNode})
				fs := pfs.New(e, pfs.LichtenbergConfig())
				sys := mpiio.NewSystem(w, fs, adio.Config{})
				tr := tmio.Attach(sys, tmio.Config{})
				if err := w.Run(trace.ReplayMain(sys, parsed)); err != nil {
					return nil, err
				}
				return tr.Report(), nil
			},
		}},
		Assemble: func(results []runner.Result) (Renderer, error) {
			rep, err := reportAt(results, 0)
			if err != nil {
				return nil, fmt.Errorf("trace-replay %s: %w", name, err)
			}
			return &TraceReplayResult{
				Name: name, App: parsed.App,
				Ranks: parsed.Ranks, Ops: parsed.Ops(), Skipped: parsed.Skipped,
				Report: rep,
			}, nil
		},
	}, nil
}

// Render prints the replayed trace's bandwidth analysis.
func (r *TraceReplayResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Trace replay — %s (app %q, %d ranks, %d ops, %d skipped)",
			r.Name, r.App, r.Ranks, r.Ops, r.Skipped),
		"runtime", "B required", "sync ops", "async ops", "bytes written", "bytes read")
	t.AddRow(
		report.Seconds(r.Report.Runtime),
		report.Rate(r.Report.RequiredBandwidth),
		fmt.Sprintf("%d", r.Report.SyncOps),
		fmt.Sprintf("%d", r.Report.AsyncOps),
		report.Bytes(r.Report.TotalBytes[pfs.Write]),
		report.Bytes(r.Report.TotalBytes[pfs.Read]))
	return t.Render()
}
