package experiments

import (
	"context"
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/faults"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// figFaultsScenario is the injected degradation sequence of the fault
// experiment: an outage, a deep capacity degradation, a server stall, and
// a long transient-error window, all on the write channel, plus a small
// seeded-random batch. The scripted windows sit well inside the phased
// run so every kind demonstrably hits traffic.
func figFaultsScenario(seed int64) *faults.Config {
	return &faults.Config{
		Windows: []faults.Window{
			{Kind: faults.IOError, Class: pfs.Write,
				Start: des.Time(des.Second), Dur: 6 * des.Second, Prob: 0.25},
			{Kind: faults.Outage, Class: pfs.Write,
				Start: des.Time(2500 * des.Millisecond), Dur: 400 * des.Millisecond},
			{Kind: faults.Degrade, Class: pfs.Write,
				Start: des.Time(4500 * des.Millisecond), Dur: des.Second, Factor: 0.25},
			{Kind: faults.ServerStall, Class: pfs.Write,
				Start: des.Time(6 * des.Second), Dur: des.Second, Factor: 6},
		},
		Random: &faults.RandomConfig{
			Seed:    seed,
			Count:   3,
			Horizon: 8 * des.Second,
			MeanDur: 300 * des.Millisecond,
		},
	}
}

// FigFaultsResult compares a phased run on healthy hardware against the
// identical run under the injected fault scenario: the bandwidth-
// requirement curve, the retry/fault accounting, and the limiter's
// recovery after the windows close.
type FigFaultsResult struct {
	Scale   Scale
	Seed    int64
	Windows []faults.Window
	Clean   *tmio.Report
	Faulted *tmio.Report
}

// FigFaults runs the fault scenario at the default fault seed.
func FigFaults(scale Scale) (*FigFaultsResult, error) {
	return FigFaultsWith(context.Background(), scale, nil)
}

// FigFaultsWith runs the experiment's points through r.
func FigFaultsWith(ctx context.Context, scale Scale, r *runner.Runner) (*FigFaultsResult, error) {
	res, err := RunExperiment(ctx, r, FigFaultsExperiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*FigFaultsResult), nil
}

// FigFaultsExperiment enumerates the fault experiment at fault seed 1.
func FigFaultsExperiment(scale Scale) *Experiment {
	return FigFaultsExperimentSeeded(scale, 1)
}

// FigFaultsExperimentSeeded enumerates the clean and faulted runs; seed
// drives the scenario's random window batch (and nothing else — the
// engine seed is fixed, so two invocations with the same fault seed are
// byte-for-byte identical).
func FigFaultsExperimentSeeded(scale Scale, seed int64) *Experiment {
	if seed == 0 {
		seed = 1
	}
	fs := pfs.Config{WriteCapacity: 4e9, ReadCapacity: 4e9}
	ranks := 4
	phases := 10
	if scale == Paper {
		ranks, phases = 16, 12
	}
	base := spec{
		ranks:    ranks,
		seed:     7,
		strategy: tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1},
		agent:    stormAgent(),
		tracer:   tmio.Config{DisableOverhead: true},
		fsCfg:    &fs,
	}
	wl := workloads.PhasedConfig{
		Phases:         phases,
		BytesPerPhase:  256 << 20,
		Compute:        des.Second,
		JitterFraction: 0.05,
	}
	scenario := figFaultsScenario(seed)

	point := func(sp spec, tag string) runner.Point {
		pcfg := sp.config("faults", scale, "phased")
		pcfg.Phased = &wl
		key := fmt.Sprintf("figfaults/%s/s%d/%s", scale.String(), seed, tag)
		return simPoint(key, pcfg, sp,
			func(sys *mpiio.System) func(*mpi.Rank) { return workloads.PhasedMain(sys, wl) })
	}
	faulted := base
	faulted.faults = scenario

	return &Experiment{
		Fig:  "faults",
		Seed: seed,
		Points: []runner.Point{
			point(base, "clean"),
			point(faulted, "faulted"),
		},
		Assemble: func(results []runner.Result) (Renderer, error) {
			clean, err := reportAt(results, 0)
			if err != nil {
				return nil, fmt.Errorf("figfaults: clean: %w", err)
			}
			fr, err := reportAt(results, 1)
			if err != nil {
				return nil, fmt.Errorf("figfaults: faulted: %w", err)
			}
			// Re-resolve the window list (scripted + generated) the way the
			// run did, without touching a live engine.
			inj := faults.New(des.NewEngine(1), nil, *scenario)
			return &FigFaultsResult{
				Scale:   scale,
				Seed:    seed,
				Windows: inj.Windows(),
				Clean:   clean,
				Faulted: fr,
			}, nil
		},
	}
}

// lastLimit returns the final applied-limit value of a run (0 when no
// limit was ever derived) and when it was derived.
func lastLimit(rep *tmio.Report) (float64, des.Time) {
	var v float64
	var at des.Time
	for _, ph := range rep.BLPhases {
		if ph.Start >= at {
			at = ph.Start
			v = ph.Value
		}
	}
	return v, at
}

// Check asserts the scenario's invariants: faults were hit (nonzero
// retries, tainted phases), and the limiter recovered — a fresh limit was
// derived from a clean phase after the last fault window closed, within a
// factor of three of the clean run's final limit. cmd/iosweep's
// -check-faults flag calls it.
func (r *FigFaultsResult) Check() error {
	if r.Faulted.Retries == 0 {
		return fmt.Errorf("figfaults: no transient-error retries under an IOError window")
	}
	if r.Faulted.FaultPhases == 0 {
		return fmt.Errorf("figfaults: no phase was marked faulty")
	}
	var lastEnd des.Time
	for _, w := range r.Windows {
		if w.End() > lastEnd {
			lastEnd = w.End()
		}
	}
	cleanLimit, _ := lastLimit(r.Clean)
	faultLimit, at := lastLimit(r.Faulted)
	if cleanLimit <= 0 || faultLimit <= 0 {
		return fmt.Errorf("figfaults: missing applied limits (clean %g, faulted %g)", cleanLimit, faultLimit)
	}
	if at < lastEnd {
		return fmt.Errorf("figfaults: no limit derived after the last fault window (last at %v, windows end %v)", at, lastEnd)
	}
	if ratio := faultLimit / cleanLimit; ratio < 1.0/3 || ratio > 3 {
		return fmt.Errorf("figfaults: recovered limit %g diverged from clean limit %g (ratio %.2f)", faultLimit, cleanLimit, ratio)
	}
	return nil
}

// Render prints the clean-vs-faulted comparison and the window list.
func (r *FigFaultsResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Faults — phased workload under injected degradation (fault seed %d)", r.Seed),
		"run", "runtime", "B required", "final B_L", "retries", "exhausted", "fault phases")
	row := func(name string, rep *tmio.Report) {
		limit, _ := lastLimit(rep)
		t.AddRow(name,
			report.Seconds(rep.Runtime),
			report.Rate(rep.RequiredBandwidth),
			report.Rate(limit),
			fmt.Sprintf("%d", rep.Retries),
			fmt.Sprintf("%d", rep.RetriesExhausted),
			fmt.Sprintf("%d", rep.FaultPhases),
		)
	}
	row("clean", r.Clean)
	row("faulted", r.Faulted)
	out := t.Render()
	out += "Injected windows:\n"
	for _, w := range r.Windows {
		extra := ""
		switch w.Kind {
		case faults.Degrade, faults.ServerStall, faults.Straggler:
			extra = fmt.Sprintf(" factor %.2f", w.Factor)
		case faults.IOError:
			extra = fmt.Sprintf(" prob %.2f", w.Prob)
		}
		out += fmt.Sprintf("  %-12s %-5s %v + %v%s\n",
			w.Kind, w.Class, w.Start, w.Dur, extra)
	}
	out += "Tainted phases derive no limit; the first clean phase recovers it.\n"
	return out
}
