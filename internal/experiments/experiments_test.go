package experiments

import (
	"context"
	"strings"
	"testing"

	"iobehind/internal/runner"
	"iobehind/internal/tmio"
)

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Paper.String() != "paper" {
		t.Fatal("scale names")
	}
}

func TestByFigRegistry(t *testing.T) {
	// Every advertised figure id resolves, shared figures resolve to the
	// same canonical experiment, and point keys are unique across the
	// whole suite (the cache relies on that).
	seen := map[string]string{}
	for _, id := range append(append([]string{}, FigOrder...), "2", "6") {
		exp, ok := ByFig(id, Quick)
		if !ok {
			t.Fatalf("figure %s missing", id)
		}
		if len(exp.Points) == 0 || exp.Assemble == nil {
			t.Fatalf("figure %s: empty experiment", id)
		}
		for _, p := range exp.Points {
			if p.Key == "" || p.Run == nil {
				t.Fatalf("figure %s: malformed point %+v", id, p.Key)
			}
			// Aliased ids ("2"→"1", "6"→"5") legitimately re-enumerate the
			// same keys; distinct experiments must not collide.
			if prev, dup := seen[p.Key]; dup && prev != exp.Fig {
				t.Fatalf("point key %q shared by experiments %s and %s", p.Key, prev, exp.Fig)
			}
			seen[p.Key] = exp.Fig
		}
	}
	if _, ok := ByFig("12", Quick); ok {
		t.Fatal("figure 12 does not exist in the paper's evaluation")
	}
	shared, _ := ByFig("2", Quick)
	canon, _ := ByFig("1", Quick)
	if shared.Fig != canon.Fig {
		t.Fatalf("fig 2 canonical id = %s", shared.Fig)
	}
}

func TestFig04ParallelMatchesSerial(t *testing.T) {
	serial, err := Fig04(Quick)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig04With(context.Background(), Quick, runner.New(runner.Options{Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Fatal("fig04 parallel render differs from serial")
	}
}

func TestFig01QuickShape(t *testing.T) {
	res, err := Fig01(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Base.Jobs) != 8 || len(res.Limited.Jobs) != 8 {
		t.Fatalf("jobs: %d/%d", len(res.Base.Jobs), len(res.Limited.Jobs))
	}
	if res.Limited.LimitToggles == 0 {
		t.Fatal("limiting never engaged")
	}
	// At least half of the sync jobs profit from the spared bandwidth.
	improved := 0
	for i, j := range res.Limited.Jobs {
		if !j.Async && j.Runtime() < res.Base.Jobs[i].Runtime() {
			improved++
		}
	}
	if improved < 4 {
		t.Fatalf("only %d sync jobs improved", improved)
	}
	out := res.Render()
	for _, want := range []string{"Fig. 1", "Fig. 2", "makespan", "job 4 (async)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig05QuickShape(t *testing.T) {
	res, err := Fig05(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 4 rank counts × 2 runs
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's bound: tracing overhead below 9% of the runtime.
	if s := res.MaxOverheadShare(); s > 9 {
		t.Fatalf("overhead share %v%% exceeds 9%%", s)
	}
	// Required bandwidth grows with rank count.
	small, large := res.RequiredBandwidthGrowth()
	if large <= small {
		t.Fatalf("required bandwidth did not grow: %v -> %v", small, large)
	}
	// Runtime grows with rank count (the Fig. 5 curve shape).
	first, last := res.Rows[0].Report, res.Rows[len(res.Rows)-1].Report
	if last.Runtime <= first.Runtime {
		t.Fatalf("runtime did not grow: %v -> %v", first.Runtime, last.Runtime)
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 5") || !strings.Contains(out, "Fig. 6") {
		t.Fatalf("render:\n%s", out)
	}
	// Fig. 6 property: peri overhead stays below 0.1%.
	for _, row := range res.Rows {
		if d := row.Report.Distribution(); d.OverheadPeri > 0.1 {
			t.Fatalf("peri overhead %v%% at ranks=%d", d.OverheadPeri, row.Ranks)
		}
	}
}

func TestFig07QuickShape(t *testing.T) {
	res, err := Fig07(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 2 rank counts × 6 runs
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Limited runs exploit the compute phases more than unlimited ones.
	direct := res.MeanExploit(tmio.Direct)
	upOnly := res.MeanExploit(tmio.UpOnly)
	none := res.MeanExploit(tmio.None)
	if direct <= none || upOnly <= none {
		t.Fatalf("exploit: direct=%v upOnly=%v none=%v", direct, upOnly, none)
	}
	if !strings.Contains(res.Render(), "Fig. 7") {
		t.Fatal("render title")
	}
}

func TestFig08And09QuickShape(t *testing.T) {
	burst, err := Fig08(Quick)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Fig09(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8: unthrottled bursts reach far above the requirement.
	if burst.T.Max() < 5*burst.Report.RequiredBandwidth {
		t.Fatalf("burst T peak %v vs required %v", burst.T.Max(), burst.Report.RequiredBandwidth)
	}
	// Fig. 9: once the limiter is active, per-rank throughput collapses
	// toward B_L instead of bursting at file-system speed.
	if limited.ThrottledPeak() >= burst.BurstPeak()/10 {
		t.Fatalf("limited throttled peak %v not far below burst peak %v",
			limited.ThrottledPeak(), burst.BurstPeak())
	}
	if len(limited.BL.Points) == 0 || limited.Report.FirstLimitAt == 0 {
		t.Fatal("no limit evidence in Fig. 9 run")
	}
	if burst.Report.FirstLimitAt != 0 {
		t.Fatal("Fig. 8 run should never limit")
	}
	out := limited.Render()
	for _, want := range []string{"BL peak", "limit first applied", "exploit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig10QuickShape(t *testing.T) {
	res, err := Fig10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	up := res.UpOnly.Report.Distribution().ExploitTotal()
	none := res.None.Report.Distribution().ExploitTotal()
	if up <= 2*none {
		t.Fatalf("exploit: up-only %v should far exceed none %v", up, none)
	}
	if !strings.Contains(res.Render(), "speedup") {
		t.Fatal("render")
	}
}

func TestFig11QuickShape(t *testing.T) {
	res, err := Fig11(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 { // 2 rank counts × 8 runs
		t.Fatalf("rows = %d", len(res.Rows))
	}
	exploit := res.ExploitByStrategy()
	for _, strat := range []tmio.Strategy{tmio.Direct, tmio.UpOnly, tmio.Adaptive} {
		if exploit[strat] <= exploit[tmio.None] {
			t.Fatalf("%v exploit %v not above none %v", strat, exploit[strat], exploit[tmio.None])
		}
	}
	if !strings.Contains(res.Render(), "Fig. 11") {
		t.Fatal("render")
	}
}

func TestFig13QuickShape(t *testing.T) {
	res, err := Fig13(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	// The unlimited run bursts; the limited ones are flattened once their
	// limiters engage.
	unlimited := res.Runs[3]
	for _, run := range res.Runs[:3] {
		if run.ThrottledPeak() >= unlimited.BurstPeak()/5 {
			t.Fatalf("%s throttled peak %v not below unlimited burst %v",
				run.Name, run.ThrottledPeak(), unlimited.BurstPeak())
		}
	}
	if !strings.Contains(res.Render(), "no limit") {
		t.Fatal("render")
	}
}

func TestFig14QuickShape(t *testing.T) {
	res, err := Fig14(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// The noisy file system causes visible waiting: the paper's point is
	// that the limit is not reached due to I/O variation.
	d := res.Report.Distribution()
	if d.AsyncWriteLost+d.AsyncReadLost <= 0 {
		t.Fatal("no waiting despite file-system noise")
	}
	if res.Report.FirstLimitAt == 0 {
		t.Fatal("limit never applied")
	}
}

func TestFig04WorkedExample(t *testing.T) {
	res, err := Fig04(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	// The peak region sums all three ranks: 30+20+50 = 100 MB/s.
	if !strings.Contains(out, "B = max B_r = 100.00 MB/s") {
		t.Fatalf("render:\n%s", out)
	}
	// Five regions rendered.
	if !strings.Contains(out, "region") || !strings.Contains(out, "5") {
		t.Fatalf("regions missing:\n%s", out)
	}
}

func TestFig03WindowsTable(t *testing.T) {
	res, err := Fig03(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Δt (required)") || !strings.Contains(out, "Δt° (actual)") {
		t.Fatalf("render:\n%s", out)
	}
	// Eight phases tabulated for rank 0.
	var rank0 int
	for _, ph := range res.Report.BPhases {
		if ph.Rank == 0 {
			rank0++
		}
	}
	if rank0 != 8 {
		t.Fatalf("rank-0 phases = %d", rank0)
	}
	// The actual I/O times vary (noise) while the required windows stay
	// near the 1 s compute phase.
	var minA, maxA float64
	first := true
	for _, ph := range res.Report.TPhases {
		if ph.Rank != 0 {
			continue
		}
		d := ph.End.Sub(ph.Start).Seconds()
		if first || d < minA {
			minA = d
		}
		if first || d > maxA {
			maxA = d
		}
		first = false
	}
	if maxA < 1.2*minA {
		t.Fatalf("Δt° did not vary: %v..%v", minA, maxA)
	}
}
