package experiments

import (
	"context"
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// Fig03Result makes the paper's Fig. 3 executable: rank 0 performing
// asynchronous I/O during its computational phases, with the required
// window Δt (submission → matching wait) next to the actual I/O time Δt°
// for every phase. The figure's point — Δt is steady (tied to the compute
// phase) while Δt° varies with file-system conditions — shows directly in
// the table when the run uses a noisy file system.
type Fig03Result struct {
	Report *tmio.Report
}

// Fig03 traces a small phased application on a noisy file system and
// tabulates rank 0's windows.
func Fig03(scale Scale) (*Fig03Result, error) {
	return Fig03With(context.Background(), scale, nil)
}

// Fig03With runs the experiment's single point through r.
func Fig03With(ctx context.Context, scale Scale, r *runner.Runner) (*Fig03Result, error) {
	res, err := RunExperiment(ctx, r, Fig03Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*Fig03Result), nil
}

// Fig03Experiment enumerates the (single) traced run behind Fig. 3.
func Fig03Experiment(scale Scale) *Experiment {
	fs := pfs.Config{
		WriteCapacity: 4e9,
		ReadCapacity:  4e9,
		Noise: &pfs.NoiseConfig{
			Interval:  des.Duration(500 * des.Millisecond),
			Amplitude: 0.6,
		},
	}
	_ = scale // the example is fixed-size; it runs in milliseconds
	sp := spec{
		ranks:  4,
		seed:   3,
		agent:  stormAgent(),
		tracer: tmio.Config{DisableOverhead: true},
		fsCfg:  &fs,
	}
	cfg := workloads.PhasedConfig{
		Phases:         8,
		BytesPerPhase:  256 << 20,
		Compute:        des.Second,
		JitterFraction: 0.05,
	}
	pcfg := sp.config("3", scale, "phased")
	pcfg.Phased = &cfg
	point := simPoint("fig03/"+scale.String(), pcfg, sp,
		func(sys *mpiio.System) func(*mpi.Rank) { return workloads.PhasedMain(sys, cfg) })
	return &Experiment{
		Fig:    "3",
		Points: []runner.Point{point},
		Assemble: func(results []runner.Result) (Renderer, error) {
			rep, err := reportAt(results, 0)
			if err != nil {
				return nil, fmt.Errorf("fig03: %w", err)
			}
			return &Fig03Result{Report: rep}, nil
		},
	}
}

// Render prints rank 0's per-phase windows: Δt (required) vs Δt° (actual).
func (r *Fig03Result) Render() string {
	t := report.NewTable(
		"Fig. 3 — rank 0: required windows Δt vs actual I/O times Δt°",
		"phase", "Δt (required)", "Δt° (actual)", "B_0j", "T_0j")
	tPhases := map[int]struct {
		dur des.Duration
		val float64
	}{}
	for _, ph := range r.Report.TPhases {
		if ph.Rank == 0 {
			tPhases[ph.Index] = struct {
				dur des.Duration
				val float64
			}{ph.End.Sub(ph.Start), ph.Value}
		}
	}
	for _, ph := range r.Report.BPhases {
		if ph.Rank != 0 {
			continue
		}
		actual := tPhases[ph.Index]
		t.AddRow(
			fmt.Sprintf("%d", ph.Index),
			report.Seconds(ph.End.Sub(ph.Start)),
			report.Seconds(actual.dur),
			report.Rate(ph.Value),
			report.Rate(actual.val),
		)
	}
	out := t.Render()
	out += "Δt follows the compute phase; Δt° varies with file-system load.\n"
	return out
}
