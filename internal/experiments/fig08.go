package experiments

import (
	"fmt"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/report"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// SeriesResult is a single traced run rendered as its application-level
// time series T, B, and (when limited) B_L — the format of Figs. 8, 9, 10,
// 13 and 14.
type SeriesResult struct {
	Name     string
	Strategy tmio.StrategyConfig
	Report   *tmio.Report
	T        *metrics.Series
	B        *metrics.Series
	BL       *metrics.Series
}

func newSeriesResult(name string, strat tmio.StrategyConfig, rep *tmio.Report) *SeriesResult {
	return &SeriesResult{
		Name:     name,
		Strategy: strat,
		Report:   rep,
		T:        rep.TSeries(),
		B:        rep.BSeries(),
		BL:       rep.BLSeries(),
	}
}

// ThrottledPeak returns the highest rank-level throughput among phases
// from index 2 on — after the limiter has taken effect. (The first phase
// always bursts: no limit exists before the first wait, which is what the
// purple "limit starts" line in the paper's figures marks.)
func (s *SeriesResult) ThrottledPeak() float64 {
	var max float64
	for _, ph := range s.Report.TPhases {
		if ph.Index >= 2 && ph.Value > max {
			max = ph.Value
		}
	}
	return max
}

// BurstPeak returns the highest rank-level throughput across all phases.
func (s *SeriesResult) BurstPeak() float64 {
	var max float64
	for _, ph := range s.Report.TPhases {
		if ph.Value > max {
			max = ph.Value
		}
	}
	return max
}

// Render prints the run's series as sparklines plus the key figures.
func (s *SeriesResult) Render() string {
	var b strings.Builder
	end := des.Time(s.Report.Runtime)
	fmt.Fprintf(&b, "== %s (%s) ==\n", s.Name, s.Strategy.Label())
	fmt.Fprintf(&b, "runtime %-10s required bandwidth B = %s\n",
		report.Seconds(s.Report.AppTime), report.Rate(s.Report.RequiredBandwidth))
	if s.Report.FirstLimitAt != 0 {
		fmt.Fprintf(&b, "limit first applied at %.1f s\n", s.Report.FirstLimitAt.Seconds())
	}
	fmt.Fprintf(&b, "T  peak %-12s |%s|\n", report.Rate(s.T.Max()), report.Sparkline(s.T, 0, end, 60))
	fmt.Fprintf(&b, "B  peak %-12s |%s|\n", report.Rate(s.B.Max()), report.Sparkline(s.B, 0, end, 60))
	if len(s.BL.Points) > 0 {
		fmt.Fprintf(&b, "BL peak %-12s |%s|\n", report.Rate(s.BL.Max()), report.Sparkline(s.BL, 0, end, 60))
	}
	d := s.Report.Distribution()
	fmt.Fprintf(&b, "exploit %s  lost %s  visible I/O %s\n",
		report.Pct(d.ExploitTotal()),
		report.Pct(d.AsyncWriteLost+d.AsyncReadLost),
		report.Pct(d.VisibleIO()))
	return b.String()
}

// wacommSeriesRun executes one WaComM++ run and wraps it as a series
// result.
func wacommSeriesRun(name string, ranks int, seed int64, strat tmio.StrategyConfig, cfg workloads.WacommConfig) (*SeriesResult, error) {
	st := build(spec{
		ranks:    ranks,
		seed:     seed,
		strategy: strat,
		agent:    stormAgent(),
		tracer:   tmio.Config{DisableOverhead: true},
	})
	rep, err := st.execute(workloads.WacommMain(st.sys, cfg))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return newSeriesResult(name, strat, rep), nil
}

func wacommSeriesConfig(scale Scale) (ranks int, cfg workloads.WacommConfig) {
	if scale == Paper {
		return 96, workloads.WacommConfig{}
	}
	return 16, workloads.WacommConfig{Particles: 400_000, Iterations: 10}
}

// Fig08 runs WaComM++ at 96 ranks without a bandwidth limit: the
// unthrottled bursts reach orders of magnitude above the requirement.
func Fig08(scale Scale) (*SeriesResult, error) {
	ranks, cfg := wacommSeriesConfig(scale)
	return wacommSeriesRun("Fig. 8 — WaComM++ 96 ranks, no limit", ranks, 8, tmio.StrategyConfig{}, cfg)
}

// Fig09 runs WaComM++ at 96 ranks with the up-only strategy: T follows the
// previous phase's B_L instead of bursting.
func Fig09(scale Scale) (*SeriesResult, error) {
	ranks, cfg := wacommSeriesConfig(scale)
	return wacommSeriesRun("Fig. 9 — WaComM++ 96 ranks, up-only",
		ranks, 8, tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1}, cfg)
}

// Fig10Result compares the 9216-rank WaComM++ run with the up-only
// strategy against the unrestricted run.
type Fig10Result struct {
	UpOnly *SeriesResult
	None   *SeriesResult
}

// Fig10 runs the large-scale WaComM++ comparison.
func Fig10(scale Scale) (*Fig10Result, error) {
	ranks, cfg := 9216, workloads.WacommConfig{}
	if scale == Quick {
		ranks = 256
		cfg = workloads.WacommConfig{Particles: 400_000, Iterations: 10}
	}
	up, err := wacommSeriesRun("Fig. 10 (top) — WaComM++ 9216 ranks, up-only",
		ranks, 10, tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1}, cfg)
	if err != nil {
		return nil, err
	}
	none, err := wacommSeriesRun("Fig. 10 (bottom) — WaComM++ 9216 ranks, no limit",
		ranks, 10, tmio.StrategyConfig{}, cfg)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{UpOnly: up, None: none}, nil
}

// Speedup returns the limited run's speedup over the unrestricted run in
// percent (the paper reports ≈11.6%).
func (r *Fig10Result) Speedup() float64 {
	return r.UpOnly.Report.Speedup(r.None.Report)
}

// Render prints both runs plus the comparison line.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString(r.UpOnly.Render())
	b.WriteString("\n")
	b.WriteString(r.None.Render())
	fmt.Fprintf(&b, "\nspeedup of the limited run: %.1f%% (%s vs %s); exploit %s vs %s\n",
		r.Speedup(),
		report.Seconds(r.UpOnly.Report.AppTime), report.Seconds(r.None.Report.AppTime),
		report.Pct(r.UpOnly.Report.Distribution().ExploitTotal()),
		report.Pct(r.None.Report.Distribution().ExploitTotal()))
	return b.String()
}
