package experiments

import (
	"context"
	"fmt"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/metrics"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// SeriesResult is a single traced run rendered as its application-level
// time series T, B, and (when limited) B_L — the format of Figs. 8, 9, 10,
// 13 and 14.
type SeriesResult struct {
	Name     string
	Strategy tmio.StrategyConfig
	Report   *tmio.Report
	T        *metrics.Series
	B        *metrics.Series
	BL       *metrics.Series
}

func newSeriesResult(name string, strat tmio.StrategyConfig, rep *tmio.Report) *SeriesResult {
	return &SeriesResult{
		Name:     name,
		Strategy: strat,
		Report:   rep,
		T:        rep.TSeries(),
		B:        rep.BSeries(),
		BL:       rep.BLSeries(),
	}
}

// ThrottledPeak returns the highest rank-level throughput among phases
// from index 2 on — after the limiter has taken effect. (The first phase
// always bursts: no limit exists before the first wait, which is what the
// purple "limit starts" line in the paper's figures marks.)
func (s *SeriesResult) ThrottledPeak() float64 {
	var max float64
	for _, ph := range s.Report.TPhases {
		if ph.Index >= 2 && ph.Value > max {
			max = ph.Value
		}
	}
	return max
}

// BurstPeak returns the highest rank-level throughput across all phases.
func (s *SeriesResult) BurstPeak() float64 {
	var max float64
	for _, ph := range s.Report.TPhases {
		if ph.Value > max {
			max = ph.Value
		}
	}
	return max
}

// Render prints the run's series as sparklines plus the key figures.
func (s *SeriesResult) Render() string {
	var b strings.Builder
	end := des.Time(s.Report.Runtime)
	fmt.Fprintf(&b, "== %s (%s) ==\n", s.Name, s.Strategy.Label())
	fmt.Fprintf(&b, "runtime %-10s required bandwidth B = %s\n",
		report.Seconds(s.Report.AppTime), report.Rate(s.Report.RequiredBandwidth))
	if s.Report.FirstLimitAt != 0 {
		fmt.Fprintf(&b, "limit first applied at %.1f s\n", s.Report.FirstLimitAt.Seconds())
	}
	fmt.Fprintf(&b, "T  peak %-12s |%s|\n", report.Rate(s.T.Max()), report.Sparkline(s.T, 0, end, 60))
	fmt.Fprintf(&b, "B  peak %-12s |%s|\n", report.Rate(s.B.Max()), report.Sparkline(s.B, 0, end, 60))
	if len(s.BL.Points) > 0 {
		fmt.Fprintf(&b, "BL peak %-12s |%s|\n", report.Rate(s.BL.Max()), report.Sparkline(s.BL, 0, end, 60))
	}
	d := s.Report.Distribution()
	fmt.Fprintf(&b, "exploit %s  lost %s  visible I/O %s\n",
		report.Pct(d.ExploitTotal()),
		report.Pct(d.AsyncWriteLost+d.AsyncReadLost),
		report.Pct(d.VisibleIO()))
	return b.String()
}

// wacommSeriesPoint enumerates one WaComM++ run destined to become a
// series result.
func wacommSeriesPoint(key, fig string, scale Scale, ranks int, seed int64,
	strat tmio.StrategyConfig, cfg workloads.WacommConfig) runner.Point {
	sp := spec{
		ranks:    ranks,
		seed:     seed,
		strategy: strat,
		agent:    stormAgent(),
		tracer:   tmio.Config{DisableOverhead: true},
	}
	return wacommPoint(key, fig, scale, sp, cfg)
}

// seriesAt wraps point i's report as the named series result, preserving
// the serial path's error wrapping ("<name>: <cause>").
func seriesAt(results []runner.Result, i int, name string, strat tmio.StrategyConfig) (*SeriesResult, error) {
	rep, err := reportAt(results, i)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return newSeriesResult(name, strat, rep), nil
}

// singleSeriesExperiment builds a one-point experiment rendering as a
// series result.
func singleSeriesExperiment(fig, name string, point runner.Point, strat tmio.StrategyConfig) *Experiment {
	return &Experiment{
		Fig:    fig,
		Points: []runner.Point{point},
		Assemble: func(results []runner.Result) (Renderer, error) {
			return seriesAt(results, 0, name, strat)
		},
	}
}

func wacommSeriesConfig(scale Scale) (ranks int, cfg workloads.WacommConfig) {
	if scale == Paper {
		return 96, workloads.WacommConfig{}
	}
	return 16, workloads.WacommConfig{Particles: 400_000, Iterations: 10}
}

// Fig08 runs WaComM++ at 96 ranks without a bandwidth limit: the
// unthrottled bursts reach orders of magnitude above the requirement.
func Fig08(scale Scale) (*SeriesResult, error) {
	return Fig08With(context.Background(), scale, nil)
}

// Fig08With runs the experiment's single point through r.
func Fig08With(ctx context.Context, scale Scale, r *runner.Runner) (*SeriesResult, error) {
	res, err := RunExperiment(ctx, r, Fig08Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*SeriesResult), nil
}

// Fig08Experiment enumerates the unthrottled 96-rank WaComM++ run.
func Fig08Experiment(scale Scale) *Experiment {
	ranks, cfg := wacommSeriesConfig(scale)
	strat := tmio.StrategyConfig{}
	point := wacommSeriesPoint("fig08/"+scale.String(), "8", scale, ranks, 8, strat, cfg)
	return singleSeriesExperiment("8", "Fig. 8 — WaComM++ 96 ranks, no limit", point, strat)
}

// Fig09 runs WaComM++ at 96 ranks with the up-only strategy: T follows the
// previous phase's B_L instead of bursting.
func Fig09(scale Scale) (*SeriesResult, error) {
	return Fig09With(context.Background(), scale, nil)
}

// Fig09With runs the experiment's single point through r.
func Fig09With(ctx context.Context, scale Scale, r *runner.Runner) (*SeriesResult, error) {
	res, err := RunExperiment(ctx, r, Fig09Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*SeriesResult), nil
}

// Fig09Experiment enumerates the up-only 96-rank WaComM++ run.
func Fig09Experiment(scale Scale) *Experiment {
	ranks, cfg := wacommSeriesConfig(scale)
	strat := tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1}
	point := wacommSeriesPoint("fig09/"+scale.String(), "9", scale, ranks, 8, strat, cfg)
	return singleSeriesExperiment("9", "Fig. 9 — WaComM++ 96 ranks, up-only", point, strat)
}

// Fig10Result compares the 9216-rank WaComM++ run with the up-only
// strategy against the unrestricted run.
type Fig10Result struct {
	UpOnly *SeriesResult
	None   *SeriesResult
}

// Fig10 runs the large-scale WaComM++ comparison serially.
func Fig10(scale Scale) (*Fig10Result, error) {
	return Fig10With(context.Background(), scale, nil)
}

// Fig10With runs the comparison's two points through r.
func Fig10With(ctx context.Context, scale Scale, r *runner.Runner) (*Fig10Result, error) {
	res, err := RunExperiment(ctx, r, Fig10Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*Fig10Result), nil
}

// Fig10Experiment enumerates the up-only and unrestricted runs.
func Fig10Experiment(scale Scale) *Experiment {
	ranks, cfg := 9216, workloads.WacommConfig{}
	if scale == Quick {
		ranks = 256
		cfg = workloads.WacommConfig{Particles: 400_000, Iterations: 10}
	}
	upStrat := tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1}
	noneStrat := tmio.StrategyConfig{}
	return &Experiment{
		Fig: "10",
		Points: []runner.Point{
			wacommSeriesPoint("fig10/"+scale.String()+"/up-only", "10", scale, ranks, 10, upStrat, cfg),
			wacommSeriesPoint("fig10/"+scale.String()+"/no-limit", "10", scale, ranks, 10, noneStrat, cfg),
		},
		Assemble: func(results []runner.Result) (Renderer, error) {
			up, err := seriesAt(results, 0, "Fig. 10 (top) — WaComM++ 9216 ranks, up-only", upStrat)
			if err != nil {
				return nil, err
			}
			none, err := seriesAt(results, 1, "Fig. 10 (bottom) — WaComM++ 9216 ranks, no limit", noneStrat)
			if err != nil {
				return nil, err
			}
			return &Fig10Result{UpOnly: up, None: none}, nil
		},
	}
}

// Speedup returns the limited run's speedup over the unrestricted run in
// percent (the paper reports ≈11.6%).
func (r *Fig10Result) Speedup() float64 {
	return r.UpOnly.Report.Speedup(r.None.Report)
}

// Render prints both runs plus the comparison line.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString(r.UpOnly.Render())
	b.WriteString("\n")
	b.WriteString(r.None.Render())
	fmt.Fprintf(&b, "\nspeedup of the limited run: %.1f%% (%s vs %s); exploit %s vs %s\n",
		r.Speedup(),
		report.Seconds(r.UpOnly.Report.AppTime), report.Seconds(r.None.Report.AppTime),
		report.Pct(r.UpOnly.Report.Distribution().ExploitTotal()),
		report.Pct(r.None.Report.Distribution().ExploitTotal()))
	return b.String()
}
