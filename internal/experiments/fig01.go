package experiments

import (
	"context"
	"fmt"
	"strings"

	"iobehind/internal/cluster"
	"iobehind/internal/des"
	"iobehind/internal/pfs"
	"iobehind/internal/report"
	"iobehind/internal/runner"
)

// ClusterResult covers Figs. 1 and 2: the eight-job scenario run once
// without restrictions and once with contention-only limiting of the
// asynchronous job.
type ClusterResult struct {
	Scale    Scale
	Base     *cluster.Result
	Limited  *cluster.Result
	BaseCfg  cluster.Config
	LimitCfg cluster.Config
}

// Fig01 runs the motivating cluster scenario serially.
func Fig01(scale Scale) (*ClusterResult, error) {
	return Fig01With(context.Background(), scale, nil)
}

// Fig01With runs the scenario's two points (no limit, contention-only
// limit) through r.
func Fig01With(ctx context.Context, scale Scale, r *runner.Runner) (*ClusterResult, error) {
	res, err := RunExperiment(ctx, r, Fig01Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*ClusterResult), nil
}

// clusterPoint wraps one multi-job scenario run as a cacheable point.
func clusterPoint(key string, scale Scale, cfg cluster.Config) runner.Point {
	cfgCopy := cfg
	return runner.Point{
		Key:    key,
		Config: pointConfig{Fig: "1", Scale: scale.String(), Workload: "cluster", Cluster: &cfgCopy},
		New:    func() any { return new(cluster.Result) },
		Run:    func(context.Context) (any, error) { return cluster.Run(cfg) },
	}
}

// Fig01Experiment enumerates the scenario's two independent runs.
func Fig01Experiment(scale Scale) *Experiment {
	baseCfg := scenario(scale, cluster.NoLimit)
	limitCfg := scenario(scale, cluster.LimitDuringContention)
	return &Experiment{
		Fig: "1",
		Points: []runner.Point{
			clusterPoint("fig01/"+scale.String()+"/base", scale, baseCfg),
			clusterPoint("fig01/"+scale.String()+"/limited", scale, limitCfg),
		},
		Assemble: func(results []runner.Result) (Renderer, error) {
			base, err := clusterAt(results, 0)
			if err != nil {
				return nil, fmt.Errorf("fig01 base: %w", err)
			}
			limited, err := clusterAt(results, 1)
			if err != nil {
				return nil, fmt.Errorf("fig01 limited: %w", err)
			}
			return &ClusterResult{
				Scale: scale, Base: base, Limited: limited,
				BaseCfg: baseCfg, LimitCfg: limitCfg,
			}, nil
		},
	}
}

// clusterAt extracts point i's scenario result.
func clusterAt(results []runner.Result, i int) (*cluster.Result, error) {
	if err := results[i].Err; err != nil {
		return nil, err
	}
	res, ok := results[i].Value.(*cluster.Result)
	if !ok {
		return nil, fmt.Errorf("point %s: unexpected result type %T", results[i].Key, results[i].Value)
	}
	return res, nil
}

func scenario(scale Scale, policy cluster.LimitPolicy) cluster.Config {
	cfg := cluster.DefaultScenario(policy)
	if scale == Quick {
		fs := pfs.Config{WriteCapacity: 12e9, ReadCapacity: 12e9}
		cfg.FS = &fs
		cfg.Nodes = 64
		for i := range cfg.Jobs {
			cfg.Jobs[i].Nodes = max(2, cfg.Jobs[i].Nodes/16)
			cfg.Jobs[i].Loops = 4
			cfg.Jobs[i].Arrival /= 2
		}
	}
	return cfg
}

// RenderFig1 prints the per-job runtimes of both policies (the Gantt data
// behind Fig. 1) plus the running-jobs series.
func (r *ClusterResult) RenderFig1() string {
	var b strings.Builder
	t := report.NewTable("Fig. 1 — job runtimes, without vs with contention-only limiting of the async job",
		"job", "nodes", "async", "runtime (no limit)", "runtime (limited)", "delta")
	for i := range r.Base.Jobs {
		base, lim := r.Base.Jobs[i], r.Limited.Jobs[i]
		delta := 100 * (lim.Runtime().Seconds() - base.Runtime().Seconds()) /
			base.Runtime().Seconds()
		t.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", base.Nodes),
			fmt.Sprintf("%v", base.Async),
			report.Seconds(base.Runtime()),
			report.Seconds(lim.Runtime()),
			fmt.Sprintf("%+.1f%%", delta),
		)
	}
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "makespan: %s -> %s; limit toggles: %d\n\n",
		report.Seconds(des.Duration(r.Base.Makespan)),
		report.Seconds(des.Duration(r.Limited.Makespan)),
		r.Limited.LimitToggles)
	horizon := r.Base.Makespan
	if r.Limited.Makespan > horizon {
		horizon = r.Limited.Makespan
	}
	for _, variant := range []struct {
		name string
		res  *cluster.Result
	}{{"without limit", r.Base}, {"with limit", r.Limited}} {
		rows := make([]report.GanttRow, len(variant.res.Jobs))
		for i, j := range variant.res.Jobs {
			label := fmt.Sprintf("job %d", i)
			if j.Async {
				label += "*"
			}
			rows[i] = report.GanttRow{Label: label, Start: j.Started, End: j.Ended}
		}
		b.WriteString(report.Gantt("job timeline ("+variant.name+"; * = async)",
			rows, horizon, 60))
	}
	return b.String()
}

// RenderFig2 prints the bandwidth-over-time distribution of both cases.
func (r *ClusterResult) RenderFig2() string {
	var b strings.Builder
	for _, variant := range []struct {
		name string
		res  *cluster.Result
	}{{"Without Limit", r.Base}, {"With Limit", r.Limited}} {
		fmt.Fprintf(&b, "== Fig. 2 — bandwidth distribution: %s ==\n", variant.name)
		end := variant.res.Makespan
		for i, s := range variant.res.Bandwidth {
			async := ""
			if r.Base.Jobs[i].Async {
				async = " (async)"
			}
			fmt.Fprintf(&b, "job %d%-8s peak %-12s |%s|\n",
				i, async, report.Rate(s.Max()), report.Sparkline(s, 0, end, 60))
		}
	}
	return b.String()
}

// Render prints both figures.
func (r *ClusterResult) Render() string {
	return r.RenderFig1() + "\n" + r.RenderFig2()
}
