package experiments

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"testing"

	"iobehind/internal/runner"
)

// TestResolveEveryBuiltinPoint walks every built-in experiment at quick
// scale and asserts each enumerated ref resolves — on what a remote
// worker would be: a fresh enumeration — to a point with the same key
// and, critically, the same SHA-256 cache key. Key equality is what
// makes remote execution sound: the worker computes exactly the point
// the submitter hashed.
func TestResolveEveryBuiltinPoint(t *testing.T) {
	for _, fig := range FigOrder {
		exp, ok := ByFig(fig, Quick)
		if !ok {
			t.Fatalf("figure %s missing", fig)
		}
		refs := ExperimentRefs(exp, Quick)
		if len(refs) != len(exp.Points) {
			t.Fatalf("figure %s: %d refs for %d points", fig, len(refs), len(exp.Points))
		}
		for i, ref := range refs {
			p, err := ResolvePoint(ref)
			if err != nil {
				t.Fatalf("resolve %s: %v", ref, err)
			}
			if p.Key != exp.Points[i].Key {
				t.Fatalf("ref %s resolved to key %q", ref, p.Key)
			}
			want, err := runner.CacheKey(exp.Points[i])
			if err != nil {
				t.Fatalf("cache key of %s: %v", exp.Points[i].Key, err)
			}
			got, err := runner.CacheKey(p)
			if err != nil {
				t.Fatalf("cache key of resolved %s: %v", ref, err)
			}
			if got != want {
				t.Fatalf("ref %s: resolved cache key %s != enumerated %s", ref, got, want)
			}
		}
	}
}

// TestResolveSeededFaults asserts the fault seed travels through the ref
// and reproduces the seeded enumeration, not the default one.
func TestResolveSeededFaults(t *testing.T) {
	exp := FigFaultsExperimentSeeded(Quick, 42)
	refs := ExperimentRefs(exp, Quick)
	for i, ref := range refs {
		if ref.FaultSeed != 42 {
			t.Fatalf("ref %d carries seed %d, want 42", i, ref.FaultSeed)
		}
		p, err := ResolvePoint(ref)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := runner.CacheKey(exp.Points[i])
		got, _ := runner.CacheKey(p)
		if got != want {
			t.Fatalf("seeded ref %s: cache key mismatch", ref)
		}
	}
}

// TestResolveRejectsSkew pins the integrity checks: unknown figures, bad
// scales, out-of-range indices, and key mismatches (the signature of a
// submitter/worker version skew) all refuse to resolve.
func TestResolveRejectsSkew(t *testing.T) {
	good := ExperimentRefs(Fig05Experiment(Quick), Quick)[0]
	bad := []PointRef{
		{Fig: "nope", Scale: "quick"},
		{Fig: "5", Scale: "medium"},
		{Fig: "5", Scale: "quick", Index: 10_000},
		{Fig: "5", Scale: "quick", Index: -1},
		func() PointRef { r := good; r.Key = "fig05/quick/ranks=999/run=0"; return r }(),
	}
	for _, ref := range bad {
		if _, err := ResolvePoint(ref); err == nil {
			t.Errorf("ResolvePoint(%+v) succeeded, want error", ref)
		}
	}
	if _, err := ResolvePoint(good); err != nil {
		t.Errorf("good ref failed: %v", err)
	}
}

// TestManifestConfigGobRoundTrip sends a point config through gob as an
// interface value — exactly what fabric lease messages do — and asserts
// the canonical JSON (hence the cache key) survives. Without the
// gob.Register in registry.go the encode fails outright.
func TestManifestConfigGobRoundTrip(t *testing.T) {
	exp := Fig05Experiment(Quick)
	type envelope struct{ Config any }
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{Config: exp.Points[0].Config}); err != nil {
		t.Fatalf("gob encode of manifest config: %v", err)
	}
	var out envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode of manifest config: %v", err)
	}
	want, err := json.Marshal(exp.Points[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(out.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("config JSON changed across gob transport:\n got %s\nwant %s", got, want)
	}
}

// TestBuildPlanMatchesSweepEnumeration asserts the plan dedupes aliased
// figures and its flat refs line up index-for-index with its points.
func TestBuildPlanMatchesSweepEnumeration(t *testing.T) {
	plan, err := BuildPlan([]string{"1", "2", "5", "6"}, Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) != 2 {
		t.Fatalf("plan has %d entries, want 2 (1+2 and 5+6 dedupe)", len(plan.Entries))
	}
	if len(plan.Points) != len(plan.Refs) {
		t.Fatalf("%d points vs %d refs", len(plan.Points), len(plan.Refs))
	}
	for i, ref := range plan.Refs {
		if ref.Key != plan.Points[i].Key {
			t.Fatalf("ref %d key %q != point key %q", i, ref.Key, plan.Points[i].Key)
		}
	}
	all, err := BuildPlan(nil, Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Entries) != len(FigOrder) {
		t.Fatalf("nil ids → %d entries, want every experiment (%d)", len(all.Entries), len(FigOrder))
	}
	if _, err := BuildPlan([]string{"17"}, Quick, 0); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
