package experiments

import (
	"context"
	"fmt"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/region"
	"iobehind/internal/report"
	"iobehind/internal/runner"
)

// Fig04Result reproduces the paper's worked example of Fig. 4: three ranks
// with overlapping required-bandwidth phases aggregated into five regions
// by the Eq. 3 sweep. The figure is conceptual, so the experiment is exact
// rather than simulated — it exists to make the aggregation semantics
// executable and inspectable.
type Fig04Result struct {
	Phases []region.Phase
	Series *seriesWrap
}

// seriesWrap pairs the swept series with the sample instants used for
// rendering.
type seriesWrap struct {
	s   interface{ At(des.Time) float64 }
	end des.Time
}

// Fig04 builds the Fig. 4 example. Scale is ignored: the example is fixed.
func Fig04(scale Scale) (*Fig04Result, error) {
	return Fig04With(context.Background(), scale, nil)
}

// Fig04With runs the worked example's single point through r.
func Fig04With(ctx context.Context, scale Scale, r *runner.Runner) (*Fig04Result, error) {
	res, err := RunExperiment(ctx, r, Fig04Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*Fig04Result), nil
}

// fig04Payload is the cacheable result of the exact aggregation point.
type fig04Payload struct {
	Phases []region.Phase
}

// Fig04Experiment enumerates the exact Eq. 3 aggregation as one point.
func Fig04Experiment(scale Scale) *Experiment {
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }
	// The figure's layout: B_{1,0} starts first, then B_{2,0}, then
	// B_{0,0}; they end in the same order, producing five regions.
	phases := []region.Phase{
		{Rank: 1, Index: 0, Start: sec(1), End: sec(6), Value: 30e6},
		{Rank: 2, Index: 0, Start: sec(2), End: sec(8), Value: 20e6},
		{Rank: 0, Index: 0, Start: sec(3), End: sec(10), Value: 50e6},
	}
	point := runner.Point{
		Key:    "fig04/" + scale.String(),
		Config: pointConfig{Fig: "4", Scale: scale.String(), Workload: "exact", Phases: phases},
		New:    func() any { return new(fig04Payload) },
		Run: func(context.Context) (any, error) {
			return &fig04Payload{Phases: phases}, nil
		},
	}
	return &Experiment{
		Fig:    "4",
		Points: []runner.Point{point},
		Assemble: func(results []runner.Result) (Renderer, error) {
			if err := results[0].Err; err != nil {
				return nil, fmt.Errorf("fig04: %w", err)
			}
			p, ok := results[0].Value.(*fig04Payload)
			if !ok {
				return nil, fmt.Errorf("point %s: unexpected result type %T", results[0].Key, results[0].Value)
			}
			return &Fig04Result{
				Phases: p.Phases,
				Series: &seriesWrap{s: region.Sweep("B_r", p.Phases), end: sec(11)},
			}, nil
		},
	}
}

// Render prints the rank phases and the resulting regions.
func (r *Fig04Result) Render() string {
	var b strings.Builder
	t := report.NewTable("Fig. 4 — rank-level required bandwidths",
		"rank", "phase", "ts", "te", "B_ij")
	for _, ph := range r.Phases {
		t.AddRow(
			fmt.Sprintf("%d", ph.Rank),
			fmt.Sprintf("%d", ph.Index),
			fmt.Sprintf("%.0f s", ph.Start.Seconds()),
			fmt.Sprintf("%.0f s", ph.End.Seconds()),
			report.Rate(ph.Value),
		)
	}
	b.WriteString(t.Render())

	rt := report.NewTable("Fig. 4 — the five overlap regions (Eq. 3)",
		"region", "from", "B_r")
	// Region boundaries are the sorted start/end times.
	boundaries := []float64{1, 2, 3, 6, 8}
	for i, at := range boundaries {
		v := r.Series.s.At(des.Time(des.DurationOf(at)) + 1)
		rt.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f s", at),
			report.Rate(v),
		)
	}
	b.WriteString(rt.Render())
	max := 0.0
	for _, at := range boundaries {
		if v := r.Series.s.At(des.Time(des.DurationOf(at)) + 1); v > max {
			max = v
		}
	}
	fmt.Fprintf(&b, "application-level required bandwidth B = max B_r = %s\n",
		report.Rate(max))
	return b.String()
}
