package experiments

import (
	"fmt"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/region"
	"iobehind/internal/report"
)

// Fig04Result reproduces the paper's worked example of Fig. 4: three ranks
// with overlapping required-bandwidth phases aggregated into five regions
// by the Eq. 3 sweep. The figure is conceptual, so the experiment is exact
// rather than simulated — it exists to make the aggregation semantics
// executable and inspectable.
type Fig04Result struct {
	Phases []region.Phase
	Series *seriesWrap
}

// seriesWrap pairs the swept series with the sample instants used for
// rendering.
type seriesWrap struct {
	s   interface{ At(des.Time) float64 }
	end des.Time
}

// Fig04 builds the Fig. 4 example. Scale is ignored: the example is fixed.
func Fig04(Scale) (*Fig04Result, error) {
	sec := func(x float64) des.Time { return des.Time(des.DurationOf(x)) }
	// The figure's layout: B_{1,0} starts first, then B_{2,0}, then
	// B_{0,0}; they end in the same order, producing five regions.
	phases := []region.Phase{
		{Rank: 1, Index: 0, Start: sec(1), End: sec(6), Value: 30e6},
		{Rank: 2, Index: 0, Start: sec(2), End: sec(8), Value: 20e6},
		{Rank: 0, Index: 0, Start: sec(3), End: sec(10), Value: 50e6},
	}
	s := region.Sweep("B_r", phases)
	return &Fig04Result{
		Phases: phases,
		Series: &seriesWrap{s: s, end: sec(11)},
	}, nil
}

// Render prints the rank phases and the resulting regions.
func (r *Fig04Result) Render() string {
	var b strings.Builder
	t := report.NewTable("Fig. 4 — rank-level required bandwidths",
		"rank", "phase", "ts", "te", "B_ij")
	for _, ph := range r.Phases {
		t.AddRow(
			fmt.Sprintf("%d", ph.Rank),
			fmt.Sprintf("%d", ph.Index),
			fmt.Sprintf("%.0f s", ph.Start.Seconds()),
			fmt.Sprintf("%.0f s", ph.End.Seconds()),
			report.Rate(ph.Value),
		)
	}
	b.WriteString(t.Render())

	rt := report.NewTable("Fig. 4 — the five overlap regions (Eq. 3)",
		"region", "from", "B_r")
	// Region boundaries are the sorted start/end times.
	boundaries := []float64{1, 2, 3, 6, 8}
	for i, at := range boundaries {
		v := r.Series.s.At(des.Time(des.DurationOf(at)) + 1)
		rt.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f s", at),
			report.Rate(v),
		)
	}
	b.WriteString(rt.Render())
	max := 0.0
	for _, at := range boundaries {
		if v := r.Series.s.At(des.Time(des.DurationOf(at)) + 1); v > max {
			max = v
		}
	}
	fmt.Fprintf(&b, "application-level required bandwidth B = max B_r = %s\n",
		report.Rate(max))
	return b.String()
}
