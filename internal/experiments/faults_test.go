package experiments

import (
	"context"
	"strings"
	"testing"

	"iobehind/internal/faults"
	"iobehind/internal/runner"
)

// TestFigFaultsQuick runs the seeded fault scenario at quick scale and
// asserts its built-in invariants: transient errors were retried, fault
// windows tainted phases, and the limiter recovered once they closed.
func TestFigFaultsQuick(t *testing.T) {
	res, err := FigFaults(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if out == "" || !strings.Contains(out, "faulted") {
		t.Fatalf("render missing the faulted column:\n%s", out)
	}
}

func TestFigFaultsParallelMatchesSerial(t *testing.T) {
	serial, err := FigFaults(Quick)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FigFaultsWith(context.Background(), Quick, runner.New(runner.Options{Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Fatal("faults parallel render differs from serial")
	}
}

// TestFaultConfigChangesCacheKey pins the acceptance requirement that the
// fault configuration participates in the sweep cache key: editing one
// window, or removing the faults entirely, must produce a different key
// for an otherwise identical point.
func TestFaultConfigChangesCacheKey(t *testing.T) {
	keyOf := func(f *faults.Config) string {
		t.Helper()
		sp := spec{ranks: 2, seed: 7, faults: f}
		p := runner.Point{Key: "same", Config: sp.config("faults", Quick, "phased")}
		k, err := runner.CacheKey(p)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := figFaultsScenario(1)
	edited := figFaultsScenario(1)
	edited.Windows[0].Dur += 1e6 // one window stretched by a millisecond

	kBase, kEdited, kClean := keyOf(base), keyOf(edited), keyOf(nil)
	if kBase == kEdited {
		t.Fatal("editing a fault window left the cache key unchanged")
	}
	if kBase == kClean {
		t.Fatal("faulted and clean points share a cache key")
	}
	// Same config, freshly derived: the key is stable.
	if kBase != keyOf(figFaultsScenario(1)) {
		t.Fatal("identical fault configs hash to different keys")
	}
	// A different random seed is a different scenario, hence a new key.
	if keyOf(figFaultsScenario(2)) == kBase {
		t.Fatal("fault seed does not reach the cache key")
	}
}
