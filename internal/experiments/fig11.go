package experiments

import (
	"context"
	"fmt"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/pfs"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// haccEightRuns is the Fig. 11 run matrix: two repetitions each of direct,
// up-only, adaptive (all tol = 1.1), and no limiting.
func haccEightRuns() []tmio.StrategyConfig {
	return []tmio.StrategyConfig{
		{Strategy: tmio.Direct, Tol: 1.1}, {Strategy: tmio.Direct, Tol: 1.1},
		{Strategy: tmio.UpOnly, Tol: 1.1}, {Strategy: tmio.UpOnly, Tol: 1.1},
		{Strategy: tmio.Adaptive, Tol: 1.1}, {Strategy: tmio.Adaptive, Tol: 1.1},
		{}, {},
	}
}

// HaccDistRow is one (rank count, run) cell of the Fig. 11 sweep.
type HaccDistRow struct {
	Ranks    int
	Run      int
	Strategy tmio.StrategyConfig
	Report   *tmio.Report
}

// HaccDistResult covers Fig. 11: HACC-IO's time distribution across rank
// counts under all three strategies and without limiting.
type HaccDistResult struct {
	Scale Scale
	Rows  []HaccDistRow
}

// Fig11 runs the HACC-IO distribution sweep serially.
func Fig11(scale Scale) (*HaccDistResult, error) {
	return Fig11With(context.Background(), scale, nil)
}

// Fig11With fans the sweep's (rank count × run) points across r.
func Fig11With(ctx context.Context, scale Scale, r *runner.Runner) (*HaccDistResult, error) {
	res, err := RunExperiment(ctx, r, Fig11Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*HaccDistResult), nil
}

// Fig11Experiment enumerates the eight-run matrix per rank count.
func Fig11Experiment(scale Scale) *Experiment {
	ranks := []int{8, 32}
	cfg := workloads.HaccConfig{Loops: 3, ParticlesPerRank: 500_000}
	if scale == Paper {
		ranks = []int{96, 768, 3072, 9216}
		cfg = workloads.HaccConfig{}
	}
	type cell struct {
		ranks, run int
		strat      tmio.StrategyConfig
	}
	var cells []cell
	var points []runner.Point
	for _, n := range ranks {
		for run, strat := range haccEightRuns() {
			sp := spec{
				ranks:    n,
				seed:     int64(10_000*n + run + 1),
				strategy: strat,
				agent:    stormAgent(),
				tracer:   tmio.Config{DisableOverhead: true},
			}
			key := fmt.Sprintf("fig11/%s/ranks=%d/run=%d", scale, n, run)
			cells = append(cells, cell{n, run, strat})
			points = append(points, haccPoint(key, "11", scale, sp, cfg))
		}
	}
	return &Experiment{
		Fig:    "11",
		Points: points,
		Assemble: func(results []runner.Result) (Renderer, error) {
			res := &HaccDistResult{Scale: scale}
			for i, c := range cells {
				rep, err := reportAt(results, i)
				if err != nil {
					return nil, fmt.Errorf("fig11 ranks=%d run=%d: %w", c.ranks, c.run, err)
				}
				res.Rows = append(res.Rows, HaccDistRow{
					Ranks: c.ranks, Run: c.run, Strategy: c.strat, Report: rep,
				})
			}
			return res, nil
		},
	}
}

// Render prints the Fig. 11 bars as rows.
func (r *HaccDistResult) Render() string {
	t := report.NewTable("Fig. 11 — HACC-IO time distribution (percent of total rank time)",
		"ranks", "run", "strategy",
		"sync r+w", "read lost", "write lost", "read exploit", "write exploit", "compute", "runtime")
	for _, row := range r.Rows {
		d := row.Report.Distribution()
		t.AddRow(
			fmt.Sprintf("%d", row.Ranks),
			fmt.Sprintf("%d", row.Run),
			row.Strategy.Label(),
			report.Pct(d.SyncWrite+d.SyncRead),
			report.Pct(d.AsyncReadLost),
			report.Pct(d.AsyncWriteLost),
			report.Pct(d.AsyncReadExploit),
			report.Pct(d.AsyncWriteExploit),
			report.Pct(d.ComputeFree),
			report.Seconds(row.Report.AppTime),
		)
	}
	return t.Render()
}

// ExploitByStrategy averages the exploit share of the runs per strategy.
func (r *HaccDistResult) ExploitByStrategy() map[tmio.Strategy]float64 {
	sums := map[tmio.Strategy]float64{}
	counts := map[tmio.Strategy]int{}
	for _, row := range r.Rows {
		sums[row.Strategy.Strategy] += row.Report.Distribution().ExploitTotal()
		counts[row.Strategy.Strategy]++
	}
	out := map[tmio.Strategy]float64{}
	for k, v := range sums {
		out[k] = v / float64(counts[k])
	}
	return out
}

// haccSeriesPoint enumerates one HACC-IO run destined to become a series
// result.
func haccSeriesPoint(key, fig string, scale Scale, ranks int, seed int64,
	strat tmio.StrategyConfig, cfg workloads.HaccConfig, fsCfg *pfs.Config) runner.Point {
	sp := spec{
		ranks:    ranks,
		seed:     seed,
		strategy: strat,
		agent:    stormAgent(),
		tracer:   tmio.Config{DisableOverhead: true},
		fsCfg:    fsCfg,
	}
	return haccPoint(key, fig, scale, sp, cfg)
}

// Fig13Result holds the four 9216-rank HACC-IO series runs: direct,
// up-only, adaptive, and no limit.
type Fig13Result struct {
	Runs []*SeriesResult
}

// Fig13 runs the large-scale HACC-IO time-series comparison serially.
// The phase length is fixed at 5 s so ten loops span ≈100 s, matching
// the x-axes of the paper's Fig. 13.
func Fig13(scale Scale) (*Fig13Result, error) {
	return Fig13With(context.Background(), scale, nil)
}

// Fig13With fans the four strategy runs across r.
func Fig13With(ctx context.Context, scale Scale, r *runner.Runner) (*Fig13Result, error) {
	res, err := RunExperiment(ctx, r, Fig13Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*Fig13Result), nil
}

// Fig13Experiment enumerates the four strategy runs.
func Fig13Experiment(scale Scale) *Experiment {
	ranks := 9216
	// 300k particles per rank (11.4 MB): the aggregate burst occupies the
	// file system for ~1 s of each 5 s phase, leaving room for the
	// limiter to flatten it (with the default 5.5M particles the 9216-rank
	// aggregate would need 4× the file system's capacity per phase).
	cfg := workloads.HaccConfig{FixedPhase: 5 * des.Second, ParticlesPerRank: 300_000}
	if scale == Quick {
		ranks = 64
		cfg = workloads.HaccConfig{FixedPhase: des.Second, Loops: 4, ParticlesPerRank: 500_000}
	}
	strategies := []struct {
		name  string
		slug  string
		strat tmio.StrategyConfig
	}{
		{"Fig. 13 — HACC-IO 9216 ranks, direct", "direct", tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1}},
		{"Fig. 13 — HACC-IO 9216 ranks, up-only", "up-only", tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1}},
		{"Fig. 13 — HACC-IO 9216 ranks, adaptive", "adaptive", tmio.StrategyConfig{Strategy: tmio.Adaptive, Tol: 1.1}},
		{"Fig. 13 — HACC-IO 9216 ranks, no limit", "no-limit", tmio.StrategyConfig{}},
	}
	var points []runner.Point
	for i, s := range strategies {
		key := fmt.Sprintf("fig13/%s/%s", scale, s.slug)
		points = append(points, haccSeriesPoint(key, "13", scale, ranks, int64(13_000+i), s.strat, cfg, nil))
	}
	return &Experiment{
		Fig:    "13",
		Points: points,
		Assemble: func(results []runner.Result) (Renderer, error) {
			res := &Fig13Result{}
			for i, s := range strategies {
				run, err := seriesAt(results, i, s.name, s.strat)
				if err != nil {
					return nil, err
				}
				res.Runs = append(res.Runs, run)
			}
			return res, nil
		},
	}
}

// Render prints all four series.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	for i, run := range r.Runs {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(run.Render())
	}
	return b.String()
}

// Fig14 runs HACC-IO at 1536 ranks with the direct strategy on a *noisy*
// file system: I/O variability keeps the throughput below the applied
// limit, which causes the short waiting phases the paper discusses.
func Fig14(scale Scale) (*SeriesResult, error) {
	return Fig14With(context.Background(), scale, nil)
}

// Fig14With runs the experiment's single point through r.
func Fig14With(ctx context.Context, scale Scale, r *runner.Runner) (*SeriesResult, error) {
	res, err := RunExperiment(ctx, r, Fig14Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*SeriesResult), nil
}

// Fig14Experiment enumerates the noisy-file-system run.
func Fig14Experiment(scale Scale) *Experiment {
	ranks := 1536
	// 64 GB/s aggregate demand against the 106 GB/s system: the noise
	// dips below the demand and cause the short waits the figure shows.
	cfg := workloads.HaccConfig{FixedPhase: 5 * des.Second, ParticlesPerRank: 5_500_000}
	fs := pfs.LichtenbergConfig()
	if scale == Quick {
		ranks = 48
		cfg = workloads.HaccConfig{FixedPhase: des.Second, Loops: 6, ParticlesPerRank: 2_000_000}
		// A slow file system keeps the 48-rank run under pressure, like
		// 1536 ranks keep the 106 GB/s system under pressure.
		fs = pfs.Config{WriteCapacity: 5e9, ReadCapacity: 5e9}
	}
	fs.Noise = &pfs.NoiseConfig{
		Interval:       des.Duration(2 * des.Second),
		Amplitude:      0.5,
		DipProbability: 0.1,
		DipFloor:       0.15,
	}
	strat := tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1}
	point := haccSeriesPoint("fig14/"+scale.String(), "14", scale, ranks, 14, strat, cfg, &fs)
	return singleSeriesExperiment("14", "Fig. 14 — HACC-IO 1536 ranks, direct, noisy file system", point, strat)
}
