package experiments

import (
	"fmt"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/pfs"
	"iobehind/internal/report"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// haccEightRuns is the Fig. 11 run matrix: two repetitions each of direct,
// up-only, adaptive (all tol = 1.1), and no limiting.
func haccEightRuns() []tmio.StrategyConfig {
	return []tmio.StrategyConfig{
		{Strategy: tmio.Direct, Tol: 1.1}, {Strategy: tmio.Direct, Tol: 1.1},
		{Strategy: tmio.UpOnly, Tol: 1.1}, {Strategy: tmio.UpOnly, Tol: 1.1},
		{Strategy: tmio.Adaptive, Tol: 1.1}, {Strategy: tmio.Adaptive, Tol: 1.1},
		{}, {},
	}
}

// HaccDistRow is one (rank count, run) cell of the Fig. 11 sweep.
type HaccDistRow struct {
	Ranks    int
	Run      int
	Strategy tmio.StrategyConfig
	Report   *tmio.Report
}

// HaccDistResult covers Fig. 11: HACC-IO's time distribution across rank
// counts under all three strategies and without limiting.
type HaccDistResult struct {
	Scale Scale
	Rows  []HaccDistRow
}

// Fig11 runs the HACC-IO distribution sweep.
func Fig11(scale Scale) (*HaccDistResult, error) {
	ranks := []int{8, 32}
	cfg := workloads.HaccConfig{Loops: 3, ParticlesPerRank: 500_000}
	if scale == Paper {
		ranks = []int{96, 768, 3072, 9216}
		cfg = workloads.HaccConfig{}
	}
	res := &HaccDistResult{Scale: scale}
	for _, n := range ranks {
		for run, strat := range haccEightRuns() {
			st := build(spec{
				ranks:    n,
				seed:     int64(10_000*n + run + 1),
				strategy: strat,
				agent:    stormAgent(),
				tracer:   tmio.Config{DisableOverhead: true},
			})
			rep, err := st.execute(workloads.HaccMain(st.sys, cfg))
			if err != nil {
				return nil, fmt.Errorf("fig11 ranks=%d run=%d: %w", n, run, err)
			}
			res.Rows = append(res.Rows, HaccDistRow{
				Ranks: n, Run: run, Strategy: strat, Report: rep,
			})
		}
	}
	return res, nil
}

// Render prints the Fig. 11 bars as rows.
func (r *HaccDistResult) Render() string {
	t := report.NewTable("Fig. 11 — HACC-IO time distribution (percent of total rank time)",
		"ranks", "run", "strategy",
		"sync r+w", "read lost", "write lost", "read exploit", "write exploit", "compute", "runtime")
	for _, row := range r.Rows {
		d := row.Report.Distribution()
		t.AddRow(
			fmt.Sprintf("%d", row.Ranks),
			fmt.Sprintf("%d", row.Run),
			row.Strategy.Label(),
			report.Pct(d.SyncWrite+d.SyncRead),
			report.Pct(d.AsyncReadLost),
			report.Pct(d.AsyncWriteLost),
			report.Pct(d.AsyncReadExploit),
			report.Pct(d.AsyncWriteExploit),
			report.Pct(d.ComputeFree),
			report.Seconds(row.Report.AppTime),
		)
	}
	return t.Render()
}

// ExploitByStrategy averages the exploit share of the runs per strategy.
func (r *HaccDistResult) ExploitByStrategy() map[tmio.Strategy]float64 {
	sums := map[tmio.Strategy]float64{}
	counts := map[tmio.Strategy]int{}
	for _, row := range r.Rows {
		sums[row.Strategy.Strategy] += row.Report.Distribution().ExploitTotal()
		counts[row.Strategy.Strategy]++
	}
	out := map[tmio.Strategy]float64{}
	for k, v := range sums {
		out[k] = v / float64(counts[k])
	}
	return out
}

// haccSeriesRun executes one HACC-IO run wrapped as a series result.
func haccSeriesRun(name string, ranks int, seed int64, strat tmio.StrategyConfig,
	cfg workloads.HaccConfig, fsCfg *pfs.Config) (*SeriesResult, error) {
	st := build(spec{
		ranks:    ranks,
		seed:     seed,
		strategy: strat,
		agent:    stormAgent(),
		tracer:   tmio.Config{DisableOverhead: true},
		fsCfg:    fsCfg,
	})
	rep, err := st.execute(workloads.HaccMain(st.sys, cfg))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return newSeriesResult(name, strat, rep), nil
}

// Fig13Result holds the four 9216-rank HACC-IO series runs: direct,
// up-only, adaptive, and no limit.
type Fig13Result struct {
	Runs []*SeriesResult
}

// Fig13 runs the large-scale HACC-IO time-series comparison. The phase
// length is fixed at 5 s so ten loops span ≈100 s, matching the x-axes of
// the paper's Fig. 13.
func Fig13(scale Scale) (*Fig13Result, error) {
	ranks := 9216
	// 300k particles per rank (11.4 MB): the aggregate burst occupies the
	// file system for ~1 s of each 5 s phase, leaving room for the
	// limiter to flatten it (with the default 5.5M particles the 9216-rank
	// aggregate would need 4× the file system's capacity per phase).
	cfg := workloads.HaccConfig{FixedPhase: 5 * des.Second, ParticlesPerRank: 300_000}
	if scale == Quick {
		ranks = 64
		cfg = workloads.HaccConfig{FixedPhase: des.Second, Loops: 4, ParticlesPerRank: 500_000}
	}
	strategies := []struct {
		name  string
		strat tmio.StrategyConfig
	}{
		{"Fig. 13 — HACC-IO 9216 ranks, direct", tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1}},
		{"Fig. 13 — HACC-IO 9216 ranks, up-only", tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1}},
		{"Fig. 13 — HACC-IO 9216 ranks, adaptive", tmio.StrategyConfig{Strategy: tmio.Adaptive, Tol: 1.1}},
		{"Fig. 13 — HACC-IO 9216 ranks, no limit", tmio.StrategyConfig{}},
	}
	res := &Fig13Result{}
	for i, s := range strategies {
		run, err := haccSeriesRun(s.name, ranks, int64(13_000+i), s.strat, cfg, nil)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// Render prints all four series.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	for i, run := range r.Runs {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(run.Render())
	}
	return b.String()
}

// Fig14 runs HACC-IO at 1536 ranks with the direct strategy on a *noisy*
// file system: I/O variability keeps the throughput below the applied
// limit, which causes the short waiting phases the paper discusses.
func Fig14(scale Scale) (*SeriesResult, error) {
	ranks := 1536
	// 64 GB/s aggregate demand against the 106 GB/s system: the noise
	// dips below the demand and cause the short waits the figure shows.
	cfg := workloads.HaccConfig{FixedPhase: 5 * des.Second, ParticlesPerRank: 5_500_000}
	fs := pfs.LichtenbergConfig()
	if scale == Quick {
		ranks = 48
		cfg = workloads.HaccConfig{FixedPhase: des.Second, Loops: 6, ParticlesPerRank: 2_000_000}
		// A slow file system keeps the 48-rank run under pressure, like
		// 1536 ranks keep the 106 GB/s system under pressure.
		fs = pfs.Config{WriteCapacity: 5e9, ReadCapacity: 5e9}
	}
	fs.Noise = &pfs.NoiseConfig{
		Interval:       des.Duration(2 * des.Second),
		Amplitude:      0.5,
		DipProbability: 0.1,
		DipFloor:       0.15,
	}
	return haccSeriesRun("Fig. 14 — HACC-IO 1536 ranks, direct, noisy file system",
		ranks, 14, tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1}, cfg, &fs)
}
