package experiments

import (
	"context"
	"fmt"

	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// wacommSixRuns is the Fig. 7 run matrix: two repetitions each of the
// direct strategy (tol = 2), the up-only strategy (tol = 1.1), and no
// limiting.
func wacommSixRuns() []tmio.StrategyConfig {
	return []tmio.StrategyConfig{
		{Strategy: tmio.Direct, Tol: 2}, {Strategy: tmio.Direct, Tol: 2},
		{Strategy: tmio.UpOnly, Tol: 1.1}, {Strategy: tmio.UpOnly, Tol: 1.1},
		{}, {},
	}
}

// WacommDistRow is one (rank count, run) cell of the Fig. 7 sweep.
type WacommDistRow struct {
	Ranks    int
	Run      int
	Strategy tmio.StrategyConfig
	Report   *tmio.Report
}

// WacommDistResult covers Fig. 7: WaComM++'s application time distribution
// across rank counts and six runs.
type WacommDistResult struct {
	Scale Scale
	Rows  []WacommDistRow
}

// Fig07 runs the WaComM++ distribution sweep serially.
func Fig07(scale Scale) (*WacommDistResult, error) {
	return Fig07With(context.Background(), scale, nil)
}

// Fig07With fans the sweep's (rank count × run) points across r.
func Fig07With(ctx context.Context, scale Scale, r *runner.Runner) (*WacommDistResult, error) {
	res, err := RunExperiment(ctx, r, Fig07Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*WacommDistResult), nil
}

// wacommPoint wraps one traced WaComM++ run as a cacheable point.
func wacommPoint(key, fig string, scale Scale, sp spec, cfg workloads.WacommConfig) runner.Point {
	pcfg := sp.config(fig, scale, "wacomm")
	pcfg.Wacomm = &cfg
	return simPoint(key, pcfg, sp,
		func(sys *mpiio.System) func(*mpi.Rank) { return workloads.WacommMain(sys, cfg) })
}

// Fig07Experiment enumerates the six-run matrix per rank count.
func Fig07Experiment(scale Scale) *Experiment {
	ranks := []int{8, 24}
	cfg := workloads.WacommConfig{Particles: 200_000, Iterations: 8}
	if scale == Paper {
		ranks = []int{24, 48, 96, 192, 384, 768, 1536, 3072, 6144}
		cfg = workloads.WacommConfig{} // paper defaults: 2e6 particles, 50 h
	}
	type cell struct {
		ranks, run int
		strat      tmio.StrategyConfig
	}
	var cells []cell
	var points []runner.Point
	for _, n := range ranks {
		for run, strat := range wacommSixRuns() {
			sp := spec{
				ranks:    n,
				seed:     int64(1000*n + run + 1),
				strategy: strat,
				agent:    stormAgent(),
				tracer:   tmio.Config{DisableOverhead: true},
			}
			key := fmt.Sprintf("fig07/%s/ranks=%d/run=%d", scale, n, run)
			cells = append(cells, cell{n, run, strat})
			points = append(points, wacommPoint(key, "7", scale, sp, cfg))
		}
	}
	return &Experiment{
		Fig:    "7",
		Points: points,
		Assemble: func(results []runner.Result) (Renderer, error) {
			res := &WacommDistResult{Scale: scale}
			for i, c := range cells {
				rep, err := reportAt(results, i)
				if err != nil {
					return nil, fmt.Errorf("fig07 ranks=%d run=%d: %w", c.ranks, c.run, err)
				}
				res.Rows = append(res.Rows, WacommDistRow{
					Ranks: c.ranks, Run: c.run, Strategy: c.strat, Report: rep,
				})
			}
			return res, nil
		},
	}
}

// Render prints the Fig. 7 bars as rows.
func (r *WacommDistResult) Render() string {
	t := report.NewTable("Fig. 7 — WaComM++ time distribution (percent of total rank time)",
		"ranks", "run", "strategy", "sync write", "async lost", "async exploit", "compute", "runtime")
	for _, row := range r.Rows {
		d := row.Report.Distribution()
		t.AddRow(
			fmt.Sprintf("%d", row.Ranks),
			fmt.Sprintf("%d", row.Run),
			row.Strategy.Label(),
			report.Pct(d.SyncWrite+d.SyncRead),
			report.Pct(d.AsyncWriteLost+d.AsyncReadLost),
			report.Pct(d.AsyncWriteExploit+d.AsyncReadExploit),
			report.Pct(d.ComputeFree),
			report.Seconds(row.Report.AppTime),
		)
	}
	return t.Render()
}

// MeanExploit returns the average exploit share for runs using the given
// strategy kind — limited runs must beat unlimited ones.
func (r *WacommDistResult) MeanExploit(strategy tmio.Strategy) float64 {
	var sum float64
	var n int
	for _, row := range r.Rows {
		if row.Strategy.Strategy != strategy {
			continue
		}
		sum += row.Report.Distribution().ExploitTotal()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
