package experiments

import (
	"fmt"

	"iobehind/internal/report"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// wacommSixRuns is the Fig. 7 run matrix: two repetitions each of the
// direct strategy (tol = 2), the up-only strategy (tol = 1.1), and no
// limiting.
func wacommSixRuns() []tmio.StrategyConfig {
	return []tmio.StrategyConfig{
		{Strategy: tmio.Direct, Tol: 2}, {Strategy: tmio.Direct, Tol: 2},
		{Strategy: tmio.UpOnly, Tol: 1.1}, {Strategy: tmio.UpOnly, Tol: 1.1},
		{}, {},
	}
}

// WacommDistRow is one (rank count, run) cell of the Fig. 7 sweep.
type WacommDistRow struct {
	Ranks    int
	Run      int
	Strategy tmio.StrategyConfig
	Report   *tmio.Report
}

// WacommDistResult covers Fig. 7: WaComM++'s application time distribution
// across rank counts and six runs.
type WacommDistResult struct {
	Scale Scale
	Rows  []WacommDistRow
}

// Fig07 runs the WaComM++ distribution sweep.
func Fig07(scale Scale) (*WacommDistResult, error) {
	ranks := []int{8, 24}
	cfg := workloads.WacommConfig{Particles: 200_000, Iterations: 8}
	if scale == Paper {
		ranks = []int{24, 48, 96, 192, 384, 768, 1536, 3072, 6144}
		cfg = workloads.WacommConfig{} // paper defaults: 2e6 particles, 50 h
	}
	res := &WacommDistResult{Scale: scale}
	for _, n := range ranks {
		for run, strat := range wacommSixRuns() {
			st := build(spec{
				ranks:    n,
				seed:     int64(1000*n + run + 1),
				strategy: strat,
				agent:    stormAgent(),
				tracer:   tmio.Config{DisableOverhead: true},
			})
			rep, err := st.execute(workloads.WacommMain(st.sys, cfg))
			if err != nil {
				return nil, fmt.Errorf("fig07 ranks=%d run=%d: %w", n, run, err)
			}
			res.Rows = append(res.Rows, WacommDistRow{
				Ranks: n, Run: run, Strategy: strat, Report: rep,
			})
		}
	}
	return res, nil
}

// Render prints the Fig. 7 bars as rows.
func (r *WacommDistResult) Render() string {
	t := report.NewTable("Fig. 7 — WaComM++ time distribution (percent of total rank time)",
		"ranks", "run", "strategy", "sync write", "async lost", "async exploit", "compute", "runtime")
	for _, row := range r.Rows {
		d := row.Report.Distribution()
		t.AddRow(
			fmt.Sprintf("%d", row.Ranks),
			fmt.Sprintf("%d", row.Run),
			row.Strategy.Label(),
			report.Pct(d.SyncWrite+d.SyncRead),
			report.Pct(d.AsyncWriteLost+d.AsyncReadLost),
			report.Pct(d.AsyncWriteExploit+d.AsyncReadExploit),
			report.Pct(d.ComputeFree),
			report.Seconds(row.Report.AppTime),
		)
	}
	return t.Render()
}

// MeanExploit returns the average exploit share for runs using the given
// strategy kind — limited runs must beat unlimited ones.
func (r *WacommDistResult) MeanExploit(strategy tmio.Strategy) float64 {
	var sum float64
	var n int
	for _, row := range r.Rows {
		if row.Strategy.Strategy != strategy {
			continue
		}
		sum += row.Report.Distribution().ExploitTotal()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
