package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"iobehind/internal/runner"
	"iobehind/internal/trace"
)

func TestFigTraceRoundTrips(t *testing.T) {
	res, err := FigTrace(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.Identical {
			t.Errorf("%s: replay not byte-identical", p.Workload)
		}
		if p.Ops == 0 || p.TraceBytes == 0 || p.TraceSHA == "" {
			t.Errorf("%s: empty trace stats: %+v", p.Workload, p)
		}
	}
	out := res.Render()
	for _, want := range []string{"phased", "hacc", "wacomm", "ior", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEmitBuiltinTrace(t *testing.T) {
	raw, err := EmitBuiltinTrace("phased", Quick)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.App != "phased" || parsed.Ops() == 0 {
		t.Errorf("parsed = %v", parsed)
	}
	if _, err := EmitBuiltinTrace("no-such-workload", Quick); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestTraceReplayCacheKey pins the acceptance criterion: the trace
// content-hash participates in the runner cache key, so the same trace
// hits and any byte change misses.
func TestTraceReplayCacheKey(t *testing.T) {
	raw, err := EmitBuiltinTrace("phased", Quick)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(runner.Options{Workers: 1, Cache: cache})

	exp, err := TraceReplayExperiment("mytrace", raw, Quick)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunExperiment(context.Background(), r, exp)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Hits != 0 || got.Writes != 1 {
		t.Fatalf("after first run: %+v, want 0 hits 1 write", got)
	}

	// Same bytes, fresh experiment: must be served from the cache.
	exp2, err := TraceReplayExperiment("mytrace", append([]byte(nil), raw...), Quick)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunExperiment(context.Background(), r, exp2)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Hits != 1 {
		t.Fatalf("after identical re-run: %+v, want 1 hit", got)
	}
	if first.Render() != second.Render() {
		t.Error("cached replay rendered differently")
	}

	// Change one byte of trace content (a compute gap one nanosecond
	// longer) — the key must miss and the point re-run.
	mutated := bytes.Replace(raw, []byte(`"op":"finalize","rank":0,"t":`), []byte(`"op":"finalize","rank":0,"t":1`), 1)
	if bytes.Equal(mutated, raw) {
		t.Fatal("mutation did not change the trace")
	}
	exp3, err := TraceReplayExperiment("mytrace", mutated, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunExperiment(context.Background(), r, exp3); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Hits != 1 || got.Writes != 2 {
		t.Fatalf("after mutated re-run: %+v, want 1 hit 2 writes (a miss)", got)
	}
}

func TestTraceReplayExperimentRendersReport(t *testing.T) {
	raw, err := EmitBuiltinTrace("ior", Quick)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := TraceReplayExperiment("ior-x", raw, Quick)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExperiment(context.Background(), nil, exp)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"ior-x", "B required", "async ops"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := TraceReplayExperiment("bad", []byte("not a trace"), Quick); err == nil {
		t.Error("malformed trace accepted")
	}
}
