package experiments

import (
	"context"
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// HaccRuntimeRow is one (rank count, run) cell of the Fig. 5/6 sweep.
type HaccRuntimeRow struct {
	Ranks  int
	Run    int // 0 = direct strategy, 1 = no limit (paper's run labels)
	Report *tmio.Report
}

// HaccRuntimeResult covers Figs. 5 and 6: HACC-IO scaled over rank counts,
// run with the direct strategy (run 0) and without limiting (run 1), with
// the tracing overhead model enabled.
type HaccRuntimeResult struct {
	Scale Scale
	Rows  []HaccRuntimeRow
}

// Fig05 runs the HACC-IO rank sweep behind Figs. 5 and 6 serially.
func Fig05(scale Scale) (*HaccRuntimeResult, error) {
	return Fig05With(context.Background(), scale, nil)
}

// Fig05With fans the sweep's (rank count × run) points across r.
func Fig05With(ctx context.Context, scale Scale, r *runner.Runner) (*HaccRuntimeResult, error) {
	res, err := RunExperiment(ctx, r, Fig05Experiment(scale))
	if err != nil {
		return nil, err
	}
	return res.(*HaccRuntimeResult), nil
}

// haccPoint wraps one traced HACC-IO run as a cacheable point.
func haccPoint(key, fig string, scale Scale, sp spec, cfg workloads.HaccConfig) runner.Point {
	pcfg := sp.config(fig, scale, "hacc")
	pcfg.Hacc = &cfg
	return simPoint(key, pcfg, sp,
		func(sys *mpiio.System) func(*mpi.Rank) { return workloads.HaccMain(sys, cfg) })
}

// Fig05Experiment enumerates the rank sweep: every rank count is run
// with the direct strategy (run 0) and without limiting (run 1), with
// the tracing overhead model enabled.
func Fig05Experiment(scale Scale) *Experiment {
	ranks := []int{1, 4, 16, 64}
	cfg := workloads.HaccConfig{Loops: 3, ParticlesPerRank: 500_000}
	if scale == Paper {
		ranks = []int{1, 6, 24, 96, 384, 1536, 9216}
		cfg = workloads.HaccConfig{} // paper defaults: 10 loops
	}
	type cell struct{ ranks, run int }
	var cells []cell
	var points []runner.Point
	for _, n := range ranks {
		for run, strat := range []tmio.StrategyConfig{
			{Strategy: tmio.Direct, Tol: 1.1},
			{},
		} {
			sp := spec{
				ranks:    n,
				seed:     int64(100*n + run + 1),
				strategy: strat,
				agent:    stormAgent(),
			}
			key := fmt.Sprintf("fig05/%s/ranks=%d/run=%d", scale, n, run)
			cells = append(cells, cell{n, run})
			points = append(points, haccPoint(key, "5", scale, sp, cfg))
		}
	}
	return &Experiment{
		Fig:    "5",
		Points: points,
		Assemble: func(results []runner.Result) (Renderer, error) {
			res := &HaccRuntimeResult{Scale: scale}
			for i, c := range cells {
				rep, err := reportAt(results, i)
				if err != nil {
					return nil, fmt.Errorf("fig05 ranks=%d run=%d: %w", c.ranks, c.run, err)
				}
				res.Rows = append(res.Rows, HaccRuntimeRow{Ranks: c.ranks, Run: c.run, Report: rep})
			}
			return res, nil
		},
	}
}

// RenderFig5 prints the runtime curves: total, application, and overhead
// time versus rank count.
func (r *HaccRuntimeResult) RenderFig5() string {
	t := report.NewTable("Fig. 5 — HACC-IO runtime vs ranks (run 0 = direct, run 1 = no limit)",
		"ranks", "run", "total", "app", "overhead/rank", "overhead %")
	for _, row := range r.Rows {
		rep := row.Report
		perRank := (rep.PeriOverhead + rep.PostOverhead) / des.Duration(rep.Ranks)
		t.AddRow(
			fmt.Sprintf("%d", row.Ranks),
			fmt.Sprintf("%d", row.Run),
			report.Seconds(rep.Runtime),
			report.Seconds(rep.AppTime),
			report.Seconds(perRank),
			report.Pct(rep.OverheadShare()),
		)
	}
	return t.Render()
}

// RenderFig6 prints the time distribution: post/peri overhead, visible
// I/O, and compute shares.
func (r *HaccRuntimeResult) RenderFig6() string {
	t := report.NewTable("Fig. 6 — HACC-IO time distribution (percent of total rank time)",
		"ranks", "run", "overhead post", "overhead peri", "visible I/O", "hidden I/O", "compute")
	for _, row := range r.Rows {
		d := row.Report.Distribution()
		t.AddRow(
			fmt.Sprintf("%d", row.Ranks),
			fmt.Sprintf("%d", row.Run),
			report.Pct(d.OverheadPost),
			report.Pct(d.OverheadPeri),
			report.Pct(d.VisibleIO()),
			report.Pct(d.ExploitTotal()),
			report.Pct(d.ComputeFree),
		)
	}
	return t.Render()
}

// Render prints both figures.
func (r *HaccRuntimeResult) Render() string {
	return r.RenderFig5() + "\n" + r.RenderFig6()
}

// MaxOverheadShare returns the worst overhead share across all runs — the
// paper's "< 9% of total runtime" claim.
func (r *HaccRuntimeResult) MaxOverheadShare() float64 {
	var max float64
	for _, row := range r.Rows {
		if s := row.Report.OverheadShare(); s > max {
			max = s
		}
	}
	return max
}

// requiredBandwidthGrowth returns B at the smallest and largest rank count
// of run 1 (the paper quotes ≈0.7 GB/s at 1 rank to ≈58 GB/s at 9216).
func (r *HaccRuntimeResult) RequiredBandwidthGrowth() (small, large float64) {
	for _, row := range r.Rows {
		if row.Run != 1 {
			continue
		}
		if small == 0 {
			small = row.Report.RequiredBandwidth
		}
		large = row.Report.RequiredBandwidth
	}
	return small, large
}
