// Serializable point registry: the bridge between the in-process sweep
// (runner.Point values carrying closures) and the distributed fabric,
// whose coordinator and workers live in different processes. A
// runner.Point's Run/New funcs cannot travel the wire; what can is a
// PointRef — (figure, scale, fault seed, index) — because every built-in
// experiment is a pure function of those inputs. A worker resolves the
// ref through the same constructors the local sweep uses, so the point
// it executes is the point the submitter enumerated; the cache key
// (SHA-256 over the point's config) is recomputed on both sides and
// compared, so any skew between submitter and worker binaries is caught
// before a wrong result can enter the cache.
package experiments

import (
	"encoding/gob"
	"fmt"

	"iobehind/internal/runner"
)

// init registers the manifest config types with gob: fabric wire
// messages carry each point's Config as an `any` for the worker-side
// cache-key crosscheck, and gob refuses unregistered concrete types on
// interface-typed fields. Every built-in experiment keys its points with
// pointConfig, so this one registration covers the whole registry.
func init() {
	gob.Register(pointConfig{})
}

// PointRef is the serializable identity of one built-in sweep point —
// everything a worker needs to rebuild the runner.Point locally.
type PointRef struct {
	// Fig is the experiment id as in FigOrder ("1", "5", "faults", ...).
	Fig string
	// Scale is the experiment scale ("quick" or "paper").
	Scale string
	// FaultSeed seeds the fault scenario's random window batch; it is
	// meaningful only for Fig "faults" and 0 means the default seed.
	FaultSeed int64 `json:",omitempty"`
	// Index is the point's position in the experiment's enumeration.
	Index int
	// Key is the expected runner.Point.Key at Index — an integrity check
	// that resolution reproduced the same enumeration.
	Key string
}

// String names the ref for logs.
func (r PointRef) String() string {
	return fmt.Sprintf("%s/%s[%d] %s", r.Fig, r.Scale, r.Index, r.Key)
}

// ParseScale parses a scale name as printed by Scale.String.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "paper":
		return Paper, nil
	}
	return Quick, fmt.Errorf("experiments: unknown scale %q (want quick or paper)", s)
}

// experimentFor rebuilds the experiment a ref points into.
func experimentFor(fig string, scale Scale, faultSeed int64) (*Experiment, error) {
	if fig == "faults" && faultSeed != 0 {
		return FigFaultsExperimentSeeded(scale, faultSeed), nil
	}
	exp, ok := ByFig(fig, scale)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q", fig)
	}
	return exp, nil
}

// ResolvePoint rebuilds the runner.Point a ref names, re-running the
// experiment's deterministic enumeration and checking the point key
// matches. External-input experiments (trace-file replays) are not
// resolvable — their input is file content, not a figure id — and were
// never enumerable into a ref in the first place.
func ResolvePoint(ref PointRef) (runner.Point, error) {
	scale, err := ParseScale(ref.Scale)
	if err != nil {
		return runner.Point{}, err
	}
	exp, err := experimentFor(ref.Fig, scale, ref.FaultSeed)
	if err != nil {
		return runner.Point{}, err
	}
	if ref.Index < 0 || ref.Index >= len(exp.Points) {
		return runner.Point{}, fmt.Errorf("experiments: ref %s: index out of range (experiment has %d points)",
			ref, len(exp.Points))
	}
	p := exp.Points[ref.Index]
	if ref.Key != "" && p.Key != ref.Key {
		return runner.Point{}, fmt.Errorf("experiments: ref %s resolved to point %q — submitter and worker enumerate different sweeps (version skew?)",
			ref, p.Key)
	}
	return p, nil
}

// ExperimentRefs enumerates the refs of exp's points. exp must be a
// built-in experiment (its Fig registered in ByFig); the refs resolve
// through ResolvePoint on any process running the same code.
func ExperimentRefs(exp *Experiment, scale Scale) []PointRef {
	refs := make([]PointRef, len(exp.Points))
	for i, p := range exp.Points {
		refs[i] = PointRef{
			Fig:       exp.Fig,
			Scale:     scale.String(),
			FaultSeed: exp.Seed,
			Index:     i,
			Key:       p.Key,
		}
	}
	return refs
}

// PlanEntry is one distinct experiment of a sweep plan.
type PlanEntry struct {
	// ID is the figure id the caller asked for (may alias, e.g. "6"→"5").
	ID string
	// Exp is the resolved experiment.
	Exp *Experiment
	// Offset is the index of the experiment's first point in the plan's
	// flat point (and ref) slice.
	Offset int
}

// Plan is a figure request resolved into a flat, deduplicated sweep:
// the shared shape behind iosweep's local run, its fabric submission,
// and iofabric's self-run, so all three enumerate byte-identical sweeps.
type Plan struct {
	Entries []PlanEntry
	Points  []runner.Point
	Refs    []PointRef
}

// BuildPlan resolves figure ids (nil or ["all"] means FigOrder) at the
// given scale into a plan. Figures sharing an experiment (1+2, 5+6) are
// swept once. faultSeed seeds the "faults" figure's scenario.
func BuildPlan(ids []string, scale Scale, faultSeed int64) (*Plan, error) {
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = FigOrder
	}
	plan := &Plan{}
	seen := make(map[string]bool)
	for _, id := range ids {
		var exp *Experiment
		var err error
		if id == "faults" {
			exp, err = experimentFor(id, scale, faultSeed)
		} else {
			exp, err = experimentFor(id, scale, 0)
		}
		if err != nil {
			return nil, err
		}
		if seen[exp.Fig] {
			continue
		}
		seen[exp.Fig] = true
		plan.Entries = append(plan.Entries, PlanEntry{ID: id, Exp: exp, Offset: len(plan.Points)})
		plan.Points = append(plan.Points, exp.Points...)
		plan.Refs = append(plan.Refs, ExperimentRefs(exp, scale)...)
	}
	return plan, nil
}
