package cluster

import (
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/pfs"
	"iobehind/internal/sched"
)

// smallScenario shrinks the Fig. 1 setup so tests run in milliseconds
// while keeping the contention structure: three sync jobs plus one async
// job on a slow file system.
func smallScenario(policy LimitPolicy) Config {
	fs := pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9}
	jobs := []JobSpec{
		{Nodes: 4, Loops: 4, BytesPerNode: 1 << 30, Compute: 2 * des.Second},
		{Nodes: 8, Loops: 4, BytesPerNode: 1 << 30, Compute: 2 * des.Second,
			Arrival: des.Time(des.Second)},
		// The async job is I/O-light: required bandwidth (256 MB over 8 s
		// = 32 MB/s per node) is far below its contended burst share, so
		// capping it frees real bandwidth for the others.
		{Nodes: 4, Async: true, Loops: 4, BytesPerNode: 1 << 28,
			Compute: 8 * des.Second, Arrival: des.Time(2 * des.Second)},
		{Nodes: 4, Loops: 4, BytesPerNode: 1 << 30, Compute: 2 * des.Second,
			Arrival: des.Time(3 * des.Second)},
	}
	return Config{Nodes: 32, FS: &fs, Jobs: jobs, Policy: policy}
}

func TestScenarioRunsAllJobs(t *testing.T) {
	res, err := Run(smallScenario(NoLimit))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Ended <= j.Started {
			t.Fatalf("job %d never ran: %+v", j.Job, j)
		}
		if j.Started < j.Arrival {
			t.Fatalf("job %d started before arrival", j.Job)
		}
	}
	if res.Makespan == 0 {
		t.Fatal("no makespan")
	}
	if res.RunningJobs.Max() != 4 {
		t.Fatalf("running peak = %v, want 4 (all concurrent)", res.RunningJobs.Max())
	}
}

func TestLimitingSpeedsUpSyncJobs(t *testing.T) {
	base, err := Run(smallScenario(NoLimit))
	if err != nil {
		t.Fatal(err)
	}
	lim, err := Run(smallScenario(LimitDuringContention))
	if err != nil {
		t.Fatal(err)
	}
	if lim.LimitToggles == 0 {
		t.Fatal("monitor never limited the async job")
	}
	// The paper's headline (Fig. 1): sync jobs profit from the spared
	// bandwidth; the async job may pay a small price.
	improved := 0
	for i, j := range lim.Jobs {
		if j.Async {
			continue
		}
		if j.Runtime() < base.Jobs[i].Runtime() {
			improved++
		}
	}
	if improved == 0 {
		t.Fatalf("no sync job improved under limiting: base=%v lim=%v",
			runtimes(base), runtimes(lim))
	}
	// The async job must not be catastrophically slower (the paper: "the
	// runtime of this job slightly increases").
	for i, j := range lim.Jobs {
		if !j.Async {
			continue
		}
		if j.Runtime() > base.Jobs[i].Runtime()*2 {
			t.Fatalf("async job doubled: %v -> %v", base.Jobs[i].Runtime(), j.Runtime())
		}
	}
}

func runtimes(r *Result) []des.Duration {
	out := make([]des.Duration, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.Runtime()
	}
	return out
}

func TestBandwidthSeriesRecorded(t *testing.T) {
	res, err := Run(smallScenario(NoLimit))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bandwidth) != 4 {
		t.Fatalf("series = %d", len(res.Bandwidth))
	}
	for i, s := range res.Bandwidth {
		if s.Max() <= 0 {
			t.Fatalf("job %d never showed bandwidth", i)
		}
		// Everything drained at the end.
		if got := s.At(res.Makespan + des.Time(des.Second)); got != 0 {
			t.Fatalf("job %d bandwidth nonzero after makespan: %v", i, got)
		}
	}
}

func TestQueueingWhenNodesScarce(t *testing.T) {
	cfg := smallScenario(NoLimit)
	cfg.Nodes = 8 // only one of the bigger jobs fits at a time
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 needs all 8 nodes: it cannot overlap anything.
	j1 := res.Jobs[1]
	for _, other := range res.Jobs {
		if other.Job == 1 {
			continue
		}
		if other.Started < j1.Ended && other.Ended > j1.Started {
			t.Fatalf("job %d overlapped the full-cluster job: %+v vs %+v",
				other.Job, other, j1)
		}
	}
	if res.RunningJobs.Max() > 2 {
		t.Fatalf("running peak = %v with 8 nodes", res.RunningJobs.Max())
	}
}

func TestDefaultScenarioShape(t *testing.T) {
	cfg := DefaultScenario(LimitDuringContention)
	if len(cfg.Jobs) != 8 || cfg.Nodes != 500 {
		t.Fatalf("unexpected default scenario: %+v", cfg)
	}
	async := 0
	for i, j := range cfg.Jobs {
		if j.Async {
			async++
			if i != 4 {
				t.Fatalf("async job at index %d, want 4", i)
			}
		}
	}
	if async != 1 {
		t.Fatalf("async jobs = %d, want 1", async)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config did not error")
	}
}

func TestBackfillLetsSmallJobsLeapfrog(t *testing.T) {
	fs := pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9}
	jobs := []JobSpec{
		{Nodes: 8, Loops: 2, BytesPerNode: 1 << 28, Compute: 2 * des.Second},
		// Arrives second, needs the whole cluster: blocks under FCFS.
		{Nodes: 8, Loops: 2, BytesPerNode: 1 << 28, Compute: 2 * des.Second,
			Arrival: des.Time(des.Second)},
		// Small job arriving third: with 12 cluster nodes, 4 are free
		// while job 0 runs, so backfill can start it immediately even
		// though the 8-node job 1 is stuck at the head of the queue.
		{Nodes: 4, Loops: 2, BytesPerNode: 1 << 28, Compute: 2 * des.Second,
			Arrival: des.Time(2 * des.Second)},
	}
	run := func(pol SchedulerPolicy) *Result {
		res, err := Run(Config{Nodes: 12, FS: &fs, Jobs: jobs, Scheduler: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fcfs := run(FCFS)
	back := run(Backfill)
	// FCFS: job 2 waits behind the blocked 8-node job 1.
	if fcfs.Jobs[2].Started < fcfs.Jobs[1].Started {
		t.Fatalf("FCFS let job 2 leapfrog: %+v", fcfs.Jobs)
	}
	// Backfill: job 2 starts immediately at arrival (4 nodes are free).
	if back.Jobs[2].Started != back.Jobs[2].Arrival {
		t.Fatalf("backfill did not start job 2 at arrival: %+v", back.Jobs[2])
	}
	if back.Jobs[2].Started >= back.Jobs[1].Started {
		t.Fatalf("backfill did not leapfrog: job2 %v vs job1 %v",
			back.Jobs[2].Started, back.Jobs[1].Started)
	}
}

func TestLimitAlwaysKeepsAsyncJobCapped(t *testing.T) {
	base, err := Run(smallScenario(NoLimit))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(smallScenario(LimitAlways))
	if err != nil {
		t.Fatal(err)
	}
	if res.LimitToggles != 1 {
		t.Fatalf("toggles = %d, want exactly 1 (never released)", res.LimitToggles)
	}
	// The paced async job spends much longer moving each burst (duty
	// cycling spreads it across the compute phase), so the time its flows
	// are active on the file system grows substantially versus no limit.
	activeBase := base.Bandwidth[2].TimeAbove(1, 0, base.Makespan)
	activeLim := res.Bandwidth[2].TimeAbove(1, 0, res.Makespan)
	if activeLim < activeBase*12/10 {
		t.Fatalf("limited async job active %v vs unrestricted %v: no spreading",
			activeLim, activeBase)
	}
	// Sync jobs keep (or improve) their runtimes, as with contention-only.
	for i, j := range res.Jobs {
		if j.Async {
			continue
		}
		if j.Runtime() > base.Jobs[i].Runtime()*101/100 {
			t.Fatalf("sync job %d got slower under LimitAlways: %v vs %v",
				i, j.Runtime(), base.Jobs[i].Runtime())
		}
	}
}

func TestUtilizationSeries(t *testing.T) {
	res, err := Run(smallScenario(NoLimit))
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization
	if u.Max() <= 0 || u.Max() > 1.000001 {
		t.Fatalf("utilization peak = %v, want in (0, 1]", u.Max())
	}
	if got := u.At(res.Makespan + des.Time(des.Second)); got != 0 {
		t.Fatalf("utilization after makespan = %v", got)
	}
}

func TestMultipleAsyncJobs(t *testing.T) {
	fs := pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9}
	jobs := []JobSpec{
		{Nodes: 4, Loops: 3, BytesPerNode: 1 << 30, Compute: 2 * des.Second},
		{Nodes: 4, Async: true, Loops: 3, BytesPerNode: 1 << 27,
			Compute: 4 * des.Second, Arrival: des.Time(des.Second)},
		{Nodes: 4, Async: true, Loops: 3, BytesPerNode: 1 << 27,
			Compute: 4 * des.Second, Arrival: des.Time(2 * des.Second)},
	}
	res, err := Run(Config{Nodes: 16, FS: &fs, Jobs: jobs, Policy: LimitDuringContention})
	if err != nil {
		t.Fatal(err)
	}
	// Both async jobs were managed by the arbiter.
	if res.LimitToggles < 2 {
		t.Fatalf("toggles = %d, want both async jobs capped", res.LimitToggles)
	}
	for _, j := range res.Jobs {
		if j.Ended <= j.Started {
			t.Fatalf("job %d incomplete", j.Job)
		}
	}
}

func TestPredictivePolicyCapsAroundBursts(t *testing.T) {
	fs := pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9}
	jobs := []JobSpec{
		// A strongly periodic synchronous job: 2 s compute, ~2 s burst.
		{Nodes: 4, Loops: 10, BytesPerNode: 1 << 29, Compute: 2 * des.Second},
		// The compute-heavy async job the arbiter manages.
		{Nodes: 4, Async: true, Loops: 8, BytesPerNode: 1 << 27,
			Compute: 5 * des.Second},
	}
	res, err := Run(Config{
		Nodes: 16, FS: &fs, Jobs: jobs, Policy: LimitPredictive,
		MonitorInterval: 250 * des.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The predictive monitor must have toggled the cap repeatedly —
	// on before each predicted burst, off in the gaps.
	if res.LimitToggles < 3 {
		t.Fatalf("toggles = %d, want periodic capping", res.LimitToggles)
	}
	for _, j := range res.Jobs {
		if j.Ended <= j.Started {
			t.Fatalf("job %d incomplete", j.Job)
		}
	}
}

func TestBackfillWithPredictivePolicy(t *testing.T) {
	// Queueing, backfill, and the predictive arbiter together.
	fs := pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9}
	jobs := []JobSpec{
		{Nodes: 8, Loops: 8, BytesPerNode: 1 << 29, Compute: 3 * des.Second},
		// Needs the whole cluster: queues behind job 0 under FCFS; with
		// backfill the small async job leapfrogs it.
		{Nodes: 12, Loops: 4, BytesPerNode: 1 << 29, Compute: 3 * des.Second,
			Arrival: des.Time(des.Second)},
		{Nodes: 4, Async: true, Loops: 6, BytesPerNode: 1 << 27,
			Compute: 4 * des.Second, Arrival: des.Time(2 * des.Second)},
	}
	res, err := Run(Config{
		Nodes: 12, FS: &fs, Jobs: jobs,
		Policy:    LimitPredictive,
		Scheduler: Backfill,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The async job backfilled ahead of the blocked 12-node job.
	if res.Jobs[2].Started >= res.Jobs[1].Started {
		t.Fatalf("async job did not backfill: %+v", res.Jobs)
	}
	for _, j := range res.Jobs {
		if j.Ended <= j.Started {
			t.Fatalf("job %d incomplete", j.Job)
		}
	}
}

func TestExternalForecastsDrivePredictivePolicy(t *testing.T) {
	// An external forecast source (in production: a telemetry gateway's
	// /predict endpoint) replaces in-process FTIO detection for the jobs
	// it answers for.
	fs := pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9}
	jobs := []JobSpec{
		{Nodes: 4, Loops: 8, BytesPerNode: 1 << 29, Compute: 2 * des.Second},
		{Nodes: 4, Async: true, Loops: 6, BytesPerNode: 1 << 27,
			Compute: 4 * des.Second},
	}
	var calls int
	forecasts := func(job int, now des.Time) (sched.Forecast, bool) {
		calls++
		if job != 0 {
			t.Errorf("forecast asked for job %d; only job 0 is synchronous", job)
		}
		// The sync job's true cadence: ~2 s compute + ~2 s burst.
		period := 4 * des.Second
		return sched.Forecast{
			Period:    period,
			BurstLen:  2 * des.Second,
			LastBurst: now - des.Time(now.Sub(0)%period),
		}, true
	}
	res, err := Run(Config{
		Nodes: 16, FS: &fs, Jobs: jobs,
		Policy:          LimitPredictive,
		MonitorInterval: 250 * des.Millisecond,
		Forecasts:       forecasts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("external forecast source never consulted")
	}
	if res.LimitToggles < 2 {
		t.Fatalf("toggles = %d, want the forecast-driven cap to cycle", res.LimitToggles)
	}
	for _, j := range res.Jobs {
		if j.Ended <= j.Started {
			t.Fatalf("job %d incomplete", j.Job)
		}
	}

	// ok=false must fall back to the in-process detector, not disable
	// prediction: same scenario still completes and still toggles.
	declined := 0
	res, err = Run(Config{
		Nodes: 16, FS: &fs, Jobs: jobs,
		Policy:          LimitPredictive,
		MonitorInterval: 250 * des.Millisecond,
		Forecasts: func(job int, now des.Time) (sched.Forecast, bool) {
			declined++
			return sched.Forecast{}, false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if declined == 0 {
		t.Fatal("declining forecast source never consulted")
	}
	for _, j := range res.Jobs {
		if j.Ended <= j.Started {
			t.Fatalf("fallback run: job %d incomplete", j.Job)
		}
	}
}
