// Package cluster is the ElastiSim-equivalent multi-job simulator behind
// the paper's motivating experiment (Figs. 1 and 2): several jobs share a
// cluster and its parallel file system; one job performs asynchronous I/O,
// and limiting that job to its required bandwidth — during contention only
// — returns the spared bandwidth to the synchronous jobs.
package cluster

import (
	"fmt"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/faults"
	"iobehind/internal/ftio"
	"iobehind/internal/metrics"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/sched"
	"iobehind/internal/tmio"
)

// LimitPolicy selects whether and when the asynchronous jobs are limited.
type LimitPolicy int

const (
	// NoLimit runs all jobs unrestricted (Fig. 1 top: fair bandwidth
	// distribution by node count only).
	NoLimit LimitPolicy = iota
	// LimitDuringContention caps each asynchronous job's ranks at their
	// measured required bandwidth (scaled by Tol) whenever another job is
	// doing I/O at the same time, and removes the cap otherwise (Fig. 1
	// bottom).
	LimitDuringContention
	// LimitPredictive caps asynchronous jobs *ahead of* the other jobs'
	// I/O bursts: the monitor runs FTIO period detection over each
	// synchronous job's observed bandwidth, forecasts its next burst, and
	// pre-emptively installs the cap just before the burst arrives —
	// the paper's proposed coupling of the required-bandwidth metric with
	// an I/O scheduler. Falls back to reactive capping while a job's
	// pattern is not yet detectable.
	LimitPredictive
	// LimitAlways keeps asynchronous jobs capped at their required
	// bandwidth for their whole lifetime. The paper argues against this
	// from a cluster perspective ("bandwidth limitation from such a
	// perspective can slow down the cluster's performance since contention
	// is more likely to happen as the affected application performs I/O
	// for a longer duration"); the policy exists so the argument can be
	// tested.
	LimitAlways
)

// JobSpec describes one batch job.
type JobSpec struct {
	// Nodes the job occupies; also its fair-share weight on the PFS.
	Nodes int
	// Async marks the job as using asynchronous MPI-IO (the paper's job 4).
	Async bool
	// Arrival is when the job enters the queue.
	Arrival des.Time
	// Loops, BytesPerNode, Compute shape the HACC-IO-like phase pattern:
	// each loop computes, then writes BytesPerNode per node.
	Loops        int
	BytesPerNode int64
	Compute      des.Duration
}

func (j JobSpec) withDefaults() JobSpec {
	if j.Nodes <= 0 {
		j.Nodes = 16
	}
	if j.Loops <= 0 {
		j.Loops = 8
	}
	if j.BytesPerNode <= 0 {
		j.BytesPerNode = 4 << 30
	}
	if j.Compute <= 0 {
		j.Compute = 10 * des.Second
	}
	return j
}

// Config describes the cluster scenario.
type Config struct {
	// Nodes is the cluster size (paper: 500 × 96-core nodes).
	Nodes int
	// FS defaults to a 120 GB/s file system, Fig. 1's setting.
	FS *pfs.Config
	// Jobs to run.
	Jobs []JobSpec
	// Policy selects the limiting behaviour.
	Policy LimitPolicy
	// Tol scales the applied limit, like the strategies' tolerance.
	// Defaults to 1.1.
	Tol float64
	// Seed drives all randomness. Defaults to 1.
	Seed int64
	// MonitorInterval is the contention monitor's polling period.
	// Defaults to 100 ms.
	MonitorInterval des.Duration
	// Scheduler selects the queueing discipline. Defaults to FCFS.
	Scheduler SchedulerPolicy
	// Forecasts, when set, supplies burst forecasts for synchronous jobs
	// from an external source — e.g. a telemetry gateway's
	// /apps/{id}/predict endpoint (internal/gateway.PredictClient) —
	// instead of in-process FTIO detection. Under LimitPredictive each
	// monitor tick consults it per synchronous job; returning ok=false
	// falls back to the in-process detector for that job. This is the
	// paper's TMIO → FTIO → scheduler loop closed over a real network
	// boundary. Excluded from JSON so configs stay hashable as sweep
	// cache keys (a func is runtime wiring, not point identity).
	Forecasts func(job int, now des.Time) (sched.Forecast, bool) `json:"-"`
	// Faults, when non-nil, describes injected fault windows (capacity
	// degradation, outages, server stalls, stragglers, transient errors).
	// Pure data: it participates in sweep cache keys, and the runtime
	// injector is constructed per run from it.
	Faults *faults.Config `json:",omitempty"`
	// Debug prints monitor decisions.
	Debug bool
}

// SchedulerPolicy selects how queued jobs are started.
type SchedulerPolicy int

const (
	// FCFS starts jobs strictly in arrival order; a large job at the head
	// blocks smaller jobs behind it (conservative, no backfilling).
	FCFS SchedulerPolicy = iota
	// Backfill lets any queued job start when it fits in the free nodes,
	// skipping over a blocked head (relaxed backfilling without
	// reservations — small jobs can leapfrog).
	Backfill
)

// JobResult reports one job's outcome.
type JobResult struct {
	Job     int
	Nodes   int
	Async   bool
	Arrival des.Time
	Started des.Time // when nodes were allocated
	Ended   des.Time
}

// Runtime is the job's execution time (excluding queue wait).
func (j JobResult) Runtime() des.Duration { return j.Ended.Sub(j.Started) }

// Result is the outcome of one cluster scenario.
type Result struct {
	Policy LimitPolicy
	Jobs   []JobResult
	// Bandwidth holds one write-bandwidth step series per job (Fig. 2),
	// plus the running-jobs count series (Fig. 1) and the file system's
	// total write utilization (fraction of capacity in use).
	Bandwidth   []*metrics.Series
	RunningJobs *metrics.Series
	Utilization *metrics.Series
	// LimitedSpans counts how many times the monitor toggled the limit on.
	LimitToggles int
	// Makespan is when the last job finished.
	Makespan des.Time
	// FaultWindows is the number of injected fault windows (after random
	// generation); Retries sums the jobs' transient-error retries.
	FaultWindows int
	Retries      int
}

// Run executes the scenario and returns its result.
func Run(cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 500
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1.1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 100 * des.Millisecond
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("cluster: no jobs")
	}

	e := des.NewEngine(cfg.Seed)
	fsCfg := pfs.Config{WriteCapacity: 120e9, ReadCapacity: 120e9}
	if cfg.FS != nil {
		fsCfg = *cfg.FS
	}
	fs := pfs.New(e, fsCfg)

	res := &Result{
		Policy:      cfg.Policy,
		RunningJobs: &metrics.Series{Name: "running"},
		Utilization: &metrics.Series{Name: "utilization"},
	}
	sim := &simulation{
		e:       e,
		fs:      fs,
		cfg:     cfg,
		res:     res,
		free:    cfg.Nodes,
		rates:   make([]float64, len(cfg.Jobs)),
		running: make([]bool, len(cfg.Jobs)),
		active:  make([]int, len(cfg.Jobs)),
	}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		sim.injector = faults.New(e, fs, *cfg.Faults)
	}
	for i := range cfg.Jobs {
		res.Bandwidth = append(res.Bandwidth,
			&metrics.Series{Name: fmt.Sprintf("job%d", i)})
	}
	fs.SetObserver(sim.observe)

	for i, spec := range cfg.Jobs {
		sim.submit(i, spec.withDefaults())
	}
	if cfg.Policy != NoLimit {
		pol := sched.CapDuringContention
		if cfg.Policy == LimitAlways {
			pol = sched.CapAlways
		}
		sim.arbiter = sched.New(pol, cfg.Tol)
		sim.startMonitor()
	}
	if err := e.Run(); err != nil {
		return nil, err
	}
	if sim.done != len(cfg.Jobs) {
		return nil, fmt.Errorf("cluster: %d jobs did not finish", len(cfg.Jobs)-sim.done)
	}
	res.Makespan = sim.makespan
	if sim.injector != nil {
		res.FaultWindows = len(sim.injector.Windows())
		for _, j := range sim.jobs {
			for rank := 0; rank < j.spec.Nodes; rank++ {
				res.Retries += j.sys.Agent(rank).Retries()
			}
		}
	}
	e.Shutdown() // reap the monitor process
	return res, nil
}

// simulation carries the mutable scenario state.
type simulation struct {
	e        *des.Engine
	fs       *pfs.PFS
	cfg      Config
	res      *Result
	free     int
	queue    []int // job ids waiting for nodes, FIFO
	done     int
	makespan des.Time

	jobs    []*job
	rates   []float64 // last observed write rate per job
	running []bool
	active  []int // active flows per job (both channels)

	arbiter  *sched.Arbiter
	injector *faults.Injector
}

// job is one running job's handle.
type job struct {
	id     int
	spec   JobSpec
	sys    *mpiio.System
	tracer *tmio.Tracer
	world  *mpi.World
}

// submit schedules the job's arrival; it starts when enough nodes are free
// (FCFS with queueing).
func (s *simulation) submit(id int, spec JobSpec) {
	s.jobs = append(s.jobs, &job{id: id, spec: spec})
	s.res.Jobs = append(s.res.Jobs, JobResult{
		Job: id, Nodes: spec.Nodes, Async: spec.Async, Arrival: spec.Arrival,
	})
	s.e.Schedule(spec.Arrival, des.PrioNormal, func() {
		s.queue = append(s.queue, id)
		s.tryStart()
	})
}

// tryStart launches queued jobs while nodes are available, following the
// configured scheduler policy.
func (s *simulation) tryStart() {
	switch s.cfg.Scheduler {
	case Backfill:
		// Scan the whole queue; start every job that fits.
		for i := 0; i < len(s.queue); {
			id := s.queue[i]
			j := s.jobs[id]
			if j.spec.Nodes > s.free {
				i++
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.free -= j.spec.Nodes
			s.start(j)
			i = 0 // free-node count changed: rescan from the head
		}
	default: // FCFS
		for len(s.queue) > 0 {
			id := s.queue[0]
			j := s.jobs[id]
			if j.spec.Nodes > s.free {
				return
			}
			s.queue = s.queue[1:]
			s.free -= j.spec.Nodes
			s.start(j)
		}
	}
}

// start allocates the job's world and launches its ranks (one rank per
// node: the Fig. 1 jobs are modelled at node granularity).
func (s *simulation) start(j *job) {
	id := j.id
	s.running[id] = true
	s.res.Jobs[id].Started = s.e.Now()
	s.updateRunningSeries()

	j.world = mpi.NewWorld(s.e, mpi.Config{Size: j.spec.Nodes, RanksPerNode: 1})
	j.sys = mpiio.NewSystem(j.world, s.fs, adio.Config{
		Tag:          pfs.Tag{Job: id},
		FlowWeight:   1, // one rank per node ⇒ job weight = node count
		RanksPerNode: 1,
	})
	tcfg := tmio.Config{DisableOverhead: true}
	if s.injector != nil {
		j.sys.SetFaults(s.injector)
		tcfg.FaultOracle = s.injector.Overlaps
	}
	j.tracer = tmio.Attach(j.sys, tcfg)
	if s.arbiter != nil {
		jj := j
		s.arbiter.Register(sched.App{
			ID:     id,
			Async:  j.spec.Async,
			Weight: float64(j.spec.Nodes),
			Apply: func(cap float64) {
				for rank := 0; rank < jj.spec.Nodes; rank++ {
					jj.sys.Agent(rank).SetLimit(cap)
				}
			},
		}, float64(j.spec.BytesPerNode)/j.spec.Compute.Seconds())
	}

	main := s.jobMain(j)
	j.world.Launch(main)

	world := j.world
	s.e.Spawn(fmt.Sprintf("job%d-reaper", id), func(p *des.Proc) {
		world.AllDone().Wait(p)
		s.running[id] = false
		if s.arbiter != nil {
			s.arbiter.Unregister(id)
		}
		s.res.Jobs[id].Ended = p.Now()
		if p.Now() > s.makespan {
			s.makespan = p.Now()
		}
		s.done++
		s.free += j.spec.Nodes
		s.updateRunningSeries()
		s.tryStart()
	})
}

// jobMain builds the per-rank main: a HACC-IO-like loop of compute and
// write phases. Synchronous jobs block on each write; the asynchronous job
// overlaps the write with the next compute phase.
func (s *simulation) jobMain(j *job) func(*mpi.Rank) {
	spec := j.spec
	return func(r *mpi.Rank) {
		f := j.sys.Open(r, fmt.Sprintf("job%d-%04d.bin", j.id, r.ID()))
		var req *mpiio.Request
		for loop := 0; loop < spec.Loops; loop++ {
			r.Barrier()
			d := spec.Compute + r.Jitter(des.Duration(float64(spec.Compute)*0.03))
			r.Compute(d)
			if spec.Async {
				if req != nil {
					req.Wait()
				}
				req = f.IwriteAt(int64(loop)*spec.BytesPerNode, spec.BytesPerNode)
			} else {
				f.WriteAt(int64(loop)*spec.BytesPerNode, spec.BytesPerNode)
			}
		}
		if req != nil {
			req.Wait()
		}
	}
}

// observe is the PFS observer: it maintains per-job write-rate series and
// activity counters for the contention monitor.
func (s *simulation) observe(now des.Time, class pfs.Class, flows []*pfs.Flow) {
	for i := range s.active {
		s.active[i] = 0
	}
	sums := make(map[int]float64, len(s.jobs))
	for _, f := range flows {
		id := f.Tag().Job
		if id < 0 || id >= len(s.jobs) {
			continue
		}
		s.active[id]++
		if class == pfs.Write {
			sums[id] += f.Rate()
		}
	}
	if class != pfs.Write {
		return
	}
	var total float64
	for id := range s.jobs {
		s.rates[id] = sums[id]
		s.res.Bandwidth[id].Append(now, sums[id])
		total += sums[id]
	}
	s.res.Utilization.Append(now, total/s.fs.Capacity(pfs.Write))
}

func (s *simulation) updateRunningSeries() {
	count := 0.0
	for _, r := range s.running {
		if r {
			count++
		}
	}
	s.res.RunningJobs.Append(s.e.Now(), count)
}

// startMonitor launches the contention monitor: it feeds the arbiter the
// jobs' current activity and measured requirements and lets it decide
// which asynchronous jobs to cap (internal/sched holds the policy logic).
func (s *simulation) startMonitor() {
	s.e.Spawn("contention-monitor", func(p *des.Proc) {
		for {
			if s.done == len(s.jobs) {
				return
			}
			for id, j := range s.jobs {
				s.arbiter.SetActive(id, s.active[id] > 0)
				if s.injector != nil {
					// Quarantine requirements measured during the last tick
					// if a fault window touched it: the arbiter keeps the
					// last clean value instead.
					from := p.Now().Add(-s.cfg.MonitorInterval)
					if from < 0 {
						from = 0
					}
					s.arbiter.SetFaulty(id, s.injector.Overlaps(pfs.Write, from, p.Now()))
				}
				if j.spec.Async && j.tracer != nil && s.running[id] {
					// Feed the worst (largest) rank-level requirement: a
					// job-level cap must accommodate its hungriest rank.
					var worst float64
					for rank := 0; rank < j.spec.Nodes; rank++ {
						if b := j.tracer.RequiredBandwidth(rank); b > worst {
							worst = b
						}
					}
					if worst > 0 {
						s.arbiter.SetRequired(id, worst)
					}
				}
			}
			before := s.arbiter.Toggles()
			if s.cfg.Policy == LimitPredictive {
				s.refreshForecasts(p.Now())
				s.arbiter.ReallocatePredictive(p.Now(), 4*s.cfg.MonitorInterval)
			} else {
				s.arbiter.Reallocate()
			}
			if after := s.arbiter.Toggles(); after != before {
				s.res.LimitToggles += after - before
				s.debugf("arbiter toggled caps (total %d)", after)
			}
			p.Sleep(s.cfg.MonitorInterval)
		}
	})
}

// DefaultScenario returns the Fig. 1 setup: eight HACC-IO-like jobs on a
// 500-node cluster with a 120 GB/s file system; only job 4 is
// asynchronous. Arrivals are lightly staggered so contention windows vary.
//
// Job 4 is a large (96-node) but compute-heavy application: its required
// bandwidth (≈100 MB/s per node) is far below the burst share its node
// count entitles it to, which is exactly the situation where limiting an
// asynchronous application to its requirement frees real bandwidth for
// the synchronous jobs.
func DefaultScenario(policy LimitPolicy) Config {
	nodes := []int{16, 32, 96, 32, 96, 96, 32, 16}
	jobs := make([]JobSpec, len(nodes))
	for i, n := range nodes {
		jobs[i] = JobSpec{
			Nodes:        n,
			Async:        i == 4,
			Arrival:      des.Time(i) * des.Time(5*des.Second),
			Loops:        8,
			BytesPerNode: 4 << 30,
			Compute:      10 * des.Second,
		}
	}
	jobs[4].Loops = 6
	jobs[4].BytesPerNode = 3 << 29 // 1.5 GiB
	jobs[4].Compute = 15 * des.Second
	return Config{Nodes: 500, Jobs: jobs, Policy: policy}
}

// debugf prints monitor activity when Config.Debug is set.
func (s *simulation) debugf(format string, args ...any) {
	if s.cfg.Debug {
		fmt.Printf("[%v] "+format+"\n", append([]any{s.e.Now()}, args...)...)
	}
}

// refreshForecasts runs FTIO period detection over each synchronous job's
// observed write bandwidth and feeds the arbiter a burst forecast when the
// pattern is confidently periodic.
func (s *simulation) refreshForecasts(now des.Time) {
	for id, j := range s.jobs {
		if j.spec.Async || !s.running[id] {
			continue
		}
		if s.cfg.Forecasts != nil {
			if f, ok := s.cfg.Forecasts(id, now); ok {
				s.arbiter.SetForecast(id, f)
				continue
			}
		}
		start := s.res.Jobs[id].Started
		span := now.Sub(start)
		if span < des.Duration(4*int64(j.spec.Compute)) {
			continue // not enough history yet
		}
		series := s.res.Bandwidth[id]
		res, err := ftio.Detect(series, start, now, 128)
		if err != nil || res.Confidence < 0.1 || res.Period <= 0 {
			continue
		}
		// Burst length from the duty cycle above half the peak.
		active := series.TimeAbove(series.Max()/2, start, now)
		cycles := span.Seconds() / res.Period.Seconds()
		burstLen := des.DurationOf(active.Seconds() / cycles)
		// The last burst: walk back from now to the most recent rise.
		last := now
		for last > start && series.At(last) <= series.Max()/2 {
			last -= des.Time(res.Period / 16)
		}
		s.arbiter.SetForecast(id, sched.Forecast{
			Period:    res.Period,
			BurstLen:  burstLen,
			LastBurst: last,
		})
	}
}
