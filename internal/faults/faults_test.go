package faults

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/pfs"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Degrade:     "degrade",
		Outage:      "outage",
		ServerStall: "server-stall",
		Straggler:   "straggler",
		IOError:     "io-error",
		Kind(42):    "kind(42)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestConfigEmpty(t *testing.T) {
	if !(Config{}).Empty() {
		t.Error("zero Config not empty")
	}
	if !(Config{Random: &RandomConfig{Count: 0, Horizon: des.Second}}).Empty() {
		t.Error("zero-count random batch not empty")
	}
	if (Config{Windows: []Window{{Kind: Degrade, Dur: des.Second, Factor: 0.5}}}).Empty() {
		t.Error("scripted window reported empty")
	}
	if (Config{Random: &RandomConfig{Count: 1, Horizon: des.Second}}).Empty() {
		t.Error("random batch reported empty")
	}
}

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one mentioning %q)", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want mention of %q", r, want)
		}
	}()
	f()
}

func TestInvalidWindowsPanicAtConstruction(t *testing.T) {
	e := des.NewEngine(1)
	cases := []struct {
		name string
		w    Window
		want string
	}{
		{"zero duration", Window{Kind: Degrade, Factor: 0.5}, "non-positive duration"},
		{"negative start", Window{Kind: Outage, Start: -1, Dur: des.Second}, "before t=0"},
		{"degrade factor 0", Window{Kind: Degrade, Dur: des.Second}, "outside (0,1)"},
		{"degrade factor 1", Window{Kind: Degrade, Dur: des.Second, Factor: 1}, "outside (0,1)"},
		{"stall factor below 1", Window{Kind: ServerStall, Dur: des.Second, Factor: 0.5}, "below 1"},
		{"straggler factor below 1", Window{Kind: Straggler, Dur: des.Second, Factor: 0}, "below 1"},
		{"io-error prob 0", Window{Kind: IOError, Dur: des.Second}, "outside (0,1]"},
		{"io-error prob above 1", Window{Kind: IOError, Dur: des.Second, Prob: 1.5}, "outside (0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mustPanic(t, tc.want, func() {
				New(e, nil, Config{Windows: []Window{tc.w}})
			})
		})
	}
}

func TestRandomGenerationDeterministic(t *testing.T) {
	rc := RandomConfig{Seed: 42, Count: 8, Horizon: 10 * des.Second, Nodes: 4,
		Kinds: []Kind{Degrade, Outage, ServerStall, Straggler, IOError}}
	a, b := rc.generate(), rc.generate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different windows")
	}
	if len(a) != 8 {
		t.Fatalf("generated %d windows, want 8", len(a))
	}
	for _, w := range a {
		if err := w.validate(); err != nil {
			t.Errorf("generated invalid window: %v", err)
		}
		if w.Start < 0 || w.Start >= des.Time(rc.Horizon) {
			t.Errorf("window start %v outside [0, %v)", w.Start, rc.Horizon)
		}
	}
	rc.Seed = 43
	if reflect.DeepEqual(a, rc.generate()) {
		t.Fatal("different seeds generated identical windows")
	}
}

func TestInjectorResolvesSameWindowsForSameConfig(t *testing.T) {
	cfg := Config{
		Windows: []Window{{Kind: Degrade, Class: pfs.Write,
			Start: des.Time(des.Second), Dur: des.Second, Factor: 0.5}},
		Random: &RandomConfig{Seed: 7, Count: 5, Horizon: 8 * des.Second},
	}
	w1 := New(des.NewEngine(1), nil, cfg).Windows()
	w2 := New(des.NewEngine(99), nil, cfg).Windows()
	if !reflect.DeepEqual(w1, w2) {
		t.Fatal("window resolution depends on the engine, not only the config")
	}
	for i := 1; i < len(w1); i++ {
		if w1[i].Start < w1[i-1].Start {
			t.Fatal("resolved windows not sorted by start")
		}
	}
}

func TestOverlapsSemantics(t *testing.T) {
	inj := New(des.NewEngine(1), nil, Config{Windows: []Window{
		{Kind: Degrade, Class: pfs.Write,
			Start: des.Time(des.Second), Dur: des.Second, Factor: 0.5},
		{Kind: Straggler, Node: 0, Factor: 2,
			Start: des.Time(5 * des.Second), Dur: des.Second},
	}})
	sec := func(s float64) des.Time { return des.Time(des.DurationOf(s)) }
	cases := []struct {
		class    pfs.Class
		from, to des.Time
		want     bool
	}{
		{pfs.Write, 0, sec(1), false},           // half-open: to == Start misses
		{pfs.Write, sec(1), sec(1.5), true},     // inside
		{pfs.Write, sec(2), sec(3), false},      // from == End misses
		{pfs.Write, sec(1.9), sec(4.9), true},   // spans the tail
		{pfs.Read, sec(1), sec(2), false},       // degrade is class-scoped
		{pfs.Read, sec(5), sec(5.5), true},      // straggler hits every class
		{pfs.Write, sec(5.5), sec(7), true},     // straggler, write side
		{pfs.Write, sec(6), sec(7), false},      // after everything
	}
	for _, tc := range cases {
		if got := inj.Overlaps(tc.class, tc.from, tc.to); got != tc.want {
			t.Errorf("Overlaps(%v, %v, %v) = %v, want %v",
				tc.class, tc.from, tc.to, got, tc.want)
		}
	}
}

func TestCapacityFactorsFollowWindowBoundaries(t *testing.T) {
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	inj := New(e, fs, Config{Windows: []Window{
		{Kind: Degrade, Class: pfs.Write,
			Start: des.Time(des.Second), Dur: des.Second, Factor: 0.5},
		{Kind: Outage, Class: pfs.Read,
			Start: des.Time(2 * des.Second), Dur: des.Second},
	}})
	type probe struct{ w, r float64 }
	got := map[float64]probe{}
	for _, at := range []float64{0.5, 1.5, 2.5, 3.5} {
		at := at
		e.Schedule(des.Time(des.DurationOf(at)), des.PrioLate, func() {
			got[at] = probe{fs.FaultFactor(pfs.Write), fs.FaultFactor(pfs.Read)}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[float64]probe{
		0.5: {1, 1},
		1.5: {0.5, 1},
		2.5: {1, 0},
		3.5: {1, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fault factors over time = %v, want %v", got, want)
	}
	if inj.Activations() != 2 {
		t.Fatalf("activations = %d, want 2", inj.Activations())
	}
}

func TestOverlappingWindowsStrictestWins(t *testing.T) {
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	inj := New(e, fs, Config{Windows: []Window{
		{Kind: Degrade, Class: pfs.Write,
			Start: des.Time(des.Second), Dur: 2 * des.Second, Factor: 0.5},
		{Kind: Degrade, Class: pfs.Write,
			Start: des.Time(2 * des.Second), Dur: 2 * des.Second, Factor: 0.2},
		{Kind: ServerStall, Class: pfs.Write,
			Start: des.Time(des.Second), Dur: 2 * des.Second, Factor: 2},
		{Kind: ServerStall, Class: pfs.Write,
			Start: des.Time(des.Second), Dur: des.Second, Factor: 5},
	}})
	type probe struct {
		capf, stall float64
	}
	got := map[float64]probe{}
	for _, at := range []float64{1.5, 2.5, 3.5, 4.5} {
		at := at
		e.Schedule(des.Time(des.DurationOf(at)), des.PrioLate, func() {
			got[at] = probe{fs.FaultFactor(pfs.Write), inj.QueueFactor(pfs.Write)}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[float64]probe{
		1.5: {0.5, 5}, // both stalls active: max wins
		2.5: {0.2, 2}, // both degrades active: min wins
		3.5: {0.2, 1},
		4.5: {1, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("strictest-wins state = %v, want %v", got, want)
	}
}

func TestNodeSlowdownAndErrorProb(t *testing.T) {
	e := des.NewEngine(1)
	inj := New(e, nil, Config{Windows: []Window{
		{Kind: Straggler, Node: 3, Factor: 4,
			Start: des.Time(des.Second), Dur: des.Second},
		{Kind: IOError, Class: pfs.Write, Prob: 0.3,
			Start: des.Time(des.Second), Dur: des.Second},
	}})
	var slowIn, slowOther, slowAfter, probIn, probRead float64
	e.Schedule(des.Time(1500*des.Millisecond), des.PrioLate, func() {
		slowIn = inj.NodeSlowdown(3)
		slowOther = inj.NodeSlowdown(2)
		probIn = inj.ErrorProb(pfs.Write)
		probRead = inj.ErrorProb(pfs.Read)
	})
	e.Schedule(des.Time(2500*des.Millisecond), des.PrioLate, func() {
		slowAfter = inj.NodeSlowdown(3)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if slowIn != 4 || slowOther != 1 || slowAfter != 1 {
		t.Fatalf("slowdowns in/other/after = %v/%v/%v, want 4/1/1", slowIn, slowOther, slowAfter)
	}
	if probIn != 0.3 || probRead != 0 {
		t.Fatalf("error probs write/read = %v/%v, want 0.3/0", probIn, probRead)
	}
}

// --- Integration with the ADIO agent -------------------------------------

// runOne executes a single async write of bytes through an agent wired to
// the scenario (paced by limit when > 0) and returns the completion time
// and the agent.
func runOne(t *testing.T, cfg Config, agentCfg adio.Config, bytes int64, limit float64) (des.Time, *adio.Agent, *Injector) {
	t.Helper()
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	var inj *Injector
	if !cfg.Empty() {
		inj = New(e, fs, cfg)
	}
	a := adio.NewAgent(e, fs, nil, agentCfg)
	if inj != nil {
		a.SetFaults(inj)
	}
	if limit > 0 {
		a.SetLimit(limit)
	}
	var done des.Time
	e.Spawn("app", func(p *des.Proc) {
		a.Submit(pfs.Write, bytes, true).Wait(p)
		done = p.Now()
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return done, a, inj
}

func TestOutageStallsTransferUntilWindowEnds(t *testing.T) {
	// 10 MB at 100 MB/s is 0.1 s — but the write channel is out for the
	// first second, so the transfer stalls (capacity floored at 1 B/s, it
	// never deadlocks) and completes shortly after the window closes.
	done, _, _ := runOne(t, Config{Windows: []Window{
		{Kind: Outage, Class: pfs.Write, Start: 0, Dur: des.Second},
	}}, adio.Config{}, 10e6, 0)
	if got := done.Seconds(); got < 1.0 || got > 1.3 {
		t.Fatalf("outage-spanning write done at %vs, want ~1.1s", got)
	}
}

func TestDegradeWindowOpeningMidRequestSlowsLaterChunks(t *testing.T) {
	// A limited request is chunked (the limit sits above the channel, so
	// pacing adds no sleeps); a degrade window opening mid-request must
	// slow the chunks still in flight — the agent re-reads the fault state
	// per sub-request, and the fluid PFS re-rates active flows.
	cfg := adio.Config{SubRequestSize: 10e6}
	clean, _, _ := runOne(t, Config{}, cfg, 50e6, 200e6)
	faulted, _, _ := runOne(t, Config{Windows: []Window{
		{Kind: Degrade, Class: pfs.Write, Factor: 0.1,
			Start: des.Time(250 * des.Millisecond), Dur: 10 * des.Second},
	}}, cfg, 50e6, 200e6)
	if got := clean.Seconds(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("clean run took %vs, want ~0.5s", got)
	}
	// ~2.5 chunks at full speed, the rest at 10 MB/s: well past 2 s.
	if faulted.Seconds() < 2 {
		t.Fatalf("mid-request degrade ignored: run took %vs", faulted.Seconds())
	}
}

func TestStragglerSlowsOnlyItsNode(t *testing.T) {
	window := Config{Windows: []Window{
		{Kind: Straggler, Node: 3, Factor: 2, Start: 0, Dur: 10 * des.Second},
	}}
	slow, _, _ := runOne(t, window, adio.Config{Tag: pfs.Tag{Node: 3}}, 100e6, 0)
	other, _, _ := runOne(t, window, adio.Config{Tag: pfs.Tag{Node: 2}}, 100e6, 0)
	if got := other.Seconds(); math.Abs(got-1) > 0.01 {
		t.Fatalf("healthy node took %vs, want ~1s", got)
	}
	if got := slow.Seconds(); math.Abs(got-2) > 0.02 {
		t.Fatalf("straggler node took %vs, want ~2s", got)
	}
}

func TestIOErrorWindowExhaustsRetries(t *testing.T) {
	// Certain failure: every attempt fails, the agent retries RetryMax
	// times, abandons the request, and delivers nothing.
	done, a, _ := runOne(t, Config{Windows: []Window{
		{Kind: IOError, Class: pfs.Write, Prob: 1, Start: 0, Dur: 100 * des.Second},
	}}, adio.Config{RetryMax: 3}, 10e6, 0)
	if a.Retries() != 3 {
		t.Fatalf("retries = %d, want 3", a.Retries())
	}
	if a.RetryExhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", a.RetryExhausted())
	}
	if a.TotalBytes(pfs.Write) != 0 {
		t.Fatalf("abandoned request counted %d delivered bytes", a.TotalBytes(pfs.Write))
	}
	if done == 0 {
		t.Fatal("request never completed")
	}
}

func TestSeededScenarioReproducible(t *testing.T) {
	// The acceptance bar: one seeded scenario, two full runs, identical
	// virtual end times and identical agent accounting.
	cfg := Config{
		Windows: []Window{{Kind: IOError, Class: pfs.Write, Prob: 0.3,
			Start: 0, Dur: 10 * des.Second}},
		Random: &RandomConfig{Seed: 5, Count: 4, Horizon: 5 * des.Second},
	}
	type outcome struct {
		done    des.Time
		retries int
		bytes   int64
	}
	run := func() outcome {
		done, a, _ := runOne(t, cfg, adio.Config{SubRequestSize: 1e6}, 50e6, 60e6)
		return outcome{done, a.Retries(), a.TotalBytes(pfs.Write)}
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("seeded scenario not reproducible: %+v vs %+v", first, second)
	}
	if first.retries == 0 {
		t.Fatal("scenario exercised no retries — assertion has no teeth")
	}
}
